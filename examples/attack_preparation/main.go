// Attack preparation: before a single watt can be abused, the attacker
// must land VMs on the victim rack (§3.1 of the paper — the Ristenpart
// co-residency game). This example measures the up-front cost of that
// step: probe VMs launched (and dollars burned at on-demand prices) to
// assemble a four-server squad, across cloud scheduling policies, cluster
// occupancy levels and co-residency-oracle accuracy. Anything that makes
// this phase expensive or unreliable is already a defense.
package main

import (
	"fmt"
	"log"

	padsec "repro"
)

const (
	trials      = 25
	perProbeUSD = 0.05 // one billing minimum per probe VM
)

func main() {
	fmt.Println("Co-residency hunt: probes to land 4 servers on one rack")
	fmt.Println("(22 racks x 10 servers x 4 VM slots, averaged over 25 campaigns)")
	fmt.Println()
	fmt.Printf("%-8s %-10s %-9s %-12s %-10s %s\n",
		"policy", "occupancy", "oracle", "mean probes", "cost($)", "misplaced squad VMs")

	for _, policy := range []padsec.PlacementPolicy{
		padsec.PackLowestID, padsec.SpreadLeastLoaded, padsec.RandomFit,
	} {
		for _, occ := range []float64{0.4, 0.7} {
			for _, oracle := range []float64{0.95, 0.7} {
				probes, misplaced := campaign(policy, occ, oracle)
				fmt.Printf("%-8s %-10s %-9s %-12.1f $%-9.2f %.2f\n",
					policy,
					fmt.Sprintf("%.0f%%", occ*100),
					fmt.Sprintf("%.0f%%", oracle*100),
					probes, probes*perProbeUSD, misplaced)
			}
		}
	}
	fmt.Println("\nA spread scheduler, a busy cluster and a noisy side channel all")
	fmt.Println("multiply the attacker's bill before the power attack even begins —")
	fmt.Println("and misplaced squad members weaken the eventual rack overload.")
}

func campaign(policy padsec.PlacementPolicy, occupancy, oracle float64) (meanProbes, meanMisplaced float64) {
	var probes, misplaced int
	for trial := 0; trial < trials; trial++ {
		res, err := padsec.RunCampaign(padsec.CampaignConfig{
			Policy:         policy,
			Occupancy:      occupancy,
			OracleAccuracy: oracle,
			TargetRack:     -1,
			Seed:           uint64(trial)*977 + 13,
		})
		if err != nil {
			log.Fatal(err)
		}
		probes += res.Probes
		misplaced += res.MisidentifiedKept
	}
	return float64(probes) / trials, float64(misplaced) / trials
}
