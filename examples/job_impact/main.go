// Job impact: translate a power attack's electrical outcome into the
// service-level numbers an operator answers for. The same workload runs
// through the job scheduler three times: clean, with the rack outage an
// undefended (Conv) cluster suffers under attack, and with the sustained
// 20% capping a PSPC cluster pays instead. Outages restart in-flight work
// and spike tail latency; capping quietly slows everything.
package main

import (
	"fmt"
	"log"
	"time"

	padsec "repro"
)

const (
	racks   = 6
	spr     = 10
	horizon = 2 * time.Hour
)

func main() {
	// A busy cluster: at 80% mean utilization the work displaced by an
	// outage has nowhere convenient to go.
	tr, err := padsec.GenerateTrace(padsec.TraceConfig{
		Machines:         racks * spr,
		Horizon:          horizon,
		Seed:             5,
		MeanUtilization:  0.9,
		MeanTaskDuration: 35 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	jobs := padsec.JobsFromTrace(tr)
	cfg := padsec.SchedulerConfig{Servers: racks * spr, Horizon: horizon + time.Hour}

	// First, find out when an undefended cluster actually trips under a
	// dense attack on rack 0.
	simCfg := padsec.ClusterConfig{
		Racks:          racks,
		ServersPerRack: spr,
		Duration:       horizon,
		Background:     padsec.FlatBackground(racks*spr, 0.55),
		// The attacker waits out the morning lull and strikes the loaded
		// mid-day window.
		Attack: padsec.NewAttack(4, padsec.AttackConfig{
			Profile:      padsec.CPUIntensive,
			PrepDuration: 45 * time.Minute,
			MaxPhaseI:    3 * time.Minute,
		}),
		StopOnTrip: true,
	}
	convRes, err := padsec.Run(simCfg, padsec.NewConv(padsec.SchemeOptions{}))
	if err != nil {
		log.Fatal(err)
	}
	if !convRes.Tripped {
		log.Fatal("expected the undefended cluster to trip")
	}
	fmt.Printf("Undefended cluster tripped rack %d after %v; operator recovery takes 30 min.\n\n",
		convRes.FirstTripRack, convRes.SurvivalTime)

	run := func(label string, imp []padsec.Impairment) padsec.JobMetrics {
		_, m, err := padsec.RunJobs(cfg, jobs, imp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s completed %4d  dropped %3d  restarts %3d  mean slowdown %.2f  p95 %.2f\n",
			label, m.Completed, m.Dropped, m.Restarts, m.MeanSlowdown, m.P95Slowdown)
		return m
	}

	clean := run("no attack", nil)
	outage := run("Conv: rack outage", padsec.RackOutage(
		convRes.FirstTripRack, spr,
		convRes.SurvivalTime, convRes.SurvivalTime+30*time.Minute))
	// The worst case the paper warns about: the attack coincides with a
	// cluster-wide peak and the PDU breaker goes — every rack dark.
	var pduOutage []padsec.Impairment
	for r := 0; r < racks; r++ {
		pduOutage = append(pduOutage, padsec.RackOutage(
			r, spr, convRes.SurvivalTime, convRes.SurvivalTime+30*time.Minute)...)
	}
	pdu := run("Conv: PDU outage", pduOutage)
	// PSPC avoids the outage by capping the victim rack 20% for the rest
	// of the window once its battery is gone.
	var capping []padsec.Impairment
	for s := 0; s < spr; s++ {
		capping = append(capping, padsec.Impairment{
			Server:      convRes.FirstTripRack*spr + s,
			From:        convRes.SurvivalTime,
			To:          horizon,
			SpeedFactor: 0.8,
		})
	}
	capped := run("PSPC: sustained cap", capping)

	fmt.Println()
	fmt.Printf("A single-rack outage restarted %d tasks — restartable batch work on a\n", outage.Restarts)
	fmt.Printf("cluster with headroom absorbs it, which is why the paper's attacker\n")
	fmt.Printf("aims at mission-critical racks. A PDU-level trip restarted %d tasks\n", pdu.Restarts)
	fmt.Printf("and stretched p95 slowdown to %.2fx; sustained capping avoided every\n", pdu.P95Slowdown/clean.P95Slowdown)
	fmt.Printf("restart but slowed all work (mean %.0f%%, p95 %.0f%%).\n",
		(capped.MeanSlowdown/clean.MeanSlowdown-1)*100,
		(capped.P95Slowdown/clean.P95Slowdown-1)*100)
	fmt.Println("PAD's point: keep the racks up without paying the sustained cap either.")
}
