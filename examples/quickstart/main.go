// Quickstart: simulate a two-phase power attack against a battery-backed
// cluster twice — once under conventional peak shaving, once under the
// full PAD defense — and compare how long each survives.
package main

import (
	"fmt"
	"log"
	"time"

	padsec "repro"
)

func main() {
	// A 6-rack cluster of the paper's HP DL585 G5 servers, provisioned at
	// 75% of nameplate, running a steady background load.
	mkConfig := func() padsec.ClusterConfig {
		return padsec.ClusterConfig{
			Racks:          6,
			ServersPerRack: 10,
			Duration:       30 * time.Minute,
			Tick:           200 * time.Millisecond,
			Background:     padsec.FlatBackground(60, 0.55),
			// Four compromised servers on rack 0 run the classic
			// two-phase attack: drain the battery with a visible peak,
			// then fire hidden spikes.
			Attack: padsec.NewAttack(4, padsec.AttackConfig{
				Profile:         padsec.CPUIntensive,
				SpikeWidth:      4 * time.Second,
				SpikesPerMinute: 6,
				MaxPhaseI:       4 * time.Minute,
			}),
			StopOnTrip: true,
		}
	}

	ps, err := padsec.Run(mkConfig(), padsec.NewPS(padsec.SchemeOptions{}))
	if err != nil {
		log.Fatal(err)
	}

	padCfg := mkConfig()
	// PAD additionally deploys a μDEB super-capacitor bank on every rack.
	padCfg.MicroDEBFactory = padsec.NewMicroDEBFactory(0.01)
	pad, err := padsec.Run(padCfg, padsec.NewPAD(padsec.SchemeOptions{}))
	if err != nil {
		log.Fatal(err)
	}

	describe := func(r *padsec.SimResult) {
		fmt.Printf("%-4s survived %-10v effective attacks: %-3d throughput: %.3f\n",
			r.Scheme, r.SurvivalTime, r.EffectiveAttacks, r.Throughput)
	}
	describe(ps)
	describe(pad)
	if pad.SurvivalTime > ps.SurvivalTime {
		fmt.Printf("\nPAD extended survival %.1fx over plain peak shaving.\n",
			float64(pad.SurvivalTime)/float64(ps.SurvivalTime))
	}
}
