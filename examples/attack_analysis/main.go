// Attack analysis: explore how a power virus's parameters — class,
// spike width and frequency — change its ability to overload a drained
// rack, the exploration behind the paper's Figure 8. The example also
// shows the attacker's Phase-I learning: how accurately it estimates the
// victim's battery autonomy from the capping side channel.
package main

import (
	"fmt"
	"log"
	"time"

	padsec "repro"
)

func main() {
	fmt.Println("Effective attacks in 10 minutes against one drained rack")
	fmt.Println("(4 compromised servers of 10; budget 75% of nameplate, 8% overshoot tolerated)")
	fmt.Println()
	fmt.Printf("%-8s %-8s %-10s %s\n", "profile", "width", "per-min", "effective attacks")

	for _, prof := range []padsec.VirusProfile{
		padsec.CPUIntensive, padsec.MemIntensive, padsec.IOIntensive,
	} {
		for _, width := range []time.Duration{time.Second, 4 * time.Second} {
			for _, perMin := range []float64{1, 6} {
				n := effectiveAttacks(prof, width, perMin)
				fmt.Printf("%-8s %-8v %-10.3g %d\n", prof.Name, width, perMin, n)
			}
		}
	}

	// Phase-I learning: drive a full two-phase attack against a PSPC
	// cluster and report what the attacker inferred about the battery.
	cfg := padsec.ClusterConfig{
		Racks:          1,
		ServersPerRack: 10,
		Duration:       20 * time.Minute,
		Background:     padsec.FlatBackground(10, 0.5),
		Attack: padsec.NewAttack(4, padsec.AttackConfig{
			Profile:   padsec.CPUIntensive,
			MaxPhaseI: 18 * time.Minute,
		}),
		DisableTrips: true,
	}
	if _, err := padsec.Run(cfg, padsec.NewPSPC(padsec.SchemeOptions{})); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPhase-I side channel: the attacker measured a %v drain time "+
		"before capping betrayed the empty battery.\n",
		cfg.Attack.Attack.LearnedDrainTime().Round(time.Second))
}

func effectiveAttacks(prof padsec.VirusProfile, width time.Duration, perMin float64) int {
	cfg := padsec.ClusterConfig{
		Racks:          1,
		ServersPerRack: 10,
		Duration:       10 * time.Minute,
		Background:     padsec.FlatBackground(10, 0.5),
		Attack: padsec.NewAttack(4, padsec.AttackConfig{
			Profile:         prof,
			SpikeWidth:      width,
			SpikesPerMinute: perMin,
			PrepDuration:    time.Second,
			MaxPhaseI:       time.Second, // the rack battery is left at default (full)
		}),
		DisableTrips: true, // count overloads without ending the run
	}
	// Conventional management with a full battery would shave the spikes;
	// to study the raw threat the example leaves the battery untouched by
	// using the conventional (never-discharge) scheme.
	res, err := padsec.Run(cfg, padsec.NewConv(padsec.SchemeOptions{}))
	if err != nil {
		log.Fatal(err)
	}
	return res.EffectiveAttacks
}
