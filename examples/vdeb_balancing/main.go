// vDEB balancing: replay a synthetic Google-style trace against a small
// cluster under independent per-rack peak shaving and under the vDEB
// virtual battery pool, then print the battery state-of-charge maps side
// by side — the paper's Figure 13 in miniature. The pool keeps every
// rack's battery near the fleet average, leaving no drained "dark blue"
// rack for an attacker to find.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	padsec "repro"
)

const (
	racks   = 8
	spr     = 10
	horizon = 8 * time.Hour
	tick    = 5 * time.Minute
)

func main() {
	tr, err := padsec.GenerateTrace(padsec.TraceConfig{
		Machines: racks * spr,
		Horizon:  horizon,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	bg, err := padsec.TraceBackground(tr, tick)
	if err != nil {
		log.Fatal(err)
	}

	run := func(s padsec.Scheme) *padsec.Recording {
		res, err := padsec.Run(padsec.ClusterConfig{
			Racks:          racks,
			ServersPerRack: spr,
			Duration:       horizon,
			Tick:           tick,
			Background:     bg,
			Record:         true,
			DisableTrips:   true,
		}, s)
		if err != nil {
			log.Fatal(err)
		}
		return res.Recording
	}

	indep := run(padsec.NewPS(padsec.SchemeOptions{Offline: true}))
	pooled := run(padsec.NewVDEB(padsec.SchemeOptions{}))

	fmt.Println("Battery SOC map, independent per-rack shaving (rows = racks, columns = time):")
	printMap(indep)
	fmt.Println("\nBattery SOC map, vDEB pool:")
	printMap(pooled)

	fmt.Printf("\nworst rack SOC: independent %.0f%%, pooled %.0f%%\n",
		minSOC(indep)*100, minSOC(pooled)*100)
	fmt.Printf("mean cross-rack spread: independent %.1f pts, pooled %.1f pts\n",
		meanSpread(indep)*100, meanSpread(pooled)*100)
}

// printMap renders SOC as shade characters, one row per rack.
func printMap(rec *padsec.Recording) {
	shades := []byte(" .:-=+*#%@")
	cols := rec.RackSOC[0].Len()
	stride := cols/72 + 1
	for r, s := range rec.RackSOC {
		var b strings.Builder
		for c := 0; c < cols; c += stride {
			idx := int(s.Values[c] * float64(len(shades)))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			if idx < 0 {
				idx = 0
			}
			b.WriteByte(shades[idx])
		}
		fmt.Printf("rack %2d |%s|\n", r, b.String())
	}
}

func minSOC(rec *padsec.Recording) float64 {
	lo := 1.0
	for _, s := range rec.RackSOC {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
		}
	}
	return lo
}

func meanSpread(rec *padsec.Recording) float64 {
	cols := rec.RackSOC[0].Len()
	total := 0.0
	for c := 0; c < cols; c++ {
		mean, meanSq := 0.0, 0.0
		for _, s := range rec.RackSOC {
			mean += s.Values[c]
			meanSq += s.Values[c] * s.Values[c]
		}
		n := float64(len(rec.RackSOC))
		mean /= n
		total += math.Sqrt(math.Max(0, meanSq/n-mean*mean))
	}
	return total / float64(cols)
}
