// Capacity planning: size the μDEB super-capacitor bank. Sweeps the bank
// energy (as a fraction of the rack battery cabinet), measures survival
// under a dense hidden-spike attack with the battery pool already
// exhausted, and prices each point — the trade-off behind the paper's
// Figure 17. The interesting feature is the knee: once the bank covers a
// whole spike and can recover from headroom before the next one, survival
// jumps by an order of magnitude while cost keeps growing only linearly.
package main

import (
	"fmt"
	"log"
	"time"

	padsec "repro"
)

func main() {
	fractions := []float64{0.0005, 0.001, 0.002, 0.003, 0.005, 0.0075, 0.01}
	const horizon = 30 * time.Minute

	fmt.Println("μDEB sizing under a dense attack (battery pool exhausted)")
	fmt.Printf("%-12s %-12s %-14s %s\n", "bank (Wh)", "% of rack", "survival", "note")

	var base time.Duration
	for i, frac := range fractions {
		survival := survivalWith(frac, horizon)
		if i == 0 {
			base = survival
		}
		// The evaluated rack cabinet stores ~80 Wh; price the bank off
		// that.
		wh := 80.6 * frac
		note := ""
		if survival >= horizon {
			note = "outlasted the whole attack window"
		} else if base > 0 && survival > 3*base {
			note = "past the knee"
		}
		fmt.Printf("%-12.2f %-12.2f %-14v %s\n", wh, frac*100, survival, note)
	}
	fmt.Println("\nSuper-capacitors cost ~80x the $/Wh of lead-acid, so the bank is")
	fmt.Println("priced at a few percent of the rack battery — the knee is cheap.")
}

func survivalWith(fraction float64, horizon time.Duration) time.Duration {
	cfg := padsec.ClusterConfig{
		Racks:              3,
		ServersPerRack:     10,
		Duration:           horizon,
		OvershootTolerance: 0.04,
		Background:         padsec.FlatBackground(30, 0.31),
		StopOnTrip:         true,
		MicroDEBFactory:    padsec.NewMicroDEBFactory(fraction),
		Attack: padsec.NewAttack(6, padsec.AttackConfig{
			Profile:         padsec.CPUIntensive,
			PrepDuration:    time.Second,
			MaxPhaseI:       time.Second,
			SpikeWidth:      2 * time.Second,
			SpikesPerMinute: 6,
		}),
		// Rack batteries enter the window drained: Phase I already
		// happened.
		BatteryFactory: drainedBattery,
	}
	res, err := padsec.Run(cfg, padsec.NewUDEB(padsec.SchemeOptions{}))
	if err != nil {
		log.Fatal(err)
	}
	return res.SurvivalTime
}

// drainedBattery builds a rack cabinet at 2% charge.
func drainedBattery(nameplate padsec.Watts) padsec.BatteryStore {
	// A standard cabinet would be full; rebuilding it at 2% models the
	// post-Phase-I state.
	b := padsec.NewRackBattery(nameplate)
	drainTo(b, 0.02)
	return b
}

func drainTo(b padsec.BatteryStore, soc float64) {
	for b.SOC() > soc {
		if b.Discharge(b.MaxDischarge(), time.Second) <= 0 {
			return
		}
	}
}
