// Command padsearch characterizes the defense schemes by searching the
// attack space against them: it explores virus spike height, width,
// frequency, phase, ramp and multi-rack coordination with a seeded,
// budgeted strategy (Latin-hypercube seeding, then coordinate descent),
// scores every candidate on time-to-trip, battery drain and stealth
// margin, and writes a per-scheme robustness frontier.
//
// A search is a pure function of its flags: the frontier CSV and the
// evaluation JSONL are byte-identical at any -workers count. The worst
// case found per scheme can be exported with -corpus as a versioned
// scenario file, the format the regression corpus under
// internal/attacksearch/testdata/corpus is built from.
//
// Usage:
//
//	padsearch -scheme PAD -budget 2000 -workers 8 -csv frontier.csv
//	padsearch -scheme all -budget 400 -corpus corpusdir
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/attacksearch"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/schemes"
	"repro/internal/version"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var (
		schemeList  = flag.String("scheme", "all", "schemes to search against: all, or a comma list (case-insensitive) of Conv, PS, PSPC, uDEB, vDEB, PAD")
		budget      = flag.Int("budget", 400, "evaluation budget per scheme")
		seed        = flag.Uint64("seed", 1, "search seed; equal flags reproduce equal bytes")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation goroutines (results are identical at any count)")
		racks       = flag.Int("racks", 0, "cluster racks (0 = search default, 8)")
		spr         = flag.Int("servers-per-rack", 0, "servers per rack (0 = search default, 10)")
		duration    = flag.Duration("duration", 0, "per-evaluation horizon (0 = search default, 5m)")
		tick        = flag.Duration("tick", 0, "simulation step (0 = search default, 100ms)")
		bgMean      = flag.Float64("background", 0, "mean background utilization (0 = search default, 0.30)")
		quick       = flag.Bool("quick", false, "tiny environment and horizon for smoke runs (CI uses this)")
		noSkip      = flag.Bool("no-skip", false, "force per-tick evaluation (disable the engine's quiescent fast path; results are bit-identical either way)")
		csvPath     = flag.String("csv", "frontier.csv", "write the robustness frontier CSV here ('' disables)")
		jsonlPath   = flag.String("jsonl", "", "write every evaluation as JSONL here")
		corpusDir   = flag.String("corpus", "", "write each scheme's worst case as a scenario file into this directory, with outcomes pinned for all six schemes")
		progress    = flag.Bool("progress", true, "narrate search phases on stderr")
		metricsOut  = flag.Bool("metrics", false, "dump search metrics to stderr on exit")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	logFlags := obs.AddLogFlags(flag.CommandLine)
	prof = profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println("padsearch", version.String())
		return
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatal(err)
		}
	}()

	names, err := parseSchemes(*schemeList)
	if err != nil {
		fatal(err)
	}

	env := attacksearch.Env{
		Racks:          *racks,
		ServersPerRack: *spr,
		Duration:       *duration,
		Tick:           *tick,
		BGMean:         *bgMean,
	}
	if *quick {
		if env.Racks == 0 {
			env.Racks = 3
		}
		if env.ServersPerRack == 0 {
			env.ServersPerRack = 4
		}
		if env.Duration == 0 {
			env.Duration = 30 * time.Second
		}
		env.PatienceS = 12
		env.PrepS = 1
		env.NodesPerGroup = 3
	}

	reg := obs.NewRegistry()
	cfg := attacksearch.Config{
		Schemes: names,
		Budget:  *budget,
		Seed:    *seed,
		Workers: *workers,
		Env:     env,
		NoSkip:  *noSkip,
		Metrics: attacksearch.NewMetrics(reg),
	}
	if *progress {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "padsearch: "+format+"\n", args...)
		}
	}
	logger.Debug("search configured",
		"schemes", names, "budget", *budget, "seed", *seed, "workers", *workers, "quick", *quick)

	start := time.Now()
	rep, err := attacksearch.Search(cfg)
	if err != nil {
		fatal(err)
	}
	logger.Debug("search finished", "elapsed", time.Since(start))

	if *csvPath != "" {
		if err := writeFile(*csvPath, func(f *os.File) error {
			return attacksearch.WriteFrontierCSV(f, rep)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "padsearch: frontier written to %s\n", *csvPath)
	}
	if *jsonlPath != "" {
		if err := writeFile(*jsonlPath, func(f *os.File) error {
			return attacksearch.WriteEvalsJSONL(f, rep)
		}); err != nil {
			fatal(err)
		}
	}
	if *corpusDir != "" {
		if err := exportCorpus(*corpusDir, rep); err != nil {
			fatal(err)
		}
	}
	if err := attacksearch.Summarize(os.Stdout, rep); err != nil {
		fatal(err)
	}
	if *metricsOut {
		if err := reg.Write(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// parseSchemes resolves a case-insensitive comma list against the
// canonical scheme names.
func parseSchemes(list string) ([]string, error) {
	if strings.EqualFold(strings.TrimSpace(list), "all") {
		return nil, nil // Search defaults to all six
	}
	var out []string
	for _, raw := range strings.Split(list, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		found := ""
		for _, name := range schemes.SchemeNames {
			if strings.EqualFold(raw, name) {
				found = name
				break
			}
		}
		if found == "" {
			return nil, fmt.Errorf("unknown scheme %q (want one of %v)", raw, schemes.SchemeNames)
		}
		out = append(out, found)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no schemes in %q", list)
	}
	return out, nil
}

// exportCorpus writes each scheme's best attack as a corpus scenario
// with outcomes pinned for all six schemes.
func exportCorpus(dir string, rep *attacksearch.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sr := range rep.Schemes {
		scen := sr.Best.Scenario
		scen.Name = "corpus/" + strings.ToLower(sr.Scheme) + "-worst"
		if err := attacksearch.FillExpectations(&scen); err != nil {
			return err
		}
		path := filepath.Join(dir, strings.ToLower(sr.Scheme)+"-worst.json")
		if err := attacksearch.WriteScenario(path, scen); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "padsearch: corpus scenario written to %s (score %.4f)\n",
			path, sr.Best.Outcome.Score)
	}
	return nil
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padsearch:", err)
	if prof != nil {
		prof.Stop() // os.Exit skips defers; keep partial profiles usable
	}
	os.Exit(1)
}
