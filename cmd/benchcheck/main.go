// Command benchcheck gates CI on engine benchmark regressions: it parses
// `go test -bench` output, looks up each gated benchmark's checked-in
// baseline in BENCH_engine.json (the "after" section), and fails when
// measured ns/op exceeds baseline × max-ratio.
//
// The default ratio of 2 is deliberately loose — CI boxes are shared and
// differ from the baseline machine, so the gate exists to catch
// order-of-magnitude regressions (an accidentally quadratic loop, a lost
// cache) rather than to benchmark precisely. Tighten locally with
// -max-ratio when comparing like for like.
//
// -zero-allocs names benchmarks that must report exactly 0 allocs/op —
// an absolute invariant (the engine's allocation-free hot loop), immune
// to machine noise, so unlike the ns/op gate it has no tolerance. The
// bench run must include -benchmem for the allocs column to exist.
//
// -speedup asserts a measured ratio between two benchmarks from the same
// run: "Slow/Fast:5" fails unless Slow's ns/op is at least 5× Fast's.
// Both numbers come from the same machine and the same bench invocation,
// so unlike the baseline gate this is noise-immune — it guards
// structural speedups (the quiescent skip path must beat per-tick
// stepping on a quiet horizon) rather than absolute timings.
//
// Usage:
//
//	go test ./internal/sim -run '^$' -bench 'BenchmarkSimRunPAD|BenchmarkStepperTick' \
//	  -benchmem -benchtime=10x | \
//	  benchcheck -baseline BENCH_engine.json -gate BenchmarkSimRunPAD \
//	    -zero-allocs BenchmarkStepperTick \
//	    -speedup BenchmarkSimRunQuiet/BenchmarkSimRunQuietSkip:5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type baselineFile struct {
	After struct {
		Results map[string]struct {
			NsOp float64 `json:"ns_op"`
		} `json:"results"`
	} `json:"after"`
}

// measurement is one benchmark line's parsed metrics. allocsOp is only
// meaningful when hasAllocs is set (the run included -benchmem).
type measurement struct {
	nsOp      float64
	allocsOp  float64
	hasAllocs bool
}

// parseBench extracts name → metrics from `go test -bench` output. The
// GOMAXPROCS suffix (BenchmarkFoo-8) is stripped so names match the
// baseline file's keys.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Metric columns are "<value> <unit>" pairs after the iteration
		// count; pick out the units the gates consume.
		var m measurement
		nsOK := false
		for i := 2; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				m.nsOp, nsOK = v, true
			case "allocs/op":
				m.allocsOp, m.hasAllocs = v, true
			}
		}
		if !nsOK {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

// speedupSpec is one parsed -speedup assertion: the slow benchmark's
// measured ns/op must be at least min × the fast one's.
type speedupSpec struct {
	slow, fast string
	min        float64
}

// parseSpeedups parses the comma-separated "Slow/Fast:min" specs.
func parseSpeedups(s string) ([]speedupSpec, error) {
	var out []speedupSpec
	for _, f := range splitList(s) {
		names, minStr, ok := strings.Cut(f, ":")
		if !ok {
			return nil, fmt.Errorf("benchcheck: -speedup %q: want Slow/Fast:min", f)
		}
		slow, fast, ok := strings.Cut(names, "/")
		if !ok || slow == "" || fast == "" {
			return nil, fmt.Errorf("benchcheck: -speedup %q: want Slow/Fast:min", f)
		}
		min, err := strconv.ParseFloat(minStr, 64)
		if err != nil || min <= 0 {
			return nil, fmt.Errorf("benchcheck: -speedup %q: bad minimum ratio %q", f, minStr)
		}
		out = append(out, speedupSpec{slow: slow, fast: fast, min: min})
	}
	return out, nil
}

func run(benchOut io.Reader, baselinePath string, gates, zeroAllocs []string, speedups []speedupSpec, maxRatio float64, report io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchcheck: parsing %s: %w", baselinePath, err)
	}
	measured, err := parseBench(benchOut)
	if err != nil {
		return err
	}
	var failures []string
	for _, name := range gates {
		want, ok := base.After.Results[name]
		if !ok || want.NsOp <= 0 {
			return fmt.Errorf("benchcheck: no baseline ns_op for %s in %s", name, baselinePath)
		}
		got, ok := measured[name]
		if !ok {
			return fmt.Errorf("benchcheck: %s missing from bench output", name)
		}
		ratio := got.nsOp / want.NsOp
		fmt.Fprintf(report, "benchcheck: %s: %.0f ns/op vs baseline %.0f (%.2fx, limit %.2fx)\n",
			name, got.nsOp, want.NsOp, ratio, maxRatio)
		if ratio > maxRatio {
			failures = append(failures,
				fmt.Sprintf("%s regressed %.2fx over baseline (limit %.2fx)", name, ratio, maxRatio))
		}
	}
	for _, name := range zeroAllocs {
		got, ok := measured[name]
		if !ok {
			return fmt.Errorf("benchcheck: %s missing from bench output", name)
		}
		if !got.hasAllocs {
			return fmt.Errorf("benchcheck: %s has no allocs/op column (run go test with -benchmem)", name)
		}
		fmt.Fprintf(report, "benchcheck: %s: %g allocs/op (limit 0)\n", name, got.allocsOp)
		if got.allocsOp != 0 {
			failures = append(failures,
				fmt.Sprintf("%s allocates (%g allocs/op, want 0)", name, got.allocsOp))
		}
	}
	for _, sp := range speedups {
		slow, ok := measured[sp.slow]
		if !ok {
			return fmt.Errorf("benchcheck: %s missing from bench output", sp.slow)
		}
		fast, ok := measured[sp.fast]
		if !ok {
			return fmt.Errorf("benchcheck: %s missing from bench output", sp.fast)
		}
		if fast.nsOp <= 0 {
			return fmt.Errorf("benchcheck: %s measured 0 ns/op", sp.fast)
		}
		ratio := slow.nsOp / fast.nsOp
		fmt.Fprintf(report, "benchcheck: %s vs %s: %.1fx speedup (floor %.1fx)\n",
			sp.slow, sp.fast, ratio, sp.min)
		if ratio < sp.min {
			failures = append(failures,
				fmt.Sprintf("%s is only %.2fx faster than %s (floor %.2fx)",
					sp.fast, ratio, sp.slow, sp.min))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchcheck: %s", strings.Join(failures, "; "))
	}
	return nil
}

// splitList splits a comma-separated flag value, yielding nil for the
// empty string.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func main() {
	baseline := flag.String("baseline", "BENCH_engine.json", "baseline JSON file (after.results is the reference)")
	gate := flag.String("gate", "BenchmarkSimRunPAD", "comma-separated benchmarks to gate")
	zeroAllocs := flag.String("zero-allocs", "", "comma-separated benchmarks that must report exactly 0 allocs/op (needs -benchmem output)")
	speedup := flag.String("speedup", "", "comma-separated Slow/Fast:min assertions on measured ns/op ratios from this run")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when measured ns/op exceeds baseline by this factor")
	input := flag.String("input", "-", "bench output file, - for stdin")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	speedups, err := parseSpeedups(*speedup)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := run(in, *baseline, splitList(*gate), splitList(*zeroAllocs), speedups, *maxRatio, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
