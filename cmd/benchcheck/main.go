// Command benchcheck gates CI on engine benchmark regressions: it parses
// `go test -bench` output, looks up each gated benchmark's checked-in
// baseline in BENCH_engine.json (the "after" section), and fails when
// measured ns/op exceeds baseline × max-ratio.
//
// The default ratio of 2 is deliberately loose — CI boxes are shared and
// differ from the baseline machine, so the gate exists to catch
// order-of-magnitude regressions (an accidentally quadratic loop, a lost
// cache) rather than to benchmark precisely. Tighten locally with
// -max-ratio when comparing like for like.
//
// Usage:
//
//	go test ./internal/sim -run '^$' -bench BenchmarkSimRunPAD -benchtime=10x | \
//	  benchcheck -baseline BENCH_engine.json -gate BenchmarkSimRunPAD
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type baselineFile struct {
	After struct {
		Results map[string]struct {
			NsOp float64 `json:"ns_op"`
		} `json:"results"`
	} `json:"after"`
}

// parseBench extracts name → ns/op from `go test -bench` output. The
// GOMAXPROCS suffix (BenchmarkFoo-8) is stripped so names match the
// baseline file's keys.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = ns
	}
	return out, sc.Err()
}

func run(benchOut io.Reader, baselinePath string, gates []string, maxRatio float64, report io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchcheck: parsing %s: %w", baselinePath, err)
	}
	measured, err := parseBench(benchOut)
	if err != nil {
		return err
	}
	var failures []string
	for _, name := range gates {
		want, ok := base.After.Results[name]
		if !ok || want.NsOp <= 0 {
			return fmt.Errorf("benchcheck: no baseline ns_op for %s in %s", name, baselinePath)
		}
		got, ok := measured[name]
		if !ok {
			return fmt.Errorf("benchcheck: %s missing from bench output", name)
		}
		ratio := got / want.NsOp
		fmt.Fprintf(report, "benchcheck: %s: %.0f ns/op vs baseline %.0f (%.2fx, limit %.2fx)\n",
			name, got, want.NsOp, ratio, maxRatio)
		if ratio > maxRatio {
			failures = append(failures,
				fmt.Sprintf("%s regressed %.2fx over baseline (limit %.2fx)", name, ratio, maxRatio))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchcheck: %s", strings.Join(failures, "; "))
	}
	return nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_engine.json", "baseline JSON file (after.results is the reference)")
	gate := flag.String("gate", "BenchmarkSimRunPAD", "comma-separated benchmarks to gate")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when measured ns/op exceeds baseline by this factor")
	input := flag.String("input", "-", "bench output file, - for stdin")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, *baseline, strings.Split(*gate, ","), *maxRatio, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
