package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimRunConv-4        	      30	   1302350 ns/op	    7440 B/op	      54 allocs/op
BenchmarkSimRunPAD           	      30	   1575895 ns/op	   12368 B/op	     193 allocs/op
BenchmarkStepperTick-4       	     200	      3819 ns/op	      39 B/op	       0 allocs/op
BenchmarkNoMem               	      30	   1000000 ns/op
PASS
ok  	repro/internal/sim	0.424s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkSimRunPAD"].nsOp != 1575895 {
		t.Fatalf("PAD ns/op = %v", got["BenchmarkSimRunPAD"])
	}
	// The -4 GOMAXPROCS suffix must be stripped.
	if got["BenchmarkSimRunConv"].nsOp != 1302350 {
		t.Fatalf("Conv ns/op = %v (suffix not stripped?)", got["BenchmarkSimRunConv"])
	}
	if m := got["BenchmarkStepperTick"]; !m.hasAllocs || m.allocsOp != 0 {
		t.Fatalf("StepperTick allocs = %+v", m)
	}
	if m := got["BenchmarkSimRunPAD"]; !m.hasAllocs || m.allocsOp != 193 {
		t.Fatalf("PAD allocs = %+v", m)
	}
	if m := got["BenchmarkNoMem"]; m.hasAllocs {
		t.Fatalf("no-benchmem line claims allocs: %+v", m)
	}
}

func writeBaseline(t *testing.T, nsOp float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	content := fmt.Sprintf(`{"after":{"results":{"BenchmarkSimRunPAD":{"ns_op":%.0f}}}}`, nsOp)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithinLimit(t *testing.T) {
	base := writeBaseline(t, 1500000) // measured 1575895: ~1.05x, passes at 2x
	var report strings.Builder
	err := run(strings.NewReader(benchOutput), base,
		[]string{"BenchmarkSimRunPAD"}, nil, nil, 2.0, &report)
	if err != nil {
		t.Fatalf("within-limit run failed: %v\n%s", err, report.String())
	}
	if !strings.Contains(report.String(), "BenchmarkSimRunPAD") {
		t.Fatalf("report missing benchmark line:\n%s", report.String())
	}
}

func TestRunRegression(t *testing.T) {
	base := writeBaseline(t, 500000) // measured 1575895: ~3.15x, fails at 2x
	var report strings.Builder
	err := run(strings.NewReader(benchOutput), base,
		[]string{"BenchmarkSimRunPAD"}, nil, nil, 2.0, &report)
	if err == nil {
		t.Fatalf("3x regression passed the 2x gate\n%s", report.String())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunMissingBenchmark(t *testing.T) {
	base := writeBaseline(t, 1500000)
	var report strings.Builder
	if err := run(strings.NewReader(benchOutput), base,
		[]string{"BenchmarkNoSuch"}, nil, nil, 2.0, &report); err == nil {
		t.Fatal("unknown gate benchmark did not error")
	}
	if err := run(strings.NewReader("PASS\n"), base,
		[]string{"BenchmarkSimRunPAD"}, nil, nil, 2.0, &report); err == nil {
		t.Fatal("empty bench output did not error")
	}
}

func TestRunZeroAllocsGate(t *testing.T) {
	base := writeBaseline(t, 1500000)
	var report strings.Builder
	// 0 allocs/op passes.
	if err := run(strings.NewReader(benchOutput), base,
		nil, []string{"BenchmarkStepperTick"}, nil, 2.0, &report); err != nil {
		t.Fatalf("zero-alloc benchmark failed the gate: %v", err)
	}
	if !strings.Contains(report.String(), "0 allocs/op (limit 0)") {
		t.Fatalf("report missing allocs line:\n%s", report.String())
	}
	// A benchmark that allocates fails, with no ratio tolerance.
	err := run(strings.NewReader(benchOutput), base,
		nil, []string{"BenchmarkSimRunPAD"}, nil, 2.0, &report)
	if err == nil || !strings.Contains(err.Error(), "allocates") {
		t.Fatalf("allocating benchmark passed the zero-allocs gate: %v", err)
	}
	// A line without -benchmem columns is a hard error, not a pass.
	if err := run(strings.NewReader(benchOutput), base,
		nil, []string{"BenchmarkNoMem"}, nil, 2.0, &report); err == nil ||
		!strings.Contains(err.Error(), "-benchmem") {
		t.Fatalf("missing allocs column not diagnosed: %v", err)
	}
}

func TestRunSpeedupGate(t *testing.T) {
	base := writeBaseline(t, 1500000)
	var report strings.Builder
	// Conv (1302350) vs StepperTick (3819): ~341x, passes a 5x floor.
	ok := []speedupSpec{{slow: "BenchmarkSimRunConv", fast: "BenchmarkStepperTick", min: 5}}
	if err := run(strings.NewReader(benchOutput), base, nil, nil, ok, 2.0, &report); err != nil {
		t.Fatalf("341x speedup failed a 5x floor: %v", err)
	}
	if !strings.Contains(report.String(), "speedup") {
		t.Fatalf("report missing speedup line:\n%s", report.String())
	}
	// PAD vs Conv is ~1.2x: fails a 5x floor.
	bad := []speedupSpec{{slow: "BenchmarkSimRunPAD", fast: "BenchmarkSimRunConv", min: 5}}
	err := run(strings.NewReader(benchOutput), base, nil, nil, bad, 2.0, &report)
	if err == nil || !strings.Contains(err.Error(), "faster") {
		t.Fatalf("1.2x speedup passed a 5x floor: %v", err)
	}
	// A missing benchmark is a hard error, not a pass.
	missing := []speedupSpec{{slow: "BenchmarkNoSuch", fast: "BenchmarkSimRunConv", min: 5}}
	if err := run(strings.NewReader(benchOutput), base, nil, nil, missing, 2.0, &report); err == nil {
		t.Fatal("unknown speedup benchmark did not error")
	}
}

func TestParseSpeedups(t *testing.T) {
	got, err := parseSpeedups("BenchmarkA/BenchmarkB:5, BenchmarkC/BenchmarkD:1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].slow != "BenchmarkA" || got[0].fast != "BenchmarkB" ||
		got[0].min != 5 || got[1].min != 1.5 {
		t.Fatalf("parseSpeedups = %+v", got)
	}
	if out, err := parseSpeedups(""); err != nil || out != nil {
		t.Fatalf("empty spec = %v, %v", out, err)
	}
	for _, bad := range []string{"BenchmarkA:5", "BenchmarkA/BenchmarkB", "A/B:0", "A/B:x", "/B:5"} {
		if _, err := parseSpeedups(bad); err == nil {
			t.Fatalf("parseSpeedups(%q) did not error", bad)
		}
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Fatalf("empty list = %v", got)
	}
	got := splitList("a, b,,c")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList = %v", got)
	}
}
