// Command padload is the fleet load generator for padd: it creates a
// configurable number of sessions against a live daemon and drives each
// at a target samples/sec over any ingest path — per-session JSON
// POSTs, batched binary wire frames, or persistent binary-acked stream
// connections (one per worker) — while recording round-trip latencies
// (POST or send→ack) in a histogram.
//
// Usage:
//
//	padd -addr :8484 &
//	padload -addr http://localhost:8484 -sessions 1000 -rate 10 -duration 5s -mode stream
//
// A ramp profile (-ramp 30s) spreads session creation linearly across
// the window instead of front-loading it, which is how fleet churn is
// exercised. With -verify (the default) padload lists every session it
// created after the drive phase and fails unless the daemon accepted
// every acknowledged sample losslessly: zero discards and ticks
// catching up to accepted.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/padd"
	"repro/internal/padd/wire"
	"repro/internal/version"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8484", "padd base URL")
		sessions = flag.Int("sessions", 1000, "sessions to create and drive")
		rate     = flag.Float64("rate", 10, "samples per second per session")
		duration = flag.Duration("duration", 10*time.Second, "drive phase length")
		mode     = flag.String("mode", "binary", "ingest path: binary (batched wire frames), json (per-session POSTs) or stream (persistent connections with binary acks)")
		batch    = flag.Int("batch", 10, "samples per session per send")
		perFrame = flag.Int("frame-sessions", 64, "sessions batched into one binary frame")
		ramp     = flag.Duration("ramp", 0, "spread session creation over this window (0 = create as fast as possible)")
		workers  = flag.Int("workers", 16, "concurrent posting goroutines")
		scheme   = flag.String("scheme", "Conv", "defense scheme for the driven sessions")
		racks    = flag.Int("racks", 1, "racks per session")
		spr      = flag.Int("servers-per-rack", 2, "servers per rack per session")
		prefix   = flag.String("prefix", "load", "session id prefix")
		keep     = flag.Bool("keep", false, "leave the sessions resident on exit (measure memory, scrape /metrics)")
		verify   = flag.Bool("verify", true, "after driving, assert lossless ingest (zero discards) across the fleet")
		verbose  = flag.Bool("v", false, "per-second progress lines")
		showVer  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("padload", version.String())
		return
	}
	if *mode != padd.ModeBinary && *mode != padd.ModeJSON && *mode != padd.ModeStream {
		fatal(fmt.Errorf("padload: -mode %q: want binary, json or stream", *mode))
	}
	if *sessions < 1 || *batch < 1 || *perFrame < 1 || *workers < 1 || *rate <= 0 {
		fatal(fmt.Errorf("padload: -sessions, -batch, -frame-sessions, -workers must be >= 1 and -rate > 0"))
	}

	lg := &loadgen{
		base:     strings.TrimRight(*addr, "/"),
		mode:     *mode,
		batch:    *batch,
		perFrame: *perFrame,
		servers:  *racks * *spr,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * *workers,
			MaxIdleConnsPerHost: 4 * *workers,
		}},
	}

	// Phase 1: create the fleet, optionally ramped.
	ids := make([]string, *sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%06d", *prefix, i)
	}
	t0 := time.Now()
	if err := lg.createAll(ids, *scheme, *racks, *spr, *ramp, *workers); err != nil {
		fatal(err)
	}
	created := time.Since(t0)
	fmt.Printf("padload: created %d sessions in %v (%.0f sessions/sec)\n",
		*sessions, created.Round(time.Millisecond), float64(*sessions)/created.Seconds())

	// Phase 2: drive. Each round sends -batch samples to every session,
	// paced so each session averages -rate samples/sec.
	interval := time.Duration(float64(*batch) / *rate * float64(time.Second))
	rounds := int(math.Ceil(duration.Seconds() / interval.Seconds()))
	if rounds < 1 {
		rounds = 1
	}
	t0 = time.Now()
	lg.drive(ids, rounds, interval, *workers, *verbose)
	drove := time.Since(t0)

	sent := lg.samples.Load()
	fmt.Printf("padload: %s mode: %d samples across %d sessions in %v (%.0f samples/sec), %d posts, %d backpressure retries\n",
		*mode, sent, *sessions, drove.Round(time.Millisecond),
		float64(sent)/drove.Seconds(), lg.posts.Load(), lg.retries.Load())
	lg.hist.report(os.Stdout)
	if n := lg.errors.Load(); n > 0 {
		fatal(fmt.Errorf("padload: %d posts failed hard (non-429)", n))
	}

	// Phase 3: verify lossless ingest, then clean up.
	if *verify {
		if err := lg.verify(ids, sent); err != nil {
			fatal(err)
		}
		fmt.Printf("padload: verified: every acknowledged sample ticked, zero discards\n")
	}
	// End-of-run fleet rollup: where the driven fleet landed.
	if err := lg.fleetReport(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "padload: fleet rollup unavailable: %v\n", err)
	}
	if !*keep {
		if err := lg.deleteAll(ids, *workers); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

type loadgen struct {
	base     string
	mode     string
	batch    int
	perFrame int
	servers  int
	client   *http.Client

	samples atomic.Int64
	posts   atomic.Int64
	retries atomic.Int64
	errors  atomic.Int64
	hist    latencyHist
}

// createAll creates the fleet with -workers concurrent creators; with a
// ramp window, creation is paced so session i lands at i/N into the
// window.
func (lg *loadgen) createAll(ids []string, scheme string, racks, spr int, ramp time.Duration, workers int) error {
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	start := time.Now()
	next := atomic.Int64{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				if ramp > 0 {
					due := start.Add(time.Duration(float64(ramp) * float64(i) / float64(len(ids))))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				cfg := padd.SessionConfig{
					ID: ids[i], Scheme: scheme, Racks: racks, ServersPerRack: spr,
				}
				body, _ := json.Marshal(cfg)
				for {
					code, respBody, err := lg.post("/v1/sessions", "application/json", body)
					if err == nil && code == http.StatusCreated {
						break
					}
					if err == nil && code == http.StatusServiceUnavailable {
						// -max-sessions or a draining daemon: back off.
						time.Sleep(100 * time.Millisecond)
						continue
					}
					if err == nil {
						err = fmt.Errorf("create %s: HTTP %d: %s", ids[i], code, respBody)
					}
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// drive runs the paced send rounds. Sessions are partitioned across
// workers; binary mode batches -frame-sessions records per POST.
func (lg *loadgen) drive(ids []string, rounds int, interval time.Duration, workers int, verbose bool) {
	var wg sync.WaitGroup
	per := (len(ids) + workers - 1) / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, ids []string) {
			defer wg.Done()
			flat := make([]float64, lg.batch*lg.servers)
			var enc wire.Encoder
			var jsonBody []byte
			// Stream mode: one persistent connection per worker for the
			// whole drive phase — that is the point of the protocol.
			var sc *padd.StreamClient
			if lg.mode == padd.ModeStream {
				var err error
				if sc, err = padd.DialStream(lg.base); err != nil {
					fmt.Fprintf(os.Stderr, "padload: stream dial: %v\n", err)
					lg.errors.Add(1)
					return
				}
				defer sc.Close()
			}
			for r := 0; r < rounds; r++ {
				// Pace: round r begins at start + r*interval.
				if d := time.Until(start.Add(time.Duration(r) * interval)); d > 0 {
					time.Sleep(d)
				}
				lg.fill(flat, w, r)
				switch lg.mode {
				case padd.ModeStream:
					for lo := 0; lo < len(ids); lo += lg.perFrame {
						hi := lo + lg.perFrame
						if hi > len(ids) {
							hi = len(ids)
						}
						enc.Reset()
						for _, id := range ids[lo:hi] {
							if err := enc.AppendFlat(id, lg.batch, lg.servers, flat); err != nil {
								lg.errors.Add(1)
								return
							}
						}
						if !lg.streamSend(sc, &enc, flat) {
							return
						}
					}
				case padd.ModeBinary:
					for lo := 0; lo < len(ids); lo += lg.perFrame {
						hi := lo + lg.perFrame
						if hi > len(ids) {
							hi = len(ids)
						}
						enc.Reset()
						for _, id := range ids[lo:hi] {
							if err := enc.AppendFlat(id, lg.batch, lg.servers, flat); err != nil {
								lg.errors.Add(1)
								return
							}
						}
						lg.send("/v1/ingest", "application/octet-stream", enc.Frame(), (hi-lo)*lg.batch)
					}
				default:
					var req padd.TelemetryRequest
					for i := 0; i < lg.batch; i++ {
						req.Samples = append(req.Samples,
							padd.TelemetrySample{U: flat[i*lg.servers : (i+1)*lg.servers]})
					}
					jsonBody, _ = json.Marshal(req)
					for _, id := range ids {
						lg.send("/v1/sessions/"+id+"/telemetry", "application/json", jsonBody, lg.batch)
					}
				}
				if verbose && w == 0 {
					fmt.Printf("padload: round %d/%d, %d samples sent\n", r+1, rounds, lg.samples.Load())
				}
			}
		}(w, ids[lo:hi])
	}
	wg.Wait()
}

// fill writes one round's utilization: a slow sine per worker with a
// small per-sample phase shift, always inside [0, 1].
func (lg *loadgen) fill(flat []float64, worker, round int) {
	for i := range flat {
		phase := float64(round*len(flat)+i)/200 + float64(worker)
		flat[i] = 0.5 + 0.4*math.Sin(phase)
	}
}

// send posts one ingest payload, retrying on 429 until accepted, and
// observes the round-trip latency of every attempt.
func (lg *loadgen) send(path, contentType string, body []byte, samples int) {
	for {
		t0 := time.Now()
		code, respBody, err := lg.post(path, contentType, body)
		lg.hist.observe(time.Since(t0))
		lg.posts.Add(1)
		if err != nil {
			lg.errors.Add(1)
			return
		}
		switch code {
		case http.StatusAccepted:
			lg.samples.Add(int64(samples))
			return
		case http.StatusTooManyRequests:
			lg.retries.Add(1)
			time.Sleep(2 * time.Millisecond)
		default:
			fmt.Fprintf(os.Stderr, "padload: %s: HTTP %d: %s\n", path, code, respBody)
			lg.errors.Add(1)
			return
		}
	}
}

// streamSend writes the encoded frame on the worker's stream and waits
// for its binary ack (stop-and-wait keeps the latency histogram honest:
// each observation is one frame's full send→ack round trip). Samples
// are counted from the ack's accepted tally, so a partial ack never
// over-counts; queue-full rejects are re-encoded and retried alone,
// mirroring the 429 retry on the POST paths. Returns false on a hard
// failure (connection error or a non-backpressure reject).
func (lg *loadgen) streamSend(sc *padd.StreamClient, enc *wire.Encoder, flat []float64) bool {
	var a wire.Ack
	var retry []string
	for {
		t0 := time.Now()
		if _, err := sc.Send(enc.Frame()); err != nil {
			fmt.Fprintf(os.Stderr, "padload: stream send: %v\n", err)
			lg.errors.Add(1)
			return false
		}
		if err := sc.ReadAck(&a); err != nil {
			fmt.Fprintf(os.Stderr, "padload: stream ack: %v\n", err)
			lg.errors.Add(1)
			return false
		}
		lg.hist.observe(time.Since(t0))
		lg.posts.Add(1)
		lg.samples.Add(int64(a.Samples))
		switch a.Status {
		case wire.AckOK:
			return true
		case wire.AckPartial, wire.AckBackpressure:
			retry = retry[:0]
			for _, rej := range a.Rejects {
				if rej.Reason != wire.RejectQueueFull {
					fmt.Fprintf(os.Stderr, "padload: stream reject %s: reason %d\n", rej.ID, rej.Reason)
					lg.errors.Add(1)
					return false
				}
				retry = append(retry, string(rej.ID)) // copy: ID aliases the ack read buffer
			}
			if len(retry) == 0 {
				return true
			}
			lg.retries.Add(1)
			time.Sleep(2 * time.Millisecond)
			enc.Reset()
			for _, id := range retry {
				if err := enc.AppendFlat(id, lg.batch, lg.servers, flat); err != nil {
					lg.errors.Add(1)
					return false
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "padload: stream ack status %s\n", wire.AckStatusName(a.Status))
			lg.errors.Add(1)
			return false
		}
	}
}

func (lg *loadgen) post(path, contentType string, body []byte) (int, string, error) {
	resp, err := lg.client.Post(lg.base+path, contentType, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
	return resp.StatusCode, string(bytes.TrimSpace(out)), nil
}

// verify lists the fleet and checks the lossless-ingest contract: the
// daemon must eventually tick every acknowledged sample and discard
// nothing. Polls briefly to let queues drain.
func (lg *loadgen) verify(ids []string, sent int64) error {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := lg.client.Get(lg.base + "/v1/sessions")
		if err != nil {
			return err
		}
		var list struct {
			Sessions []padd.SessionStatus `json:"sessions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var accepted, ticks, discarded, coasts, queued int64
		for _, st := range list.Sessions {
			if !want[st.ID] {
				continue
			}
			accepted += st.Accepted
			ticks += st.Ticks
			discarded += st.Discarded
			coasts += st.Coasts
			queued += int64(st.QueueDepth)
		}
		if discarded > 0 {
			return fmt.Errorf("padload: verify: %d samples discarded", discarded)
		}
		if queued == 0 && ticks == accepted+coasts {
			if accepted != sent {
				return fmt.Errorf("padload: verify: daemon accepted %d samples, padload sent %d", accepted, sent)
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("padload: verify: queues not drained: %d queued, %d/%d ticked", queued, ticks, accepted+coasts)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// fleetReport fetches GET /v1/fleet and prints the rollup padtop
// renders live — security-level distribution and breaker-margin
// percentiles — as an end-of-run summary of where the fleet landed.
func (lg *loadgen) fleetReport(w io.Writer) error {
	resp, err := lg.client.Get(lg.base + "/v1/fleet")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var fs padd.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		return err
	}
	levels := make([]string, 0, len(fs.LevelSessions))
	for l, n := range fs.LevelSessions {
		if n > 0 {
			levels = append(levels, fmt.Sprintf("L%d:%d", l, n))
		}
	}
	if len(levels) == 0 {
		levels = append(levels, "none")
	}
	var total int64
	for _, n := range fs.MarginSessions {
		total += n
	}
	// Margin percentiles from the occupancy distribution: the smallest
	// bound covering the quantile (the last bucket is open-ended).
	quantile := func(q float64) string {
		if total == 0 {
			return "n/a"
		}
		target := int64(math.Ceil(q * float64(total)))
		cum := int64(0)
		for i, n := range fs.MarginSessions {
			cum += n
			if cum >= target {
				if i < len(fs.MarginBoundsWatts) {
					return fmt.Sprintf("<=%gW", fs.MarginBoundsWatts[i])
				}
				break
			}
		}
		return fmt.Sprintf(">%gW", fs.MarginBoundsWatts[len(fs.MarginBoundsWatts)-1])
	}
	fmt.Fprintf(w, "padload: fleet: %d sessions (%d under attack), levels %s, margin p50 %s p99 %s\n",
		fs.Sessions, fs.SessionsUnderAttack, strings.Join(levels, " "), quantile(0.50), quantile(0.99))
	return nil
}

func (lg *loadgen) deleteAll(ids []string, workers int) error {
	var wg sync.WaitGroup
	next := atomic.Int64{}
	var failed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				req, _ := http.NewRequest(http.MethodDelete, lg.base+"/v1/sessions/"+ids[i], nil)
				resp, err := lg.client.Do(req)
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		return fmt.Errorf("padload: %d deletes failed", n)
	}
	return nil
}

// latencyHist is a power-of-two histogram of POST round-trip times.
type latencyHist struct {
	counts [22]atomic.Int64 // bucket i: < 2^i * 16us; last is overflow
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds() / 16
	b := 0
	for us > 0 && b < len(h.counts)-1 {
		us >>= 1
		b++
	}
	h.counts[b].Add(1)
}

// report prints p50/p90/p99/max estimated from bucket upper bounds.
func (h *latencyHist) report(w io.Writer) {
	var counts [22]int64
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return
	}
	bound := func(b int) time.Duration {
		return time.Duration(16<<b) * time.Microsecond
	}
	quantile := func(q float64) time.Duration {
		target := int64(math.Ceil(q * float64(total)))
		cum := int64(0)
		for i, c := range counts {
			cum += c
			if cum >= target {
				return bound(i)
			}
		}
		return bound(len(counts) - 1)
	}
	qs := []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1}}
	parts := make([]string, 0, len(qs))
	for _, s := range qs {
		parts = append(parts, fmt.Sprintf("%s<%v", s.name, quantile(s.q)))
	}
	fmt.Fprintf(w, "padload: post latency: %s (%d posts)\n", strings.Join(parts, " "), total)
}
