// Command attackgen renders power-virus utilization traces — the dense
// and sparse spike trains of the paper's Figure 12, or a custom shape —
// as time,utilization CSV.
//
// Usage:
//
//	attackgen -scenario dense -profile CPU -duration 4m
//	attackgen -width 2s -per-min 3 -profile IO
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/version"
	"repro/internal/virus"
)

// pprof is package-level so fatal can flush profiles before os.Exit.
var pprof *profiling.Flags

func main() {
	var (
		scenario    = flag.String("scenario", "", "canned scenario: dense or sparse (overrides width/per-min)")
		profile     = flag.String("profile", "CPU", "virus profile: CPU, Mem, IO")
		width       = flag.Duration("width", time.Second, "spike width")
		perMin      = flag.Float64("per-min", 4, "spikes per minute")
		rest        = flag.Float64("rest", 0.3, "between-spike utilization")
		duration    = flag.Duration("duration", 4*time.Minute, "trace length")
		step        = flag.Duration("step", 100*time.Millisecond, "sample step")
		seed        = flag.Uint64("seed", 1, "random seed")
		out         = flag.String("o", "", "output file (default stdout)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	logFlags := obs.AddLogFlags(flag.CommandLine)
	pprof = profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println("attackgen", version.String())
		return
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := pprof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := pprof.Stop(); err != nil {
			fatal(err)
		}
	}()

	prof, err := virus.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	scen := virus.Scenario{
		Name:            "Custom",
		SpikeWidth:      *width,
		SpikesPerMinute: *perMin,
		RestFraction:    *rest,
	}
	switch *scenario {
	case "dense":
		scen = virus.DenseAttack
	case "sparse":
		scen = virus.SparseAttack
	case "":
	default:
		fatal(fmt.Errorf("unknown scenario %q (want dense or sparse)", *scenario))
	}

	series := scen.UtilizationTrace(prof, *duration, *step, *seed)
	logger.Debug("trace generated",
		"scenario", scen.Name, "profile", prof.Name, "samples", len(series.Values))
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# %s attack, %s virus, width %v, %.3g/min\n",
		scen.Name, prof.Name, scen.SpikeWidth, scen.SpikesPerMinute)
	fmt.Fprintln(w, "seconds,utilization")
	for i, v := range series.Values {
		fmt.Fprintf(w, "%.1f,%.4f\n", float64(i)*step.Seconds(), v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attackgen:", err)
	if pprof != nil {
		pprof.Stop()
	}
	os.Exit(1)
}
