// Command padsim runs one power-attack simulation: a battery-backed
// cluster under a two-phase power virus, managed by one of the six
// evaluated schemes, and prints survival time, overload counts and
// throughput.
//
// Usage:
//
//	padsim -scheme PAD -racks 22 -duration 30m -attack-nodes 4 \
//	       -profile CPU -spike-width 4s -spikes-per-min 6
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/version"
	"repro/internal/virus"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var (
		schemeName  = flag.String("scheme", "PAD", "power management scheme: Conv, PS, PSPC, uDEB, vDEB, PAD")
		racks       = flag.Int("racks", 22, "number of racks")
		spr         = flag.Int("servers-per-rack", 10, "servers per rack")
		duration    = flag.Duration("duration", 30*time.Minute, "simulated time span")
		tick        = flag.Duration("tick", 100*time.Millisecond, "simulation step")
		ratio       = flag.Float64("oversubscription", 0.75, "PDU budget as a fraction of total nameplate")
		tolerance   = flag.Float64("overshoot", 0.08, "tolerated overload fraction above budget")
		bgMean      = flag.Float64("background", 0.55, "mean background CPU utilization")
		seed        = flag.Uint64("seed", 1, "random seed")
		attackNodes = flag.Int("attack-nodes", 4, "number of compromised servers (0 disables the attack)")
		profileName = flag.String("profile", "CPU", "virus profile: CPU, Mem, IO")
		spikeWidth  = flag.Duration("spike-width", 4*time.Second, "Phase-II spike width")
		spikesPM    = flag.Float64("spikes-per-min", 6, "Phase-II spike frequency")
		microFrac   = flag.Float64("micro-fraction", 0.01, "μDEB energy as a fraction of the rack battery (uDEB/PAD)")
		stopOnTrip  = flag.Bool("stop-on-trip", true, "end the run at the first breaker trip")
		compare     = flag.Bool("compare", false, "run all six schemes and chart their survival")
		tracePath   = flag.String("trace", "", "write an engine event trace to this file for cmd/padtrace (with -compare, the scheme name is inserted before the extension)")
		traceFormat = flag.String("trace-format", "jsonl", "trace format: jsonl (padtrace input) or chrome (Perfetto / chrome://tracing)")
		chart       = flag.Bool("chart", false, "plot the cluster feed draw and mean battery SOC over the run")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for -compare (1 = sequential)")
		rackWorkers = flag.Int("rack-workers", 0, "intra-run rack-kernel goroutines (0/1 = serial; results are bit-identical either way, worthwhile only for large clusters)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	logFlags := obs.AddLogFlags(flag.CommandLine)
	prof = profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println("padsim", version.String())
		return
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatal(err)
		}
	}()

	cfg := sim.Config{
		Racks:                 *racks,
		ServersPerRack:        *spr,
		Duration:              *duration,
		Tick:                  *tick,
		OversubscriptionRatio: *ratio,
		OvershootTolerance:    *tolerance,
		Background:            noisyBackground(*racks**spr, *bgMean, *duration, *seed),
		StopOnTrip:            *stopOnTrip,
		Workers:               *rackWorkers,
	}
	logger.Debug("scenario configured",
		"scheme", *schemeName, "compare", *compare, "racks", *racks,
		"servers_per_rack", *spr, "duration", *duration, "tick", *tick,
		"attack_nodes", *attackNodes, "seed", *seed, "rack_workers", *rackWorkers)
	// An Attack is stateful and stepped by the engine, so every run needs
	// its own instance; mkAttack builds one from the flags.
	mkAttack := func() *sim.AttackSpec {
		if *attackNodes <= 0 {
			return nil
		}
		prof, err := virus.ProfileByName(*profileName)
		if err != nil {
			fatal(err)
		}
		servers := make([]int, *attackNodes)
		for i := range servers {
			servers[i] = i
		}
		atk, err := virus.New(virus.Config{
			Profile:         prof,
			SpikeWidth:      *spikeWidth,
			SpikesPerMinute: *spikesPM,
			Seed:            *seed,
		})
		if err != nil {
			fatal(err)
		}
		return &sim.AttackSpec{Servers: servers, Attack: atk}
	}

	opts := schemes.Options{ServersPerRack: *spr}
	if *compare {
		runComparison(cfg, mkAttack, opts, *microFrac, *workers, *tracePath, *traceFormat)
		return
	}
	cfg.Attack = mkAttack()
	scheme, err := schemes.ByName(*schemeName, opts)
	if err != nil {
		fatal(err)
	}
	if schemes.NeedsMicroDEB(*schemeName) {
		cfg.MicroDEBFactory = schemes.MicroDEBFactory(*microFrac)
	}

	if *chart {
		cfg.Record = true
		cfg.RecordStep = cfg.Duration / 72
		if cfg.RecordStep < cfg.Tick {
			cfg.RecordStep = cfg.Tick
		}
	}
	var trace *tracerFile
	if *tracePath != "" {
		trace, err = openTrace(*tracePath, *traceFormat)
		if err != nil {
			fatal(err)
		}
		cfg.Trace = trace.tr
	}
	res, err := sim.Run(cfg, scheme)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scheme:            %s\n", res.Scheme)
	fmt.Printf("survival time:     %v", res.SurvivalTime)
	if !res.Tripped {
		fmt.Printf(" (no breaker trip within the horizon)")
	} else if res.FirstTripRack >= 0 {
		fmt.Printf(" (rack %d feed tripped)", res.FirstTripRack)
	} else {
		fmt.Printf(" (cluster PDU tripped)")
	}
	fmt.Println()
	fmt.Printf("effective attacks: %d\n", res.EffectiveAttacks)
	fmt.Printf("throughput:        %.4f\n", res.Throughput)
	fmt.Printf("mean shed ratio:   %.4f\n", res.MeanShedRatio)
	fmt.Printf("battery energy:    %v\n", res.EnergyFromBatteries)
	fmt.Printf("μDEB energy:       %v\n", res.EnergyFromMicro)
	if trace != nil {
		events, dropped := trace.tr.Len(), trace.tr.Dropped()
		if err := trace.close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:             %s (%d events, %d dropped)\n", *tracePath, events, dropped)
	}
	if *chart && res.Recording != nil {
		fmt.Println()
		renderTimeline(res.Recording)
	}
}

// renderTimeline plots the cluster feed draw and the fleet-mean battery
// SOC over the run.
func renderTimeline(rec *sim.Recording) {
	meanSOC := make([]float64, 0, rec.TotalGrid.Len())
	for i := 0; i < rec.TotalGrid.Len(); i++ {
		sum := 0.0
		for _, s := range rec.RackSOC {
			sum += s.Values[i]
		}
		meanSOC = append(meanSOC, sum/float64(len(rec.RackSOC))*100)
	}
	grid := &report.LineChart{
		Title:  "Cluster feed draw (W) over the run",
		Series: []report.ChartSeries{{Name: "grid draw", Values: rec.TotalGrid.Values}},
	}
	if err := grid.Render(os.Stdout); err != nil {
		fatal(err)
	}
	soc := &report.LineChart{
		Title:  "Fleet-mean battery SOC (%) over the run",
		YMin:   0,
		YMax:   100,
		Series: []report.ChartSeries{{Name: "mean SOC", Values: meanSOC}},
	}
	if err := soc.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padsim:", err)
	if prof != nil {
		prof.Stop() // os.Exit skips defers; keep partial profiles usable
	}
	os.Exit(1)
}

// tracerFile couples a run's tracer to the file backing its sink so the
// two close together.
type tracerFile struct {
	tr *obs.Tracer
	f  *os.File
}

// openTrace creates path and attaches a fresh tracer flushing to it in
// the flagged format.
func openTrace(path, format string) (*tracerFile, error) {
	var mk func(*os.File) obs.Sink
	switch format {
	case "jsonl":
		mk = func(f *os.File) obs.Sink { return obs.NewJSONLSink(f) }
	case "chrome":
		mk = func(f *os.File) obs.Sink { return obs.NewChromeSink(f) }
	default:
		return nil, fmt.Errorf("unknown -trace-format %q (want jsonl or chrome)", format)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &tracerFile{tr: obs.NewTracer(0, mk(f)), f: f}, nil
}

// close flushes the trace footer and closes the file.
func (t *tracerFile) close() error {
	if err := t.tr.Close(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}

// comparePath derives the per-scheme trace path under -compare by
// inserting the scheme name before the extension: run.trace -> run.PAD.trace.
func comparePath(path, scheme string) string {
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "." + scheme + ext
}

// runComparison executes the same scenario under all six schemes in the
// worker pool and prints a survival bar chart. Each run gets its own
// Config copy and a fresh Attack instance (the Attack is stateful), so
// every scheme faces the identical scenario and the bars are independent
// of the worker count.
func runComparison(base sim.Config, mkAttack func() *sim.AttackSpec,
	opts schemes.Options, microFrac float64, workers int, tracePath, traceFormat string) {
	type entry struct {
		name  string
		mk    func() sim.Scheme
		micro bool
	}
	var entries []entry
	for _, name := range schemes.SchemeNames {
		name := name
		entries = append(entries, entry{
			name:  name,
			mk:    func() sim.Scheme { s, _ := schemes.ByName(name, opts); return s },
			micro: schemes.NeedsMicroDEB(name),
		})
	}
	var jobs []runner.Job[*sim.Result]
	for _, e := range entries {
		jobs = append(jobs, runner.Job[*sim.Result]{
			Key: "padsim/compare/" + e.name,
			Run: func() (*sim.Result, error) {
				cfg := base
				cfg.Key = "padsim/compare/" + e.name
				cfg.Attack = mkAttack()
				if e.micro {
					cfg.MicroDEBFactory = schemes.MicroDEBFactory(microFrac)
				}
				if tracePath == "" {
					return sim.Run(cfg, e.mk())
				}
				// Each concurrent run writes its own per-scheme trace file
				// through its own tracer; goroutine confinement holds.
				trace, err := openTrace(comparePath(tracePath, e.name), traceFormat)
				if err != nil {
					return nil, err
				}
				cfg.Trace = trace.tr
				res, err := sim.Run(cfg, e.mk())
				if cerr := trace.close(); err == nil {
					err = cerr
				}
				return res, err
			},
		})
	}
	results, err := runner.Collect(runner.Pool{Workers: workers}, jobs)
	if err != nil {
		fatal(err)
	}
	chart := &report.BarChart{Title: "Survival time (s) under this scenario"}
	for i, e := range entries {
		res := results[i]
		label := e.name
		if !res.Tripped {
			label += " (no trip)"
		}
		chart.Bars = append(chart.Bars, report.Bar{Label: label, Value: res.SurvivalTime.Seconds()})
	}
	if err := chart.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if tracePath != "" {
		for _, e := range entries {
			fmt.Printf("trace: %-5s %s\n", e.name, comparePath(tracePath, e.name))
		}
	}
}

func noisyBackground(servers int, mean float64, horizon time.Duration, seed uint64) []*stats.Series {
	return stats.NoisyUtilization(servers, mean, horizon, 10*time.Second, seed)
}
