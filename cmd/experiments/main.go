// Command experiments regenerates every measured table and figure of the
// paper. Each experiment prints its summary table to stdout and writes
// CSV (and, for the map figures, heat-map text) under -results.
//
// Usage:
//
//	experiments                 # full-scale run of everything
//	experiments -quick          # second-scale run, shapes preserved
//	experiments -only fig15     # one experiment
//	experiments -workers 1      # sequential legacy path
//
// Independent simulation runs within each experiment fan out across
// -workers goroutines (default: GOMAXPROCS). The output is byte-identical
// at any worker count; -workers 1 runs everything inline on the calling
// goroutine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/version"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

type experiment struct {
	name string
	run  func(experiments.Params, string) error
}

func main() {
	var (
		quick       = flag.Bool("quick", false, "run second-scale versions (shapes preserved)")
		seed        = flag.Uint64("seed", 1, "random seed")
		only        = flag.String("only", "", "comma-separated experiment names (fig5, table1, ...); empty runs all")
		results     = flag.String("results", "results", "output directory for CSV artifacts")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker goroutines (1 = sequential)")
		progress    = flag.Bool("progress", false, "report per-run progress and ETA on stderr")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	logFlags := obs.AddLogFlags(flag.CommandLine)
	prof = profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println("experiments", version.String())
		return
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatal(err)
		}
	}()

	p := experiments.Params{Quick: *quick, Seed: *seed, Workers: *workers}
	if *progress {
		p.Progress = func(pr runner.Progress) {
			logger.Info("run finished",
				"done", pr.Done, "total", pr.Total, "key", pr.Key,
				"elapsed", pr.Elapsed.Round(time.Second), "eta", pr.ETA.Round(time.Second))
		}
	}
	if err := os.MkdirAll(*results, 0o755); err != nil {
		fatal(err)
	}

	all := []experiment{
		{"fig1", runFig1}, {"fig5", runFig5}, {"fig6", runFig6},
		{"fig7", runFig7}, {"fig8a", runFig8A}, {"fig8b", runFig8B},
		{"fig8c", runFig8C}, {"table1", runTable1}, {"fig12", runFig12},
		{"fig13", runFig13}, {"fig14", runFig14}, {"fig15", runFig15},
		{"fig16a", runFig16A}, {"fig16b", runFig16B}, {"fig17", runFig17},
		{"ablations", runAblations},
	}
	selected := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(strings.ToLower(n)); n != "" {
			selected[n] = true
		}
	}
	for _, r := range all {
		if len(selected) > 0 && !selected[r.name] {
			continue
		}
		start := time.Now()
		logger.Debug("experiment starting", "name", r.name)
		if err := r.run(p, *results); err != nil {
			fatal(fmt.Errorf("%s: %w", r.name, err))
		}
		fmt.Printf("[%s done in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	if prof != nil {
		prof.Stop() // os.Exit skips defers; keep partial profiles usable
	}
	os.Exit(1)
}

// emit prints the table and writes it as CSV under dir.
func emit(tbl *report.Table, dir, name string) error {
	fmt.Println(tbl.String())
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}

// emitChart writes an ASCII chart alongside an experiment's CSV.
func emitChart(render interface{ Render(io.Writer) error }, dir, name string) error {
	f, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := render.Render(os.Stdout); err != nil {
		return err
	}
	return render.Render(f)
}

// emitMap prints a compact note and writes the heat map text and CSV.
func emitMap(h *report.Heatmap, dir, name string) error {
	txt, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := h.Render(txt); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer csvf.Close()
	return h.WriteCSV(csvf)
}

func runFig1(p experiments.Params, dir string) error {
	r, err := experiments.Fig1(p)
	if err != nil {
		return err
	}
	return emit(r.Table, dir, "fig1_outage_cost_cdf")
}

func runFig5(p experiments.Params, dir string) error {
	r, err := experiments.Fig5(p)
	if err != nil {
		return err
	}
	if err := emit(r.Table, dir, "fig5_soc_variation"); err != nil {
		return err
	}
	chart := &report.LineChart{
		Title: "Figure 5 — stddev of rack battery SOC (%)",
		Series: []report.ChartSeries{
			{Name: "online", Values: r.Online.Values},
			{Name: "offline", Values: r.Offline.Values},
		},
	}
	return emitChart(chart, dir, "fig5_chart")
}

func runFig6(p experiments.Params, dir string) error {
	r, err := experiments.Fig6(p)
	if err != nil {
		return err
	}
	fmt.Printf("Phase II began at %v; attacker learned a %v drain time\n",
		r.PhaseIIStart, r.LearnedDrain)
	return emit(r.Table, dir, "fig6_two_phase_demo")
}

func runFig7(p experiments.Params, dir string) error {
	r, err := experiments.Fig7(p)
	if err != nil {
		return err
	}
	fmt.Printf("%d effective attacks against the drained rack\n", r.EffectiveAttacks)
	return emit(r.Table, dir, "fig7_effective_attack_demo")
}

func runFig8A(p experiments.Params, dir string) error {
	r, err := experiments.Fig8A(p)
	if err != nil {
		return err
	}
	return emit(r.Table, dir, "fig8a_nodes")
}

func runFig8B(p experiments.Params, dir string) error {
	r, err := experiments.Fig8B(p)
	if err != nil {
		return err
	}
	return emit(r.Table, dir, "fig8b_width")
}

func runFig8C(p experiments.Params, dir string) error {
	r, err := experiments.Fig8C(p)
	if err != nil {
		return err
	}
	return emit(r.Table, dir, "fig8c_frequency")
}

func runTable1(p experiments.Params, dir string) error {
	r, err := experiments.Table1(p)
	if err != nil {
		return err
	}
	return emit(r.Table, dir, "table1_detection_rates")
}

func runFig12(p experiments.Params, dir string) error {
	r, err := experiments.Fig12(p)
	if err != nil {
		return err
	}
	if err := emit(r.Table, dir, "fig12_attack_traces"); err != nil {
		return err
	}
	chart := &report.LineChart{
		Title: "Figure 12 — dense (*) vs sparse (o) attack traces (utilization)",
		Series: []report.ChartSeries{
			{Name: "dense", Values: r.Dense.Values},
			{Name: "sparse", Values: r.Sparse.Values},
		},
	}
	return emitChart(chart, dir, "fig12_chart")
}

func runFig13(p experiments.Params, dir string) error {
	r, err := experiments.Fig13(p)
	if err != nil {
		return err
	}
	if err := emitMap(r.ConvMap, dir, "fig13_conventional_map"); err != nil {
		return err
	}
	if err := emitMap(r.PADMap, dir, "fig13_pad_map"); err != nil {
		return err
	}
	return emit(r.Table, dir, "fig13_summary")
}

func runFig14(p experiments.Params, dir string) error {
	r, err := experiments.Fig14(p)
	if err != nil {
		return err
	}
	if err := emitMap(r.BeforeMap, dir, "fig14_before_map"); err != nil {
		return err
	}
	if err := emitMap(r.AfterMap, dir, "fig14_after_map"); err != nil {
		return err
	}
	return emit(r.Table, dir, "fig14_summary")
}

func runFig15(p experiments.Params, dir string) error {
	r, err := experiments.Fig15(p)
	if err != nil {
		return err
	}
	if err := emit(r.Table, dir, "fig15_survival_times"); err != nil {
		return err
	}
	chart := &report.BarChart{Title: "Figure 15 — average survival time (s)"}
	names := make([]string, 0, len(r.AvgSurvival))
	for name := range r.AvgSurvival {
		names = append(names, name)
	}
	sort.Slice(names, func(a, b int) bool {
		return r.AvgSurvival[names[a]] < r.AvgSurvival[names[b]]
	})
	for _, name := range names {
		chart.Bars = append(chart.Bars, report.Bar{
			Label: name, Value: r.AvgSurvival[name].Seconds(),
		})
	}
	return emitChart(chart, dir, "fig15_survival_chart")
}

func runFig16A(p experiments.Params, dir string) error {
	r, err := experiments.Fig16A(p)
	if err != nil {
		return err
	}
	return emit(r.Table, dir, "fig16a_throughput_vs_rate")
}

func runFig16B(p experiments.Params, dir string) error {
	r, err := experiments.Fig16B(p)
	if err != nil {
		return err
	}
	return emit(r.Table, dir, "fig16b_throughput_vs_width")
}

func runFig17(p experiments.Params, dir string) error {
	r, err := experiments.Fig17(p)
	if err != nil {
		return err
	}
	if err := emit(r.Table, dir, "fig17_cost_efficiency"); err != nil {
		return err
	}
	var surv, costs []float64
	for _, pt := range r.Points {
		surv = append(surv, pt.NormalizedSurvival)
		costs = append(costs, pt.CostRatio)
	}
	chart := &report.LineChart{
		Title: "Figure 17 — normalized survival (*) and cost ratio % (o) vs μDEB capacity",
		Series: []report.ChartSeries{
			{Name: "normalized survival", Values: surv},
			{Name: "cost ratio %", Values: costs},
		},
	}
	return emitChart(chart, dir, "fig17_chart")
}

func runAblations(p experiments.Params, dir string) error {
	for _, a := range []struct {
		name string
		run  func(experiments.Params) (*experiments.AblationResult, error)
	}{
		{"ablation_pideal", experiments.AblationPIdeal},
		{"ablation_governor", experiments.AblationGovernor},
		{"ablation_charging", experiments.AblationCharging},
		{"ablation_detectors", experiments.AblationDetectors},
		{"ablation_placement", experiments.AblationPlacement},
		{"ablation_granularity", experiments.AblationGranularity},
		{"ablation_economics", experiments.AblationEconomics},
		{"ablation_jitter", experiments.AblationJitter},
		{"ablation_topology", experiments.AblationTopology},
	} {
		r, err := a.run(p)
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		if err := emit(r.Table, dir, a.name); err != nil {
			return err
		}
	}
	return nil
}
