// Command padd is the online PAD defense daemon. It hosts many
// independent PDU-scale control sessions, each running the same engine
// the offline simulator uses, fed by streamed per-server power
// telemetry over an HTTP JSON API, batched binary POSTs, or persistent
// binary-acked stream connections, with Prometheus-style metrics and a
// per-session event log.
//
// Usage:
//
//	padd -addr :8484
//
// Then:
//
//	curl -X POST localhost:8484/v1/sessions -d '{"scheme":"PAD","racks":22,"servers_per_rack":10}'
//	curl -X POST localhost:8484/v1/sessions/s1/telemetry -d '{"samples":[{"u":[0.4, ...]}]}'
//	curl localhost:8484/metrics
//
// Persistent streams upgrade POST /v1/stream on the main listener;
// -stream-addr additionally serves the same frame protocol on a raw
// TCP port with no HTTP handshake at all.
//
// With -replay the daemon instead checks itself: it runs every scheme
// offline, streams the identical demand through all three of its own
// ingest paths, and exits non-zero unless the online results match the
// offline results bit for bit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof-addr serves the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/padd"
	"repro/internal/profiling"
	"repro/internal/version"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var (
		addr         = flag.String("addr", ":8484", "listen address")
		streamAddr   = flag.String("stream-addr", "", "raw TCP listener for persistent ingest streams, no HTTP upgrade (empty disables)")
		shards       = flag.Int("shards", 0, "session manager shards (0 = GOMAXPROCS)")
		maxSessions  = flag.Int("max-sessions", 0, "resident session cap; creates past it get 503 + Retry-After (0 = unlimited)")
		replay       = flag.Bool("replay", false, "verify online/offline agreement for every scheme through all three ingest paths, then exit")
		replayFor    = flag.Duration("replay-duration", 2*time.Minute, "simulated horizon for -replay")
		replaySeed   = flag.Uint64("replay-seed", 42, "seed for the -replay background load and virus")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown budget for draining sessions")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; live complement to the -cpuprofile/-memprofile whole-run flags)")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	logFlags := obs.AddLogFlags(flag.CommandLine)
	prof = profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println("padd", version.String())
		return
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatal(err)
		}
	}()

	if *replay {
		// Every ingest format must reproduce the offline engine exactly;
		// a frame-encoding bug that survives JSON would hide otherwise.
		ok := true
		for _, mode := range []string{padd.ModeJSON, padd.ModeBinary, padd.ModeStream} {
			fmt.Printf("-- %s ingest path\n", mode)
			report, err := padd.Replay(padd.ReplayConfig{
				Duration: *replayFor,
				Seed:     *replaySeed,
				Mode:     mode,
				Log:      os.Stdout,
			})
			if err != nil {
				fatal(err)
			}
			if !report.OK() {
				ok = false
				for _, s := range report.Schemes {
					for _, m := range s.Mismatches {
						logger.Error("replay mismatch", "path", mode, "scheme", s.Scheme, "detail", m)
					}
				}
			}
		}
		if !ok {
			prof.Stop()
			os.Exit(1)
		}
		fmt.Println("all schemes: online == offline (json, binary and stream)")
		return
	}

	// The daemon's API server uses its own mux, so the default mux is
	// free for the pprof handlers the blank import registered.
	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	mgr := padd.NewManagerWith(padd.Options{Shards: *shards, MaxSessions: *maxSessions})
	srv := &http.Server{Addr: *addr, Handler: padd.NewServer(mgr)}

	errc := make(chan error, 1)

	// Raw stream listener: no HTTP upgrade, the frame protocol starts at
	// byte zero. Connections land in the same manager, so Shutdown's
	// drain covers them too; the listener itself is closed on exit.
	var streamLn net.Listener
	if *streamAddr != "" {
		streamLn, err = net.Listen("tcp", *streamAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			logger.Info("stream listening", "addr", *streamAddr)
			for {
				conn, err := streamLn.Accept()
				if err != nil {
					if !mgr.Healthy() || errors.Is(err, net.ErrClosed) {
						return
					}
					errc <- fmt.Errorf("stream accept: %w", err)
					return
				}
				go func() {
					if err := mgr.ServeStream(conn); err != nil &&
						!errors.Is(err, padd.ErrShuttingDown) {
						logger.Debug("stream connection", "remote", conn.RemoteAddr().String(), "err", err)
					}
				}()
			}
		}()
	}

	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		logger.Info("draining sessions", "signal", sig.String())
	}

	// Stop accepting requests, then drain every session so all
	// acknowledged telemetry is processed before exit.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if streamLn != nil {
		streamLn.Close()
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "err", err)
	}
	if err := mgr.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("draining sessions: %w", err))
	}
	logger.Info("drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padd:", err)
	if prof != nil {
		prof.Stop()
	}
	os.Exit(1)
}
