// Command padtrace analyzes engine event traces written by padsim's
// -trace flag (JSONL format). For each trace it computes the run's
// defense profile — time spent at each Figure-9 security level, per
// attack phase time-to-detection, the run-minimum breaker margin, shed
// totals and event tallies — and prints them side by side as an aligned
// table, or as CSV for downstream plotting.
//
// Usage:
//
//	padsim -scheme PAD -trace pad.trace
//	padsim -compare -trace run.trace       # writes run.PAD.trace, run.Conv.trace, ...
//	padtrace run.*.trace
//	padtrace -csv run.*.trace > summary.csv
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/version"
)

func main() {
	var (
		csvOut      = flag.Bool("csv", false, "emit one CSV row per trace instead of the table")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: padtrace [-csv] trace.jsonl ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		fmt.Println("padtrace", version.String())
		return
	}
	if flag.NArg() == 0 {
		fatal(errors.New("no trace files (padsim -trace FILE writes one; - reads stdin)"))
	}

	var sums []traceSummary
	for _, path := range flag.Args() {
		s, err := load(path)
		if err != nil {
			fatal(err)
		}
		if s.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "padtrace: %s: %d events dropped on ring overflow; summary covers a truncated prefix\n",
				path, s.Dropped)
		}
		sums = append(sums, s)
	}

	var err error
	if *csvOut {
		err = writeCSV(os.Stdout, sums)
	} else {
		err = writeTable(os.Stdout, sums)
	}
	if err != nil {
		fatal(err)
	}
}

// traceSummary pairs one trace file with its analysis.
type traceSummary struct {
	Path string
	obs.Summary
}

// load reads one JSONL trace ("-" = stdin) and summarizes it.
func load(path string) (traceSummary, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return traceSummary{}, err
		}
		defer f.Close()
		r = f
	}
	meta, events, foot, err := obs.ReadJSONL(r)
	if err != nil {
		return traceSummary{}, fmt.Errorf("%s: %w", path, err)
	}
	return traceSummary{Path: path, Summary: obs.Summarize(meta, events, foot)}, nil
}

// detection returns the time-to-detection of the given attack phase:
// present reports whether the trace saw the phase at all, and a negative
// duration means the phase went undetected.
func detection(s obs.Summary, phase int) (d time.Duration, present bool) {
	for _, p := range s.Phases {
		if p.Phase == phase {
			return p.Detection, true
		}
	}
	return 0, false
}

// phaseCell renders a time-to-detection table cell.
func phaseCell(s obs.Summary, phase int) string {
	d, present := detection(s, phase)
	switch {
	case !present:
		return "-"
	case d < 0:
		return "undetected"
	default:
		return fmtDur(d)
	}
}

// fmtDur trims a duration for table display.
func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// writeTable renders the per-scheme comparison as an aligned table; the
// column set mirrors the paper's defense narrative (Figure 9 dwell,
// Figure 11 time-to-detection, breaker margins, shed cost).
func writeTable(w io.Writer, sums []traceSummary) error {
	cols := []struct {
		head string
		cell func(traceSummary) string
	}{
		{"scheme", func(s traceSummary) string { return s.Meta.Scheme }},
		{"run", func(s traceSummary) string { return fmtDur(runLength(s.Summary)) }},
		{"events", func(s traceSummary) string { return strconv.Itoa(s.Events) }},
		{"dwell L1", func(s traceSummary) string { return fmtDur(s.Dwell[1]) }},
		{"dwell L2", func(s traceSummary) string { return fmtDur(s.Dwell[2]) }},
		{"dwell L3", func(s traceSummary) string { return fmtDur(s.Dwell[3]) }},
		{"detect I", func(s traceSummary) string { return phaseCell(s.Summary, 1) }},
		{"detect II", func(s traceSummary) string { return phaseCell(s.Summary, 2) }},
		{"min margin", func(s traceSummary) string {
			if !s.MinMarginSet {
				return "-"
			}
			feed := "PDU"
			if s.MinMarginRack >= 0 {
				feed = fmt.Sprintf("rack %d", s.MinMarginRack)
			}
			return fmt.Sprintf("%.0f W (%s)", s.MinMargin, feed)
		}},
		{"sheds", func(s traceSummary) string {
			if s.ShedEngagements == 0 {
				return "-"
			}
			return fmt.Sprintf("%d (max %d, %s srv·s)",
				s.ShedEngagements, s.MaxShedServers, strconv.FormatFloat(s.ShedServerTime.Seconds(), 'f', 1, 64))
		}},
		{"overloads", func(s traceSummary) string { return strconv.Itoa(s.Overloads) }},
		{"trips", func(s traceSummary) string { return strconv.Itoa(s.Trips) }},
	}

	rows := make([][]string, 0, len(sums)+1)
	head := make([]string, len(cols))
	for i, c := range cols {
		head[i] = c.head
	}
	rows = append(rows, head)
	for _, s := range sums {
		row := make([]string, len(cols))
		for i, c := range cols {
			row[i] = c.cell(s)
		}
		rows = append(rows, row)
	}

	width := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			pad := ""
			if i < len(row)-1 {
				pad = strings.Repeat(" ", width[i]-len(cell)+2)
			}
			if _, err := fmt.Fprintf(w, "%s%s", cell, pad); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// runLength is the trace's realized run duration (header ticks, or the
// dwell total when the writer never finalized the header).
func runLength(s obs.Summary) time.Duration {
	if s.Meta.Ticks > 0 {
		return s.Meta.Time(s.Meta.Ticks)
	}
	return s.Dwell[0] + s.Dwell[1] + s.Dwell[2] + s.Dwell[3]
}

// writeCSV emits one row per trace. Durations are in seconds; an empty
// detection cell means the phase was absent, and -1 means undetected.
func writeCSV(w io.Writer, sums []traceSummary) error {
	cw := csv.NewWriter(w)
	header := []string{
		"file", "scheme", "run_s", "events", "dropped",
		"dwell_l0_s", "dwell_l1_s", "dwell_l2_s", "dwell_l3_s",
		"detect_phase1_s", "detect_phase2_s",
		"min_margin_w", "min_margin_rack",
		"shed_engagements", "max_shed_servers", "shed_server_s",
		"overloads", "trips", "micro_shaves", "micro_joules",
		"vdeb_refreshes", "max_shave_w",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	secs := func(d time.Duration) string {
		return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
	}
	detCell := func(s obs.Summary, phase int) string {
		d, present := detection(s, phase)
		switch {
		case !present:
			return ""
		case d < 0:
			return "-1"
		default:
			return secs(d)
		}
	}
	for _, s := range sums {
		marginW, marginRack := "", ""
		if s.MinMarginSet {
			marginW = strconv.FormatFloat(s.MinMargin, 'g', -1, 64)
			marginRack = strconv.Itoa(int(s.MinMarginRack))
		}
		row := []string{
			s.Path, s.Meta.Scheme, secs(runLength(s.Summary)),
			strconv.Itoa(s.Events), strconv.FormatUint(s.Dropped, 10),
			secs(s.Dwell[0]), secs(s.Dwell[1]), secs(s.Dwell[2]), secs(s.Dwell[3]),
			detCell(s.Summary, 1), detCell(s.Summary, 2),
			marginW, marginRack,
			strconv.Itoa(s.ShedEngagements), strconv.Itoa(s.MaxShedServers), secs(s.ShedServerTime),
			strconv.Itoa(s.Overloads), strconv.Itoa(s.Trips),
			strconv.Itoa(s.MicroShaves), strconv.FormatFloat(s.MicroJoules, 'g', -1, 64),
			strconv.Itoa(s.VDEBRefreshes), strconv.FormatFloat(s.MaxShaveDemand, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padtrace:", err)
	os.Exit(1)
}
