package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeSample writes a tiny but fully-featured JSONL trace to a file and
// returns its path.
func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(0, obs.NewJSONLSink(f))
	tr.SetMeta(obs.Meta{Scheme: "PAD", Tick: 100 * time.Millisecond, Racks: 4, ServersPerRack: 10, Ticks: 100})
	for _, e := range []obs.Event{
		{Tick: 0, Rack: -1, Kind: obs.KindLevel, A: 0, B: 1},
		{Tick: 10, Rack: -1, Kind: obs.KindAttackPhase, A: 0, B: 1},
		{Tick: 14, Rack: -1, Kind: obs.KindLevel, A: 1, B: 2},
		{Tick: 20, Rack: 2, Kind: obs.KindMarginLow, A: 250, B: 2200},
		{Tick: 30, Rack: -1, Kind: obs.KindShed, A: 3, B: 500},
		{Tick: 40, Rack: 1, Kind: obs.KindOverload, A: 2100, B: 2052},
	} {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadAndTable(t *testing.T) {
	s, err := load(writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta.Scheme != "PAD" || s.Events != 6 || s.Dropped != 0 {
		t.Fatalf("load: %+v", s.Summary)
	}
	if want := 400 * time.Millisecond; len(s.Phases) != 1 || s.Phases[0].Detection != want {
		t.Fatalf("phases = %+v, want detection %v", s.Phases, want)
	}

	var buf bytes.Buffer
	if err := writeTable(&buf, []traceSummary{s}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// The shed set of 3 servers holds from tick 30 to the run end at tick
	// 100: 3 × 7 s = 21 srv·s.
	for _, frag := range []string{"PAD", "400ms", "250 W (rack 2)", "1 (max 3, 21.0 srv·s)"} {
		if !strings.Contains(lines[1], frag) {
			t.Fatalf("table row missing %q:\n%s", frag, out)
		}
	}
}

func TestCSV(t *testing.T) {
	s, err := load(writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeCSV(&buf, []traceSummary{s}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	head := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(head) != len(row) {
		t.Fatalf("header has %d fields, row has %d", len(head), len(row))
	}
	cell := func(name string) string {
		for i, h := range head {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	if cell("scheme") != "PAD" || cell("detect_phase1_s") != "0.4" ||
		cell("detect_phase2_s") != "" || cell("min_margin_w") != "250" ||
		cell("shed_server_s") != "21" || cell("overloads") != "1" {
		t.Fatalf("csv row: %v", lines[1])
	}
}
