// Command padtop is a polling terminal dashboard for a live padd
// daemon — top(1) for a PAD fleet. Each frame renders the /v1/fleet
// rollup (session count, security-level distribution, breaker-margin
// percentiles, detection latencies, per-shard ingest rates) and a
// top-N session table sorted hottest first (security level descending,
// breaker margin ascending), with a per-session sparkline fetched from
// the series endpoint. Plain text and ANSI clear only — no curses, so
// it works over ssh, in CI logs (-once) and under watch(1).
//
// Usage:
//
//	padtop -addr http://localhost:8484
//	padtop -addr http://localhost:8484 -once          # one frame, no clearing
//	padtop -metric margin_watts -top 20 -interval 1s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/padd"
	"repro/internal/version"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8484", "padd base URL")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
		topN     = flag.Int("top", 10, "sessions shown in the table")
		metric   = flag.String("metric", "soc", "sparkline metric: soc, level, shed_watts, margin_watts or queue_depth")
		showVer  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("padtop", version.String())
		return
	}
	ok := false
	for _, m := range padd.SeriesMetrics {
		ok = ok || m == *metric
	}
	if !ok {
		fatal(fmt.Errorf("padtop: -metric %q: want one of %s", *metric, strings.Join(padd.SeriesMetrics, ", ")))
	}
	if *topN < 1 {
		fatal(fmt.Errorf("padtop: -top must be >= 1"))
	}

	top := &padtop{
		base:   strings.TrimRight(*addr, "/"),
		client: &http.Client{Timeout: 10 * time.Second},
		metric: *metric,
		topN:   *topN,
	}
	for {
		frame, err := top.frame()
		if err != nil {
			fatal(err)
		}
		if !*once {
			// Home + clear-to-end: repaint in place without scrollback spam.
			fmt.Print("\x1b[H\x1b[2J")
		}
		os.Stdout.WriteString(frame)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

type padtop struct {
	base   string
	client *http.Client
	metric string
	topN   int

	// Previous poll's per-shard accepted-sample counters, the deltas
	// behind the ingest-rate column ("-" on the first frame).
	prevSamples []int64
	prevAt      time.Time
}

func (p *padtop) getJSON(path string, v any) error {
	resp, err := p.client.Get(p.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("padtop: GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// frame renders one full dashboard frame.
func (p *padtop) frame() (string, error) {
	var fs padd.FleetStatus
	if err := p.getJSON("/v1/fleet", &fs); err != nil {
		return "", err
	}
	var list struct {
		Sessions []padd.SessionStatus `json:"sessions"`
	}
	if err := p.getJSON("/v1/sessions", &list); err != nil {
		return "", err
	}

	now := time.Now()
	var b strings.Builder
	fmt.Fprintf(&b, "padd fleet @ %s  %s\n\n", p.base, now.Format("15:04:05"))

	// Fleet summary.
	fmt.Fprintf(&b, "sessions  %d resident, %d under attack\n", fs.Sessions, fs.SessionsUnderAttack)
	levels := make([]string, 0, len(fs.LevelSessions))
	for l, n := range fs.LevelSessions {
		levels = append(levels, fmt.Sprintf("L%d:%d", l, n))
	}
	fmt.Fprintf(&b, "levels    %s\n", strings.Join(levels, "  "))
	fmt.Fprintf(&b, "margin    p50 %s  p99 %s\n",
		occupancyQuantile(fs.MarginBoundsWatts, fs.MarginSessions, 0.50, "W"),
		occupancyQuantile(fs.MarginBoundsWatts, fs.MarginSessions, 0.99, "W"))
	fmt.Fprintf(&b, "detect    %d onsets, flag p50 %s (n=%d), shed p50 %s (n=%d)\n",
		fs.DetectionOnsets,
		histQuantile(fs.DetectionLatency, 0.50, "s"), fs.DetectionLatency.Count,
		histQuantile(fs.ShedLatency, 0.50, "s"), fs.ShedLatency.Count)
	fmt.Fprintf(&b, "ingest    %d json + %d binary frames, %d streams, rate %s\n",
		fs.IngestFramesJSON, fs.IngestFramesBinary, fs.StreamConnections, p.ingestRate(fs, now))
	fmt.Fprintf(&b, "shards    %s\n\n", shardLine(fs.Shards))

	// Top-N table, hottest sessions first: level descending, then
	// breaker margin ascending (least headroom first), then ID.
	sort.Slice(list.Sessions, func(i, j int) bool {
		a, c := &list.Sessions[i], &list.Sessions[j]
		if a.Level != c.Level {
			return a.Level > c.Level
		}
		if a.BreakerMargin != c.BreakerMargin {
			return a.BreakerMargin < c.BreakerMargin
		}
		return a.ID < c.ID
	})
	n := min(p.topN, len(list.Sessions))
	fmt.Fprintf(&b, "top %d of %d sessions (level desc, margin asc):\n", n, len(list.Sessions))
	fmt.Fprintf(&b, "%-20s %-6s %3s %6s %12s %9s %5s %7s  %s\n",
		"ID", "SCHEME", "LVL", "SOC", "MARGIN(W)", "SHED(W)", "QUEUE", "AGE(s)", p.metric)
	for i := 0; i < n; i++ {
		st := &list.Sessions[i]
		age := "-"
		if st.LastTelemetryAgeSeconds >= 0 {
			age = fmt.Sprintf("%.0f", st.LastTelemetryAgeSeconds)
		}
		fmt.Fprintf(&b, "%-20s %-6s %3d %6.3f %12.0f %9.0f %5d %7s  %s\n",
			st.ID, st.Scheme, st.Level, st.MeanSOC, st.BreakerMargin, st.ShedWatts,
			st.QueueDepth, age, p.sparkline(st.ID))
	}
	return b.String(), nil
}

// ingestRate turns the per-shard accepted-sample counters into a
// fleet-wide samples/sec figure by differencing against the last poll.
func (p *padtop) ingestRate(fs padd.FleetStatus, now time.Time) string {
	cur := make([]int64, len(fs.Shards))
	for i, sh := range fs.Shards {
		cur[i] = sh.AcceptedSamples
	}
	defer func() { p.prevSamples, p.prevAt = cur, now }()
	if len(p.prevSamples) != len(cur) || p.prevAt.IsZero() {
		return "-"
	}
	var delta int64
	for i := range cur {
		delta += cur[i] - p.prevSamples[i]
	}
	dt := now.Sub(p.prevAt).Seconds()
	if dt <= 0 || delta < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f samples/s", float64(delta)/dt)
}

func shardLine(shards []padd.ShardStatus) string {
	parts := make([]string, len(shards))
	for i, sh := range shards {
		parts[i] = fmt.Sprintf("%d:%d", sh.Shard, sh.Sessions)
	}
	return strings.Join(parts, " ")
}

// sparkline fetches the session's raw-resolution series for the chosen
// metric and renders each bucket's last value on an eight-level ramp,
// normalized to the window's own min..max. Sessions with recording
// disabled (or any fetch error) render as "-".
func (p *padtop) sparkline(id string) string {
	var sr padd.SeriesResponse
	if err := p.getJSON("/v1/sessions/"+id+"/series?metric="+p.metric+"&res=raw", &sr); err != nil {
		return "-"
	}
	if len(sr.Buckets) == 0 {
		return "-"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, bk := range sr.Buckets {
		lo, hi = math.Min(lo, bk.Last), math.Max(hi, bk.Last)
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, len(sr.Buckets))
	for i, bk := range sr.Buckets {
		j := 0
		if hi > lo {
			j = int((bk.Last - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		out[i] = ramp[j]
	}
	return string(out)
}

// occupancyQuantile reads a quantile off a bucketed occupancy
// distribution (counts per bound, last bucket open-ended).
func occupancyQuantile(bounds []float64, counts []int64, q float64, unit string) string {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return "n/a"
	}
	target := int64(math.Ceil(q * float64(total)))
	cum := int64(0)
	for i, n := range counts {
		cum += n
		if cum >= target {
			if i < len(bounds) {
				return fmt.Sprintf("<=%g%s", bounds[i], unit)
			}
			break
		}
	}
	return fmt.Sprintf(">%g%s", bounds[len(bounds)-1], unit)
}

// histQuantile is occupancyQuantile for the JSON histogram shape.
func histQuantile(h padd.HistogramStatus, q float64, unit string) string {
	return occupancyQuantile(h.BoundsSeconds, h.Counts, q, unit)
}
