// Command tracegen generates a synthetic Google-cluster-style workload
// trace (start,end,machine,cpu rows) and writes it to stdout or a file.
// The format is compatible with the 2010 Google trace rows the paper
// consumes, so a real trace can replace the synthetic one unchanged.
//
// Usage:
//
//	tracegen -machines 220 -horizon 720h -seed 1 -o trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/trace"
)

func main() {
	var (
		machines = flag.Int("machines", 220, "cluster size")
		horizon  = flag.Duration("horizon", 30*24*time.Hour, "trace length")
		seed     = flag.Uint64("seed", 1, "random seed")
		mean     = flag.Float64("mean-utilization", 0.45, "target mean CPU utilization")
		surge    = flag.Duration("surge-period", 0, "inject cluster-wide surges at this period (0 disables)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg := trace.SynthConfig{
		Machines:        *machines,
		Horizon:         *horizon,
		Seed:            *seed,
		MeanUtilization: *mean,
		SurgePeriod:     *surge,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d tasks over %d machines, horizon %v\n",
		len(tr.Tasks), tr.Machines, *horizon)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
