// Command tracegen generates a synthetic Google-cluster-style workload
// trace (start,end,machine,cpu rows) and writes it to stdout or a file.
// The format is compatible with the 2010 Google trace rows the paper
// consumes, so a real trace can replace the synthetic one unchanged.
//
// Usage:
//
//	tracegen -machines 220 -horizon 720h -seed 1 -o trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/trace"
	"repro/internal/version"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var (
		machines    = flag.Int("machines", 220, "cluster size")
		horizon     = flag.Duration("horizon", 30*24*time.Hour, "trace length")
		seed        = flag.Uint64("seed", 1, "random seed")
		mean        = flag.Float64("mean-utilization", 0.45, "target mean CPU utilization")
		surge       = flag.Duration("surge-period", 0, "inject cluster-wide surges at this period (0 disables)")
		out         = flag.String("o", "", "output file (default stdout)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	logFlags := obs.AddLogFlags(flag.CommandLine)
	prof = profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Println("tracegen", version.String())
		return
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatal(err)
		}
	}()

	cfg := trace.SynthConfig{
		Machines:        *machines,
		Horizon:         *horizon,
		Seed:            *seed,
		MeanUtilization: *mean,
		SurgePeriod:     *surge,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		fatal(err)
	}
	logger.Info("trace generated",
		"tasks", len(tr.Tasks), "machines", tr.Machines, "horizon", *horizon)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	if prof != nil {
		prof.Stop()
	}
	os.Exit(1)
}
