package padsec

import (
	"bytes"
	"testing"
	"time"
)

// The facade tests exercise the public API end to end, the way the
// examples and downstream users do.

func TestFacadeQuickAttackRun(t *testing.T) {
	cfg := ClusterConfig{
		Racks:          2,
		ServersPerRack: 5,
		Duration:       5 * time.Minute,
		Tick:           200 * time.Millisecond,
		Background:     FlatBackground(10, 0.5),
		Attack: NewAttack(3, AttackConfig{
			Profile:      CPUIntensive,
			PrepDuration: time.Second,
			MaxPhaseI:    2 * time.Minute,
		}),
		StopOnTrip: true,
	}
	conv, err := Run(cfg, NewConv(SchemeOptions{ServersPerRack: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if !conv.Tripped {
		t.Fatal("undefended cluster should trip under this attack")
	}

	cfg.MicroDEBFactory = NewMicroDEBFactory(0.01)
	pad, err := Run(cfg, NewPAD(SchemeOptions{ServersPerRack: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if pad.SurvivalTime <= conv.SurvivalTime {
		t.Fatalf("PAD (%v) should outlive Conv (%v)", pad.SurvivalTime, conv.SurvivalTime)
	}
}

func TestFacadeAllSchemesConstruct(t *testing.T) {
	for _, mk := range []func(SchemeOptions) Scheme{
		NewConv, NewPS, NewPSPC, NewVDEB, NewUDEB, NewPAD,
	} {
		s := mk(SchemeOptions{})
		if s.Name() == "" {
			t.Error("scheme without a name")
		}
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr, err := GenerateTrace(TraceConfig{Machines: 10, Horizon: 2 * time.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Machines != tr.Machines || len(back.Tasks) != len(tr.Tasks) {
		t.Fatalf("round trip changed the trace: %d/%d tasks", len(back.Tasks), len(tr.Tasks))
	}
	bg, err := TraceBackground(tr, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(bg) != 10 {
		t.Fatalf("background series = %d, want 10", len(bg))
	}
}

func TestFacadeBatteryConstruction(t *testing.T) {
	b := NewRackBattery(5210)
	if b.SOC() != 1 {
		t.Fatal("rack battery should start full")
	}
	if got := b.Discharge(5210, time.Second); got < 5210 {
		t.Fatalf("fresh cabinet delivered %v of 5210 W", got)
	}
	f := NewMicroDEBFactory(0.01)
	u := f(5210, 3900)
	if u.SOC() != 1 || u.Capacity() <= 0 {
		t.Fatal("μDEB factory produced a bad bank")
	}
}

func TestFacadeFlatBackground(t *testing.T) {
	bg := FlatBackground(4, 0.3)
	if len(bg) != 4 {
		t.Fatalf("series = %d", len(bg))
	}
	for _, s := range bg {
		if s.Interp(30*time.Minute) != 0.3 {
			t.Fatal("background not flat at 0.3")
		}
	}
}

func TestFacadeExperimentRunner(t *testing.T) {
	r, err := Fig12(ExperimentParams{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dense.Len() == 0 {
		t.Fatal("experiment returned no data")
	}
}

func TestFacadeVirusExports(t *testing.T) {
	if CPUIntensive.Name != "CPU" || MemIntensive.Name != "Mem" || IOIntensive.Name != "IO" {
		t.Fatal("virus profile exports wrong")
	}
	if DenseAttack.SpikesPerMinute <= SparseAttack.SpikesPerMinute {
		t.Fatal("dense attack should fire more often than sparse")
	}
	if Level1 >= Level2 || Level2 >= Level3 {
		t.Fatal("security levels should be ordered")
	}
}
