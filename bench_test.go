package padsec

// The benchmark harness: one Benchmark per reproduced table/figure (each
// regenerates the experiment at Quick scale; run cmd/experiments for the
// full-scale numbers), plus micro-benchmarks on the hot substrates.
//
//	go test -bench=. -benchmem

import (
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/powersim"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/virus"
)

var benchParams = experiments.Params{Quick: true, Seed: 1}

// benchSink defeats dead-code elimination across benchmarks.
var benchSink interface{}

func BenchmarkFig1OutageCostCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig5SOCVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig6TwoPhaseDemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig7EffectiveAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig8ANodeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8A(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig8BWidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8B(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig8CFrequencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8C(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkTable1Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig12AttackTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig13DEBMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig14LoadShedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig15SurvivalTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig16AThroughputVsRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16A(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig16BThroughputVsWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16B(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkFig17CostEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkKiBaMDischargeStep(b *testing.B) {
	bat := battery.MustKiBaM(battery.KiBaMConfig{
		Capacity:     400_000,
		MaxDischarge: 10_000,
		MaxCharge:    1_000,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat.Discharge(500, 100*time.Millisecond)
		if bat.SOC() < 0.5 {
			bat.Charge(1000, time.Second)
		}
	}
}

func BenchmarkBreakerStep(b *testing.B) {
	br := powersim.NewBreaker(4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Step(units.Watts(3500+i%1000), 100*time.Millisecond)
		if br.Tripped() {
			br.Reset()
		}
	}
}

func BenchmarkVDEBAllocate(b *testing.B) {
	ctrl, err := core.NewVDEBController(2600)
	if err != nil {
		b.Fatal(err)
	}
	socs := make([]float64, 22)
	for i := range socs {
		socs[i] = float64(i%10)/10 + 0.05
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = ctrl.Allocate(socs, 12_000)
	}
}

func BenchmarkAttackStep(b *testing.B) {
	atk := virus.MustNew(virus.Config{
		Profile:      virus.CPUIntensive,
		PrepDuration: time.Second,
		MaxPhaseI:    time.Second,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atk.Step(100*time.Millisecond, virus.Observation{})
	}
}

func BenchmarkServerPowerModel(b *testing.B) {
	m := powersim.DL585G5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = m.Power(float64(i%100)/100, 0.9)
	}
}

// BenchmarkSimTick measures the full engine at the paper's cluster scale:
// one reported iteration is one simulated 22-rack tick under PAD.
func BenchmarkSimTick(b *testing.B) {
	cfg := sim.Config{
		Racks:          22,
		ServersPerRack: 10,
		Tick:           100 * time.Millisecond,
		Duration:       time.Duration(b.N) * 100 * time.Millisecond,
		Background:     FlatBackground(220, 0.55),
		Attack: NewAttack(4, virus.Config{
			Profile: virus.CPUIntensive,
		}),
		MicroDEBFactory: NewMicroDEBFactory(0.01),
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := sim.Run(cfg, schemes.NewPAD(schemes.Options{}))
	if err != nil {
		b.Fatal(err)
	}
	benchSink = res
}

// --- Ablation benchmarks ---

func BenchmarkAblationPIdeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPIdeal(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkAblationGovernor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationGovernor(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkAblationDetectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDetectors(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPlacement(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}
