// Package padsec is a library-grade reproduction of "Power Attack
// Defense: Securing Battery-Backed Data Centers" (ISCA 2016): a
// trace-driven simulator for battery-backed data centers under power-virus
// attack, the PAD defense (vDEB battery pooling, μDEB spike shaving, a
// hierarchical security policy with bounded load shedding), the five
// baseline power-management schemes the paper compares against, and an
// experiment harness that regenerates every measured table and figure.
//
// # Quick start
//
//	cfg := padsec.ClusterConfig{
//		Duration:   10 * time.Minute,
//		Background: padsec.FlatBackground(220, 0.55),
//		Attack:     padsec.NewAttack(4, padsec.AttackConfig{Profile: padsec.CPUIntensive}),
//		StopOnTrip: true,
//	}
//	res, err := padsec.Run(cfg, padsec.NewPAD(padsec.SchemeOptions{}))
//
// The simulator, schemes, threat model, battery models and experiment
// runners live in internal packages; this package re-exports the stable
// surface. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package padsec

import (
	"io"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/placement"
	"repro/internal/powersim"
	"repro/internal/scheduler"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/virus"
)

// Physical quantity types.
type (
	// Watts is electrical power.
	Watts = units.Watts
	// Joules is energy.
	Joules = units.Joules
	// WattHours is energy in watt-hours.
	WattHours = units.WattHours
)

// Simulation types.
type (
	// ClusterConfig describes one simulation run (cluster shape,
	// provisioning, background load, optional attack, recording).
	ClusterConfig = sim.Config
	// SimResult summarizes a run: survival time, effective attacks,
	// throughput, energy accounting and optional recordings.
	SimResult = sim.Result
	// Recording holds the sampled time series of a run.
	Recording = sim.Recording
	// Scheme is a pluggable power-management policy.
	Scheme = sim.Scheme
	// ClusterView is the per-tick state a Scheme observes.
	ClusterView = sim.ClusterView
	// RackView is the per-rack slice of a ClusterView.
	RackView = sim.RackView
	// SchemeAction is a scheme's per-rack decision for one tick.
	SchemeAction = sim.Action
	// AttackSpec places a power virus on specific servers.
	AttackSpec = sim.AttackSpec
	// SchemeOptions tune the built-in schemes.
	SchemeOptions = schemes.Options
)

// Threat-model types.
type (
	// VirusProfile characterizes a power-virus class (CPU/Mem/IO).
	VirusProfile = virus.Profile
	// AttackConfig parameterizes a two-phase attack.
	AttackConfig = virus.Config
	// Attack is the closed-loop two-phase attack controller.
	Attack = virus.Attack
	// AttackScenario is a canned dense/sparse spike schedule.
	AttackScenario = virus.Scenario
)

// Defense building blocks.
type (
	// SecurityLevel is a PAD hierarchical security level (L1/L2/L3).
	SecurityLevel = core.Level
	// PolicyInputs are the signals driving the security level.
	PolicyInputs = core.PolicyInputs
	// BatteryStore is an energy storage device (KiBaM battery,
	// super-capacitor, LVD wrapper).
	BatteryStore = battery.Store
	// ServerModel maps utilization and DVFS state to power.
	ServerModel = powersim.ServerModel
	// Trace is a Google-cluster-style workload trace.
	Trace = trace.Trace
	// TraceConfig parameterizes the synthetic trace generator.
	TraceConfig = trace.SynthConfig
	// ExperimentParams control the paper-reproduction runners.
	ExperimentParams = experiments.Params
	// PlacementPolicy is a cloud VM scheduling policy (pack/spread/random).
	PlacementPolicy = placement.Policy
	// CampaignConfig parameterizes an attacker's co-residency hunt — the
	// preparation phase of the threat model.
	CampaignConfig = placement.CampaignConfig
	// CampaignResult summarizes a co-residency hunt.
	CampaignResult = placement.CampaignResult
	// Job, JobRecord, Impairment and SchedulerConfig drive the job-level
	// service model (the paper's job-scheduler substrate).
	Job             = scheduler.Job
	JobTask         = scheduler.TaskReq
	JobRecord       = scheduler.JobRecord
	Impairment      = scheduler.Impairment
	SchedulerConfig = scheduler.Config
	JobMetrics      = scheduler.Metrics
)

// The calibrated virus profiles and canned scenarios.
var (
	CPUIntensive = virus.CPUIntensive
	MemIntensive = virus.MemIntensive
	IOIntensive  = virus.IOIntensive
	DenseAttack  = virus.DenseAttack
	SparseAttack = virus.SparseAttack
)

// DL585G5 is the evaluated server model (299 W idle, 521 W peak).
var DL585G5 = powersim.DL585G5

// Cloud scheduling policies for the preparation-phase model.
const (
	PackLowestID      = placement.PackLowestID
	SpreadLeastLoaded = placement.SpreadLeastLoaded
	RandomFit         = placement.RandomFit
)

// RunCampaign plays the attacker's co-residency hunt: how many probe VMs
// does it take to land a squad on one rack.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return placement.RunCampaign(cfg)
}

// RunJobs simulates the job-level service model: trace-derived jobs over
// a cluster whose servers suffer the given outage/capping impairments.
func RunJobs(cfg SchedulerConfig, jobs []Job, impairments []Impairment) ([]JobRecord, JobMetrics, error) {
	return scheduler.Run(cfg, jobs, impairments)
}

// JobsFromTrace converts a workload trace into scheduler jobs.
func JobsFromTrace(tr *Trace) []Job { return scheduler.FromTrace(tr) }

// RackOutage marks every server of a rack dark over a window.
func RackOutage(rack, serversPerRack int, from, to time.Duration) []Impairment {
	return scheduler.OutageImpairments(rack, serversPerRack, from, to)
}

// The three security levels.
const (
	Level1 = core.Level1
	Level2 = core.Level2
	Level3 = core.Level3
)

// Run executes one simulation of scheme over cfg.
func Run(cfg ClusterConfig, scheme Scheme) (*SimResult, error) {
	return sim.Run(cfg, scheme)
}

// Scheme constructors (Table III).
var (
	// NewConv builds the conventional baseline (batteries for outages only).
	NewConv = func(o SchemeOptions) Scheme { return schemes.NewConv(o) }
	// NewPS builds the per-rack peak-shaving baseline.
	NewPS = func(o SchemeOptions) Scheme { return schemes.NewPS(o) }
	// NewPSPC builds peak shaving plus fixed 20% power capping.
	NewPSPC = func(o SchemeOptions) Scheme { return schemes.NewPSPC(o) }
	// NewVDEB builds the vDEB-only load-sharing design.
	NewVDEB = func(o SchemeOptions) Scheme { return schemes.NewVDEB(o) }
	// NewUDEB builds the μDEB-only spike-shaving design.
	NewUDEB = func(o SchemeOptions) Scheme { return schemes.NewUDEB(o) }
	// NewPAD builds the full Power Attack Defense.
	NewPAD = func(o SchemeOptions) Scheme { return schemes.NewPAD(o) }
)

// NewAttack places a two-phase power virus on the first n servers of rack
// 0 (the usual victim in the paper's experiments).
func NewAttack(n int, cfg AttackConfig) *AttackSpec {
	servers := make([]int, n)
	for i := range servers {
		servers[i] = i
	}
	return &AttackSpec{Servers: servers, Attack: virus.MustNew(cfg)}
}

// FlatBackground builds per-server utilization series pinned at mean —
// the simplest background for experiments and examples.
func FlatBackground(servers int, mean float64) []*stats.Series {
	out := make([]*stats.Series, servers)
	for i := range out {
		s := stats.NewSeries(time.Hour)
		s.Append(mean)
		s.Append(mean)
		out[i] = s
	}
	return out
}

// GenerateTrace produces a synthetic Google-style cluster trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// ReadTrace parses a trace in the start,end,machine,cpu row format.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTrace emits a trace in the row format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// TraceBackground replays a trace into per-server utilization series at
// the given step, ready for ClusterConfig.Background.
func TraceBackground(tr *Trace, step time.Duration) ([]*stats.Series, error) {
	return trace.MachineSeries(tr, step)
}

// NewRackBattery builds the paper's Facebook-V1-style rack battery
// cabinet (50 s autonomy at full rack load, LVD-protected).
func NewRackBattery(rackNameplate Watts) BatteryStore {
	return battery.NewRackCabinet(rackNameplate)
}

// NewMicroDEBFactory returns a ClusterConfig.MicroDEBFactory installing a
// μDEB bank holding the given fraction of the rack cabinet's energy on
// every rack.
func NewMicroDEBFactory(fraction float64) func(nameplate, budget Watts) *core.MicroDEB {
	return func(nameplate, budget Watts) *core.MicroDEB {
		cap_ := battery.SizeForAutonomy(nameplate, battery.RackCabinetAutonomy, 0, 0)
		bank := battery.NewMicroDEB(units.Joules(float64(cap_)*fraction), nameplate)
		u, err := core.NewMicroDEB(bank, budget)
		if err != nil {
			panic(err) // arguments are engine-controlled
		}
		return u
	}
}
