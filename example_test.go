package padsec_test

import (
	"fmt"
	"time"

	padsec "repro"
)

// ExampleRun simulates a short two-phase attack against an undefended
// cluster and reports the outcome.
func ExampleRun() {
	cfg := padsec.ClusterConfig{
		Racks:          2,
		ServersPerRack: 5,
		Duration:       5 * time.Minute,
		Background:     padsec.FlatBackground(10, 0.5),
		Attack: padsec.NewAttack(3, padsec.AttackConfig{
			Profile:      padsec.CPUIntensive,
			PrepDuration: time.Second,
			MaxPhaseI:    2 * time.Minute,
		}),
		StopOnTrip: true,
	}
	res, err := padsec.Run(cfg, padsec.NewConv(padsec.SchemeOptions{ServersPerRack: 5}))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("scheme:", res.Scheme)
	fmt.Println("tripped:", res.Tripped)
	fmt.Println("victim rack:", res.FirstTripRack)
	// Output:
	// scheme: Conv
	// tripped: true
	// victim rack: 0
}

// ExampleNewPAD shows the defense surviving the same scenario the
// conventional baseline loses.
func ExampleNewPAD() {
	cfg := padsec.ClusterConfig{
		Racks:          2,
		ServersPerRack: 5,
		Duration:       5 * time.Minute,
		Background:     padsec.FlatBackground(10, 0.5),
		Attack: padsec.NewAttack(3, padsec.AttackConfig{
			Profile:      padsec.CPUIntensive,
			PrepDuration: time.Second,
			MaxPhaseI:    2 * time.Minute,
		}),
		MicroDEBFactory: padsec.NewMicroDEBFactory(0.01),
		StopOnTrip:      true,
	}
	res, err := padsec.Run(cfg, padsec.NewPAD(padsec.SchemeOptions{ServersPerRack: 5}))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("tripped:", res.Tripped)
	fmt.Println("survived the full window:", res.SurvivalTime == 5*time.Minute)
	// Output:
	// tripped: false
	// survived the full window: true
}

// ExampleGenerateTrace builds a small synthetic Google-style trace and
// summarizes it into per-server utilization.
func ExampleGenerateTrace() {
	tr, err := padsec.GenerateTrace(padsec.TraceConfig{
		Machines: 4,
		Horizon:  time.Hour,
		Seed:     1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bg, err := padsec.TraceBackground(tr, 5*time.Minute)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("machines:", tr.Machines)
	fmt.Println("series:", len(bg))
	fmt.Println("samples per series:", bg[0].Len())
	// Output:
	// machines: 4
	// series: 4
	// samples per series: 12
}

// ExampleNewRackBattery exercises the paper's rack battery cabinet: full
// rack load for the rated 50-second autonomy.
func ExampleNewRackBattery() {
	cab := padsec.NewRackBattery(5210)
	var delivered padsec.Watts
	for i := 0; i < 500; i++ { // 50 s in 100 ms steps
		delivered = cab.Discharge(5210, 100*time.Millisecond)
	}
	fmt.Println("still delivering at 50s:", delivered == 5210)
	fmt.Printf("SOC after the rated autonomy: %.0f%%\n", cab.SOC()*100)
	// Output:
	// still delivering at 50s: true
	// SOC after the rated autonomy: 38%
}

// ExampleRunCampaign plays the §3.1 co-residency hunt.
func ExampleRunCampaign() {
	res, err := padsec.RunCampaign(padsec.CampaignConfig{
		TargetRack: -1, // any rack will do
		Seed:       3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("succeeded:", res.Succeeded)
	fmt.Println("squad size:", len(res.Servers))
	fmt.Println("cheap:", res.Probes < 1000)
	// Output:
	// succeeded: true
	// squad size: 4
	// cheap: true
}
