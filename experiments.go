package padsec

import "repro/internal/experiments"

// The paper-reproduction experiment runners. Each regenerates one table
// or figure of the paper and returns both the raw numbers and a rendered
// report table; see EXPERIMENTS.md for the paper-versus-measured record.
//
// Pass ExperimentParams{} for the full-scale runs cmd/experiments uses, or
// ExperimentParams{Quick: true} for second-scale versions that preserve
// the qualitative shapes. ExperimentParams.Workers fans each experiment's
// independent simulation runs across a worker pool (0 = GOMAXPROCS, 1 =
// sequential) without changing any output byte, and
// ExperimentParams.Progress streams per-run progress and ETA.
var (
	// Fig1 reproduces the outage-cost CDF (survey background, bonus).
	Fig1 = experiments.Fig1
	// Fig5 reproduces the SOC-spread comparison of online vs offline
	// charging.
	Fig5 = experiments.Fig5
	// Fig6 reproduces the two-phase attack demonstration.
	Fig6 = experiments.Fig6
	// Fig7 reproduces the effective-attack demonstration.
	Fig7 = experiments.Fig7
	// Fig8A/B/C reproduce the attack-parameter sweeps (nodes, width,
	// frequency).
	Fig8A = experiments.Fig8A
	Fig8B = experiments.Fig8B
	Fig8C = experiments.Fig8C
	// Table1 reproduces the detection-rate matrix across metering
	// intervals.
	Table1 = experiments.Table1
	// Fig12 reproduces the collected dense/sparse attack traces.
	Fig12 = experiments.Fig12
	// Fig13 reproduces the DEB utilization maps (conventional vs PAD).
	Fig13 = experiments.Fig13
	// Fig14 reproduces the surge/load-shedding study.
	Fig14 = experiments.Fig14
	// Fig15 reproduces the survival-time comparison of the six schemes.
	Fig15 = experiments.Fig15
	// Fig16A/B reproduce the throughput-under-attack comparisons.
	Fig16A = experiments.Fig16A
	Fig16B = experiments.Fig16B
	// Fig17 reproduces the μDEB capacity/cost-efficiency sweep.
	Fig17 = experiments.Fig17
)
