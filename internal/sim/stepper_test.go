package sim_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

func stepperConfig() sim.Config {
	const racks, spr = 3, 5
	horizon := 12 * time.Second
	bg := make([]*stats.Series, racks*spr)
	rng := stats.NewRNG(41)
	for i := range bg {
		r := rng.Split(uint64(i))
		s := stats.NewSeries(time.Second)
		for k := 0; k <= int(horizon/time.Second)+1; k++ {
			s.Append(0.35 + 0.4*r.Float64())
		}
		bg[i] = s
	}
	return sim.Config{
		Key:             "stepper/equivalence",
		Racks:           racks,
		ServersPerRack:  spr,
		Tick:            100 * time.Millisecond,
		Duration:        horizon,
		Background:      bg,
		Record:          true,
		MicroDEBFactory: schemes.MicroDEBFactory(0.01),
		Attack: &sim.AttackSpec{
			Servers: []int{0, 1, 5},
			Attack: virus.MustNew(virus.Config{
				Profile:         virus.CPUIntensive,
				PrepDuration:    time.Second,
				MaxPhaseI:       3 * time.Second,
				SpikeWidth:      time.Second,
				SpikesPerMinute: 15,
				Seed:            9,
			}),
		},
	}
}

func stepperMakers() map[string]func() sim.Scheme {
	makers := map[string]func() sim.Scheme{}
	for _, name := range schemes.SchemeNames {
		name := name
		makers[name] = func() sim.Scheme {
			s, err := schemes.ByName(name, schemes.Options{ServersPerRack: 5})
			if err != nil {
				panic(err)
			}
			return s
		}
	}
	return makers
}

// TestRunEqualsManualStepping pins the Stepper extraction: for every
// scheme, Run and a manual loop over the single-tick API — both the
// packaged Step and the split ComputeDemand/Advance pair the online
// daemon uses — must produce deeply equal Results, recordings included.
// Any divergence means Run grew behaviour the stepping API does not
// share, which would silently break the online/offline equivalence padd
// relies on.
func TestRunEqualsManualStepping(t *testing.T) {
	for name, mk := range stepperMakers() {
		t.Run(name, func(t *testing.T) {
			viaRun, err := sim.Run(stepperConfig(), mk())
			if err != nil {
				t.Fatal(err)
			}

			st, err := sim.NewStepper(stepperConfig(), mk())
			if err != nil {
				t.Fatal(err)
			}
			steps := 0
			for {
				ok, err := st.Step()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				steps++
			}
			if !st.Done() {
				t.Fatalf("stepper not done after Step returned false")
			}
			if steps != st.Ticks() {
				t.Fatalf("stepped %d times but Ticks() = %d", steps, st.Ticks())
			}
			if !reflect.DeepEqual(viaRun, st.Result()) {
				t.Fatalf("%s: Run and manual Step loop produced different Results", name)
			}

			// The split path: demand computed explicitly, then fed back in
			// — exactly how the replay bridge drives the offline side.
			split, err := sim.NewStepper(stepperConfig(), mk())
			if err != nil {
				t.Fatal(err)
			}
			for !split.Done() {
				if err := split.Advance(split.ComputeDemand()); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(viaRun, split.Result()) {
				t.Fatalf("%s: Run and ComputeDemand/Advance loop produced different Results", name)
			}
		})
	}
}

// TestStepperGuards covers the stepping API's error paths: a finished
// stepper refuses to advance, and a demand slice of the wrong length is
// rejected before it can corrupt the run.
func TestStepperGuards(t *testing.T) {
	cfg := stepperConfig()
	cfg.Duration = 300 * time.Millisecond
	mk := stepperMakers()["PAD"]
	st, err := sim.NewStepper(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.TotalServers(), cfg.Racks*cfg.ServersPerRack; got != want {
		t.Fatalf("TotalServers = %d, want %d", got, want)
	}
	if err := st.Advance(make([]float64, 3)); err == nil {
		t.Fatal("Advance accepted a mis-sized demand slice")
	}
	for {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := st.Advance(make([]float64, st.TotalServers())); err == nil {
		t.Fatal("Advance accepted a tick past the horizon")
	}
	if st.Now() != cfg.Duration {
		t.Fatalf("Now() = %v after the full horizon, want %v", st.Now(), cfg.Duration)
	}
}

// TestStepperStats sanity-checks the observability snapshot the online
// daemon exports.
func TestStepperStats(t *testing.T) {
	cfg := stepperConfig()
	cfg.Duration = 2 * time.Second
	st, err := sim.NewStepper(cfg, stepperMakers()["PAD"]())
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		if _, err := st.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ts := st.Stats()
	if ts.Ticks != st.Ticks() || ts.Now != st.Now() {
		t.Fatalf("Stats ticks/now = %d/%v, want %d/%v", ts.Ticks, ts.Now, st.Ticks(), st.Now())
	}
	if ts.TotalGrid <= 0 {
		t.Fatalf("TotalGrid = %v, want positive draw under load", ts.TotalGrid)
	}
	if ts.MeanSOC <= 0 || ts.MeanSOC > 1 || ts.MinSOC > ts.MeanSOC {
		t.Fatalf("SOC stats out of range: mean %v min %v", ts.MeanSOC, ts.MinSOC)
	}
	if ts.MeanMicroSOC < 0 || ts.MeanMicroSOC > 1 {
		t.Fatalf("MeanMicroSOC = %v with μDEB deployed, want [0,1]", ts.MeanMicroSOC)
	}
	if ts.Level == 0 {
		t.Fatalf("Level = 0 for PAD, want a reported security level")
	}
}
