package sim

import "sync"

// Intra-run rack parallelism. The engine's per-tick work factors into
// rack-local kernels (viewKernel, applyKernel) plus serial phases that
// couple racks (scheme planning, the headroom-ordered charge pass, the
// reduce, breakers, recording). Racks only interact through those serial
// phases, so the kernels can fan out across worker goroutines with a
// barrier per phase and still produce results bit-identical to serial
// execution: every rack's floats land in that rack's own array slots,
// and all cross-rack accumulation happens afterwards, in rack order, on
// the stepping goroutine.
//
// The pool is persistent — Config.Workers goroutines started once in
// NewStepper and parked on their start channels between ticks — because
// a month-long trace advances millions of ticks and per-tick goroutine
// spawning would dominate the kernels it parallelizes. Work is striped
// statically (worker w takes racks w, w+n, w+2n, …): rack kernels are
// near-uniform in cost, so stealing machinery would buy nothing. The
// per-tick cost is one channel send and one WaitGroup signal per worker
// per phase, which is why the parallel path pays off on large clusters
// and is opt-in (Workers ≤ 1 keeps the zero-overhead serial path).
//
// Phases are identified by constants rather than closures so a tick
// allocates nothing (the allocation-free hot-loop contract of Run).

type phase uint8

const (
	phaseViews phase = iota
	phaseApply
)

type rackPool struct {
	st     *Stepper
	n      int
	start  []chan phase
	wg     sync.WaitGroup
	closed bool
}

// newRackPool starts n persistent workers striped over the stepper's
// racks. Caller guarantees 1 < n <= racks.
func newRackPool(st *Stepper, n int) *rackPool {
	p := &rackPool{st: st, n: n, start: make([]chan phase, n)}
	for w := 0; w < n; w++ {
		ch := make(chan phase, 1)
		p.start[w] = ch
		go p.worker(w, ch)
	}
	return p
}

func (p *rackPool) worker(w int, ch chan phase) {
	for ph := range ch {
		racks := p.st.cfg.Racks
		switch ph {
		case phaseViews:
			for i := w; i < racks; i += p.n {
				p.st.viewKernel(i)
			}
		case phaseApply:
			for i := w; i < racks; i += p.n {
				p.st.applyKernel(w, i)
			}
		}
		p.wg.Done()
	}
}

// run executes one phase across all racks and waits for the barrier:
// when it returns, every rack's kernel outputs are visible to the
// stepping goroutine (the WaitGroup provides the happens-before edge).
func (p *rackPool) run(ph phase) {
	p.wg.Add(p.n)
	for _, ch := range p.start {
		ch <- ph
	}
	p.wg.Wait()
}

// close releases the workers. Idempotent.
func (p *rackPool) close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.start {
		close(ch)
	}
}
