package sim

import (
	"fmt"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/powersim"
	"repro/internal/units"
	"repro/internal/virus"
)

// Stepper is the engine's single-tick stepping API: all of Run's setup
// happens once in NewStepper, and each Step (or ComputeDemand/Advance
// pair) advances the simulation by exactly one tick. Run itself is a
// loop over a Stepper, so the two paths cannot drift; the online padd
// daemon drives the same machine from streamed telemetry by calling
// Advance with externally measured per-server demand.
//
// Rack state lives in struct-of-arrays form (one slice per field,
// indexed by rack) and the per-tick work is organized as batched kernels
// over those arrays: a view kernel (demand fill + rack observation), an
// apply kernel (shedding, DVFS power, battery and μDEB stepping), and a
// serial reduce that folds per-rack kernel outputs into the run
// accumulators in exactly the order the historical single loop used —
// which is what keeps results bit-identical across the refactor and
// across worker counts (racks only couple through the already-serial
// scheme/vDEB phase, the charge pass, and the reduce).
//
// A Stepper inherits sim's concurrency contract: it is confined to one
// goroutine at a time. The observability accessors (Stats, Now, Ticks)
// are likewise not synchronized — callers that publish them across
// goroutines must do their own handoff. With Config.Workers > 1 the
// stepper owns a pool of persistent worker goroutines that are quiescent
// outside Advance; call Close when done with a stepper to release them
// (Run does this itself).
type Stepper struct {
	cfg    Config
	scheme Scheme

	pduBudget  units.Watts
	pduBreaker *powersim.Breaker

	// Per-rack state, struct-of-arrays: batteries[i], micros[i],
	// rackBreakers[i], budgets[i], overLast[i] and downFor[i] together
	// are what the old per-rack struct held for rack i.
	batteries    []battery.Store
	micros       []*core.MicroDEB // nil entries for racks without a μDEB
	rackBreakers []*powersim.Breaker
	budgets      []units.Watts
	overLast     []bool
	downFor      []time.Duration

	totalServers int

	// Attack groups, struct-of-arrays: attacks[g] is group g's spec,
	// groupRacks[g] the distinct racks it occupies (the capped-observation
	// scan), groupU[g] the utilization its controller commanded this tick.
	// attackOf maps each server to its group index, -1 for clean servers;
	// nil when the run hosts no virus.
	attacks    []AttackSpec
	groupRacks [][]int
	groupU     []float64
	attackOf   []int32

	res      *Result
	rec      *Recording
	recEvery int

	// Scratch buffers owned by this run and reused every tick (see Run's
	// allocation-free contract).
	lastFreq  []float64
	views     []RackView
	demandU   []float64
	lastDraws []units.Watts
	limits    []units.Watts
	draws     []units.Watts
	actsBuf   []Action
	topK      []*topKSelector // one per worker; serial uses topK[0]
	bg        bgSampler

	// Per-rack kernel outputs, filled by the apply kernel and folded by
	// the serial reduce.
	marks     []bool // per-server shed marks, racks concatenated
	rackPower []units.Watts
	rackShed  []int
	rackGot   []units.Watts
	rackMicro []units.Joules
	rackDark  []bool
	rackCoefs []powersim.PowerCoef

	// Transient per-tick kernel inputs, set by Advance before the
	// kernels run (fields rather than arguments so the worker pool can
	// call fixed methods without per-tick closures).
	curDemand  []float64
	curActions []Action

	powerFull powersim.PowerCoef // frequency-1 power coefficients
	pool      *rackPool          // nil unless Workers > 1 engaged a pool

	scratchScheme ScratchPlanner
	hasScratch    bool
	levelScheme   LevelReporter
	hasLevel      bool

	// Quiescent fast path (nil quiet = disabled): the scheme's planner
	// contract extension, the batteries' fixed-point probes, and span
	// counters for observability (see skip.go).
	quiet     QuiescentPlanner
	resters   []battery.Rester
	skipSpans int64
	skipTicks int64

	demandedWork, deliveredWork float64
	shedSum                     float64
	pduDown                     time.Duration
	ticks                       int
	now                         time.Duration
	stopped                     bool

	// Per-tick observability, refreshed by Advance.
	lastTotalGrid units.Watts
	lastShedCount int
	lastShedWatts units.Watts
	lastAttackU   float64

	// Event tracing (nil tracer = disabled). Every emission point sits in
	// a serial phase of the tick — the attack step, the planning phase,
	// the reduce, the breaker pass — so the event stream is identical at
	// any Workers count: kernel-phase observations (μDEB shaving) ride
	// the per-rack SoA outputs and are emitted by the reduce in rack
	// order. The edge-tracking state below is written only when tracing
	// is on; it never feeds back into the simulation.
	tracer         *obs.Tracer
	traceLevel     core.Level
	tracePhases    []virus.Phase // one per attack group
	traceHeatHigh  []bool        // racks 0..n-1; index n is the cluster PDU
	traceMargin    units.Watts
	traceMarginSet bool
}

// NewStepper validates cfg and builds a stepper positioned before the
// first tick.
func NewStepper(cfg Config, scheme Scheme) (*Stepper, error) {
	if scheme == nil {
		return nil, fmt.Errorf("sim: scheme is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	nameplate := cfg.Server.Peak * units.Watts(cfg.ServersPerRack)
	plan := powersim.OversubscriptionPlan{
		RackNameplate: nameplate,
		Racks:         cfg.Racks,
		Ratio:         cfg.OversubscriptionRatio,
	}
	pduBudget := plan.PDUBudget()
	newBreaker := func(rated units.Watts) *powersim.Breaker {
		b := powersim.NewBreaker(rated)
		if cfg.DisableTrips {
			b.TripHeat = 1e18
			b.InstantMultiple = 1e18
		}
		return b
	}

	st := &Stepper{
		cfg:        cfg,
		scheme:     scheme,
		pduBudget:  pduBudget,
		pduBreaker: newBreaker(pduBudget * units.Watts(1+cfg.OvershootTolerance)),
	}

	st.batteries = make([]battery.Store, cfg.Racks)
	st.micros = make([]*core.MicroDEB, cfg.Racks)
	st.rackBreakers = make([]*powersim.Breaker, cfg.Racks)
	st.budgets = make([]units.Watts, cfg.Racks)
	st.overLast = make([]bool, cfg.Racks)
	st.downFor = make([]time.Duration, cfg.Racks)
	for i := 0; i < cfg.Racks; i++ {
		budget := plan.RackBudget(i)
		st.batteries[i] = cfg.BatteryFactory(nameplate)
		st.rackBreakers[i] = newBreaker(budget * units.Watts(1+cfg.OvershootTolerance))
		st.budgets[i] = budget
		if cfg.MicroDEBFactory != nil {
			st.micros[i] = cfg.MicroDEBFactory(nameplate, budget)
		}
	}

	st.totalServers = cfg.Racks * cfg.ServersPerRack

	// Compromised-server index: a per-server group-id slice for the
	// demand loop and each group's distinct racks for its controller's
	// capped-observation scan — no map lookups on the hot path.
	if specs := cfg.attackList(); len(specs) > 0 {
		st.attacks = specs
		st.groupRacks = make([][]int, len(specs))
		st.groupU = make([]float64, len(specs))
		st.attackOf = make([]int32, st.totalServers)
		for s := range st.attackOf {
			st.attackOf[s] = -1
		}
		rackSeen := make([]bool, cfg.Racks)
		for g, spec := range specs {
			for i := range rackSeen {
				rackSeen[i] = false
			}
			for _, s := range spec.Servers {
				st.attackOf[s] = int32(g)
				if r := s / cfg.ServersPerRack; !rackSeen[r] {
					rackSeen[r] = true
					st.groupRacks[g] = append(st.groupRacks[g], r)
				}
			}
		}
	}
	st.res = &Result{
		Key:           cfg.Key,
		Scheme:        scheme.Name(),
		SurvivalTime:  cfg.Duration,
		FirstTripRack: -1,
	}
	st.recEvery = 1
	if cfg.Record {
		st.rec = newRecording(cfg)
		st.recEvery = int(cfg.RecordStep / cfg.Tick)
		if st.recEvery < 1 {
			st.recEvery = 1
		}
	}

	st.lastFreq = make([]float64, cfg.Racks)
	for i := range st.lastFreq {
		st.lastFreq[i] = 1
	}

	st.views = make([]RackView, cfg.Racks)
	st.demandU = make([]float64, st.totalServers)
	st.lastDraws = make([]units.Watts, cfg.Racks)
	st.limits = make([]units.Watts, cfg.Racks)
	st.draws = make([]units.Watts, cfg.Racks)
	st.actsBuf = make([]Action, cfg.Racks)

	st.marks = make([]bool, st.totalServers)
	st.rackPower = make([]units.Watts, cfg.Racks)
	st.rackShed = make([]int, cfg.Racks)
	st.rackGot = make([]units.Watts, cfg.Racks)
	st.rackMicro = make([]units.Joules, cfg.Racks)
	st.rackDark = make([]bool, cfg.Racks)
	st.rackCoefs = make([]powersim.PowerCoef, cfg.Racks)
	st.powerFull = cfg.Server.PowerCoef(1)

	workers := cfg.Workers
	if workers > cfg.Racks {
		workers = cfg.Racks
	}
	if workers < 1 {
		workers = 1
	}
	st.topK = make([]*topKSelector, workers)
	for w := range st.topK {
		st.topK[w] = newTopKSelector(cfg.ServersPerRack)
	}
	if workers > 1 {
		st.pool = newRackPool(st, workers)
	}

	st.bg = newBGSampler(cfg.Background)
	st.scratchScheme, st.hasScratch = scheme.(ScratchPlanner)
	st.levelScheme, st.hasLevel = scheme.(LevelReporter)
	st.initSkip()

	st.tracer = cfg.Trace
	if st.tracer != nil {
		st.tracer.SetMeta(obs.Meta{
			Scheme:         scheme.Name(),
			Tick:           cfg.Tick,
			Racks:          cfg.Racks,
			ServersPerRack: cfg.ServersPerRack,
		})
		st.traceHeatHigh = make([]bool, cfg.Racks+1)
		st.tracePhases = make([]virus.Phase, len(st.attacks))
	}
	return st, nil
}

// Close releases the stepper's worker pool, if any. It is idempotent and
// safe on a serial stepper; a closed stepper falls back to serial
// in-place execution if advanced again. Run closes its stepper itself;
// callers that construct a Stepper with Config.Workers > 1 directly are
// responsible for calling Close.
func (st *Stepper) Close() {
	if st.pool != nil {
		st.pool.close()
		st.pool = nil
	}
}

// Done reports whether the run has finished: the horizon is exhausted,
// or StopOnTrip ended it at the first breaker trip.
func (st *Stepper) Done() bool { return st.stopped || st.now >= st.cfg.Duration }

// Now returns the simulation offset of the next tick to execute.
func (st *Stepper) Now() time.Duration { return st.now }

// Ticks returns how many ticks have been advanced so far.
func (st *Stepper) Ticks() int { return st.ticks }

// TotalServers returns the cluster's server count — the length Advance
// expects of its demand slice.
func (st *Stepper) TotalServers() int { return st.totalServers }

// Tick returns the configured simulation step.
func (st *Stepper) Tick() time.Duration { return st.cfg.Tick }

// Scheme returns the scheme under control.
func (st *Stepper) Scheme() Scheme { return st.scheme }

// ComputeDemand steps the attack controller on last tick's observation
// and fills the coming tick's per-server utilization demand from the
// background trace and the virus. The returned slice is owned by the
// stepper and valid until the next ComputeDemand call; Advance may be
// called with it directly. Online drivers skip this and pass measured
// demand to Advance instead.
func (st *Stepper) ComputeDemand() []float64 {
	cfg := st.cfg

	// 1. Each attacker group acts on what it observed last tick: a
	// group's controller senses capping only on the racks its own
	// servers occupy — coordinated groups share a plan (their configs),
	// never observations.
	attackU := 0.0
	for g := range st.attacks {
		capped := false
		for _, r := range st.groupRacks[g] {
			if st.lastFreq[r] < 0.999 {
				capped = true
				break
			}
		}
		u := st.attacks[g].Attack.Step(cfg.Tick, virus.Observation{Capped: capped})
		st.groupU[g] = u
		if u > attackU {
			attackU = u
		}
		if st.tracer != nil {
			if ph := st.attacks[g].Attack.Phase(); ph != st.tracePhases[g] {
				st.tracer.Emit(obs.Event{
					Tick: int64(st.ticks), Rack: -1, Kind: obs.KindAttackPhase,
					A: float64(st.tracePhases[g]), B: float64(ph),
				})
				st.tracePhases[g] = ph
			}
		}
	}
	st.lastAttackU = attackU

	// 2. Per-server utilization demand at full frequency.
	if st.bg.series != nil {
		st.bg.tick(st.now)
		for s := 0; s < st.totalServers; s++ {
			u := st.bg.at(s)
			if st.attackOf != nil {
				if g := st.attackOf[s]; g >= 0 && st.groupU[g] > u {
					u = st.groupU[g]
				}
			}
			st.demandU[s] = u
		}
	} else {
		for s := 0; s < st.totalServers; s++ {
			u := 0.0
			if st.attackOf != nil {
				if g := st.attackOf[s]; g >= 0 && st.groupU[g] > u {
					u = st.groupU[g]
				}
			}
			st.demandU[s] = u
		}
	}
	return st.demandU
}

// Step advances one tick with trace-derived demand (ComputeDemand +
// Advance). It reports false, nil without advancing once the run is
// done; Run is exactly a loop over Step.
//
// With Config.SkipQuiescent set (and a scheme/battery stack that
// supports it), Step may instead advance a whole span of provably no-op
// ticks in one analytic call — results, recordings and trace streams are
// bit-identical either way, and one Step call still returns true per
// span. Online drivers that call Advance directly never skip.
func (st *Stepper) Step() (bool, error) {
	if st.Done() {
		return false, nil
	}
	if st.quiet != nil && st.skipAhead() {
		return true, nil
	}
	if err := st.Advance(st.ComputeDemand()); err != nil {
		return false, err
	}
	return true, nil
}

// viewKernel fills rack i's electrical demand and observation view. It
// touches only rack-i state (its battery, its view slot), so distinct
// racks run concurrently under the worker pool.
func (st *Stepper) viewKernel(i int) {
	cfg := &st.cfg
	base := i * cfg.ServersPerRack
	var demand units.Watts
	for s := base; s < base+cfg.ServersPerRack; s++ {
		demand += st.powerFull.Power(st.curDemand[s])
	}
	b := st.batteries[i]
	v := RackView{
		Demand:           demand,
		Budget:           st.budgets[i],
		BatterySOC:       b.SOC(),
		BatteryMax:       b.Deliverable(cfg.Tick),
		BatteryMaxCharge: b.MaxCharge(),
		MicroSOC:         -1,
	}
	if m := st.micros[i]; m != nil {
		v.MicroSOC = m.SOC()
	}
	v.LastDraw = st.lastDraws[i]
	st.views[i] = v
}

// applyKernel executes rack i's share of the action pass: frequency and
// shed clamping, top-k shed selection, server power summation, breaker
// restore bookkeeping, battery discharge/idle and μDEB shaving. All
// global accumulation is deferred to the serial reduce; the kernel
// writes only rack-i slots (and its worker-private selector), so
// distinct racks run concurrently under the worker pool.
func (st *Stepper) applyKernel(worker, i int) {
	cfg := &st.cfg
	act := st.curActions[i]
	freq := act.Freq
	if freq == 0 {
		freq = 1
	}
	if freq < 0.1 {
		freq = 0.1
	}
	if freq > 1 {
		freq = 1
	}
	st.lastFreq[i] = freq
	shed := act.ShedServers
	if shed < 0 {
		shed = 0
	}
	if shed > cfg.ServersPerRack {
		shed = cfg.ServersPerRack
	}
	st.rackShed[i] = shed

	// Shed the highest-demand servers first: that is where the
	// power (and any resident attacker) is.
	base := i * cfg.ServersPerRack
	order := st.marks[base : base+cfg.ServersPerRack]
	st.topK[worker].markInto(order, st.curDemand[base:base+cfg.ServersPerRack], shed)

	// One math.Pow per rack (zero at full frequency) instead of one per
	// server: every server in the rack shares the DVFS operating point.
	pc := st.powerFull
	if freq != 1 {
		pc = cfg.Server.PowerCoef(freq)
	}
	st.rackCoefs[i] = pc
	var power units.Watts
	for s := 0; s < cfg.ServersPerRack; s++ {
		if order[s] {
			power += cfg.SleepPower
			continue
		}
		power += pc.Power(st.curDemand[base+s])
	}
	st.rackPower[i] = power

	// Rack breaker already tripped (non-StopOnTrip mode): the rack
	// is dark, delivers nothing further, draws nothing. With
	// RestoreAfter set, the operator eventually resets the feed.
	br := st.rackBreakers[i]
	if br.Tripped() && cfg.RestoreAfter > 0 {
		st.downFor[i] += cfg.Tick
		if st.downFor[i] >= cfg.RestoreAfter {
			br.Reset()
			st.downFor[i] = 0
		}
	}
	st.rackGot[i] = 0
	st.rackMicro[i] = 0
	st.draws[i] = 0
	if br.Tripped() {
		st.rackDark[i] = true
		st.batteries[i].Idle(cfg.Tick)
		return
	}
	st.rackDark[i] = false

	// Battery discharge, then μDEB shaving on the remainder.
	grid := power
	if act.Discharge > 0 {
		got := st.batteries[i].Discharge(units.Min(act.Discharge, power), cfg.Tick)
		st.rackGot[i] = got
		grid -= got
	}
	if m := st.micros[i]; m != nil {
		// The ORing conducts when the draw reaches the rack's
		// overload-protection limit — the μDEB shaves the
		// dangerous excursion, not routine above-budget draw
		// (which is the battery pool's job).
		m.SetThreshold(st.limits[i] * units.Watts(1+cfg.OvershootTolerance))
		before := m.ShavedEnergy()
		grid = m.Shave(grid, cfg.Tick)
		st.rackMicro[i] = m.ShavedEnergy() - before
	}
	st.draws[i] = grid

	// Battery charging happens in the charge pass from global headroom;
	// a rack that neither charged nor discharged must still idle.
	if act.Discharge <= 0 && act.Charge <= 0 {
		st.batteries[i].Idle(cfg.Tick)
	}
}

// Advance executes one simulation tick with the given per-server
// utilization demand (len must equal TotalServers). This is the whole
// per-tick machine — scheme planning, soft-limit resolution, shedding,
// battery and μDEB stepping, charging, breakers, recording — and is the
// entry point online drivers feed measured telemetry into.
func (st *Stepper) Advance(demandU []float64) error {
	if st.Done() {
		return fmt.Errorf("sim: stepper already done at %v", st.now)
	}
	if len(demandU) != st.totalServers {
		return fmt.Errorf("sim: demand has %d entries for %d servers",
			len(demandU), st.totalServers)
	}
	cfg := st.cfg
	now := st.now
	tick := int64(st.ticks) // 0-based index of the tick being advanced
	st.ticks++
	st.curDemand = demandU

	// Per-rack electrical demand at full frequency (view kernel over the
	// rack arrays).
	if st.pool != nil {
		st.pool.run(phaseViews)
	} else {
		for i := 0; i < cfg.Racks; i++ {
			st.viewKernel(i)
		}
	}
	var totalDemand units.Watts
	for i := range st.views {
		totalDemand += st.views[i].Demand
	}

	// 3. Scheme decides. ScratchPlanner schemes fill the engine's
	// reusable action buffer; plain schemes allocate their own.
	view := ClusterView{
		Time:        now,
		Tick:        cfg.Tick,
		TotalDemand: totalDemand,
		PDUBudget:   st.pduBudget,
		Racks:       st.views,
		Trace:       st.tracer,
	}
	var actions []Action
	if st.hasScratch {
		for i := range st.actsBuf {
			st.actsBuf[i] = Action{}
		}
		actions = st.scratchScheme.PlanInto(view, st.actsBuf)
	} else {
		actions = st.scheme.Plan(view)
	}
	if len(actions) != cfg.Racks {
		return fmt.Errorf("sim: scheme %s returned %d actions for %d racks",
			st.scheme.Name(), len(actions), cfg.Racks)
	}
	st.curActions = actions
	if st.tracer != nil && st.hasLevel {
		if lvl := st.levelScheme.Level(); lvl != st.traceLevel {
			st.tracer.Emit(obs.Event{
				Tick: tick, Rack: -1, Kind: obs.KindLevel,
				A: float64(st.traceLevel), B: float64(lvl),
			})
			st.traceLevel = lvl
		}
	}

	// 4a. Resolve soft-limit reassignments: default budgets where the
	// scheme passed 0, proportional scale-down if the total exceeds the
	// PDU budget (eq. 2 must keep holding).
	var budgetSum units.Watts
	for i := range st.limits {
		st.limits[i] = st.budgets[i]
		if actions[i].Budget > 0 {
			st.limits[i] = actions[i].Budget
		}
		budgetSum += st.limits[i]
	}
	if budgetSum > st.pduBudget {
		scale := float64(st.pduBudget) / float64(budgetSum)
		for i := range st.limits {
			st.limits[i] = units.Watts(float64(st.limits[i]) * scale)
		}
	}

	// 4b. Apply actions rack by rack: the apply kernel computes every
	// rack-local quantity (parallel under the pool), then a serial
	// reduce folds the per-rack outputs into the run accumulators in
	// exactly the order the historical single loop used, keeping every
	// floating-point sum bit-identical at any worker count.
	if st.pool != nil {
		st.pool.run(phaseApply)
	} else {
		for i := 0; i < cfg.Racks; i++ {
			st.applyKernel(0, i)
		}
	}

	var totalGrid units.Watts
	shedCount := 0
	var shedWatts units.Watts
	for i := 0; i < cfg.Racks; i++ {
		freq := st.lastFreq[i]
		shedCount += st.rackShed[i]
		base := i * cfg.ServersPerRack
		order := st.marks[base : base+cfg.ServersPerRack]
		pc := st.rackCoefs[i]
		for s := 0; s < cfg.ServersPerRack; s++ {
			u := demandU[base+s]
			st.demandedWork += u
			if order[s] {
				shedWatts += pc.Power(u) - cfg.SleepPower
				continue
			}
			st.deliveredWork += minf(u, freq)
		}

		if st.rackDark[i] {
			// Undo this tick's delivered-work credit for the rack.
			for s := 0; s < cfg.ServersPerRack; s++ {
				if !order[s] {
					st.deliveredWork -= minf(demandU[base+s], freq)
				}
			}
			continue
		}

		st.res.EnergyServed += st.rackPower[i].Energy(cfg.Tick)
		if st.curActions[i].Discharge > 0 {
			got := st.rackGot[i]
			st.res.EnergyFromBatteries += got.Energy(cfg.Tick)
			if got > st.res.MaxRackDischarge {
				st.res.MaxRackDischarge = got
			}
		}
		if st.micros[i] != nil {
			st.res.EnergyFromMicro += st.rackMicro[i]
			if st.tracer != nil && st.rackMicro[i] > 0 {
				st.tracer.Emit(obs.Event{
					Tick: tick, Rack: int32(i), Kind: obs.KindMicroShave,
					A: float64(st.rackMicro[i]), B: float64(st.draws[i]),
				})
			}
		}
		totalGrid += st.draws[i]
	}
	st.shedSum += float64(shedCount) / float64(st.totalServers)
	if st.tracer != nil && shedCount != st.lastShedCount {
		st.tracer.Emit(obs.Event{
			Tick: tick, Rack: -1, Kind: obs.KindShed,
			A: float64(shedCount), B: float64(shedWatts),
		})
	}

	// 5. Grant charge requests from remaining PDU headroom. Every
	// battery gets exactly one state-advancing call per tick: racks
	// that discharged (or are dark) were stepped in pass 4; racks
	// whose charge request cannot be granted idle instead. Headroom
	// hands down sequentially, so this pass stays serial.
	headroom := st.pduBudget - totalGrid
	for i := 0; i < cfg.Racks; i++ {
		act := actions[i]
		if st.rackBreakers[i].Tripped() || act.Discharge > 0 {
			continue
		}
		if act.Charge > 0 {
			if headroom > 0 {
				got := st.batteries[i].Charge(units.Min(act.Charge, headroom), cfg.Tick)
				st.draws[i] += got
				totalGrid += got
				headroom -= got
				st.res.EnergyIntoStorage += got.Energy(cfg.Tick)
			} else {
				st.batteries[i].Idle(cfg.Tick)
			}
		}
		if act.MicroCharge > 0 && st.micros[i] != nil && headroom > 0 {
			got := st.micros[i].Recharge(units.Min(act.MicroCharge, headroom), cfg.Tick)
			st.draws[i] += got
			totalGrid += got
			headroom -= got
			st.res.EnergyIntoStorage += got.Energy(cfg.Tick)
		}
	}

	copy(st.lastDraws, st.draws)
	st.res.EnergyFromGrid += totalGrid.Energy(cfg.Tick)

	// 6. Step breakers and count overload events. The rack's overload
	// protection threshold follows its assigned soft limit, while
	// effective attacks are counted against the pre-determined default
	// limit (the paper's fixed "x% overshoot" line).
	for i := 0; i < cfg.Racks; i++ {
		br := st.rackBreakers[i]
		br.Rated = st.limits[i] * units.Watts(1+cfg.OvershootTolerance)
		tolerated := st.budgets[i] * units.Watts(1+cfg.OvershootTolerance)
		over := st.draws[i] > tolerated
		if over && !st.overLast[i] {
			st.res.EffectiveAttacks++
			if st.tracer != nil {
				st.tracer.Emit(obs.Event{
					Tick: tick, Rack: int32(i), Kind: obs.KindOverload,
					A: float64(st.draws[i]), B: float64(tolerated),
				})
			}
		}
		st.overLast[i] = over
		wasTripped := br.Tripped()
		if br.Step(st.draws[i], cfg.Tick) && !wasTripped {
			if st.tracer != nil {
				st.tracer.Emit(obs.Event{
					Tick: tick, Rack: int32(i), Kind: obs.KindTrip,
					A: float64(st.draws[i]), B: float64(br.Rated),
				})
			}
			if !st.res.Tripped {
				st.res.Tripped = true
				st.res.SurvivalTime = now + cfg.Tick
				st.res.FirstTripRack = i
			}
		}
		if st.tracer != nil {
			st.traceBreaker(tick, int32(i), br, st.draws[i])
		}
	}
	wasTripped := st.pduBreaker.Tripped()
	if st.pduBreaker.Step(totalGrid, cfg.Tick) && !wasTripped {
		if st.tracer != nil {
			st.tracer.Emit(obs.Event{
				Tick: tick, Rack: -1, Kind: obs.KindTrip,
				A: float64(totalGrid), B: float64(st.pduBreaker.Rated),
			})
		}
		if !st.res.Tripped {
			st.res.Tripped = true
			st.res.SurvivalTime = now + cfg.Tick
			st.res.FirstTripRack = -1
		}
	}
	if st.tracer != nil {
		st.traceBreaker(tick, -1, st.pduBreaker, totalGrid)
	}
	if st.pduBreaker.Tripped() && cfg.RestoreAfter > 0 && !cfg.StopOnTrip {
		st.pduDown += cfg.Tick
		if st.pduDown >= cfg.RestoreAfter {
			st.pduBreaker.Reset()
			st.pduDown = 0
		}
	}

	// 7. Record.
	if st.rec != nil && st.ticks%st.recEvery == 0 {
		st.rec.TotalGrid.Append(float64(totalGrid))
		for i := 0; i < cfg.Racks; i++ {
			st.rec.RackSOC[i].Append(st.batteries[i].SOC())
			st.rec.RackDraw[i].Append(float64(st.draws[i]))
			if st.micros[i] != nil {
				st.rec.MicroSOC[i].Append(st.micros[i].SOC())
			}
		}
		lvl := core.Level(0)
		if st.hasLevel {
			lvl = st.levelScheme.Level()
		}
		st.rec.Levels = append(st.rec.Levels, lvl)
		st.rec.ShedRatio.Append(float64(shedCount) / float64(st.totalServers))
		st.rec.AttackUtil.Append(st.lastAttackU)
	}

	st.lastTotalGrid = totalGrid
	st.lastShedCount = shedCount
	st.lastShedWatts = shedWatts

	if st.res.Tripped && cfg.StopOnTrip {
		st.stopped = true
	}
	st.now += cfg.Tick
	return nil
}

// traceBreaker emits the thermal early-warning and run-minimum-margin
// events for one feed (rack index, or -1 for the cluster PDU) right after
// its breaker stepped. Only called when tracing is enabled; the edge
// state it keeps is trace-only and never feeds back into the simulation.
func (st *Stepper) traceBreaker(tick int64, rack int32, br *powersim.Breaker, draw units.Watts) {
	idx := int(rack)
	if rack < 0 {
		idx = st.cfg.Racks
	}
	if br.Tripped() {
		st.traceHeatHigh[idx] = false
		return
	}
	threshold := br.TripThreshold()
	hot := br.Heat() >= threshold/2
	if hot && !st.traceHeatHigh[idx] {
		st.tracer.Emit(obs.Event{
			Tick: tick, Rack: rack, Kind: obs.KindHeat,
			A: br.Heat(), B: threshold,
		})
	}
	st.traceHeatHigh[idx] = hot
	if m := br.Rated - draw; !st.traceMarginSet || m < st.traceMargin {
		st.traceMargin = m
		st.traceMarginSet = true
		st.tracer.Emit(obs.Event{
			Tick: tick, Rack: rack, Kind: obs.KindMarginLow,
			A: float64(m), B: float64(br.Rated),
		})
	}
}

// Result finalizes the derived metrics over the ticks advanced so far
// and returns the (live) result. It may be called repeatedly — online
// drivers read it mid-run — and after the final tick it returns exactly
// what Run would have.
func (st *Stepper) Result() *Result {
	if st.demandedWork > 0 {
		st.res.Throughput = st.deliveredWork / st.demandedWork
	} else {
		st.res.Throughput = 1
	}
	if st.ticks > 0 {
		st.res.MeanShedRatio = st.shedSum / float64(st.ticks)
	} else {
		st.res.MeanShedRatio = 0
	}
	st.res.Recording = st.rec
	return st.res
}

// TickStats is a per-tick observability snapshot for online drivers —
// the gauges padd exports. Reading it costs one pass over the racks and
// nothing on the tick path itself.
type TickStats struct {
	// Now is the offset of the next tick (i.e. ticks advanced × tick).
	Now time.Duration
	// Ticks counts advanced intervals.
	Ticks int
	// TotalGrid is the cluster feed draw on the last tick.
	TotalGrid units.Watts
	// ShedServers is how many servers were held asleep on the last tick.
	ShedServers int
	// ShedWatts is the demand power displaced by shedding on the last
	// tick (demanded server power minus sleep draw, summed over shed
	// servers).
	ShedWatts units.Watts
	// AttackUtil is the virus utilization commanded on the last tick
	// (always 0 on the online path).
	AttackUtil float64
	// Level is the scheme's security level, or 0 when not reported.
	Level core.Level
	// Tripped reports whether any breaker has tripped so far.
	Tripped bool
	// MeanSOC and MinSOC summarize the rack batteries' state of charge.
	MeanSOC, MinSOC float64
	// MeanMicroSOC is the mean μDEB SOC, or -1 without μDEB hardware.
	MeanMicroSOC float64
	// BreakerMargin is the smallest rated-minus-draw margin across the
	// untripped feeds (rack feeds and the cluster PDU), the distance to
	// the nearest overload protection limit.
	BreakerMargin units.Watts
}

// Stats summarizes the stepper's state after the last advanced tick.
func (st *Stepper) Stats() TickStats {
	ts := TickStats{
		Now:          st.now,
		Ticks:        st.ticks,
		TotalGrid:    st.lastTotalGrid,
		ShedServers:  st.lastShedCount,
		ShedWatts:    st.lastShedWatts,
		AttackUtil:   st.lastAttackU,
		Tripped:      st.res.Tripped,
		MinSOC:       1,
		MeanMicroSOC: -1,
	}
	if st.hasLevel {
		ts.Level = st.levelScheme.Level()
	}
	margin := st.pduBreaker.Rated - st.lastTotalGrid
	marginSet := !st.pduBreaker.Tripped()
	var micro float64
	microCount := 0
	for i := range st.batteries {
		soc := st.batteries[i].SOC()
		ts.MeanSOC += soc
		if soc < ts.MinSOC {
			ts.MinSOC = soc
		}
		if st.micros[i] != nil {
			micro += st.micros[i].SOC()
			microCount++
		}
		if !st.rackBreakers[i].Tripped() {
			if m := st.rackBreakers[i].Rated - st.draws[i]; !marginSet || m < margin {
				margin = m
				marginSet = true
			}
		}
	}
	if len(st.batteries) > 0 {
		ts.MeanSOC /= float64(len(st.batteries))
	} else {
		ts.MinSOC = 0
	}
	if microCount > 0 {
		ts.MeanMicroSOC = micro / float64(microCount)
	}
	if marginSet {
		ts.BreakerMargin = margin
	}
	return ts
}
