package sim

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/powersim"
	"repro/internal/units"
	"repro/internal/virus"
)

// Stepper is the engine's single-tick stepping API: all of Run's setup
// happens once in NewStepper, and each Step (or ComputeDemand/Advance
// pair) advances the simulation by exactly one tick. Run itself is a
// loop over a Stepper, so the two paths cannot drift; the online padd
// daemon drives the same machine from streamed telemetry by calling
// Advance with externally measured per-server demand.
//
// A Stepper inherits sim's concurrency contract: it is confined to one
// goroutine at a time. The observability accessors (Stats, Now, Ticks)
// are likewise not synchronized — callers that publish them across
// goroutines must do their own handoff.
type Stepper struct {
	cfg    Config
	scheme Scheme

	pduBudget  units.Watts
	pduBreaker *powersim.Breaker
	racks      []*rack

	totalServers     int
	compromisedFlag  []bool
	compromisedRacks []int

	res      *Result
	rec      *Recording
	recEvery int

	// Scratch buffers owned by this run and reused every tick (see Run's
	// allocation-free contract).
	lastFreq  []float64
	views     []RackView
	demandU   []float64
	lastDraws []units.Watts
	limits    []units.Watts
	draws     []units.Watts
	actsBuf   []Action
	topK      *topKSelector
	bg        bgSampler

	scratchScheme ScratchPlanner
	hasScratch    bool
	levelScheme   LevelReporter
	hasLevel      bool

	demandedWork, deliveredWork float64
	shedSum                     float64
	pduDown                     time.Duration
	ticks                       int
	now                         time.Duration
	stopped                     bool

	// Per-tick observability, refreshed by Advance.
	lastTotalGrid units.Watts
	lastShedCount int
	lastShedWatts units.Watts
	lastAttackU   float64
}

// NewStepper validates cfg and builds a stepper positioned before the
// first tick.
func NewStepper(cfg Config, scheme Scheme) (*Stepper, error) {
	if scheme == nil {
		return nil, fmt.Errorf("sim: scheme is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	nameplate := cfg.Server.Peak * units.Watts(cfg.ServersPerRack)
	plan := powersim.OversubscriptionPlan{
		RackNameplate: nameplate,
		Racks:         cfg.Racks,
		Ratio:         cfg.OversubscriptionRatio,
	}
	pduBudget := plan.PDUBudget()
	newBreaker := func(rated units.Watts) *powersim.Breaker {
		b := powersim.NewBreaker(rated)
		if cfg.DisableTrips {
			b.TripHeat = 1e18
			b.InstantMultiple = 1e18
		}
		return b
	}

	st := &Stepper{
		cfg:        cfg,
		scheme:     scheme,
		pduBudget:  pduBudget,
		pduBreaker: newBreaker(pduBudget * units.Watts(1+cfg.OvershootTolerance)),
	}

	st.racks = make([]*rack, cfg.Racks)
	for i := range st.racks {
		budget := plan.RackBudget(i)
		r := &rack{
			battery: cfg.BatteryFactory(nameplate),
			breaker: newBreaker(budget * units.Watts(1+cfg.OvershootTolerance)),
			budget:  budget,
		}
		if cfg.MicroDEBFactory != nil {
			r.micro = cfg.MicroDEBFactory(nameplate, budget)
		}
		st.racks[i] = r
	}

	st.totalServers = cfg.Racks * cfg.ServersPerRack

	// Compromised-server index: a per-server flag slice for the demand
	// loop and the distinct compromised racks for the attacker's
	// capped-observation scan — no map lookups on the hot path.
	if cfg.Attack != nil {
		st.compromisedFlag = make([]bool, st.totalServers)
		rackSeen := make([]bool, cfg.Racks)
		for _, s := range cfg.Attack.Servers {
			st.compromisedFlag[s] = true
			if r := s / cfg.ServersPerRack; !rackSeen[r] {
				rackSeen[r] = true
				st.compromisedRacks = append(st.compromisedRacks, r)
			}
		}
	}
	st.res = &Result{
		Key:           cfg.Key,
		Scheme:        scheme.Name(),
		SurvivalTime:  cfg.Duration,
		FirstTripRack: -1,
	}
	st.recEvery = 1
	if cfg.Record {
		st.rec = newRecording(cfg)
		st.recEvery = int(cfg.RecordStep / cfg.Tick)
		if st.recEvery < 1 {
			st.recEvery = 1
		}
	}

	st.lastFreq = make([]float64, cfg.Racks)
	for i := range st.lastFreq {
		st.lastFreq[i] = 1
	}

	st.views = make([]RackView, cfg.Racks)
	st.demandU = make([]float64, st.totalServers)
	st.lastDraws = make([]units.Watts, cfg.Racks)
	st.limits = make([]units.Watts, cfg.Racks)
	st.draws = make([]units.Watts, cfg.Racks)
	st.actsBuf = make([]Action, cfg.Racks)
	st.topK = newTopKSelector(cfg.ServersPerRack)
	st.bg = newBGSampler(cfg.Background)
	st.scratchScheme, st.hasScratch = scheme.(ScratchPlanner)
	st.levelScheme, st.hasLevel = scheme.(LevelReporter)
	return st, nil
}

// Done reports whether the run has finished: the horizon is exhausted,
// or StopOnTrip ended it at the first breaker trip.
func (st *Stepper) Done() bool { return st.stopped || st.now >= st.cfg.Duration }

// Now returns the simulation offset of the next tick to execute.
func (st *Stepper) Now() time.Duration { return st.now }

// Ticks returns how many ticks have been advanced so far.
func (st *Stepper) Ticks() int { return st.ticks }

// TotalServers returns the cluster's server count — the length Advance
// expects of its demand slice.
func (st *Stepper) TotalServers() int { return st.totalServers }

// Tick returns the configured simulation step.
func (st *Stepper) Tick() time.Duration { return st.cfg.Tick }

// Scheme returns the scheme under control.
func (st *Stepper) Scheme() Scheme { return st.scheme }

// ComputeDemand steps the attack controller on last tick's observation
// and fills the coming tick's per-server utilization demand from the
// background trace and the virus. The returned slice is owned by the
// stepper and valid until the next ComputeDemand call; Advance may be
// called with it directly. Online drivers skip this and pass measured
// demand to Advance instead.
func (st *Stepper) ComputeDemand() []float64 {
	cfg := st.cfg

	// 1. Attacker acts on what it observed last tick.
	attackU := 0.0
	if cfg.Attack != nil {
		capped := false
		for _, r := range st.compromisedRacks {
			if st.lastFreq[r] < 0.999 {
				capped = true
				break
			}
		}
		attackU = cfg.Attack.Attack.Step(cfg.Tick, virus.Observation{Capped: capped})
	}
	st.lastAttackU = attackU

	// 2. Per-server utilization demand at full frequency.
	if st.bg.series != nil {
		st.bg.tick(st.now)
		for s := 0; s < st.totalServers; s++ {
			u := st.bg.at(s)
			if st.compromisedFlag != nil && st.compromisedFlag[s] && attackU > u {
				u = attackU
			}
			st.demandU[s] = u
		}
	} else {
		for s := 0; s < st.totalServers; s++ {
			u := 0.0
			if st.compromisedFlag != nil && st.compromisedFlag[s] && attackU > u {
				u = attackU
			}
			st.demandU[s] = u
		}
	}
	return st.demandU
}

// Step advances one tick with trace-derived demand (ComputeDemand +
// Advance). It reports false, nil without advancing once the run is
// done; Run is exactly a loop over Step.
func (st *Stepper) Step() (bool, error) {
	if st.Done() {
		return false, nil
	}
	if err := st.Advance(st.ComputeDemand()); err != nil {
		return false, err
	}
	return true, nil
}

// Advance executes one simulation tick with the given per-server
// utilization demand (len must equal TotalServers). This is the whole
// per-tick machine — scheme planning, soft-limit resolution, shedding,
// battery and μDEB stepping, charging, breakers, recording — and is the
// entry point online drivers feed measured telemetry into.
func (st *Stepper) Advance(demandU []float64) error {
	if st.Done() {
		return fmt.Errorf("sim: stepper already done at %v", st.now)
	}
	if len(demandU) != st.totalServers {
		return fmt.Errorf("sim: demand has %d entries for %d servers",
			len(demandU), st.totalServers)
	}
	cfg := st.cfg
	now := st.now
	st.ticks++

	// Per-rack electrical demand at full frequency.
	for i, r := range st.racks {
		var demand units.Watts
		for s := i * cfg.ServersPerRack; s < (i+1)*cfg.ServersPerRack; s++ {
			demand += cfg.Server.Power(demandU[s], 1)
		}
		st.views[i] = RackView{
			Demand:           demand,
			Budget:           r.budget,
			BatterySOC:       r.battery.SOC(),
			BatteryMax:       r.battery.Deliverable(cfg.Tick),
			BatteryMaxCharge: r.battery.MaxCharge(),
			MicroSOC:         -1,
		}
		if r.micro != nil {
			st.views[i].MicroSOC = r.micro.SOC()
		}
		st.views[i].LastDraw = st.lastDraws[i]
	}
	var totalDemand units.Watts
	for i := range st.views {
		totalDemand += st.views[i].Demand
	}

	// 3. Scheme decides. ScratchPlanner schemes fill the engine's
	// reusable action buffer; plain schemes allocate their own.
	view := ClusterView{
		Time:        now,
		Tick:        cfg.Tick,
		TotalDemand: totalDemand,
		PDUBudget:   st.pduBudget,
		Racks:       st.views,
	}
	var actions []Action
	if st.hasScratch {
		for i := range st.actsBuf {
			st.actsBuf[i] = Action{}
		}
		actions = st.scratchScheme.PlanInto(view, st.actsBuf)
	} else {
		actions = st.scheme.Plan(view)
	}
	if len(actions) != cfg.Racks {
		return fmt.Errorf("sim: scheme %s returned %d actions for %d racks",
			st.scheme.Name(), len(actions), cfg.Racks)
	}

	// 4a. Resolve soft-limit reassignments: default budgets where the
	// scheme passed 0, proportional scale-down if the total exceeds the
	// PDU budget (eq. 2 must keep holding).
	var budgetSum units.Watts
	for i, r := range st.racks {
		st.limits[i] = r.budget
		if actions[i].Budget > 0 {
			st.limits[i] = actions[i].Budget
		}
		budgetSum += st.limits[i]
	}
	if budgetSum > st.pduBudget {
		scale := float64(st.pduBudget) / float64(budgetSum)
		for i := range st.limits {
			st.limits[i] = units.Watts(float64(st.limits[i]) * scale)
		}
	}

	// 4b. Apply actions rack by rack.
	var totalGrid units.Watts
	for i := range st.draws {
		st.draws[i] = 0
	}
	shedCount := 0
	var shedWatts units.Watts
	for i, r := range st.racks {
		act := actions[i]
		freq := act.Freq
		if freq == 0 {
			freq = 1
		}
		if freq < 0.1 {
			freq = 0.1
		}
		if freq > 1 {
			freq = 1
		}
		st.lastFreq[i] = freq
		shed := act.ShedServers
		if shed < 0 {
			shed = 0
		}
		if shed > cfg.ServersPerRack {
			shed = cfg.ServersPerRack
		}
		shedCount += shed

		// Shed the highest-demand servers first: that is where the
		// power (and any resident attacker) is.
		base := i * cfg.ServersPerRack
		order := st.topK.mark(demandU[base:base+cfg.ServersPerRack], shed)
		var power units.Watts
		for s := 0; s < cfg.ServersPerRack; s++ {
			u := demandU[base+s]
			st.demandedWork += u
			if order[s] {
				power += cfg.SleepPower
				shedWatts += cfg.Server.Power(u, freq) - cfg.SleepPower
				continue
			}
			power += cfg.Server.Power(u, freq)
			st.deliveredWork += minf(u, freq)
		}

		// Rack breaker already tripped (non-StopOnTrip mode): the rack
		// is dark, delivers nothing further, draws nothing. With
		// RestoreAfter set, the operator eventually resets the feed.
		if r.breaker.Tripped() && cfg.RestoreAfter > 0 {
			r.downFor += cfg.Tick
			if r.downFor >= cfg.RestoreAfter {
				r.breaker.Reset()
				r.downFor = 0
			}
		}
		if r.breaker.Tripped() {
			// Undo this tick's delivered-work credit for the rack.
			for s := 0; s < cfg.ServersPerRack; s++ {
				if !order[s] {
					st.deliveredWork -= minf(demandU[base+s], freq)
				}
			}
			r.battery.Idle(cfg.Tick)
			continue
		}

		st.res.EnergyServed += power.Energy(cfg.Tick)

		// Battery discharge, then μDEB shaving on the remainder.
		grid := power
		if act.Discharge > 0 {
			got := r.battery.Discharge(units.Min(act.Discharge, power), cfg.Tick)
			st.res.EnergyFromBatteries += got.Energy(cfg.Tick)
			if got > st.res.MaxRackDischarge {
				st.res.MaxRackDischarge = got
			}
			grid -= got
		}
		var microBefore units.Joules
		if r.micro != nil {
			// The ORing conducts when the draw reaches the rack's
			// overload-protection limit — the μDEB shaves the
			// dangerous excursion, not routine above-budget draw
			// (which is the battery pool's job).
			r.micro.SetThreshold(st.limits[i] * units.Watts(1+cfg.OvershootTolerance))
			microBefore = r.micro.ShavedEnergy()
			grid = r.micro.Shave(grid, cfg.Tick)
			st.res.EnergyFromMicro += r.micro.ShavedEnergy() - microBefore
		}
		st.draws[i] = grid
		totalGrid += grid

		// Battery charging happens in pass 5 from global headroom; a
		// rack that neither charged nor discharged must still idle.
		if act.Discharge <= 0 && act.Charge <= 0 {
			r.battery.Idle(cfg.Tick)
		}
	}
	st.shedSum += float64(shedCount) / float64(st.totalServers)

	// 5. Grant charge requests from remaining PDU headroom. Every
	// battery gets exactly one state-advancing call per tick: racks
	// that discharged (or are dark) were stepped in pass 4; racks
	// whose charge request cannot be granted idle instead.
	headroom := st.pduBudget - totalGrid
	for i, r := range st.racks {
		act := actions[i]
		if r.breaker.Tripped() || act.Discharge > 0 {
			continue
		}
		if act.Charge > 0 {
			if headroom > 0 {
				got := r.battery.Charge(units.Min(act.Charge, headroom), cfg.Tick)
				st.draws[i] += got
				totalGrid += got
				headroom -= got
				st.res.EnergyIntoStorage += got.Energy(cfg.Tick)
			} else {
				r.battery.Idle(cfg.Tick)
			}
		}
		if act.MicroCharge > 0 && r.micro != nil && headroom > 0 {
			got := r.micro.Recharge(units.Min(act.MicroCharge, headroom), cfg.Tick)
			st.draws[i] += got
			totalGrid += got
			headroom -= got
			st.res.EnergyIntoStorage += got.Energy(cfg.Tick)
		}
	}

	copy(st.lastDraws, st.draws)
	st.res.EnergyFromGrid += totalGrid.Energy(cfg.Tick)

	// 6. Step breakers and count overload events. The rack's overload
	// protection threshold follows its assigned soft limit, while
	// effective attacks are counted against the pre-determined default
	// limit (the paper's fixed "x% overshoot" line).
	for i, r := range st.racks {
		r.breaker.Rated = st.limits[i] * units.Watts(1+cfg.OvershootTolerance)
		over := st.draws[i] > r.budget*units.Watts(1+cfg.OvershootTolerance)
		if over && !r.overLast {
			st.res.EffectiveAttacks++
		}
		r.overLast = over
		wasTripped := r.breaker.Tripped()
		if r.breaker.Step(st.draws[i], cfg.Tick) && !wasTripped {
			if !st.res.Tripped {
				st.res.Tripped = true
				st.res.SurvivalTime = now + cfg.Tick
				st.res.FirstTripRack = i
			}
		}
	}
	wasTripped := st.pduBreaker.Tripped()
	if st.pduBreaker.Step(totalGrid, cfg.Tick) && !wasTripped && !st.res.Tripped {
		st.res.Tripped = true
		st.res.SurvivalTime = now + cfg.Tick
		st.res.FirstTripRack = -1
	}
	if st.pduBreaker.Tripped() && cfg.RestoreAfter > 0 && !cfg.StopOnTrip {
		st.pduDown += cfg.Tick
		if st.pduDown >= cfg.RestoreAfter {
			st.pduBreaker.Reset()
			st.pduDown = 0
		}
	}

	// 7. Record.
	if st.rec != nil && st.ticks%st.recEvery == 0 {
		st.rec.TotalGrid.Append(float64(totalGrid))
		for i, r := range st.racks {
			st.rec.RackSOC[i].Append(r.battery.SOC())
			st.rec.RackDraw[i].Append(float64(st.draws[i]))
			if r.micro != nil {
				st.rec.MicroSOC[i].Append(r.micro.SOC())
			}
		}
		lvl := core.Level(0)
		if st.hasLevel {
			lvl = st.levelScheme.Level()
		}
		st.rec.Levels = append(st.rec.Levels, lvl)
		st.rec.ShedRatio.Append(float64(shedCount) / float64(st.totalServers))
		st.rec.AttackUtil.Append(st.lastAttackU)
	}

	st.lastTotalGrid = totalGrid
	st.lastShedCount = shedCount
	st.lastShedWatts = shedWatts

	if st.res.Tripped && cfg.StopOnTrip {
		st.stopped = true
	}
	st.now += cfg.Tick
	return nil
}

// Result finalizes the derived metrics over the ticks advanced so far
// and returns the (live) result. It may be called repeatedly — online
// drivers read it mid-run — and after the final tick it returns exactly
// what Run would have.
func (st *Stepper) Result() *Result {
	if st.demandedWork > 0 {
		st.res.Throughput = st.deliveredWork / st.demandedWork
	} else {
		st.res.Throughput = 1
	}
	if st.ticks > 0 {
		st.res.MeanShedRatio = st.shedSum / float64(st.ticks)
	} else {
		st.res.MeanShedRatio = 0
	}
	st.res.Recording = st.rec
	return st.res
}

// TickStats is a per-tick observability snapshot for online drivers —
// the gauges padd exports. Reading it costs one pass over the racks and
// nothing on the tick path itself.
type TickStats struct {
	// Now is the offset of the next tick (i.e. ticks advanced × tick).
	Now time.Duration
	// Ticks counts advanced intervals.
	Ticks int
	// TotalGrid is the cluster feed draw on the last tick.
	TotalGrid units.Watts
	// ShedServers is how many servers were held asleep on the last tick.
	ShedServers int
	// ShedWatts is the demand power displaced by shedding on the last
	// tick (demanded server power minus sleep draw, summed over shed
	// servers).
	ShedWatts units.Watts
	// AttackUtil is the virus utilization commanded on the last tick
	// (always 0 on the online path).
	AttackUtil float64
	// Level is the scheme's security level, or 0 when not reported.
	Level core.Level
	// Tripped reports whether any breaker has tripped so far.
	Tripped bool
	// MeanSOC and MinSOC summarize the rack batteries' state of charge.
	MeanSOC, MinSOC float64
	// MeanMicroSOC is the mean μDEB SOC, or -1 without μDEB hardware.
	MeanMicroSOC float64
	// BreakerMargin is the smallest rated-minus-draw margin across the
	// untripped feeds (rack feeds and the cluster PDU), the distance to
	// the nearest overload protection limit.
	BreakerMargin units.Watts
}

// Stats summarizes the stepper's state after the last advanced tick.
func (st *Stepper) Stats() TickStats {
	ts := TickStats{
		Now:          st.now,
		Ticks:        st.ticks,
		TotalGrid:    st.lastTotalGrid,
		ShedServers:  st.lastShedCount,
		ShedWatts:    st.lastShedWatts,
		AttackUtil:   st.lastAttackU,
		Tripped:      st.res.Tripped,
		MinSOC:       1,
		MeanMicroSOC: -1,
	}
	if st.hasLevel {
		ts.Level = st.levelScheme.Level()
	}
	margin := st.pduBreaker.Rated - st.lastTotalGrid
	marginSet := !st.pduBreaker.Tripped()
	var micro float64
	microCount := 0
	for i, r := range st.racks {
		soc := r.battery.SOC()
		ts.MeanSOC += soc
		if soc < ts.MinSOC {
			ts.MinSOC = soc
		}
		if r.micro != nil {
			micro += r.micro.SOC()
			microCount++
		}
		if !r.breaker.Tripped() {
			if m := r.breaker.Rated - st.draws[i]; !marginSet || m < margin {
				margin = m
				marginSet = true
			}
		}
	}
	if len(st.racks) > 0 {
		ts.MeanSOC /= float64(len(st.racks))
	} else {
		ts.MinSOC = 0
	}
	if microCount > 0 {
		ts.MeanMicroSOC = micro / float64(microCount)
	}
	if marginSet {
		ts.BreakerMargin = margin
	}
	return ts
}
