package sim_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

// workersConfig is a cluster wide enough that worker striping is
// non-trivial (8 racks across up to 8 workers), with recording on,
// μDEBs deployed and an attack in flight so every engine path the
// kernels touch is exercised.
func workersConfig() sim.Config {
	const racks, spr = 8, 4
	horizon := 10 * time.Second
	bg := make([]*stats.Series, racks*spr)
	rng := stats.NewRNG(97)
	for i := range bg {
		r := rng.Split(uint64(i))
		s := stats.NewSeries(time.Second)
		for k := 0; k <= int(horizon/time.Second)+1; k++ {
			s.Append(0.35 + 0.4*r.Float64())
		}
		bg[i] = s
	}
	return sim.Config{
		Key:             "stepper/workers",
		Racks:           racks,
		ServersPerRack:  spr,
		Tick:            100 * time.Millisecond,
		Duration:        horizon,
		Background:      bg,
		Record:          true,
		MicroDEBFactory: schemes.MicroDEBFactory(0.01),
		Attack: &sim.AttackSpec{
			Servers: []int{0, 1, 9, 17},
			Attack: virus.MustNew(virus.Config{
				Profile:         virus.CPUIntensive,
				PrepDuration:    time.Second,
				MaxPhaseI:       3 * time.Second,
				SpikeWidth:      time.Second,
				SpikesPerMinute: 15,
				Seed:            9,
			}),
		},
	}
}

// TestWorkersBitIdentical pins the parallel path's core guarantee: for
// every scheme, runs with Workers ∈ {0, 1, 4, 8} produce deeply equal
// Results — recordings, energy accounting and all. The parallel kernels
// only ever write rack-local slots and every cross-rack accumulation
// replays serially in rack order, so worker count must be invisible in
// the floats, not merely close. Run under -race in CI, this doubles as
// the data-race check on the pool's barrier.
func TestWorkersBitIdentical(t *testing.T) {
	for name, mk := range stepperMakers() {
		t.Run(name, func(t *testing.T) {
			cfg := workersConfig()
			base, err := sim.Run(cfg, mk())
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 8} {
				cfg := workersConfig()
				cfg.Workers = workers
				got, err := sim.Run(cfg, mk())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("%s: Workers=%d diverged from serial run", name, workers)
				}
			}
		})
	}
}

// TestWorkersManualStepping drives a parallel stepper through the split
// ComputeDemand/Advance API (the online daemon's path) and checks it
// matches the serial packaged loop, then verifies Close is safe to call
// repeatedly and that a closed-but-finished stepper still serves its
// Result.
func TestWorkersManualStepping(t *testing.T) {
	cfg := workersConfig()
	serial, err := sim.Run(cfg, stepperMakers()["PAD"]())
	if err != nil {
		t.Fatal(err)
	}

	cfg = workersConfig()
	cfg.Workers = 4
	st, err := sim.NewStepper(cfg, stepperMakers()["PAD"]())
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		if err := st.Advance(st.ComputeDemand()); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	st.Close() // idempotent
	if !reflect.DeepEqual(serial, st.Result()) {
		t.Fatal("parallel ComputeDemand/Advance loop diverged from serial Run")
	}
}

// TestWorkersValidation covers the config plumbing: negative counts are
// rejected, and counts beyond the rack count are clamped rather than
// spinning useless goroutines.
func TestWorkersValidation(t *testing.T) {
	cfg := workersConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted negative Workers")
	}
	if _, err := sim.NewStepper(cfg, stepperMakers()["PAD"]()); err == nil {
		t.Fatal("NewStepper accepted negative Workers")
	}

	cfg = workersConfig()
	cfg.Workers = 64 // > racks: clamped internally, must still be exact
	serial, err := sim.Run(workersConfig(), stepperMakers()["Conv"]())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(cfg, stepperMakers()["Conv"]())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, got) {
		t.Fatal("Workers > Racks diverged from serial run")
	}
}
