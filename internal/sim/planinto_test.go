package sim_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

// planOnly hides a scheme's PlanInto so the engine takes the legacy
// allocate-per-tick Plan path.
type planOnly struct{ inner sim.Scheme }

func (p planOnly) Name() string                           { return p.inner.Name() }
func (p planOnly) Plan(view sim.ClusterView) []sim.Action { return p.inner.Plan(view) }

// planOnlyWithLevel keeps the security level visible (PAD), so the
// recorded Levels series is identical on both paths.
type planOnlyWithLevel struct {
	planOnly
	lr sim.LevelReporter
}

func (p planOnlyWithLevel) Level() core.Level { return p.lr.Level() }

func hidePlanInto(s sim.Scheme) sim.Scheme {
	if lr, ok := s.(sim.LevelReporter); ok {
		return planOnlyWithLevel{planOnly{s}, lr}
	}
	return planOnly{s}
}

func planIntoConfig() sim.Config {
	const racks, spr = 3, 5
	horizon := 12 * time.Second
	bg := make([]*stats.Series, racks*spr)
	rng := stats.NewRNG(23)
	for i := range bg {
		r := rng.Split(uint64(i))
		s := stats.NewSeries(time.Second)
		for k := 0; k <= int(horizon/time.Second)+1; k++ {
			s.Append(0.35 + 0.4*r.Float64())
		}
		bg[i] = s
	}
	return sim.Config{
		Key:            "planinto/equivalence",
		Racks:          racks,
		ServersPerRack: spr,
		Tick:           100 * time.Millisecond,
		Duration:       horizon,
		Background:     bg,
		Record:         true,
		Attack: &sim.AttackSpec{
			Servers: []int{0, 1, 5},
			Attack: virus.MustNew(virus.Config{
				Profile:         virus.CPUIntensive,
				PrepDuration:    time.Second,
				MaxPhaseI:       3 * time.Second,
				SpikeWidth:      time.Second,
				SpikesPerMinute: 15,
				Seed:            9,
			}),
		},
	}
}

// TestPlanIntoMatchesPlan is the ScratchPlanner contract check: for
// every scheme, a run through the zero-allocation PlanInto path must
// produce a Result deeply equal — recordings included — to a run where
// the engine is forced onto the legacy Plan path. Schemes implement
// Plan as a PlanInto wrapper, so any divergence means a scratch buffer
// leaked state between ticks.
func TestPlanIntoMatchesPlan(t *testing.T) {
	makers := map[string]func() sim.Scheme{
		"Conv": func() sim.Scheme { return schemes.NewConv(schemes.Options{}) },
		"PS":   func() sim.Scheme { return schemes.NewPS(schemes.Options{}) },
		"PSPC": func() sim.Scheme { return schemes.NewPSPC(schemes.Options{}) },
		"uDEB": func() sim.Scheme { return schemes.NewUDEB(schemes.Options{}) },
		"vDEB": func() sim.Scheme { return schemes.NewVDEB(schemes.Options{}) },
		"PAD":  func() sim.Scheme { return schemes.NewPAD(schemes.Options{}) },
	}
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			if _, ok := mk().(sim.ScratchPlanner); !ok {
				t.Fatalf("%s does not implement sim.ScratchPlanner", name)
			}
			fast, err := sim.Run(planIntoConfig(), mk())
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := sim.Run(planIntoConfig(), hidePlanInto(mk()))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fast, legacy) {
				t.Fatalf("%s: PlanInto path and Plan path produced different Results", name)
			}
		})
	}
}
