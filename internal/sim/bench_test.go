package sim_test

// Engine microbenchmarks: one sim.Run per op over a fixed 8×10 cluster
// and a 60 s horizon at the default 100 ms tick (600 engine ticks per
// op). Allocations are the headline number — the per-tick loop is meant
// to be allocation-free in steady state, so allocs/op should stay flat
// as the horizon grows instead of scaling with tick count. Baselines
// (before/after the zero-allocation rework) are checked in as
// BENCH_engine.json at the repo root; refresh them with
//
//	go test ./internal/sim -run '^$' -bench BenchmarkSimRun -benchmem
//
// The benchmarks live in package sim_test so they can drive the real
// schemes (internal/schemes imports internal/sim).

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

const (
	benchRacks = 8
	benchSPR   = 10
)

// benchBackground is built once and shared read-only across all runs of
// all benchmarks, exactly as a sweep shares its background series.
var benchBackground = func() []*stats.Series {
	rng := stats.NewRNG(7)
	const step = 10 * time.Second
	out := make([]*stats.Series, benchRacks*benchSPR)
	for i := range out {
		r := rng.Split(uint64(i))
		s := stats.NewSeries(step)
		wander := 0.0
		for k := 0; k < 10; k++ {
			wander = 0.9*wander + r.Norm(0, 0.02)
			u := 0.55 + wander
			if u < 0.05 {
				u = 0.05
			}
			if u > 0.98 {
				u = 0.98
			}
			s.Append(u)
		}
		out[i] = s
	}
	return out
}()

// benchConfig is the shared scenario: mid-load background, breakers
// observing but never tripping, so every op simulates the full horizon.
func benchConfig(attack, record bool) sim.Config {
	cfg := sim.Config{
		Racks:          benchRacks,
		ServersPerRack: benchSPR,
		Duration:       time.Minute,
		Background:     benchBackground,
		DisableTrips:   true,
	}
	if attack {
		cfg.Attack = &sim.AttackSpec{
			Servers: []int{0, 1, 2, 3},
			Attack: virus.MustNew(virus.Config{
				Profile:         virus.CPUIntensive,
				PrepDuration:    2 * time.Second,
				MaxPhaseI:       10 * time.Second,
				SpikeWidth:      time.Second,
				SpikesPerMinute: 6,
				Seed:            3,
			}),
		}
	}
	if record {
		cfg.Record = true
		cfg.RecordStep = time.Second
	}
	return cfg
}

func benchRun(b *testing.B, mk func() sim.Scheme, attack, record bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// The attack controller and the scheme are stateful: rebuild both
		// per op, as every sweep job does.
		cfg := benchConfig(attack, record)
		if _, err := sim.Run(cfg, mk()); err != nil {
			b.Fatal(err)
		}
	}
}

func newConv() sim.Scheme { return schemes.NewConv(schemes.Options{}) }
func newPAD() sim.Scheme  { return schemes.NewPAD(schemes.Options{}) }

func BenchmarkSimRunConv(b *testing.B)       { benchRun(b, newConv, false, false) }
func BenchmarkSimRunConvAttack(b *testing.B) { benchRun(b, newConv, true, false) }
func BenchmarkSimRunPAD(b *testing.B)        { benchRun(b, newPAD, false, false) }
func BenchmarkSimRunPADAttack(b *testing.B)  { benchRun(b, newPAD, true, false) }
func BenchmarkSimRunPADRecord(b *testing.B)  { benchRun(b, newPAD, true, true) }

// BenchmarkStepperTick prices one engine tick in isolation — setup
// (battery sizing, scratch construction) is paid once outside the
// timer, so ns/op is the steady-state per-tick cost the SoA kernels
// are optimizing. The horizon is sized to b.N up front; ticks past it
// would error.
func BenchmarkStepperTick(b *testing.B) {
	cfg := benchConfig(false, false)
	cfg.Duration = time.Duration(b.N+1) * 100 * time.Millisecond
	st, err := sim.NewStepper(cfg, newPAD())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepperTickTraced is BenchmarkStepperTick with an event
// tracer attached — the marginal per-tick price of tracing. Events stay
// in the ring (no sinks), exactly as during a traced run's tick loop;
// steady-state ticks emit nothing (transition-style events fire on
// edges), so the delta over the untraced benchmark is the cost of the
// engine's trace-edge bookkeeping, and allocs/op must stay 0.
func BenchmarkStepperTickTraced(b *testing.B) {
	cfg := benchConfig(false, false)
	cfg.Duration = time.Duration(b.N+1) * 100 * time.Millisecond
	cfg.Trace = obs.NewTracer(0)
	st, err := sim.NewStepper(cfg, newPAD())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// Worker-count variants of the full-run benchmark: the per-tick kernels
// fan out across Config.Workers goroutines. On this 8-rack cluster the
// kernels are small relative to the two barrier handoffs per tick, so
// these mostly price the synchronization floor — the parallel path is
// documented as worthwhile only for much larger clusters.
func benchRunWorkers(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(false, false)
		cfg.Workers = workers
		if _, err := sim.Run(cfg, newPAD()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimRunPADWorkers2(b *testing.B) { benchRunWorkers(b, 2) }
func BenchmarkSimRunPADWorkers4(b *testing.B) { benchRunWorkers(b, 4) }

// quietConfig is the sweep-scale fast case the quiescent skip path is
// built for: a long idle horizon — no background trace, no attack — that
// the event-driven engine should cross in a handful of analytic spans.
func quietConfig() sim.Config {
	return sim.Config{
		Racks:          benchRacks,
		ServersPerRack: benchSPR,
		Duration:       10 * time.Minute,
		DisableTrips:   true,
	}
}

// BenchmarkSimRunQuiet is the per-tick baseline over the quiet horizon:
// 6000 engine ticks per op, none of which do anything. Its skip twin
// below must beat it by well over the 5× floor BENCH_engine.json gates.
func BenchmarkSimRunQuiet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(quietConfig(), newPAD()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRunQuietSkip is the same quiet run with SkipQuiescent on:
// after the warm-up ticks the whole horizon collapses into analytic
// spans, so ns/op prices setup plus a few span kernels instead of 6000
// live ticks.
func BenchmarkSimRunQuietSkip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := quietConfig()
		cfg.SkipQuiescent = true
		if _, err := sim.Run(cfg, newPAD()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRunSkipPAD prices the detector's rejection overhead: the
// standard wobbly-background scenario never quiesces (the trace moves
// every 10 s knot and the interpolation in between is live), so every
// tick pays the cheapest-first predicate chain and then steps normally.
// Compare against BenchmarkSimRunPAD — the delta is the cost of leaving
// the knob on for runs that cannot use it.
func BenchmarkSimRunSkipPAD(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(false, false)
		cfg.SkipQuiescent = true
		if _, err := sim.Run(cfg, newPAD()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepperSkipSpan prices the analytic span kernel per elided
// tick: a quiet horizon sized to b.N with spans capped at 64 ticks, so
// every Step call runs the full detector and then the kernel. Setup is
// outside the timer; ns/op is the amortized per-tick cost of skipping
// and allocs/op must be 0 — the kernel appends only into recording
// series pre-capped for the horizon.
func BenchmarkStepperSkipSpan(b *testing.B) {
	cfg := quietConfig()
	cfg.Duration = time.Duration(b.N+1) * 100 * time.Millisecond
	cfg.SkipQuiescent = true
	cfg.SkipMaxSpan = 64
	st, err := sim.NewStepper(cfg, newPAD())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for {
		ok, err := st.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
	}
}
