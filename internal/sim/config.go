// Package sim is the trace-driven data-center simulator the evaluation
// runs on: a cluster of battery-backed racks behind an oversubscribed
// PDU, stepped at a configurable tick. Background load comes from a
// workload trace; an optional two-phase power virus rides on compromised
// servers; a pluggable power-management scheme decides battery usage,
// DVFS capping, charging and shedding each tick. The engine records
// survival time, effective-attack counts, throughput and battery maps —
// the quantities the paper's figures report.
//
// Concurrency contract: a single run (one Run call) is strictly
// single-goroutine — the engine, the scheme, the attack controller and
// every battery store it steps are confined to the calling goroutine.
// Independent runs are safe to execute concurrently (internal/runner
// does exactly that) provided they share no mutable state: each run
// must get its own Scheme, its own AttackSpec/virus.Attack and its own
// stores from the factories. Config.Background series are the one
// sanctioned shared input; the engine only ever reads them.
package sim

import (
	"fmt"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/powersim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/virus"
)

// RackView is the per-rack state a scheme observes each tick.
type RackView struct {
	// Demand is the rack's electrical demand this tick at full frequency
	// with no shedding applied.
	Demand units.Watts
	// Budget is the rack's utility power budget (λᵢ·Pr).
	Budget units.Watts
	// BatterySOC is the rack battery's state of charge.
	BatterySOC float64
	// BatteryMax is the discharge power currently available from the rack
	// battery (0 when LVD-disconnected).
	BatteryMax units.Watts
	// BatteryMaxCharge is the battery's rated charge power.
	BatteryMaxCharge units.Watts
	// MicroSOC is the μDEB bank SOC, or -1 when the rack has none.
	MicroSOC float64
	// LastDraw is the rack's actual feed draw on the previous tick (after
	// capping, shedding, battery shaving and charging) — what an iPDU's
	// outlet meter reports. Zero on the first tick.
	LastDraw units.Watts
}

// ClusterView is the global state a scheme observes each tick.
type ClusterView struct {
	// Time is the simulation offset.
	Time time.Duration
	// Tick is the step the engine advances per Plan call; schemes use it
	// to model software reaction latency in real-time units.
	Tick time.Duration
	// TotalDemand is the sum of rack demands.
	TotalDemand units.Watts
	// PDUBudget is the cluster feed budget.
	PDUBudget units.Watts
	// Racks are the per-rack views. The backing array is owned by the
	// engine and reused on every tick: it is valid only for the duration
	// of the Plan/PlanInto call and must never be retained or mutated by
	// the scheme. Copy any values needed across ticks.
	Racks []RackView
	// Trace is the engine's event tracer, or nil when tracing is
	// disabled. Schemes may Emit planning-decision events through it
	// (obs.Tracer is nil-safe); they must not retain it past the Plan
	// call or flush it — the run driver owns flushing.
	Trace *obs.Tracer
}

// Action is a scheme's decision for one rack this tick.
type Action struct {
	// Discharge is the requested battery discharge power; the engine
	// clamps it to what the battery can actually deliver.
	Discharge units.Watts
	// Freq is the DVFS frequency cap in (0, 1]; 0 means uncapped.
	Freq float64
	// ShedServers is how many of the rack's servers to hold in deep
	// sleep this tick.
	ShedServers int
	// Charge is the requested battery charge power; the engine grants it
	// only out of remaining PDU headroom.
	Charge units.Watts
	// MicroCharge is the requested μDEB recharge power, likewise granted
	// from headroom.
	MicroCharge units.Watts
	// Budget reassigns the rack's soft power limit for this tick (the
	// iPDU budget-enforcing capability vDEB builds on). 0 keeps the
	// default λᵢ·Pr. The engine scales assignments down proportionally
	// if their sum exceeds the PDU budget, and the rack's overload
	// protection threshold follows the assigned budget.
	Budget units.Watts
}

// Scheme is a power-management policy under evaluation (Table III).
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Plan returns one Action per rack for this tick.
	Plan(view ClusterView) []Action
}

// ScratchPlanner is the allocation-free planning path. A scheme that
// implements it is handed a scratch slice owned by the engine — len
// equal to len(view.Racks), zeroed before every call — and returns the
// tick's actions in it (or in any other slice of the right length; the
// engine consumes the returned slice before the next PlanInto call, so
// scheme-owned buffers may be reused too). Schemes implement Plan by
// wrapping PlanInto with a fresh slice, keeping both entry points in
// agreement. The engine prefers PlanInto whenever it is available.
type ScratchPlanner interface {
	Scheme
	// PlanInto returns one Action per rack for this tick, using scratch
	// to avoid a per-tick allocation.
	PlanInto(view ClusterView, scratch []Action) []Action
}

// AttackSpec places a two-phase power virus on specific servers.
type AttackSpec struct {
	// Servers are global server indices (rack*ServersPerRack + slot).
	Servers []int
	// Attack is the closed-loop controller; it emits one utilization
	// demand applied to every compromised server.
	Attack *virus.Attack
}

// Config describes one simulation run.
type Config struct {
	// Key is an opaque run identifier, echoed on the Result. Sweeps set
	// it to the run's runner key (e.g. "fig15/PAD/Dense/CPU") so any
	// single run can be named, reported and reproduced in isolation.
	Key string
	// Racks and ServersPerRack shape the cluster. 0 selects the paper's
	// 22 racks × 10 servers.
	Racks          int
	ServersPerRack int
	// Server is the per-server power model. Zero selects DL585G5.
	Server powersim.ServerModel
	// OversubscriptionRatio is PPDU/(n·Pr). 0 selects 0.75: with the
	// DL585's high idle power, mean background load then fits with thin
	// headroom while diurnal peaks and attacks must be shaved — the
	// aggressive-provisioning regime the paper studies.
	OversubscriptionRatio float64
	// OvershootTolerance is the breaker margin over budget: rack and PDU
	// breakers are rated budget×(1+tolerance). 0 selects 0.08.
	OvershootTolerance float64
	// Tick is the simulation step. 0 selects 100 ms.
	Tick time.Duration
	// Duration is the simulated time span. Required.
	Duration time.Duration
	// SleepPower is the draw of a deep-sleeping server. 0 selects 20 W.
	SleepPower units.Watts
	// Background holds per-server utilization series (len must be
	// Racks×ServersPerRack, or nil for an idle background). Series are
	// interpolated at tick resolution.
	Background []*stats.Series
	// Attack optionally injects a power virus. It is shorthand for a
	// single-entry Attacks list and may not be combined with Attacks.
	Attack *AttackSpec
	// Attacks optionally injects several independently controlled virus
	// groups — the coordinated multi-actor campaign model (many small
	// phase-locked actors spread across racks). Each spec owns its own
	// closed-loop controller and server set; every controller observes
	// capping on its own group's racks only, and a server may belong to
	// at most one group. Recording.AttackUtil and TickStats.AttackUtil
	// report the highest utilization any group commanded that tick.
	Attacks []AttackSpec
	// BatteryFactory builds each rack's battery store given the rack
	// nameplate power. Nil selects battery.NewRackCabinet.
	BatteryFactory func(rackNameplate units.Watts) battery.Store
	// MicroDEBFactory builds each rack's μDEB given the rack nameplate
	// and budget, or nil for racks without one.
	MicroDEBFactory func(rackNameplate, rackBudget units.Watts) *core.MicroDEB
	// StopOnTrip ends the run at the first breaker trip (survival-time
	// experiments). Otherwise breakers latch but the run continues with
	// the affected load marked down.
	StopOnTrip bool
	// RestoreAfter, when positive, models operator recovery: a tripped
	// feed is reset and its load restored after this much downtime.
	// Ignored under StopOnTrip. Zero means a trip is permanent for the
	// rest of the run.
	RestoreAfter time.Duration
	// DisableTrips turns breakers into pure observers: overload events
	// are still counted against the tolerated limits but nothing ever
	// trips. Used by the threat-characterization experiments (Figure 8,
	// Table I) that count attack effectiveness over a fixed window.
	DisableTrips bool
	// Record enables time-series recording at RecordStep resolution.
	Record bool
	// RecordStep is the recording resolution. 0 selects the tick.
	RecordStep time.Duration
	// SkipQuiescent enables the event-driven fast path: when the engine
	// can prove a tick is a bitwise no-op except for clocks and
	// accumulators (no attack group ramping or at a phase boundary, all
	// batteries at rest and full, breakers only cooling, background trace
	// frozen, scheme state at its fixed point), it advances a whole span
	// of such ticks in one analytic kernel call instead of stepping each.
	// Results, recordings and trace event streams are bit-identical to
	// per-tick stepping at any Workers count (TestSkipBitIdentity); the
	// flag only changes speed. Ignored for schemes that do not implement
	// QuiescentPlanner or battery factories whose stores do not implement
	// battery.Rester.
	SkipQuiescent bool
	// SkipMaxSpan caps how many ticks a single quiescent skip may elide
	// (0 = bounded only by the next event and the run horizon). Useful
	// for benchmarks and for drivers that want per-span observability at
	// a fixed grain.
	SkipMaxSpan int
	// Workers enables opt-in intra-run rack parallelism: the per-rack
	// view and apply kernels fan out over min(Workers, Racks) persistent
	// goroutines with a barrier per phase, while every cross-rack phase
	// (scheme planning, accumulation, charging, breakers, recording)
	// stays on the stepping goroutine in rack order — so results are
	// bit-identical to serial execution regardless of worker count.
	// 0 or 1 keeps the zero-overhead serial path. Worth enabling only
	// for large clusters; for sweeps of small runs prefer the run-level
	// parallelism of internal/runner. A Stepper built with Workers > 1
	// holds goroutines until Close (Run closes automatically).
	Workers int
	// Trace attaches an event tracer: the engine emits structured
	// events (level transitions, breaker heat/margin crossings and
	// trips, vDEB allocation refreshes, μDEB spike absorption, shed
	// changes, attack phase changes) into its preallocated ring. Nil
	// disables tracing at zero cost. Tracing never changes simulation
	// results, and the emitted stream is identical at any Workers count:
	// every event is emitted from a serial phase, in tick and rack
	// order, stamped with simulation time only. The engine never flushes
	// the tracer — the caller does, outside the tick loop.
	Trace *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Racks == 0 {
		c.Racks = 22
	}
	if c.ServersPerRack == 0 {
		c.ServersPerRack = 10
	}
	if c.Server == (powersim.ServerModel{}) {
		c.Server = powersim.DL585G5
	}
	if c.OversubscriptionRatio == 0 {
		c.OversubscriptionRatio = 0.75
	}
	if c.OvershootTolerance == 0 {
		c.OvershootTolerance = 0.08
	}
	if c.Tick == 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.SleepPower == 0 {
		c.SleepPower = 20
	}
	if c.BatteryFactory == nil {
		c.BatteryFactory = func(nameplate units.Watts) battery.Store {
			return battery.NewRackCabinet(nameplate)
		}
	}
	if c.RecordStep == 0 {
		c.RecordStep = c.Tick
	}
	return c
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Racks <= 0 || c.ServersPerRack <= 0 {
		return fmt.Errorf("sim: cluster shape %dx%d invalid", c.Racks, c.ServersPerRack)
	}
	if err := c.Server.Validate(); err != nil {
		return err
	}
	if c.OversubscriptionRatio <= 0 || c.OversubscriptionRatio > 1 {
		return fmt.Errorf("sim: oversubscription ratio %v out of (0,1]", c.OversubscriptionRatio)
	}
	if c.OvershootTolerance < 0 || c.OvershootTolerance > 1 {
		return fmt.Errorf("sim: overshoot tolerance %v out of [0,1]", c.OvershootTolerance)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sim: duration must be positive, got %v", c.Duration)
	}
	if c.Tick <= 0 || c.Tick > c.Duration {
		return fmt.Errorf("sim: tick %v invalid for duration %v", c.Tick, c.Duration)
	}
	if c.Background != nil && len(c.Background) != c.Racks*c.ServersPerRack {
		return fmt.Errorf("sim: background has %d series for %d servers",
			len(c.Background), c.Racks*c.ServersPerRack)
	}
	if c.Attack != nil && len(c.Attacks) > 0 {
		return fmt.Errorf("sim: set Attack or Attacks, not both")
	}
	group := make([]int, c.Racks*c.ServersPerRack)
	for i := range group {
		group[i] = -1
	}
	for g, spec := range c.attackList() {
		if spec.Attack == nil {
			return fmt.Errorf("sim: attack spec without controller")
		}
		for _, s := range spec.Servers {
			if s < 0 || s >= c.Racks*c.ServersPerRack {
				return fmt.Errorf("sim: compromised server %d out of range", s)
			}
			// Repeats within one group are idempotent; a server taking
			// orders from two controllers is a configuration error.
			if group[s] >= 0 && group[s] != g {
				return fmt.Errorf("sim: server %d compromised by attack groups %d and %d",
					s, group[s], g)
			}
			group[s] = g
		}
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: workers must be non-negative, got %d", c.Workers)
	}
	if c.SkipMaxSpan < 0 {
		return fmt.Errorf("sim: skip max span must be non-negative, got %d", c.SkipMaxSpan)
	}
	return nil
}

// attackList normalizes the two attack fields into one ordered group
// slice: Attack becomes a single-group list, Attacks is returned as is.
func (c Config) attackList() []AttackSpec {
	if c.Attack != nil {
		return []AttackSpec{*c.Attack}
	}
	return c.Attacks
}
