package sim

import (
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/units"
)

// LevelReporter is implemented by schemes that maintain a PAD security
// level; the recorder samples it when present.
type LevelReporter interface {
	Level() core.Level
}

// Result summarizes one simulation run.
type Result struct {
	// Key echoes Config.Key, identifying this run within a sweep.
	Key string
	// Scheme is the evaluated scheme's name.
	Scheme string
	// Tripped reports whether any breaker tripped.
	Tripped bool
	// SurvivalTime is the offset of the first breaker trip, or the full
	// run duration when nothing tripped. Survival is measured from the
	// run start, matching the paper's "beginning of the attack to the
	// first overload".
	SurvivalTime time.Duration
	// FirstTripRack is the rack whose feed tripped first, or -1 when the
	// cluster PDU tripped first or nothing tripped.
	FirstTripRack int
	// EffectiveAttacks counts rack-feed excursions above the tolerated
	// overload limit (rising edges), the paper's Figure 8 metric.
	EffectiveAttacks int
	// Throughput is delivered work over demanded work across the run.
	Throughput float64
	// MeanShedRatio is the average fraction of servers held asleep.
	MeanShedRatio float64
	// EnergyFromBatteries is the total energy drawn from rack batteries.
	EnergyFromBatteries units.Joules
	// MaxRackDischarge is the highest single-rack battery discharge power
	// granted at any tick — the aging-stress proxy Algorithm 1's PIdeal
	// bound exists to limit.
	MaxRackDischarge units.Watts
	// EnergyServed is the total electrical energy the servers consumed.
	EnergyServed units.Joules
	// EnergyFromGrid is the total energy drawn from the utility feed
	// (including storage recharge).
	EnergyFromGrid units.Joules
	// EnergyIntoStorage is the total charge energy accepted by batteries
	// and μDEB banks. Conservation holds exactly:
	// EnergyServed = EnergyFromGrid − EnergyIntoStorage
	//              + EnergyFromBatteries + EnergyFromMicro.
	EnergyIntoStorage units.Joules
	// EnergyFromMicro is the total energy the μDEBs shaved.
	EnergyFromMicro units.Joules
	// Recording holds time series when Config.Record was set.
	Recording *Recording
}

// Recording holds sampled time series from a run.
type Recording struct {
	// Step is the sampling resolution.
	Step time.Duration
	// TotalGrid is the cluster feed draw.
	TotalGrid *stats.Series
	// RackSOC has one battery SOC series per rack.
	RackSOC []*stats.Series
	// RackDraw has one feed-draw series per rack.
	RackDraw []*stats.Series
	// MicroSOC has one μDEB SOC series per rack, or nil when the run
	// deployed no μDEB (Config.MicroDEBFactory was nil).
	MicroSOC []*stats.Series
	// Levels samples the scheme's security level (0 when not reported).
	Levels []core.Level
	// ShedRatio samples the fraction of servers asleep.
	ShedRatio *stats.Series
	// AttackUtil samples the utilization the power virus commanded
	// (zero when no attack is configured).
	AttackUtil *stats.Series
}

// bgSampler samples the per-server background series without a division
// per server: series are grouped by sampling step and the interpolation
// coefficients are computed once per (step, tick), then reused across
// every series in the group. The arithmetic per sample is exactly
// stats.Series.Interp's, so the results are bit-identical.
type bgSampler struct {
	series  []*stats.Series
	stepIdx []int               // per-series index into steps
	steps   []time.Duration     // distinct sampling steps
	points  []stats.InterpPoint // per-step coefficients for the current tick
}

func newBGSampler(series []*stats.Series) bgSampler {
	b := bgSampler{series: series}
	if len(series) == 0 {
		return b
	}
	b.stepIdx = make([]int, len(series))
	for i, s := range series {
		found := -1
		for j, st := range b.steps {
			if st == s.Step {
				found = j
				break
			}
		}
		if found < 0 {
			b.steps = append(b.steps, s.Step)
			found = len(b.steps) - 1
		}
		b.stepIdx[i] = found
	}
	b.points = make([]stats.InterpPoint, len(b.steps))
	return b
}

// tick precomputes this offset's interpolation coefficients, one per
// distinct step.
func (b *bgSampler) tick(now time.Duration) {
	for i, st := range b.steps {
		b.points[i] = stats.InterpPointAt(st, now)
	}
}

// at returns series s interpolated at the offset passed to tick.
func (b *bgSampler) at(s int) float64 {
	return b.series[s].InterpAt(b.points[b.stepIdx[s]])
}

// Run executes one simulation and returns its result.
//
// Run is a loop over the single-tick Stepper: NewStepper does the
// setup, each Step advances one interval with trace-derived demand, and
// Result finalizes. Manual stepping through the same API is guaranteed
// to produce identical results (pinned by TestRunEqualsManualStepping).
//
// The per-tick loop is allocation-free in steady state: every buffer the
// engine needs (soft limits, draws, the scheme's view and action slices,
// the shed selector's scratch) is allocated once up front and reused.
// Schemes implementing ScratchPlanner extend that guarantee through the
// planning step; plain Plan schemes still work but allocate their own
// action slice per tick.
func Run(cfg Config, scheme Scheme) (*Result, error) {
	st, err := NewStepper(cfg, scheme)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	for {
		ok, err := st.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if cfg.Trace != nil {
		// Finalize the trace header with the realized run length so
		// analysis can account the final state's dwell time (a StopOnTrip
		// run ends short of the configured horizon).
		m := cfg.Trace.Meta()
		m.Ticks = int64(st.Ticks())
		cfg.Trace.SetMeta(m)
	}
	return st.Result(), nil
}

func newRecording(cfg Config) *Recording {
	// Sized for the full horizon so steady-state recording never grows a
	// slice; a StopOnTrip run simply leaves capacity unused.
	n := int(cfg.Duration/cfg.RecordStep) + 1
	rec := &Recording{
		Step:       cfg.RecordStep,
		TotalGrid:  stats.NewSeriesWithCap(cfg.RecordStep, n),
		ShedRatio:  stats.NewSeriesWithCap(cfg.RecordStep, n),
		AttackUtil: stats.NewSeriesWithCap(cfg.RecordStep, n),
		Levels:     make([]core.Level, 0, n),
	}
	for i := 0; i < cfg.Racks; i++ {
		rec.RackSOC = append(rec.RackSOC, stats.NewSeriesWithCap(cfg.RecordStep, n))
		rec.RackDraw = append(rec.RackDraw, stats.NewSeriesWithCap(cfg.RecordStep, n))
	}
	// MicroSOC stays nil without μDEB hardware, as the field documents.
	if cfg.MicroDEBFactory != nil {
		for i := 0; i < cfg.Racks; i++ {
			rec.MicroSOC = append(rec.MicroSOC, stats.NewSeriesWithCap(cfg.RecordStep, n))
		}
	}
	return rec
}

// topKSelector marks the k highest-demand server slots of a rack using a
// reusable size-k min-heap: O(n log k) per call, no allocations after
// construction. Ties break toward the lower index, matching the
// selection order of the original O(k·n) rescan. The selector holds only
// private heap scratch and writes marks into a caller-provided slice, so
// the engine keeps one selector per worker while the mark arrays live in
// the stepper's struct-of-arrays scratch.
type topKSelector struct {
	heap []int
}

func newTopKSelector(n int) *topKSelector {
	return &topKSelector{heap: make([]int, 0, n)}
}

// worse reports whether slot a ranks strictly below slot b in selection
// priority (lower demand, or equal demand at a higher index).
func worse(us []float64, a, b int) bool {
	if us[a] != us[b] {
		return us[a] < us[b]
	}
	return a > b
}

// markInto sets marked[i] true exactly at the k highest-demand indices
// of us, false elsewhere. len(marked) must equal len(us).
func (t *topKSelector) markInto(marked []bool, us []float64, k int) {
	for i := range marked {
		marked[i] = false
	}
	if k <= 0 {
		return
	}
	if k >= len(us) {
		for i := range marked {
			marked[i] = true
		}
		return
	}
	// Min-heap of the k best slots seen so far; the root is the weakest
	// keeper and is evicted by any stronger candidate.
	h := t.heap[:0]
	for i := range us {
		if len(h) < k {
			h = append(h, i)
			// Sift up.
			c := len(h) - 1
			for c > 0 {
				p := (c - 1) / 2
				if !worse(us, h[c], h[p]) {
					break
				}
				h[c], h[p] = h[p], h[c]
				c = p
			}
			continue
		}
		if worse(us, i, h[0]) {
			continue
		}
		h[0] = i
		// Sift down.
		p := 0
		for {
			l, r := 2*p+1, 2*p+2
			min := p
			if l < len(h) && worse(us, h[l], h[min]) {
				min = l
			}
			if r < len(h) && worse(us, h[r], h[min]) {
				min = r
			}
			if min == p {
				break
			}
			h[p], h[min] = h[min], h[p]
			p = min
		}
	}
	for _, i := range h {
		marked[i] = true
	}
	t.heap = h
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
