package sim

import (
	"fmt"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/powersim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/virus"
)

// LevelReporter is implemented by schemes that maintain a PAD security
// level; the recorder samples it when present.
type LevelReporter interface {
	Level() core.Level
}

// Result summarizes one simulation run.
type Result struct {
	// Key echoes Config.Key, identifying this run within a sweep.
	Key string
	// Scheme is the evaluated scheme's name.
	Scheme string
	// Tripped reports whether any breaker tripped.
	Tripped bool
	// SurvivalTime is the offset of the first breaker trip, or the full
	// run duration when nothing tripped. Survival is measured from the
	// run start, matching the paper's "beginning of the attack to the
	// first overload".
	SurvivalTime time.Duration
	// FirstTripRack is the rack whose feed tripped first, or -1 when the
	// cluster PDU tripped first or nothing tripped.
	FirstTripRack int
	// EffectiveAttacks counts rack-feed excursions above the tolerated
	// overload limit (rising edges), the paper's Figure 8 metric.
	EffectiveAttacks int
	// Throughput is delivered work over demanded work across the run.
	Throughput float64
	// MeanShedRatio is the average fraction of servers held asleep.
	MeanShedRatio float64
	// EnergyFromBatteries is the total energy drawn from rack batteries.
	EnergyFromBatteries units.Joules
	// MaxRackDischarge is the highest single-rack battery discharge power
	// granted at any tick — the aging-stress proxy Algorithm 1's PIdeal
	// bound exists to limit.
	MaxRackDischarge units.Watts
	// EnergyServed is the total electrical energy the servers consumed.
	EnergyServed units.Joules
	// EnergyFromGrid is the total energy drawn from the utility feed
	// (including storage recharge).
	EnergyFromGrid units.Joules
	// EnergyIntoStorage is the total charge energy accepted by batteries
	// and μDEB banks. Conservation holds exactly:
	// EnergyServed = EnergyFromGrid − EnergyIntoStorage
	//              + EnergyFromBatteries + EnergyFromMicro.
	EnergyIntoStorage units.Joules
	// EnergyFromMicro is the total energy the μDEBs shaved.
	EnergyFromMicro units.Joules
	// Recording holds time series when Config.Record was set.
	Recording *Recording
}

// Recording holds sampled time series from a run.
type Recording struct {
	// Step is the sampling resolution.
	Step time.Duration
	// TotalGrid is the cluster feed draw.
	TotalGrid *stats.Series
	// RackSOC has one battery SOC series per rack.
	RackSOC []*stats.Series
	// RackDraw has one feed-draw series per rack.
	RackDraw []*stats.Series
	// MicroSOC has one μDEB SOC series per rack, or nil when the run
	// deployed no μDEB (Config.MicroDEBFactory was nil).
	MicroSOC []*stats.Series
	// Levels samples the scheme's security level (0 when not reported).
	Levels []core.Level
	// ShedRatio samples the fraction of servers asleep.
	ShedRatio *stats.Series
	// AttackUtil samples the utilization the power virus commanded
	// (zero when no attack is configured).
	AttackUtil *stats.Series
}

// rack is the engine's per-rack state.
type rack struct {
	battery  battery.Store
	micro    *core.MicroDEB
	breaker  *powersim.Breaker
	budget   units.Watts
	overLast bool          // feed was above the tolerated limit last tick
	downFor  time.Duration // accumulated downtime since the trip
}

// bgSampler samples the per-server background series without a division
// per server: series are grouped by sampling step and the interpolation
// coefficients are computed once per (step, tick), then reused across
// every series in the group. The arithmetic per sample is exactly
// stats.Series.Interp's, so the results are bit-identical.
type bgSampler struct {
	series  []*stats.Series
	stepIdx []int               // per-series index into steps
	steps   []time.Duration     // distinct sampling steps
	points  []stats.InterpPoint // per-step coefficients for the current tick
}

func newBGSampler(series []*stats.Series) bgSampler {
	b := bgSampler{series: series}
	if len(series) == 0 {
		return b
	}
	b.stepIdx = make([]int, len(series))
	for i, s := range series {
		found := -1
		for j, st := range b.steps {
			if st == s.Step {
				found = j
				break
			}
		}
		if found < 0 {
			b.steps = append(b.steps, s.Step)
			found = len(b.steps) - 1
		}
		b.stepIdx[i] = found
	}
	b.points = make([]stats.InterpPoint, len(b.steps))
	return b
}

// tick precomputes this offset's interpolation coefficients, one per
// distinct step.
func (b *bgSampler) tick(now time.Duration) {
	for i, st := range b.steps {
		b.points[i] = stats.InterpPointAt(st, now)
	}
}

// at returns series s interpolated at the offset passed to tick.
func (b *bgSampler) at(s int) float64 {
	return b.series[s].InterpAt(b.points[b.stepIdx[s]])
}

// Run executes one simulation and returns its result.
//
// The per-tick loop is allocation-free in steady state: every buffer the
// engine needs (soft limits, draws, the scheme's view and action slices,
// the shed selector's scratch) is allocated once up front and reused.
// Schemes implementing ScratchPlanner extend that guarantee through the
// planning step; plain Plan schemes still work but allocate their own
// action slice per tick.
func Run(cfg Config, scheme Scheme) (*Result, error) {
	if scheme == nil {
		return nil, fmt.Errorf("sim: scheme is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	nameplate := cfg.Server.Peak * units.Watts(cfg.ServersPerRack)
	plan := powersim.OversubscriptionPlan{
		RackNameplate: nameplate,
		Racks:         cfg.Racks,
		Ratio:         cfg.OversubscriptionRatio,
	}
	pduBudget := plan.PDUBudget()
	newBreaker := func(rated units.Watts) *powersim.Breaker {
		b := powersim.NewBreaker(rated)
		if cfg.DisableTrips {
			b.TripHeat = 1e18
			b.InstantMultiple = 1e18
		}
		return b
	}
	pduBreaker := newBreaker(pduBudget * units.Watts(1+cfg.OvershootTolerance))

	racks := make([]*rack, cfg.Racks)
	for i := range racks {
		budget := plan.RackBudget(i)
		r := &rack{
			battery: cfg.BatteryFactory(nameplate),
			breaker: newBreaker(budget * units.Watts(1+cfg.OvershootTolerance)),
			budget:  budget,
		}
		if cfg.MicroDEBFactory != nil {
			r.micro = cfg.MicroDEBFactory(nameplate, budget)
		}
		racks[i] = r
	}

	totalServers := cfg.Racks * cfg.ServersPerRack

	// Compromised-server index: a per-server flag slice for the demand
	// loop and the distinct compromised racks for the attacker's
	// capped-observation scan — no map lookups on the hot path.
	var compromisedFlag []bool
	var compromisedRacks []int
	if cfg.Attack != nil {
		compromisedFlag = make([]bool, totalServers)
		rackSeen := make([]bool, cfg.Racks)
		for _, s := range cfg.Attack.Servers {
			compromisedFlag[s] = true
			if r := s / cfg.ServersPerRack; !rackSeen[r] {
				rackSeen[r] = true
				compromisedRacks = append(compromisedRacks, r)
			}
		}
	}
	res := &Result{
		Key:           cfg.Key,
		Scheme:        scheme.Name(),
		SurvivalTime:  cfg.Duration,
		FirstTripRack: -1,
	}
	var rec *Recording
	recEvery := 1
	if cfg.Record {
		rec = newRecording(cfg)
		recEvery = int(cfg.RecordStep / cfg.Tick)
		if recEvery < 1 {
			recEvery = 1
		}
	}

	lastFreq := make([]float64, cfg.Racks)
	for i := range lastFreq {
		lastFreq[i] = 1
	}

	// Scratch buffers owned by this run and reused every tick. The views
	// slice doubles as ClusterView.Racks: the scheme sees it during Plan
	// only and must not retain it (see the ClusterView contract).
	views := make([]RackView, cfg.Racks)
	demandU := make([]float64, totalServers)
	lastDraws := make([]units.Watts, cfg.Racks)
	limits := make([]units.Watts, cfg.Racks)
	draws := make([]units.Watts, cfg.Racks)
	actsBuf := make([]Action, cfg.Racks)
	topK := newTopKSelector(cfg.ServersPerRack)
	bg := newBGSampler(cfg.Background)
	scratchScheme, hasScratch := scheme.(ScratchPlanner)
	levelScheme, hasLevel := scheme.(LevelReporter)

	var demandedWork, deliveredWork float64
	var shedSum float64
	var pduDown time.Duration
	ticks := 0

	for now := time.Duration(0); now < cfg.Duration; now += cfg.Tick {
		ticks++

		// 1. Attacker acts on what it observed last tick.
		attackU := 0.0
		if cfg.Attack != nil {
			capped := false
			for _, r := range compromisedRacks {
				if lastFreq[r] < 0.999 {
					capped = true
					break
				}
			}
			attackU = cfg.Attack.Attack.Step(cfg.Tick, virus.Observation{Capped: capped})
		}

		// 2. Per-server utilization demand and per-rack electrical demand
		// at full frequency.
		if bg.series != nil {
			bg.tick(now)
			for s := 0; s < totalServers; s++ {
				u := bg.at(s)
				if compromisedFlag != nil && compromisedFlag[s] && attackU > u {
					u = attackU
				}
				demandU[s] = u
			}
		} else {
			for s := 0; s < totalServers; s++ {
				u := 0.0
				if compromisedFlag != nil && compromisedFlag[s] && attackU > u {
					u = attackU
				}
				demandU[s] = u
			}
		}
		for i, r := range racks {
			var demand units.Watts
			for s := i * cfg.ServersPerRack; s < (i+1)*cfg.ServersPerRack; s++ {
				demand += cfg.Server.Power(demandU[s], 1)
			}
			views[i] = RackView{
				Demand:           demand,
				Budget:           r.budget,
				BatterySOC:       r.battery.SOC(),
				BatteryMax:       r.battery.Deliverable(cfg.Tick),
				BatteryMaxCharge: r.battery.MaxCharge(),
				MicroSOC:         -1,
			}
			if r.micro != nil {
				views[i].MicroSOC = r.micro.SOC()
			}
			views[i].LastDraw = lastDraws[i]
		}
		var totalDemand units.Watts
		for i := range views {
			totalDemand += views[i].Demand
		}

		// 3. Scheme decides. ScratchPlanner schemes fill the engine's
		// reusable action buffer; plain schemes allocate their own.
		view := ClusterView{
			Time:        now,
			Tick:        cfg.Tick,
			TotalDemand: totalDemand,
			PDUBudget:   pduBudget,
			Racks:       views,
		}
		var actions []Action
		if hasScratch {
			for i := range actsBuf {
				actsBuf[i] = Action{}
			}
			actions = scratchScheme.PlanInto(view, actsBuf)
		} else {
			actions = scheme.Plan(view)
		}
		if len(actions) != cfg.Racks {
			return nil, fmt.Errorf("sim: scheme %s returned %d actions for %d racks",
				scheme.Name(), len(actions), cfg.Racks)
		}

		// 4a. Resolve soft-limit reassignments: default budgets where the
		// scheme passed 0, proportional scale-down if the total exceeds
		// the PDU budget (eq. 2 must keep holding).
		var budgetSum units.Watts
		for i, r := range racks {
			limits[i] = r.budget
			if actions[i].Budget > 0 {
				limits[i] = actions[i].Budget
			}
			budgetSum += limits[i]
		}
		if budgetSum > pduBudget {
			scale := float64(pduBudget) / float64(budgetSum)
			for i := range limits {
				limits[i] = units.Watts(float64(limits[i]) * scale)
			}
		}

		// 4b. Apply actions rack by rack.
		var totalGrid units.Watts
		for i := range draws {
			draws[i] = 0
		}
		shedCount := 0
		for i, r := range racks {
			act := actions[i]
			freq := act.Freq
			if freq == 0 {
				freq = 1
			}
			if freq < 0.1 {
				freq = 0.1
			}
			if freq > 1 {
				freq = 1
			}
			lastFreq[i] = freq
			shed := act.ShedServers
			if shed < 0 {
				shed = 0
			}
			if shed > cfg.ServersPerRack {
				shed = cfg.ServersPerRack
			}
			shedCount += shed

			// Shed the highest-demand servers first: that is where the
			// power (and any resident attacker) is.
			base := i * cfg.ServersPerRack
			order := topK.mark(demandU[base:base+cfg.ServersPerRack], shed)
			var power units.Watts
			for s := 0; s < cfg.ServersPerRack; s++ {
				u := demandU[base+s]
				demandedWork += u
				if order[s] {
					power += cfg.SleepPower
					continue
				}
				power += cfg.Server.Power(u, freq)
				deliveredWork += minf(u, freq)
			}

			// Rack breaker already tripped (non-StopOnTrip mode): the rack
			// is dark, delivers nothing further, draws nothing. With
			// RestoreAfter set, the operator eventually resets the feed.
			if r.breaker.Tripped() && cfg.RestoreAfter > 0 {
				r.downFor += cfg.Tick
				if r.downFor >= cfg.RestoreAfter {
					r.breaker.Reset()
					r.downFor = 0
				}
			}
			if r.breaker.Tripped() {
				// Undo this tick's delivered-work credit for the rack.
				for s := 0; s < cfg.ServersPerRack; s++ {
					if !order[s] {
						deliveredWork -= minf(demandU[base+s], freq)
					}
				}
				r.battery.Idle(cfg.Tick)
				continue
			}

			res.EnergyServed += power.Energy(cfg.Tick)

			// Battery discharge, then μDEB shaving on the remainder.
			grid := power
			if act.Discharge > 0 {
				got := r.battery.Discharge(units.Min(act.Discharge, power), cfg.Tick)
				res.EnergyFromBatteries += got.Energy(cfg.Tick)
				if got > res.MaxRackDischarge {
					res.MaxRackDischarge = got
				}
				grid -= got
			}
			var microBefore units.Joules
			if r.micro != nil {
				// The ORing conducts when the draw reaches the rack's
				// overload-protection limit — the μDEB shaves the
				// dangerous excursion, not routine above-budget draw
				// (which is the battery pool's job).
				r.micro.SetThreshold(limits[i] * units.Watts(1+cfg.OvershootTolerance))
				microBefore = r.micro.ShavedEnergy()
				grid = r.micro.Shave(grid, cfg.Tick)
				res.EnergyFromMicro += r.micro.ShavedEnergy() - microBefore
			}
			draws[i] = grid
			totalGrid += grid

			// Battery charging happens in pass 5 from global headroom; a
			// rack that neither charged nor discharged must still idle.
			if act.Discharge <= 0 && act.Charge <= 0 {
				r.battery.Idle(cfg.Tick)
			}
		}
		shedSum += float64(shedCount) / float64(totalServers)

		// 5. Grant charge requests from remaining PDU headroom. Every
		// battery gets exactly one state-advancing call per tick: racks
		// that discharged (or are dark) were stepped in pass 4; racks
		// whose charge request cannot be granted idle instead.
		headroom := pduBudget - totalGrid
		for i, r := range racks {
			act := actions[i]
			if r.breaker.Tripped() || act.Discharge > 0 {
				continue
			}
			if act.Charge > 0 {
				if headroom > 0 {
					got := r.battery.Charge(units.Min(act.Charge, headroom), cfg.Tick)
					draws[i] += got
					totalGrid += got
					headroom -= got
					res.EnergyIntoStorage += got.Energy(cfg.Tick)
				} else {
					r.battery.Idle(cfg.Tick)
				}
			}
			if act.MicroCharge > 0 && r.micro != nil && headroom > 0 {
				got := r.micro.Recharge(units.Min(act.MicroCharge, headroom), cfg.Tick)
				draws[i] += got
				totalGrid += got
				headroom -= got
				res.EnergyIntoStorage += got.Energy(cfg.Tick)
			}
		}

		copy(lastDraws, draws)
		res.EnergyFromGrid += totalGrid.Energy(cfg.Tick)

		// 6. Step breakers and count overload events. The rack's overload
		// protection threshold follows its assigned soft limit, while
		// effective attacks are counted against the pre-determined default
		// limit (the paper's fixed "x% overshoot" line).
		for i, r := range racks {
			r.breaker.Rated = limits[i] * units.Watts(1+cfg.OvershootTolerance)
			over := draws[i] > r.budget*units.Watts(1+cfg.OvershootTolerance)
			if over && !r.overLast {
				res.EffectiveAttacks++
			}
			r.overLast = over
			wasTripped := r.breaker.Tripped()
			if r.breaker.Step(draws[i], cfg.Tick) && !wasTripped {
				if !res.Tripped {
					res.Tripped = true
					res.SurvivalTime = now + cfg.Tick
					res.FirstTripRack = i
				}
			}
		}
		wasTripped := pduBreaker.Tripped()
		if pduBreaker.Step(totalGrid, cfg.Tick) && !wasTripped && !res.Tripped {
			res.Tripped = true
			res.SurvivalTime = now + cfg.Tick
			res.FirstTripRack = -1
		}
		if pduBreaker.Tripped() && cfg.RestoreAfter > 0 && !cfg.StopOnTrip {
			pduDown += cfg.Tick
			if pduDown >= cfg.RestoreAfter {
				pduBreaker.Reset()
				pduDown = 0
			}
		}

		// 7. Record.
		if rec != nil && ticks%recEvery == 0 {
			rec.TotalGrid.Append(float64(totalGrid))
			for i, r := range racks {
				rec.RackSOC[i].Append(r.battery.SOC())
				rec.RackDraw[i].Append(float64(draws[i]))
				if r.micro != nil {
					rec.MicroSOC[i].Append(r.micro.SOC())
				}
			}
			lvl := core.Level(0)
			if hasLevel {
				lvl = levelScheme.Level()
			}
			rec.Levels = append(rec.Levels, lvl)
			rec.ShedRatio.Append(float64(shedCount) / float64(totalServers))
			rec.AttackUtil.Append(attackU)
		}

		if res.Tripped && cfg.StopOnTrip {
			break
		}
	}

	if demandedWork > 0 {
		res.Throughput = deliveredWork / demandedWork
	} else {
		res.Throughput = 1
	}
	res.MeanShedRatio = shedSum / float64(ticks)
	res.Recording = rec
	return res, nil
}

func newRecording(cfg Config) *Recording {
	// Sized for the full horizon so steady-state recording never grows a
	// slice; a StopOnTrip run simply leaves capacity unused.
	n := int(cfg.Duration/cfg.RecordStep) + 1
	rec := &Recording{
		Step:       cfg.RecordStep,
		TotalGrid:  stats.NewSeriesWithCap(cfg.RecordStep, n),
		ShedRatio:  stats.NewSeriesWithCap(cfg.RecordStep, n),
		AttackUtil: stats.NewSeriesWithCap(cfg.RecordStep, n),
		Levels:     make([]core.Level, 0, n),
	}
	for i := 0; i < cfg.Racks; i++ {
		rec.RackSOC = append(rec.RackSOC, stats.NewSeriesWithCap(cfg.RecordStep, n))
		rec.RackDraw = append(rec.RackDraw, stats.NewSeriesWithCap(cfg.RecordStep, n))
	}
	// MicroSOC stays nil without μDEB hardware, as the field documents.
	if cfg.MicroDEBFactory != nil {
		for i := 0; i < cfg.Racks; i++ {
			rec.MicroSOC = append(rec.MicroSOC, stats.NewSeriesWithCap(cfg.RecordStep, n))
		}
	}
	return rec
}

// topKSelector marks the k highest-demand server slots of a rack using a
// reusable size-k min-heap: O(n log k) per call, no allocations after
// construction. Ties break toward the lower index, matching the
// selection order of the original O(k·n) rescan.
type topKSelector struct {
	marked []bool
	heap   []int
}

func newTopKSelector(n int) *topKSelector {
	return &topKSelector{marked: make([]bool, n), heap: make([]int, 0, n)}
}

// worse reports whether slot a ranks strictly below slot b in selection
// priority (lower demand, or equal demand at a higher index).
func worse(us []float64, a, b int) bool {
	if us[a] != us[b] {
		return us[a] < us[b]
	}
	return a > b
}

// mark returns a slice with true at the k highest-demand indices of us.
// The slice is owned by the selector and valid until the next call.
func (t *topKSelector) mark(us []float64, k int) []bool {
	marked := t.marked[:len(us)]
	for i := range marked {
		marked[i] = false
	}
	if k <= 0 {
		return marked
	}
	if k >= len(us) {
		for i := range marked {
			marked[i] = true
		}
		return marked
	}
	// Min-heap of the k best slots seen so far; the root is the weakest
	// keeper and is evicted by any stronger candidate.
	h := t.heap[:0]
	for i := range us {
		if len(h) < k {
			h = append(h, i)
			// Sift up.
			c := len(h) - 1
			for c > 0 {
				p := (c - 1) / 2
				if !worse(us, h[c], h[p]) {
					break
				}
				h[c], h[p] = h[p], h[c]
				c = p
			}
			continue
		}
		if worse(us, i, h[0]) {
			continue
		}
		h[0] = i
		// Sift down.
		p := 0
		for {
			l, r := 2*p+1, 2*p+2
			min := p
			if l < len(h) && worse(us, h[l], h[min]) {
				min = l
			}
			if r < len(h) && worse(us, h[r], h[min]) {
				min = r
			}
			if min == p {
				break
			}
			h[p], h[min] = h[min], h[p]
			p = min
		}
	}
	for _, i := range h {
		marked[i] = true
	}
	t.heap = h
	return marked
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
