package sim

import (
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/virus"
)

// flatBackground builds per-server utilization series pinned at u.
func flatBackground(racks, spr int, u float64) []*stats.Series {
	out := make([]*stats.Series, racks*spr)
	for i := range out {
		s := stats.NewSeries(time.Hour)
		s.Append(u)
		s.Append(u)
		out[i] = s
	}
	return out
}

// noopScheme draws straight from the grid: no batteries, no capping.
type noopScheme struct{}

func (noopScheme) Name() string { return "noop" }
func (noopScheme) Plan(v ClusterView) []Action {
	return make([]Action, len(v.Racks))
}

// shaveScheme is a minimal peak shaver used to exercise the engine.
type shaveScheme struct{}

func (shaveScheme) Name() string { return "shave" }
func (shaveScheme) Plan(v ClusterView) []Action {
	acts := make([]Action, len(v.Racks))
	for i, r := range v.Racks {
		if need := r.Demand - r.Budget; need > 0 {
			acts[i].Discharge = need
		} else {
			acts[i].Charge = r.Budget - r.Demand
		}
	}
	return acts
}

func smallConfig(d time.Duration) Config {
	return Config{
		Racks:          4,
		ServersPerRack: 5,
		Tick:           100 * time.Millisecond,
		Duration:       d,
		Background:     flatBackground(4, 5, 0.3),
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, noopScheme{}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := Run(smallConfig(time.Second), nil); err == nil {
		t.Error("nil scheme should fail")
	}
	cfg := smallConfig(time.Second)
	cfg.Background = flatBackground(1, 1, 0.3)
	if _, err := Run(cfg, noopScheme{}); err == nil {
		t.Error("background size mismatch should fail")
	}
	cfg = smallConfig(time.Second)
	cfg.Attack = &AttackSpec{Servers: []int{999}, Attack: virus.MustNew(virus.Config{Profile: virus.CPUIntensive})}
	if _, err := Run(cfg, noopScheme{}); err == nil {
		t.Error("out-of-range compromised server should fail")
	}
}

func TestQuietClusterNeverTrips(t *testing.T) {
	res, err := Run(smallConfig(30*time.Second), noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tripped {
		t.Fatalf("quiet cluster tripped at %v", res.SurvivalTime)
	}
	if res.SurvivalTime != 30*time.Second {
		t.Fatalf("survival should equal duration, got %v", res.SurvivalTime)
	}
	if res.Throughput < 0.999 {
		t.Fatalf("uncapped quiet cluster throughput = %v", res.Throughput)
	}
	if res.EffectiveAttacks != 0 {
		t.Fatalf("effective attacks = %d on a quiet cluster", res.EffectiveAttacks)
	}
}

func TestSustainedOverloadTripsWithoutDefense(t *testing.T) {
	cfg := smallConfig(5 * time.Minute)
	cfg.Background = flatBackground(4, 5, 0.95) // far over the 0.75 budget
	cfg.StopOnTrip = true
	res, err := Run(cfg, noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tripped {
		t.Fatal("sustained heavy overload should trip")
	}
	if res.SurvivalTime > time.Minute {
		t.Fatalf("trip took implausibly long: %v", res.SurvivalTime)
	}
	if res.EffectiveAttacks == 0 {
		t.Fatal("overload events should be counted")
	}
}

func TestBatteryShavingExtendsSurvival(t *testing.T) {
	mk := func() Config {
		cfg := smallConfig(10 * time.Minute)
		cfg.Background = flatBackground(4, 5, 0.80)
		cfg.StopOnTrip = true
		return cfg
	}
	bare, err := Run(mk(), noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	shaved, err := Run(mk(), shaveScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if !bare.Tripped {
		t.Fatal("undefended 0.80-utilization cluster should trip")
	}
	if shaved.SurvivalTime <= bare.SurvivalTime {
		t.Fatalf("shaving should extend survival: %v vs %v",
			shaved.SurvivalTime, bare.SurvivalTime)
	}
	if shaved.EnergyFromBatteries <= 0 {
		t.Fatal("no battery energy used despite shaving")
	}
}

func TestAttackDrivesRackOverload(t *testing.T) {
	cfg := smallConfig(10 * time.Minute)
	cfg.Background = flatBackground(4, 5, 0.5)
	cfg.StopOnTrip = true
	// Compromise four of rack 0's five servers.
	cfg.Attack = &AttackSpec{
		Servers: []int{0, 1, 2, 3},
		Attack: virus.MustNew(virus.Config{
			Profile:      virus.CPUIntensive,
			PrepDuration: 2 * time.Second,
			MaxPhaseI:    30 * time.Second,
		}),
	}
	res, err := Run(cfg, noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tripped {
		t.Fatal("attack against an undefended rack should trip")
	}
	if res.FirstTripRack != 0 {
		t.Fatalf("trip should hit the attacked rack, got %d", res.FirstTripRack)
	}
}

func TestMicroDEBShavesSpikes(t *testing.T) {
	mk := func(withMicro bool) Config {
		cfg := smallConfig(8 * time.Minute)
		cfg.Background = flatBackground(4, 5, 0.55)
		cfg.StopOnTrip = true
		cfg.Attack = &AttackSpec{
			Servers: []int{0, 1, 2, 3},
			Attack: virus.MustNew(virus.Config{
				Profile:         virus.CPUIntensive,
				PrepDuration:    time.Second,
				MaxPhaseI:       time.Second, // jump straight to spikes
				SpikeWidth:      time.Second,
				SpikesPerMinute: 6,
			}),
		}
		// Batteries empty: only the μDEB stands between spikes and the
		// breaker.
		cfg.BatteryFactory = func(nameplate units.Watts) battery.Store {
			return battery.NewLVD(battery.MustKiBaM(battery.KiBaMConfig{
				Capacity: 1000, InitialSOC: 0.01,
			}), 0.05, 0.2)
		}
		if withMicro {
			cfg.MicroDEBFactory = func(nameplate, budget units.Watts) *core.MicroDEB {
				return mustMicro(battery.NewMicroDEB(units.WattHours(3).Joules(), nameplate), budget)
			}
		}
		return cfg
	}
	bare, err := Run(mk(false), noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	defended, err := Run(mk(true), noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if bare.EffectiveAttacks <= defended.EffectiveAttacks {
		t.Fatalf("μDEB should cut overload events: %d bare vs %d defended",
			bare.EffectiveAttacks, defended.EffectiveAttacks)
	}
	if defended.EnergyFromMicro <= 0 {
		t.Fatal("μDEB energy accounting missing")
	}
}

func mustMicro(bank *battery.SuperCap, threshold units.Watts) *core.MicroDEB {
	u, err := core.NewMicroDEB(bank, threshold)
	if err != nil {
		panic(err)
	}
	return u
}

func TestRecording(t *testing.T) {
	cfg := smallConfig(10 * time.Second)
	cfg.Record = true
	cfg.RecordStep = time.Second
	res, err := Run(cfg, shaveScheme{})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recording
	if rec == nil {
		t.Fatal("recording missing")
	}
	if rec.TotalGrid.Len() != 10 {
		t.Fatalf("grid samples = %d, want 10", rec.TotalGrid.Len())
	}
	if len(rec.RackSOC) != 4 || rec.RackSOC[0].Len() != 10 {
		t.Fatalf("rack SOC shape wrong")
	}
	if len(rec.Levels) != 10 {
		t.Fatalf("level samples = %d", len(rec.Levels))
	}
	if rec.TotalGrid.Values[0] <= 0 {
		t.Fatal("grid draw should be positive")
	}
}

func TestStopOnTrip(t *testing.T) {
	cfg := smallConfig(time.Hour)
	cfg.Background = flatBackground(4, 5, 0.95)
	cfg.StopOnTrip = true
	cfg.Record = true
	cfg.RecordStep = time.Second
	res, err := Run(cfg, noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tripped {
		t.Fatal("should trip")
	}
	// The run ended early: far fewer samples than an hour's worth.
	if res.Recording.TotalGrid.Len() > 120 {
		t.Fatalf("run did not stop on trip: %d samples", res.Recording.TotalGrid.Len())
	}
}

func TestTrippedRackGoesDark(t *testing.T) {
	cfg := smallConfig(2 * time.Minute)
	cfg.Background = flatBackground(4, 5, 0.5)
	cfg.Attack = &AttackSpec{
		Servers: []int{0, 1, 2, 3},
		Attack: virus.MustNew(virus.Config{
			Profile:      virus.CPUIntensive,
			PrepDuration: time.Second,
			MaxPhaseI:    20 * time.Second,
		}),
	}
	cfg.Record = true
	cfg.RecordStep = time.Second
	res, err := Run(cfg, noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tripped {
		t.Skip("attack did not trip in this configuration")
	}
	// After the trip, the victim rack draws nothing.
	last := res.Recording.RackDraw[res.FirstTripRack].Values
	if last[len(last)-1] != 0 {
		t.Fatalf("tripped rack still draws %v", last[len(last)-1])
	}
	// Throughput reflects the outage.
	if res.Throughput >= 1 {
		t.Fatal("outage should cost throughput")
	}
}

func TestShedActionReducesPower(t *testing.T) {
	shedAll := schemeFunc(func(v ClusterView) []Action {
		acts := make([]Action, len(v.Racks))
		for i := range acts {
			acts[i].ShedServers = 5
		}
		return acts
	})
	cfg := smallConfig(10 * time.Second)
	cfg.Background = flatBackground(4, 5, 0.9)
	cfg.Record = true
	res, err := Run(cfg, shedAll)
	if err != nil {
		t.Fatal(err)
	}
	// Every server asleep: grid draw is 20 servers × 20 W.
	if got := res.Recording.TotalGrid.Values[0]; got != 400 {
		t.Fatalf("fully shed cluster draws %v, want 400", got)
	}
	if res.MeanShedRatio != 1 {
		t.Fatalf("shed ratio = %v, want 1", res.MeanShedRatio)
	}
	if res.Throughput != 0 {
		t.Fatalf("fully shed throughput = %v, want 0", res.Throughput)
	}
}

// schemeFunc adapts a function to sim.Scheme.
type schemeFunc func(ClusterView) []Action

func (schemeFunc) Name() string                  { return "func" }
func (f schemeFunc) Plan(v ClusterView) []Action { return f(v) }

func TestDVFSCapReducesThroughputAndPower(t *testing.T) {
	capAll := schemeFunc(func(v ClusterView) []Action {
		acts := make([]Action, len(v.Racks))
		for i := range acts {
			acts[i].Freq = 0.8
		}
		return acts
	})
	cfg := smallConfig(10 * time.Second)
	cfg.Background = flatBackground(4, 5, 1.0)
	res, err := Run(cfg, capAll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 0.79 || res.Throughput > 0.81 {
		t.Fatalf("capped throughput = %v, want ~0.8", res.Throughput)
	}
}

func TestChargeRestoresSOC(t *testing.T) {
	cfg := smallConfig(20 * time.Minute)
	cfg.Tick = time.Second
	cfg.Background = flatBackground(4, 5, 0.2) // plenty of headroom
	cfg.BatteryFactory = func(nameplate units.Watts) battery.Store {
		return battery.MustKiBaM(battery.KiBaMConfig{
			Capacity:   100_000,
			InitialSOC: 0.5,
			MaxCharge:  500,
		})
	}
	cfg.Record = true
	cfg.RecordStep = time.Minute
	res, err := Run(cfg, shaveScheme{})
	if err != nil {
		t.Fatal(err)
	}
	soc := res.Recording.RackSOC[0].Values
	if soc[len(soc)-1] <= soc[0] {
		t.Fatalf("charging did not raise SOC: %v -> %v", soc[0], soc[len(soc)-1])
	}
}

func TestBudgetReassignmentMovesOverloadThreshold(t *testing.T) {
	// Give rack 0 a raised budget; its heavy draw then does not count as
	// overload, while without the raise it does.
	raise := schemeFunc(func(v ClusterView) []Action {
		acts := make([]Action, len(v.Racks))
		acts[0].Budget = v.Racks[0].Demand + 100
		for i := 1; i < len(acts); i++ {
			acts[i].Budget = units.Watts(1) // starve the idle racks
		}
		return acts
	})
	cfg := smallConfig(30 * time.Second)
	bg := flatBackground(4, 5, 0.2)
	// Rack 0 runs hot.
	for s := 0; s < 5; s++ {
		bg[s] = stats.NewSeries(time.Hour)
		bg[s].Append(0.95)
		bg[s].Append(0.95)
	}
	cfg.Background = bg
	res, err := Run(cfg, raise)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstTripRack == 0 {
		t.Fatal("raised budget should protect rack 0")
	}

	res2, err := Run(cfg, noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.EffectiveAttacks == 0 {
		t.Fatal("hot rack without a raised budget should register overloads")
	}
}

func TestEnergyConservation(t *testing.T) {
	// EnergyServed = EnergyFromGrid − EnergyIntoStorage
	//              + EnergyFromBatteries + EnergyFromMicro,
	// for every scheme-shaped behavior the engine supports.
	cfg := smallConfig(5 * time.Minute)
	// Background below budget so batteries recharge between the attack's
	// spikes; Phase I drives the victim rack over budget so they also
	// discharge.
	cfg.Background = flatBackground(4, 5, 0.35)
	cfg.Attack = &AttackSpec{
		Servers: []int{0, 1, 2, 3},
		Attack: virus.MustNew(virus.Config{
			Profile:         virus.CPUIntensive,
			PrepDuration:    time.Second,
			MaxPhaseI:       time.Minute,
			SpikeWidth:      2 * time.Second,
			SpikesPerMinute: 4,
		}),
	}
	cfg.MicroDEBFactory = func(nameplate, budget units.Watts) *core.MicroDEB {
		return mustMicro(battery.NewMicroDEB(units.WattHours(1).Joules(), nameplate), budget)
	}
	cfg.DisableTrips = true
	res, err := Run(cfg, shaveScheme{})
	if err != nil {
		t.Fatal(err)
	}
	lhs := float64(res.EnergyServed)
	rhs := float64(res.EnergyFromGrid - res.EnergyIntoStorage +
		res.EnergyFromBatteries + res.EnergyFromMicro)
	if lhs <= 0 {
		t.Fatal("no energy served")
	}
	if diff := lhs - rhs; diff > 1e-6*lhs || diff < -1e-6*lhs {
		t.Fatalf("energy not conserved: served %v vs accounted %v", lhs, rhs)
	}
	if res.EnergyFromBatteries <= 0 {
		t.Fatal("scenario should exercise battery discharge")
	}
	if res.EnergyIntoStorage <= 0 {
		t.Fatal("scenario should exercise charging")
	}
}

func TestEnergyConservationUnderShedAndCap(t *testing.T) {
	mixed := schemeFunc(func(v ClusterView) []Action {
		acts := make([]Action, len(v.Racks))
		for i := range acts {
			acts[i].Freq = 0.8
			acts[i].ShedServers = 1
			if need := v.Racks[i].Demand - v.Racks[i].Budget; need > 0 {
				acts[i].Discharge = need
			} else {
				acts[i].Charge = 100
			}
		}
		return acts
	})
	cfg := smallConfig(2 * time.Minute)
	cfg.Background = flatBackground(4, 5, 0.6)
	res, err := Run(cfg, mixed)
	if err != nil {
		t.Fatal(err)
	}
	lhs := float64(res.EnergyServed)
	rhs := float64(res.EnergyFromGrid - res.EnergyIntoStorage +
		res.EnergyFromBatteries + res.EnergyFromMicro)
	if diff := lhs - rhs; diff > 1e-6*lhs || diff < -1e-6*lhs {
		t.Fatalf("energy not conserved under shed+cap: %v vs %v", lhs, rhs)
	}
}

func TestEngineRobustToArbitraryActions(t *testing.T) {
	// A hostile or buggy scheme may emit any action values; the engine
	// must neither panic nor violate its result invariants.
	rng := stats.NewRNG(31)
	chaos := schemeFunc(func(v ClusterView) []Action {
		acts := make([]Action, len(v.Racks))
		for i := range acts {
			acts[i] = Action{
				Discharge:   units.Watts(rng.Range(-5000, 20000)),
				Freq:        rng.Range(-1, 2),
				ShedServers: rng.Intn(20) - 5,
				Charge:      units.Watts(rng.Range(-5000, 20000)),
				MicroCharge: units.Watts(rng.Range(-5000, 20000)),
				Budget:      units.Watts(rng.Range(-1000, 50000)),
			}
		}
		return acts
	})
	cfg := smallConfig(time.Minute)
	cfg.Background = flatBackground(4, 5, 0.6)
	cfg.MicroDEBFactory = func(nameplate, budget units.Watts) *core.MicroDEB {
		return mustMicro(battery.NewMicroDEB(units.WattHours(1).Joules(), nameplate), budget)
	}
	res, err := Run(cfg, chaos)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 0 || res.Throughput > 1 {
		t.Fatalf("throughput out of range: %v", res.Throughput)
	}
	if res.MeanShedRatio < 0 || res.MeanShedRatio > 1 {
		t.Fatalf("shed ratio out of range: %v", res.MeanShedRatio)
	}
	if res.EnergyFromBatteries < 0 || res.EnergyFromMicro < 0 ||
		res.EnergyIntoStorage < 0 || res.EnergyServed < 0 {
		t.Fatalf("negative energy accounting: %+v", res)
	}
	// Conservation holds even under chaotic inputs.
	lhs := float64(res.EnergyServed)
	rhs := float64(res.EnergyFromGrid - res.EnergyIntoStorage +
		res.EnergyFromBatteries + res.EnergyFromMicro)
	if diff := lhs - rhs; diff > 1e-6*lhs || diff < -1e-6*lhs {
		t.Fatalf("energy not conserved under chaos: %v vs %v", lhs, rhs)
	}
}

func TestRestoreAfterBringsRackBack(t *testing.T) {
	cfg := smallConfig(8 * time.Minute)
	cfg.Background = flatBackground(4, 5, 0.95) // trips quickly
	cfg.RestoreAfter = time.Minute
	cfg.Record = true
	cfg.RecordStep = 10 * time.Second
	res, err := Run(cfg, noopScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tripped {
		t.Fatal("should trip")
	}
	// The rack draw series shows dark windows followed by restored draw.
	draw := res.Recording.RackDraw[0].Values
	sawDark, sawRestore := false, false
	for i := 1; i < len(draw); i++ {
		if draw[i] == 0 {
			sawDark = true
		}
		if sawDark && draw[i] > 0 {
			sawRestore = true
		}
	}
	if !sawDark || !sawRestore {
		t.Fatalf("restore cycle missing: dark=%v restore=%v", sawDark, sawRestore)
	}
}
