package sim_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

// skipScenarios builds the identity matrix's configurations. Each comes
// with recording on and μDEBs deployed so every accumulator the span
// kernel replicates is live.
//
//   - quiet: no background, no attack — the sweep-scale fast case where
//     nearly the whole horizon should skip.
//   - attack: a frozen-trace run hosting a virus with a long preparation
//     phase, so spans interleave with ramp, phase boundaries and spikes.
//   - campaign: two coordinated groups with different spike clocks, plus
//     a wobbly background — the dense case where skipping rarely engages
//     but must stay invisible.
func skipScenarios() map[string]func() sim.Config {
	wobbly := func(racks, spr int, horizon time.Duration, seed uint64) []*stats.Series {
		bg := make([]*stats.Series, racks*spr)
		rng := stats.NewRNG(seed)
		for i := range bg {
			r := rng.Split(uint64(i))
			s := stats.NewSeries(time.Second)
			for k := 0; k <= int(horizon/time.Second)+1; k++ {
				s.Append(0.35 + 0.4*r.Float64())
			}
			bg[i] = s
		}
		return bg
	}
	return map[string]func() sim.Config{
		"quiet": func() sim.Config {
			return sim.Config{
				Key:             "skip/quiet",
				Racks:           3,
				ServersPerRack:  5,
				Tick:            100 * time.Millisecond,
				Duration:        2 * time.Minute,
				Record:          true,
				MicroDEBFactory: schemes.MicroDEBFactory(0.01),
			}
		},
		"attack": func() sim.Config {
			return sim.Config{
				Key:             "skip/attack",
				Racks:           3,
				ServersPerRack:  5,
				Tick:            100 * time.Millisecond,
				Duration:        90 * time.Second,
				Record:          true,
				MicroDEBFactory: schemes.MicroDEBFactory(0.01),
				Attack: &sim.AttackSpec{
					Servers: []int{0, 1, 5},
					Attack: virus.MustNew(virus.Config{
						Profile:         virus.CPUIntensive,
						PrepDuration:    60 * time.Second,
						MaxPhaseI:       10 * time.Second,
						SpikeWidth:      time.Second,
						SpikesPerMinute: 15,
						Seed:            9,
					}),
				},
			}
		},
		"campaign": func() sim.Config {
			return sim.Config{
				Key:             "skip/campaign",
				Racks:           4,
				ServersPerRack:  5,
				Tick:            100 * time.Millisecond,
				Duration:        30 * time.Second,
				Background:      wobbly(4, 5, 30*time.Second, 77),
				Record:          true,
				MicroDEBFactory: schemes.MicroDEBFactory(0.01),
				Attacks: []sim.AttackSpec{
					{
						Servers: []int{0, 1, 6},
						Attack: virus.MustNew(virus.Config{
							Profile:         virus.CPUIntensive,
							PrepDuration:    time.Second,
							MaxPhaseI:       3 * time.Second,
							SpikeWidth:      time.Second,
							SpikesPerMinute: 15,
							Seed:            9,
						}),
					},
					{
						Servers: []int{12, 18},
						Attack: virus.MustNew(virus.Config{
							Profile:         virus.CPUIntensive,
							PrepDuration:    2 * time.Second,
							MaxPhaseI:       4 * time.Second,
							SpikeWidth:      500 * time.Millisecond,
							SpikesPerMinute: 20,
							Seed:            31,
						}),
					},
				},
			}
		},
	}
}

// TestSkipBitIdentity is the fast path's contract test: for every scheme,
// every scenario and Workers ∈ {0, 4}, a run with SkipQuiescent on must
// produce a Result — recordings, energy accounting, trip bookkeeping and
// all — deeply equal to the per-tick run. The quiet scenario must also
// actually skip (most of its horizon), or the fast path has silently
// stopped engaging and the benchmarks are measuring nothing.
func TestSkipBitIdentity(t *testing.T) {
	for scen, mkCfg := range skipScenarios() {
		for name, mk := range stepperMakers() {
			t.Run(scen+"/"+name, func(t *testing.T) {
				base, err := sim.Run(mkCfg(), mk())
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{0, 4} {
					cfg := mkCfg()
					cfg.SkipQuiescent = true
					cfg.Workers = workers
					st, err := sim.NewStepper(cfg, mk())
					if err != nil {
						t.Fatal(err)
					}
					for {
						ok, err := st.Step()
						if err != nil {
							t.Fatal(err)
						}
						if !ok {
							break
						}
					}
					st.Close()
					if !reflect.DeepEqual(base, st.Result()) {
						t.Fatalf("%s/%s: Workers=%d skip run diverged from per-tick run",
							scen, name, workers)
					}
					spans, ticks := st.SkipStats()
					if scen == "quiet" {
						total := int64(cfg.Duration / cfg.Tick)
						if ticks < total/2 {
							t.Fatalf("%s/%s: quiet run skipped only %d of %d ticks over %d spans",
								scen, name, ticks, total, spans)
						}
					}
				}
			})
		}
	}
}

// TestSkipMaxSpan pins the span cap: capped runs stay bit-identical and
// no single span exceeds the cap (spans × cap must cover the skipped
// ticks).
func TestSkipMaxSpan(t *testing.T) {
	mk := stepperMakers()["PAD"]
	base, err := sim.Run(skipScenarios()["quiet"](), mk())
	if err != nil {
		t.Fatal(err)
	}
	cfg := skipScenarios()["quiet"]()
	cfg.SkipQuiescent = true
	cfg.SkipMaxSpan = 64
	st, err := sim.NewStepper(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	for {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if !reflect.DeepEqual(base, st.Result()) {
		t.Fatal("SkipMaxSpan run diverged from per-tick run")
	}
	spans, ticks := st.SkipStats()
	if spans == 0 || ticks == 0 {
		t.Fatal("SkipMaxSpan run never skipped")
	}
	if ticks > spans*int64(cfg.SkipMaxSpan) {
		t.Fatalf("skipped %d ticks in %d spans: some span exceeded the %d cap",
			ticks, spans, cfg.SkipMaxSpan)
	}

	cfg = skipScenarios()["quiet"]()
	cfg.SkipMaxSpan = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted a negative SkipMaxSpan")
	}
}

// TestSkipOffByDefault guards the opt-in: a default config must never
// engage the fast path.
func TestSkipOffByDefault(t *testing.T) {
	st, err := sim.NewStepper(skipScenarios()["quiet"](), stepperMakers()["PAD"]())
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		if _, err := st.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if spans, ticks := st.SkipStats(); spans != 0 || ticks != 0 {
		t.Fatalf("skip engaged (%d spans, %d ticks) without SkipQuiescent", spans, ticks)
	}
}

// FuzzSkipGuardBand fuzzes the attack clock geometry — preparation
// length, Phase I patience, spike width and cadence, RNG seed — against
// the span-boundary guard band: whatever the event layout, a skipping
// run must stay bit-identical to the per-tick run. This is the search
// for the off-by-one the fixed scenarios might miss: an event landing
// exactly on a span boundary, a spike narrower than a tick, a
// preparation phase ending mid-span.
func FuzzSkipGuardBand(f *testing.F) {
	f.Add(int64(60_000), int64(10_000), int64(1000), uint8(15), uint16(9))
	f.Add(int64(45_100), int64(5_000), int64(100), uint8(60), uint16(1))
	f.Add(int64(59_950), int64(3_333), int64(250), uint8(7), uint16(77))
	f.Fuzz(func(t *testing.T, prepMs, phaseIMs, widthMs int64, spm uint8, seed uint16) {
		// Clamp into the validated range rather than rejecting, so every
		// fuzz input exercises the engine.
		prep := time.Duration(clampI64(prepMs, 100, 70_000)) * time.Millisecond
		phaseI := time.Duration(clampI64(phaseIMs, 500, 15_000)) * time.Millisecond
		width := time.Duration(clampI64(widthMs, 50, 4_000)) * time.Millisecond
		// The spike must fit inside its period with some rest, so the
		// cadence ceiling follows from the fuzzed width.
		maxCad := clampI64(int64(59/width.Seconds()), 1, 60)
		cadence := float64(int64(spm)%maxCad) + 1
		mkCfg := func() sim.Config {
			return sim.Config{
				Key:            "skip/fuzz",
				Racks:          2,
				ServersPerRack: 3,
				Tick:           100 * time.Millisecond,
				Duration:       80 * time.Second,
				Record:         true,
				Attack: &sim.AttackSpec{
					Servers: []int{0, 4},
					Attack: virus.MustNew(virus.Config{
						Profile:         virus.CPUIntensive,
						PrepDuration:    prep,
						MaxPhaseI:       phaseI,
						SpikeWidth:      width,
						SpikesPerMinute: cadence,
						Seed:            uint64(seed),
					}),
				},
			}
		}
		mkScheme := func() sim.Scheme {
			s, err := schemes.ByName("PAD", schemes.Options{ServersPerRack: 3})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		base, err := sim.Run(mkCfg(), mkScheme())
		if err != nil {
			t.Fatal(err)
		}
		cfg := mkCfg()
		cfg.SkipQuiescent = true
		got, err := sim.Run(cfg, mkScheme())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("skip run diverged: prep=%v phaseI=%v width=%v spm=%v seed=%d",
				prep, phaseI, width, cadence, seed)
		}
	})
}

func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
