package sim

import (
	"math"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/powersim"
	"repro/internal/units"
)

// QuiescentPlanner is the planner-contract extension behind the
// event-driven fast path (Config.SkipQuiescent). A scheme that implements
// it lets the engine elide whole spans of provably no-op ticks; a scheme
// that does not simply never skips.
//
// The contract is bit-identity with per-tick stepping:
//
//   - Quiescent(view) must report true only when PlanInto(view) would
//     reproduce the previous tick's actions bit for bit AND mutate no
//     scheme state observable after the span — either because the state
//     is at a fixed point (a settled EWMA, a full actuation ring carrying
//     identical frames) or because the mutation is exactly replicated by
//     SkipPlan (the vDEB refresh clock).
//   - NextEvent(view) is the scheme's own event horizon: how many ticks
//     from view.Time the certification stays valid assuming the view
//     stays frozen. math.MaxInt means no scheme-driven event ahead; the
//     engine subtracts a guard band from bounded horizons.
//   - SkipPlan(view, n) advances scheme-side clocks across n elided ticks
//     starting at view.Time, emitting exactly the trace events the
//     per-tick path would have emitted (for PAD/vDEB: the 1 s refresh
//     stamp and its KindVDEBAlloc record, synthesized from the values the
//     Quiescent check proved frozen).
type QuiescentPlanner interface {
	ScratchPlanner
	Quiescent(view ClusterView) bool
	NextEvent(view ClusterView) int
	SkipPlan(view ClusterView, n int)
}

// skipGuardBand is subtracted from every bounded event horizon so the
// last tick before an event boundary always runs on the live per-tick
// path. The horizons are exact counts of still-frozen ticks, so identity
// holds without it; the band is insurance against an off-by-one in any
// single horizon costing correctness instead of one tick of speed.
const skipGuardBand = 1

// skipAhead is the quiescence detector and span driver. It reports true
// after analytically advancing at least one tick; false means the caller
// must take the per-tick path. The checks run cheapest-first so busy runs
// pay one early-exit comparison chain, not the full predicate.
func (st *Stepper) skipAhead() bool {
	if st.ticks < 1 {
		return false // no previous tick to freeze against
	}
	cfg := &st.cfg
	tick := cfg.Tick

	// Background trace frozen horizon: every per-server series must be
	// provably bit-frozen from the offset the last tick sampled. Wobbly
	// traces fail on the first series, so this is O(1) rejection in the
	// common busy case.
	horizon := math.MaxInt
	if st.bg.series != nil {
		from := st.now - tick
		for _, s := range st.bg.series {
			h := s.InterpFrozenTicks(from, tick)
			if h < horizon {
				horizon = h
			}
			if horizon < 1 {
				return false
			}
		}
	}

	// Cluster-level engine state.
	if st.lastShedCount != 0 || st.pduDown != 0 || st.pduBreaker.Tripped() {
		return false
	}
	if st.lastTotalGrid > st.pduBreaker.Rated {
		return false
	}

	// Per-rack engine state: no battery or μDEB transfer in flight, no
	// shedding, no dark racks, draws inside both the overload-protection
	// rating and the effective-attack line, and the observation the
	// scheme would see next tick identical to the one it saw last tick.
	tol := units.Watts(1 + cfg.OvershootTolerance)
	for i := 0; i < cfg.Racks; i++ {
		act := st.curActions[i]
		if act.Discharge > 0 || act.ShedServers > 0 {
			return false
		}
		br := st.rackBreakers[i]
		if br.Tripped() || st.rackDark[i] || st.overLast[i] {
			return false
		}
		if st.rackShed[i] != 0 || st.rackGot[i] != 0 || st.rackMicro[i] != 0 {
			return false
		}
		if st.draws[i] > br.Rated || st.draws[i] > st.budgets[i]*tol {
			return false
		}
		if st.views[i].LastDraw != st.lastDraws[i] {
			return false
		}
		if !st.resters[i].AtRest(tick) {
			return false
		}
		if m := st.micros[i]; m != nil && act.MicroCharge > 0 && !m.AtRest(tick) {
			return false
		}
	}

	// Attack controllers: each group must be bitwise settled on the
	// capped observation it would make this tick, and bounds the span at
	// its next phase/spike/RNG boundary.
	for g := range st.attacks {
		capped := false
		for _, r := range st.groupRacks[g] {
			if st.lastFreq[r] < 0.999 {
				capped = true
				break
			}
		}
		a := st.attacks[g].Attack
		if !a.Quiescent(capped, tick) {
			return false
		}
		if h := a.NextEvent(capped, tick) - skipGuardBand; h < horizon {
			horizon = h
		}
		if horizon < 1 {
			return false
		}
	}

	// Scheme state, checked last because it is the most expensive
	// predicate (PAD recomputes the full vDEB allocation to compare).
	var totalDemand units.Watts
	for i := range st.views {
		totalDemand += st.views[i].Demand
	}
	view := ClusterView{
		Time:        st.now,
		Tick:        tick,
		TotalDemand: totalDemand,
		PDUBudget:   st.pduBudget,
		Racks:       st.views,
		Trace:       st.tracer,
	}
	if !st.quiet.Quiescent(view) {
		return false
	}
	if h := st.quiet.NextEvent(view); h != math.MaxInt {
		if h -= skipGuardBand; h < horizon {
			horizon = h
		}
	}

	// Clamp to the run horizon and the configured span cap.
	if remaining := int((cfg.Duration - st.now + tick - 1) / tick); remaining < horizon {
		horizon = remaining
	}
	if cfg.SkipMaxSpan > 0 && cfg.SkipMaxSpan < horizon {
		horizon = cfg.SkipMaxSpan
	}
	if horizon < 1 {
		return false
	}
	st.skipSpan(view, horizon)
	return true
}

// skipSpan advances n quiescent ticks in one analytic kernel call. Float
// accumulators are non-associative, so every per-tick add the live path
// would perform is replicated here in the same per-accumulator order with
// the frozen operands; integer clocks and the exponentially cooling
// breakers advance in closed form (the cooling multiply is iterated — see
// powersim.Breaker.CoolN). Quiescent ticks emit no trace events by
// construction (every emission is edge-triggered and no edge fires), so
// the only trace work is the scheme's own SkipPlan synthesis and keeping
// the thermal-warning edge state coherent for the ticks after the span.
func (st *Stepper) skipSpan(view ClusterView, n int) {
	cfg := &st.cfg
	tick := cfg.Tick

	allZero := true
	for s := 0; s < st.totalServers; s++ {
		if st.curDemand[s] != 0 {
			allZero = false
			break
		}
	}
	eGrid := st.lastTotalGrid.Energy(tick)
	lvl := core.Level(0)
	if st.hasLevel {
		lvl = st.levelScheme.Level()
	}
	shedRatio := float64(st.lastShedCount) / float64(st.totalServers)

	for k := 0; k < n; k++ {
		// Work accounting: demanded += u and delivered += min(u, freq)
		// per server in rack order, exactly as the reduce would. When
		// every demand is ±0 both adds are bitwise no-ops and the whole
		// pass collapses.
		if !allZero {
			for i := 0; i < cfg.Racks; i++ {
				base := i * cfg.ServersPerRack
				freq := st.lastFreq[i]
				for s := 0; s < cfg.ServersPerRack; s++ {
					u := st.curDemand[base+s]
					st.demandedWork += u
					st.deliveredWork += minf(u, freq)
				}
			}
		}
		for i := 0; i < cfg.Racks; i++ {
			st.res.EnergyServed += st.rackPower[i].Energy(tick)
		}
		st.res.EnergyFromGrid += eGrid
		st.ticks++
		if st.rec != nil && st.ticks%st.recEvery == 0 {
			st.rec.TotalGrid.Append(float64(st.lastTotalGrid))
			for i := 0; i < cfg.Racks; i++ {
				st.rec.RackSOC[i].Append(st.batteries[i].SOC())
				st.rec.RackDraw[i].Append(float64(st.draws[i]))
				if st.micros[i] != nil {
					st.rec.MicroSOC[i].Append(st.micros[i].SOC())
				}
			}
			st.rec.Levels = append(st.rec.Levels, lvl)
			st.rec.ShedRatio.Append(shedRatio)
			st.rec.AttackUtil.Append(st.lastAttackU)
		}
	}

	for g := range st.attacks {
		st.attacks[g].Attack.Skip(n, tick)
	}
	st.quiet.SkipPlan(view, n)
	for i := 0; i < cfg.Racks; i++ {
		st.rackBreakers[i].CoolN(n, tick)
	}
	st.pduBreaker.CoolN(n, tick)
	if st.tracer != nil {
		// Only the falling edge of the thermal early warning can occur
		// while cooling, and falling edges emit nothing — but the flag
		// must land where per-tick stepping would leave it so a later
		// re-heating emits (or suppresses) KindHeat identically. The
		// run-minimum margin cannot improve on frozen draws the previous
		// live tick already observed, so no KindMarginLow either.
		for i := 0; i < cfg.Racks; i++ {
			st.refreshHeatFlag(i, st.rackBreakers[i])
		}
		st.refreshHeatFlag(cfg.Racks, st.pduBreaker)
	}
	st.now += time.Duration(n) * tick
	st.skipSpans++
	st.skipTicks += int64(n)
}

func (st *Stepper) refreshHeatFlag(idx int, br *powersim.Breaker) {
	st.traceHeatHigh[idx] = br.Heat() >= br.TripThreshold()/2
}

// SkipStats reports the quiescent fast path's work so far: how many
// analytic spans ran and how many ticks they elided. Both are zero when
// skipping is disabled or never engaged; they are observability only and
// deliberately not part of Result, which stays bit-identical to a
// per-tick run.
func (st *Stepper) SkipStats() (spans, ticks int64) {
	return st.skipSpans, st.skipTicks
}

// initSkip resolves whether the fast path can engage for this run: the
// knob must be on, the scheme must implement QuiescentPlanner, and every
// battery the factory built must implement battery.Rester (the trial-step
// fixed-point probe). Any miss quietly disables skipping — correctness
// never depends on it.
func (st *Stepper) initSkip() {
	if !st.cfg.SkipQuiescent {
		return
	}
	quiet, ok := st.scheme.(QuiescentPlanner)
	if !ok {
		return
	}
	resters := make([]battery.Rester, len(st.batteries))
	for i, b := range st.batteries {
		r, ok := b.(battery.Rester)
		if !ok {
			return
		}
		resters[i] = r
	}
	st.quiet = quiet
	st.resters = resters
}
