package sim_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/virus"
)

// TestTracedRunBitIdentical pins the tracing layer's first contract: for
// every scheme, attaching a tracer changes nothing about the simulation —
// the Result (recordings, energy accounting, survival) is deeply equal to
// the untraced run's. Tracing is observation only.
func TestTracedRunBitIdentical(t *testing.T) {
	for name, mk := range stepperMakers() {
		t.Run(name, func(t *testing.T) {
			base, err := sim.Run(workersConfig(), mk())
			if err != nil {
				t.Fatal(err)
			}
			cfg := workersConfig()
			cfg.Trace = obs.NewTracer(0)
			got, err := sim.Run(cfg, mk())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("%s: traced run diverged from untraced run", name)
			}
			if cfg.Trace.Dropped() != 0 {
				t.Fatalf("%s: ring overflowed (%d dropped) on a short run", name, cfg.Trace.Dropped())
			}
			if cfg.Trace.Len() == 0 {
				t.Fatalf("%s: attacked run emitted no events", name)
			}
			meta := cfg.Trace.Meta()
			if meta.Scheme != got.Scheme || meta.Racks != 8 || meta.ServersPerRack != 4 ||
				meta.Tick != 100*time.Millisecond {
				t.Fatalf("%s: engine filled wrong meta: %+v", name, meta)
			}
		})
	}
}

// TestTraceWorkersIdentical pins the second contract: the event stream is
// a pure function of the run, identical at every worker count. All
// emission points live in serial phases (kernel-phase observations ride
// the per-rack SoA outputs and are folded by the serial reduce), so this
// must hold exactly, not approximately. Run under -race in CI.
func TestTraceWorkersIdentical(t *testing.T) {
	run := func(workers int) []obs.Event {
		cfg := workersConfig()
		cfg.Workers = workers
		cfg.Trace = obs.NewTracer(0)
		if _, err := sim.Run(cfg, stepperMakers()["PAD"]()); err != nil {
			t.Fatal(err)
		}
		return cfg.Trace.Events()
	}
	base := run(0)
	if len(base) == 0 {
		t.Fatal("attacked PAD run emitted no events")
	}
	for _, workers := range []int{1, 4, 8} {
		if got := run(workers); !reflect.DeepEqual(base, got) {
			t.Fatalf("Workers=%d event stream diverged from serial:\nserial %d events, parallel %d",
				workers, len(base), len(got))
		}
	}
}

// TestTraceSkipIdentical pins the tracing side of the quiescent fast
// path's contract: with SkipQuiescent on, a traced run must produce the
// same Result AND the same event stream as the per-tick traced run.
// Quiescent ticks emit nothing (every engine emission is edge-triggered
// and a quiescent span has no edges), so the only events inside a span
// are the ones SkipPlan synthesizes — for vDEB and PAD, the 1 s refresh's
// KindVDEBAlloc records, which must land at the same ticks with the same
// values as the live refreshes they replace.
func TestTraceSkipIdentical(t *testing.T) {
	for scen, mkCfg := range skipScenarios() {
		for name, mk := range stepperMakers() {
			t.Run(scen+"/"+name, func(t *testing.T) {
				base := mkCfg()
				base.Trace = obs.NewTracer(0)
				baseRes, err := sim.Run(base, mk())
				if err != nil {
					t.Fatal(err)
				}
				cfg := mkCfg()
				cfg.SkipQuiescent = true
				cfg.Trace = obs.NewTracer(0)
				gotRes, err := sim.Run(cfg, mk())
				if err != nil {
					t.Fatal(err)
				}
				if base.Trace.Dropped() != 0 || cfg.Trace.Dropped() != 0 {
					t.Fatalf("ring overflowed (%d/%d dropped); comparison needs complete streams",
						base.Trace.Dropped(), cfg.Trace.Dropped())
				}
				if !reflect.DeepEqual(baseRes, gotRes) {
					t.Fatalf("%s/%s: skip run result diverged under tracing", scen, name)
				}
				if !reflect.DeepEqual(base.Trace.Events(), cfg.Trace.Events()) {
					t.Fatalf("%s/%s: skip run event stream diverged: per-tick %d events, skip %d",
						scen, name, base.Trace.Len(), cfg.Trace.Len())
				}
			})
		}
	}
}

// TestTraceStreamShape sanity-checks the semantics of the emitted stream
// on an attacked PAD run: ticks are non-decreasing, the attack walks
// Preparation→Phase-I→Phase-II, the initial level assignment is emitted
// with old level 0, and run-minimum margins only ever ratchet down.
func TestTraceStreamShape(t *testing.T) {
	cfg := workersConfig()
	cfg.Trace = obs.NewTracer(0)
	if _, err := sim.Run(cfg, stepperMakers()["PAD"]()); err != nil {
		t.Fatal(err)
	}
	events := cfg.Trace.Events()

	lastTick := int64(-1)
	var phases, levels, margins []obs.Event
	for _, e := range events {
		if e.Tick < lastTick {
			t.Fatalf("event stream not in tick order: %v after tick %d", e, lastTick)
		}
		lastTick = e.Tick
		switch e.Kind {
		case obs.KindAttackPhase:
			phases = append(phases, e)
		case obs.KindLevel:
			levels = append(levels, e)
		case obs.KindMarginLow:
			margins = append(margins, e)
		}
	}
	if len(phases) != 2 {
		t.Fatalf("want 2 attack phase transitions, got %d: %v", len(phases), phases)
	}
	if phases[0].A != float64(virus.Preparation) || phases[0].B != float64(virus.PhaseI) ||
		phases[1].A != float64(virus.PhaseI) || phases[1].B != float64(virus.PhaseII) {
		t.Fatalf("phase walk wrong: %v", phases)
	}
	if len(levels) == 0 || levels[0].A != 0 {
		t.Fatalf("initial level assignment missing or wrong: %v", levels)
	}
	min := 0.0
	for i, e := range margins {
		if i > 0 && e.A >= min {
			t.Fatalf("margin_low not monotone: %v after %g", e, min)
		}
		min = e.A
	}
	if len(margins) == 0 {
		t.Fatal("no margin_low events on an attacked run")
	}
}
