package sim_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

func coordBG(servers int, d time.Duration) []*stats.Series {
	return stats.NoisyUtilization(servers, 0.3, d, 10*time.Second, 11)
}

func coordVirus(seed uint64, prep time.Duration) *virus.Attack {
	return virus.MustNew(virus.Config{
		Profile:         virus.CPUIntensive,
		SpikeWidth:      2 * time.Second,
		SpikesPerMinute: 6,
		PrepDuration:    prep,
		MaxPhaseI:       20 * time.Second,
		Seed:            seed,
	})
}

// TestAttacksSingleGroupMatchesAttack pins the generalized attack-group
// path to the legacy single-spec path: a one-entry Attacks list must be
// bit-identical to the same spec passed as Attack.
func TestAttacksSingleGroupMatchesAttack(t *testing.T) {
	const racks, spr = 4, 5
	mk := func(multi bool) *sim.Result {
		cfg := sim.Config{
			Racks:          racks,
			ServersPerRack: spr,
			Tick:           100 * time.Millisecond,
			Duration:       90 * time.Second,
			Background:     coordBG(racks*spr, 90*time.Second),
			Record:         true,
		}
		spec := sim.AttackSpec{
			Servers: []int{0, 1, 2},
			Attack:  coordVirus(7, 2*time.Second),
		}
		if multi {
			cfg.Attacks = []sim.AttackSpec{spec}
		} else {
			cfg.Attack = &spec
		}
		res, err := sim.Run(cfg, schemes.NewPS(schemes.Options{ServersPerRack: spr}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single, multi := mk(false), mk(true)
	if !reflect.DeepEqual(single, multi) {
		t.Fatalf("Attacks=[spec] diverged from Attack=&spec:\nsingle %+v\nmulti  %+v", single, multi)
	}
}

// TestCoordinatedAttackGroups exercises a phase-staggered multi-rack
// campaign: three groups on three racks, each with its own controller,
// must run deterministically, and the stagger must actually shift the
// groups' Phase-II spike trains apart.
func TestCoordinatedAttackGroups(t *testing.T) {
	const racks, spr = 4, 5
	run := func() (*sim.Result, []*virus.Attack) {
		var ctrls []*virus.Attack
		var specs []sim.AttackSpec
		for g := 0; g < 3; g++ {
			a := coordVirus(uint64(100+g), time.Duration(1+3*g)*time.Second)
			ctrls = append(ctrls, a)
			base := g * spr
			specs = append(specs, sim.AttackSpec{
				Servers: []int{base, base + 1},
				Attack:  a,
			})
		}
		cfg := sim.Config{
			Racks:          racks,
			ServersPerRack: spr,
			Tick:           100 * time.Millisecond,
			Duration:       2 * time.Minute,
			Background:     coordBG(racks*spr, 2*time.Minute),
			Attacks:        specs,
		}
		res, err := sim.Run(cfg, schemes.NewPS(schemes.Options{ServersPerRack: spr}))
		if err != nil {
			t.Fatal(err)
		}
		return res, ctrls
	}
	res1, ctrls := run()
	res2, _ := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("coordinated campaign not deterministic:\n%+v\n%+v", res1, res2)
	}
	for g, a := range ctrls {
		if a.Phase() != virus.PhaseII {
			t.Fatalf("group %d never reached Phase II (phase %v)", g, a.Phase())
		}
		if a.SpikesLaunched() == 0 {
			t.Fatalf("group %d launched no spikes", g)
		}
	}
	// The stagger shifts each group's first spike later than the
	// previous group's.
	for g := 1; g < len(ctrls); g++ {
		prev, cur := ctrls[g-1].SpikeTimes(), ctrls[g].SpikeTimes()
		if cur[0] <= prev[0] {
			t.Fatalf("group %d first spike %v not after group %d first spike %v",
				g, cur[0], g-1, prev[0])
		}
	}
}

// TestAttackGroupValidation covers the new configuration errors.
func TestAttackGroupValidation(t *testing.T) {
	cfg := sim.Config{
		Racks:          2,
		ServersPerRack: 2,
		Duration:       time.Second,
	}
	spec := sim.AttackSpec{Servers: []int{0}, Attack: coordVirus(1, time.Second)}
	scheme := schemes.NewPS(schemes.Options{ServersPerRack: 2})

	both := cfg
	both.Attack = &spec
	both.Attacks = []sim.AttackSpec{spec}
	if _, err := sim.Run(both, scheme); err == nil {
		t.Fatal("Attack and Attacks together not rejected")
	}

	overlap := cfg
	overlap.Attacks = []sim.AttackSpec{
		{Servers: []int{0, 1}, Attack: coordVirus(1, time.Second)},
		{Servers: []int{1, 2}, Attack: coordVirus(2, time.Second)},
	}
	if _, err := sim.Run(overlap, scheme); err == nil {
		t.Fatal("overlapping attack groups not rejected")
	}

	nilCtrl := cfg
	nilCtrl.Attacks = []sim.AttackSpec{{Servers: []int{0}}}
	if _, err := sim.Run(nilCtrl, scheme); err == nil {
		t.Fatal("attack group without controller not rejected")
	}

	// Repeats within one group stay accepted (legacy behaviour).
	repeat := cfg
	repeat.Attacks = []sim.AttackSpec{
		{Servers: []int{0, 0, 1}, Attack: coordVirus(1, time.Second)},
	}
	if _, err := sim.Run(repeat, scheme); err != nil {
		t.Fatalf("in-group repeated server rejected: %v", err)
	}
}
