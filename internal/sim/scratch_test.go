package sim

import (
	"testing"

	"repro/internal/stats"
)

// naiveTopK is the seed engine's O(k·n) selection: repeatedly mark the
// unmarked maximum, breaking ties toward the lower index. It is the
// reference the heap-based selector must match exactly — the engine
// sheds precisely the servers this marks.
func naiveTopK(us []float64, k int) []bool {
	marked := make([]bool, len(us))
	for n := 0; n < k; n++ {
		best := -1
		for i, u := range us {
			if marked[i] {
				continue
			}
			if best == -1 || u > us[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		marked[best] = true
	}
	return marked
}

func TestTopKSelectorMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(41)
	sel := newTopKSelector(16)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + int(rng.Range(0, 16))
		us := make([]float64, n)
		for i := range us {
			if trial%2 == 0 {
				// Heavy ties: values from a 4-level grid.
				us[i] = float64(int(rng.Range(0, 4))) * 0.25
			} else {
				us[i] = rng.Float64()
			}
		}
		got := make([]bool, 16)
		for k := 0; k <= n+1; k++ {
			want := naiveTopK(us, k)
			sel.markInto(got[:n], us, k)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d, n=%d, k=%d, us=%v:\nnaive %v\nheap  %v",
						trial, n, k, us, want, got)
				}
			}
		}
	}
}

func TestTopKSelectorReuse(t *testing.T) {
	sel := newTopKSelector(4)
	marks := make([]bool, 4)
	sel.markInto(marks, []float64{1, 2, 3, 4}, 2)
	if !marks[3] || !marks[2] || marks[0] || marks[1] {
		t.Fatalf("first mark wrong: %v", marks)
	}
	// A later call into the same slice must fully overwrite it,
	// including clearing previously set entries.
	sel.markInto(marks, []float64{4, 3, 2, 1}, 1)
	if !marks[0] || marks[1] || marks[2] || marks[3] {
		t.Fatalf("reused mark wrong: %v", marks)
	}
}
