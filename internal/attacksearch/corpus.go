package attacksearch

import (
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/padd"
	"repro/internal/schemes"
)

// LoadCorpus reads every *.json scenario under dir, in file-name order.
// An invalid file fails the load — a corpus that silently skips broken
// scenarios is a regression suite with holes in it.
func LoadCorpus(dir string) ([]Scenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]Scenario, 0, len(paths))
	for _, p := range paths {
		s, err := LoadScenario(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// FillExpectations evaluates the scenario against every scheme and pins
// the outcomes into Expect — run when promoting a search result into the
// corpus, and by the corpus test's -update-corpus mode. The pinned
// numbers are exact for the architecture that generated them (CI runs
// amd64); other architectures check structure, not bits.
func FillExpectations(s *Scenario) error {
	bg := s.Background()
	s.Expect = make(map[string]Expectation, len(schemes.SchemeNames))
	for _, name := range schemes.SchemeNames {
		o, err := Evaluate(*s, name, bg)
		if err != nil {
			return fmt.Errorf("%s vs %s: %w", s.Name, name, err)
		}
		s.Expect[name] = Expectation{
			Tripped:          o.Tripped,
			TimeToTripS:      o.TimeToTripS,
			EffectiveAttacks: o.EffectiveAttacks,
		}
	}
	return nil
}

// ReplayConfig builds the padd online/offline equivalence check for a
// corpus scenario: the daemon replays the scenario's own scheme with the
// scenario's exact background trace and coordinated attack groups, and
// the recordings must match the offline engine bit for bit.
func ReplayConfig(s Scenario) padd.ReplayConfig {
	return padd.ReplayConfig{
		Schemes:        []string{s.Scheme},
		Racks:          s.Racks,
		ServersPerRack: s.ServersPerRack,
		Duration:       s.Duration(),
		Tick:           s.Tick(),
		Seed:           s.Seed,
		BGMean:         s.BGMean,
		Background:     s.Background(),
		AttackFactory:  s.AttackSpecs,
	}
}
