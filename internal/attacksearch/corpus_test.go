package attacksearch

import (
	"flag"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/padd"
	"repro/internal/schemes"
)

// The corpus under testdata/corpus holds the worst-case attack each
// scheme's search discovered, with the replay outcome of every scheme
// pinned. Regenerate the pinned outcomes after an intentional engine or
// scheme change (on amd64, matching CI):
//
//	go test ./internal/attacksearch -run TestCorpus -update-corpus
//
// To re-discover the scenarios themselves (new search, new worst cases):
//
//	go run ./cmd/padsearch -budget 400 -seed 1 \
//	    -corpus internal/attacksearch/testdata/corpus -csv ''
var updateCorpus = flag.Bool("update-corpus", false, "re-evaluate and rewrite the corpus expectations")

func loadCorpusT(t *testing.T) []Scenario {
	t.Helper()
	scens, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) == 0 {
		t.Fatal("empty corpus: testdata/corpus has no scenarios")
	}
	return scens
}

// TestCorpusCoversEveryScheme pins the corpus contract: at least one
// checked-in worst case per defense scheme.
func TestCorpusCoversEveryScheme(t *testing.T) {
	covered := map[string]bool{}
	for _, s := range loadCorpusT(t) {
		covered[s.Scheme] = true
	}
	for _, name := range schemes.SchemeNames {
		if !covered[name] {
			t.Errorf("no corpus scenario discovered against %s", name)
		}
	}
}

// TestCorpusReplay is the regression tier: every corpus scenario runs
// against all six schemes and must reproduce its pinned detection
// verdict, time-to-trip and effective-attack count. The pinned values
// are exact on amd64 (the architecture that generated them and that CI
// runs); on other architectures FMA fusion shifts float results, so the
// replay only checks that evaluation succeeds.
func TestCorpusReplay(t *testing.T) {
	if *updateCorpus {
		updateCorpusFiles(t)
		return
	}
	exact := runtime.GOARCH == "amd64"
	for _, scen := range loadCorpusT(t) {
		scen := scen
		t.Run(scen.Name, func(t *testing.T) {
			if len(scen.Expect) != len(schemes.SchemeNames) {
				t.Fatalf("scenario pins %d schemes, want all %d",
					len(scen.Expect), len(schemes.SchemeNames))
			}
			bg := scen.Background()
			for _, name := range schemes.SchemeNames {
				o, err := Evaluate(scen, name, bg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !exact {
					continue
				}
				want := scen.Expect[name]
				if o.Tripped != want.Tripped {
					t.Errorf("%s: tripped=%v, corpus pins %v", name, o.Tripped, want.Tripped)
				}
				if o.TimeToTripS != want.TimeToTripS {
					t.Errorf("%s: time to trip %v s, corpus pins %v s", name, o.TimeToTripS, want.TimeToTripS)
				}
				if o.EffectiveAttacks != want.EffectiveAttacks {
					t.Errorf("%s: %d effective attacks, corpus pins %d", name, o.EffectiveAttacks, want.EffectiveAttacks)
				}
			}
		})
	}
}

// TestCorpusReplaySkip replays every corpus scenario against all six
// schemes twice — with the engine's quiescent fast path on (the Evaluate
// default) and forced off — and requires the full Outcomes to match
// exactly. Unlike the amd64-pinned corpus values, both sides run on the
// same hardware, so exact float equality holds on every architecture:
// this is the skip path's bit-identity contract checked on the search's
// own worst cases, stealth-margin tracking included.
func TestCorpusReplaySkip(t *testing.T) {
	if *updateCorpus {
		t.Skip("corpus update runs in TestCorpusReplay")
	}
	for _, scen := range loadCorpusT(t) {
		scen := scen
		t.Run(scen.Name, func(t *testing.T) {
			bg := scen.Background()
			for _, name := range schemes.SchemeNames {
				skip, err := Evaluate(scen, name, bg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				perTick, err := EvaluateNoSkip(scen, name, bg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if skip != perTick {
					t.Errorf("%s: skip outcome %+v diverged from per-tick %+v", name, skip, perTick)
				}
			}
		})
	}
}

// TestCorpusOnlineOffline replays each corpus scenario's own scheme
// through the padd daemon: the online HTTP-ingest path must reproduce
// the offline engine bit for bit under the discovered worst-case attack,
// coordinated groups and all. This holds on every architecture — both
// sides run on the same hardware.
func TestCorpusOnlineOffline(t *testing.T) {
	if *updateCorpus {
		t.Skip("corpus update runs in TestCorpusReplay")
	}
	if testing.Short() {
		t.Skip("daemon replay of the full corpus is not a -short test")
	}
	for _, scen := range loadCorpusT(t) {
		scen := scen
		t.Run(scen.Name, func(t *testing.T) {
			rep, err := padd.Replay(ReplayConfig(scen))
			if err != nil {
				t.Fatal(err)
			}
			for _, sr := range rep.Schemes {
				if !sr.OK() {
					t.Errorf("%s: online diverged from offline: %v", sr.Scheme, sr.Mismatches)
				}
			}
		})
	}
}

// updateCorpusFiles re-evaluates every scenario and rewrites its pinned
// expectations in place.
func updateCorpusFiles(t *testing.T) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		s, err := LoadScenario(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := FillExpectations(&s); err != nil {
			t.Fatal(err)
		}
		if err := WriteScenario(p, s); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("updated %s\n", p)
	}
}
