package attacksearch

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Env fixes the parts of a search that are environment, not attack: the
// cluster shape, the horizon, the background level, and the attacker's
// footprint and patience. Everything the search optimizes lives in the
// dimension vector; everything here is held constant so scores are
// comparable across candidates.
type Env struct {
	// Racks and ServersPerRack shape the cluster. 0 selects 8×10 — large
	// enough for multi-rack coordination to matter, small enough that a
	// few thousand evaluations finish in seconds.
	Racks          int
	ServersPerRack int
	// Tick is the simulation step. 0 selects 100 ms.
	Tick time.Duration
	// Duration is the per-evaluation horizon. 0 selects 5 minutes.
	Duration time.Duration
	// BGMean is the mean background utilization. 0 selects 0.30.
	BGMean float64
	// PrepS is group 0's preparation delay in seconds. 0 selects 2.
	PrepS float64
	// PatienceS bounds Phase I (the virus MaxPhaseI) in seconds, so a
	// drain that never confirms capping still escalates within the
	// horizon. 0 selects 90.
	PatienceS float64
	// NodesPerGroup is each group's compromised-server count. 0 selects
	// 6 of the 10 servers on the group's rack.
	NodesPerGroup int
	// RestFraction is the virus Phase-II rest level. 0 selects 0.30.
	RestFraction float64
}

func (e Env) withDefaults() Env {
	if e.Racks == 0 {
		e.Racks = 8
	}
	if e.ServersPerRack == 0 {
		e.ServersPerRack = 10
	}
	if e.Tick == 0 {
		e.Tick = 100 * time.Millisecond
	}
	if e.Duration == 0 {
		e.Duration = 5 * time.Minute
	}
	if e.BGMean == 0 {
		e.BGMean = 0.30
	}
	if e.PrepS == 0 {
		e.PrepS = 2
	}
	if e.PatienceS == 0 {
		e.PatienceS = 90
	}
	if e.NodesPerGroup == 0 {
		e.NodesPerGroup = 6
	}
	if e.NodesPerGroup > e.ServersPerRack {
		e.NodesPerGroup = e.ServersPerRack
	}
	if e.RestFraction == 0 {
		e.RestFraction = 0.30
	}
	return e
}

// dim is one quantized search dimension. Quantization serves two
// masters: the dedup cache (a revisited point is recognized exactly, no
// float-noise near-duplicates) and determinism (every candidate is a
// grid point, so canonical keys are stable strings).
type dim struct {
	name         string
	lo, hi, step float64
}

// quant snaps v onto the dimension's grid, clamped to its range.
func (d dim) quant(v float64) float64 {
	if v < d.lo {
		v = d.lo
	}
	if v > d.hi {
		v = d.hi
	}
	q := d.lo + math.Round((v-d.lo)/d.step)*d.step
	if q > d.hi {
		q -= d.step
	}
	if q < d.lo {
		q = d.lo
	}
	// Snap off accumulated binary noise (0.55+68×0.005 = 0.8900000000000001)
	// so grid points print, serialize and dedup as the clean decimals the
	// step sizes are written in. Every step is a multiple of 1e-6.
	return math.Round(q*1e6) / 1e6
}

// Dimension indices into a candidate vector.
const (
	dimPeak = iota
	dimWidthS
	dimSPM
	dimPhaseJitter
	dimRampMS
	dimGroups
	dimOffsetMS
	numDims
)

// dims returns the search space for an environment. Bounds follow the
// physics: peaks below ~0.55 cannot threaten a 0.75-oversubscribed
// breaker even cluster-wide; spike widths beyond 8 s stop being spikes;
// more than 6 coordinated groups adds placement, not new schedule
// shapes, on an 8-rack cluster.
func dims(env Env) [numDims]dim {
	maxGroups := env.Racks
	if maxGroups > 6 {
		maxGroups = 6
	}
	return [numDims]dim{
		dimPeak:        {"peak", 0.55, 1.0, 0.005},
		dimWidthS:      {"width_s", 0.2, 8, 0.1},
		dimSPM:         {"spikes_per_min", 1, 12, 0.25},
		dimPhaseJitter: {"phase_jitter", 0, 0.8, 0.02},
		dimRampMS:      {"ramp_ms", 20, 800, 5},
		dimGroups:      {"groups", 1, float64(maxGroups), 1},
		dimOffsetMS:    {"offset_ms", 0, 20_000, 250},
	}
}

// vec is one on-grid candidate point.
type vec [numDims]float64

// key is the candidate's canonical dedup/tie-break identity.
func (v vec) key() string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	return b.String()
}

// scenario materializes a candidate point in an environment. The spike
// width is clamped below the virus layer's width<period feasibility
// bound (at 90% of the period, re-quantized), so every grid point maps
// to a valid scenario. The seed is the environment's shared seed — one
// background trace serves every candidate, which is what makes scores
// comparable and lets Search build the series once.
func (env Env) scenario(d [numDims]dim, v vec, seed uint64, scheme, name string) Scenario {
	width := v[dimWidthS]
	if maxW := 0.9 * 60 / v[dimSPM]; width > maxW {
		width = d[dimWidthS].quant(maxW - d[dimWidthS].step/2)
	}
	peak := v[dimPeak]
	return Scenario{
		Version:        ScenarioVersion,
		Name:           name,
		Scheme:         scheme,
		Seed:           seed,
		Racks:          env.Racks,
		ServersPerRack: env.ServersPerRack,
		TickMS:         int(env.Tick / time.Millisecond),
		DurationS:      env.Duration.Seconds(),
		BGMean:         env.BGMean,

		PeakFraction:    peak,
		SustainFraction: math.Round(0.95*peak*1000) / 1000,
		RampMS:          v[dimRampMS],
		Jitter:          0.02,

		SpikeWidthMS:    math.Round(width * 1000),
		SpikesPerMinute: v[dimSPM],
		RestFraction:    env.RestFraction,
		PhaseJitter:     v[dimPhaseJitter],
		AmplitudeScale:  1,
		PrepS:           env.PrepS,
		PatienceS:       env.PatienceS,

		Groups:        int(v[dimGroups]),
		NodesPerGroup: env.NodesPerGroup,
		PhaseOffsetMS: v[dimOffsetMS],
	}
}

// String renders a candidate for progress lines and error messages.
func (v vec) String() string {
	return fmt.Sprintf("peak=%.3f width=%.1fs spm=%.2f pj=%.2f ramp=%.0fms groups=%d offset=%.0fms",
		v[dimPeak], v[dimWidthS], v[dimSPM], v[dimPhaseJitter], v[dimRampMS],
		int(v[dimGroups]), v[dimOffsetMS])
}
