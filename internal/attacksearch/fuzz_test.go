package attacksearch

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzScenarioRoundTrip hardens the corpus file format: whatever bytes
// the fuzzer invents, DecodeScenario must either reject them or return a
// scenario that (a) passed Validate — so no NaN, ±Inf or out-of-range
// parameter survives into the engine, (b) can build its campaign and
// attack specs without panicking, and (c) re-encodes to a document that
// decodes back to the identical value. Property (c) is what makes the
// checked-in corpus trustworthy: a file that loads is exactly the
// scenario that was saved.
func FuzzScenarioRoundTrip(f *testing.F) {
	seed := func(s Scenario) {
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(validScenario())
	coordinated := validScenario()
	coordinated.Groups = 4
	coordinated.PhaseOffsetMS = 7750
	coordinated.Expect = map[string]Expectation{"Conv": {Tripped: true, TimeToTripS: 9.1}}
	seed(coordinated)
	// Hostile corners the decoder must reject cleanly.
	f.Add([]byte(`{"version":1,"racks":1e9}`))
	f.Add([]byte(`{"version":1,"peak_fraction":1e999}`))
	f.Add([]byte(`{"version":1,"duration_s":-1,"unknown":true}`))
	f.Add([]byte(`{}{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeScenario(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decoded is valid by construction; building the
		// attack machinery from it must succeed.
		specs, err := s.AttackSpecs()
		if err != nil {
			t.Fatalf("valid scenario failed to build attacks: %v", err)
		}
		if len(specs) != s.Groups {
			t.Fatalf("%d specs for %d groups", len(specs), s.Groups)
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeScenario(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding did not decode: %v", err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip changed the scenario:\nin  %+v\nout %+v", s, again)
		}
	})
}
