package attacksearch

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkEvalTick measures the per-tick cost of the search's
// evaluation loop — stepper advance plus the Stats() margin probe — and
// pins it allocation-free, the same contract BenchmarkStepperTick holds
// for the bare engine. Per-candidate search cost is this number times
// the horizon's tick count.
func BenchmarkEvalTick(b *testing.B) {
	s := validScenario()
	// Horizon sized to the benchmark so the stepper never finishes early;
	// this bypasses the corpus-format tick budget on purpose.
	s.DurationS = (float64(b.N) + 1) * float64(s.TickMS) / 1000
	cfg, scheme, err := s.SimConfig("PAD", nil)
	if err != nil {
		b.Fatal(err)
	}
	// Evaluate sets StopOnTrip; the bench leaves it off so a trip latches
	// instead of ending the run short of b.N ticks. The per-tick cost is
	// the same either way.
	st, err := sim.NewStepper(cfg, scheme)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	minMargin := rackNameplate(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := st.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatalf("stepper finished early at tick %d", i)
		}
		ts := st.Stats()
		if !ts.Tripped && ts.BreakerMargin < minMargin {
			minMargin = ts.BreakerMargin
		}
	}
	b.StopTimer()
	if minMargin <= 0 {
		b.Logf("min margin %.1f W over %s", float64(minMargin), time.Duration(b.N)*s.Tick())
	}
}
