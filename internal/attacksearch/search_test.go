package attacksearch

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
)

// Regenerate golden files after an intentional format or strategy change:
//
//	go test ./internal/attacksearch -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// quickEnv is a deliberately small search environment: big enough that
// coordination and phase structure matter, small enough that a full
// search fits in a unit test.
func quickEnv() Env {
	return Env{
		Racks:          3,
		ServersPerRack: 4,
		Duration:       30 * time.Second,
		PatienceS:      12,
		PrepS:          1,
		NodesPerGroup:  3,
	}
}

// render produces the search's two deterministic artifacts.
func render(t *testing.T, rep *Report) (csv, jsonl []byte) {
	t.Helper()
	var c, j bytes.Buffer
	if err := WriteFrontierCSV(&c, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteEvalsJSONL(&j, rep); err != nil {
		t.Fatal(err)
	}
	return c.Bytes(), j.Bytes()
}

// TestSearchDeterminism is the harness's core property: the frontier CSV
// and the evaluation JSONL are byte-identical at any worker count. Run
// under -race this also shakes out unsynchronized sharing between
// concurrent evaluations.
func TestSearchDeterminism(t *testing.T) {
	run := func(workers int) (csv, jsonl []byte) {
		rep, err := Search(Config{
			Schemes: []string{"PS"},
			Budget:  18,
			Seed:    3,
			Workers: workers,
			Env:     quickEnv(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return render(t, rep)
	}
	csv1, jsonl1 := run(1)
	for _, workers := range []int{4, 8} {
		csvN, jsonlN := run(workers)
		if !bytes.Equal(csv1, csvN) {
			t.Errorf("frontier CSV differs between -workers 1 and -workers %d:\n1: %s\n%d: %s",
				workers, csv1, workers, csvN)
		}
		if !bytes.Equal(jsonl1, jsonlN) {
			t.Errorf("evaluation JSONL differs between -workers 1 and -workers %d", workers)
		}
	}
}

func TestSearchBudgetAndShape(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	rep, err := Search(Config{
		Schemes: []string{"Conv"},
		Budget:  15,
		Seed:    1,
		Env:     quickEnv(),
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Schemes) != 1 || rep.Schemes[0].Scheme != "Conv" {
		t.Fatalf("unexpected schemes in report: %+v", rep.Schemes)
	}
	sr := rep.Schemes[0]
	if len(sr.Evals) == 0 || len(sr.Evals) > 15 {
		t.Fatalf("%d evaluations for budget 15", len(sr.Evals))
	}
	if got := m.evals.Value("Conv"); got != float64(len(sr.Evals)) {
		t.Errorf("metrics counted %v evaluations, report has %d", got, len(sr.Evals))
	}
	// Every evaluation's scenario must itself be a valid corpus document:
	// promoting any search result into testdata/corpus must never produce
	// a file the loader rejects.
	for _, ev := range sr.Evals {
		if err := ev.Scenario.Validate(); err != nil {
			t.Fatalf("search produced invalid scenario %s: %v", ev.Scenario.Name, err)
		}
		if ev.Outcome.Score < 0 || ev.Outcome.Score > 3 {
			t.Fatalf("score %v out of [0,3]", ev.Outcome.Score)
		}
	}
	// The frontier covers only evaluated coordination levels, ascending.
	for i := 1; i < len(sr.Frontier); i++ {
		if sr.Frontier[i].Scenario.Groups <= sr.Frontier[i-1].Scenario.Groups {
			t.Fatalf("frontier not ascending in groups: %d then %d",
				sr.Frontier[i-1].Scenario.Groups, sr.Frontier[i].Scenario.Groups)
		}
	}
	// Best is the max score over all evaluations.
	for _, ev := range sr.Evals {
		if ev.Outcome.Score > sr.Best.Outcome.Score {
			t.Fatalf("Best %.4f beaten by eval %d (%.4f)",
				sr.Best.Outcome.Score, ev.Index, ev.Outcome.Score)
		}
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestSearchSmokeGolden pins a small fixed-budget search end to end: the
// frontier CSV and the human summary must not drift unless the search
// strategy or scoring intentionally changes. Exact float outcomes depend
// on FMA fusion, so the comparison runs on the architecture that
// generated the files (CI's amd64); other architectures still exercise
// the full search path via TestSearchDeterminism.
func TestSearchSmokeGolden(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden bytes generated on amd64; GOARCH=%s evaluates floats differently", runtime.GOARCH)
	}
	rep, err := Search(Config{
		Schemes: []string{"Conv", "PAD"},
		Budget:  24,
		Seed:    5,
		Env:     quickEnv(),
	})
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := render(t, rep)
	checkGolden(t, "search_smoke_frontier.csv", csv)
	var sum bytes.Buffer
	if err := Summarize(&sum, rep); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "search_smoke_summary", sum.Bytes())
}
