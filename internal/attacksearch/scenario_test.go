package attacksearch

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// validScenario is a small, fully specified scenario used across the
// package tests.
func validScenario() Scenario {
	return Scenario{
		Version:        ScenarioVersion,
		Name:           "test/handmade",
		Scheme:         "PAD",
		Seed:           7,
		Racks:          4,
		ServersPerRack: 6,
		TickMS:         100,
		DurationS:      45,
		BGMean:         0.3,

		PeakFraction:    0.95,
		SustainFraction: 0.9,
		RampMS:          120,
		Jitter:          0.02,

		SpikeWidthMS:    1500,
		SpikesPerMinute: 6,
		RestFraction:    0.3,
		PhaseJitter:     0.1,
		AmplitudeScale:  1,
		PrepS:           1,
		PatienceS:       20,

		Groups:        2,
		NodesPerGroup: 4,
		PhaseOffsetMS: 2500,
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	s := validScenario()
	s.Expect = map[string]Expectation{
		"PAD": {Tripped: true, TimeToTripS: 12.5, EffectiveAttacks: 3},
		"PS":  {Tripped: false, TimeToTripS: 45},
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("encoded scenario missing trailing newline")
	}
	got, err := DecodeScenario(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed the scenario:\nin  %+v\nout %+v", s, got)
	}
}

func TestScenarioValidate(t *testing.T) {
	mut := func(f func(*Scenario)) Scenario {
		s := validScenario()
		f(&s)
		return s
	}
	cases := []struct {
		name string
		s    Scenario
	}{
		{"future version", mut(func(s *Scenario) { s.Version = ScenarioVersion + 1 })},
		{"zero version", mut(func(s *Scenario) { s.Version = 0 })},
		{"unknown scheme", mut(func(s *Scenario) { s.Scheme = "magic" })},
		{"zero racks", mut(func(s *Scenario) { s.Racks = 0 })},
		{"huge racks", mut(func(s *Scenario) { s.Racks = 65 })},
		{"tiny tick", mut(func(s *Scenario) { s.TickMS = 5 })},
		{"zero duration", mut(func(s *Scenario) { s.DurationS = 0 })},
		{"nan duration", mut(func(s *Scenario) { s.DurationS = math.NaN() })},
		{"tick budget", mut(func(s *Scenario) { s.DurationS = 3600; s.TickMS = 10 })},
		{"nan bg", mut(func(s *Scenario) { s.BGMean = math.NaN() })},
		{"inf ramp", mut(func(s *Scenario) { s.RampMS = math.Inf(1) })},
		{"nan peak", mut(func(s *Scenario) { s.PeakFraction = math.NaN() })},
		{"sustain above peak", mut(func(s *Scenario) { s.SustainFraction = s.PeakFraction + 0.1 })},
		{"width eats period", mut(func(s *Scenario) { s.SpikeWidthMS = 11_000; s.SpikesPerMinute = 6 })},
		{"negative offset", mut(func(s *Scenario) { s.PhaseOffsetMS = -1 })},
		{"groups beyond racks", mut(func(s *Scenario) { s.Groups = s.Racks + 1 })},
		{"nodes beyond rack", mut(func(s *Scenario) { s.NodesPerGroup = s.ServersPerRack + 1 })},
		{"expect unknown scheme", mut(func(s *Scenario) {
			s.Expect = map[string]Expectation{"magic": {}}
		})},
		{"expect beyond horizon", mut(func(s *Scenario) {
			s.Expect = map[string]Expectation{"PS": {TimeToTripS: s.DurationS + 1}}
		})},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); err == nil {
			t.Errorf("%s: not rejected", tc.name)
		}
	}
	if err := validScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	s := validScenario()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	unknown := strings.Replace(buf.String(), `"version"`, `"verzion"`, 1)
	if _, err := DecodeScenario(strings.NewReader(unknown)); err == nil {
		t.Error("unknown field not rejected")
	}
	if _, err := DecodeScenario(strings.NewReader(buf.String() + "{}\n")); err == nil {
		t.Error("trailing document not rejected")
	}
	if _, err := DecodeScenario(strings.NewReader("{")); err == nil {
		t.Error("truncated document not rejected")
	}
}

// TestAttackSpecsPlacement pins the corpus placement convention: group g
// compromises the first NodesPerGroup slots of rack g, and controllers
// are fresh per call.
func TestAttackSpecsPlacement(t *testing.T) {
	s := validScenario()
	specs, err := s.AttackSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != s.Groups {
		t.Fatalf("%d specs for %d groups", len(specs), s.Groups)
	}
	for g, spec := range specs {
		if spec.Attack == nil {
			t.Fatalf("group %d has no controller", g)
		}
		if len(spec.Servers) != s.NodesPerGroup {
			t.Fatalf("group %d has %d servers, want %d", g, len(spec.Servers), s.NodesPerGroup)
		}
		for i, srv := range spec.Servers {
			if want := g*s.ServersPerRack + i; srv != want {
				t.Fatalf("group %d server %d is %d, want %d", g, i, srv, want)
			}
		}
	}
	again, err := s.AttackSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Attack == again[0].Attack {
		t.Error("AttackSpecs returned a shared controller; must be fresh per call")
	}
}

// TestBackgroundShared pins that the background build is a pure function
// of the scenario seed — the property that lets Search share one trace
// across every candidate.
func TestBackgroundShared(t *testing.T) {
	s := validScenario()
	a, b := s.Background(), s.Background()
	if len(a) != s.Racks*s.ServersPerRack {
		t.Fatalf("%d series for %d servers", len(a), s.Racks*s.ServersPerRack)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("background trace not reproducible from the seed")
	}
}
