package attacksearch

import (
	"time"

	"repro/internal/battery"
	"repro/internal/powersim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// Outcome is one scenario's scored result against one scheme.
type Outcome struct {
	// Scheme names the defense evaluated.
	Scheme string `json:"scheme"`
	// Tripped reports whether the attack tripped a breaker.
	Tripped bool `json:"tripped"`
	// TimeToTripS is the offset of the first trip in seconds, or the full
	// horizon when nothing tripped (sim.Result.SurvivalTime).
	TimeToTripS float64 `json:"time_to_trip_s"`
	// EffectiveAttacks counts tolerated-overload excursions (Figure 8's
	// metric) — damage the attack landed short of a trip.
	EffectiveAttacks int `json:"effective_attacks"`
	// DrainJ is the total energy pulled out of rack batteries: Phase I's
	// objective, and the quantity a stealthy drain attack maximizes.
	DrainJ float64 `json:"drain_j"`
	// StealthMarginW is the smallest breaker margin the attack forced
	// while no feed had tripped — how close an undetected attack came to
	// the protection limit.
	StealthMarginW float64 `json:"stealth_margin_w"`
	// Throughput is delivered over demanded work (the availability cost
	// the defense paid while resisting).
	Throughput float64 `json:"throughput"`
	// Score is the attack-quality objective the search maximizes; see
	// Score for the scale.
	Score float64 `json:"score"`
}

// Score ranks attacks from the attacker's side. Tripping is always worth
// more than not tripping, and earlier trips are worth more than later
// ones, so the score has two bands:
//
//	tripped:   2 + (1 − t/horizon)           ∈ (2, 3]
//	untripped: weighted stealth damage        ∈ [0, 1)
//
// The untripped band mixes breaker-margin pressure (how near the attack
// pushed an untripped feed to its limit), battery drain as a fraction of
// the cluster's total reserve (Phase I progress), and effective-attack
// count — so the search gradient points from "harmless" through "drains
// batteries undetected" toward "trips the breaker", with no plateau for
// coordinate descent to stall on.
func (o Outcome) score(horizonS, rackNameplateW, clusterReserveJ float64) float64 {
	if o.Tripped {
		frac := o.TimeToTripS / horizonS
		if frac > 1 {
			frac = 1
		}
		return 2 + (1 - frac)
	}
	pressure := 1 - o.StealthMarginW/rackNameplateW
	if pressure < 0 {
		pressure = 0
	} else if pressure > 1 {
		pressure = 1
	}
	drain := o.DrainJ / clusterReserveJ
	if drain > 1 {
		drain = 1
	}
	eff := float64(o.EffectiveAttacks) / 10
	if eff > 1 {
		eff = 1
	}
	return 0.5*pressure + 0.35*drain + 0.15*eff
}

// Evaluate runs one scenario against one scheme and scores it. bg may
// carry a pre-built s.Background() shared read-only across evaluations
// of the same environment; nil builds a fresh one.
//
// The run stops at the first trip (time-to-trip is the point) and per
// tick tracks the minimum untripped breaker margin, which sim.Result
// alone does not expose. The tick loop is allocation-free after stepper
// construction — BenchmarkEvalTick pins that.
//
// Evaluation runs with the engine's quiescent fast path on: the skip
// contract is bit-identity with per-tick stepping (and a skipped span is
// provably margin-frozen, so the minimum-margin tracking loses nothing),
// which keeps search results and corpus goldens byte-identical while
// long pre-attack stretches collapse. EvaluateNoSkip forces the per-tick
// path for cross-checking.
func Evaluate(s Scenario, schemeName string, bg []*stats.Series) (Outcome, error) {
	return evaluate(s, schemeName, bg, false)
}

// EvaluateNoSkip is Evaluate on the per-tick path, quiescent skipping
// disabled. Search results must not depend on the choice; cmd/padsearch
// exposes it as -no-skip and CI compares the two.
func EvaluateNoSkip(s Scenario, schemeName string, bg []*stats.Series) (Outcome, error) {
	return evaluate(s, schemeName, bg, true)
}

func evaluate(s Scenario, schemeName string, bg []*stats.Series, noSkip bool) (Outcome, error) {
	cfg, scheme, err := s.SimConfig(schemeName, bg)
	if err != nil {
		return Outcome{}, err
	}
	cfg.StopOnTrip = true
	cfg.SkipQuiescent = !noSkip
	st, err := sim.NewStepper(cfg, scheme)
	if err != nil {
		return Outcome{}, err
	}
	defer st.Close()

	minMargin := rackNameplate(s)
	for {
		ok, err := st.Step()
		if err != nil {
			return Outcome{}, err
		}
		if !ok {
			break
		}
		ts := st.Stats()
		if !ts.Tripped && ts.BreakerMargin < minMargin {
			minMargin = ts.BreakerMargin
		}
	}
	res := st.Result()
	o := Outcome{
		Scheme:           schemeName,
		Tripped:          res.Tripped,
		TimeToTripS:      res.SurvivalTime.Seconds(),
		EffectiveAttacks: res.EffectiveAttacks,
		DrainJ:           float64(res.EnergyFromBatteries),
		StealthMarginW:   float64(minMargin),
		Throughput:       res.Throughput,
	}
	o.Score = o.score(s.DurationS, float64(rackNameplate(s)), clusterReserve(s))
	return o, nil
}

// rackNameplate is the peak electrical draw of one rack — the margin
// normalizer. Scenarios always run the default DL585G5 server model.
func rackNameplate(s Scenario) units.Watts {
	return powersim.DL585G5.Peak * units.Watts(s.ServersPerRack)
}

// clusterReserve is the total rack-battery energy in the cluster — the
// drain normalizer.
func clusterReserve(s Scenario) float64 {
	per := battery.SizeForAutonomy(rackNameplate(s), battery.RackCabinetAutonomy, 0, 0)
	return float64(per) * float64(s.Racks)
}

// horizonTicks is the tick count of a scenario run (used by budget
// estimates in cmd/padsearch).
func horizonTicks(s Scenario) int {
	return int(s.Duration() / (time.Duration(s.TickMS) * time.Millisecond))
}
