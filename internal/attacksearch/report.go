package attacksearch

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Report is one search's full output: per-scheme results in search
// order, plus the inputs that reproduce it.
type Report struct {
	// Seed, Budget and Env echo the search configuration.
	Seed    uint64         `json:"seed"`
	Budget  int            `json:"budget"`
	Env     Env            `json:"-"`
	Schemes []SchemeResult `json:"schemes"`
}

// SchemeResult is one scheme's robustness characterization.
type SchemeResult struct {
	// Scheme names the defense.
	Scheme string `json:"scheme"`
	// Best is the highest-scoring attack found (ties break toward the
	// earlier evaluation).
	Best Evaluation `json:"best"`
	// FastestTrip is the tripping attack with the smallest time-to-trip,
	// or nil when no evaluated attack tripped — the scheme held the
	// whole explored space.
	FastestTrip *Evaluation `json:"fastest_trip,omitempty"`
	// MaxStealthDrain is the attack that extracted the most battery
	// energy while staying fully undetected (no trip, zero effective
	// attacks), or nil when every candidate surfaced somehow.
	MaxStealthDrain *Evaluation `json:"max_stealth_drain,omitempty"`
	// MinMarginW is the closest any untripped candidate pushed a feed to
	// its protection limit, in watts.
	MinMarginW float64 `json:"min_margin_w"`
	// Frontier holds the best evaluation per coordination level (groups
	// ascending, levels with no evaluations omitted) — how much each
	// additional phase-locked group buys the attacker against this
	// scheme.
	Frontier []Evaluation `json:"frontier"`
	// Evals lists every evaluation in search order.
	Evals []Evaluation `json:"-"`
}

// finalize derives the summary fields from the evaluation list.
func (sr *SchemeResult) finalize(env Env) {
	byGroups := map[int]int{} // groups → best eval index
	sr.MinMarginW = float64(rackNameplate(Scenario{ServersPerRack: env.ServersPerRack}))
	bestIdx := 0
	for i, ev := range sr.Evals {
		o := ev.Outcome
		if o.Score > sr.Evals[bestIdx].Outcome.Score {
			bestIdx = i
		}
		if o.Tripped && (sr.FastestTrip == nil || o.TimeToTripS < sr.FastestTrip.Outcome.TimeToTripS) {
			sr.FastestTrip = &sr.Evals[i]
		}
		if !o.Tripped && o.EffectiveAttacks == 0 &&
			(sr.MaxStealthDrain == nil || o.DrainJ > sr.MaxStealthDrain.Outcome.DrainJ) {
			sr.MaxStealthDrain = &sr.Evals[i]
		}
		if !o.Tripped && o.StealthMarginW < sr.MinMarginW {
			sr.MinMarginW = o.StealthMarginW
		}
		g := ev.Scenario.Groups
		if j, ok := byGroups[g]; !ok || o.Score > sr.Evals[j].Outcome.Score {
			byGroups[g] = i
		}
	}
	sr.Best = sr.Evals[bestIdx]
	sr.Frontier = sr.Frontier[:0]
	maxGroups := env.Racks
	for g := 1; g <= maxGroups; g++ { // ascending groups, not map order
		if i, ok := byGroups[g]; ok {
			sr.Frontier = append(sr.Frontier, sr.Evals[i])
		}
	}
}

// frontierHeader is the robustness-frontier CSV schema.
const frontierHeader = "scheme,groups,peak,sustain,width_s,spikes_per_min,phase_jitter,ramp_ms,offset_ms," +
	"score,tripped,time_to_trip_s,effective_attacks,drain_kj,stealth_margin_w\n"

// WriteFrontierCSV writes the per-scheme robustness frontier: one row
// per (scheme, coordination level), each the best attack the search
// found at that level. Floats use shortest round-trip formatting, so
// the bytes are a pure function of the search inputs.
func WriteFrontierCSV(w io.Writer, rep *Report) error {
	if _, err := io.WriteString(w, frontierHeader); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, sr := range rep.Schemes {
		for _, ev := range sr.Frontier {
			s, o := ev.Scenario, ev.Outcome
			row := fmt.Sprintf("%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%t,%s,%d,%s,%s\n",
				sr.Scheme, s.Groups,
				g(s.PeakFraction), g(s.SustainFraction), g(s.SpikeWidthMS/1000),
				g(s.SpikesPerMinute), g(s.PhaseJitter), g(s.RampMS), g(s.PhaseOffsetMS),
				g(o.Score), o.Tripped, g(o.TimeToTripS), o.EffectiveAttacks,
				g(o.DrainJ/1000), g(o.StealthMarginW))
			if _, err := io.WriteString(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteEvalsJSONL writes every evaluation of every scheme as one JSON
// document per line, in search order — the raw material for offline
// analysis of how the search moved through the space.
func WriteEvalsJSONL(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	for _, sr := range rep.Schemes {
		for _, ev := range sr.Evals {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summarize renders the human-readable per-scheme summary table.
func Summarize(w io.Writer, rep *Report) error {
	if _, err := fmt.Fprintf(w, "%-6s %8s %8s %7s %12s %14s %14s\n",
		"scheme", "evals", "best", "tripped", "t-to-trip", "stealth-drain", "min-margin"); err != nil {
		return err
	}
	for _, sr := range rep.Schemes {
		trip, drain := "-", "-"
		if sr.FastestTrip != nil {
			trip = fmt.Sprintf("%.1fs", sr.FastestTrip.Outcome.TimeToTripS)
		}
		if sr.MaxStealthDrain != nil {
			drain = fmt.Sprintf("%.1f kJ", sr.MaxStealthDrain.Outcome.DrainJ/1000)
		}
		if _, err := fmt.Fprintf(w, "%-6s %8d %8.4f %7v %12s %14s %12.0f W\n",
			sr.Scheme, len(sr.Evals), sr.Best.Outcome.Score,
			sr.Best.Outcome.Tripped, trip, drain, sr.MinMarginW); err != nil {
			return err
		}
	}
	return nil
}
