package attacksearch

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/stats"
)

// Config shapes one attack search.
type Config struct {
	// Schemes lists the defenses to search against. Empty selects all
	// six (schemes.SchemeNames order).
	Schemes []string
	// Budget is the evaluation budget per scheme. 0 selects 400 — enough
	// for the seeding pass to cover the space and the descent to
	// converge on this space's grid.
	Budget int
	// Seed pins the whole search. Two searches with equal (Seed, Budget,
	// Env, Schemes) produce byte-identical reports at any Workers count.
	Seed uint64
	// Workers bounds evaluation concurrency (runner.Pool semantics:
	// 0 selects GOMAXPROCS, 1 is serial).
	Workers int
	// Env fixes the cluster and attacker environment.
	Env Env
	// NoSkip forces per-tick evaluation, disabling the engine's quiescent
	// fast path. The skip contract is bit-identity, so reports are the
	// same either way; the knob exists to prove that (CI diffs a skip and
	// a no-skip frontier) and to isolate the fast path when debugging.
	NoSkip bool
	// Progress, when non-nil, receives one line per search phase —
	// coarse narration, not per-evaluation spam.
	Progress func(format string, args ...any)
	// Metrics, when non-nil, counts evaluations and trips per scheme.
	Metrics *Metrics
}

// Metrics instruments searches through an obs.Registry.
type Metrics struct {
	evals, trips, best *obs.Family
}

// NewMetrics declares the attack-search metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		evals: reg.Counter("attacksearch_evaluations_total", "Candidate attacks evaluated.", "scheme"),
		trips: reg.Counter("attacksearch_trips_total", "Evaluated attacks that tripped a breaker.", "scheme"),
		best:  reg.Gauge("attacksearch_best_score", "Best attack score found so far.", "scheme"),
	}
}

func (m *Metrics) record(scheme string, o Outcome) {
	if m == nil {
		return
	}
	m.evals.Add(scheme, 1)
	if o.Tripped {
		m.trips.Add(scheme, 1)
	}
}

func (m *Metrics) bestScore(scheme string, score float64) {
	if m != nil {
		m.best.Set(scheme, score)
	}
}

// Evaluation is one scored candidate, in evaluation order.
type Evaluation struct {
	// Scheme names the defense the candidate ran against.
	Scheme string `json:"scheme"`
	// Phase is the search phase that generated the candidate: "seed"
	// (Latin-hypercube) or "descend" (coordinate refinement).
	Phase string `json:"phase"`
	// Index is the candidate's position in the scheme's evaluation order.
	Index int `json:"index"`
	// Scenario is the full candidate attack.
	Scenario Scenario `json:"scenario"`
	// Outcome is its scored result.
	Outcome Outcome `json:"outcome"`
}

// Search explores the attack space against each configured scheme and
// returns the per-scheme robustness report.
//
// Strategy: a Latin-hypercube seeding pass spends three fifths of the
// budget covering the space (stratified per dimension, so no region of
// any single parameter goes unsampled), then coordinate descent spends
// the rest refining the best seed — each round proposes ± one stride
// along every dimension as one batch, moves to the best improvement, and
// halves the stride when a round stalls. Candidate generation is serial;
// only evaluations fan out (runner.Map, results in job order; score ties
// break toward the earlier candidate) — which is the whole determinism
// argument, everything else is pure.
func Search(cfg Config) (*Report, error) {
	if cfg.Budget == 0 {
		cfg.Budget = 400
	}
	if cfg.Budget < 2 {
		return nil, fmt.Errorf("attacksearch: budget %d too small (need ≥ 2)", cfg.Budget)
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = schemes.SchemeNames
	}
	for _, name := range cfg.Schemes {
		if _, err := schemes.ByName(name, schemes.Options{}); err != nil {
			return nil, err
		}
	}
	env := cfg.Env.withDefaults()
	rep := &Report{
		Seed:   cfg.Seed,
		Budget: cfg.Budget,
		Env:    env,
	}
	// One background trace and one scenario seed serve every candidate:
	// sim only ever reads Background series, so the slice is safe to
	// share across concurrent evaluations.
	seed := runner.DeriveSeed(cfg.Seed, "attacksearch/env")
	probe := env.scenario(dims(env), vec{0.9, 1, 4, 0, 100, 1, 0}, seed, cfg.Schemes[0], "probe")
	bg := probe.Background()

	for _, scheme := range cfg.Schemes {
		sr, err := searchScheme(cfg, env, scheme, seed, bg)
		if err != nil {
			return nil, err
		}
		rep.Schemes = append(rep.Schemes, *sr)
	}
	return rep, nil
}

// searchScheme runs the seeding and descent passes against one scheme.
func searchScheme(cfg Config, env Env, scheme string, seed uint64, bg []*stats.Series) (*SchemeResult, error) {
	d := dims(env)
	pool := runner.Pool{Workers: cfg.Workers}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}

	sr := &SchemeResult{Scheme: scheme}
	seen := make(map[string]int) // vec key → evaluation index
	var best *Evaluation

	// evaluate scores a batch of fresh candidates in order and folds them
	// into the result, returning the batch's best evaluation index.
	evaluate := func(phase string, cands []vec) (int, error) {
		jobs := make([]runner.Job[Outcome], 0, len(cands))
		scens := make([]Scenario, 0, len(cands))
		idx := make([]int, 0, len(cands))
		for _, v := range cands {
			k := v.key()
			if _, dup := seen[k]; dup {
				continue
			}
			i := len(sr.Evals)
			seen[k] = i
			name := fmt.Sprintf("%s/%s/%04d", scheme, phase, i)
			scen := env.scenario(d, v, seed, scheme, name)
			scens = append(scens, scen)
			idx = append(idx, i)
			sr.Evals = append(sr.Evals, Evaluation{Scheme: scheme, Phase: phase, Index: i, Scenario: scen})
			jobs = append(jobs, runner.Job[Outcome]{
				Key: name,
				Run: func() (Outcome, error) { return evaluate(scen, scheme, bg, cfg.NoSkip) },
			})
		}
		bestIdx := -1
		for j, r := range runner.Map(pool, jobs) {
			if r.Err != nil {
				return -1, fmt.Errorf("%s: %w", r.Key, r.Err)
			}
			ev := &sr.Evals[idx[j]]
			ev.Outcome = r.Value
			cfg.Metrics.record(scheme, r.Value)
			if best == nil || r.Value.Score > best.Outcome.Score {
				best = ev
				cfg.Metrics.bestScore(scheme, r.Value.Score)
			}
			if bestIdx < 0 || r.Value.Score > sr.Evals[bestIdx].Outcome.Score {
				bestIdx = idx[j]
			}
		}
		return bestIdx, nil
	}

	// Seeding: Latin hypercube. Per dimension, the sample count is split
	// into equal strata and a random permutation assigns one stratum to
	// each sample — uniform marginal coverage with far fewer points than
	// a grid. All randomness comes from one derived stream, drawn in a
	// fixed order.
	seedN := cfg.Budget * 3 / 5
	if seedN < 1 {
		seedN = 1
	}
	rng := stats.NewRNG(runner.DeriveSeed(cfg.Seed, "attacksearch/lhs/"+scheme))
	cands := make([]vec, seedN)
	for dimIdx := 0; dimIdx < numDims; dimIdx++ {
		perm := rng.Perm(seedN)
		for i := 0; i < seedN; i++ {
			dm := d[dimIdx]
			u := (float64(perm[i]) + rng.Float64()) / float64(seedN)
			cands[i][dimIdx] = dm.quant(dm.lo + u*(dm.hi-dm.lo))
		}
	}
	progress("%s: seeding %d Latin-hypercube candidates", scheme, seedN)
	if _, err := evaluate("seed", cands); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("attacksearch: %s: no seed candidate evaluated", scheme)
	}

	// Descent: from the best seed, propose ±stride along each dimension
	// per round; move to the strongest improvement, halve every stride
	// when a round yields none, stop when strides bottom out or the
	// budget runs dry.
	cur := vecOf(best.Scenario)
	stride := [numDims]float64{}
	for i := range stride {
		stride[i] = 16 * d[i].step
		if span := d[i].hi - d[i].lo; stride[i] > span/2 {
			stride[i] = d[i].quant(d[i].lo+span/2) - d[i].lo
			if stride[i] < d[i].step {
				stride[i] = d[i].step
			}
		}
	}
	progress("%s: descending from score %.4f (%s)", scheme, best.Outcome.Score, cur)
	for len(sr.Evals) < cfg.Budget {
		var batch []vec
		for i := 0; i < numDims; i++ {
			for _, dir := range [2]float64{-1, 1} {
				v := cur
				v[i] = d[i].quant(cur[i] + dir*stride[i])
				if v != cur {
					batch = append(batch, v)
				}
			}
		}
		if room := cfg.Budget - len(sr.Evals); len(batch) > room {
			batch = batch[:room]
		}
		before := best.Outcome.Score
		bestIdx, err := evaluate("descend", batch)
		if err != nil {
			return nil, err
		}
		improved := bestIdx >= 0 && sr.Evals[bestIdx].Outcome.Score > before
		if improved {
			cur = vecOf(sr.Evals[bestIdx].Scenario)
			continue
		}
		done := true
		for i := range stride {
			if stride[i] > d[i].step {
				stride[i] /= 2
				if stride[i] < d[i].step {
					stride[i] = d[i].step
				}
				done = false
			}
		}
		if done {
			break
		}
	}

	sr.finalize(env)
	progress("%s: best score %.4f after %d evaluations (tripped=%v, t=%.1fs)",
		scheme, sr.Best.Outcome.Score, len(sr.Evals),
		sr.Best.Outcome.Tripped, sr.Best.Outcome.TimeToTripS)
	return sr, nil
}

// vecOf recovers the grid point a scenario was generated from. Width may
// have been feasibility-clamped during generation, so the recovered
// point is re-quantized; descent then explores from the clamped value,
// which is the value that actually ran.
func vecOf(s Scenario) vec {
	return vec{
		dimPeak:        s.PeakFraction,
		dimWidthS:      s.SpikeWidthMS / 1000,
		dimSPM:         s.SpikesPerMinute,
		dimPhaseJitter: s.PhaseJitter,
		dimRampMS:      s.RampMS,
		dimGroups:      float64(s.Groups),
		dimOffsetMS:    s.PhaseOffsetMS,
	}
}
