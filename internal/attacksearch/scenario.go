// Package attacksearch characterizes each defense scheme's actual
// robustness boundary instead of its behaviour on six canned virus
// profiles: it searches the virus parameter space — spike height, width,
// frequency, phase jitter, ramp time, multi-rack coordination count and
// phase offsets — for the attacks a scheme handles worst, scores every
// candidate on time-to-trip, battery drain and stealth margin, and emits
// a per-scheme robustness frontier. The worst cases found are serialized
// as versioned Scenario documents and checked in under testdata/corpus/,
// where a regression test tier replays them through sim.Run and
// padd.Replay so later engine or scheme changes cannot silently weaken
// the defense against known-worst inputs.
//
// Determinism contract: a search is a pure function of (Config.Seed,
// Config.Budget, Config.Env, scheme list). Candidate generation is
// serial, evaluations fan out through internal/runner with results
// consumed in job order, and every random stream is derived with
// runner.DeriveSeed — so frontier CSV and evaluation JSONL bytes are
// identical at any worker count, exactly like the figure sweeps.
package attacksearch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

// ScenarioVersion is the current serialized scenario format version.
// Bump it when a field changes meaning; Decode rejects versions it does
// not know, so a stale binary fails loudly instead of misreading a
// corpus file.
const ScenarioVersion = 1

// Scenario is one fully specified attack experiment: the cluster
// environment, the parameterized virus, and the coordinated campaign
// layout. It is the search space's candidate representation, the corpus
// serialization format, and the replay input — one document, three uses.
//
// All randomness inside an evaluation derives from Seed: the background
// trace uses DeriveSeed(Seed, "bg") and attack group g uses the campaign
// derivation from Seed, so a scenario file alone reproduces its run.
type Scenario struct {
	// Version is the format version (ScenarioVersion).
	Version int `json:"version"`
	// Name labels the scenario in reports and corpus files.
	Name string `json:"name"`
	// Scheme is the defense the scenario was discovered against.
	Scheme string `json:"scheme"`
	// Seed drives the background trace and the per-group jitter streams.
	Seed uint64 `json:"seed"`

	// Cluster environment.
	Racks          int     `json:"racks"`
	ServersPerRack int     `json:"servers_per_rack"`
	TickMS         int     `json:"tick_ms"`
	DurationS      float64 `json:"duration_s"`
	BGMean         float64 `json:"bg_mean"`

	// Virus profile (parameterized, not one of the canned three).
	PeakFraction    float64 `json:"peak_fraction"`
	SustainFraction float64 `json:"sustain_fraction"`
	RampMS          float64 `json:"ramp_ms"`
	Jitter          float64 `json:"jitter"`

	// Two-phase schedule.
	SpikeWidthMS    float64 `json:"spike_width_ms"`
	SpikesPerMinute float64 `json:"spikes_per_minute"`
	RestFraction    float64 `json:"rest_fraction"`
	PhaseJitter     float64 `json:"phase_jitter"`
	AmplitudeScale  float64 `json:"amplitude_scale"`
	PrepS           float64 `json:"prep_s"`
	PatienceS       float64 `json:"patience_s"`

	// Coordination: Groups phase-locked actor groups, group g occupying
	// the first NodesPerGroup servers of rack g, starting g×PhaseOffsetMS
	// after group 0.
	Groups        int     `json:"groups"`
	NodesPerGroup int     `json:"nodes_per_group"`
	PhaseOffsetMS float64 `json:"phase_offset_ms"`

	// Expect pins the regression outcomes per scheme name. Filled by
	// FillExpectations when a scenario is promoted into the corpus;
	// empty on freshly searched candidates.
	Expect map[string]Expectation `json:"expect,omitempty"`
}

// Expectation is the pinned outcome of replaying a scenario against one
// scheme: the regression contract the corpus tier enforces.
type Expectation struct {
	Tripped          bool    `json:"tripped"`
	TimeToTripS      float64 `json:"time_to_trip_s"`
	EffectiveAttacks int     `json:"effective_attacks"`
}

// finite rejects NaN and ±Inf — every float field passes through here so
// a hostile scenario file cannot smuggle non-finite arithmetic into the
// engine (the same hardening KiBaM and virus configs received in PR 1).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate reports a malformed scenario. Range checks are written in
// accept-range form so NaN fields are rejected rather than slipping past
// both sides of a reject-range comparison; the virus-level checks are
// delegated to the already-hardened virus.CampaignConfig.Validate.
func (s Scenario) Validate() error {
	if s.Version != ScenarioVersion {
		return fmt.Errorf("attacksearch: scenario version %d, this build reads %d", s.Version, ScenarioVersion)
	}
	if len(s.Name) > 256 {
		return fmt.Errorf("attacksearch: scenario name longer than 256 bytes")
	}
	if _, err := schemes.ByName(s.Scheme, schemes.Options{}); err != nil {
		return fmt.Errorf("attacksearch: scenario scheme: %w", err)
	}
	if !(s.Racks >= 1 && s.Racks <= 64) {
		return fmt.Errorf("attacksearch: racks %d out of [1,64]", s.Racks)
	}
	if !(s.ServersPerRack >= 1 && s.ServersPerRack <= 64) {
		return fmt.Errorf("attacksearch: servers per rack %d out of [1,64]", s.ServersPerRack)
	}
	if !(s.TickMS >= 10 && s.TickMS <= 60_000) {
		return fmt.Errorf("attacksearch: tick %d ms out of [10,60000]", s.TickMS)
	}
	if !(s.DurationS > 0 && s.DurationS <= 3600) {
		return fmt.Errorf("attacksearch: duration %v s out of (0,3600]", s.DurationS)
	}
	if ticks := s.DurationS * 1000 / float64(s.TickMS); !(ticks <= 200_000) {
		return fmt.Errorf("attacksearch: %v s at %d ms is %.0f ticks (limit 200000)", s.DurationS, s.TickMS, ticks)
	}
	if !(s.BGMean >= 0 && s.BGMean <= 1) {
		return fmt.Errorf("attacksearch: background mean %v out of [0,1]", s.BGMean)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ramp_ms", s.RampMS},
		{"spike_width_ms", s.SpikeWidthMS},
		{"prep_s", s.PrepS},
		{"patience_s", s.PatienceS},
		{"phase_offset_ms", s.PhaseOffsetMS},
	} {
		if !(f.v >= 0 && f.v <= 86_400_000) {
			return fmt.Errorf("attacksearch: %s %v out of [0,86400000]", f.name, f.v)
		}
	}
	if !(s.Groups >= 1 && s.Groups <= s.Racks) {
		return fmt.Errorf("attacksearch: %d groups out of [1,racks=%d]", s.Groups, s.Racks)
	}
	if !(s.NodesPerGroup >= 1 && s.NodesPerGroup <= s.ServersPerRack) {
		return fmt.Errorf("attacksearch: %d nodes per group out of [1,servers_per_rack=%d]", s.NodesPerGroup, s.ServersPerRack)
	}
	for name, e := range s.Expect {
		if _, err := schemes.ByName(name, schemes.Options{}); err != nil {
			return fmt.Errorf("attacksearch: expectation scheme: %w", err)
		}
		if !(e.TimeToTripS >= 0 && e.TimeToTripS <= s.DurationS) {
			return fmt.Errorf("attacksearch: expectation %s time-to-trip %v out of [0,%v]", name, e.TimeToTripS, s.DurationS)
		}
		if e.EffectiveAttacks < 0 {
			return fmt.Errorf("attacksearch: expectation %s negative effective attacks", name)
		}
	}
	// The virus layer's own validation finishes the job (peak/sustain
	// ordering, jitter ranges, spike-vs-period feasibility, non-finite
	// schedule parameters).
	if _, err := s.Campaign(); err != nil {
		return err
	}
	return nil
}

// Campaign maps the scenario's attack parameters onto the virus layer's
// coordinated campaign model.
func (s Scenario) Campaign() (virus.CampaignConfig, error) {
	c := virus.CampaignConfig{
		Base: virus.Config{
			Profile: virus.Profile{
				Name:            "search",
				PeakFraction:    s.PeakFraction,
				SustainFraction: s.SustainFraction,
				RampTime:        time.Duration(s.RampMS * float64(time.Millisecond)),
				Jitter:          s.Jitter,
			},
			SpikeWidth:      time.Duration(s.SpikeWidthMS * float64(time.Millisecond)),
			SpikesPerMinute: s.SpikesPerMinute,
			RestFraction:    s.RestFraction,
			PrepDuration:    time.Duration(s.PrepS * float64(time.Second)),
			MaxPhaseI:       time.Duration(s.PatienceS * float64(time.Second)),
			PhaseJitter:     s.PhaseJitter,
			AmplitudeScale:  s.AmplitudeScale,
			Seed:            s.Seed,
		},
		Groups:      s.Groups,
		PhaseOffset: time.Duration(s.PhaseOffsetMS * float64(time.Millisecond)),
	}
	if err := c.Validate(); err != nil {
		return virus.CampaignConfig{}, err
	}
	return c, nil
}

// Tick returns the simulation step.
func (s Scenario) Tick() time.Duration { return time.Duration(s.TickMS) * time.Millisecond }

// Duration returns the simulated horizon.
func (s Scenario) Duration() time.Duration {
	return time.Duration(s.DurationS * float64(time.Second))
}

// AttackSpecs builds the campaign's fresh per-group attack controllers
// and their server placements: group g compromises the first
// NodesPerGroup slots of rack g. Controllers are single-run state; call
// this once per sim.Run.
func (s Scenario) AttackSpecs() ([]sim.AttackSpec, error) {
	camp, err := s.Campaign()
	if err != nil {
		return nil, err
	}
	ctrls, err := camp.Build()
	if err != nil {
		return nil, err
	}
	specs := make([]sim.AttackSpec, len(ctrls))
	for g, a := range ctrls {
		servers := make([]int, s.NodesPerGroup)
		for i := range servers {
			servers[i] = g*s.ServersPerRack + i
		}
		specs[g] = sim.AttackSpec{Servers: servers, Attack: a}
	}
	return specs, nil
}

// Background builds the scenario's per-server background utilization
// series. The result is read-only under sim's concurrency contract and
// may be shared by every run of the same scenario environment.
func (s Scenario) Background() []*stats.Series {
	return stats.NoisyUtilization(s.Racks*s.ServersPerRack, s.BGMean,
		s.Duration(), 10*time.Second, runner.DeriveSeed(s.Seed, "attacksearch/bg"))
}

// SimConfig assembles the engine configuration for running this scenario
// against the named scheme. bg may carry a pre-built Background() result
// shared across runs; nil builds one. The returned config records
// nothing and does not stop on trip — callers layer their own policy on
// top (Evaluate stops on trip, the corpus replay runs the full horizon).
func (s Scenario) SimConfig(schemeName string, bg []*stats.Series) (sim.Config, sim.Scheme, error) {
	scheme, err := schemes.ByName(schemeName, schemes.Options{ServersPerRack: s.ServersPerRack})
	if err != nil {
		return sim.Config{}, nil, err
	}
	specs, err := s.AttackSpecs()
	if err != nil {
		return sim.Config{}, nil, err
	}
	if bg == nil {
		bg = s.Background()
	}
	cfg := sim.Config{
		Key:            "attacksearch/" + s.Name + "/" + schemeName,
		Racks:          s.Racks,
		ServersPerRack: s.ServersPerRack,
		Tick:           s.Tick(),
		Duration:       s.Duration(),
		Background:     bg,
		Attacks:        specs,
	}
	if schemes.NeedsMicroDEB(schemeName) {
		cfg.MicroDEBFactory = schemes.MicroDEBFactory(0.01)
	}
	return cfg, scheme, nil
}

// Encode writes the scenario as canonical indented JSON with a trailing
// newline — the corpus file format. Encoding is deterministic (Go
// marshals struct fields in declaration order and map keys sorted), so
// corpus diffs stay reviewable.
func (s Scenario) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// DecodeScenario parses and validates one scenario document. Unknown
// fields are rejected — a corpus file from a newer format version fails
// here rather than silently dropping the fields this build cannot see —
// and the scenario must pass Validate before it is returned.
func DecodeScenario(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("attacksearch: decode scenario: %w", err)
	}
	// A corpus file holds exactly one document.
	if dec.More() {
		return Scenario{}, fmt.Errorf("attacksearch: trailing data after scenario document")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadScenario reads one scenario file.
func LoadScenario(path string) (Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	s, err := DecodeScenario(bytes.NewReader(b))
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteScenario writes one scenario file in the canonical encoding.
func WriteScenario(path string, s Scenario) error {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
