package experiments

import (
	"testing"
	"time"
)

func TestAblationPIdealTradeoff(t *testing.T) {
	r, err := AblationPIdeal(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// The bound's purpose: a tight PIdeal caps the per-battery discharge
	// rate (aging protection); loosening it raises the observed peak rate.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.Extra < first.Extra {
		t.Fatalf("loose PIdeal peak discharge (%v W) should be >= tight (%v W)",
			last.Extra, first.Extra)
	}
	// The tight bound must actually bind: peak rate stays at or under
	// 0.1x nameplate (+tolerance for the final partial tick).
	if first.Extra > 521*10*0.1*1.01 {
		t.Fatalf("tight bound did not bind: peak %v W", first.Extra)
	}
}

func TestAblationGovernorLatencyHurts(t *testing.T) {
	r, err := AblationGovernor(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Fast monitoring survives at least as long as 5-minute monitoring.
	var fast, slow time.Duration
	for _, pt := range r.Points {
		if pt.X == 2 {
			fast = pt.Survival
		}
		if pt.X == 300 {
			slow = pt.Survival
		}
	}
	if fast < slow {
		t.Fatalf("2s monitoring (%v) should beat 5min monitoring (%v)", fast, slow)
	}
}

func TestAblationChargingUnderAttack(t *testing.T) {
	r, err := AblationCharging(quick)
	if err != nil {
		t.Fatal(err)
	}
	var online, offline time.Duration
	for _, pt := range r.Points {
		switch pt.Label {
		case "online":
			online = pt.Survival
		case "offline":
			offline = pt.Survival
		}
	}
	if online == 0 || offline == 0 {
		t.Fatal("missing points")
	}
	if online < offline {
		t.Fatalf("online charging (%v) should not trail offline (%v)", online, offline)
	}
}

func TestAblationDetectors(t *testing.T) {
	r, err := AblationDetectors(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, pt := range r.Points {
		if pt.X < 0 || pt.X > 1 || pt.Extra < 0 || pt.Extra > 1 {
			t.Fatalf("rates out of range: %+v", pt)
		}
	}
	// Both families catch the loud full-height trains outright.
	for _, pt := range r.Points[:2] {
		if pt.X < 0.9 || pt.Extra < 0.9 {
			t.Fatalf("loud train under-detected: %+v", pt)
		}
	}
	// The stealth train still registers on both, with the per-spike
	// attribution penalty of CUSUM's accumulation delay visible.
	split := r.Points[2]
	if split.X == 0 || split.Extra == 0 {
		t.Fatalf("stealth train missed entirely: %+v", split)
	}
}

func TestAblationPlacementCost(t *testing.T) {
	r, err := AblationPlacement(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Higher occupancy never makes the hunt cheaper for a given policy.
	byPolicy := map[string]map[float64]float64{}
	for _, pt := range r.Points {
		if byPolicy[pt.Label] == nil {
			byPolicy[pt.Label] = map[float64]float64{}
		}
		byPolicy[pt.Label][pt.X] = pt.Extra
	}
	for policy, m := range byPolicy {
		if m[0.4] <= 0 {
			t.Errorf("%s: no probes recorded", policy)
		}
	}
}

func TestAblationTopology(t *testing.T) {
	r, err := AblationTopology(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Central UPS pays the most conversion loss; per-node DEB the least.
	if r.Points[0].Extra <= r.Points[3].Extra {
		t.Fatalf("central UPS loss (%v) should exceed per-node DEB (%v)",
			r.Points[0].Extra, r.Points[3].Extra)
	}
}

func TestAblationGranularity(t *testing.T) {
	r, err := AblationGranularity(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Both deployments must actually use their batteries and survive a
	// comparable stretch: the granularities hold the same total energy.
	for _, pt := range r.Points {
		if pt.Extra <= 0 {
			t.Errorf("%s: no battery energy used", pt.Label)
		}
		if pt.Survival <= 0 {
			t.Errorf("%s: no survival recorded", pt.Label)
		}
	}
	a, b := r.Points[0].Survival, r.Points[1].Survival
	hi, lo := a, b
	if lo > hi {
		hi, lo = lo, hi
	}
	if float64(lo) < 0.5*float64(hi) {
		t.Fatalf("granularities diverge implausibly: %v vs %v", a, b)
	}
}

func TestAblationJitter(t *testing.T) {
	r, err := AblationJitter(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	regular := r.Points[0].Extra
	heavy := r.Points[2].Extra
	if regular == 0 {
		t.Fatal("the regular schedule should trip the periodicity detector")
	}
	if heavy >= regular {
		t.Fatalf("heavy jitter (%v flags) should evade the regular schedule's %v",
			heavy, regular)
	}
}
