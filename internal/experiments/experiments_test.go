package experiments

import (
	"testing"
	"time"
)

// Every test runs in Quick mode and asserts the qualitative shape the
// paper reports; absolute numbers are covered by EXPERIMENTS.md.

var quick = Params{Quick: true}

func TestFig1CDFShape(t *testing.T) {
	r, err := Fig1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.USD) == 0 {
		t.Fatal("no CDF points")
	}
	// Monotone non-decreasing and ending near 1.
	for i := 1; i < len(r.CumulativeP); i++ {
		if r.CumulativeP[i] < r.CumulativeP[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if last := r.CumulativeP[len(r.CumulativeP)-1]; last < 0.85 {
		t.Fatalf("CDF should approach 1 by $100, got %v", last)
	}
	// Figure 1's anchor: a substantial share of outages exceed $10/sqm/min.
	var p10 float64
	for i, usd := range r.USD {
		if usd == 10 {
			p10 = r.CumulativeP[i]
		}
	}
	if 1-p10 < 0.3 {
		t.Fatalf("share above $10 = %v, want >= 0.3", 1-p10)
	}
}

func TestFig5OfflineChargingWorsensSpread(t *testing.T) {
	r, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	on, off := r.Online.Mean(), r.Offline.Mean()
	if on <= 0 {
		t.Fatal("online spread should be positive (uneven usage exists)")
	}
	if off <= on {
		t.Fatalf("offline charging should worsen SOC spread: online %v vs offline %v", on, off)
	}
	// Spreads are plausible percentages (the paper reports 3-12% online).
	if on > 40 || off > 60 {
		t.Fatalf("spreads implausibly large: %v / %v", on, off)
	}
}

func TestFig6TwoPhaseShape(t *testing.T) {
	r, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.PhaseIIStart == 0 {
		t.Fatal("attack never reached Phase II")
	}
	if r.LearnedDrain == 0 {
		t.Fatal("attacker learned nothing about the battery")
	}
	// The battery drains substantially during Phase I.
	socAtPhaseII := r.SOC.At(r.PhaseIIStart)
	if socAtPhaseII > 80 {
		t.Fatalf("battery barely drained by Phase II: %v%%", socAtPhaseII)
	}
	// Malicious load shows sustained high level in Phase I...
	midPhaseI := r.MaliciousLoad.At(r.PhaseIIStart / 2)
	if midPhaseI < 80 {
		t.Fatalf("Phase I malicious load = %v%%, want sustained high", midPhaseI)
	}
	// ...and the Phase II trace contains both spikes and low rest periods.
	var hi, lo int
	for _, v := range r.MaliciousLoad.Values[int(r.PhaseIIStart/r.Step):] {
		if v > 90 {
			hi++
		}
		if v < 50 {
			lo++
		}
	}
	if hi == 0 || lo == 0 {
		t.Fatalf("Phase II lacks spike structure: hi=%d lo=%d", hi, lo)
	}
}

func TestFig7EffectiveAttacks(t *testing.T) {
	r, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.EffectiveAttacks == 0 {
		t.Fatal("no effective attacks against a drained rack")
	}
	// Not every spike succeeds: the draw trace must also dip below the
	// limit (failed attempts / rest periods).
	below := 0
	for _, v := range r.Draw.Values {
		if v < float64(r.Limit) {
			below++
		}
	}
	if below == 0 {
		t.Fatal("draw never below limit: attack should not be trivially effective")
	}
}

func TestFig8AMoreNodesMoreAttacks(t *testing.T) {
	r, err := Fig8A(quick)
	if err != nil {
		t.Fatal(err)
	}
	sum := map[string]map[float64]int{} // profile -> nodes -> total over tolerances
	tolSum := map[float64]int{}         // tolerance -> total
	for _, pt := range r.Points {
		if sum[pt.Profile] == nil {
			sum[pt.Profile] = map[float64]int{}
		}
		sum[pt.Profile][pt.X] += pt.EffectiveAttacks
		tolSum[pt.Tolerance] += pt.EffectiveAttacks
	}
	// Four nodes beat one node for every profile.
	for prof, byNodes := range sum {
		if byNodes[4] <= byNodes[1] {
			t.Errorf("%s: 4 nodes (%d) should beat 1 node (%d)",
				prof, byNodes[4], byNodes[1])
		}
	}
	// Tighter tolerance admits more effective attacks.
	if tolSum[0.04] <= tolSum[0.16] {
		t.Errorf("4%% overshoot (%d) should see more attacks than 16%% (%d)",
			tolSum[0.04], tolSum[0.16])
	}
	// CPU viruses out-attack IO viruses.
	cpuTotal, ioTotal := 0, 0
	for _, n := range sum["CPU"] {
		cpuTotal += n
	}
	for _, n := range sum["IO"] {
		ioTotal += n
	}
	if cpuTotal <= ioTotal {
		t.Errorf("CPU total (%d) should exceed IO total (%d)", cpuTotal, ioTotal)
	}
}

func TestFig8BWiderSpikesMoreAttacks(t *testing.T) {
	r, err := Fig8B(quick)
	if err != nil {
		t.Fatal(err)
	}
	byWidth := map[float64]int{}
	for _, pt := range r.Points {
		byWidth[pt.X] += pt.EffectiveAttacks
	}
	if byWidth[4] <= byWidth[1] {
		t.Fatalf("4s spikes (%d) should beat 1s spikes (%d)", byWidth[4], byWidth[1])
	}
}

func TestFig8CFrequencyAndBudget(t *testing.T) {
	r, err := Fig8C(quick)
	if err != nil {
		t.Fatal(err)
	}
	byFreq := map[float64]int{}
	byRatio := map[float64]int{}
	for _, pt := range r.Points {
		byFreq[pt.X] += pt.EffectiveAttacks
		byRatio[pt.Tolerance] += pt.EffectiveAttacks
	}
	if byFreq[6] <= byFreq[1] {
		t.Fatalf("6/min (%d) should beat 1/min (%d)", byFreq[6], byFreq[1])
	}
	// A tighter budget admits more effective attacks than a generous one.
	if byRatio[0.70] <= byRatio[0.85] {
		t.Fatalf("70%% budget (%d) should see more attacks than 85%% (%d)",
			byRatio[0.70], byRatio[0.85])
	}
}

func TestTable1DetectionShape(t *testing.T) {
	r, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate by (width, perMin) for the single-server full-height rows.
	agg := func(width time.Duration, perMin float64) float64 {
		sum, n := 0.0, 0
		for _, c := range r.Cells {
			if c.Servers == 1 && c.Width == width && c.PerMinute == perMin {
				sum += c.DetectionRate
				n++
			}
		}
		return sum / float64(n)
	}
	narrowSparse := agg(time.Second, 1)
	wideDense := agg(4*time.Second, 6)
	if wideDense <= narrowSparse {
		t.Fatalf("wide+dense (%v) should be more detectable than narrow+sparse (%v)",
			wideDense, narrowSparse)
	}
	// Amplitude splitting hides the four-server attack from the meters
	// relative to full height at the same width/frequency.
	var fullSum, splitSum float64
	for _, c := range r.Cells {
		if c.Servers == 4 && c.Scale == 1 {
			fullSum += c.DetectionRate
		}
		if c.Servers == 4 && c.Scale != 1 {
			splitSum += c.DetectionRate
		}
	}
	if splitSum >= fullSum {
		t.Fatalf("split amplitude (%v) should evade better than full (%v)",
			splitSum, fullSum)
	}
}

func TestFig12TraceShapes(t *testing.T) {
	r, err := Fig12(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dense.Mean() <= r.Sparse.Mean() {
		t.Fatal("dense attack should carry more average load than sparse")
	}
	if r.Dense.Max() < 0.9 || r.Sparse.Max() < 0.9 {
		t.Fatal("both traces should reach high spikes")
	}
}

func TestFig13PADBalancesTheMap(t *testing.T) {
	r, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.PADSpread >= r.ConvSpread {
		t.Fatalf("PAD spread (%v) should be below conventional (%v)",
			r.PADSpread, r.ConvSpread)
	}
	if r.PADMinSOC <= r.ConvMinSOC {
		t.Fatalf("PAD worst rack (%v) should beat conventional (%v)",
			r.PADMinSOC, r.ConvMinSOC)
	}
}

func TestFig14SheddingBounded(t *testing.T) {
	r, err := Fig14(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxShedRatio == 0 {
		t.Fatal("PAD never shed under periodic surges")
	}
	if r.MaxShedRatio > 0.031 {
		t.Fatalf("shed ratio %v exceeds the 3%% bound", r.MaxShedRatio)
	}
}

func TestFig15SurvivalOrdering(t *testing.T) {
	r, err := Fig15(quick)
	if err != nil {
		t.Fatal(err)
	}
	avg := r.AvgSurvival
	// The paper's ordering: Conv weakest; PS and uDEB close with uDEB
	// ahead; vDEB ahead of both; PAD the strongest.
	if !(avg["Conv"] < avg["PS"]) {
		t.Errorf("PS (%v) should outlive Conv (%v)", avg["PS"], avg["Conv"])
	}
	if !(avg["PS"] <= avg["uDEB"]) {
		t.Errorf("uDEB (%v) should outlive PS (%v)", avg["uDEB"], avg["PS"])
	}
	if !(avg["uDEB"] < avg["vDEB"]) {
		t.Errorf("vDEB (%v) should outlive uDEB (%v)", avg["vDEB"], avg["uDEB"])
	}
	if !(avg["PAD"] > avg["vDEB"]) || !(avg["PAD"] >= avg["PSPC"]) {
		t.Errorf("PAD (%v) should be the longest (vDEB %v, PSPC %v)",
			avg["PAD"], avg["vDEB"], avg["PSPC"])
	}
	if r.PADvsConv < 1.6 {
		t.Errorf("PAD/Conv = %v, want within the paper's 1.6-11x+ band", r.PADvsConv)
	}
	if r.PADvsBestPrior < 1.0 {
		t.Errorf("PAD/BestPrior = %v, PAD must at least match the best prior art", r.PADvsBestPrior)
	}
	// Dense attacks are at least as damaging as sparse ones.
	byScenario := map[string]time.Duration{}
	for _, c := range r.Cells {
		byScenario[c.Scenario] += c.Survival
	}
	if byScenario["Dense"] > byScenario["Sparse"] {
		t.Errorf("dense attacks (%v total) should not be gentler than sparse (%v)",
			byScenario["Dense"], byScenario["Sparse"])
	}
}

func TestFig16ThroughputOrdering(t *testing.T) {
	r, err := Fig16A(quick)
	if err != nil {
		t.Fatal(err)
	}
	mean := map[string]float64{}
	count := map[string]int{}
	var worstRatePAD, worstRateConv float64 = 1, 1
	for _, pt := range r.Points {
		mean[pt.Scheme] += pt.Throughput
		count[pt.Scheme]++
		if pt.Scheme == "PAD" && pt.Throughput < worstRatePAD {
			worstRatePAD = pt.Throughput
		}
		if pt.Scheme == "Conv" && pt.Throughput < worstRateConv {
			worstRateConv = pt.Throughput
		}
	}
	for k := range mean {
		mean[k] /= float64(count[k])
	}
	if mean["PAD"] <= mean["Conv"] {
		t.Errorf("PAD mean throughput (%v) should beat Conv (%v)", mean["PAD"], mean["Conv"])
	}
	if mean["PAD"] < mean["PSPC"]-0.01 {
		t.Errorf("PAD (%v) should not trail PSPC (%v) materially", mean["PAD"], mean["PSPC"])
	}
	// The paper: PAD keeps degradation under ~5%; Conv loses more.
	if worstRatePAD < 0.95 {
		t.Errorf("PAD worst-case throughput %v, want >= 0.95", worstRatePAD)
	}
	if worstRateConv > worstRatePAD {
		t.Errorf("Conv (%v) should be hit harder than PAD (%v)", worstRateConv, worstRatePAD)
	}
}

func TestFig16BWidthHurts(t *testing.T) {
	r, err := Fig16B(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Conv at the widest spike loses at least as much as at the narrowest.
	var narrow, wide float64
	for _, pt := range r.Points {
		if pt.Scheme != "Conv" {
			continue
		}
		if pt.X == 0.2 {
			narrow = pt.Throughput
		}
		if pt.X == 0.6 {
			wide = pt.Throughput
		}
	}
	if wide > narrow+0.005 {
		t.Errorf("wider spikes should not improve Conv throughput: %v vs %v", wide, narrow)
	}
}

func TestFig17CapacityBuysSurvival(t *testing.T) {
	r, err := Fig17(quick)
	if err != nil {
		t.Fatal(err)
	}
	first := r.Points[0]
	last := r.Points[len(r.Points)-1]
	if last.Survival <= first.Survival {
		t.Fatalf("more μDEB capacity should buy survival: %v -> %v",
			first.Survival, last.Survival)
	}
	if last.NormalizedSurvival < 2 {
		t.Fatalf("normalized survival gain %v, want the dramatic knee (>2x in quick mode)",
			last.NormalizedSurvival)
	}
	// Cost grows linearly with capacity.
	if last.CostRatio <= first.CostRatio {
		t.Fatal("cost ratio should grow with capacity")
	}
	ratio := (last.CostRatio / first.CostRatio) / (last.Fraction / first.Fraction)
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("cost should be linear in capacity, got nonlinearity factor %v", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if a.EffectiveAttacks != b.EffectiveAttacks {
		t.Fatal("experiments are not deterministic")
	}
	for i := range a.Draw.Values {
		if a.Draw.Values[i] != b.Draw.Values[i] {
			t.Fatalf("draw traces diverge at %d", i)
		}
	}
}

func TestSeedChangesResults(t *testing.T) {
	a, err := Fig7(Params{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(Params{Quick: true, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Draw.Values {
		if a.Draw.Values[i] != b.Draw.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}
