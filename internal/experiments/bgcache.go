package experiments

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// Background-trace cache. A six-scheme comparison sweep runs dozens of
// jobs over the same background workload, and several drivers used to
// rebuild the full per-server series set inside every job. The
// generators are pure functions of their arguments, so identical
// argument tuples always produce identical series — the cache builds
// each distinct background once per process and hands every subsequent
// caller the same read-only slice. That is safe under the package's
// concurrency contract: Config.Background is the one sanctioned shared
// input, and the engine only ever reads it. Because the cached series
// are bitwise the very values the generator would have returned, sweep
// output is byte-identical with and without the cache.
//
// The key spells out the full argument tuple of every generator; unused
// fields stay zero for generators with fewer knobs, and kind keeps
// different generators with coinciding numeric arguments apart.
type bgKey struct {
	kind       string
	servers    int
	lo, hi     float64
	horizon    time.Duration
	step       time.Duration
	seed       uint64
	surge      bool
	burstEvery time.Duration
	burstLen   time.Duration
	burstBoost float64
}

// bgEntry carries the singleflight for one key: the first caller builds
// under the Once while latecomers for the same key block only on that
// entry, not on the whole cache.
type bgEntry struct {
	once   sync.Once
	series []*stats.Series
	err    error
}

var bgCache struct {
	mu sync.Mutex
	m  map[bgKey]*bgEntry
}

// cachedBackground returns the series for key, building them at most
// once per process via build.
func cachedBackground(key bgKey, build func() ([]*stats.Series, error)) ([]*stats.Series, error) {
	bgCache.mu.Lock()
	if bgCache.m == nil {
		bgCache.m = make(map[bgKey]*bgEntry)
	}
	e := bgCache.m[key]
	if e == nil {
		e = &bgEntry{}
		bgCache.m[key] = e
	}
	bgCache.mu.Unlock()
	e.once.Do(func() { e.series, e.err = build() })
	return e.series, e.err
}

// ResetBackgroundCache drops every cached background trace. Long-lived
// processes that sweep many disjoint configurations can call it between
// sweeps to release the memory; results are unaffected because the
// generators are deterministic.
func ResetBackgroundCache() {
	bgCache.mu.Lock()
	bgCache.m = nil
	bgCache.mu.Unlock()
}

func cachedTraceBackground(servers int, horizon, step time.Duration, seed uint64, surge bool) ([]*stats.Series, error) {
	return cachedBackground(
		bgKey{kind: "trace", servers: servers, horizon: horizon, step: step, seed: seed, surge: surge},
		func() ([]*stats.Series, error) {
			return traceBackground(servers, horizon, step, seed, surge)
		})
}

func cachedRampBackground(servers int, lo, hi float64, horizon time.Duration, seed uint64) []*stats.Series {
	out, _ := cachedBackground(
		bgKey{kind: "ramp", servers: servers, lo: lo, hi: hi, horizon: horizon, seed: seed},
		func() ([]*stats.Series, error) {
			return rampBackground(servers, lo, hi, horizon, seed), nil
		})
	return out
}

func cachedBurstyRampBackground(servers int, lo, hi float64, horizon time.Duration,
	seed uint64, burstEvery, burstLen time.Duration, burstBoost float64) []*stats.Series {
	out, _ := cachedBackground(
		bgKey{
			kind: "burstyRamp", servers: servers, lo: lo, hi: hi, horizon: horizon, seed: seed,
			burstEvery: burstEvery, burstLen: burstLen, burstBoost: burstBoost,
		},
		func() ([]*stats.Series, error) {
			return burstyRampBackground(servers, lo, hi, horizon, seed, burstEvery, burstLen, burstBoost), nil
		})
	return out
}

func cachedFlatNoisyBackground(servers int, mean float64, horizon time.Duration, seed uint64) []*stats.Series {
	out, _ := cachedBackground(
		bgKey{kind: "flatNoisy", servers: servers, lo: mean, hi: mean, horizon: horizon, seed: seed},
		func() ([]*stats.Series, error) {
			return flatNoisyBackground(servers, mean, horizon, seed), nil
		})
	return out
}

func cachedFineNoisyBackground(servers int, mean float64, horizon time.Duration, seed uint64) []*stats.Series {
	out, _ := cachedBackground(
		bgKey{kind: "fineNoisy", servers: servers, lo: mean, hi: mean, horizon: horizon, seed: seed},
		func() ([]*stats.Series, error) {
			return fineNoisyBackground(servers, mean, horizon, seed), nil
		})
	return out
}
