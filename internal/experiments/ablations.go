package experiments

import (
	"fmt"
	"time"

	"repro/internal/battery"
	"repro/internal/cost"
	"repro/internal/metering"
	"repro/internal/placement"
	"repro/internal/powersim"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/virus"
)

// Ablations probe the design choices DESIGN.md calls out: Algorithm 1's
// PIdeal bound, the software-capping monitoring latency, the charging
// policy, the detector family, the scheduler's effect on attack
// preparation cost, and the backup topology's efficiency rationale.

// AblationPoint is one (x, metrics...) sample of an ablation sweep.
type AblationPoint struct {
	Label    string
	X        float64
	Survival time.Duration
	Extra    float64
}

// AblationResult bundles a sweep with its rendered table.
type AblationResult struct {
	Points []AblationPoint
	Table  *report.Table
}

// ablationSurvivalRun executes a standard Fig15-style dense attack
// against one scheme configuration and reports survival.
func ablationSurvivalRun(p Params, key string, mk func() sim.Scheme, micro bool, horizon time.Duration) (*sim.Result, error) {
	racks := scaleInt(p, 12, 6)
	const spr = 10
	bg := cachedBurstyRampBackground(racks*spr, 0.48, 0.78, horizon, p.seed()+61,
		3*time.Minute, 20*time.Second, 0.15)
	cfg := sim.Config{
		Key:                key,
		Racks:              racks,
		ServersPerRack:     spr,
		Tick:               200 * time.Millisecond,
		Duration:           horizon,
		OvershootTolerance: 0.04,
		Background:         bg,
		StopOnTrip:         true,
		Attack: attackSpec(4, virus.Config{
			Profile:         virus.CPUIntensive,
			SpikeWidth:      4 * time.Second,
			SpikesPerMinute: 6,
			PrepDuration:    time.Minute,
			MaxPhaseI:       3 * time.Minute,
			Seed:            p.seed(),
		}),
	}
	if micro {
		cfg.MicroDEBFactory = microFactory(defaultMicroFraction)
	}
	return sim.Run(cfg, mk())
}

// AblationPIdeal sweeps Algorithm 1's per-rack discharge bound. A tight
// bound protects batteries from accelerated aging but limits how much
// duty the pool can shift; a loose bound buys survival at the price of
// deep per-battery currents.
func AblationPIdeal(p Params) (*AblationResult, error) {
	horizon := scaleDur(p, 40*time.Minute, 15*time.Minute)
	fractions := []float64{0.1, 0.25, 0.5, 1.0} // of rack nameplate
	out := &AblationResult{}
	tbl := report.NewTable(
		"Ablation — Algorithm 1 PIdeal bound (vDEB scheme, dense attack)",
		"PIdeal(xNameplate)", "Survival(s)", "MaxRackDischarge(W)")
	var jobs []runner.Job[*sim.Result]
	for _, f := range fractions {
		key := fmt.Sprintf("ablation/pideal/f=%g", f)
		jobs = append(jobs, runner.Job[*sim.Result]{
			Key: key,
			Run: func() (*sim.Result, error) {
				pi := units.Watts(521 * 10 * f)
				return ablationSurvivalRun(p, key, func() sim.Scheme {
					return schemes.NewVDEB(schemes.Options{PIdeal: pi})
				}, false, horizon)
			},
		})
	}
	results, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	for i, f := range fractions {
		res := results[i]
		out.Points = append(out.Points, AblationPoint{
			Label: "vDEB", X: f, Survival: res.SurvivalTime,
			Extra: float64(res.MaxRackDischarge),
		})
		tbl.AddRow(f, res.SurvivalTime.Seconds(), float64(res.MaxRackDischarge))
	}
	out.Table = tbl
	return out, nil
}

// AblationGovernor sweeps the software-capping monitoring constant: the
// coarser the monitoring, the later PSPC's caps arrive and the earlier
// fast excursions kill it — the latency argument at the heart of the
// paper's case for hardware defenses.
func AblationGovernor(p Params) (*AblationResult, error) {
	horizon := scaleDur(p, 40*time.Minute, 15*time.Minute)
	taus := []time.Duration{2 * time.Second, 15 * time.Second, 60 * time.Second, 5 * time.Minute}
	out := &AblationResult{}
	tbl := report.NewTable(
		"Ablation — capping monitoring latency (PSPC scheme, dense attack)",
		"MonitoringTau", "Survival(s)", "Throughput")
	var jobs []runner.Job[*sim.Result]
	for _, tau := range taus {
		key := fmt.Sprintf("ablation/governor/tau=%v", tau)
		jobs = append(jobs, runner.Job[*sim.Result]{
			Key: key,
			Run: func() (*sim.Result, error) {
				return ablationSurvivalRun(p, key, func() sim.Scheme {
					s := schemes.NewPSPC(schemes.Options{})
					s.SetMonitoringTau(tau)
					return s
				}, false, horizon)
			},
		})
	}
	results, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	for i, tau := range taus {
		res := results[i]
		out.Points = append(out.Points, AblationPoint{
			Label: tau.String(), X: tau.Seconds(),
			Survival: res.SurvivalTime, Extra: res.Throughput,
		})
		tbl.AddRow(tau.String(), res.SurvivalTime.Seconds(), res.Throughput)
	}
	out.Table = tbl
	return out, nil
}

// AblationCharging contrasts online and offline charging under attack:
// the offline fleet enters the attack with uneven batteries and dies
// sooner — the Figure 5 observation carried to its consequence.
func AblationCharging(p Params) (*AblationResult, error) {
	horizon := scaleDur(p, 40*time.Minute, 15*time.Minute)
	out := &AblationResult{}
	tbl := report.NewTable(
		"Ablation — charging policy under attack (PS scheme)",
		"Charging", "Survival(s)")
	var jobs []runner.Job[*sim.Result]
	for _, offline := range []bool{false, true} {
		key := fmt.Sprintf("ablation/charging/offline=%v", offline)
		jobs = append(jobs, runner.Job[*sim.Result]{
			Key: key,
			Run: func() (*sim.Result, error) {
				return ablationSurvivalRun(p, key, func() sim.Scheme {
					return schemes.NewPS(schemes.Options{Offline: offline, OfflineThreshold: 0.15})
				}, false, horizon)
			},
		})
	}
	results, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	for i, offline := range []bool{false, true} {
		res := results[i]
		label := "online"
		if offline {
			label = "offline"
		}
		out.Points = append(out.Points, AblationPoint{
			Label: label, Survival: res.SurvivalTime,
		})
		tbl.AddRow(label, res.SurvivalTime.Seconds())
	}
	out.Table = tbl
	return out, nil
}

// AblationDetectors compares the per-interval threshold detector against
// the CUSUM change detector on the Table-1 attack traces. The per-spike
// rates expose CUSUM's localization tradeoff: its flags can lag the spike
// that caused them by a few intervals (accumulation delay), so it scores
// lower on per-spike attribution even while it is more sensitive to
// persistent sub-threshold excess (see the unit tests in
// internal/metering).
func AblationDetectors(p Params) (*AblationResult, error) {
	horizon := scaleDur(p, 15*time.Minute, 4*time.Minute)
	out := &AblationResult{}
	tbl := report.NewTable(
		"Ablation — threshold vs CUSUM detection (5 s metering)",
		"Attack", "Threshold", "CUSUM")
	shapes := []struct {
		label  string
		width  time.Duration
		perMin float64
		scale  float64
	}{
		{"1s/1min full", time.Second, 1, 1},
		{"4s/6min full", 4 * time.Second, 6, 1},
		{"4s/6min split", 4 * time.Second, 6, 0.25},
	}
	const interval = 5 * time.Second
	type shapeRun struct {
		rec      *sim.Recording
		spikes   []time.Duration
		baseline units.Watts
	}
	var jobs []runner.Job[shapeRun]
	for _, sh := range shapes {
		key := "ablation/detectors/" + sh.label
		jobs = append(jobs, runner.Job[shapeRun]{
			Key: key,
			Run: func() (shapeRun, error) {
				rec, spikes, baseline, err := table1Run(p, key, 4, sh.scale, sh.width, sh.perMin, horizon)
				if err != nil {
					return shapeRun{}, err
				}
				return shapeRun{rec: rec, spikes: spikes, baseline: baseline}, nil
			},
		})
	}
	runs, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	for i, sh := range shapes {
		run := runs[i]
		thRate := meterAndDetect(run.rec, run.spikes, run.baseline, interval, p.seed())
		cuRate := meterAndDetectCUSUM(run.rec, run.spikes, run.baseline, interval, p.seed())
		out.Points = append(out.Points, AblationPoint{
			Label: sh.label, X: thRate, Extra: cuRate,
		})
		tbl.AddRow(sh.label, fmt.Sprintf("%.1f%%", thRate*100), fmt.Sprintf("%.1f%%", cuRate*100))
	}
	out.Table = tbl
	return out, nil
}

// meterAndDetectCUSUM is meterAndDetect with the CUSUM detector.
func meterAndDetectCUSUM(rec *sim.Recording, spikes []time.Duration,
	baseline units.Watts, interval time.Duration, seed uint64) float64 {
	meter, err := metering.NewMeter(interval, 25, seed)
	if err != nil {
		return 0
	}
	det := metering.NewCUSUMDetector(baseline)
	var flagged []metering.IntervalReading
	for _, v := range rec.RackDraw[0].Values {
		for _, r := range meter.Record(units.Watts(v), rec.Step) {
			if det.Observe(r) {
				flagged = append(flagged, r)
			}
		}
	}
	return metering.DetectionRate(spikes, flagged, interval)
}

// AblationPlacement measures the preparation phase's cost: how many probe
// VMs the attacker burns to land four servers on one rack, by scheduler
// policy and occupancy. A spread scheduler and a busy cluster multiply
// the attack's up-front cost.
func AblationPlacement(p Params) (*AblationResult, error) {
	trials := scaleInt(p, 20, 6)
	out := &AblationResult{}
	tbl := report.NewTable(
		"Ablation — attack preparation cost (probes to land 4 servers on one rack)",
		"Policy", "Occupancy", "MeanProbes", "SuccessRate")
	policies := []placement.Policy{
		placement.PackLowestID, placement.SpreadLeastLoaded, placement.RandomFit,
	}
	occupancies := []float64{0.4, 0.7}
	type campaign struct{ mean, rate float64 }
	var jobs []runner.Job[campaign]
	for _, policy := range policies {
		for _, occ := range occupancies {
			key := fmt.Sprintf("ablation/placement/%s/occ=%g", policy, occ)
			jobs = append(jobs, runner.Job[campaign]{
				Key: key,
				Run: func() (campaign, error) {
					total, ok := 0, 0
					for trial := 0; trial < trials; trial++ {
						res, err := placement.RunCampaign(placement.CampaignConfig{
							Policy:     policy,
							Occupancy:  occ,
							TargetRack: -1,
							Seed:       p.seed() + uint64(trial)*131,
						})
						if err != nil {
							return campaign{}, err
						}
						total += res.Probes
						if res.Succeeded {
							ok++
						}
					}
					return campaign{
						mean: float64(total) / float64(trials),
						rate: float64(ok) / float64(trials),
					}, nil
				},
			})
		}
	}
	results, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, policy := range policies {
		for _, occ := range occupancies {
			c := results[k]
			k++
			out.Points = append(out.Points, AblationPoint{
				Label: policy.String(), X: occ, Extra: c.mean,
			})
			tbl.AddRow(policy.String(), occ, c.mean, c.rate)
		}
	}
	out.Table = tbl
	return out, nil
}

// AblationGranularity compares the two DEB integration granularities of
// Figure 3: one top-of-rack battery cabinet versus ten per-node units
// (same total energy, per-unit LVDs). Per-node banks degrade gracefully —
// units disconnect one at a time instead of the whole cabinet at once —
// at the cost of per-unit balancing.
func AblationGranularity(p Params) (*AblationResult, error) {
	horizon := scaleDur(p, 40*time.Minute, 15*time.Minute)
	out := &AblationResult{}
	tbl := report.NewTable(
		"Ablation — DEB granularity (PS scheme, dense attack)",
		"Deployment", "Survival(s)", "BatteryEnergy(kJ)")
	deployments := []struct {
		label   string
		factory func(nameplate units.Watts) battery.Store
	}{
		{"top-of-rack", func(nameplate units.Watts) battery.Store {
			return battery.NewRackCabinet(nameplate)
		}},
		{"per-node", func(nameplate units.Watts) battery.Store {
			bank, err := battery.NewPerNodeBank(10, nameplate/10)
			if err != nil {
				panic(err) // static arguments
			}
			return bank
		}},
	}
	var jobs []runner.Job[*sim.Result]
	for _, d := range deployments {
		key := "ablation/granularity/" + d.label
		jobs = append(jobs, runner.Job[*sim.Result]{
			Key: key,
			Run: func() (*sim.Result, error) {
				racks := scaleInt(p, 12, 6)
				const spr = 10
				bg := cachedBurstyRampBackground(racks*spr, 0.48, 0.78, horizon, p.seed()+61,
					3*time.Minute, 20*time.Second, 0.15)
				cfg := sim.Config{
					Key:                key,
					Racks:              racks,
					ServersPerRack:     spr,
					Tick:               200 * time.Millisecond,
					Duration:           horizon,
					OvershootTolerance: 0.04,
					Background:         bg,
					StopOnTrip:         true,
					BatteryFactory:     d.factory,
					Attack: attackSpec(4, virus.Config{
						Profile:         virus.CPUIntensive,
						SpikeWidth:      4 * time.Second,
						SpikesPerMinute: 6,
						PrepDuration:    time.Minute,
						MaxPhaseI:       3 * time.Minute,
						Seed:            p.seed(),
					}),
				}
				return sim.Run(cfg, schemes.NewPS(schemes.Options{}))
			},
		})
	}
	results, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	for i, d := range deployments {
		res := results[i]
		out.Points = append(out.Points, AblationPoint{
			Label: d.label, Survival: res.SurvivalTime,
			Extra: float64(res.EnergyFromBatteries) / 1000,
		})
		tbl.AddRow(d.label, res.SurvivalTime.Seconds(),
			float64(res.EnergyFromBatteries)/1000)
	}
	out.Table = tbl
	return out, nil
}

// AblationJitter pits the periodicity detector against the attacker's
// spike-phase jitter: the regular Phase-II schedule betrays itself
// through autocorrelation even when amplitudes stay sub-threshold, and
// randomizing spike timing (virus.Config.PhaseJitter) guts that signal —
// the attacker/defender arms race one level above Table I.
func AblationJitter(p Params) (*AblationResult, error) {
	horizon := scaleDur(p, 20*time.Minute, 8*time.Minute)
	out := &AblationResult{}
	tbl := report.NewTable(
		"Ablation — spike-phase jitter vs periodicity detection (2 s metering)",
		"PhaseJitter", "PeriodicFlags", "AmplitudeRate")
	jitters := []float64{0, 0.25, 0.5}
	type jitterTrace struct {
		rec      *sim.Recording
		spikes   []time.Duration
		baseline units.Watts
	}
	var jobs []runner.Job[jitterTrace]
	for _, jitter := range jitters {
		key := fmt.Sprintf("ablation/jitter/j=%g", jitter)
		jobs = append(jobs, runner.Job[jitterTrace]{
			Key: key,
			Run: func() (jitterTrace, error) {
				rec, spikes, baseline, err := jitterRun(p, key, jitter, horizon)
				if err != nil {
					return jitterTrace{}, err
				}
				return jitterTrace{rec: rec, spikes: spikes, baseline: baseline}, nil
			},
		})
	}
	traces, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	for i, jitter := range jitters {
		rec, spikes, baseline := traces[i].rec, traces[i].spikes, traces[i].baseline
		const interval = 2 * time.Second
		meter, err := metering.NewMeter(interval, 10, p.seed())
		if err != nil {
			return nil, err
		}
		perio := metering.NewPeriodicityDetector(baseline)
		amp := metering.NewDetector(baseline)
		var ampFlagged []metering.IntervalReading
		for _, v := range rec.RackDraw[0].Values {
			for _, r := range meter.Record(units.Watts(v), rec.Step) {
				perio.Observe(r)
				if amp.Observe(r) {
					ampFlagged = append(ampFlagged, r)
				}
			}
		}
		ampRate := metering.DetectionRate(spikes, ampFlagged, interval)
		out.Points = append(out.Points, AblationPoint{
			Label: fmt.Sprintf("jitter=%.2f", jitter), X: jitter,
			Extra: float64(perio.Flags()),
		})
		tbl.AddRow(jitter, perio.Flags(), fmt.Sprintf("%.1f%%", ampRate*100))
	}
	out.Table = tbl
	return out, nil
}

// jitterRun simulates a stealthy low-amplitude spike train with the given
// phase jitter and returns the recorded rack draw.
func jitterRun(p Params, key string, jitter float64, horizon time.Duration) (*sim.Recording, []time.Duration, units.Watts, error) {
	const racks, spr = 1, 10
	bg := cachedFlatNoisyBackground(racks*spr, 0.50, horizon, p.seed()+71)
	atk := attackSpec(4, virus.Config{
		Profile:         virus.CPUIntensive,
		PrepDuration:    time.Second,
		MaxPhaseI:       time.Second,
		SpikeWidth:      2 * time.Second,
		SpikesPerMinute: 6,
		RestFraction:    0.45,
		AmplitudeScale:  0.25, // stealthy: sub-threshold interval averages
		PhaseJitter:     jitter,
		Seed:            p.seed(),
	})
	cfg := sim.Config{
		Key:            key,
		Racks:          racks,
		ServersPerRack: spr,
		Tick:           100 * time.Millisecond,
		Duration:       horizon,
		Background:     bg,
		Attack:         atk,
		BatteryFactory: emptyBatteryFactory,
		DisableTrips:   true,
		Record:         true,
	}
	res, err := sim.Run(cfg, schemes.NewConv(schemes.Options{}))
	if err != nil {
		return nil, nil, 0, err
	}
	baseline := units.Watts(10 * (299 + 0.50*(521-299)))
	return res.Recording, atk.Attack.SpikeTimes(), baseline, nil
}

// AblationEconomics prices the paper-scale PAD deployment (§6-D): the
// μDEB hardware against the oversubscription savings it makes safe to
// keep and the outage minutes it avoids. Closed-form arithmetic — no
// simulation runs, so it does not go through the runner pool.
func AblationEconomics(Params) (*AblationResult, error) {
	out := &AblationResult{}
	tbl := report.NewTable(
		"Ablation — deployment economics (22 racks × 10 DL585, 75% provisioning)",
		"MicroDEB(Wh/rack)", "Hardware($)", "SavingsKept($)", "Share(%)", "BreakEvenOutage")
	for _, wh := range []float64{0.35, 0.8, 2, 8} {
		d := cost.Deployment{
			Racks:                 22,
			ServersPerRack:        10,
			ServerPeak:            521,
			MicroDEBPerRack:       units.WattHours(wh).Joules(),
			OversubscriptionRatio: 0.75,
		}
		a, err := d.Analyze()
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, AblationPoint{
			Label: fmt.Sprintf("%.2fWh", wh), X: wh, Extra: a.PADHardwareUSD,
		})
		tbl.AddRow(wh, a.PADHardwareUSD, a.OversubscriptionSavingsUSD,
			a.HardwareShareOfSavings*100, a.BreakEvenOutage.Round(time.Second).String())
	}
	out.Table = tbl
	return out, nil
}

// AblationTopology tabulates the §2 efficiency rationale: the conversion
// loss each deployment option pays to serve 1 MW of load. Closed-form
// arithmetic — no simulation runs, so it does not go through the runner
// pool.
func AblationTopology(Params) (*AblationResult, error) {
	out := &AblationResult{}
	tbl := report.NewTable(
		"Ablation — backup topology efficiency at 1 MW load (Figure 3 options)",
		"Topology", "PathEfficiency", "LossKW", "AnnualMWh", "SPOF")
	for _, topo := range powersim.Topologies() {
		m := topo.Model()
		loss := topo.ConversionLoss(units.Megawatt)
		out.Points = append(out.Points, AblationPoint{
			Label: topo.String(), X: m.PathEfficiency, Extra: float64(loss),
		})
		tbl.AddRow(topo.String(), m.PathEfficiency, float64(loss)/1000,
			topo.AnnualLossKWh(units.Megawatt)/1000, m.SPOF)
	}
	out.Table = tbl
	return out, nil
}
