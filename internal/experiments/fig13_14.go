package experiments

import (
	"time"

	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig13Result holds the DEB utilization maps (racks × time) under the
// conventional independent-discharge design and under PAD, plus spread
// statistics.
type Fig13Result struct {
	Step time.Duration
	// ConvMap and PADMap are [rack][sample] SOC matrices.
	ConvMap, PADMap *report.Heatmap
	// ConvSpread and PADSpread are the mean cross-rack SOC stddevs (%).
	ConvSpread, PADSpread float64
	// ConvMinSOC and PADMinSOC are the worst rack SOCs seen anywhere in
	// the map — the depth of the "dark blue" vulnerable spots.
	ConvMinSOC, PADMinSOC float64
	Table                 *report.Table
}

// Fig13 reproduces Figure 13: a day of trace replay, comparing the DEB
// usage map of a conventional per-rack peak-shaving cluster against the
// PAD-balanced pool. PAD's map shows no deep-drained (vulnerable) racks.
func Fig13(p Params) (*Fig13Result, error) {
	racks := scaleInt(p, 22, 8)
	const spr = 10
	horizon := scaleDur(p, 24*time.Hour, 6*time.Hour)
	tick := 5 * time.Minute

	bg, err := cachedTraceBackground(racks*spr, horizon, tick, p.seed(), false)
	if err != nil {
		return nil, err
	}
	job := func(key string, mk func() sim.Scheme) runner.Job[*sim.Recording] {
		return runner.Job[*sim.Recording]{
			Key: key,
			Run: func() (*sim.Recording, error) {
				cfg := sim.Config{
					Key:            key,
					Racks:          racks,
					ServersPerRack: spr,
					Tick:           tick,
					Duration:       horizon,
					Background:     bg,
					Record:         true,
					DisableTrips:   true,
				}
				res, err := sim.Run(cfg, mk())
				if err != nil {
					return nil, err
				}
				return res.Recording, nil
			},
		}
	}
	recs, err := runner.Collect(p.pool(), []runner.Job[*sim.Recording]{
		job("fig13/conventional", func() sim.Scheme { return schemes.NewPS(schemes.Options{Offline: true}) }),
		job("fig13/pad", func() sim.Scheme { return schemes.NewPAD(schemes.Options{}) }),
	})
	if err != nil {
		return nil, err
	}
	convRec, padRec := recs[0], recs[1]

	out := &Fig13Result{Step: tick}
	out.ConvMap, out.ConvSpread, out.ConvMinSOC = socMap("Figure 13 — conventional DEB map (racks × time)", convRec)
	out.PADMap, out.PADSpread, out.PADMinSOC = socMap("Figure 13 — PAD-optimized DEB map (racks × time)", padRec)

	tbl := report.NewTable("Figure 13 — DEB balance summary",
		"Design", "MeanSOCSpread(%)", "WorstRackSOC(%)")
	tbl.AddRow("Conventional", out.ConvSpread, out.ConvMinSOC*100)
	tbl.AddRow("PAD", out.PADSpread, out.PADMinSOC*100)
	out.Table = tbl
	return out, nil
}

// socMap converts a recording into a heat map and spread/min statistics.
func socMap(title string, rec *sim.Recording) (*report.Heatmap, float64, float64) {
	n := rec.RackSOC[0].Len()
	vals := make([][]float64, len(rec.RackSOC))
	for r := range rec.RackSOC {
		vals[r] = append([]float64(nil), rec.RackSOC[r].Values...)
	}
	spread := socSpreadSeries(rec).Mean()
	minSOC := 1.0
	for _, row := range vals {
		for _, v := range row {
			if v < minSOC {
				minSOC = v
			}
		}
	}
	_ = n
	return &report.Heatmap{Title: title, Values: vals, Lo: 0, Hi: 1}, spread, minSOC
}

// Fig14Result holds the load-shedding study: the surge-stressed SOC maps
// before/after PAD and the shedding-ratio series.
type Fig14Result struct {
	Step time.Duration
	// BeforeMap is the conventional design's SOC map under periodic
	// cluster-wide surges; AfterMap is PAD's.
	BeforeMap, AfterMap *report.Heatmap
	// ShedRatio is PAD's shed fraction over time (≤ the 3% bound).
	ShedRatio *stats.Series
	// MaxShedRatio is its maximum.
	MaxShedRatio float64
	Table        *report.Table
}

// Fig14 reproduces Figure 14: periodic data-center-wide load surges
// create masses of vulnerable racks in conventional designs; PAD sheds
// under 3% of servers and flattens the battery-usage map.
func Fig14(p Params) (*Fig14Result, error) {
	racks := scaleInt(p, 22, 8)
	const spr = 10
	horizon := scaleDur(p, 24*time.Hour, 8*time.Hour)
	tick := 5 * time.Minute

	bg, err := cachedTraceBackground(racks*spr, horizon, tick, p.seed()+11, true)
	if err != nil {
		return nil, err
	}
	job := func(key string, mk func() sim.Scheme) runner.Job[*sim.Recording] {
		return runner.Job[*sim.Recording]{
			Key: key,
			Run: func() (*sim.Recording, error) {
				cfg := sim.Config{
					Key:             key,
					Racks:           racks,
					ServersPerRack:  spr,
					Tick:            tick,
					Duration:        horizon,
					Background:      bg,
					Record:          true,
					DisableTrips:    true,
					MicroDEBFactory: microFactory(defaultMicroFraction),
				}
				res, err := sim.Run(cfg, mk())
				if err != nil {
					return nil, err
				}
				return res.Recording, nil
			},
		}
	}
	recs, err := runner.Collect(p.pool(), []runner.Job[*sim.Recording]{
		job("fig14/before", func() sim.Scheme { return schemes.NewPS(schemes.Options{Offline: true}) }),
		job("fig14/after", func() sim.Scheme { return schemes.NewPAD(schemes.Options{}) }),
	})
	if err != nil {
		return nil, err
	}
	before, after := recs[0], recs[1]

	out := &Fig14Result{Step: tick, ShedRatio: after.ShedRatio}
	var beforeSpread, afterSpread float64
	var beforeMin, afterMin float64
	out.BeforeMap, beforeSpread, beforeMin = socMap("Figure 14A — conventional SOC map under periodic surges", before)
	out.AfterMap, afterSpread, afterMin = socMap("Figure 14C — PAD SOC map with ≤3% shedding", after)
	for _, v := range after.ShedRatio.Values {
		if v > out.MaxShedRatio {
			out.MaxShedRatio = v
		}
	}
	tbl := report.NewTable("Figure 14 — load shedding summary",
		"Design", "MeanSOCSpread(%)", "WorstRackSOC(%)", "MaxShedRatio(%)")
	tbl.AddRow("Conventional", beforeSpread, beforeMin*100, 0.0)
	tbl.AddRow("PAD", afterSpread, afterMin*100, out.MaxShedRatio*100)
	out.Table = tbl
	return out, nil
}
