package experiments

import (
	"repro/internal/cost"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Fig1Result holds the outage-cost CDF (a bonus reproduction: Figure 1 is
// survey background, not a system result).
type Fig1Result struct {
	// USD and CumulativeP are the CDF curve samples.
	USD, CumulativeP []float64
	Table            *report.Table
}

// Fig1 reproduces Figure 1's curve shape: the cumulative distribution of
// data-center power failure cost per square meter per minute, sampled
// from the heavy-tailed outage cost model.
func Fig1(p Params) (*Fig1Result, error) {
	n := scaleInt(p, 20000, 2000)
	cdfs, err := runner.Collect(p.pool(), []runner.Job[*stats.CDF]{{
		Key: "fig1/outage-cost-cdf",
		Run: func() (*stats.CDF, error) {
			return cost.OutageModel{}.SampleCDF(n, p.seed()), nil
		},
	}})
	if err != nil {
		return nil, err
	}
	cdf := cdfs[0]
	out := &Fig1Result{}
	tbl := report.NewTable(
		"Figure 1 — CDF of power failure cost (USD per sq. meter per minute)",
		"USD", "CumulativeProbability")
	for usd := 0.0; usd <= 100; usd += 5 {
		prob := cdf.P(usd)
		out.USD = append(out.USD, usd)
		out.CumulativeP = append(out.CumulativeP, prob)
		tbl.AddRow(usd, prob)
	}
	out.Table = tbl
	return out, nil
}
