package experiments

import (
	"time"

	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/virus"
)

// Fig12Result holds the two collected attack traces (dense vs sparse) as
// utilization series, the inputs the paper feeds into its simulator.
type Fig12Result struct {
	Step          time.Duration
	Dense, Sparse *stats.Series
	Table         *report.Table
}

// Fig12 reproduces Figure 12: example power-virus traces for the dense
// extensive attack and the sparse light-weight attack.
func Fig12(p Params) (*Fig12Result, error) {
	dur := scaleDur(p, 4*time.Minute, time.Minute)
	const step = 100 * time.Millisecond
	job := func(scen virus.Scenario) runner.Job[*stats.Series] {
		return runner.Job[*stats.Series]{
			Key: "fig12/" + scen.Name,
			Run: func() (*stats.Series, error) {
				return scen.UtilizationTrace(virus.CPUIntensive, dur, step, p.seed()), nil
			},
		}
	}
	traces, err := runner.Collect(p.pool(),
		[]runner.Job[*stats.Series]{job(virus.DenseAttack), job(virus.SparseAttack)})
	if err != nil {
		return nil, err
	}
	dense, sparse := traces[0], traces[1]

	tbl := report.NewTable(
		"Figure 12 — collected attack traces (% of peak utilization)",
		"Time(s)", "Dense", "Sparse")
	stride := dense.Len() / 120
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < dense.Len(); i += stride {
		tbl.AddRow(float64(i)*step.Seconds(), dense.Values[i]*100, sparse.Values[i]*100)
	}
	return &Fig12Result{Step: step, Dense: dense, Sparse: sparse, Table: tbl}, nil
}
