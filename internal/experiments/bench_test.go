package experiments

import (
	"runtime"
	"testing"
)

// benchSweep is a multi-figure sweep: the attack-effectiveness sweep
// (Fig8A: 5 node counts × 2 oversubscription ratios) plus the
// throughput-vs-width sweep (Fig16B: 6 schemes × 3 widths), 28 runs in
// all — enough independent jobs to keep a pool busy.
func benchSweep(b *testing.B, workers int) {
	p := Params{Quick: true, Workers: workers}
	for i := 0; i < b.N; i++ {
		if _, err := Fig8A(p); err != nil {
			b.Fatal(err)
		}
		if _, err := Fig16B(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSequential is the legacy one-goroutine path.
func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel fans the same sweep across GOMAXPROCS workers.
// Comparing the two ns/op shows the runner's speedup; on an N-core
// machine it approaches min(N, jobs-per-figure)× for the dominant
// figure. The outputs are byte-identical either way (see
// TestWorkerCountCSVIdentity).
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, runtime.GOMAXPROCS(0)) }
