package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/virus"
)

// Fig16Point is one normalized-throughput measurement.
type Fig16Point struct {
	Scheme string
	// X is the attack rate (duty fraction, A) or spike width in seconds
	// (B).
	X          float64
	Throughput float64
}

// Fig16Result holds one chart of the throughput study.
type Fig16Result struct {
	Points []Fig16Point
	Table  *report.Table
}

// fig16Schemes are the four schemes the paper plots.
func fig16Schemes() []string { return []string{"PS", "PSPC", "Conv", "PAD"} }

// fig16Run measures cluster throughput over an attack window, normalized
// against the same cluster with no attack. Breakers stay live: outage is
// exactly the throughput cost the conventional designs pay.
func fig16Run(p Params, key, name string, width time.Duration, perMinute float64) (float64, error) {
	racks := scaleInt(p, 12, 6)
	const spr = 10
	horizon := scaleDur(p, 30*time.Minute, 8*time.Minute)
	tick := 200 * time.Millisecond
	bg := cachedFlatNoisyBackground(racks*spr, 0.60, horizon, p.seed()+31)

	// Batteries start pre-stressed (a tenth the standard cabinet: the
	// attack window follows a day of heavy shaving duty) and tripped
	// feeds are restored after two minutes of operator recovery, so the
	// throughput cost of each design's failures scales with how often the
	// attack defeats it.
	base := sim.Config{
		Key:            key,
		Racks:          racks,
		ServersPerRack: spr,
		Tick:           tick,
		Duration:       horizon,
		Background:     bg,
		BatteryFactory: smallCabinet,
		RestoreAfter:   2 * time.Minute,
	}
	if needsMicro(name) {
		base.MicroDEBFactory = microFactory(defaultMicroFraction)
	}
	ref, err := sim.Run(base, schemeByName(name, schemes.Options{}))
	if err != nil {
		return 0, err
	}
	attacked := base
	attacked.Attack = attackSpec(4, virus.Config{
		Profile:         virus.CPUIntensive,
		PrepDuration:    5 * time.Second,
		MaxPhaseI:       horizon / 6,
		SpikeWidth:      width,
		SpikesPerMinute: perMinute,
		Seed:            p.seed(),
	})
	if needsMicro(name) {
		attacked.MicroDEBFactory = microFactory(defaultMicroFraction)
	}
	res, err := sim.Run(attacked, schemeByName(name, schemes.Options{}))
	if err != nil {
		return 0, err
	}
	if ref.Throughput == 0 {
		return 0, fmt.Errorf("experiments: reference throughput is zero")
	}
	return res.Throughput / ref.Throughput, nil
}

// Fig16A reproduces Figure 16(A): normalized data-center throughput vs
// attack rate (spike duty cycle 16–50%).
func Fig16A(p Params) (*Fig16Result, error) {
	rates := []float64{0.16, 0.20, 0.25, 0.33, 0.50}
	const width = 2 * time.Second
	tbl := report.NewTable(
		"Figure 16A — normalized throughput vs attack rate",
		"Scheme", "AttackRate", "Throughput")
	out := &Fig16Result{}
	var jobs []runner.Job[float64]
	for _, name := range fig16Schemes() {
		for _, rate := range rates {
			key := fmt.Sprintf("fig16a/%s/rate=%.2f", name, rate)
			jobs = append(jobs, runner.Job[float64]{
				Key: key,
				Run: func() (float64, error) {
					perMinute := rate * 60 / width.Seconds()
					return fig16Run(p, key, name, width, perMinute)
				},
			})
		}
	}
	thpts, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, name := range fig16Schemes() {
		for _, rate := range rates {
			thpt := thpts[k]
			k++
			out.Points = append(out.Points, Fig16Point{name, rate, thpt})
			tbl.AddRow(name, fmt.Sprintf("%.0f%%", rate*100), thpt)
		}
	}
	out.Table = tbl
	return out, nil
}

// Fig16B reproduces Figure 16(B): normalized throughput vs attack width
// (0.2–0.6 s spikes at a fixed 20/min).
func Fig16B(p Params) (*Fig16Result, error) {
	widths := []time.Duration{
		200 * time.Millisecond, 300 * time.Millisecond, 400 * time.Millisecond,
		500 * time.Millisecond, 600 * time.Millisecond,
	}
	tbl := report.NewTable(
		"Figure 16B — normalized throughput vs attack width",
		"Scheme", "Width(s)", "Throughput")
	out := &Fig16Result{}
	var jobs []runner.Job[float64]
	for _, name := range fig16Schemes() {
		for _, w := range widths {
			key := fmt.Sprintf("fig16b/%s/width=%v", name, w)
			jobs = append(jobs, runner.Job[float64]{
				Key: key,
				Run: func() (float64, error) {
					return fig16Run(p, key, name, w, 20)
				},
			})
		}
	}
	thpts, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, name := range fig16Schemes() {
		for _, w := range widths {
			thpt := thpts[k]
			k++
			out.Points = append(out.Points, Fig16Point{name, w.Seconds(), thpt})
			tbl.AddRow(name, w.Seconds(), thpt)
		}
	}
	out.Table = tbl
	return out, nil
}
