package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

// The determinism regression suite: the same sim.Config must produce the
// same Result every time, and every figure driver must emit byte-identical
// CSV whether its runs execute sequentially or across eight workers.

// detConfig builds a small but non-trivial config: attack, batteries and
// recording all on, so most Result fields carry data.
func detConfig() sim.Config {
	const racks, spr = 2, 5
	horizon := 10 * time.Second
	bg := make([]*stats.Series, racks*spr)
	rng := stats.NewRNG(17)
	for i := range bg {
		r := rng.Split(uint64(i))
		s := stats.NewSeries(time.Second)
		for k := 0; k <= int(horizon/time.Second)+1; k++ {
			s.Append(0.3 + 0.3*r.Float64())
		}
		bg[i] = s
	}
	return sim.Config{
		Key:            "determinism/base",
		Racks:          racks,
		ServersPerRack: spr,
		Tick:           100 * time.Millisecond,
		Duration:       horizon,
		Background:     bg,
		Record:         true,
		Attack: &sim.AttackSpec{
			Servers: []int{0, 1},
			Attack: virus.MustNew(virus.Config{
				Profile:         virus.CPUIntensive,
				PrepDuration:    time.Second,
				MaxPhaseI:       2 * time.Second,
				SpikeWidth:      time.Second,
				SpikesPerMinute: 20,
				Seed:            5,
			}),
		},
	}
}

// TestSameConfigSameResult runs an identical configuration twice and
// demands deeply equal Results, recordings included. The Attack is
// stateful, so each run builds the config (and its attack) afresh — the
// per-run construction discipline the runner contract requires.
func TestSameConfigSameResult(t *testing.T) {
	a, err := sim.Run(detConfig(), schemes.NewPS(schemes.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(detConfig(), schemes.NewPS(schemes.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of the same config produced different Results")
	}
	if a.Key != "determinism/base" {
		t.Fatalf("Result.Key = %q, want the config key echoed", a.Key)
	}
}

// csvOf renders a table to CSV bytes.
func csvOf(t *testing.T, tbl *report.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkerCountCSVIdentity is the tentpole acceptance check: a figure
// rendered from a one-worker run must be byte-identical to the same
// figure rendered from an eight-worker run.
func TestWorkerCountCSVIdentity(t *testing.T) {
	figures := []struct {
		name string
		run  func(Params) (*report.Table, error)
	}{
		{"fig8a", func(p Params) (*report.Table, error) {
			r, err := Fig8A(p)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"fig16b", func(p Params) (*report.Table, error) {
			r, err := Fig16B(p)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"fig17", func(p Params) (*report.Table, error) {
			r, err := Fig17(p)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"ablation_charging", func(p Params) (*report.Table, error) {
			r, err := AblationCharging(p)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			t.Parallel()
			seq, err := fig.run(Params{Quick: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := fig.run(Params{Quick: true, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			a, b := csvOf(t, seq), csvOf(t, par)
			if !bytes.Equal(a, b) {
				t.Fatalf("workers=8 CSV differs from workers=1:\n--- workers=1\n%s\n--- workers=8\n%s", a, b)
			}
		})
	}
}

// TestRunTwiceCSVIdentity guards against hidden global state: rendering
// the same figure twice in one process must give the same bytes.
func TestRunTwiceCSVIdentity(t *testing.T) {
	p := Params{Quick: true, Workers: 4}
	first, err := Fig16B(p)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Fig16B(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvOf(t, first.Table), csvOf(t, second.Table)) {
		t.Fatal("two renders of Fig16B in one process differ")
	}
}
