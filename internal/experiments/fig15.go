package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/virus"
)

// Fig15Cell is one survival-time bar.
type Fig15Cell struct {
	Scheme   string
	Scenario string // Dense / Sparse
	Profile  string // CPU / Mem / IO
	Survival time.Duration
	Tripped  bool
}

// Fig15Result holds the survival-time matrix plus the headline ratios.
type Fig15Result struct {
	Cells []Fig15Cell
	// AvgSurvival maps scheme → mean survival across the six attack
	// scenarios.
	AvgSurvival map[string]time.Duration
	// PADvsConv and PADvsBestPrior are the paper's headline ratios
	// (10.7× and 1.6× respectively in the original).
	PADvsConv, PADvsBestPrior float64
	Table                     *report.Table
}

// fig15Horizon bounds each survival run; schemes that never trip are
// credited with the full horizon (a lower bound on their survival).
func fig15Horizon(p Params) time.Duration {
	return scaleDur(p, time.Hour, 20*time.Minute)
}

// Fig15 reproduces Figure 15: survival time of the six schemes under
// dense/sparse attacks of each virus type. The cluster is attacked during
// a rising-demand window (a morning ramp), so every design eventually
// fails — later for stronger defenses.
func Fig15(p Params) (*Fig15Result, error) {
	racks := scaleInt(p, 22, 6)
	const spr = 10
	horizon := fig15Horizon(p)
	tick := scaleDur(p, 100*time.Millisecond, 200*time.Millisecond)
	// A rising-demand window with periodic flash-crowd bursts: the bursts
	// are what separates hardware-speed defenses from capping latency.
	bg := cachedBurstyRampBackground(racks*spr, 0.48, 0.78, horizon, p.seed()+23,
		3*time.Minute, 20*time.Second, 0.15)

	out := &Fig15Result{AvgSurvival: map[string]time.Duration{}}
	tbl := report.NewTable(
		"Figure 15 — survival time (s) under power attack",
		"Scheme", "Dense/CPU", "Sparse/CPU", "Dense/Mem", "Sparse/Mem",
		"Dense/IO", "Sparse/IO", "Avg")

	// One job per scheme × profile × scenario cell; the background is
	// shared read-only, everything mutable lives inside the job.
	var jobs []runner.Job[*sim.Result]
	for _, name := range SchemeNames() {
		for _, prof := range virus.Profiles() {
			for _, scen := range virus.Scenarios() {
				key := fmt.Sprintf("fig15/%s/%s/%s", name, scen.Name, prof.Name)
				jobs = append(jobs, runner.Job[*sim.Result]{
					Key: key,
					Run: func() (*sim.Result, error) {
						cfg := sim.Config{
							Key:                key,
							Racks:              racks,
							ServersPerRack:     spr,
							Tick:               tick,
							Duration:           horizon,
							OvershootTolerance: 0.04,
							Background:         bg,
							StopOnTrip:         true,
						}
						vc := scen.Configure(prof, p.seed())
						// Three minutes of reconnaissance before the drain
						// begins: survival is measured from the beginning of
						// the attack, which includes the attacker blending in
						// (§3.1).
						vc.PrepDuration = 3 * time.Minute
						vc.MaxPhaseI = 3 * time.Minute
						cfg.Attack = attackSpec(4, vc)
						if needsMicro(name) {
							cfg.MicroDEBFactory = microFactory(defaultMicroFraction)
						}
						return sim.Run(cfg, schemeByName(name, schemes.Options{}))
					},
				})
			}
		}
	}
	results, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}

	k := 0
	for _, name := range SchemeNames() {
		var row []interface{}
		row = append(row, name)
		var sum time.Duration
		cells := 0
		for _, prof := range virus.Profiles() {
			for _, scen := range virus.Scenarios() {
				res := results[k]
				k++
				out.Cells = append(out.Cells, Fig15Cell{
					Scheme: name, Scenario: scen.Name, Profile: prof.Name,
					Survival: res.SurvivalTime, Tripped: res.Tripped,
				})
				sum += res.SurvivalTime
				cells++
			}
		}
		avg := sum / time.Duration(cells)
		out.AvgSurvival[name] = avg
		// Table columns follow profile-major order: reorder the last six
		// cells into Dense/Sparse per profile.
		base := len(out.Cells) - 6
		for i := 0; i < 6; i++ {
			row = append(row, out.Cells[base+i].Survival.Seconds())
		}
		row = append(row, avg.Seconds())
		tbl.AddRow(row...)
	}
	if conv := out.AvgSurvival["Conv"]; conv > 0 {
		out.PADvsConv = float64(out.AvgSurvival["PAD"]) / float64(conv)
	}
	best := time.Duration(0)
	for _, prior := range []string{"PS", "PSPC"} {
		if out.AvgSurvival[prior] > best {
			best = out.AvgSurvival[prior]
		}
	}
	if best > 0 {
		out.PADvsBestPrior = float64(out.AvgSurvival["PAD"]) / float64(best)
	}
	tbl.AddRow("PAD/Conv", out.PADvsConv)
	tbl.AddRow("PAD/BestPrior", out.PADvsBestPrior)
	out.Table = tbl
	return out, nil
}
