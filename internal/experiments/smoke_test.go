package experiments

import (
	"os"
	"testing"
)

// TestSmokeAll prints every experiment's table in Quick mode; used during
// calibration, superseded by the targeted assertions in the other tests.
func TestSmokeAll(t *testing.T) {
	if os.Getenv("SMOKE") == "" {
		t.Skip("set SMOKE=1 to run")
	}
	p := Params{Quick: true}
	if r, err := Fig5(p); err != nil {
		t.Error(err)
	} else {
		t.Log("\n" + r.Table.String())
	}
	if r, err := Fig6(p); err != nil {
		t.Error(err)
	} else {
		t.Logf("phaseII=%v learned=%v\n%s", r.PhaseIIStart, r.LearnedDrain, r.Table.String())
	}
	if r, err := Fig7(p); err != nil {
		t.Error(err)
	} else {
		t.Logf("effective=%d", r.EffectiveAttacks)
	}
	if r, err := Fig8A(p); err != nil {
		t.Error(err)
	} else {
		t.Log("\n" + r.Table.String())
	}
	if r, err := Table1(p); err != nil {
		t.Error(err)
	} else {
		t.Log("\n" + r.Table.String())
	}
	if r, err := Fig15(p); err != nil {
		t.Error(err)
	} else {
		t.Log("\n" + r.Table.String())
	}
	if r, err := Fig17(p); err != nil {
		t.Error(err)
	} else {
		t.Log("\n" + r.Table.String())
	}
}
