package experiments

import (
	"fmt"
	"time"

	"repro/internal/battery"
	"repro/internal/cost"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/virus"
)

// Fig17Point is one μDEB-capacity sweep sample.
type Fig17Point struct {
	// Fraction is the μDEB energy as a fraction of the rack cabinet.
	Fraction float64
	// CostRatio is μDEB/vDEB hardware cost (%).
	CostRatio float64
	// Survival under the dense attack.
	Survival time.Duration
	// NormalizedSurvival relative to the smallest capacity.
	NormalizedSurvival float64
}

// Fig17Result holds the cost-efficiency sweep.
type Fig17Result struct {
	Points []Fig17Point
	Table  *report.Table
}

// Fig17 reproduces Figure 17: sweeping the μDEB capacity (0.1%–1.5% of
// the vDEB energy, the super-capacitor-scale sizes whose cost ratio spans
// the paper's 2–45% axis), the hardware cost grows linearly while the
// emergency-handling capability (survival under a dense spike attack with
// the pool already exhausted) grows dramatically: once the bank covers a
// whole spike and can recover between spikes, survival jumps.
func Fig17(p Params) (*Fig17Result, error) {
	fractions := []float64{0.0005, 0.00075, 0.001, 0.0015, 0.002, 0.003, 0.005, 0.0075, 0.01}
	if p.Quick {
		fractions = []float64{0.0005, 0.002, 0.005, 0.01}
	}
	racks := scaleInt(p, 6, 3)
	const spr = 10
	horizon := scaleDur(p, 2*time.Hour, 15*time.Minute)
	bg := cachedFlatNoisyBackground(racks*spr, 0.31, horizon, p.seed()+41)

	capex := cost.CapexModel{}
	nameplate := units.Watts(521 * spr)
	vdebCap := battery.SizeForAutonomy(nameplate, battery.RackCabinetAutonomy, 0, 0)

	out := &Fig17Result{}
	tbl := report.NewTable(
		"Figure 17 — μDEB capacity vs cost ratio and survival",
		"Fraction(%)", "CostRatio(%)", "Survival(s)", "NormalizedSurvival")
	var jobs []runner.Job[*sim.Result]
	for _, frac := range fractions {
		key := fmt.Sprintf("fig17/frac=%g", frac)
		jobs = append(jobs, runner.Job[*sim.Result]{
			Key: key,
			Run: func() (*sim.Result, error) {
				cfg := sim.Config{
					Key:                key,
					Racks:              racks,
					ServersPerRack:     spr,
					Tick:               100 * time.Millisecond,
					Duration:           horizon,
					OvershootTolerance: 0.04,
					Background:         bg,
					StopOnTrip:         true,
					// The pool is already drained: this isolates the μDEB's
					// emergency-handling contribution.
					BatteryFactory:  emptyBatteryFactory,
					MicroDEBFactory: microFactory(frac),
					// Six compromised hosts firing 2 s spikes: severe enough
					// that un-shaved spike trains accumulate breaker heat,
					// light enough that a bank covering a whole spike can
					// recover from rack headroom before the next one.
					Attack: attackSpec(6, virus.Config{
						Profile:         virus.CPUIntensive,
						PrepDuration:    time.Second,
						MaxPhaseI:       time.Second,
						SpikeWidth:      2 * time.Second,
						SpikesPerMinute: 6,
						Seed:            p.seed(),
					}),
				}
				// The μDEB-only scheme isolates the bank's contribution:
				// PAD's capping and shedding fallbacks would mask the
				// capacity effect this figure is about.
				return sim.Run(cfg, schemeByName("uDEB", schemes.Options{}))
			},
		})
	}
	results, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	for i, frac := range fractions {
		micro := units.Joules(float64(vdebCap) * frac)
		ratio, err := capex.CostRatio(micro, vdebCap)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Fig17Point{
			Fraction:  frac,
			CostRatio: ratio * 100,
			Survival:  results[i].SurvivalTime,
		})
	}
	base := out.Points[0].Survival
	for i := range out.Points {
		if base > 0 {
			out.Points[i].NormalizedSurvival =
				float64(out.Points[i].Survival) / float64(base)
		}
		pt := out.Points[i]
		tbl.AddRow(pt.Fraction*100, pt.CostRatio, pt.Survival.Seconds(),
			pt.NormalizedSurvival)
	}
	out.Table = tbl
	return out, nil
}
