package experiments

import (
	"time"

	"repro/internal/battery"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/virus"
)

// Fig6Result holds the two-phase attack demonstration: the three signals
// the paper plots (normal workload, malicious load, battery capacity, all
// as % of peak) over the attack window.
type Fig6Result struct {
	Step                           time.Duration
	NormalLoad, MaliciousLoad, SOC *stats.Series
	PhaseIIStart                   time.Duration
	LearnedDrain                   time.Duration
	Table                          *report.Table
}

// Fig6 reproduces Figure 6: the two-phase attack model demonstrated on a
// battery-backed rack. Phase I's sustained visible peak drains the
// battery; when the attacker observes performance capping it mutates into
// Phase II's hidden spikes.
func Fig6(p Params) (*Fig6Result, error) {
	const racks, spr = 1, 10
	horizon := scaleDur(p, 5*time.Minute, 2*time.Minute)
	bg := cachedFlatNoisyBackground(racks*spr, 0.35, horizon, p.seed())

	type fig6Run struct {
		rec        *sim.Recording
		spikeTimes []time.Duration
		learned    time.Duration
	}
	runs, err := runner.Collect(p.pool(), []runner.Job[fig6Run]{{
		Key: "fig6/two-phase-demo",
		Run: func() (fig6Run, error) {
			atk := attackSpec(4, virus.Config{
				Profile:         virus.CPUIntensive,
				PrepDuration:    10 * time.Second,
				MaxPhaseI:       horizon / 2,
				SpikeWidth:      2 * time.Second,
				SpikesPerMinute: 6,
				Seed:            p.seed(),
			})
			// A small battery so the drain completes inside the window: a
			// tenth of the standard cabinet.
			cfg := sim.Config{
				Key:            "fig6/two-phase-demo",
				Racks:          racks,
				ServersPerRack: spr,
				Tick:           100 * time.Millisecond,
				Duration:       horizon,
				Background:     bg,
				Attack:         atk,
				Record:         true,
				RecordStep:     time.Second,
				DisableTrips:   true,
				BatteryFactory: smallCabinet,
			}
			res, err := sim.Run(cfg, schemes.NewPSPC(schemes.Options{}))
			if err != nil {
				return fig6Run{}, err
			}
			return fig6Run{
				rec:        res.Recording,
				spikeTimes: atk.Attack.SpikeTimes(),
				learned:    atk.Attack.LearnedDrainTime(),
			}, nil
		},
	}})
	if err != nil {
		return nil, err
	}
	rec := runs[0].rec

	normal := stats.NewSeries(rec.Step)
	for i := 0; i < rec.TotalGrid.Len(); i++ {
		// Background utilization of the non-compromised servers, % of
		// peak (sampled from the input series).
		at := time.Duration(i) * rec.Step
		sum := 0.0
		for s := 4; s < racks*spr; s++ {
			sum += bg[s].Interp(at)
		}
		normal.Append(sum / float64(racks*spr-4) * 100)
	}
	malicious := rec.AttackUtil.Scale(100)
	soc := rec.RackSOC[0].Scale(100)

	out := &Fig6Result{
		Step:          rec.Step,
		NormalLoad:    normal,
		MaliciousLoad: malicious,
		SOC:           soc,
		LearnedDrain:  runs[0].learned,
	}
	// Locate the Phase II transition: the first spike launch.
	if ts := runs[0].spikeTimes; len(ts) > 0 {
		out.PhaseIIStart = ts[0]
	}
	tbl := report.NewTable(
		"Figure 6 — two-phase attack demo (% of peak)",
		"Time(s)", "NormalLoad", "MaliciousLoad", "BatteryCapacity")
	stride := normal.Len() / 60
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < normal.Len(); i += stride {
		tbl.AddRow(i, normal.Values[i], malicious.Values[i], soc.Values[i])
	}
	out.Table = tbl
	return out, nil
}

// smallCabinet builds a rack battery a tenth the standard size, so a
// demonstration drain completes inside a short plot window.
func smallCabinet(nameplate units.Watts) battery.Store {
	cap_ := battery.SizeForAutonomy(nameplate, battery.RackCabinetAutonomy, 0, 0) / 10
	b := battery.MustKiBaM(battery.KiBaMConfig{
		Capacity:     cap_,
		MaxDischarge: nameplate * 2,
		MaxCharge:    units.Watts(float64(cap_) / 900),
	})
	return battery.NewLVD(b, 0.05, 0.20)
}

// Fig7Result holds the effective-attack demonstration: rack power draw
// against the tolerated budget, with overload events marked.
type Fig7Result struct {
	Step             time.Duration
	Draw             *stats.Series
	Budget           units.Watts
	Limit            units.Watts
	EffectiveAttacks int
	Table            *report.Table
}

// Fig7 reproduces Figure 7: repeated hidden spikes against a drained rack
// — some attempts fail (background valley), some overload the feed.
func Fig7(p Params) (*Fig7Result, error) {
	const racks, spr = 1, 10
	horizon := scaleDur(p, 70*time.Second, 40*time.Second)
	bg := cachedFlatNoisyBackground(racks*spr, 0.55, horizon, p.seed()+3)

	runs, err := runner.Collect(p.pool(), []runner.Job[*sim.Result]{{
		Key: "fig7/effective-attack-demo",
		Run: func() (*sim.Result, error) {
			atk := attackSpec(4, virus.Config{
				Profile:         virus.CPUIntensive,
				PrepDuration:    time.Second,
				MaxPhaseI:       time.Second,
				SpikeWidth:      2 * time.Second,
				SpikesPerMinute: 6,
				Seed:            p.seed(),
			})
			cfg := sim.Config{
				Key:            "fig7/effective-attack-demo",
				Racks:          racks,
				ServersPerRack: spr,
				Tick:           100 * time.Millisecond,
				Duration:       horizon,
				Background:     bg,
				Attack:         atk,
				Record:         true,
				RecordStep:     500 * time.Millisecond,
				DisableTrips:   true,
				BatteryFactory: emptyBatteryFactory,
			}
			return sim.Run(cfg, schemes.NewConv(schemes.Options{}))
		},
	}})
	if err != nil {
		return nil, err
	}
	res := runs[0]
	nameplate := 521.0 * spr
	budget := units.Watts(0.75 * nameplate)
	limit := budget * 1.08
	tbl := report.NewTable(
		"Figure 7 — effective power attack demo",
		"Time(s)", "Draw(W)", "Budget(W)", "Limit(W)", "Overload")
	for i, v := range res.Recording.RackDraw[0].Values {
		over := ""
		if units.Watts(v) > limit {
			over = "EFFECTIVE"
		}
		tbl.AddRow(float64(i)*0.5, v, float64(budget), float64(limit), over)
	}
	return &Fig7Result{
		Step:             res.Recording.Step,
		Draw:             res.Recording.RackDraw[0],
		Budget:           budget,
		Limit:            limit,
		EffectiveAttacks: res.EffectiveAttacks,
		Table:            tbl,
	}, nil
}
