// Package experiments regenerates every measured table and figure of the
// paper: the methodology experiments (Figures 5-8, 12, Table I) and the
// evaluation (Figures 13-17), plus the Figure 1 cost CDF as a bonus. Each
// experiment is a function of Params that returns rendered report
// artifacts along with the raw numbers, so cmd/experiments, the test
// suite and the benchmark harness all share one implementation.
//
// Every experiment executes its independent simulation runs through
// internal/runner: the sweep is expressed as a slice of keyed jobs,
// the runner fans them across Params.Workers goroutines, and the
// tables are assembled afterwards in job order — so the rendered
// output is byte-identical at any worker count. Shared inputs (the
// background utilization series) come from a process-wide cache keyed
// by the full generator argument tuple (see bgcache.go): each distinct
// background is built once — even when jobs request it concurrently —
// and shared read-only by every run that needs it. Everything mutable
// (schemes, attack controllers, battery stores) is created inside each
// job.
package experiments

import (
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/virus"
)

// Params control every experiment run.
type Params struct {
	// Seed drives all randomness. 0 selects 1.
	Seed uint64
	// Quick shrinks cluster sizes and horizons so the whole suite runs in
	// seconds; shapes are preserved, absolute numbers move.
	Quick bool
	// Workers bounds how many simulation runs execute concurrently
	// within an experiment. 0 selects runtime.GOMAXPROCS(0); 1 keeps
	// the sequential path. Results are independent of the value: output
	// at -workers 8 is byte-identical to -workers 1.
	Workers int
	// Progress, when non-nil, receives one update per finished run.
	Progress func(runner.Progress)
}

// pool builds the worker pool every experiment drives its runs through.
func (p Params) pool() runner.Pool {
	return runner.Pool{Workers: p.Workers, OnProgress: p.Progress}
}

func (p Params) seed() uint64 {
	if p.Seed == 0 {
		return 1
	}
	return p.Seed
}

// scale picks full when !Quick, else quick.
func scaleDur(p Params, full, quick time.Duration) time.Duration {
	if p.Quick {
		return quick
	}
	return full
}

func scaleInt(p Params, full, quick int) int {
	if p.Quick {
		return quick
	}
	return full
}

// traceBackground generates a synthetic Google-style trace for the given
// cluster and replays it into per-server utilization series.
func traceBackground(servers int, horizon time.Duration, step time.Duration, seed uint64, surge bool) ([]*stats.Series, error) {
	cfg := trace.SynthConfig{
		Machines: servers,
		Horizon:  horizon,
		Seed:     seed,
	}
	if surge {
		cfg.SurgePeriod = 6 * time.Hour
		cfg.SurgeWidth = 45 * time.Minute
		cfg.SurgeBoost = 0.35
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return trace.MachineSeries(tr, step)
}

// rampBackground builds per-server utilization that wanders around a mean
// ramping linearly from lo to hi over the horizon — the rising-demand
// window (a morning ramp) the survival experiments attack into.
func rampBackground(servers int, lo, hi float64, horizon time.Duration, seed uint64) []*stats.Series {
	rng := stats.NewRNG(seed)
	const step = 10 * time.Second
	n := int(horizon/step) + 2
	out := make([]*stats.Series, servers)
	for i := range out {
		r := rng.Split(uint64(i))
		s := stats.NewSeries(step)
		wander := 0.0
		for k := 0; k < n; k++ {
			frac := float64(k) / float64(n-1)
			mean := lo + (hi-lo)*frac
			wander = 0.9*wander + r.Norm(0, 0.02)
			u := mean + wander
			if u < 0.05 {
				u = 0.05
			}
			if u > 0.98 {
				u = 0.98
			}
			s.Append(u)
		}
		out[i] = s
	}
	return out
}

// burstyRampBackground layers cluster-wide "flash crowd" bursts on the
// ramp: every burstEvery (with deterministic jitter) utilization jumps by
// burstBoost for burstLen across all servers. Such sudden legitimate
// surges are exactly what hardware-speed energy backup absorbs and
// software capping (coarse monitoring plus actuation latency) does not.
func burstyRampBackground(servers int, lo, hi float64, horizon time.Duration,
	seed uint64, burstEvery, burstLen time.Duration, burstBoost float64) []*stats.Series {
	base := rampBackground(servers, lo, hi, horizon, seed)
	if burstEvery <= 0 || burstLen <= 0 || burstBoost <= 0 {
		return base
	}
	rng := stats.NewRNG(seed).Split(0xb0257)
	step := base[0].Step
	// Burst schedule is cluster-wide: the same offsets for every server.
	var bursts []time.Duration
	at := time.Duration(float64(burstEvery) * (0.5 + rng.Float64()))
	for at < horizon {
		bursts = append(bursts, at)
		at += time.Duration(float64(burstEvery) * (0.7 + 0.6*rng.Float64()))
	}
	inBurst := func(t time.Duration) bool {
		for _, b := range bursts {
			if t >= b && t < b+burstLen {
				return true
			}
		}
		return false
	}
	for _, s := range base {
		for k := range s.Values {
			if inBurst(time.Duration(k) * step) {
				s.Values[k] += burstBoost
				if s.Values[k] > 0.98 {
					s.Values[k] = 0.98
				}
			}
		}
	}
	return base
}

// flatNoisyBackground builds per-server utilization that wanders around a
// fixed mean.
func flatNoisyBackground(servers int, mean float64, horizon time.Duration, seed uint64) []*stats.Series {
	return rampBackground(servers, mean, mean, horizon, seed)
}

// fineNoisyBackground is flatNoisyBackground at 1-second resolution with
// livelier second-scale wander — task churn as a spike-width experiment
// sees it: whether a 1 s or a 4 s spike catches a coincident background
// peak depends on structure at exactly this scale.
func fineNoisyBackground(servers int, mean float64, horizon time.Duration, seed uint64) []*stats.Series {
	rng := stats.NewRNG(seed).Split(0xf19e)
	const step = time.Second
	n := int(horizon/step) + 2
	out := make([]*stats.Series, servers)
	for i := range out {
		r := rng.Split(uint64(i))
		s := stats.NewSeries(step)
		wander := 0.0
		for k := 0; k < n; k++ {
			wander = 0.85*wander + r.Norm(0, 0.025)
			u := mean + wander
			if u < 0.05 {
				u = 0.05
			}
			if u > 0.98 {
				u = 0.98
			}
			s.Append(u)
		}
		out[i] = s
	}
	return out
}

// emptyBatteryFactory builds rack batteries that are already drained —
// the post-Phase-I state the threat-characterization experiments start
// from.
func emptyBatteryFactory(nameplate units.Watts) battery.Store {
	cap_ := battery.SizeForAutonomy(nameplate, battery.RackCabinetAutonomy, 0, 0)
	b := battery.MustKiBaM(battery.KiBaMConfig{
		Capacity:     cap_,
		InitialSOC:   0.02,
		MaxDischarge: nameplate * 2,
		MaxCharge:    units.Watts(float64(cap_) / 900),
	})
	return battery.NewLVD(b, 0.05, 0.20)
}

// microFactory builds μDEB banks holding the given fraction of the rack
// battery cabinet's energy.
func microFactory(fraction float64) func(nameplate, budget units.Watts) *core.MicroDEB {
	return func(nameplate, budget units.Watts) *core.MicroDEB {
		poolCap := battery.SizeForAutonomy(nameplate, battery.RackCabinetAutonomy, 0, 0)
		bank := battery.NewMicroDEB(units.Joules(float64(poolCap)*fraction), nameplate)
		u, err := core.NewMicroDEB(bank, budget)
		if err != nil {
			panic(err) // factory arguments are engine-controlled
		}
		return u
	}
}

// defaultMicro is the μDEB sizing used outside the Figure 17 sweep: 1% of
// the rack cabinet energy (≈0.7 Wh on the evaluated rack — the same order
// as the paper's 0.35 Wh example bank).
const defaultMicroFraction = 0.01

// attackSpec builds a two-phase attack on the first `nodes` servers of
// rack 0.
func attackSpec(nodes int, cfg virus.Config) *sim.AttackSpec {
	servers := make([]int, nodes)
	for i := range servers {
		servers[i] = i
	}
	return &sim.AttackSpec{
		Servers: servers,
		Attack:  virus.MustNew(cfg),
	}
}

// schemeByName constructs one of the six evaluated schemes.
func schemeByName(name string, opts schemes.Options) sim.Scheme {
	switch name {
	case "Conv":
		return schemes.NewConv(opts)
	case "PS":
		return schemes.NewPS(opts)
	case "PSPC":
		return schemes.NewPSPC(opts)
	case "vDEB":
		return schemes.NewVDEB(opts)
	case "uDEB":
		return schemes.NewUDEB(opts)
	case "PAD":
		return schemes.NewPAD(opts)
	default:
		panic("experiments: unknown scheme " + name)
	}
}

// SchemeNames lists the evaluated schemes in the paper's order.
func SchemeNames() []string {
	return []string{"Conv", "PS", "PSPC", "uDEB", "vDEB", "PAD"}
}

// needsMicro reports whether the scheme deploys μDEB hardware.
func needsMicro(name string) bool { return name == "uDEB" || name == "PAD" }
