package experiments

import (
	"fmt"
	"time"

	"repro/internal/metering"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/virus"
)

// Table1Cell is one detection-rate measurement.
type Table1Cell struct {
	Interval       time.Duration
	Servers        int
	Scale          float64
	Width          time.Duration
	PerMinute      float64
	DetectionRate  float64
	SpikesLaunched int
}

// Table1Result holds the detection-rate matrix of Table I.
type Table1Result struct {
	Cells []Table1Cell
	Table *report.Table
}

// MeteringIntervals are the metering granularities of Table I.
func MeteringIntervals() []time.Duration {
	return []time.Duration{
		5 * time.Second, 10 * time.Second, 30 * time.Second, 60 * time.Second,
		5 * time.Minute, 10 * time.Minute, 15 * time.Minute,
	}
}

// Table1 reproduces Table I: the fraction of hidden spikes a power meter
// of each interval detects, across malicious-server setups × spike width
// {1,4} s × frequency {1,6}/min. One simulation per attack shape feeds
// all seven meters offline from the recorded rack draw.
//
// The four-server attacker is evaluated twice, bracketing the paper's
// scenario: "4/full" fires all hosts at full height (maximum overload
// power, easily metered), "4/split" divides the spike amplitude across
// hosts (AmplitudeScale 1/4) so the rack-level spike energy matches one
// full-height host while each host stays stealthy.
func Table1(p Params) (*Table1Result, error) {
	horizon := scaleDur(p, 15*time.Minute, 4*time.Minute)
	intervals := MeteringIntervals()
	if p.Quick {
		intervals = intervals[:4]
	}
	out := &Table1Result{}
	tbl := report.NewTable(
		"Table I — detection rate under different power metering schemes",
		"Interval", "Servers", "Width", "PerMin", "Spikes", "DetectionRate")

	setups := []struct {
		label   string
		servers int
		scale   float64
	}{
		{"1", 1, 1}, {"4/full", 4, 1}, {"4/split", 4, 0.25},
	}
	// One simulation per attack shape runs in the pool; the seven-meter
	// offline replay of each recording is cheap and stays sequential.
	type shapeRun struct {
		rec      *sim.Recording
		spikes   []time.Duration
		baseline units.Watts
	}
	var jobs []runner.Job[shapeRun]
	for _, setup := range setups {
		for _, width := range []time.Duration{time.Second, 4 * time.Second} {
			for _, perMin := range []float64{1, 6} {
				key := fmt.Sprintf("table1/%s/width=%v/perMin=%g", setup.label, width, perMin)
				jobs = append(jobs, runner.Job[shapeRun]{
					Key: key,
					Run: func() (shapeRun, error) {
						rec, spikes, baseline, err := table1Run(p, key, setup.servers, setup.scale, width, perMin, horizon)
						if err != nil {
							return shapeRun{}, err
						}
						return shapeRun{rec: rec, spikes: spikes, baseline: baseline}, nil
					},
				})
			}
		}
	}
	shapes, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, setup := range setups {
		for _, width := range []time.Duration{time.Second, 4 * time.Second} {
			for _, perMin := range []float64{1, 6} {
				run := shapes[k]
				k++
				for _, iv := range intervals {
					rate := meterAndDetect(run.rec, run.spikes, run.baseline, iv, p.seed())
					out.Cells = append(out.Cells, Table1Cell{
						Interval: iv, Servers: setup.servers, Scale: setup.scale,
						Width: width, PerMinute: perMin, DetectionRate: rate,
						SpikesLaunched: len(run.spikes),
					})
					tbl.AddRow(iv.String(), setup.label, width.String(), perMin,
						len(run.spikes), fmt.Sprintf("%.1f%%", rate*100))
				}
			}
		}
	}
	out.Table = tbl
	return out, nil
}

// table1Run simulates one attack shape and returns the recorded rack draw
// at tick resolution, the spike launch offsets, and the pre-attack mean
// rack power to seed the detector baseline.
func table1Run(p Params, key string, servers int, scale float64, width time.Duration, perMin float64,
	horizon time.Duration) (*sim.Recording, []time.Duration, units.Watts, error) {
	const racks, spr = 1, 10
	bg := cachedFlatNoisyBackground(racks*spr, 0.50, horizon, p.seed()+5)
	atk := attackSpec(servers, virus.Config{
		Profile:         virus.CPUIntensive,
		PrepDuration:    time.Second,
		MaxPhaseI:       time.Second,
		SpikeWidth:      width,
		SpikesPerMinute: perMin,
		RestFraction:    0.45, // blend into the 0.50 background between spikes
		AmplitudeScale:  scale,
		Seed:            p.seed(),
	})
	cfg := sim.Config{
		Key:            key,
		Racks:          racks,
		ServersPerRack: spr,
		Tick:           100 * time.Millisecond,
		Duration:       horizon,
		Background:     bg,
		Attack:         atk,
		BatteryFactory: emptyBatteryFactory,
		DisableTrips:   true,
		Record:         true,
	}
	res, err := sim.Run(cfg, schemes.NewConv(schemes.Options{}))
	if err != nil {
		return nil, nil, 0, err
	}
	// Baseline: what the monitor expects of this rack — idle-plus-mean
	// background power.
	baseline := units.Watts(10 * (299 + 0.50*(521-299)))
	return res.Recording, atk.Attack.SpikeTimes(), baseline, nil
}

// meterAndDetect replays a recorded rack-draw series through a meter and
// detector of the given interval and returns the per-spike detection
// rate.
func meterAndDetect(rec *sim.Recording, spikes []time.Duration,
	baseline units.Watts, interval time.Duration, seed uint64) float64 {
	meter, err := metering.NewMeter(interval, 25, seed)
	if err != nil {
		return 0
	}
	det := metering.NewDetector(baseline)
	var flagged []metering.IntervalReading
	draw := rec.RackDraw[0]
	for _, v := range draw.Values {
		for _, r := range meter.Record(units.Watts(v), rec.Step) {
			if det.Observe(r) {
				flagged = append(flagged, r)
			}
		}
	}
	return metering.DetectionRate(spikes, flagged, interval)
}
