package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/virus"
)

// Fig8Point is one bar of a Figure 8 chart.
type Fig8Point struct {
	Profile string
	// X is the swept value: node count (A), width seconds (B), or spikes
	// per minute (C).
	X float64
	// Tolerance is the overshoot tolerance (A, B) or the oversubscription
	// ratio (C).
	Tolerance float64
	// EffectiveAttacks over the 15-minute window.
	EffectiveAttacks int
}

// Fig8Result bundles one chart's points with its rendered table.
type Fig8Result struct {
	Points []Fig8Point
	Table  *report.Table
}

// countEffectiveAttacks runs the Phase-II spike train against a drained
// single-rack cluster and counts overload events over the window.
func countEffectiveAttacks(p Params, key string, profile virus.Profile, nodes int,
	width time.Duration, perMinute float64, overshoot, ratio, bgMean float64) (int, error) {
	horizon := scaleDur(p, 15*time.Minute, 3*time.Minute)
	const racks, spr = 1, 10
	bg := cachedFineNoisyBackground(racks*spr, bgMean,
		horizon, p.seed()+uint64(nodes)*17+uint64(width/time.Millisecond))
	cfg := sim.Config{
		Key:                   key,
		Racks:                 racks,
		ServersPerRack:        spr,
		Tick:                  100 * time.Millisecond,
		Duration:              horizon,
		OvershootTolerance:    overshoot,
		OversubscriptionRatio: ratio,
		Background:            bg,
		Attack: attackSpec(nodes, virus.Config{
			Profile:         profile,
			PrepDuration:    time.Second,
			MaxPhaseI:       time.Second, // batteries start drained: straight to spikes
			SpikeWidth:      width,
			SpikesPerMinute: perMinute,
			Seed:            p.seed(),
		}),
		BatteryFactory: emptyBatteryFactory,
		DisableTrips:   true,
	}
	res, err := sim.Run(cfg, schemes.NewConv(schemes.Options{}))
	if err != nil {
		return 0, err
	}
	return res.EffectiveAttacks, nil
}

// Fig8A reproduces Figure 8(A): effective attacks vs number of malicious
// nodes (1–4) for each virus profile at overshoot tolerances 4–16%.
func Fig8A(p Params) (*Fig8Result, error) {
	overshoots := []float64{0.04, 0.08, 0.12, 0.16}
	tbl := report.NewTable(
		"Figure 8A — effective attacks (15 min) vs malicious nodes",
		"Profile", "Nodes", "Overshoot", "EffectiveAttacks")
	var jobs []runner.Job[int]
	for _, prof := range virus.Profiles() {
		for nodes := 1; nodes <= 4; nodes++ {
			for _, os := range overshoots {
				key := fmt.Sprintf("fig8a/%s/nodes=%d/os=%.2f", prof.Name, nodes, os)
				jobs = append(jobs, runner.Job[int]{
					Key: key,
					Run: func() (int, error) {
						return countEffectiveAttacks(p, key, prof, nodes, time.Second, 4, os, 0, 0.45)
					},
				})
			}
		}
	}
	counts, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	var points []Fig8Point
	k := 0
	for _, prof := range virus.Profiles() {
		for nodes := 1; nodes <= 4; nodes++ {
			for _, os := range overshoots {
				n := counts[k]
				k++
				points = append(points, Fig8Point{prof.Name, float64(nodes), os, n})
				tbl.AddRow(prof.Name, nodes, fmt.Sprintf("%.0f%%", os*100), n)
			}
		}
	}
	return &Fig8Result{Points: points, Table: tbl}, nil
}

// Fig8B reproduces Figure 8(B): effective attacks vs spike width (1–4 s)
// with two malicious nodes.
func Fig8B(p Params) (*Fig8Result, error) {
	overshoots := []float64{0.04, 0.08, 0.12, 0.16}
	widths := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	tbl := report.NewTable(
		"Figure 8B — effective attacks (15 min) vs spike width (2 nodes)",
		"Profile", "Width(s)", "Overshoot", "EffectiveAttacks")
	var jobs []runner.Job[int]
	for _, prof := range virus.Profiles() {
		for _, w := range widths {
			for _, os := range overshoots {
				key := fmt.Sprintf("fig8b/%s/width=%v/os=%.2f", prof.Name, w, os)
				jobs = append(jobs, runner.Job[int]{
					Key: key,
					Run: func() (int, error) {
						return countEffectiveAttacks(p, key, prof, 2, w, 4, os, 0, 0.45)
					},
				})
			}
		}
	}
	counts, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	var points []Fig8Point
	k := 0
	for _, prof := range virus.Profiles() {
		for _, w := range widths {
			for _, os := range overshoots {
				n := counts[k]
				k++
				points = append(points, Fig8Point{prof.Name, w.Seconds(), os, n})
				tbl.AddRow(prof.Name, w.Seconds(), fmt.Sprintf("%.0f%%", os*100), n)
			}
		}
	}
	return &Fig8Result{Points: points, Table: tbl}, nil
}

// Fig8C reproduces Figure 8(C): effective attacks vs spike frequency
// (1–6 per minute, 1 s spikes) at power budgets of 55–70% of nameplate.
func Fig8C(p Params) (*Fig8Result, error) {
	// The paper sweeps budgets of 55-70%% of nameplate on its testbed; the
	// DL585's active-idle power alone is 57%% of peak, so the equivalent
	// feasible range here is 70-85%%.
	ratios := []float64{0.85, 0.80, 0.75, 0.70}
	freqs := []float64{1, 2, 4, 6}
	tbl := report.NewTable(
		"Figure 8C — effective attacks (15 min) vs spike frequency (1 s spikes)",
		"Profile", "PerMinute", "Nameplate%", "EffectiveAttacks")
	var jobs []runner.Job[int]
	for _, prof := range virus.Profiles() {
		for _, f := range freqs {
			for _, r := range ratios {
				key := fmt.Sprintf("fig8c/%s/freq=%g/ratio=%.2f", prof.Name, f, r)
				jobs = append(jobs, runner.Job[int]{
					Key: key,
					Run: func() (int, error) {
						return countEffectiveAttacks(p, key, prof, 3, time.Second, f, 0.08, r, 0.40)
					},
				})
			}
		}
	}
	counts, err := runner.Collect(p.pool(), jobs)
	if err != nil {
		return nil, err
	}
	var points []Fig8Point
	k := 0
	for _, prof := range virus.Profiles() {
		for _, f := range freqs {
			for _, r := range ratios {
				n := counts[k]
				k++
				points = append(points, Fig8Point{prof.Name, f, r, n})
				tbl.AddRow(prof.Name, f, fmt.Sprintf("%.0f%%", r*100), n)
			}
		}
	}
	return &Fig8Result{Points: points, Table: tbl}, nil
}
