package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig5Result holds the Figure 5 reproduction: the standard deviation of
// battery SOC across the rack fleet at every 5-minute timestamp, under
// online vs offline charging.
type Fig5Result struct {
	// Step is the sampling period.
	Step time.Duration
	// Online and Offline are the SOC-stddev time series (percent).
	Online, Offline *stats.Series
	// Table summarizes both series, downsampled for readability.
	Table *report.Table
}

// Fig5 reproduces Figure 5: uneven utilization of distributed batteries.
// A PS-managed cluster replays the trace for the horizon; at each
// timestamp the standard deviation of the 22 rack SOCs is computed. The
// paper reports 3–12% variation for online charging and roughly double
// for offline charging.
func Fig5(p Params) (*Fig5Result, error) {
	racks := scaleInt(p, 22, 8)
	spr := 10
	horizon := scaleDur(p, 14*24*time.Hour, 36*time.Hour)
	tick := 5 * time.Minute

	bg, err := cachedTraceBackground(racks*spr, horizon, tick, p.seed(), false)
	if err != nil {
		return nil, err
	}
	job := func(offline bool) runner.Job[*stats.Series] {
		return runner.Job[*stats.Series]{
			Key: fmt.Sprintf("fig5/offline=%v", offline),
			Run: func() (*stats.Series, error) {
				cfg := sim.Config{
					Key:            fmt.Sprintf("fig5/offline=%v", offline),
					Racks:          racks,
					ServersPerRack: spr,
					// Gentler oversubscription: only diurnal peaks discharge,
					// so batteries cycle rather than bottom out fleet-wide.
					OversubscriptionRatio: 0.84,
					Tick:                  tick,
					Duration:              horizon,
					Background:            bg,
					Record:                true,
					RecordStep:            tick,
					DisableTrips:          true,
				}
				res, err := sim.Run(cfg, schemes.NewPS(schemes.Options{
					Offline: offline,
					// A deep recharge trigger: racks that only dip part-way
					// stay part-charged, which is what makes offline charging
					// uneven.
					OfflineThreshold: 0.15,
				}))
				if err != nil {
					return nil, err
				}
				return socSpreadSeries(res.Recording), nil
			},
		}
	}
	series, err := runner.Collect(p.pool(),
		[]runner.Job[*stats.Series]{job(false), job(true)})
	if err != nil {
		return nil, err
	}
	online, offline := series[0], series[1]

	tbl := report.NewTable(
		"Figure 5 — stddev of rack battery SOC (%) over time, online vs offline charging",
		"Timestamp(x5min)", "Online(%)", "Offline(%)")
	stride := online.Len() / 48
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < online.Len(); i += stride {
		tbl.AddRow(i, online.Values[i], offline.Values[i])
	}
	tbl.AddRow("mean", online.Mean(), offline.Mean())
	tbl.AddRow("max", online.Max(), offline.Max())
	return &Fig5Result{Step: tick, Online: online, Offline: offline, Table: tbl}, nil
}

// socSpreadSeries computes the cross-rack SOC standard deviation (in
// percent) at each recorded sample.
func socSpreadSeries(rec *sim.Recording) *stats.Series {
	out := stats.NewSeries(rec.Step)
	if len(rec.RackSOC) == 0 {
		return out
	}
	n := rec.RackSOC[0].Len()
	socs := make([]float64, len(rec.RackSOC))
	for s := 0; s < n; s++ {
		for r := range rec.RackSOC {
			socs[r] = rec.RackSOC[r].Values[s]
		}
		out.Append(stats.StdDev(socs) * 100)
	}
	return out
}
