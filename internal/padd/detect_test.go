package padd_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/metering"
	"repro/internal/padd"
)

// TestDetectionLatencyPinned replays the canonical Figure-9 scenario
// through a live session and pins the fleet detection/shed latency
// accounting against an independent reference: a fresh stepper driven
// tick-for-tick with its own meter and CUSUM detector, replicating the
// session's onset/flag/shed rules. Counts, bucket occupancy and sums
// must match exactly — both sides run the same deterministic engine, so
// any divergence is a bookkeeping bug, not noise.
func TestDetectionLatencyPinned(t *testing.T) {
	st := figure9Stepper(t, false)
	meter, err := metering.NewMeter(5*time.Second, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cusum := metering.NewCUSUMDetector(0)

	var (
		demand     [][]float64
		excursion  bool
		shedSeen   bool
		onset      time.Duration
		onsets     int64
		detectLats []time.Duration
		shedLats   []time.Duration
	)
	for !st.Done() {
		d := st.ComputeDemand()
		cp := make([]float64, len(d))
		copy(cp, d)
		demand = append(demand, cp)
		if err := st.Advance(d); err != nil {
			t.Fatal(err)
		}
		ts := st.Stats()
		for _, r := range meter.Record(ts.TotalGrid, st.Tick()) {
			flagged := cusum.Observe(r)
			if !excursion && (flagged || cusum.Sum() > 0) {
				excursion, shedSeen, onset = true, false, r.Start
				onsets++
			}
			if flagged {
				detectLats = append(detectLats, st.Now()-onset)
				excursion = false
			} else if excursion && cusum.Sum() == 0 {
				excursion = false
			}
		}
		if excursion && !shedSeen && ts.ShedServers > 0 {
			shedSeen = true
			shedLats = append(shedLats, st.Now()-onset)
		}
	}
	if onsets == 0 || len(detectLats) == 0 || len(shedLats) == 0 {
		t.Fatalf("reference run proves nothing: %d onsets, %d detections, %d sheds",
			onsets, len(detectLats), len(shedLats))
	}

	// Online: the same demand through a live session, drained by Delete.
	mgr := padd.NewManager()
	defer mgr.Shutdown(context.Background())
	sess, err := mgr.Create(padd.SessionConfig{
		ID: "det", Scheme: "PAD", Racks: fig9Racks, ServersPerRack: fig9SPR,
		Tick:             padd.Duration{Duration: fig9Tick},
		Horizon:          padd.Duration{Duration: fig9Duration},
		Oversubscription: fig9Ratio,
	})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(demand); start += 100 {
		end := min(start+100, len(demand))
		for {
			err := sess.Enqueue(demand[start:end])
			if err == nil {
				break
			}
			if err != padd.ErrQueueFull {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := mgr.Delete("det"); err != nil {
		t.Fatal(err)
	}

	fs := mgr.Fleet()
	if fs.DetectionOnsets != onsets {
		t.Errorf("detection onsets = %d, want %d", fs.DetectionOnsets, onsets)
	}
	if fs.SessionsUnderAttack != 0 {
		t.Errorf("sessions under attack = %d after drain, want 0", fs.SessionsUnderAttack)
	}
	checkHist := func(name string, h padd.HistogramStatus, lats []time.Duration) {
		t.Helper()
		counts := make([]int64, len(h.BoundsSeconds)+1)
		var sumNanos int64
		for _, d := range lats {
			sumNanos += int64(d)
			s := d.Seconds()
			bi := len(h.BoundsSeconds)
			for i, b := range h.BoundsSeconds {
				if s <= b {
					bi = i
					break
				}
			}
			counts[bi]++
		}
		if h.Count != int64(len(lats)) {
			t.Errorf("%s latency count = %d, want %d", name, h.Count, len(lats))
		}
		// Both sides compute seconds as nanos/1e9, so == is exact.
		if want := float64(sumNanos) / 1e9; h.SumSeconds != want {
			t.Errorf("%s latency sum = %v s, want %v s", name, h.SumSeconds, want)
		}
		for i := range counts {
			if h.Counts[i] != counts[i] {
				t.Errorf("%s latency bucket %d = %d, want %d (got %v, want %v)",
					name, i, h.Counts[i], counts[i], h.Counts, counts)
				break
			}
		}
	}
	checkHist("detection", fs.DetectionLatency, detectLats)
	checkHist("shed", fs.ShedLatency, shedLats)
}
