package padd_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/policytest"
	"repro/internal/padd"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

// legalEdges derives the set of allowed level transitions from the
// shared canonical timeline, so the online test and the core unit test
// agree on what Figure 9 permits.
func legalEdges() map[[2]core.Level]bool {
	edges := map[[2]core.Level]bool{}
	last := core.Level1
	for _, s := range policytest.Timeline() {
		if s.Want != last {
			edges[[2]core.Level{last, s.Want}] = true
			last = s.Want
		}
	}
	return edges
}

// The canonical hot scenario — noisy 70% background plus a CPU-spike
// virus on 120 nodes — shared by TestOnlineLevelsMatchOffline and the
// detection-latency pin. Hot enough that PAD leaves Level 1, sheds,
// and the CUSUM detector flags.
const (
	fig9Racks    = 22
	fig9SPR      = 10
	fig9Nodes    = 120
	fig9Ratio    = 0.6
	fig9Duration = 4 * time.Minute
	fig9Tick     = 100 * time.Millisecond
)

// figure9Stepper builds a fresh offline stepper for the canonical
// scenario; every instance is bit-identical (seeded generators).
func figure9Stepper(t *testing.T, record bool) *sim.Stepper {
	t.Helper()
	bg := stats.NoisyUtilization(fig9Racks*fig9SPR, 0.7, fig9Duration, 10*time.Second, 7)
	atk, err := virus.New(virus.Config{
		Profile: virus.CPUIntensive, SpikeWidth: 5 * time.Second, SpikesPerMinute: 6, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	attacked := make([]int, fig9Nodes)
	for i := range attacked {
		attacked[i] = i
	}
	scheme, err := schemes.ByName("PAD", schemes.Options{ServersPerRack: fig9SPR})
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{
		Racks: fig9Racks, ServersPerRack: fig9SPR, Duration: fig9Duration, Tick: fig9Tick,
		OversubscriptionRatio: fig9Ratio,
		Background:            bg,
		Attack:                &sim.AttackSpec{Servers: attacked, Attack: atk},
		MicroDEBFactory:       schemes.MicroDEBFactory(0.01),
		Record:                record, RecordStep: fig9Tick,
	}
	st, err := sim.NewStepper(simCfg, scheme)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestOnlineLevelsMatchOffline drives a scenario hot enough that PAD
// leaves Level 1 and recovers, and checks three things: the offline
// engine's level sequence only uses edges the canonical timeline
// allows, the online session reproduces that sequence exactly, and the
// session's event log reports each transition.
func TestOnlineLevelsMatchOffline(t *testing.T) {
	const (
		racks    = fig9Racks
		spr      = fig9SPR
		ratio    = fig9Ratio
		duration = fig9Duration
		tick     = fig9Tick
	)
	st := figure9Stepper(t, true)
	var demand [][]float64
	for !st.Done() {
		d := st.ComputeDemand()
		cp := make([]float64, len(d))
		copy(cp, d)
		demand = append(demand, cp)
		if err := st.Advance(d); err != nil {
			t.Fatal(err)
		}
	}
	offline := st.Result()

	offTrans := transitions(offline.Recording.Levels)
	if len(offTrans) == 0 {
		t.Fatal("scenario produced no level transitions; it proves nothing")
	}
	edges := legalEdges()
	for _, e := range offTrans {
		if !edges[e] {
			t.Errorf("offline level walk used illegal edge %v -> %v", e[0], e[1])
		}
	}

	// Online: same demand through a live session.
	mgr := padd.NewManager()
	defer mgr.Shutdown(context.Background())
	sess, err := mgr.Create(padd.SessionConfig{
		ID: "policy", Scheme: "PAD", Racks: racks, ServersPerRack: spr,
		Tick: padd.Duration{Duration: tick}, Horizon: padd.Duration{Duration: duration},
		Oversubscription: ratio,
		Record:           true, RecordStep: padd.Duration{Duration: tick},
	})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(demand); start += 100 {
		end := min(start+100, len(demand))
		for {
			err := sess.Enqueue(demand[start:end])
			if err == nil {
				break
			}
			if err != padd.ErrQueueFull {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	online, err := mgr.Delete("policy") // Stop drains the queue first
	if err != nil {
		t.Fatal(err)
	}
	onRes := online.Result()

	if !reflect.DeepEqual(offline.Recording.Levels, onRes.Recording.Levels) {
		t.Errorf("online level sequence diverged: offline %d transitions %v, online %v",
			len(offTrans), offTrans, transitions(onRes.Recording.Levels))
	}

	// The event log must narrate the same walk.
	var logged [][2]core.Level
	for _, e := range online.Events(0) {
		if e.Type != padd.EventLevel {
			continue
		}
		// "initial level L1-Normal" doesn't parse as a transition and is
		// skipped; "L1-Normal -> L2-MinorIncident" does.
		var from, to core.Level
		if parseTransition(e.Detail, &from, &to) {
			logged = append(logged, [2]core.Level{from, to})
		}
	}
	if !reflect.DeepEqual(logged, offTrans) {
		t.Errorf("event log transitions %v, want %v", logged, offTrans)
	}
}

func transitions(levels []core.Level) [][2]core.Level {
	var out [][2]core.Level
	if len(levels) == 0 {
		return out
	}
	last := levels[0]
	for _, l := range levels[1:] {
		if l != last {
			out = append(out, [2]core.Level{last, l})
			last = l
		}
	}
	return out
}

// parseTransition decodes "L1-Normal -> L2-MinorIncident" details.
func parseTransition(detail string, from, to *core.Level) bool {
	var f, t int
	var fName, tName string
	if n, _ := fmt.Sscanf(detail, "L%d-%s -> L%d-%s", &f, &fName, &t, &tName); n == 4 {
		*from, *to = core.Level(f), core.Level(t)
		return true
	}
	return false
}
