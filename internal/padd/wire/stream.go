package wire

// Stream framing: the persistent-ingest envelope around the batched
// telemetry frame, and the compact binary ack/reject frame the daemon
// answers with. One long-lived connection carries an unbounded sequence
// of data frames client→server and ack frames server→client; both
// directions are length-prefixed so a bufio reader can walk the stream
// without any delimiter scanning.
//
// Data frame layout (all integers little-endian):
//
//	offset  size  field
//	0       2     magic "PS" (0x50 0x53)
//	2       1     version (currently 1)
//	3       1     type (1 = data; others reserved)
//	4       4     uint32 total length, including this 16-byte header
//	8       8     uint64 sequence number (client-chosen, echoed in the ack)
//	16      ...   one standard wire frame ("PW", see package doc)
//
// The embedded wire frame carries its own length; the envelope length
// must agree (envelope = StreamHeaderSize + frame), which the decoder
// cross-checks, so a corrupted length field cannot desynchronize the
// stream silently.
//
// Ack frame layout:
//
//	offset  size  field
//	0       2     magic "PA" (0x50 0x41)
//	2       1     version (currently 1)
//	3       1     status (AckOK, AckPartial, AckBackpressure, AckDraining, AckMalformed)
//	4       4     uint32 total length, including this 28-byte header
//	8       8     uint64 sequence number (echoes the data frame)
//	16      4     uint32 accepted record count
//	20      4     uint32 accepted sample count
//	24      4     uint32 reject count R
//	28      ...   R reject entries: uint8 reason, uint8 id length L, L id bytes
//
// An ack with no rejects is exactly AckHeaderSize bytes — the steady
// state of a healthy stream — and AppendAck encodes into a caller-owned
// buffer, so the server acknowledges millions of frames without
// allocating.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Stream format constants.
const (
	// StreamHeaderSize is the data-frame envelope length in bytes.
	StreamHeaderSize = 16
	// StreamVersion is the envelope version this package speaks.
	StreamVersion = 1
	// StreamData is the only defined envelope type.
	StreamData = 1

	// AckHeaderSize is the fixed ack-frame header length in bytes.
	AckHeaderSize = 28
	// AckVersion is the ack format version this package speaks.
	AckVersion = 1
	// MaxAckLen bounds one ack frame; a full 65k-record frame rejected
	// record by record still fits with room to spare.
	MaxAckLen = 8 << 20

	streamMagic0 = 'P'
	streamMagic1 = 'S'
	ackMagic0    = 'P'
	ackMagic1    = 'A'
)

// Ack statuses: the frame-level verdict.
const (
	// AckOK: every record was accepted (or the frame was empty).
	AckOK = 0
	// AckPartial: some records rejected; see the reject entries.
	AckPartial = 1
	// AckBackpressure: nothing accepted and every rejection was a full
	// queue — the 429 equivalent; resend the whole frame after a pause.
	AckBackpressure = 2
	// AckDraining: nothing accepted and every rejection was a stopping
	// session — the 503 equivalent; the daemon is shutting down.
	AckDraining = 3
	// AckMalformed: the frame went syntactically bad mid-decode. Records
	// before the corruption are counted as accepted and stay accepted;
	// the server drops the connection after sending this ack.
	AckMalformed = 4
)

// Reject reasons, one byte per rejected record.
const (
	// RejectUnknownSession: no session with the record's id.
	RejectUnknownSession = 1
	// RejectQueueFull: the session's bounded ingest queue is full;
	// retryable backpressure.
	RejectQueueFull = 2
	// RejectStopping: the session is draining for shutdown.
	RejectStopping = 3
	// RejectShape: the record's servers-per-sample does not match the
	// session's cluster.
	RejectShape = 4
	// RejectNonFinite: the payload carried NaN or ±Inf.
	RejectNonFinite = 5
	// RejectOther: any other per-record failure.
	RejectOther = 6
)

// AckStatusName returns the metrics label for an ack status.
func AckStatusName(status byte) string {
	switch status {
	case AckOK:
		return "ok"
	case AckPartial:
		return "partial"
	case AckBackpressure:
		return "backpressure"
	case AckDraining:
		return "draining"
	case AckMalformed:
		return "malformed"
	}
	return "unknown"
}

// AckReject is one rejected record inside an ack: the reason code and
// the record's session id. When decoded, ID aliases the reader's buffer
// and is valid until the next ack is read.
type AckReject struct {
	Reason byte
	ID     []byte
}

// Ack is one decoded (or to-be-encoded) ack frame.
type Ack struct {
	Seq     uint64
	Status  byte
	Records uint32 // accepted record count
	Samples uint32 // accepted sample count
	Rejects []AckReject
}

// AppendStream appends a data-frame envelope followed by frame to dst
// and returns the extended slice. frame must be a complete wire frame
// (as produced by Encoder.Frame).
func AppendStream(dst []byte, seq uint64, frame []byte) []byte {
	dst = append(dst, streamMagic0, streamMagic1, StreamVersion, StreamData)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(StreamHeaderSize+len(frame)))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	return append(dst, frame...)
}

// AppendAck encodes a into dst and returns the extended slice. A caller
// that reuses dst across acks encodes with zero allocations.
func AppendAck(dst []byte, a *Ack) []byte {
	total := AckHeaderSize
	for i := range a.Rejects {
		total += 2 + len(a.Rejects[i].ID)
	}
	dst = append(dst, ackMagic0, ackMagic1, AckVersion, a.Status)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(total))
	dst = binary.LittleEndian.AppendUint64(dst, a.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, a.Records)
	dst = binary.LittleEndian.AppendUint32(dst, a.Samples)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a.Rejects)))
	for i := range a.Rejects {
		r := &a.Rejects[i]
		dst = append(dst, r.Reason, uint8(len(r.ID)))
		dst = append(dst, r.ID...)
	}
	return dst
}

// DecodeAck parses one complete ack frame from buf into a. Reject IDs
// alias buf. a.Rejects is reused when its capacity suffices, so a
// caller decoding acks in a loop allocates only while the reject list
// grows.
func DecodeAck(buf []byte, a *Ack) error {
	if len(buf) < AckHeaderSize {
		return fmt.Errorf("%w: %d ack header bytes, want %d", ErrTruncated, len(buf), AckHeaderSize)
	}
	if buf[0] != ackMagic0 || buf[1] != ackMagic1 {
		return fmt.Errorf("%w: ack magic 0x%02x%02x", ErrBadMagic, buf[0], buf[1])
	}
	if buf[2] != AckVersion {
		return fmt.Errorf("%w: ack version %d (want %d)", ErrVersion, buf[2], AckVersion)
	}
	if buf[3] > AckMalformed {
		return fmt.Errorf("%w: ack status %d", ErrMalformed, buf[3])
	}
	total := binary.LittleEndian.Uint32(buf[4:8])
	if int64(total) != int64(len(buf)) {
		return fmt.Errorf("%w: ack header says %d bytes, buffer has %d", ErrMalformed, total, len(buf))
	}
	a.Status = buf[3]
	a.Seq = binary.LittleEndian.Uint64(buf[8:16])
	a.Records = binary.LittleEndian.Uint32(buf[16:20])
	a.Samples = binary.LittleEndian.Uint32(buf[20:24])
	rejects := int(binary.LittleEndian.Uint32(buf[24:28]))
	// Each reject entry occupies at least 3 bytes (reason, idLen, 1 id
	// byte); bound the claimed count before looping.
	if int64(rejects)*3 > int64(len(buf)-AckHeaderSize) {
		return fmt.Errorf("%w: %d rejects cannot fit in %d bytes", ErrMalformed, rejects, len(buf)-AckHeaderSize)
	}
	a.Rejects = a.Rejects[:0]
	off := AckHeaderSize
	for i := 0; i < rejects; i++ {
		if off+2 > len(buf) {
			return fmt.Errorf("%w: reject entry header", ErrTruncated)
		}
		reason := buf[off]
		idLen := int(buf[off+1])
		off += 2
		if idLen < 1 || idLen > MaxIDLen {
			return fmt.Errorf("%w: reject id length %d out of [1, %d]", ErrMalformed, idLen, MaxIDLen)
		}
		if off+idLen > len(buf) {
			return fmt.Errorf("%w: reject id", ErrTruncated)
		}
		a.Rejects = append(a.Rejects, AckReject{Reason: reason, ID: buf[off : off+idLen]})
		off += idLen
	}
	if off != len(buf) {
		return fmt.Errorf("%w: %d trailing ack bytes", ErrMalformed, len(buf)-off)
	}
	return nil
}

// StreamReader walks the data frames of one persistent connection. It
// owns a single read buffer that is reused (and only grown) across
// frames, so a steady-state connection reads without allocating.
type StreamReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewStreamReader wraps r for frame-at-a-time reading.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next reads the next data frame, returning its sequence number and the
// embedded wire frame. The frame slice is valid until the next call.
// A clean end of stream (connection closed between frames) returns
// io.EOF; any mid-frame truncation or header corruption wraps
// ErrMalformed — the caller should drop the connection, since the
// stream cannot be resynchronized.
func (sr *StreamReader) Next() (seq uint64, frame []byte, err error) {
	var hdr [StreamHeaderSize]byte
	if _, err := io.ReadFull(sr.br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: stream header: %v", ErrTruncated, err)
	}
	if hdr[0] != streamMagic0 || hdr[1] != streamMagic1 {
		return 0, nil, fmt.Errorf("%w: stream magic 0x%02x%02x", ErrBadMagic, hdr[0], hdr[1])
	}
	if hdr[2] != StreamVersion {
		return 0, nil, fmt.Errorf("%w: stream version %d (want %d)", ErrVersion, hdr[2], StreamVersion)
	}
	if hdr[3] != StreamData {
		return 0, nil, fmt.Errorf("%w: stream type %d", ErrMalformed, hdr[3])
	}
	total := binary.LittleEndian.Uint32(hdr[4:8])
	if total < StreamHeaderSize+HeaderSize || total > StreamHeaderSize+MaxFrameLen {
		return 0, nil, fmt.Errorf("%w: stream frame length %d out of [%d, %d]",
			ErrMalformed, total, StreamHeaderSize+HeaderSize, StreamHeaderSize+MaxFrameLen)
	}
	seq = binary.LittleEndian.Uint64(hdr[8:16])
	n := int(total) - StreamHeaderSize
	if cap(sr.buf) < n {
		sr.buf = make([]byte, n)
	}
	sr.buf = sr.buf[:n]
	if _, err := io.ReadFull(sr.br, sr.buf); err != nil {
		return 0, nil, fmt.Errorf("%w: stream payload: %v", ErrTruncated, err)
	}
	return seq, sr.buf, nil
}

// AckReader walks the ack frames coming back over a stream connection,
// reusing one buffer the same way StreamReader does.
type AckReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewAckReader wraps r for ack-at-a-time reading. If r is already a
// *bufio.Reader it is used directly (no double buffering).
func NewAckReader(r io.Reader) *AckReader {
	if br, ok := r.(*bufio.Reader); ok {
		return &AckReader{br: br}
	}
	return &AckReader{br: bufio.NewReaderSize(r, 16 << 10)}
}

// Next reads and decodes the next ack into a. Reject IDs alias the
// reader's buffer and are valid until the next call. A clean end of
// stream returns io.EOF.
func (ar *AckReader) Next(a *Ack) error {
	var hdr [AckHeaderSize]byte
	if _, err := io.ReadFull(ar.br, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: ack header: %v", ErrTruncated, err)
	}
	total := binary.LittleEndian.Uint32(hdr[4:8])
	if total < AckHeaderSize || total > MaxAckLen {
		return fmt.Errorf("%w: ack length %d out of [%d, %d]", ErrMalformed, total, AckHeaderSize, MaxAckLen)
	}
	n := int(total)
	if cap(ar.buf) < n {
		ar.buf = make([]byte, n)
	}
	ar.buf = ar.buf[:n]
	copy(ar.buf, hdr[:])
	if _, err := io.ReadFull(ar.br, ar.buf[AckHeaderSize:]); err != nil {
		return fmt.Errorf("%w: ack payload: %v", ErrTruncated, err)
	}
	return DecodeAck(ar.buf, a)
}
