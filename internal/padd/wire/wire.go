// Package wire is padd's batched binary telemetry frame: a
// length-prefixed, versioned format carrying many (session, samples)
// records per HTTP POST, replacing one JSON document per session for
// fleet-scale ingest.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       2     magic "PW" (0x50 0x57)
//	2       1     version (currently 1)
//	3       1     flags (must be 0)
//	4       4     uint32 frame length, including this 12-byte header
//	8       4     uint32 record count
//	12      ...   records, back to back
//
// Record layout:
//
//	offset  size  field
//	0       1     uint8 id length L in [1, 64]
//	1       L     session id bytes ([A-Za-z0-9_.-], not re-validated here)
//	1+L     2     uint16 sample count S >= 1 (ticks in this record)
//	3+L     2     uint16 servers per sample N >= 1
//	5+L     8*S*N float64 utilization payload, sample-major
//	              (sample 0's N servers, then sample 1's, ...)
//
// The payload carries raw IEEE-754 bits, so a value survives the wire
// exactly and the binary ingest path feeds the engine the same float64
// the JSON path parses — which is what keeps padd's online==offline
// replay bit-identical through either format.
//
// Decoding is zero-copy and allocation-free in steady state: Decoder
// and Record are reused across frames, ID and the payload are subslices
// of the frame buffer, and FloatsInto converts the payload into a
// caller-owned buffer that is only grown, never reallocated per call.
// FloatsInto applies padd's ingest semantics: non-finite values reject
// the record, values outside [0, 1] are clamped — identical to the
// JSON path's validation, so the two formats cannot drift.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Format constants.
const (
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 12
	// Version is the format version this package encodes and accepts.
	Version = 1
	// MaxIDLen bounds a session id, matching padd's session-id grammar.
	MaxIDLen = 64
	// MaxSamples and MaxServers bound one record's shape (uint16 fields).
	MaxSamples = 1<<16 - 1
	MaxServers = 1<<16 - 1
	// MaxFrameLen bounds a whole frame; mirrors padd's HTTP body cap.
	MaxFrameLen = 32 << 20

	magic0 = 'P'
	magic1 = 'W'

	// recordOverhead is the smallest possible record: 1-byte id length,
	// 1-byte id, sample and server counts, one float64.
	recordOverhead = 1 + 1 + 2 + 2 + 8
)

// Decode errors. All decoder failures wrap ErrMalformed so callers can
// map any of them onto one "bad frame" response.
var (
	ErrMalformed = errors.New("wire: malformed frame")
	ErrTruncated = fmt.Errorf("%w: truncated", ErrMalformed)
	ErrBadMagic  = fmt.Errorf("%w: bad magic", ErrMalformed)
	ErrVersion   = fmt.Errorf("%w: unsupported version", ErrMalformed)
	ErrNonFinite = errors.New("wire: non-finite utilization")
)

// Encoder builds one frame. The zero value is ready to use; Reset
// recycles the buffer for the next frame so a steady-state producer
// allocates nothing once the buffer has grown to its working size.
type Encoder struct {
	buf     []byte
	records uint32
}

// Reset discards the frame under construction, keeping the buffer.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.records = 0
}

// Records reports how many records the frame holds so far.
func (e *Encoder) Records() int { return int(e.records) }

// Len reports the encoded frame size in bytes so far (header included).
func (e *Encoder) Len() int {
	if len(e.buf) == 0 {
		return 0
	}
	return len(e.buf)
}

func (e *Encoder) header() {
	if len(e.buf) != 0 {
		return
	}
	e.buf = append(e.buf, magic0, magic1, Version, 0,
		0, 0, 0, 0, // frame length, patched by Frame
		0, 0, 0, 0) // record count, patched by Frame
}

// AppendFlat appends one record from a sample-major flat payload of
// samples×servers utilization values.
func (e *Encoder) AppendFlat(id string, samples, servers int, u []float64) error {
	if len(id) == 0 || len(id) > MaxIDLen {
		return fmt.Errorf("wire: id length %d out of [1, %d]", len(id), MaxIDLen)
	}
	if samples < 1 || samples > MaxSamples {
		return fmt.Errorf("wire: %d samples out of [1, %d]", samples, MaxSamples)
	}
	if servers < 1 || servers > MaxServers {
		return fmt.Errorf("wire: %d servers out of [1, %d]", servers, MaxServers)
	}
	if len(u) != samples*servers {
		return fmt.Errorf("wire: payload has %d values for %d×%d", len(u), samples, servers)
	}
	e.header()
	e.buf = append(e.buf, uint8(len(id)))
	e.buf = append(e.buf, id...)
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(samples))
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(servers))
	for _, v := range u {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	}
	e.records++
	return nil
}

// AppendSamples appends one record from per-sample slices; every sample
// must have the same length.
func (e *Encoder) AppendSamples(id string, samples [][]float64) error {
	if len(samples) == 0 {
		return fmt.Errorf("wire: record %q has no samples", id)
	}
	servers := len(samples[0])
	if len(id) == 0 || len(id) > MaxIDLen {
		return fmt.Errorf("wire: id length %d out of [1, %d]", len(id), MaxIDLen)
	}
	if len(samples) > MaxSamples {
		return fmt.Errorf("wire: %d samples out of [1, %d]", len(samples), MaxSamples)
	}
	if servers < 1 || servers > MaxServers {
		return fmt.Errorf("wire: %d servers out of [1, %d]", servers, MaxServers)
	}
	e.header()
	e.buf = append(e.buf, uint8(len(id)))
	e.buf = append(e.buf, id...)
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(samples)))
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(servers))
	for _, s := range samples {
		if len(s) != servers {
			return fmt.Errorf("wire: ragged record %q: sample has %d values, first had %d",
				id, len(s), servers)
		}
		for _, v := range s {
			e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
		}
	}
	e.records++
	return nil
}

// Frame patches the header and returns the finished frame. The returned
// slice aliases the encoder's buffer and is valid until the next Reset
// or Append call. A frame with zero records is legal (a keep-alive).
func (e *Encoder) Frame() []byte {
	e.header()
	binary.LittleEndian.PutUint32(e.buf[4:8], uint32(len(e.buf)))
	binary.LittleEndian.PutUint32(e.buf[8:12], e.records)
	return e.buf
}

// Record is one decoded record. ID and the payload are zero-copy views
// into the frame buffer, valid until the decoder is Reset.
type Record struct {
	// ID is the session id bytes (view into the frame).
	ID []byte
	// Samples and Servers give the payload shape.
	Samples int
	Servers int

	payload []byte // Samples*Servers*8 bytes, view into the frame
}

// Values reports the number of float64 values in the payload.
func (r *Record) Values() int { return r.Samples * r.Servers }

// FloatsInto decodes the payload into dst, growing it only if its
// capacity is short — a caller that reuses dst across records decodes
// with zero allocations. Ingest semantics are applied here, identically
// to padd's JSON path: any NaN or ±Inf rejects the whole record with
// ErrNonFinite; finite values are clamped to [0, 1].
func (r *Record) FloatsInto(dst []float64) ([]float64, error) {
	n := r.Samples * r.Servers
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(r.payload[8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return dst, fmt.Errorf("%w: sample %d server %d", ErrNonFinite, i/r.Servers, i%r.Servers)
		}
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		dst[i] = v
	}
	return dst, nil
}

// Decoder iterates a frame's records. The zero value is empty; Reset it
// onto a frame buffer. Reusing one Decoder (and one Record) across
// frames keeps the decode path allocation-free.
type Decoder struct {
	buf  []byte
	off  int
	left int
}

// Reset validates the frame header and positions the decoder before the
// first record. The buffer is retained (zero-copy) and must not be
// modified while decoding.
func (d *Decoder) Reset(frame []byte) error {
	d.buf, d.off, d.left = nil, 0, 0
	if len(frame) < HeaderSize {
		return fmt.Errorf("%w: %d header bytes, want %d", ErrTruncated, len(frame), HeaderSize)
	}
	if frame[0] != magic0 || frame[1] != magic1 {
		return fmt.Errorf("%w: 0x%02x%02x", ErrBadMagic, frame[0], frame[1])
	}
	if frame[2] != Version {
		return fmt.Errorf("%w: %d (want %d)", ErrVersion, frame[2], Version)
	}
	if frame[3] != 0 {
		return fmt.Errorf("%w: reserved flags 0x%02x", ErrMalformed, frame[3])
	}
	if len(frame) > MaxFrameLen {
		return fmt.Errorf("%w: %d bytes exceeds cap %d", ErrMalformed, len(frame), MaxFrameLen)
	}
	frameLen := binary.LittleEndian.Uint32(frame[4:8])
	if int64(frameLen) != int64(len(frame)) {
		return fmt.Errorf("%w: header says %d bytes, frame has %d", ErrMalformed, frameLen, len(frame))
	}
	records := binary.LittleEndian.Uint32(frame[8:12])
	// Each record occupies at least recordOverhead bytes, so a count the
	// remaining bytes cannot hold is rejected before any record loop.
	if int64(records)*recordOverhead > int64(len(frame)-HeaderSize) {
		return fmt.Errorf("%w: %d records cannot fit in %d payload bytes",
			ErrMalformed, records, len(frame)-HeaderSize)
	}
	d.buf = frame
	d.off = HeaderSize
	d.left = int(records)
	return nil
}

// Remaining reports how many records are left to decode.
func (d *Decoder) Remaining() int { return d.left }

// Next decodes the next record into rec. It returns io.EOF after the
// last record — at which point the whole frame must have been consumed,
// or the frame is malformed (trailing garbage).
func (d *Decoder) Next(rec *Record) error {
	if d.left == 0 {
		if d.off != len(d.buf) {
			return fmt.Errorf("%w: %d trailing bytes after last record", ErrMalformed, len(d.buf)-d.off)
		}
		return io.EOF
	}
	buf, off := d.buf, d.off
	if off+1 > len(buf) {
		return fmt.Errorf("%w: record header", ErrTruncated)
	}
	idLen := int(buf[off])
	off++
	if idLen < 1 || idLen > MaxIDLen {
		return fmt.Errorf("%w: id length %d out of [1, %d]", ErrMalformed, idLen, MaxIDLen)
	}
	if off+idLen+4 > len(buf) {
		return fmt.Errorf("%w: record header", ErrTruncated)
	}
	id := buf[off : off+idLen]
	off += idLen
	samples := int(binary.LittleEndian.Uint16(buf[off:]))
	servers := int(binary.LittleEndian.Uint16(buf[off+2:]))
	off += 4
	if samples < 1 {
		return fmt.Errorf("%w: zero samples", ErrMalformed)
	}
	if servers < 1 {
		return fmt.Errorf("%w: zero servers", ErrMalformed)
	}
	payload := samples * servers * 8
	if off+payload > len(buf) {
		return fmt.Errorf("%w: payload wants %d bytes, %d remain", ErrTruncated, payload, len(buf)-off)
	}
	rec.ID = id
	rec.Samples = samples
	rec.Servers = servers
	rec.payload = buf[off : off+payload]
	d.off = off + payload
	d.left--
	return nil
}
