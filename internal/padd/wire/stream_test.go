package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

// streamOf concatenates data-frame envelopes for the given wire frames,
// numbering them seq 1..n.
func streamOf(frames ...[]byte) []byte {
	var buf []byte
	for i, f := range frames {
		buf = AppendStream(buf, uint64(i+1), f)
	}
	return buf
}

func TestStreamRoundTrip(t *testing.T) {
	f1 := validFrame()
	var e Encoder
	if err := e.AppendFlat("other-9", 1, 3, []float64{0.9, 0.8, 0.7}); err != nil {
		t.Fatal(err)
	}
	f2 := append([]byte(nil), e.Frame()...)

	sr := NewStreamReader(bytes.NewReader(streamOf(f1, f2)))
	for i, want := range [][]byte{f1, f2} {
		seq, frame, err := sr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Errorf("frame %d: seq %d, want %d", i, seq, i+1)
		}
		if !bytes.Equal(frame, want) {
			t.Errorf("frame %d: payload differs", i)
		}
		// The embedded frame must decode as a normal wire frame.
		var d Decoder
		if err := d.Reset(frame); err != nil {
			t.Errorf("frame %d: embedded decode: %v", i, err)
		}
	}
	if _, _, err := sr.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// TestStreamCleanVsMidFrameEOF pins the reconnect semantics: a
// connection dropped between frames is a clean io.EOF, one dropped
// inside a frame is ErrMalformed (the unacked frame is simply lost).
func TestStreamCleanVsMidFrameEOF(t *testing.T) {
	stream := streamOf(validFrame())
	for cut := 1; cut < len(stream); cut++ {
		sr := NewStreamReader(bytes.NewReader(stream[:cut]))
		_, _, err := sr.Next()
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("cut at %d: %v, want ErrMalformed", cut, err)
		}
	}
	sr := NewStreamReader(bytes.NewReader(stream))
	if _, _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sr.Next(); err != io.EOF {
		t.Fatalf("clean boundary: %v, want io.EOF", err)
	}
}

func TestStreamRejects(t *testing.T) {
	good := streamOf(validFrame())
	cases := map[string]func(b []byte) []byte{
		"bad magic":   func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version": func(b []byte) []byte { b[2] = 7; return b },
		"bad type":    func(b []byte) []byte { b[3] = 9; return b },
		"undersized length": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], StreamHeaderSize)
			return b
		},
		"oversized length": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], StreamHeaderSize+MaxFrameLen+1)
			return b
		},
		"length/frame disagreement": func(b []byte) []byte {
			// Envelope claims one byte more than the embedded frame; the
			// reader consumes it, and the embedded decode must fail.
			binary.LittleEndian.PutUint32(b[4:8], uint32(len(b)+1))
			return append(b, 0)
		},
	}
	for name, mut := range cases {
		b := mut(append([]byte(nil), good...))
		sr := NewStreamReader(bytes.NewReader(b))
		_, frame, err := sr.Next()
		if err == nil {
			var d Decoder
			err = d.Reset(frame)
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: %v, want ErrMalformed", name, err)
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	in := Ack{
		Seq:     0xdeadbeefcafe,
		Status:  AckPartial,
		Records: 61,
		Samples: 976,
		Rejects: []AckReject{
			{Reason: RejectQueueFull, ID: []byte("fleet-00042")},
			{Reason: RejectUnknownSession, ID: []byte("ghost")},
			{Reason: RejectShape, ID: []byte("s")},
		},
	}
	buf := AppendAck(nil, &in)
	var out Ack
	if err := DecodeAck(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.Status != in.Status || out.Records != in.Records || out.Samples != in.Samples {
		t.Errorf("header round trip: %+v != %+v", out, in)
	}
	if len(out.Rejects) != len(in.Rejects) {
		t.Fatalf("%d rejects, want %d", len(out.Rejects), len(in.Rejects))
	}
	for i := range in.Rejects {
		if out.Rejects[i].Reason != in.Rejects[i].Reason || !bytes.Equal(out.Rejects[i].ID, in.Rejects[i].ID) {
			t.Errorf("reject %d: %v != %v", i, out.Rejects[i], in.Rejects[i])
		}
	}

	// A clean ack is exactly the header.
	ok := Ack{Seq: 1, Status: AckOK, Records: 64, Samples: 1024}
	if n := len(AppendAck(nil, &ok)); n != AckHeaderSize {
		t.Errorf("clean ack is %d bytes, want %d", n, AckHeaderSize)
	}
}

func TestAckReaderSequence(t *testing.T) {
	var buf []byte
	buf = AppendAck(buf, &Ack{Seq: 1, Status: AckOK, Records: 2, Samples: 32})
	buf = AppendAck(buf, &Ack{Seq: 2, Status: AckBackpressure,
		Rejects: []AckReject{{Reason: RejectQueueFull, ID: []byte("a")}}})
	buf = AppendAck(buf, &Ack{Seq: 3, Status: AckOK})

	ar := NewAckReader(bytes.NewReader(buf))
	var a Ack
	for want := uint64(1); want <= 3; want++ {
		if err := ar.Next(&a); err != nil {
			t.Fatalf("ack %d: %v", want, err)
		}
		if a.Seq != want {
			t.Errorf("seq %d, want %d", a.Seq, want)
		}
	}
	if err := ar.Next(&a); err != io.EOF {
		t.Fatalf("end of acks: %v, want io.EOF", err)
	}
}

func TestAckRejects(t *testing.T) {
	good := AppendAck(nil, &Ack{Seq: 9, Status: AckPartial, Records: 1, Samples: 4,
		Rejects: []AckReject{{Reason: RejectStopping, ID: []byte("drain-1")}}})
	cases := map[string]func(b []byte) []byte{
		"truncated header": func(b []byte) []byte { return b[:AckHeaderSize-1] },
		"bad magic":        func(b []byte) []byte { b[1] = 'X'; return b },
		"bad version":      func(b []byte) []byte { b[2] = 3; return b },
		"bad status":       func(b []byte) []byte { b[3] = 200; return b },
		"length mismatch": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], uint32(len(b)+4))
			return b
		},
		"oversized reject count": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:28], 1<<30)
			return b
		},
		"zero id length": func(b []byte) []byte { b[AckHeaderSize+1] = 0; return b },
		"truncated id": func(b []byte) []byte {
			b[AckHeaderSize+1] = MaxIDLen
			return b
		},
		"trailing garbage": func(b []byte) []byte {
			b = append(b, 0xff)
			binary.LittleEndian.PutUint32(b[4:8], uint32(len(b)))
			return b
		},
	}
	var a Ack
	for name, mut := range cases {
		b := mut(append([]byte(nil), good...))
		if err := DecodeAck(b, &a); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: %v, want ErrMalformed", name, err)
		}
	}
}

// FuzzStreamFrame feeds arbitrary bytes through the full stream read
// path: envelope, embedded frame decode, payload conversion. It must
// never panic, classify every failure as ErrMalformed/ErrNonFinite, and
// frames accepted mid-stream must stay intact when a later frame is
// truncated or corrupted (interleaved-damage property).
func FuzzStreamFrame(f *testing.F) {
	good := streamOf(validFrame())
	f.Add(good)
	f.Add(good[:StreamHeaderSize])          // truncated mid-header payload
	f.Add(good[:len(good)-5])               // truncated mid-frame
	f.Add(streamOf(validFrame(), nil))      // second envelope undersized
	f.Add(append(good, good...))            // two interleaved frames
	long := streamOf(validFrame())
	binary.LittleEndian.PutUint32(long[4:8], StreamHeaderSize+MaxFrameLen+1)
	f.Add(long) // oversized claim

	f.Fuzz(func(t *testing.T, data []byte) {
		sr := NewStreamReader(bytes.NewReader(data))
		var d Decoder
		var rec Record
		var scratch []float64
		lastSeq := uint64(0)
		for {
			seq, frame, err := sr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrMalformed) {
					t.Fatalf("Next: unexpected error class %v", err)
				}
				return
			}
			lastSeq = seq
			_ = lastSeq
			if err := d.Reset(frame); err != nil {
				if !errors.Is(err, ErrMalformed) {
					t.Fatalf("embedded Reset: unexpected error class %v", err)
				}
				continue // envelope was fine; the next frame may still parse
			}
			for {
				err := d.Next(&rec)
				if err == io.EOF {
					break
				}
				if err != nil {
					if !errors.Is(err, ErrMalformed) {
						t.Fatalf("embedded Next: unexpected error class %v", err)
					}
					break
				}
				u, err := rec.FloatsInto(scratch)
				scratch = u[:0]
				if err != nil && !errors.Is(err, ErrNonFinite) {
					t.Fatalf("FloatsInto: unexpected error class %v", err)
				}
			}
		}
	})
}

// FuzzAckFrame hammers the ack decoder: never panic, classify every
// failure, and acks that do decode must survive a re-encode round trip
// byte for byte (the encoding is canonical).
func FuzzAckFrame(f *testing.F) {
	f.Add(AppendAck(nil, &Ack{Seq: 1, Status: AckOK, Records: 64, Samples: 1024}))
	f.Add(AppendAck(nil, &Ack{Seq: 2, Status: AckPartial, Records: 1, Samples: 16,
		Rejects: []AckReject{{Reason: RejectQueueFull, ID: []byte("fleet-00001")}}}))
	f.Add(AppendAck(nil, &Ack{Seq: 3, Status: AckMalformed}))
	var two []byte
	two = AppendAck(two, &Ack{Seq: 4, Status: AckOK})
	two = AppendAck(two, &Ack{Seq: 5, Status: AckDraining,
		Rejects: []AckReject{{Reason: RejectStopping, ID: []byte("x")}}})
	f.Add(two)
	short := AppendAck(nil, &Ack{Seq: 6, Status: AckOK})
	f.Add(short[:AckHeaderSize-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		ar := NewAckReader(bytes.NewReader(data))
		var a Ack
		for {
			err := ar.Next(&a)
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrMalformed) {
					t.Fatalf("Next: unexpected error class %v", err)
				}
				return
			}
			re := AppendAck(nil, &a)
			var b Ack
			if err := DecodeAck(re, &b); err != nil {
				t.Fatalf("re-decode of accepted ack failed: %v", err)
			}
			b.Rejects = append([]AckReject(nil), b.Rejects...)
			a2 := a
			a2.Rejects = append([]AckReject(nil), a.Rejects...)
			if !reflect.DeepEqual(a2, b) {
				t.Fatalf("ack changed across round trip: %+v != %+v", a2, b)
			}
		}
	})
}
