package wire

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// decodeAll runs a full decode pass, collecting each record's id and
// converted payload.
func decodeAll(t *testing.T, frame []byte) (ids []string, floats [][]float64) {
	t.Helper()
	var d Decoder
	if err := d.Reset(frame); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var rec Record
	for {
		err := d.Next(&rec)
		if err == io.EOF {
			return ids, floats
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		u, err := rec.FloatsInto(nil)
		if err != nil {
			t.Fatalf("FloatsInto: %v", err)
		}
		ids = append(ids, string(rec.ID))
		floats = append(floats, append([]float64(nil), u...))
	}
}

func TestRoundTrip(t *testing.T) {
	var e Encoder
	if err := e.AppendFlat("alpha", 2, 3, []float64{0, 0.25, 0.5, 0.75, 1, 0.125}); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendSamples("s2", [][]float64{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}}); err != nil {
		t.Fatal(err)
	}
	frame := e.Frame()
	if e.Records() != 2 {
		t.Fatalf("Records() = %d, want 2", e.Records())
	}

	ids, floats := decodeAll(t, frame)
	if !reflect.DeepEqual(ids, []string{"alpha", "s2"}) {
		t.Errorf("ids = %v", ids)
	}
	want := [][]float64{
		{0, 0.25, 0.5, 0.75, 1, 0.125},
		{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
	}
	if !reflect.DeepEqual(floats, want) {
		t.Errorf("payloads = %v, want %v", floats, want)
	}
}

// TestBitExactness pins the property the replay gate depends on: every
// finite value in [0,1] crosses the wire with its bits intact.
func TestBitExactness(t *testing.T) {
	vals := []float64{0, 1, 0.1, 1.0 / 3.0, math.Nextafter(0, 1), math.Nextafter(1, 0), 0.7071067811865476}
	var e Encoder
	if err := e.AppendFlat("x", 1, len(vals), vals); err != nil {
		t.Fatal(err)
	}
	_, floats := decodeAll(t, e.Frame())
	for i, v := range vals {
		if math.Float64bits(floats[0][i]) != math.Float64bits(v) {
			t.Errorf("value %d: bits %x -> %x", i, math.Float64bits(v), math.Float64bits(floats[0][i]))
		}
	}
}

func TestClampAndNonFinite(t *testing.T) {
	var e Encoder
	if err := e.AppendFlat("c", 1, 4, []float64{-0.5, 1.5, 0.25, -0.0}); err != nil {
		t.Fatal(err)
	}
	_, floats := decodeAll(t, e.Frame())
	if want := []float64{0, 1, 0.25, 0}; !reflect.DeepEqual(floats[0], want) {
		t.Errorf("clamped payload = %v, want %v", floats[0], want)
	}

	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var e Encoder
		if err := e.AppendFlat("c", 1, 2, []float64{0.5, bad}); err != nil {
			t.Fatal(err)
		}
		var d Decoder
		if err := d.Reset(e.Frame()); err != nil {
			t.Fatal(err)
		}
		var rec Record
		if err := d.Next(&rec); err != nil {
			t.Fatal(err)
		}
		if _, err := rec.FloatsInto(nil); !errors.Is(err, ErrNonFinite) {
			t.Errorf("FloatsInto(%v) = %v, want ErrNonFinite", bad, err)
		}
	}
}

func TestEncoderReset(t *testing.T) {
	var e Encoder
	if err := e.AppendFlat("a", 1, 1, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), e.Frame()...)
	e.Reset()
	if err := e.AppendFlat("a", 1, 1, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, append([]byte(nil), e.Frame()...)) {
		t.Error("Reset changed the encoding")
	}
}

func TestEmptyFrame(t *testing.T) {
	var e Encoder
	frame := e.Frame()
	var d Decoder
	if err := d.Reset(frame); err != nil {
		t.Fatalf("Reset empty frame: %v", err)
	}
	var rec Record
	if err := d.Next(&rec); err != io.EOF {
		t.Fatalf("Next on empty frame = %v, want io.EOF", err)
	}
}

func TestEncoderValidation(t *testing.T) {
	var e Encoder
	long := make([]byte, MaxIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	cases := []error{
		e.AppendFlat("", 1, 1, []float64{0}),
		e.AppendFlat(string(long), 1, 1, []float64{0}),
		e.AppendFlat("x", 0, 1, nil),
		e.AppendFlat("x", 1, 0, nil),
		e.AppendFlat("x", 2, 2, []float64{0, 0, 0}),
		e.AppendSamples("x", nil),
		e.AppendSamples("x", [][]float64{{0.1, 0.2}, {0.3}}),
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

// validFrame is a known-good one-record frame shared by the corruption
// tests and the fuzz seeds.
func validFrame() []byte {
	var e Encoder
	if err := e.AppendFlat("fleet-1", 2, 2, []float64{0.1, 0.2, 0.3, 0.4}); err != nil {
		panic(err)
	}
	return append([]byte(nil), e.Frame()...)
}

func TestDecoderRejects(t *testing.T) {
	good := validFrame()

	corrupt := func(mut func(b []byte) []byte) error {
		b := mut(append([]byte(nil), good...))
		var d Decoder
		if err := d.Reset(b); err != nil {
			return err
		}
		var rec Record
		for {
			err := d.Next(&rec)
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
		}
	}

	cases := map[string]func(b []byte) []byte{
		"truncated header": func(b []byte) []byte { return b[:HeaderSize-1] },
		"bad magic":        func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":      func(b []byte) []byte { b[2] = 9; return b },
		"bad flags":        func(b []byte) []byte { b[3] = 1; return b },
		"short frame": func(b []byte) []byte {
			return b[:len(b)-4] // frameLen header no longer matches
		},
		"oversized record count": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 1<<30)
			return b
		},
		"zero samples": func(b []byte) []byte {
			// sample count sits right after the 1-byte id length + id.
			off := HeaderSize + 1 + int(b[HeaderSize])
			binary.LittleEndian.PutUint16(b[off:], 0)
			return b
		},
		"zero servers": func(b []byte) []byte {
			off := HeaderSize + 1 + int(b[HeaderSize]) + 2
			binary.LittleEndian.PutUint16(b[off:], 0)
			return b
		},
		"payload overflow": func(b []byte) []byte {
			off := HeaderSize + 1 + int(b[HeaderSize])
			binary.LittleEndian.PutUint16(b[off:], MaxSamples)
			return b
		},
		"zero id length": func(b []byte) []byte { b[HeaderSize] = 0; return b },
		"trailing garbage": func(b []byte) []byte {
			b = append(b, 0xde, 0xad)
			binary.LittleEndian.PutUint32(b[4:8], uint32(len(b)))
			return b
		},
	}
	for name, mut := range cases {
		if err := corrupt(mut); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v, want ErrMalformed", name, err)
		}
	}
}

// FuzzWireFrame hammers the decoder with arbitrary bytes: it must never
// panic, every record it does accept must convert or reject cleanly,
// and an accepted frame must survive a re-encode/re-decode round trip.
func FuzzWireFrame(f *testing.F) {
	good := validFrame()
	f.Add(good)
	// Truncations and header corruptions of the valid frame.
	f.Add(good[:HeaderSize])
	f.Add(good[:len(good)-3])
	bad := append([]byte(nil), good...)
	bad[2] = 99
	f.Add(bad)
	// A frame whose record claims more payload than exists.
	over := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(over[HeaderSize+1+7:], 0xffff)
	f.Add(over)
	// NaN payload.
	var e Encoder
	e.AppendFlat("n", 1, 1, []float64{0.5})
	nan := append([]byte(nil), e.Frame()...)
	binary.LittleEndian.PutUint64(nan[len(nan)-8:], math.Float64bits(math.NaN()))
	f.Add(nan)

	f.Fuzz(func(t *testing.T, data []byte) {
		var d Decoder
		if err := d.Reset(data); err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("Reset: unexpected error class %v", err)
			}
			return
		}
		var rec Record
		var re Encoder
		var scratch []float64
		type decoded struct {
			id string
			u  []float64
		}
		var accepted []decoded
		for {
			err := d.Next(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrMalformed) {
					t.Fatalf("Next: unexpected error class %v", err)
				}
				return
			}
			var u []float64
			u, err = rec.FloatsInto(scratch)
			scratch = u[:0]
			if err != nil {
				if !errors.Is(err, ErrNonFinite) {
					t.Fatalf("FloatsInto: unexpected error class %v", err)
				}
				return
			}
			accepted = append(accepted, decoded{string(rec.ID), append([]float64(nil), u...)})
			if err := re.AppendFlat(string(rec.ID), rec.Samples, rec.Servers, u); err != nil {
				t.Fatalf("re-encode of accepted record failed: %v", err)
			}
		}
		// Round trip: re-encoding the accepted records must decode back
		// to identical values (already clamped, so clamping is a no-op).
		var d2 Decoder
		if err := d2.Reset(re.Frame()); err != nil {
			t.Fatalf("re-decode Reset: %v", err)
		}
		for i := 0; ; i++ {
			err := d2.Next(&rec)
			if err == io.EOF {
				if i != len(accepted) {
					t.Fatalf("re-decode yielded %d records, want %d", i, len(accepted))
				}
				break
			}
			if err != nil {
				t.Fatalf("re-decode Next: %v", err)
			}
			u, err := rec.FloatsInto(nil)
			if err != nil {
				t.Fatalf("re-decode FloatsInto: %v", err)
			}
			if string(rec.ID) != accepted[i].id || !reflect.DeepEqual(u, accepted[i].u) {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
	})
}
