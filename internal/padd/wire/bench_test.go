package wire

import (
	"fmt"
	"io"
	"testing"
)

// benchFrame builds a fleet-shaped frame: 64 sessions × 16 ticks × 8
// servers = 8192 samples (65536 values) per frame.
func benchFrame(b *testing.B) []byte {
	b.Helper()
	const (
		records = 64
		samples = 16
		servers = 8
	)
	u := make([]float64, samples*servers)
	for i := range u {
		u[i] = float64(i%100) / 100
	}
	var e Encoder
	for r := 0; r < records; r++ {
		if err := e.AppendFlat(fmt.Sprintf("load-%04d", r), samples, servers, u); err != nil {
			b.Fatal(err)
		}
	}
	return append([]byte(nil), e.Frame()...)
}

// BenchmarkWireDecode is the CI-gated decode path: one frame fully
// decoded and converted, reusing the decoder, record and float buffer.
// It must report exactly 0 allocs/op — the fleet ingest path decodes
// millions of samples per second and may not touch the garbage
// collector to do it.
func BenchmarkWireDecode(b *testing.B) {
	frame := benchFrame(b)
	var (
		d       Decoder
		rec     Record
		scratch []float64
	)
	samples := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Reset(frame); err != nil {
			b.Fatal(err)
		}
		for {
			err := d.Next(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			u, err := rec.FloatsInto(scratch)
			if err != nil {
				b.Fatal(err)
			}
			scratch = u
			samples += rec.Samples
		}
	}
	b.StopTimer()
	if samples == 0 {
		b.Fatal("decoded nothing")
	}
	b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
}

// BenchmarkAckEncode is the CI-gated stream ack path: one partial ack
// (two rejects) encoded into a reused buffer. It must report exactly
// 0 allocs/op — the stream server acks every frame on a long-lived
// connection and may not churn the garbage collector to do it.
func BenchmarkAckEncode(b *testing.B) {
	ack := Ack{
		Seq:     7,
		Status:  AckPartial,
		Records: 62,
		Samples: 992,
		Rejects: []AckReject{
			{Reason: RejectQueueFull, ID: []byte("load-000017")},
			{Reason: RejectQueueFull, ID: []byte("load-000049")},
		},
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ack.Seq = uint64(i)
		buf = AppendAck(buf[:0], &ack)
	}
	b.StopTimer()
	if len(buf) <= AckHeaderSize {
		b.Fatal("ack did not encode")
	}
}

// BenchmarkWireEncode builds the same frame each iteration, reusing the
// encoder's buffer.
func BenchmarkWireEncode(b *testing.B) {
	const (
		records = 64
		samples = 16
		servers = 8
	)
	u := make([]float64, samples*servers)
	for i := range u {
		u[i] = float64(i%100) / 100
	}
	ids := make([]string, records)
	for r := range ids {
		ids[r] = fmt.Sprintf("load-%04d", r)
	}
	var e Encoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for _, id := range ids {
			if err := e.AppendFlat(id, samples, servers, u); err != nil {
				b.Fatal(err)
			}
		}
		if f := e.Frame(); len(f) == 0 {
			b.Fatal("empty frame")
		}
	}
}
