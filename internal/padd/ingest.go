package padd

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/padd/wire"
)

// frameReject is one record a frame ingest could not accept: the binary
// reject reason, the record's id (aliasing the frame buffer — consume
// before the buffer is reused), and the error for the JSON envelope.
type frameReject struct {
	Reason byte
	ID     []byte
	Err    error
}

// frameIngest is the reusable state for routing one wire frame's
// records into sessions. The HTTP handler and the stream server share
// it: both paths decode with the same zero-copy decoder, apply the same
// per-record accept/reject rules, and derive their response (JSON
// envelope + HTTP status, or binary ack) from the same result, so the
// two ingest surfaces cannot drift.
type frameIngest struct {
	d   wire.Decoder
	rec wire.Record

	records  int
	accepted int // accepted records
	samples  int // accepted samples
	rejects  []frameReject
	frameErr error // frame went syntactically bad (header or mid-decode)
	headerOK bool  // the frame header parsed (frameErr, if set, is mid-decode)
	allFull  bool  // every rejection was queue backpressure
	allDrain bool  // every rejection was a stopping session

	ackScratch wire.Ack
	ackBuf     []byte
}

// ingestPool recycles frameIngest state across HTTP requests; stream
// connections hold one for their lifetime instead.
var ingestPool = sync.Pool{New: func() any { return new(frameIngest) }}

func (fi *frameIngest) reset() {
	fi.records, fi.accepted, fi.samples = 0, 0, 0
	fi.rejects = fi.rejects[:0]
	fi.frameErr = nil
	fi.headerOK = false
	fi.allFull, fi.allDrain = true, true
}

func (fi *frameIngest) reject(id []byte, reason byte, err error) {
	if !errors.Is(err, ErrQueueFull) {
		fi.allFull = false
	}
	if !errors.Is(err, ErrStopping) {
		fi.allDrain = false
	}
	fi.rejects = append(fi.rejects, frameReject{Reason: reason, ID: id, Err: err})
}

// ingestFrame routes one wire frame's records into their sessions:
// decode, shard lookup, payload conversion into a pooled flat buffer,
// shape check, bounded enqueue. Each record succeeds or fails
// independently; a frame that goes syntactically bad mid-decode stops
// there with frameErr set, keeping every record already enqueued (the
// protocol never un-accepts).
func (m *Manager) ingestFrame(frame []byte, fi *frameIngest) {
	fi.reset()
	if err := fi.d.Reset(frame); err != nil {
		fi.frameErr = err
		return
	}
	fi.headerOK = true
	rec := &fi.rec
	for {
		err := fi.d.Next(rec)
		if err == io.EOF {
			return
		}
		if err != nil {
			fi.frameErr = err
			return
		}
		fi.records++
		sess, err := m.lookupBytes(rec.ID)
		if err != nil {
			fi.reject(rec.ID, wire.RejectUnknownSession, err)
			continue
		}
		flat, err := rec.FloatsInto(getFlat(rec.Values()))
		if err != nil {
			putFlat(flat)
			fi.reject(rec.ID, wire.RejectNonFinite, err)
			continue
		}
		if want := sess.st.TotalServers(); rec.Servers != want {
			putFlat(flat)
			fi.reject(rec.ID, wire.RejectShape,
				fmt.Errorf("padd: record has %d servers, session has %d", rec.Servers, want))
			continue
		}
		if err := sess.EnqueueFlat(flat, rec.Samples); err != nil {
			putFlat(flat)
			reason := byte(wire.RejectOther)
			switch {
			case errors.Is(err, ErrQueueFull):
				reason = wire.RejectQueueFull
			case errors.Is(err, ErrStopping):
				reason = wire.RejectStopping
			}
			fi.reject(rec.ID, reason, err)
			continue
		}
		fi.accepted++
		fi.samples += rec.Samples
		m.noteIngest(rec.Samples)
	}
}

// httpStatus preserves the POST /v1/ingest envelope contract: 202 when
// anything was accepted (or the frame was empty), 429 when everything
// rejected was backpressure, 503 when everything rejected was draining,
// 400 otherwise.
func (fi *frameIngest) httpStatus() int {
	switch {
	case fi.accepted > 0 || fi.records == 0:
		return http.StatusAccepted
	case fi.allFull:
		return http.StatusTooManyRequests
	case fi.allDrain:
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// ackStatus maps the result onto the binary ack statuses, mirroring
// httpStatus (AckBackpressure ≈ 429, AckDraining ≈ 503).
func (fi *frameIngest) ackStatus() byte {
	switch {
	case fi.frameErr != nil:
		return wire.AckMalformed
	case len(fi.rejects) == 0:
		return wire.AckOK
	case fi.accepted > 0:
		return wire.AckPartial
	case fi.allFull:
		return wire.AckBackpressure
	case fi.allDrain:
		return wire.AckDraining
	default:
		return wire.AckPartial
	}
}

// appendAck encodes the result as one binary ack frame into dst,
// reusing the frameIngest's scratch Ack so steady-state acking does not
// allocate. The reject IDs alias the ingested frame's buffer; the ack
// must be encoded before that buffer is reused.
func (fi *frameIngest) appendAck(dst []byte, seq uint64) []byte {
	a := &fi.ackScratch
	a.Seq = seq
	a.Status = fi.ackStatus()
	a.Records = uint32(fi.accepted)
	a.Samples = uint32(fi.samples)
	a.Rejects = a.Rejects[:0]
	for i := range fi.rejects {
		a.Rejects = append(a.Rejects, wire.AckReject{Reason: fi.rejects[i].Reason, ID: fi.rejects[i].ID})
	}
	return wire.AppendAck(dst, a)
}
