package padd

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Manager errors the HTTP layer maps onto status codes.
var (
	// ErrShuttingDown means the daemon is draining (503).
	ErrShuttingDown = errors.New("padd: shutting down")
	// ErrNotFound means no such session (404).
	ErrNotFound = errors.New("padd: no such session")
)

// Manager owns the live sessions. All methods are safe for concurrent
// use.
type Manager struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	closed   bool
	nextID   int
}

// NewManager creates an empty session manager.
func NewManager() *Manager {
	return &Manager{sessions: make(map[string]*Session)}
}

// Create validates cfg, applies defaults and starts a new session.
func (m *Manager) Create(cfg SessionConfig) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if cfg.ID == "" {
		m.nextID++
		cfg.ID = fmt.Sprintf("s%d", m.nextID)
	}
	if _, dup := m.sessions[cfg.ID]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("padd: session %q already exists", cfg.ID)
	}
	// Reserve the id before the (fallible) construction so a concurrent
	// Create of the same id fails fast.
	m.sessions[cfg.ID] = nil
	m.mu.Unlock()

	s, err := newSession(cfg.ID, cfg)

	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		delete(m.sessions, cfg.ID)
		return nil, err
	}
	if m.closed {
		// Shutdown raced the construction; don't leak the goroutine.
		delete(m.sessions, cfg.ID)
		m.mu.Unlock()
		s.Stop()
		m.mu.Lock()
		return nil, ErrShuttingDown
	}
	m.sessions[cfg.ID] = s
	return s, nil
}

// Get returns the named session.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	if !ok || s == nil {
		return nil, ErrNotFound
	}
	return s, nil
}

// List returns the live sessions in unspecified order.
func (m *Manager) List() []*Session {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Delete stops the named session (draining its queue) and removes it.
func (m *Manager) Delete(id string) (*Session, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok || s == nil {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	delete(m.sessions, id)
	m.mu.Unlock()
	s.Stop()
	return s, nil
}

// Healthy reports whether the manager accepts work.
func (m *Manager) Healthy() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return !m.closed
}

// Shutdown rejects new work, then stops every session — draining each
// queue so no acknowledged telemetry is lost — bounded by ctx.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			ss = append(ss, s)
		}
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for _, s := range ss {
			wg.Add(1)
			go func(s *Session) {
				defer wg.Done()
				s.Stop()
			}(s)
		}
		wg.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
