package padd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Manager errors the HTTP layer maps onto status codes.
var (
	// ErrShuttingDown means the daemon is draining (503).
	ErrShuttingDown = errors.New("padd: shutting down")
	// ErrNotFound means no such session (404).
	ErrNotFound = errors.New("padd: no such session")
	// ErrSessionLimit means -max-sessions is reached (503 + Retry-After).
	ErrSessionLimit = errors.New("padd: session limit reached")
)

// Options sizes the manager for its fleet.
type Options struct {
	// Shards is the number of independent session shards. Default
	// GOMAXPROCS. Session CRUD and ingest on different shards never
	// contend on a lock.
	Shards int
	// ShardWorkers is the worker-pool size per shard. Default 1 —
	// with one shard per core, one worker each saturates the machine
	// while keeping each session's engine single-threaded by
	// construction.
	ShardWorkers int
	// MaxSessions caps resident sessions fleet-wide; 0 means
	// unlimited. Past the cap, Create returns ErrSessionLimit so a
	// runaway load generator degrades into 503s instead of an OOM.
	MaxSessions int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.ShardWorkers <= 0 {
		o.ShardWorkers = 1
	}
	return o
}

// Manager owns the live sessions, spread over opts.Shards independent
// shards routed by FNV-1a hash of the session id. All methods are safe
// for concurrent use.
type Manager struct {
	opts   Options
	shards []*shard

	nextID atomic.Int64
	closed atomic.Bool
	count  atomic.Int64 // resident sessions, for MaxSessions

	framesJSON   atomic.Int64
	framesBinary atomic.Int64
	batchSizes   batchHist

	// det is the fleet-wide detection-latency accounting shared by every
	// shard's executors.
	det detectionStats

	// GC-pause accounting for the padd_go_gc_pauses family: the pause
	// ring in runtime.MemStats is diffed against the last scraped GC
	// cycle under gcMu.
	gcMu      sync.Mutex
	lastNumGC uint32
	gcPauses  gcHist

	// Persistent-stream state: live connections (closed on Shutdown),
	// frames acked but not yet written (the in-flight window gauge) and
	// per-ack-status frame counters.
	streamMu       sync.Mutex
	streamConns    map[io.Closer]struct{}
	streamInflight atomic.Int64
	streamFrames   [numAckStatuses]atomic.Int64
}

// NewManager creates a session manager with default fleet sizing.
func NewManager() *Manager { return NewManagerWith(Options{}) }

// NewManagerWith creates a session manager sized by opts.
func NewManagerWith(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{opts: opts, shards: make([]*shard, opts.Shards)}
	for i := range m.shards {
		m.shards[i] = newShard(opts.ShardWorkers, &m.det)
	}
	return m
}

// fnvIndex routes an id to its shard: FNV-1a over the id bytes, modulo
// the shard count. Generic over string | []byte so the binary ingest
// path routes without converting the id.
func fnvIndex[T string | []byte](id T, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return int(h % uint32(n))
}

func (m *Manager) shardFor(id string) *shard {
	return m.shards[fnvIndex(id, len(m.shards))]
}

// Create validates cfg, applies defaults and registers a new session
// on its shard.
func (m *Manager) Create(cfg SessionConfig) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	if m.closed.Load() {
		return nil, ErrShuttingDown
	}
	if max := int64(m.opts.MaxSessions); max > 0 && m.count.Add(1) > max {
		m.count.Add(-1)
		return nil, ErrSessionLimit
	}
	// From here every failure path must give the slot back.
	rollback := func() { m.count.Add(-1) }

	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("s%d", m.nextID.Add(1))
	}
	sh := m.shardFor(cfg.ID)

	sh.mu.Lock()
	if _, dup := sh.sessions[cfg.ID]; dup {
		sh.mu.Unlock()
		rollback()
		return nil, fmt.Errorf("padd: session %q already exists", cfg.ID)
	}
	// Reserve the id before the (fallible) construction so a concurrent
	// Create of the same id fails fast.
	sh.sessions[cfg.ID] = nil
	sh.mu.Unlock()

	s, err := newSession(cfg.ID, cfg, sh)

	sh.mu.Lock()
	if err != nil {
		delete(sh.sessions, cfg.ID)
		sh.mu.Unlock()
		rollback()
		return nil, err
	}
	if m.closed.Load() {
		// Shutdown raced the construction; drain the orphan ourselves
		// (Stop claims the actor inline if the pool is already gone).
		delete(sh.sessions, cfg.ID)
		sh.mu.Unlock()
		sh.removeWallClock(s)
		s.Stop()
		s.rollupLeave()
		rollback()
		return nil, ErrShuttingDown
	}
	sh.sessions[cfg.ID] = s
	sh.mu.Unlock()
	return s, nil
}

// Get returns the named session.
func (m *Manager) Get(id string) (*Session, error) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok || s == nil {
		return nil, ErrNotFound
	}
	return s, nil
}

// lookupBytes is Get for the binary ingest path: a map lookup keyed by
// a []byte id without allocating the string (the compiler elides the
// conversion inside the index expression).
func (m *Manager) lookupBytes(id []byte) (*Session, error) {
	sh := m.shards[fnvIndex(id, len(m.shards))]
	sh.mu.RLock()
	s, ok := sh.sessions[string(id)]
	sh.mu.RUnlock()
	if !ok || s == nil {
		return nil, ErrNotFound
	}
	return s, nil
}

// List returns the live sessions in unspecified order.
func (m *Manager) List() []*Session {
	var out []*Session
	for _, sh := range m.shards {
		sh.mu.RLock()
		for _, s := range sh.sessions {
			if s != nil {
				out = append(out, s)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// ShardSessions returns the resident-session count per shard, for the
// padd_shard_sessions metric family.
func (m *Manager) ShardSessions() []int {
	out := make([]int, len(m.shards))
	for i, sh := range m.shards {
		sh.mu.RLock()
		n := 0
		for _, s := range sh.sessions {
			if s != nil {
				n++
			}
		}
		out[i] = n
		sh.mu.RUnlock()
	}
	return out
}

// Delete stops the named session (draining its queue) and removes it.
func (m *Manager) Delete(id string) (*Session, error) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok || s == nil {
		sh.mu.Unlock()
		return nil, ErrNotFound
	}
	delete(sh.sessions, id)
	sh.mu.Unlock()
	sh.removeWallClock(s)
	s.Stop()
	s.rollupLeave()
	m.count.Add(-1)
	return s, nil
}

// Healthy reports whether the manager accepts work.
func (m *Manager) Healthy() bool { return !m.closed.Load() }

// Shutdown rejects new work, then drains every shard concurrently —
// no acknowledged telemetry is lost — bounded by ctx. The drain is
// two-phase: first every session is flagged stopping and scheduled
// (O(1) per session), then the shard pools chew through the queues in
// parallel while Shutdown waits on the done channels. On deadline the
// pools are left running so an external retry can finish the drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.closed.Store(true)
	// Hang up the stream connections first: acked frames are already
	// enqueued (and will drain below); unacked frames are the client's
	// to resend after reconnecting, exactly as on any dropped link.
	m.closeStreams()

	var ss []*Session
	for _, sh := range m.shards {
		sh.mu.RLock()
		for _, s := range sh.sessions {
			if s != nil {
				ss = append(ss, s)
			}
		}
		sh.mu.RUnlock()
	}
	for _, s := range ss {
		s.beginStop()
	}
	for _, s := range ss {
		select {
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, sh := range m.shards {
		sh.stopWorkers()
	}
	return nil
}
