package padd

import (
	"sync"
	"time"
)

// coasterResolution is how often a shard's coaster sweeps its
// wall-clock sessions. One sweep services every due session in the
// shard, so the resolution bounds coast jitter, not throughput.
const coasterResolution = 10 * time.Millisecond

// shard is one slice of the fleet: a session map under its own mutex,
// a run queue drained by a small fixed worker pool, and one coaster
// goroutine pacing the shard's wall-clock sessions. Sessions are
// routed to shards by FNV hash of their id, so CRUD and ingest on
// different shards never touch the same lock.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session

	// rollup is this shard's slice of the fleet aggregates; det points
	// at the manager-wide detection-latency accounting. Both are plain
	// atomics the executing workers update in place.
	rollup shardRollup
	det    *detectionStats

	runMu   sync.Mutex
	runCond *sync.Cond
	runq    []*Session
	head    int
	quit    bool

	wcMu   sync.Mutex
	wall   map[*Session]time.Time // session -> next coast deadline
	wcQuit chan struct{}

	workers  sync.WaitGroup
	stopOnce sync.Once
}

func newShard(workers int, det *detectionStats) *shard {
	sh := &shard{
		sessions: make(map[string]*Session),
		det:      det,
		wall:     make(map[*Session]time.Time),
		wcQuit:   make(chan struct{}),
	}
	sh.runCond = sync.NewCond(&sh.runMu)
	for i := 0; i < workers; i++ {
		sh.workers.Add(1)
		go sh.worker()
	}
	go sh.coaster()
	return sh
}

// submit queues a session for execution. Only Session.schedule calls
// this, after winning the idle→scheduled transition, so a session is
// never queued twice.
func (sh *shard) submit(s *Session) {
	sh.runMu.Lock()
	sh.runq = append(sh.runq, s)
	sh.runMu.Unlock()
	sh.runCond.Signal()
}

// worker pops sessions off the run queue and executes one slice each.
// On quit it drains whatever remains queued before exiting, so no
// scheduled session is stranded.
func (sh *shard) worker() {
	defer sh.workers.Done()
	for {
		sh.runMu.Lock()
		for sh.head == len(sh.runq) && !sh.quit {
			if sh.head > 0 {
				sh.runq = sh.runq[:0]
				sh.head = 0
			}
			sh.runCond.Wait()
		}
		if sh.head == len(sh.runq) { // quit with an empty queue
			sh.runMu.Unlock()
			return
		}
		s := sh.runq[sh.head]
		sh.runq[sh.head] = nil
		sh.head++
		sh.runMu.Unlock()
		s.runOnce()
	}
}

// stopWorkers shuts the pool and coaster down after the queued work
// drains. Idempotent.
func (sh *shard) stopWorkers() {
	sh.stopOnce.Do(func() {
		sh.runMu.Lock()
		sh.quit = true
		sh.runMu.Unlock()
		sh.runCond.Broadcast()
		sh.workers.Wait()
		close(sh.wcQuit)
	})
}

// addWallClock registers a session with the coaster. Its first coast
// deadline is one tick from now.
func (sh *shard) addWallClock(s *Session) {
	sh.wcMu.Lock()
	sh.wall[s] = time.Now().Add(s.st.Tick())
	sh.wcMu.Unlock()
}

// resetWallClock pushes a session's coast deadline one tick out — used
// by Resume so a long pause doesn't convert into a burst of coasts.
func (sh *shard) resetWallClock(s *Session) {
	sh.wcMu.Lock()
	if _, ok := sh.wall[s]; ok {
		sh.wall[s] = time.Now().Add(s.st.Tick())
	}
	sh.wcMu.Unlock()
}

// removeWallClock drops a session from the coaster.
func (sh *shard) removeWallClock(s *Session) {
	sh.wcMu.Lock()
	delete(sh.wall, s)
	sh.wcMu.Unlock()
}

// coaster replaces one time.Ticker goroutine per wall-clock session
// with a single sweep per shard: every resolution interval it credits
// each due session a coast tick and advances its deadline. A session
// that fell far behind (the process was descheduled) is re-anchored to
// now rather than burst-coasted.
func (sh *shard) coaster() {
	t := time.NewTicker(coasterResolution)
	defer t.Stop()
	for {
		select {
		case <-sh.wcQuit:
			return
		case now := <-t.C:
			sh.wcMu.Lock()
			for s, due := range sh.wall {
				if s.doneClosed() {
					delete(sh.wall, s)
					continue
				}
				if now.Before(due) {
					continue
				}
				tick := s.st.Tick()
				due = due.Add(tick)
				if due.Before(now) {
					due = now.Add(tick)
				}
				sh.wall[s] = due
				s.coastTick()
			}
			sh.wcMu.Unlock()
		}
	}
}
