package padd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"time"

	"repro/internal/padd/wire"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

// ReplayConfig drives an online/offline equivalence check: the same
// closed-loop demand is run through the offline engine and streamed
// over HTTP into a live session, and the two recordings are compared
// tick for tick.
type ReplayConfig struct {
	// Schemes to replay; empty means all six.
	Schemes []string
	// Cluster shape and horizon. Zero values take the seed defaults
	// (22 racks × 10 servers) with a short horizon.
	Racks          int
	ServersPerRack int
	Duration       time.Duration
	Tick           time.Duration
	// Seed feeds the background load and the power virus.
	Seed uint64
	// BGMean is the mean background utilization.
	BGMean float64
	// AttackNodes is the number of compromised servers (0 disables the
	// virus, which makes the replay trivially calm).
	AttackNodes int
	// Background, when non-nil, replaces the generated background trace.
	// Length must be Racks×ServersPerRack; the series are read-only and
	// may be shared with other runs. Scenario replays (internal/
	// attacksearch) use this so the daemon sees the exact corpus trace.
	Background []*stats.Series
	// AttackFactory, when non-nil, replaces the canned AttackNodes virus:
	// it is called once per scheme's offline pass and must return fresh
	// controllers each call (controllers are single-run state). This is
	// how coordinated multi-group corpus scenarios enter the replay.
	AttackFactory func() ([]sim.AttackSpec, error)
	// BatchSize is the number of ticks per telemetry POST.
	BatchSize int
	// Binary streams the online pass through the batched binary ingest
	// endpoint (/v1/ingest) instead of the per-session JSON route. The
	// two paths must agree bit for bit; -replay proves both.
	// Superseded by Mode; kept so zero-value callers keep meaning JSON.
	Binary bool
	// Mode selects the online ingest path: ModeJSON (per-session JSON
	// POSTs), ModeBinary (batched wire frames over POST /v1/ingest) or
	// ModeStream (one persistent /v1/stream connection with binary
	// acks). Empty falls back to Binary. All three must agree with the
	// offline engine bit for bit; -replay proves them.
	Mode string
	// Log, when set, receives one progress line per scheme.
	Log io.Writer
}

// Ingest modes for ReplayConfig.Mode and the load generator.
const (
	ModeJSON   = "json"
	ModeBinary = "binary"
	ModeStream = "stream"
)

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Mode == "" {
		if c.Binary {
			c.Mode = ModeBinary
		} else {
			c.Mode = ModeJSON
		}
	}
	if len(c.Schemes) == 0 {
		c.Schemes = schemes.SchemeNames
	}
	if c.Racks == 0 {
		c.Racks = 22
	}
	if c.ServersPerRack == 0 {
		c.ServersPerRack = 10
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Minute
	}
	if c.Tick == 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.BGMean == 0 {
		c.BGMean = 0.35
	}
	if c.AttackNodes == 0 {
		c.AttackNodes = 24
	}
	if c.BatchSize == 0 {
		c.BatchSize = 50
	}
	return c
}

// SchemeReplay is one scheme's replay outcome.
type SchemeReplay struct {
	Scheme     string
	Ticks      int
	Tripped    bool
	Mismatches []string
}

// OK reports whether the online run reproduced the offline run exactly.
func (r SchemeReplay) OK() bool { return len(r.Mismatches) == 0 }

// ReplayReport collects every scheme's outcome.
type ReplayReport struct {
	Schemes []SchemeReplay
}

// OK reports whether every scheme replayed exactly.
func (r *ReplayReport) OK() bool {
	for _, s := range r.Schemes {
		if !s.OK() {
			return false
		}
	}
	return true
}

// Replay proves online/offline agreement. For each scheme it runs the
// offline engine manually — capturing each tick's closed-loop demand
// (background plus power virus, with the virus observing the capped
// frequencies the defense granted) — then boots a daemon on a loopback
// listener, streams those exact demand ticks through the HTTP ingest
// path, and deep-compares the two results and recordings. AttackUtil is
// excluded (the online engine hosts no virus, so it records zero) and
// Key is excluded (it names the run, not the physics); everything else
// must match bit for bit.
func Replay(cfg ReplayConfig) (*ReplayReport, error) {
	cfg = cfg.withDefaults()
	servers := cfg.Racks * cfg.ServersPerRack
	bg := cfg.Background
	if bg == nil {
		bg = stats.NoisyUtilization(servers, cfg.BGMean, cfg.Duration, 10*time.Second, cfg.Seed)
	} else if len(bg) != servers {
		return nil, fmt.Errorf("padd: replay background has %d series for %d servers", len(bg), servers)
	}

	mgr := NewManager()
	defer mgr.Shutdown(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewServer(mgr)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	report := &ReplayReport{}
	for _, name := range cfg.Schemes {
		sr, err := replayScheme(cfg, name, bg, mgr, base)
		if err != nil {
			return nil, fmt.Errorf("replay %s: %w", name, err)
		}
		if cfg.Log != nil {
			verdict := "match"
			if !sr.OK() {
				verdict = fmt.Sprintf("MISMATCH (%d fields)", len(sr.Mismatches))
			}
			fmt.Fprintf(cfg.Log, "replay %-4s %6d ticks  tripped=%-5v %s\n",
				sr.Scheme, sr.Ticks, sr.Tripped, verdict)
		}
		report.Schemes = append(report.Schemes, sr)
	}
	return report, nil
}

func replayScheme(cfg ReplayConfig, name string, bg []*stats.Series, mgr *Manager, base string) (SchemeReplay, error) {
	sr := SchemeReplay{Scheme: name}

	// Offline pass: manual stepping so each tick's demand can be kept.
	offline, demand, err := runOffline(cfg, name, bg)
	if err != nil {
		return sr, err
	}
	sr.Ticks = len(demand)
	sr.Tripped = offline.Tripped

	// Online pass: the same demand, through the daemon's front door.
	online, err := runOnline(cfg, name, demand, mgr, base)
	if err != nil {
		return sr, err
	}

	sr.Mismatches = compareResults(offline, online)
	return sr, nil
}

// runOffline reproduces sim.Run by hand, copying each tick's demand.
func runOffline(cfg ReplayConfig, name string, bg []*stats.Series) (*sim.Result, [][]float64, error) {
	scheme, err := schemes.ByName(name, schemes.Options{ServersPerRack: cfg.ServersPerRack})
	if err != nil {
		return nil, nil, err
	}
	simCfg := sim.Config{
		Key:            "replay/offline/" + name,
		Racks:          cfg.Racks,
		ServersPerRack: cfg.ServersPerRack,
		Duration:       cfg.Duration,
		Tick:           cfg.Tick,
		Background:     bg,
		Record:         true,
		RecordStep:     cfg.Tick,
	}
	if schemes.NeedsMicroDEB(name) {
		simCfg.MicroDEBFactory = schemes.MicroDEBFactory(0.01)
	}
	switch {
	case cfg.AttackFactory != nil:
		specs, err := cfg.AttackFactory()
		if err != nil {
			return nil, nil, err
		}
		simCfg.Attacks = specs
	case cfg.AttackNodes > 0:
		atk, err := virus.New(virus.Config{
			Profile:         virus.CPUIntensive,
			SpikeWidth:      10 * time.Second,
			SpikesPerMinute: 3,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		nodes := make([]int, cfg.AttackNodes)
		for i := range nodes {
			nodes[i] = i
		}
		simCfg.Attack = &sim.AttackSpec{Servers: nodes, Attack: atk}
	}
	st, err := sim.NewStepper(simCfg, scheme)
	if err != nil {
		return nil, nil, err
	}
	var demand [][]float64
	for !st.Done() {
		d := st.ComputeDemand()
		cp := make([]float64, len(d))
		copy(cp, d)
		demand = append(demand, cp)
		if err := st.Advance(d); err != nil {
			return nil, nil, err
		}
	}
	return st.Result(), demand, nil
}

// runOnline creates a recording session over HTTP, streams the demand
// ticks as telemetry batches (retrying on 429 backpressure), waits for
// the horizon, and collects the result.
func runOnline(cfg ReplayConfig, name string, demand [][]float64, mgr *Manager, base string) (*sim.Result, error) {
	id := "replay-" + name
	create := SessionConfig{
		ID:             id,
		Scheme:         name,
		Racks:          cfg.Racks,
		ServersPerRack: cfg.ServersPerRack,
		Tick:           Duration{cfg.Tick},
		Horizon:        Duration{cfg.Duration},
		Record:         true,
		RecordStep:     Duration{cfg.Tick},
	}
	if code, body, err := postJSON(base+"/v1/sessions", create); err != nil {
		return nil, err
	} else if code != http.StatusCreated {
		return nil, fmt.Errorf("create session: HTTP %d: %s", code, body)
	}

	switch cfg.Mode {
	case ModeStream:
		if err := streamDemand(base, id, demand, cfg.BatchSize); err != nil {
			return nil, err
		}
	default:
		var enc wire.Encoder
		for start := 0; start < len(demand); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(demand) {
				end = len(demand)
			}
			var (
				url  string
				body []byte
				ct   string
			)
			if cfg.Mode == ModeBinary {
				enc.Reset()
				if err := enc.AppendSamples(id, demand[start:end]); err != nil {
					return nil, err
				}
				url, body, ct = base+"/v1/ingest", enc.Frame(), "application/octet-stream"
			} else {
				var req TelemetryRequest
				for _, u := range demand[start:end] {
					req.Samples = append(req.Samples, TelemetrySample{U: u})
				}
				b, err := json.Marshal(req)
				if err != nil {
					return nil, err
				}
				url, body, ct = base+"/v1/sessions/"+id+"/telemetry", b, "application/json"
			}
			for {
				code, respBody, err := post(url, ct, body)
				if err != nil {
					return nil, err
				}
				if code == http.StatusAccepted {
					break
				}
				if code == http.StatusTooManyRequests {
					// Bounded queue doing its job; let the session drain.
					time.Sleep(2 * time.Millisecond)
					continue
				}
				return nil, fmt.Errorf("telemetry: HTTP %d: %s", code, respBody)
			}
		}
	}

	sess, err := mgr.Get(id)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for !sess.metrics().Finished {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("session %s did not finish: %d/%d ticks",
				id, sess.metrics().Ticks, len(demand))
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := mgr.Delete(id); err != nil {
		return nil, err
	}
	return sess.Result(), nil
}

// streamDemand pushes the demand ticks through one persistent stream
// connection, stop-and-wait: each batch frame is sent and its binary
// ack awaited, retrying the frame on AckBackpressure exactly as the
// POST paths retry 429. Any other non-OK ack is a hard error — a
// replay must be lossless, so a silently dropped record would surface
// as a physics mismatch anyway; failing here names the real cause.
func streamDemand(base, id string, demand [][]float64, batch int) error {
	sc, err := DialStream(base)
	if err != nil {
		return err
	}
	defer sc.Close()
	var enc wire.Encoder
	var a wire.Ack
	for start := 0; start < len(demand); start += batch {
		end := start + batch
		if end > len(demand) {
			end = len(demand)
		}
		enc.Reset()
		if err := enc.AppendSamples(id, demand[start:end]); err != nil {
			return err
		}
		for {
			if _, err := sc.Send(enc.Frame()); err != nil {
				return err
			}
			if err := sc.ReadAck(&a); err != nil {
				return err
			}
			if a.Status == wire.AckOK {
				break
			}
			if a.Status == wire.AckBackpressure {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			return fmt.Errorf("stream telemetry: ack %s (%d rejects)",
				wire.AckStatusName(a.Status), len(a.Rejects))
		}
	}
	return nil
}

func postJSON(url string, v any) (int, string, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, "", err
	}
	return post(url, "application/json", body)
}

func post(url, contentType string, body []byte) (int, string, error) {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, string(bytes.TrimSpace(out)), nil
}

// compareResults deep-compares two runs field by field, excluding Key
// (names the run) and Recording.AttackUtil (the online engine hosts no
// virus, so it records zero where the offline engine recorded the
// commanded utilization).
func compareResults(off, on *sim.Result) []string {
	var bad []string
	mismatch := func(field string, a, b any) {
		bad = append(bad, fmt.Sprintf("%s: offline %v, online %v", field, a, b))
	}
	if off.Scheme != on.Scheme {
		mismatch("Scheme", off.Scheme, on.Scheme)
	}
	if off.Tripped != on.Tripped {
		mismatch("Tripped", off.Tripped, on.Tripped)
	}
	if off.SurvivalTime != on.SurvivalTime {
		mismatch("SurvivalTime", off.SurvivalTime, on.SurvivalTime)
	}
	if off.FirstTripRack != on.FirstTripRack {
		mismatch("FirstTripRack", off.FirstTripRack, on.FirstTripRack)
	}
	if off.EffectiveAttacks != on.EffectiveAttacks {
		mismatch("EffectiveAttacks", off.EffectiveAttacks, on.EffectiveAttacks)
	}
	if off.Throughput != on.Throughput {
		mismatch("Throughput", off.Throughput, on.Throughput)
	}
	if off.MeanShedRatio != on.MeanShedRatio {
		mismatch("MeanShedRatio", off.MeanShedRatio, on.MeanShedRatio)
	}
	if off.EnergyFromBatteries != on.EnergyFromBatteries {
		mismatch("EnergyFromBatteries", off.EnergyFromBatteries, on.EnergyFromBatteries)
	}
	if off.MaxRackDischarge != on.MaxRackDischarge {
		mismatch("MaxRackDischarge", off.MaxRackDischarge, on.MaxRackDischarge)
	}
	if off.EnergyServed != on.EnergyServed {
		mismatch("EnergyServed", off.EnergyServed, on.EnergyServed)
	}
	if off.EnergyFromGrid != on.EnergyFromGrid {
		mismatch("EnergyFromGrid", off.EnergyFromGrid, on.EnergyFromGrid)
	}
	if off.EnergyIntoStorage != on.EnergyIntoStorage {
		mismatch("EnergyIntoStorage", off.EnergyIntoStorage, on.EnergyIntoStorage)
	}
	if off.EnergyFromMicro != on.EnergyFromMicro {
		mismatch("EnergyFromMicro", off.EnergyFromMicro, on.EnergyFromMicro)
	}
	switch {
	case off.Recording == nil || on.Recording == nil:
		if (off.Recording == nil) != (on.Recording == nil) {
			mismatch("Recording", off.Recording != nil, on.Recording != nil)
		}
	default:
		a, b := *off.Recording, *on.Recording
		a.AttackUtil, b.AttackUtil = nil, nil
		if a.Step != b.Step {
			mismatch("Recording.Step", a.Step, b.Step)
		}
		deep := func(field string, x, y any) {
			if !reflect.DeepEqual(x, y) {
				bad = append(bad, field+": series differ")
			}
		}
		deep("Recording.TotalGrid", a.TotalGrid, b.TotalGrid)
		deep("Recording.RackSOC", a.RackSOC, b.RackSOC)
		deep("Recording.RackDraw", a.RackDraw, b.RackDraw)
		deep("Recording.MicroSOC", a.MicroSOC, b.MicroSOC)
		deep("Recording.Levels", a.Levels, b.Levels)
		deep("Recording.ShedRatio", a.ShedRatio, b.ShedRatio)
	}
	return bad
}
