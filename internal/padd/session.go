package padd

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metering"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/units"
)

// Enqueue errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is backpressure: the bounded ingest queue is full
	// and the caller must retry later (429).
	ErrQueueFull = errors.New("padd: telemetry queue full")
	// ErrStopping means the session is draining for shutdown (503).
	ErrStopping = errors.New("padd: session stopping")
)

// flatBatch is one accepted ingest unit: consecutive per-server
// utilization samples in one flat sample-major buffer (sample i's
// servers at u[i*servers : (i+1)*servers]). Flat storage is what lets
// the binary wire path land telemetry in a single pooled allocation per
// record, and the worker step straight through it without per-sample
// slice headers.
type flatBatch struct {
	u       []float64
	samples int
}

// flatPool recycles batch buffers between ingest and the session
// workers: at fleet rates the queue would otherwise churn one
// allocation per POST through the garbage collector.
var flatPool sync.Pool

// getFlat returns a buffer with len n, reusing a pooled one when its
// capacity suffices.
func getFlat(n int) []float64 {
	if p, _ := flatPool.Get().(*[]float64); p != nil {
		if u := *p; cap(u) >= n {
			return u[:n]
		}
	}
	return make([]float64, n)
}

// putFlat recycles a batch buffer after its samples are processed.
func putFlat(u []float64) {
	if cap(u) == 0 {
		return
	}
	u = u[:0]
	flatPool.Put(&u)
}

// Session scheduling states. A session is an actor: it owns engine
// state that exactly one goroutine may touch at a time, but it has no
// goroutine of its own — shard workers claim it through this state
// machine whenever it has work, so 100k idle sessions cost memory, not
// scheduler load.
const (
	stateIdle      int32 = iota // no work pending, not queued
	stateScheduled              // in its shard's run queue
	stateRunning                // claimed by an executor
)

// maxSliceBatches bounds how many queued batches one scheduling slice
// processes before the session is requeued, so a firehosed session
// cannot monopolize a shard worker.
const maxSliceBatches = 8

// maxCoastDebt caps how many wall-clock coast ticks can accumulate
// while a session waits for a worker; beyond this the session is
// falling behind real time and extra debt is dropped, exactly as a
// time.Ticker drops missed ticks.
const maxCoastDebt = 64

// sessionMetrics is the cross-goroutine snapshot of a session's state,
// refreshed by the executing worker once per tick and copied out whole
// by scrapers.
type sessionMetrics struct {
	Ticks         int64
	Now           time.Duration
	Level         core.Level
	MeanSOC       float64
	MinSOC        float64
	MeanMicroSOC  float64
	TotalGrid     units.Watts
	ShedWatts     units.Watts
	BreakerMargin units.Watts
	ShedServers   int
	Tripped       bool
	Finished      bool
	Coasts        int64
	Discarded     int64
	Anomalies     int64
	Hist          latencyHist

	// Filled in by metrics() from atomics / queue state.
	Accepted   int64
	Rejected   int64
	QueueDepth int
}

// Session is one online PDU control loop: a sim.Stepper plus a bounded
// telemetry queue, executed by its shard's worker pool. All engine
// state is confined to whichever executor holds the state machine's
// running slot; the outside world sees the mutex-guarded snapshot, the
// event ring and the atomic ingest counters.
type Session struct {
	id     string
	cfg    SessionConfig
	scheme sim.Scheme
	st     *sim.Stepper
	shard  *shard

	// Bounded ingest queue: a fixed ring of flatBatch slots guarded by
	// qmu, plus the pause/stop flags that gate it.
	qmu      sync.Mutex
	queue    []flatBatch
	qhead    int
	qcount   int
	paused   bool
	stopping bool

	state    atomic.Int32
	coastDue atomic.Int32

	done       chan struct{}
	finishOnce sync.Once

	accepted atomic.Int64
	rejected atomic.Int64

	events *eventRing

	// series holds the observability rings (nil with DisableSeries);
	// created is the wall-clock birth time behind uptime_seconds, and
	// lastIngest the UnixNano of the newest accepted batch (0 before
	// the first), behind last_telemetry_age_seconds.
	series     *sessionSeries
	created    time.Time
	lastIngest atomic.Int64

	mu   sync.Mutex
	snap sessionMetrics

	// Executor-confined state (touched only while holding stateRunning).
	meter     *metering.Meter
	cusum     *metering.CUSUMDetector
	lastU     []float64
	haveU     bool
	lastLevel core.Level
	lastShed  int
	tripSeen  bool
	finished  bool
	coasting  bool
	coasts    int64
	discarded int64
	anomalies int64

	// Executor-confined observability state: the session's current
	// position in its shard's rollup buckets, the newest tick already
	// appended to the series rings, and the open CUSUM excursion (if
	// any) that detection/shed latencies are measured against.
	rlLevel    int
	rlMargin   int
	seriesTick int64
	excursion  bool
	onset      time.Duration
	shedSeen   bool
}

// newSession builds a session and registers it with its shard's
// coaster when it ticks on wall clock. cfg must already have defaults
// applied and be validated.
func newSession(id string, cfg SessionConfig, sh *shard) (*Session, error) {
	scheme, err := schemes.ByName(cfg.Scheme, schemes.Options{ServersPerRack: cfg.ServersPerRack})
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		Key:                   "padd/" + id,
		Racks:                 cfg.Racks,
		ServersPerRack:        cfg.ServersPerRack,
		Tick:                  cfg.Tick.Duration,
		Duration:              cfg.Horizon.Duration,
		OversubscriptionRatio: cfg.Oversubscription,
		OvershootTolerance:    cfg.Overshoot,
		Record:                cfg.Record,
		RecordStep:            cfg.RecordStep.Duration,
	}
	if schemes.NeedsMicroDEB(cfg.Scheme) {
		simCfg.MicroDEBFactory = schemes.MicroDEBFactory(cfg.MicroFraction)
	}
	if cfg.Record {
		step := cfg.RecordStep.Duration
		if step == 0 {
			step = cfg.Tick.Duration
		}
		if points := cfg.Horizon.Duration / step; points > 2_000_000 {
			return nil, fmt.Errorf("padd: recording %d points; shorten horizon or raise record_step", points)
		}
	}
	st, err := sim.NewStepper(simCfg, scheme)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:      id,
		cfg:     cfg,
		scheme:  scheme,
		st:      st,
		shard:   sh,
		queue:   make([]flatBatch, cfg.QueueDepth),
		paused:  cfg.Paused,
		done:    make(chan struct{}),
		events:  newEventRing(cfg.EventLog),
		lastU:   make([]float64, st.TotalServers()),
		created: time.Now(),
		// seriesTick guards one series sample per engine tick; -1 admits
		// tick 0 (a discard-path publish must not desync the index→tick
		// mapping by appending without an advance).
		seriesTick: -1,
	}
	if !cfg.DisableSeries {
		s.series = newSessionSeries(st.Tick())
	}
	if cfg.MeterInterval.Duration > 0 {
		m, err := metering.NewMeter(cfg.MeterInterval.Duration, 0, 1)
		if err != nil {
			return nil, err
		}
		s.meter = m
		s.cusum = metering.NewCUSUMDetector(0)
	}
	s.snap.MinSOC = 1
	s.snap.MeanSOC = 1
	s.snap.MeanMicroSOC = -1
	// Register in the shard rollup at the initial position (after the
	// last fallible step, so an aborted construction never leaks a
	// bucket); publish moves the counters as the engine changes state,
	// rollupLeave vacates them on delete.
	s.rlMargin = marginBucket(0)
	sh.rollup.join(s.rlLevel, s.rlMargin)
	s.event(EventCreated, fmt.Sprintf("scheme %s, %d servers, tick %v",
		scheme.Name(), st.TotalServers(), st.Tick()))
	if cfg.WallClock {
		sh.addWallClock(s)
	}
	return s, nil
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Config returns the session's (defaulted) configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// doneClosed reports whether the session has fully stopped.
func (s *Session) doneClosed() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Enqueue validates a batch of per-server utilization samples and
// offers it to the bounded ingest queue without blocking. Non-finite
// values are rejected outright; finite values are clamped to [0, 1] as
// they are copied (the caller's slices are not modified). A full queue
// returns ErrQueueFull — the 429 signal — and a stopping session
// returns ErrStopping.
func (s *Session) Enqueue(samples [][]float64) error {
	want := s.st.TotalServers()
	flat := getFlat(len(samples) * want)
	for i, u := range samples {
		if len(u) != want {
			putFlat(flat)
			return fmt.Errorf("padd: sample %d has %d entries for %d servers", i, len(u), want)
		}
		row := flat[i*want : (i+1)*want]
		for j, v := range u {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				putFlat(flat)
				return fmt.Errorf("padd: sample %d server %d: non-finite utilization", i, j)
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[j] = v
		}
	}
	if err := s.EnqueueFlat(flat, len(samples)); err != nil {
		putFlat(flat)
		return err
	}
	return nil
}

// EnqueueFlat offers an already-validated flat sample-major batch to
// the bounded queue, taking ownership of u on success (it is recycled
// through the batch pool once processed). The binary wire path lands
// here: wire.Record.FloatsInto has applied the same finite/clamp rules
// Enqueue applies, so the two ingest formats feed the engine
// identically.
func (s *Session) EnqueueFlat(u []float64, samples int) error {
	if samples <= 0 || len(u) != samples*s.st.TotalServers() {
		return fmt.Errorf("padd: flat batch of %d values is not %d samples × %d servers",
			len(u), samples, s.st.TotalServers())
	}
	s.qmu.Lock()
	if s.stopping {
		s.qmu.Unlock()
		return ErrStopping
	}
	if s.qcount == len(s.queue) {
		s.qmu.Unlock()
		s.rejected.Add(1)
		return ErrQueueFull
	}
	s.queue[(s.qhead+s.qcount)%len(s.queue)] = flatBatch{u: u, samples: samples}
	s.qcount++
	paused := s.paused
	s.qmu.Unlock()
	s.accepted.Add(int64(samples))
	s.shard.rollup.samples.Add(int64(samples))
	s.lastIngest.Store(time.Now().UnixNano())
	// A paused session holds its queue, so waking a worker would only
	// no-op; Resume schedules when the pause lifts. (No lost wakeup: a
	// concurrent Resume that cleared the flag before we read it
	// schedules on its own.)
	if !paused {
		s.schedule()
	}
	return nil
}

// queueLen reports the current ingest queue depth.
func (s *Session) queueLen() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.qcount
}

// pop takes the oldest queued batch. Paused sessions hold their queue
// until Resume — unless they are stopping, when the lossless-drain
// invariant wins over the pause.
func (s *Session) pop() (flatBatch, bool) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.qcount == 0 || (s.paused && !s.stopping) {
		return flatBatch{}, false
	}
	b := s.queue[s.qhead]
	s.queue[s.qhead] = flatBatch{}
	s.qhead = (s.qhead + 1) % len(s.queue)
	s.qcount--
	return b, true
}

// schedule queues the session onto its shard's run queue if it is not
// already queued or running. The idle→scheduled CAS guarantees at most
// one outstanding run-queue entry per session.
func (s *Session) schedule() {
	if s.state.CompareAndSwap(stateIdle, stateScheduled) {
		s.shard.submit(s)
	}
}

// coastTick records one wall-clock tick owed by a late session (called
// by the shard coaster). Debt beyond maxCoastDebt is dropped, like a
// ticker dropping missed ticks.
func (s *Session) coastTick() {
	if s.coastDue.Load() < maxCoastDebt {
		s.coastDue.Add(1)
	}
	s.schedule()
}

// runOnce is one worker execution: claim the session, run a bounded
// slice of its work, then requeue it if work remains. The
// scheduled→running CAS makes stale run-queue entries harmless — if
// Stop's inline drain claimed the session first, this is a no-op.
func (s *Session) runOnce() {
	if !s.state.CompareAndSwap(stateScheduled, stateRunning) {
		return
	}
	s.runSlice()
	s.state.Store(stateIdle)
	if s.pendingWork() {
		s.schedule()
	}
}

// runSlice does up to maxSliceBatches of queued telemetry, or the
// accumulated coast debt when there is none, then finalizes the session
// if it is stopping with an empty queue. Called only while holding the
// running slot.
func (s *Session) runSlice() {
	if s.doneClosed() {
		return
	}
	coasts := s.coastDue.Swap(0)
	processed := 0
	for processed < maxSliceBatches {
		b, ok := s.pop()
		if !ok {
			break
		}
		s.processFlat(b)
		processed++
	}
	if processed == 0 && coasts > 0 {
		// Telemetry waiting takes priority over coasting; a tick that
		// found telemetry forgets its coast, like the ticker path did.
		s.qmu.Lock()
		skip := s.paused || s.stopping
		s.qmu.Unlock()
		if !skip {
			for i := int32(0); i < coasts; i++ {
				s.coast()
			}
		}
	}
	s.qmu.Lock()
	finalize := s.stopping && s.qcount == 0
	s.qmu.Unlock()
	if finalize {
		s.finishOnce.Do(func() {
			// An excursion still open at drain time must release the
			// under-attack gauge; no more ticks will resolve it.
			s.closeExcursion()
			close(s.done)
		})
	}
}

// pendingWork reports whether the session still needs an executor.
func (s *Session) pendingWork() bool {
	if s.doneClosed() {
		return false
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.stopping {
		return true // drain and finalize
	}
	if s.paused {
		return false
	}
	return s.qcount > 0 || s.coastDue.Load() > 0
}

// Pause holds the session's ingest queue: queued and newly accepted
// batches sit (degrading to backpressure once the queue fills) until
// Resume. The counterpart of Resume, for quiescing a session without
// losing its queue; a batch already claimed by a shard worker finishes
// its ticks first. Idempotent.
func (s *Session) Pause() {
	s.qmu.Lock()
	s.paused = true
	s.qmu.Unlock()
}

// Resume releases a session created with Paused (or paused since).
// Idempotent; a no-op for sessions that were never paused.
func (s *Session) Resume() {
	s.qmu.Lock()
	was := s.paused
	s.paused = false
	s.qmu.Unlock()
	if was && s.cfg.WallClock {
		s.shard.resetWallClock(s)
	}
	s.schedule()
}

// beginStop flags the session for draining and makes sure an executor
// will get to it, without waiting.
func (s *Session) beginStop() {
	s.qmu.Lock()
	s.stopping = true
	s.qmu.Unlock()
	s.schedule()
}

// Stop drains the queued telemetry, finalizes the session and waits
// for it. Idempotent; safe to call concurrently. Normally a shard
// worker performs the drain; if none claims the session (the pool is
// saturated or already torn down), Stop claims the actor itself and
// drains inline, so Stop never depends on pool liveness.
func (s *Session) Stop() {
	s.beginStop()
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if s.state.CompareAndSwap(stateScheduled, stateRunning) ||
				s.state.CompareAndSwap(stateIdle, stateRunning) {
				for !s.doneClosed() {
					s.runSlice()
				}
				s.state.Store(stateIdle)
				return
			}
		}
	}
}

// Result finalizes and returns the run result so far. It must only be
// called after Stop — the stepper is executor-confined while the
// session runs.
func (s *Session) Result() *sim.Result {
	if !s.doneClosed() {
		panic("padd: Session.Result before Stop")
	}
	return s.st.Result()
}

// Events returns the retained event log, oldest first, skipping
// entries below since.
func (s *Session) Events(since uint64) []Event { return s.events.list(since) }

// metrics copies out the cross-goroutine snapshot.
func (s *Session) metrics() sessionMetrics {
	s.mu.Lock()
	sm := s.snap
	s.mu.Unlock()
	sm.Accepted = s.accepted.Load()
	sm.Rejected = s.rejected.Load()
	s.qmu.Lock()
	sm.QueueDepth = s.qcount
	s.qmu.Unlock()
	return sm
}

// processFlat steps the engine through one batch, then recycles its
// buffer.
func (s *Session) processFlat(b flatBatch) {
	servers := s.st.TotalServers()
	for i := 0; i < b.samples; i++ {
		if s.st.Done() {
			s.discarded += int64(b.samples - i)
			s.publish(0)
			break
		}
		u := b.u[i*servers : (i+1)*servers]
		copy(s.lastU, u)
		s.haveU = true
		s.coasting = false
		s.step(u)
	}
	putFlat(b.u)
}

// coast advances one tick on the last known demand (idle until the
// first telemetry arrives). Only the first coast of a gap is logged.
func (s *Session) coast() {
	if s.st.Done() {
		return
	}
	if !s.coasting {
		s.event(EventCoast, fmt.Sprintf("telemetry late at tick %d; coasting on last known demand", s.st.Ticks()))
		s.coasting = true
	}
	s.coasts++
	s.step(s.lastU)
}

// step advances the engine one tick and refreshes events, metering and
// the published snapshot.
func (s *Session) step(u []float64) {
	start := time.Now()
	err := s.st.Advance(u)
	elapsed := time.Since(start)
	if err != nil {
		// Unreachable through the validated ingest path; surface it
		// rather than hide it.
		s.event(EventFinished, "advance error: "+err.Error())
		return
	}
	ts := s.st.Stats()

	if ts.Level != s.lastLevel {
		if s.lastLevel == 0 {
			s.event(EventLevel, fmt.Sprintf("initial level %v", ts.Level))
		} else {
			s.event(EventLevel, fmt.Sprintf("%v -> %v", s.lastLevel, ts.Level))
		}
		s.lastLevel = ts.Level
	}
	if (ts.ShedServers > 0) != (s.lastShed > 0) {
		if ts.ShedServers > 0 {
			s.event(EventShed, fmt.Sprintf("shedding engaged: %d servers, %.0f W displaced",
				ts.ShedServers, float64(ts.ShedWatts)))
		} else {
			s.event(EventShed, "shedding released")
		}
	}
	s.lastShed = ts.ShedServers
	if ts.Tripped && !s.tripSeen {
		s.tripSeen = true
		s.event(EventTrip, "breaker tripped")
	}
	if s.meter != nil {
		for _, r := range s.meter.Record(ts.TotalGrid, s.st.Tick()) {
			flagged := s.cusum.Observe(r)
			// An excursion opens the first interval the CUSUM statistic
			// leaves zero (or flags outright) — the earliest
			// online-observable onset — anchored at the interval's start.
			// Detection latency runs onset→flag; the excursion closes on
			// the flag (the statistic resets) or when it decays to zero.
			if !s.excursion && (flagged || s.cusum.Sum() > 0) {
				s.excursion = true
				s.shedSeen = false
				s.onset = r.Start
				s.shard.det.onsets.Add(1)
				s.shard.rollup.underAttack.Add(1)
			}
			if flagged {
				s.anomalies++
				s.event(EventAnomaly, fmt.Sprintf("CUSUM flagged interval at %v: %.0f W vs baseline %.0f W",
					r.Start, float64(r.Avg), float64(s.cusum.Baseline())))
				s.shard.det.detect.observe(s.st.Now() - s.onset)
				s.closeExcursion()
			} else if s.excursion && s.cusum.Sum() == 0 {
				s.closeExcursion() // decayed without crossing the decision level
			}
		}
	}
	// Shed latency runs onset→first tick shedding is engaged while the
	// excursion is open; a shed already holding when the onset opened
	// counts on the next tick, which is the first the correlation is
	// observable.
	if s.excursion && !s.shedSeen && ts.ShedServers > 0 {
		s.shedSeen = true
		s.shard.det.shed.observe(s.st.Now() - s.onset)
	}
	if s.st.Done() && !s.finished {
		s.finished = true
		s.event(EventFinished, fmt.Sprintf("horizon reached after %d ticks", ts.Ticks))
	}
	s.publish(elapsed)
}

// closeExcursion resolves the open CUSUM excursion (flagged or
// decayed) and releases the under-attack gauge. Executor-confined.
func (s *Session) closeExcursion() {
	if s.excursion {
		s.excursion = false
		s.shard.rollup.underAttack.Add(-1)
	}
}

// rollupLeave vacates the session's shard-rollup buckets. Called by the
// manager after Stop has drained the session — the done channel is the
// happens-before edge that makes reading the executor-confined bucket
// positions safe.
func (s *Session) rollupLeave() {
	r := &s.shard.rollup
	r.levels[s.rlLevel].Add(-1)
	r.margin[s.rlMargin].Add(-1)
}

// publish refreshes the cross-goroutine snapshot, appends the tick to
// the observability rings and moves the session's shard-rollup buckets.
// Zero allocations in steady state: the snapshot is copied in place and
// the rings were sized at creation.
func (s *Session) publish(elapsed time.Duration) {
	ts := s.st.Stats()
	if s.series != nil && int64(ts.Ticks) != s.seriesTick {
		// One sample per engine tick, so bucket index maps to sim time
		// (index × step × tick); the discard path republishes without
		// advancing and must not skew that mapping.
		s.seriesTick = int64(ts.Ticks)
		s.series.soc.Append(ts.MeanSOC)
		s.series.level.Append(float64(ts.Level))
		s.series.shed.Append(float64(ts.ShedWatts))
		s.series.margin.Append(float64(ts.BreakerMargin))
		s.series.queue.Append(float64(s.queueLen()))
	}
	if lvl := int(ts.Level); lvl != s.rlLevel {
		r := &s.shard.rollup
		r.levels[s.rlLevel].Add(-1)
		r.levels[lvl].Add(1)
		s.rlLevel = lvl
	}
	if mb := marginBucket(float64(ts.BreakerMargin)); mb != s.rlMargin {
		r := &s.shard.rollup
		r.margin[s.rlMargin].Add(-1)
		r.margin[mb].Add(1)
		s.rlMargin = mb
	}
	s.mu.Lock()
	s.snap.Ticks = int64(ts.Ticks)
	s.snap.Now = ts.Now
	s.snap.Level = ts.Level
	s.snap.MeanSOC = ts.MeanSOC
	s.snap.MinSOC = ts.MinSOC
	s.snap.MeanMicroSOC = ts.MeanMicroSOC
	s.snap.TotalGrid = ts.TotalGrid
	s.snap.ShedWatts = ts.ShedWatts
	s.snap.BreakerMargin = ts.BreakerMargin
	s.snap.ShedServers = ts.ShedServers
	s.snap.Tripped = ts.Tripped
	s.snap.Finished = s.finished
	s.snap.Coasts = s.coasts
	s.snap.Discarded = s.discarded
	s.snap.Anomalies = s.anomalies
	if elapsed > 0 {
		s.snap.Hist.observe(elapsed)
	}
	s.mu.Unlock()
}

func (s *Session) event(typ, detail string) {
	s.events.add(Event{
		Tick:   s.st.Ticks(),
		Offset: Duration{s.st.Now()},
		Wall:   time.Now(),
		Type:   typ,
		Detail: detail,
	})
}
