package padd

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metering"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/units"
)

// Enqueue errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is backpressure: the bounded ingest queue is full
	// and the caller must retry later (429).
	ErrQueueFull = errors.New("padd: telemetry queue full")
	// ErrStopping means the session is draining for shutdown (503).
	ErrStopping = errors.New("padd: session stopping")
)

// telemetryBatch is one accepted ingest unit: consecutive per-server
// utilization samples, one per control tick.
type telemetryBatch struct {
	samples [][]float64
}

// sessionMetrics is the cross-goroutine snapshot of a session's state,
// refreshed by the session goroutine once per tick and copied out whole
// by scrapers.
type sessionMetrics struct {
	Ticks         int64
	Now           time.Duration
	Level         core.Level
	MeanSOC       float64
	MinSOC        float64
	MeanMicroSOC  float64
	TotalGrid     units.Watts
	ShedWatts     units.Watts
	BreakerMargin units.Watts
	ShedServers   int
	Tripped       bool
	Finished      bool
	Coasts        int64
	Discarded     int64
	Anomalies     int64
	Hist          latencyHist

	// Filled in by metrics() from atomics / channel state.
	Accepted   int64
	Rejected   int64
	QueueDepth int
}

// Session is one online PDU control loop: a sim.Stepper owned by a
// single goroutine, fed from a bounded telemetry queue. All engine
// state is goroutine-confined; the outside world sees the mutex-guarded
// snapshot, the event ring and the atomic ingest counters.
type Session struct {
	id     string
	cfg    SessionConfig
	scheme sim.Scheme
	st     *sim.Stepper

	inbox chan telemetryBatch
	quit  chan struct{}
	done  chan struct{}

	enqMu    sync.Mutex
	stopping bool

	resumeCh   chan struct{}
	resumeOnce sync.Once
	stopOnce   sync.Once

	accepted atomic.Int64
	rejected atomic.Int64

	events *eventRing

	mu   sync.Mutex
	snap sessionMetrics

	// Session-goroutine state (never touched by other goroutines).
	meter     *metering.Meter
	cusum     *metering.CUSUMDetector
	lastU     []float64
	haveU     bool
	lastLevel core.Level
	lastShed  int
	tripSeen  bool
	finished  bool
	coasting  bool
	coasts    int64
	discarded int64
	anomalies int64
}

// newSession builds and starts a session. cfg must already have
// defaults applied and be validated.
func newSession(id string, cfg SessionConfig) (*Session, error) {
	scheme, err := schemes.ByName(cfg.Scheme, schemes.Options{ServersPerRack: cfg.ServersPerRack})
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		Key:                   "padd/" + id,
		Racks:                 cfg.Racks,
		ServersPerRack:        cfg.ServersPerRack,
		Tick:                  cfg.Tick.Duration,
		Duration:              cfg.Horizon.Duration,
		OversubscriptionRatio: cfg.Oversubscription,
		OvershootTolerance:    cfg.Overshoot,
		Record:                cfg.Record,
		RecordStep:            cfg.RecordStep.Duration,
	}
	if schemes.NeedsMicroDEB(cfg.Scheme) {
		simCfg.MicroDEBFactory = schemes.MicroDEBFactory(cfg.MicroFraction)
	}
	if cfg.Record {
		step := cfg.RecordStep.Duration
		if step == 0 {
			step = cfg.Tick.Duration
		}
		if points := cfg.Horizon.Duration / step; points > 2_000_000 {
			return nil, fmt.Errorf("padd: recording %d points; shorten horizon or raise record_step", points)
		}
	}
	st, err := sim.NewStepper(simCfg, scheme)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:       id,
		cfg:      cfg,
		scheme:   scheme,
		st:       st,
		inbox:    make(chan telemetryBatch, cfg.QueueDepth),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		resumeCh: make(chan struct{}),
		events:   newEventRing(cfg.EventLog),
		lastU:    make([]float64, st.TotalServers()),
	}
	if cfg.MeterInterval.Duration > 0 {
		m, err := metering.NewMeter(cfg.MeterInterval.Duration, 0, 1)
		if err != nil {
			return nil, err
		}
		s.meter = m
		s.cusum = metering.NewCUSUMDetector(0)
	}
	s.snap.MinSOC = 1
	s.snap.MeanSOC = 1
	s.snap.MeanMicroSOC = -1
	s.event(EventCreated, fmt.Sprintf("scheme %s, %d servers, tick %v",
		scheme.Name(), st.TotalServers(), st.Tick()))
	go s.run()
	return s, nil
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Config returns the session's (defaulted) configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// Enqueue validates a batch of per-server utilization samples and
// offers it to the bounded ingest queue without blocking. Values are
// clamped to [0, 1] in place; non-finite values are rejected outright.
// A full queue returns ErrQueueFull — the 429 signal — and a stopping
// session returns ErrStopping.
func (s *Session) Enqueue(samples [][]float64) error {
	want := s.st.TotalServers()
	for i, u := range samples {
		if len(u) != want {
			return fmt.Errorf("padd: sample %d has %d entries for %d servers", i, len(u), want)
		}
		for j, v := range u {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("padd: sample %d server %d: non-finite utilization", i, j)
			}
			if v < 0 {
				u[j] = 0
			} else if v > 1 {
				u[j] = 1
			}
		}
	}
	s.enqMu.Lock()
	defer s.enqMu.Unlock()
	if s.stopping {
		return ErrStopping
	}
	select {
	case s.inbox <- telemetryBatch{samples: samples}:
		s.accepted.Add(int64(len(samples)))
		return nil
	default:
		s.rejected.Add(1)
		return ErrQueueFull
	}
}

// Resume releases a session created with Paused. Idempotent; a no-op
// for sessions that were never paused.
func (s *Session) Resume() {
	s.resumeOnce.Do(func() { close(s.resumeCh) })
}

// Stop drains the queued telemetry, stops the control goroutine and
// waits for it to exit. Idempotent; safe to call concurrently.
func (s *Session) Stop() {
	s.enqMu.Lock()
	s.stopping = true
	s.enqMu.Unlock()
	s.stopOnce.Do(func() { close(s.quit) })
	<-s.done
}

// Result finalizes and returns the run result so far. It must only be
// called after Stop — the stepper is goroutine-confined while the
// session runs.
func (s *Session) Result() *sim.Result {
	select {
	case <-s.done:
	default:
		panic("padd: Session.Result before Stop")
	}
	return s.st.Result()
}

// Events returns the retained event log, oldest first, skipping
// entries below since.
func (s *Session) Events(since uint64) []Event { return s.events.list(since) }

// metrics copies out the cross-goroutine snapshot.
func (s *Session) metrics() sessionMetrics {
	s.mu.Lock()
	sm := s.snap
	s.mu.Unlock()
	sm.Accepted = s.accepted.Load()
	sm.Rejected = s.rejected.Load()
	sm.QueueDepth = len(s.inbox)
	return sm
}

// run is the session goroutine: the only goroutine that touches the
// stepper, the scheme, the meter and the event-producing state.
func (s *Session) run() {
	defer close(s.done)
	var tickC <-chan time.Time
	if s.cfg.WallClock {
		t := time.NewTicker(s.st.Tick())
		defer t.Stop()
		tickC = t.C
	}
	if s.cfg.Paused {
		select {
		case <-s.resumeCh:
		case <-s.quit:
			s.drain()
			return
		}
	}
	for {
		select {
		case <-s.quit:
			s.drain()
			return
		case b := <-s.inbox:
			s.process(b)
		case <-tickC:
			// Telemetry waiting takes priority; with none, coast one
			// tick on the last known demand so batteries, breakers and
			// the security policy keep tracking real time.
			select {
			case b := <-s.inbox:
				s.process(b)
			default:
				s.coast()
			}
		}
	}
}

// drain processes everything already accepted into the queue, so no
// acknowledged telemetry is lost on shutdown.
func (s *Session) drain() {
	for {
		select {
		case b := <-s.inbox:
			s.process(b)
		default:
			return
		}
	}
}

func (s *Session) process(b telemetryBatch) {
	for i, u := range b.samples {
		if s.st.Done() {
			s.discarded += int64(len(b.samples) - i)
			s.publish(0)
			return
		}
		copy(s.lastU, u)
		s.haveU = true
		s.coasting = false
		s.step(u)
	}
}

// coast advances one tick on the last known demand (idle until the
// first telemetry arrives). Only the first coast of a gap is logged.
func (s *Session) coast() {
	if s.st.Done() {
		return
	}
	if !s.coasting {
		s.event(EventCoast, fmt.Sprintf("telemetry late at tick %d; coasting on last known demand", s.st.Ticks()))
		s.coasting = true
	}
	s.coasts++
	s.step(s.lastU)
}

// step advances the engine one tick and refreshes events, metering and
// the published snapshot.
func (s *Session) step(u []float64) {
	start := time.Now()
	err := s.st.Advance(u)
	elapsed := time.Since(start)
	if err != nil {
		// Unreachable through the validated ingest path; surface it
		// rather than hide it.
		s.event(EventFinished, "advance error: "+err.Error())
		return
	}
	ts := s.st.Stats()

	if ts.Level != s.lastLevel {
		if s.lastLevel == 0 {
			s.event(EventLevel, fmt.Sprintf("initial level %v", ts.Level))
		} else {
			s.event(EventLevel, fmt.Sprintf("%v -> %v", s.lastLevel, ts.Level))
		}
		s.lastLevel = ts.Level
	}
	if (ts.ShedServers > 0) != (s.lastShed > 0) {
		if ts.ShedServers > 0 {
			s.event(EventShed, fmt.Sprintf("shedding engaged: %d servers, %.0f W displaced",
				ts.ShedServers, float64(ts.ShedWatts)))
		} else {
			s.event(EventShed, "shedding released")
		}
	}
	s.lastShed = ts.ShedServers
	if ts.Tripped && !s.tripSeen {
		s.tripSeen = true
		s.event(EventTrip, "breaker tripped")
	}
	if s.meter != nil {
		for _, r := range s.meter.Record(ts.TotalGrid, s.st.Tick()) {
			if s.cusum.Observe(r) {
				s.anomalies++
				s.event(EventAnomaly, fmt.Sprintf("CUSUM flagged interval at %v: %.0f W vs baseline %.0f W",
					r.Start, float64(r.Avg), float64(s.cusum.Baseline())))
			}
		}
	}
	if s.st.Done() && !s.finished {
		s.finished = true
		s.event(EventFinished, fmt.Sprintf("horizon reached after %d ticks", ts.Ticks))
	}
	s.publish(elapsed)
}

// publish refreshes the cross-goroutine snapshot.
func (s *Session) publish(elapsed time.Duration) {
	ts := s.st.Stats()
	s.mu.Lock()
	s.snap.Ticks = int64(ts.Ticks)
	s.snap.Now = ts.Now
	s.snap.Level = ts.Level
	s.snap.MeanSOC = ts.MeanSOC
	s.snap.MinSOC = ts.MinSOC
	s.snap.MeanMicroSOC = ts.MeanMicroSOC
	s.snap.TotalGrid = ts.TotalGrid
	s.snap.ShedWatts = ts.ShedWatts
	s.snap.BreakerMargin = ts.BreakerMargin
	s.snap.ShedServers = ts.ShedServers
	s.snap.Tripped = ts.Tripped
	s.snap.Finished = s.finished
	s.snap.Coasts = s.coasts
	s.snap.Discarded = s.discarded
	s.snap.Anomalies = s.anomalies
	if elapsed > 0 {
		s.snap.Hist.observe(elapsed)
	}
	s.mu.Unlock()
}

func (s *Session) event(typ, detail string) {
	s.events.add(Event{
		Tick:   s.st.Ticks(),
		Offset: Duration{s.st.Now()},
		Wall:   time.Now(),
		Type:   typ,
		Detail: detail,
	})
}
