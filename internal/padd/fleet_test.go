package padd

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fleetHarness boots a 2-shard manager behind a test server with two
// deterministic sessions: "f1" (PAD, driven 20 ticks of u=0.6 over the
// JSON path) and "f2" (Conv, paused, series disabled). Everything the
// fleet rollup reports about this pair is reproducible byte-for-byte.
func fleetHarness(t *testing.T) (*Manager, *httptest.Server) {
	t.Helper()
	mgr := NewManagerWith(Options{Shards: 2})
	srv := httptest.NewServer(NewServer(mgr))
	t.Cleanup(srv.Close)

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, out
	}

	if code, body := post("/v1/sessions",
		`{"id":"f1","scheme":"PAD","racks":1,"servers_per_rack":2}`); code != http.StatusCreated {
		t.Fatalf("create f1: HTTP %d: %s", code, body)
	}
	if code, body := post("/v1/sessions",
		`{"id":"f2","scheme":"Conv","racks":1,"servers_per_rack":2,"paused":true,"disable_series":true}`); code != http.StatusCreated {
		t.Fatalf("create f2: HTTP %d: %s", code, body)
	}

	var batch struct {
		Samples []struct {
			U []float64 `json:"u"`
		} `json:"samples"`
	}
	batch.Samples = make([]struct {
		U []float64 `json:"u"`
	}, 20)
	for i := range batch.Samples {
		batch.Samples[i].U = []float64{0.6, 0.6}
	}
	payload, _ := json.Marshal(batch)
	if code, body := post("/v1/sessions/f1/telemetry", string(payload)); code != http.StatusAccepted {
		t.Fatalf("telemetry: HTTP %d: %s", code, body)
	}

	s, err := mgr.Get("f1")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics().Ticks < 20 {
		if time.Now().After(deadline) {
			t.Fatal("f1 did not process the batch")
		}
		time.Sleep(time.Millisecond)
	}
	return mgr, srv
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// TestFleetGolden pins the GET /v1/fleet JSON byte-for-byte: field
// names, order (fixed by the FleetStatus struct), histogram layout and
// number formatting are an interface padtop and dashboards consume.
func TestFleetGolden(t *testing.T) {
	mgr, srv := fleetHarness(t)
	defer mgr.Shutdown(t.Context())

	code, body := getBody(t, srv.URL+"/v1/fleet")
	if code != http.StatusOK {
		t.Fatalf("fleet: HTTP %d: %s", code, body)
	}

	golden := filepath.Join("testdata", "fleet.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) {
		t.Fatalf("fleet JSON drifted from golden (regenerate with -update if deliberate):\ngot:\n%s\nwant:\n%s",
			body, want)
	}

	// Sanity beyond the bytes: occupancy distributions cover the fleet.
	var fs FleetStatus
	if err := json.Unmarshal(body, &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Sessions != 2 {
		t.Errorf("sessions = %d, want 2", fs.Sessions)
	}
	var levels, margins int64
	for _, n := range fs.LevelSessions {
		levels += n
	}
	for _, n := range fs.MarginSessions {
		margins += n
	}
	if levels != 2 || margins != 2 {
		t.Errorf("occupancy sums: levels=%d margins=%d, want 2 and 2", levels, margins)
	}
}

// TestSeriesEndpoint drives a session a known number of ticks and walks
// the series API: raw and downsampled tiers, incremental ?since=
// fetches, and the error contract (bad metric/res, disabled recording,
// unknown session).
func TestSeriesEndpoint(t *testing.T) {
	mgr, srv := fleetHarness(t)
	defer mgr.Shutdown(t.Context())

	fetch := func(path string) (int, SeriesResponse, []byte) {
		t.Helper()
		code, body := getBody(t, srv.URL+path)
		var sr SeriesResponse
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatalf("bad series JSON: %v\n%s", err, body)
			}
		}
		return code, sr, body
	}

	// 20 ticks at 100ms → raw tier steps 10 ticks per bucket: two full
	// buckets of SOC, each merged from 10 samples.
	code, sr, body := fetch("/v1/sessions/f1/series?metric=soc")
	if code != http.StatusOK {
		t.Fatalf("series: HTTP %d: %s", code, body)
	}
	if sr.ID != "f1" || sr.Metric != "soc" || sr.Res != "raw" {
		t.Errorf("echo fields: %+v", sr)
	}
	if sr.StepTicks != 10 || sr.TickSeconds != 0.1 || sr.Samples != 20 {
		t.Errorf("geometry: step=%d tick=%v samples=%d, want 10, 0.1, 20", sr.StepTicks, sr.TickSeconds, sr.Samples)
	}
	if len(sr.Buckets) != 2 {
		t.Fatalf("raw buckets: %d, want 2\n%+v", len(sr.Buckets), sr.Buckets)
	}
	for i, b := range sr.Buckets {
		if b.Index != uint64(i) || b.Count != 10 {
			t.Errorf("bucket %d: index=%d count=%d, want %d and 10", i, b.Index, b.Count, i)
		}
		if !(b.Min <= b.Last && b.Last <= b.Max) || b.Min <= 0 || b.Max > 1 {
			t.Errorf("bucket %d: SOC stats out of order: %+v", i, b)
		}
	}

	// The 10s tier merges all 20 ticks into one still-filling bucket.
	if code, sr, body = fetch("/v1/sessions/f1/series?metric=margin_watts&res=10s"); code != http.StatusOK {
		t.Fatalf("10s series: HTTP %d: %s", code, body)
	}
	if sr.StepTicks != 100 || len(sr.Buckets) != 1 || sr.Buckets[0].Count != 20 {
		t.Errorf("10s tier: step=%d buckets=%+v, want step 100 and one 20-sample bucket", sr.StepTicks, sr.Buckets)
	}

	// Incremental fetch: ?since=<samples seen> skips settled buckets.
	if code, sr, _ = fetch("/v1/sessions/f1/series?metric=soc&since=10"); code != http.StatusOK ||
		len(sr.Buckets) != 1 || sr.Buckets[0].Index != 1 {
		t.Errorf("since=10: HTTP %d buckets %+v, want only bucket 1", code, sr.Buckets)
	}

	// Error contract.
	if code, _, body = fetch("/v1/sessions/f1/series?metric=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad metric: HTTP %d: %s", code, body)
	}
	if code, _, body = fetch("/v1/sessions/f1/series?res=2h"); code != http.StatusBadRequest {
		t.Errorf("bad res: HTTP %d: %s", code, body)
	}
	if code, _, body = fetch("/v1/sessions/f1/series?since=x"); code != http.StatusBadRequest {
		t.Errorf("bad since: HTTP %d: %s", code, body)
	}
	if code, _, body = fetch("/v1/sessions/f2/series"); code != http.StatusNotFound {
		t.Errorf("disabled series: HTTP %d: %s", code, body)
	}
	if code, _, body = fetch("/v1/sessions/ghost/series"); code != http.StatusNotFound {
		t.Errorf("unknown session: HTTP %d: %s", code, body)
	}
}

// TestStatusUptimeAge covers the session-status liveness fields: uptime
// counts from creation, telemetry age is -1 until the first accepted
// batch and then tracks it.
func TestStatusUptimeAge(t *testing.T) {
	mgr, srv := fleetHarness(t)
	defer mgr.Shutdown(t.Context())

	status := func(id string) SessionStatus {
		t.Helper()
		code, body := getBody(t, srv.URL+"/v1/sessions/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d: %s", id, code, body)
		}
		var st SessionStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// f2 never received telemetry.
	if st := status("f2"); st.UptimeSeconds < 0 || st.LastTelemetryAgeSeconds != -1 {
		t.Errorf("f2: uptime=%v age=%v, want uptime ≥ 0 and age -1", st.UptimeSeconds, st.LastTelemetryAgeSeconds)
	}
	// f1 accepted a batch during harness setup.
	st := status("f1")
	if st.LastTelemetryAgeSeconds < 0 {
		t.Errorf("f1: age=%v after accepted telemetry, want ≥ 0", st.LastTelemetryAgeSeconds)
	}
	if st.UptimeSeconds < st.LastTelemetryAgeSeconds {
		t.Errorf("f1: uptime %v < telemetry age %v", st.UptimeSeconds, st.LastTelemetryAgeSeconds)
	}
}

// BenchmarkSessionPublishSeries prices what observability adds to the
// per-tick publish: five ring appends plus the rollup bucket moves. The
// CI gate holds this at zero allocations per op — the rings allocate
// once, on the first append, and never grow on the hot path.
func BenchmarkSessionPublishSeries(b *testing.B) {
	mgr := NewManagerWith(Options{Shards: 1})
	defer mgr.Shutdown(context.Background())
	s, err := mgr.Create(SessionConfig{
		ID: "pub", Scheme: "Conv", Racks: 1, ServersPerRack: 2, Paused: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.publish(time.Microsecond) // warm: the first append sizes the rings
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The paused engine never advances, so reset the one-sample-per-
		// tick guard to force the full append path every op.
		s.seriesTick = -1
		s.publish(time.Microsecond)
	}
}
