package padd_test

import (
	"testing"
	"time"

	"repro/internal/padd"
)

// TestReplayMatchesOffline is the tentpole acceptance test: streaming
// the offline engine's closed-loop demand through the daemon's HTTP
// ingest path must reproduce the offline run — results, recordings and
// level sequences — bit for bit, for all six schemes, through ALL
// THREE ingest paths: per-session JSON POSTs, batched binary POSTs and
// the persistent binary-acked stream.
func TestReplayMatchesOffline(t *testing.T) {
	for _, mode := range []string{padd.ModeJSON, padd.ModeBinary, padd.ModeStream} {
		t.Run(mode, func(t *testing.T) {
			report, err := padd.Replay(padd.ReplayConfig{
				// Long enough for the virus's Phase-I charge plus spikes to
				// trip the conventional scheme, so the comparison covers trip
				// accounting, not just calm cruising.
				Duration: 2 * time.Minute,
				Seed:     42,
				Mode:     mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(report.Schemes) != 6 {
				t.Fatalf("replayed %d schemes, want 6", len(report.Schemes))
			}
			anyTripped := false
			for _, s := range report.Schemes {
				if s.Ticks != 1200 {
					t.Errorf("%s: replayed %d ticks, want 1200", s.Scheme, s.Ticks)
				}
				anyTripped = anyTripped || s.Tripped
				for _, m := range s.Mismatches {
					t.Errorf("%s: %s", s.Scheme, m)
				}
			}
			if !anyTripped {
				t.Error("no scheme tripped; the replay exercised nothing interesting")
			}
		})
	}
}
