package padd

// Persistent streaming ingest: one long-lived connection per collector
// carrying an unbounded sequence of data frames, acknowledged with
// compact binary ack frames. The reader goroutine (the ServeStream
// caller) decodes each frame through the shared ingest core and hands
// the pre-encoded ack to a writer goroutine over a bounded channel —
// the in-flight window. When the window is full the reader stops
// reading, which surfaces to the client as TCP backpressure; when a
// session's queue is full the frame still gets an immediate
// AckBackpressure/AckPartial NACK, so queue pressure degrades per-frame
// (the 429 equivalent) rather than stalling the whole stream.

import (
	"bufio"
	"io"
	"sync"

	"repro/internal/padd/wire"
)

// streamWindow bounds the acks encoded but not yet written — the
// in-flight frame window. 64 frames ≈ one padload frame-sessions batch;
// deep enough to pipeline, shallow enough that a client that never
// reads acks is throttled within one window.
const streamWindow = 64

// ackBufPool recycles encoded-ack buffers between the reader and writer
// goroutines of every stream connection.
var ackBufPool = sync.Pool{New: func() any { return new([]byte) }}

// registerStream tracks a live stream connection so Shutdown can close
// it; it refuses once the manager is draining.
func (m *Manager) registerStream(c io.Closer) bool {
	m.streamMu.Lock()
	defer m.streamMu.Unlock()
	if m.closed.Load() {
		return false
	}
	if m.streamConns == nil {
		m.streamConns = make(map[io.Closer]struct{})
	}
	m.streamConns[c] = struct{}{}
	return true
}

func (m *Manager) unregisterStream(c io.Closer) {
	m.streamMu.Lock()
	delete(m.streamConns, c)
	m.streamMu.Unlock()
}

// closeStreams hangs up every live stream connection. Called by
// Shutdown after the closed flag is up, so no new connection can
// register concurrently; a dropped connection loses only unacked
// frames, which the reconnect contract allows.
func (m *Manager) closeStreams() {
	m.streamMu.Lock()
	for c := range m.streamConns {
		c.Close()
	}
	m.streamMu.Unlock()
}

// StreamConnections reports the number of live stream connections.
func (m *Manager) StreamConnections() int {
	m.streamMu.Lock()
	defer m.streamMu.Unlock()
	return len(m.streamConns)
}

// ServeStream runs one persistent ingest connection until the peer
// hangs up, the stream goes malformed, or the manager shuts down. It is
// the transport-agnostic core behind both the hijacked POST /v1/stream
// upgrade and a raw TCP listener (padd -stream-addr). The caller's
// goroutine is the per-connection reader; a second goroutine writes
// acks. Every frame is acknowledged exactly once, in order; a frame
// whose embedded payload goes syntactically bad is acked AckMalformed
// (keeping the records that landed before the corruption) and the
// connection is dropped, since a byte stream cannot resync past
// corruption.
func (m *Manager) ServeStream(conn io.ReadWriteCloser) error {
	if !m.registerStream(conn) {
		conn.Close()
		return ErrShuttingDown
	}
	defer m.unregisterStream(conn)
	defer conn.Close()

	// Ack writer: drains the window channel, batching flushes (flush
	// only when no more acks are queued). On a write error it keeps
	// draining so the reader never blocks, and the connection dies.
	acks := make(chan *[]byte, streamWindow)
	writeFailed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		bw := bufio.NewWriterSize(conn, 32<<10)
		failed := false
		for b := range acks {
			if !failed {
				_, err := bw.Write(*b)
				if err == nil && len(acks) == 0 {
					err = bw.Flush()
				}
				if err != nil {
					failed = true
					close(writeFailed)
				}
			}
			*b = (*b)[:0]
			ackBufPool.Put(b)
			m.streamInflight.Add(-1)
		}
	}()
	defer wg.Wait()
	defer close(acks)

	fi := ingestPool.Get().(*frameIngest)
	defer ingestPool.Put(fi)
	sr := wire.NewStreamReader(conn)
	for {
		seq, frame, err := sr.Next()
		if err == io.EOF {
			return nil // clean hangup between frames
		}
		if err != nil {
			// Envelope-level corruption (or a connection cut mid-frame):
			// nothing to ack — the frame never had a sequence number the
			// client can trust — so just drop the connection.
			return err
		}
		m.streamInflight.Add(1)
		m.ingestFrame(frame, fi)
		status := fi.ackStatus()
		m.noteStreamFrame(status)
		// The ack must be encoded before the next sr.Next overwrites the
		// frame buffer the reject IDs alias.
		b := ackBufPool.Get().(*[]byte)
		*b = fi.appendAck((*b)[:0], seq)
		select {
		case acks <- b:
		case <-writeFailed:
			*b = (*b)[:0]
			ackBufPool.Put(b)
			m.streamInflight.Add(-1)
			return io.ErrClosedPipe
		}
		if status == wire.AckMalformed {
			// Ack what landed, then hang up: the embedded frame went bad
			// and the stream cannot be resynchronized.
			return fi.frameErr
		}
	}
}
