package padd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/padd"
	"repro/internal/padd/wire"
)

// benchFleet boots a manager with a 64-session fleet sized like one
// padload shard: 8 servers each, deep queues so the benchmark measures
// sustained ingest rather than backpressure ping-pong.
func benchFleet(b *testing.B) (*padd.Manager, *padd.Server, []string) {
	b.Helper()
	mgr := padd.NewManagerWith(padd.Options{})
	b.Cleanup(func() { mgr.Shutdown(context.Background()) })
	ids := make([]string, 64)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%03d", i)
		_, err := mgr.Create(padd.SessionConfig{
			ID:             ids[i],
			Scheme:         "Conv",
			Racks:          2,
			ServersPerRack: 4,
			QueueDepth:     256,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return mgr, padd.NewServer(mgr), ids
}

// ingestLoop posts one frame per pending-id set until every record is
// accepted, resending exactly the rejected records on backpressure.
// Returns the number of POST round trips taken.
func ingestLoop(b *testing.B, srv *padd.Server, enc *wire.Encoder, ids []string, samples, servers int, flat []float64) int {
	b.Helper()
	posts := 0
	pending := ids
	for len(pending) > 0 {
		enc.Reset()
		for _, id := range pending {
			if err := enc.AppendFlat(id, samples, servers, flat); err != nil {
				b.Fatal(err)
			}
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(enc.Frame()))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		posts++
		if rec.Code != http.StatusAccepted && rec.Code != http.StatusTooManyRequests {
			b.Fatalf("ingest: HTTP %d: %s", rec.Code, rec.Body.String())
		}
		var ir padd.IngestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &ir); err != nil {
			b.Fatal(err)
		}
		next := pending[:0:0]
		for _, rej := range ir.Rejects {
			next = append(next, rej.ID)
		}
		pending = next
		if len(pending) > 0 {
			time.Sleep(20 * time.Microsecond) // let the shard workers drain
		}
	}
	return posts
}

// BenchmarkFleetIngestBinary is the CI-gated fleet ingest path: one
// binary frame carrying 64 sessions × 16 samples through the full HTTP
// handler (decode, shard routing, enqueue) with the shard workers
// consuming concurrently. One op is a fully-accepted frame — 1024
// samples — so ns/op directly bounds sustained fleet samples/sec.
func BenchmarkFleetIngestBinary(b *testing.B) {
	const (
		samples = 16
		servers = 8
	)
	_, srv, ids := benchFleet(b)
	flat := make([]float64, samples*servers)
	for i := range flat {
		flat[i] = float64(i%100) / 100
	}
	var enc wire.Encoder
	posts := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		posts += ingestLoop(b, srv, &enc, ids, samples, servers, flat)
	}
	b.StopTimer()
	total := float64(b.N) * float64(len(ids)*samples)
	b.ReportMetric(total/b.Elapsed().Seconds(), "samples/sec")
	b.ReportMetric(float64(posts)/float64(b.N), "posts/op")
}

// BenchmarkFleetIngestJSON is the same workload through the
// compatibility path: 64 per-session JSON POSTs per op. Kept beside the
// binary benchmark so BENCH_padd.json records what the frame format
// buys at fleet scale.
func BenchmarkFleetIngestJSON(b *testing.B) {
	const (
		samples = 16
		servers = 8
	)
	_, srv, ids := benchFleet(b)
	var treq padd.TelemetryRequest
	for i := 0; i < samples; i++ {
		u := make([]float64, servers)
		for j := range u {
			u[j] = float64(j%100) / 100
		}
		treq.Samples = append(treq.Samples, padd.TelemetrySample{U: u})
	}
	body, err := json.Marshal(treq)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			for {
				req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+id+"/telemetry", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code == http.StatusAccepted {
					break
				}
				if rec.Code != http.StatusTooManyRequests {
					b.Fatalf("telemetry: HTTP %d: %s", rec.Code, rec.Body.String())
				}
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
	b.StopTimer()
	total := float64(b.N) * float64(len(ids)*samples)
	b.ReportMetric(total/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkSessionCreate is one full session lifecycle — create on a
// shard, drain, delete — the sessions/sec number a fleet churn (padload
// ramp profiles) is bounded by.
func BenchmarkSessionCreate(b *testing.B) {
	mgr := padd.NewManagerWith(padd.Options{})
	defer mgr.Shutdown(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := mgr.Create(padd.SessionConfig{
			ID:             fmt.Sprintf("churn-%d", i),
			Scheme:         "Conv",
			Racks:          1,
			ServersPerRack: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mgr.Delete(s.ID()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
}
