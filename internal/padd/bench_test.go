package padd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/padd"
	"repro/internal/padd/wire"
)

// The fleet ingest benchmarks price the three transports head to head
// over a real TCP HTTP server at collector cadence: one op moves one
// sample for every session in a 64-session fleet (one telemetry tick
// fleet-wide). Sessions are paused and the queues drained with the
// timer stopped every benchBurst ops, so the timed region is the
// ingest path alone — transport, decode, shard routing, enqueue, ack.
// Engine consumption is identical across transports and (on the
// single-core CI boxes) would otherwise bound every path at the same
// samples/sec, hiding exactly the per-request lifecycle cost the
// stream path exists to remove.
const (
	benchSessions = 64
	benchServers  = 8   // 2 racks × 4
	benchBurst    = 192 // ops between untimed drains; + stream window < QueueDepth
)

// benchFleet boots the paused 64-session fleet behind a real HTTP
// server and returns a drain func that (untimed) resumes, waits for
// every queued sample to tick, and pauses again.
func benchFleet(b *testing.B) (*httptest.Server, []string, func()) {
	b.Helper()
	mgr := padd.NewManagerWith(padd.Options{})
	b.Cleanup(func() { mgr.Shutdown(context.Background()) })
	ids := make([]string, benchSessions)
	ss := make([]*padd.Session, benchSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%03d", i)
		s, err := mgr.Create(padd.SessionConfig{
			ID:             ids[i],
			Scheme:         "Conv",
			Racks:          2,
			ServersPerRack: 4,
			QueueDepth:     256,
			Paused:         true,
			// These benchmarks price the ingest transports; the per-tick
			// series cost is measured by BenchmarkSessionPublishSeries.
			DisableSeries: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		ss[i] = s
	}
	srv := httptest.NewServer(padd.NewServer(mgr))
	b.Cleanup(srv.Close)
	drain := func() {
		for _, s := range ss {
			s.Resume()
		}
		deadline := time.Now().Add(30 * time.Second)
		for _, s := range ss {
			for {
				st := s.Status()
				if st.QueueDepth == 0 && st.Ticks == st.Accepted {
					break
				}
				if time.Now().After(deadline) {
					b.Fatalf("%s: drain stuck: %+v", s.ID(), st)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		for _, s := range ss {
			s.Pause()
		}
	}
	return srv, ids, drain
}

// benchFrame encodes the per-op payload: one sample for each session.
func benchFrame(b *testing.B, ids []string, flat []float64) []byte {
	b.Helper()
	var enc wire.Encoder
	for _, id := range ids {
		if err := enc.AppendFlat(id, 1, benchServers, flat); err != nil {
			b.Fatal(err)
		}
	}
	return append([]byte(nil), enc.Frame()...)
}

func benchFlat() []float64 {
	flat := make([]float64, benchServers)
	for i := range flat {
		flat[i] = float64(i%100) / 100
	}
	return flat
}

// BenchmarkFleetIngestBinary is the CI-gated batched binary POST path:
// one op is one wire frame carrying all 64 sessions' next sample
// through a full HTTP request — connection handling, headers, routing,
// zero-copy decode, enqueue, JSON response — on a kept-alive client.
func BenchmarkFleetIngestBinary(b *testing.B) {
	srv, ids, drain := benchFleet(b)
	frame := benchFrame(b, ids, benchFlat())
	client := srv.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%benchBurst == 0 {
			b.StopTimer()
			drain()
			b.StartTimer()
		}
		resp, err := client.Post(srv.URL+"/v1/ingest", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("ingest: HTTP %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*benchSessions/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkFleetIngestJSON is the same fleet tick through the
// compatibility path: 64 per-session JSON POSTs per op. Kept beside the
// binary benchmark so BENCH_padd.json records what the frame format
// buys at fleet scale.
func BenchmarkFleetIngestJSON(b *testing.B) {
	srv, ids, drain := benchFleet(b)
	body, err := json.Marshal(padd.TelemetryRequest{
		Samples: []padd.TelemetrySample{{U: benchFlat()}},
	})
	if err != nil {
		b.Fatal(err)
	}
	client := srv.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%benchBurst == 0 {
			b.StopTimer()
			drain()
			b.StartTimer()
		}
		for _, id := range ids {
			resp, err := client.Post(srv.URL+"/v1/sessions/"+id+"/telemetry", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("telemetry %s: HTTP %d", id, resp.StatusCode)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*benchSessions/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkFleetIngestStream is the same fleet tick through the
// persistent stream: one long-lived upgraded connection, frames
// windowed in flight, compact binary acks. The CI gate holds this path
// to at least 3× the per-POST binary path (target 5×).
func BenchmarkFleetIngestStream(b *testing.B) {
	const window = 32 // frames in flight; must stay under the server ack window
	srv, ids, drain := benchFleet(b)
	frame := benchFrame(b, ids, benchFlat())
	sc, err := padd.DialStream(srv.URL)
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()

	var a wire.Ack
	inflight := 0
	readOne := func() {
		if err := sc.ReadAck(&a); err != nil {
			b.Fatal(err)
		}
		inflight--
		// The burst arithmetic keeps every queue under its depth, so
		// anything but a clean full ack is a correctness bug, not load.
		if a.Status != wire.AckOK || int(a.Records) != benchSessions {
			b.Fatalf("ack %+v, want AckOK %d records", a, benchSessions)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%benchBurst == 0 {
			for inflight > 0 {
				readOne()
			}
			b.StopTimer()
			drain()
			b.StartTimer()
		}
		for inflight >= window {
			readOne()
		}
		if _, err := sc.Send(frame); err != nil {
			b.Fatal(err)
		}
		inflight++
	}
	for inflight > 0 {
		readOne()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*benchSessions/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkSessionCreate is one full session lifecycle — create on a
// shard, drain, delete — the sessions/sec number a fleet churn (padload
// ramp profiles) is bounded by.
func BenchmarkSessionCreate(b *testing.B) {
	mgr := padd.NewManagerWith(padd.Options{})
	defer mgr.Shutdown(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := mgr.Create(padd.SessionConfig{
			ID:             fmt.Sprintf("churn-%d", i),
			Scheme:         "Conv",
			Racks:          1,
			ServersPerRack: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mgr.Delete(s.ID()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
}
