package padd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// maxBodyBytes bounds a request body; a full-scale 220-server batch of
// a few hundred samples fits comfortably.
const maxBodyBytes = 32 << 20

// Server is the daemon's HTTP API:
//
//	GET    /healthz                      liveness (503 while draining)
//	GET    /metrics                      Prometheus text exposition
//	POST   /v1/sessions                  create a session (SessionConfig JSON)
//	GET    /v1/sessions                  list session statuses
//	GET    /v1/sessions/{id}             one session's status
//	DELETE /v1/sessions/{id}             stop (drain) and remove a session
//	POST   /v1/sessions/{id}/telemetry   ingest telemetry (202; 429 on full queue)
//	POST   /v1/ingest                    batched binary ingest (wire frame, many sessions)
//	POST   /v1/stream                    persistent streaming ingest (connection upgrade)
//	POST   /v1/sessions/{id}/pause       hold the ingest queue until resume
//	POST   /v1/sessions/{id}/resume      release a paused session
//	GET    /v1/sessions/{id}/events      ring-buffered action log (?since=N)
//	GET    /v1/sessions/{id}/series      ring time series (?metric=soc&res=raw&since=N)
//	GET    /v1/fleet                     fleet rollup (levels, margins, detection latency)
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// NewServer wires the API around a manager.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/sessions/{id}/pause", s.handlePause)
	s.mux.HandleFunc("POST /v1/sessions/{id}/resume", s.handleResume)
	s.mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/sessions/{id}/series", s.handleSeries)
	s.mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SessionStatus is the JSON view of one session.
type SessionStatus struct {
	ID       string   `json:"id"`
	Scheme   string   `json:"scheme"`
	Racks    int      `json:"racks"`
	Servers  int      `json:"servers"`
	Tick     Duration `json:"tick"`
	Horizon  Duration `json:"horizon"`
	WallClock bool    `json:"wall_clock,omitempty"`

	Ticks    int64    `json:"ticks"`
	Offset   Duration `json:"offset"`
	Finished bool     `json:"finished"`

	Level         int     `json:"level"`
	LevelName     string  `json:"level_name,omitempty"`
	MeanSOC       float64 `json:"mean_soc"`
	MinSOC        float64 `json:"min_soc"`
	MeanMicroSOC  float64 `json:"mean_micro_soc"`
	GridWatts     float64 `json:"grid_watts"`
	ShedServers   int     `json:"shed_servers"`
	ShedWatts     float64 `json:"shed_watts"`
	BreakerMargin float64 `json:"breaker_margin_watts"`
	Tripped       bool    `json:"tripped"`

	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	Accepted   int64 `json:"accepted_samples"`
	Rejected   int64 `json:"rejected_batches"`
	Coasts     int64 `json:"coast_ticks"`
	Discarded  int64 `json:"discarded_samples"`
	Anomalies  int64 `json:"anomalies"`

	// UptimeSeconds is wall time since the session was created;
	// LastTelemetryAgeSeconds is wall time since the last accepted
	// telemetry batch, or -1 when none has arrived yet.
	UptimeSeconds           float64 `json:"uptime_seconds"`
	LastTelemetryAgeSeconds float64 `json:"last_telemetry_age_seconds"`
}

func statusOf(s *Session) SessionStatus { return s.Status() }

// Status snapshots the session's public state.
func (s *Session) Status() SessionStatus {
	cfg := s.Config()
	sm := s.metrics()
	st := SessionStatus{
		ID:        s.ID(),
		Scheme:    cfg.Scheme,
		Racks:     cfg.Racks,
		Servers:   s.st.TotalServers(),
		Tick:      cfg.Tick,
		Horizon:   cfg.Horizon,
		WallClock: cfg.WallClock,

		Ticks:    sm.Ticks,
		Offset:   Duration{sm.Now},
		Finished: sm.Finished,

		Level:         int(sm.Level),
		MeanSOC:       sm.MeanSOC,
		MinSOC:        sm.MinSOC,
		MeanMicroSOC:  sm.MeanMicroSOC,
		GridWatts:     float64(sm.TotalGrid),
		ShedServers:   sm.ShedServers,
		ShedWatts:     float64(sm.ShedWatts),
		BreakerMargin: float64(sm.BreakerMargin),
		Tripped:       sm.Tripped,

		QueueDepth: sm.QueueDepth,
		QueueCap:   cfg.QueueDepth,
		Accepted:   sm.Accepted,
		Rejected:   sm.Rejected,
		Coasts:     sm.Coasts,
		Discarded:  sm.Discarded,
		Anomalies:  sm.Anomalies,

		UptimeSeconds:           time.Since(s.created).Seconds(),
		LastTelemetryAgeSeconds: -1,
	}
	if ns := s.lastIngest.Load(); ns != 0 {
		st.LastTelemetryAgeSeconds = time.Since(time.Unix(0, ns)).Seconds()
	}
	if sm.Level != 0 {
		st.LevelName = sm.Level.String()
	}
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.mgr.Healthy() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mgr.WriteMetrics(w)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad session config: %w", err))
		return
	}
	sess, err := s.mgr.Create(cfg)
	if err != nil {
		switch {
		case errors.Is(err, ErrSessionLimit):
			// The fleet is at -max-sessions: shed load rather than OOM.
			w.Header().Set("Retry-After", "5")
			writeErr(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrShuttingDown):
			writeErr(w, http.StatusServiceUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, statusOf(sess))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := s.mgr.List()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID() < sessions[j].ID() })
	out := make([]SessionStatus, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, statusOf(sess))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) *Session {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return nil
	}
	return sess
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sess := s.session(w, r); sess != nil {
		writeJSON(w, http.StatusOK, statusOf(sess))
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Delete(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	res := sess.Result()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":                s.sessionID(sess),
		"ticks":             sess.metrics().Ticks,
		"tripped":           res.Tripped,
		"survival":          Duration{res.SurvivalTime},
		"effective_attacks": res.EffectiveAttacks,
		"throughput":        res.Throughput,
		"mean_shed_ratio":   res.MeanShedRatio,
	})
}

func (s *Server) sessionID(sess *Session) string { return sess.ID() }

// TelemetryRequest is the ingest payload: consecutive samples, each one
// control tick of per-server utilization in [0, 1].
type TelemetryRequest struct {
	Samples []TelemetrySample `json:"samples"`
}

// TelemetrySample is one tick of per-server utilization.
type TelemetrySample struct {
	U []float64 `json:"u"`
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req TelemetryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad telemetry: %w", err))
		return
	}
	if len(req.Samples) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("telemetry batch has no samples"))
		return
	}
	samples := make([][]float64, len(req.Samples))
	for i := range req.Samples {
		samples[i] = req.Samples[i].U
	}
	s.mgr.noteFrame(false)
	if err := sess.Enqueue(samples); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			// Explicit backpressure: the queue is bounded and the
			// client owns the retry. Never buffer unboundedly.
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrStopping):
			writeErr(w, http.StatusServiceUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	s.mgr.noteIngest(len(samples))
	writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted":    len(samples),
		"queue_depth": sess.queueLen(),
	})
}

// bodyPool recycles binary-ingest body buffers; at fleet rates the
// frame read is the only per-request allocation worth worrying about.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// IngestReject describes one record the batched ingest endpoint could
// not accept; the rest of the frame is unaffected.
type IngestReject struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

// IngestResponse summarizes one binary frame's fate: per-record
// accept/reject, never all-or-nothing.
type IngestResponse struct {
	Records  int            `json:"records"`
	Accepted int            `json:"accepted_records"`
	Samples  int            `json:"accepted_samples"`
	Rejects  []IngestReject `json:"rejects,omitempty"`
}

// AckContentType is the binary ack/reject response encoding for the
// batched ingest endpoint; clients opt in with "Accept:
// application/x-pad-wire" and get one wire ack frame instead of a JSON
// body, shaving the response-marshal allocations off the hot path.
const AckContentType = "application/x-pad-wire"

// handleIngest is the fleet ingest path: one wire frame carrying
// telemetry for many sessions in a single POST. Records are routed,
// validated and enqueued independently — a full queue on one session
// rejects that record only. The response is 202 when anything was
// accepted; an all-rejected frame maps to 429 (every rejection was
// backpressure, client should retry whole) or 400 otherwise.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyPool.Put(buf)
	binaryAck := r.Header.Get("Accept") == AckContentType
	if _, err := io.Copy(buf, http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad frame: %w", err))
		return
	}
	fi := ingestPool.Get().(*frameIngest)
	defer ingestPool.Put(fi)
	s.mgr.ingestFrame(buf.Bytes(), fi)
	if fi.headerOK {
		s.mgr.noteFrame(true)
	}

	if binaryAck {
		// One binary ack frame, encoded into the request-scoped scratch
		// buffer; the HTTP status still carries the envelope verdict.
		code := fi.httpStatus()
		if fi.frameErr != nil {
			code = http.StatusBadRequest
		}
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		fi.ackBuf = fi.appendAck(fi.ackBuf[:0], 0)
		w.Header().Set("Content-Type", AckContentType)
		w.WriteHeader(code)
		w.Write(fi.ackBuf) //nolint:errcheck // best-effort, like writeJSON
		return
	}

	if fi.frameErr != nil {
		// The frame went bad (at the header or mid-decode); everything
		// before the corruption is already enqueued and stays accepted.
		writeErr(w, http.StatusBadRequest, fi.frameErr)
		return
	}
	resp := IngestResponse{Records: fi.records, Accepted: fi.accepted, Samples: fi.samples}
	for i := range fi.rejects {
		resp.Rejects = append(resp.Rejects, IngestReject{
			ID:    string(fi.rejects[i].ID),
			Error: fi.rejects[i].Err.Error(),
		})
	}
	code := fi.httpStatus()
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, resp)
}

// StreamProtocol is the Upgrade token of the persistent ingest stream.
const StreamProtocol = "pad-stream/1"

// hijackedConn is the post-upgrade connection: reads go through the
// server's buffered reader (it may have read ahead past the request),
// writes and close go straight to the socket.
type hijackedConn struct {
	r *bufio.Reader
	net.Conn
}

func (h hijackedConn) Read(p []byte) (int, error) { return h.r.Read(p) }

// handleStream upgrades the request into a persistent ingest stream:
// after a 101 handshake the connection stops being HTTP and carries raw
// stream data frames client→server and binary acks server→client until
// either side closes. One upgrade per collector replaces one POST per
// frame — the request lifecycle, not the wire format, bounds the POST
// path's throughput.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if !s.mgr.Healthy() {
		writeErr(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeErr(w, http.StatusNotImplemented, errors.New("padd: streaming needs a hijackable connection"))
		return
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	// The stream lives until the client hangs up; no HTTP deadlines.
	conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort on a live socket
	if _, err := brw.WriteString("HTTP/1.1 101 Switching Protocols\r\nUpgrade: " +
		StreamProtocol + "\r\nConnection: Upgrade\r\n\r\n"); err != nil {
		conn.Close()
		return
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return
	}
	s.mgr.ServeStream(hijackedConn{r: brw.Reader, Conn: conn}) //nolint:errcheck // connection-level errors end the stream
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	if sess := s.session(w, r); sess != nil {
		sess.Pause()
		writeJSON(w, http.StatusOK, map[string]string{"status": "paused"})
	}
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if sess := s.session(w, r); sess != nil {
		sess.Resume()
		writeJSON(w, http.StatusOK, map[string]string{"status": "running"})
	}
}

// SeriesResponse is the GET /v1/sessions/{id}/series payload: one
// metric's ring at one resolution, oldest bucket first. A bucket's
// simulated start time is Index × StepTicks × TickSeconds from session
// start; Samples is the total appended, so passing it back as ?since=
// fetches only what arrived in between.
type SeriesResponse struct {
	ID          string       `json:"id"`
	Metric      string       `json:"metric"`
	Res         string       `json:"res"`
	StepTicks   int          `json:"step_ticks"`
	TickSeconds float64      `json:"tick_seconds"`
	Samples     uint64       `json:"samples"`
	Buckets     []obs.Bucket `json:"buckets"`
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	if sess.series == nil {
		writeErr(w, http.StatusNotFound, errors.New("padd: series recording is disabled for this session"))
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		metric = SeriesMetrics[0]
	}
	ring := sess.series.byName(metric)
	if ring == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("padd: unknown metric %q (one of %v)", metric, SeriesMetrics))
		return
	}
	res := q.Get("res")
	if res == "" {
		res = SeriesResolutions[0]
	}
	tier := seriesTier(res)
	if tier < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("padd: unknown res %q (one of %v)", res, SeriesResolutions))
		return
	}
	since := uint64(0)
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		since = n
	}
	resp := SeriesResponse{
		ID:          sess.ID(),
		Metric:      metric,
		Res:         res,
		StepTicks:   ring.Tiers()[tier].Step,
		TickSeconds: sess.st.Tick().Seconds(),
		Samples:     ring.Len(),
		Buckets:     ring.Snapshot(tier, since, nil),
	}
	if resp.Buckets == nil {
		resp.Buckets = []obs.Bucket{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Fleet())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		since = v
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": sess.Events(since)})
}
