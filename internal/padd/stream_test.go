package padd_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/padd"
	"repro/internal/padd/wire"
)

// streamFixture boots a daemon with one session and dials a stream.
func streamFixture(t *testing.T, cfg padd.SessionConfig) (*padd.Manager, *httptest.Server, *padd.StreamClient) {
	t.Helper()
	mgr := padd.NewManager()
	t.Cleanup(func() { mgr.Shutdown(context.Background()) })
	srv := httptest.NewServer(padd.NewServer(mgr))
	t.Cleanup(srv.Close)
	if cfg.ID != "" {
		if _, err := mgr.Create(cfg); err != nil {
			t.Fatal(err)
		}
	}
	sc, err := padd.DialStream(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return mgr, srv, sc
}

func frameFor(t *testing.T, id string, samples, servers int, u float64) []byte {
	t.Helper()
	flat := make([]float64, samples*servers)
	for i := range flat {
		flat[i] = u
	}
	var enc wire.Encoder
	if err := enc.AppendFlat(id, samples, servers, flat); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), enc.Frame()...)
}

func waitTicks(t *testing.T, mgr *padd.Manager, id string, want int64) {
	t.Helper()
	sess, err := mgr.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sess.Status().Ticks < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: stuck at %d/%d ticks", id, sess.Status().Ticks, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamIngest drives the happy path through the full upgrade:
// many frames pipelined over one connection, each acked in order with
// the accepted counts, and every acked sample ticked by the engine.
func TestStreamIngest(t *testing.T) {
	mgr, _, sc := streamFixture(t, padd.SessionConfig{
		ID: "s1", Scheme: "PAD", Racks: 1, ServersPerRack: 2, QueueDepth: 64,
	})

	const frames = 16
	const samples = 4
	frame := frameFor(t, "s1", samples, 2, 0.5)
	seqs := make([]uint64, frames)
	for i := range seqs {
		seq, err := sc.Send(frame)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = seq
	}
	var a wire.Ack
	for i := 0; i < frames; i++ {
		if err := sc.ReadAck(&a); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if a.Seq != seqs[i] {
			t.Errorf("ack %d: seq %d, want %d (in-order acking)", i, a.Seq, seqs[i])
		}
		if a.Status != wire.AckOK || a.Records != 1 || a.Samples != samples {
			t.Errorf("ack %d: %+v, want AckOK 1 record %d samples", i, a, samples)
		}
	}
	waitTicks(t, mgr, "s1", frames*samples)
}

// TestStreamRejects pins the per-record NACK semantics on a live
// stream: unknown sessions, shape mismatches and queue backpressure
// come back as typed binary rejects without disturbing the connection,
// and backpressure clears once the session drains.
func TestStreamRejects(t *testing.T) {
	mgr, _, sc := streamFixture(t, padd.SessionConfig{
		ID: "s1", Scheme: "Conv", Racks: 1, ServersPerRack: 2, QueueDepth: 1, Paused: true,
	})

	var a wire.Ack

	// Unknown session: frame-level AckPartial would need an accepted
	// record; a lone unknown record is neither backpressure nor drain.
	if _, err := sc.Send(frameFor(t, "ghost", 1, 2, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := sc.ReadAck(&a); err != nil {
		t.Fatal(err)
	}
	if a.Status != wire.AckPartial || a.Records != 0 || len(a.Rejects) != 1 ||
		a.Rejects[0].Reason != wire.RejectUnknownSession || string(a.Rejects[0].ID) != "ghost" {
		t.Fatalf("unknown-session ack: %+v", a)
	}

	// Shape mismatch.
	if _, err := sc.Send(frameFor(t, "s1", 1, 5, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := sc.ReadAck(&a); err != nil {
		t.Fatal(err)
	}
	if a.Status != wire.AckPartial || len(a.Rejects) != 1 || a.Rejects[0].Reason != wire.RejectShape {
		t.Fatalf("shape ack: %+v", a)
	}

	// Fill the depth-1 queue of the paused session, then hit backpressure.
	good := frameFor(t, "s1", 1, 2, 0.5)
	if _, err := sc.Send(good); err != nil {
		t.Fatal(err)
	}
	if err := sc.ReadAck(&a); err != nil {
		t.Fatal(err)
	}
	if a.Status != wire.AckOK {
		t.Fatalf("fill ack: %+v", a)
	}
	if _, err := sc.Send(good); err != nil {
		t.Fatal(err)
	}
	if err := sc.ReadAck(&a); err != nil {
		t.Fatal(err)
	}
	if a.Status != wire.AckBackpressure || len(a.Rejects) != 1 ||
		a.Rejects[0].Reason != wire.RejectQueueFull || string(a.Rejects[0].ID) != "s1" {
		t.Fatalf("backpressure ack: %+v", a)
	}

	// The 429-equivalent is per-frame, not a stalled stream: resume the
	// session and the retried frame goes through on the same connection.
	sess, err := mgr.Get("s1")
	if err != nil {
		t.Fatal(err)
	}
	sess.Resume()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := sc.Send(good); err != nil {
			t.Fatal(err)
		}
		if err := sc.ReadAck(&a); err != nil {
			t.Fatal(err)
		}
		if a.Status == wire.AckOK {
			break
		}
		if a.Status != wire.AckBackpressure || time.Now().After(deadline) {
			t.Fatalf("retry ack: %+v", a)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamMalformedDrops pins the resync contract: a frame whose
// embedded payload is corrupt is acked AckMalformed and the server
// hangs up (a byte stream cannot resync past corruption); records
// decoded before the corruption stay accepted.
func TestStreamMalformedDrops(t *testing.T) {
	mgr, _, sc := streamFixture(t, padd.SessionConfig{
		ID: "s1", Scheme: "Conv", Racks: 1, ServersPerRack: 2,
	})

	frame := frameFor(t, "s1", 2, 2, 0.5)
	bad := append([]byte(nil), frame...)
	bad[2] = 99 // embedded wire version: envelope fine, frame malformed
	if _, err := sc.Send(bad); err != nil {
		t.Fatal(err)
	}
	var a wire.Ack
	if err := sc.ReadAck(&a); err != nil {
		t.Fatal(err)
	}
	if a.Status != wire.AckMalformed {
		t.Fatalf("malformed ack: %+v", a)
	}
	if err := sc.ReadAck(&a); !errors.Is(err, io.EOF) && err == nil {
		t.Fatalf("connection survived malformed frame: %v", err)
	}

	// A fresh connection works; the manager held no poisoned state.
	_ = mgr
}

// TestStreamReconnect proves the reconnect contract end to end: a
// client that loses its connection mid-stream (acks unread) reconnects
// and resends everything unacked. Acked frames are never lost, and the
// lossless-drain invariant ticks == accepted + coasts − discarded holds
// across the disconnect.
func TestStreamReconnect(t *testing.T) {
	mgr := padd.NewManager()
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(padd.NewServer(mgr))
	defer srv.Close()
	if _, err := mgr.Create(padd.SessionConfig{
		ID: "r1", Scheme: "PAD", Racks: 1, ServersPerRack: 2, QueueDepth: 256,
	}); err != nil {
		t.Fatal(err)
	}

	const samples = 4
	frame := frameFor(t, "r1", samples, 2, 0.5)

	// First connection: send 3 frames, read the ack for only the first,
	// then drop the link without reading the rest.
	sc1, err := padd.DialStream(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sc1.Send(frame); err != nil {
			t.Fatal(err)
		}
	}
	var a wire.Ack
	if err := sc1.ReadAck(&a); err != nil {
		t.Fatal(err)
	}
	if a.Status != wire.AckOK {
		t.Fatalf("first ack: %+v", a)
	}
	acked := int64(a.Samples)
	sc1.Close()

	// Reconnect and resend the 2 unacked frames (at-least-once: the
	// server may have ingested them before the cut, duplicating is the
	// client's accepted cost for never losing acked data).
	sc2, err := padd.DialStream(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	resent := int64(0)
	for i := 0; i < 2; i++ {
		if _, err := sc2.Send(frame); err != nil {
			t.Fatal(err)
		}
		if err := sc2.ReadAck(&a); err != nil {
			t.Fatal(err)
		}
		if a.Status != wire.AckOK {
			t.Fatalf("resend ack %d: %+v", i, a)
		}
		resent += int64(a.Samples)
	}

	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	sess, err := mgr.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Status()
	// Acked ⇒ enqueued: the session holds at least every acked sample,
	// at most everything sent across both connections.
	if st.Accepted < acked+resent || st.Accepted > 3*samples+2*samples {
		t.Errorf("accepted %d samples; acked %d, upper bound %d", st.Accepted, acked+resent, 5*samples)
	}
	if st.Ticks != st.Accepted+st.Coasts-st.Discarded {
		t.Errorf("lossless-drain broke across reconnect: %d ticks, %d accepted, %d coasts, %d discarded",
			st.Ticks, st.Accepted, st.Coasts, st.Discarded)
	}
	if st.Discarded != 0 {
		t.Errorf("%d samples discarded", st.Discarded)
	}
}

// TestStreamShutdownHangsUp: Shutdown closes live stream connections
// after flagging the manager closed, and new upgrades are refused 503.
func TestStreamShutdownHangsUp(t *testing.T) {
	mgr, srv, sc := streamFixture(t, padd.SessionConfig{
		ID: "s1", Scheme: "Conv", Racks: 1, ServersPerRack: 2,
	})
	if n := mgr.StreamConnections(); n != 1 {
		t.Fatalf("%d stream connections, want 1", n)
	}
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	var a wire.Ack
	if err := sc.ReadAck(&a); err == nil {
		t.Fatal("read after shutdown succeeded")
	}
	// The handler goroutine unregisters after its reader unblocks; give
	// it a moment rather than racing the defer.
	deadline := time.Now().Add(5 * time.Second)
	for mgr.StreamConnections() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d stream connections after shutdown", mgr.StreamConnections())
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(srv.URL+"/v1/stream", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("upgrade after shutdown: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestStreamMetricsFamilies checks the stream families appear on the
// scrape with real traffic counted.
func TestStreamMetricsFamilies(t *testing.T) {
	mgr, srv, sc := streamFixture(t, padd.SessionConfig{
		ID: "s1", Scheme: "Conv", Racks: 1, ServersPerRack: 2,
	})
	if _, err := sc.Send(frameFor(t, "s1", 2, 2, 0.5)); err != nil {
		t.Fatal(err)
	}
	var a wire.Ack
	if err := sc.ReadAck(&a); err != nil {
		t.Fatal(err)
	}
	_ = mgr
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, w := range []string{
		"padd_stream_connections 1",
		`padd_stream_frames_total{result="ok"} 1`,
		"padd_stream_inflight_window",
	} {
		if !strings.Contains(text, w) {
			t.Errorf("metrics missing %q", w)
		}
	}
}

// TestIngestBinaryAck pins the POST /v1/ingest binary-ack opt-in: with
// Accept: application/x-pad-wire the response body is one wire ack
// frame carrying the same verdict the JSON envelope would.
func TestIngestBinaryAck(t *testing.T) {
	mgr := padd.NewManager()
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(padd.NewServer(mgr))
	defer srv.Close()
	if _, err := mgr.Create(padd.SessionConfig{
		ID: "b1", Scheme: "Conv", Racks: 1, ServersPerRack: 2, QueueDepth: 1, Paused: true,
	}); err != nil {
		t.Fatal(err)
	}

	postAck := func(frame []byte) (int, wire.Ack) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/ingest", bytes.NewReader(frame))
		req.Header.Set("Accept", padd.AckContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != padd.AckContentType {
			t.Fatalf("Content-Type %q, want %q", ct, padd.AckContentType)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var a wire.Ack
		if err := wire.DecodeAck(body, &a); err != nil {
			t.Fatalf("response is not an ack frame: %v", err)
		}
		return resp.StatusCode, a
	}

	var enc wire.Encoder
	enc.AppendFlat("b1", 1, 2, []float64{0.5, 0.5})
	enc.AppendFlat("ghost", 1, 2, []float64{0.5, 0.5})
	code, a := postAck(enc.Frame())
	if code != http.StatusAccepted || a.Status != wire.AckPartial || a.Records != 1 ||
		a.Samples != 1 || len(a.Rejects) != 1 || string(a.Rejects[0].ID) != "ghost" ||
		a.Rejects[0].Reason != wire.RejectUnknownSession {
		t.Errorf("mixed frame: HTTP %d ack %+v", code, a)
	}

	// Queue (depth 1, paused) is full: 429 + AckBackpressure.
	enc.Reset()
	enc.AppendFlat("b1", 1, 2, []float64{0.5, 0.5})
	if code, a = postAck(enc.Frame()); code != http.StatusTooManyRequests || a.Status != wire.AckBackpressure {
		t.Errorf("full-queue frame: HTTP %d ack %+v, want 429 AckBackpressure", code, a)
	}

	// Garbage frame: 400 + AckMalformed.
	if code, a = postAck([]byte("not a frame")); code != http.StatusBadRequest || a.Status != wire.AckMalformed {
		t.Errorf("garbage frame: HTTP %d ack %+v, want 400 AckMalformed", code, a)
	}

	// Without the Accept header the JSON envelope is unchanged.
	enc.Reset()
	enc.AppendFlat("ghost", 1, 2, []float64{0.5, 0.5})
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/octet-stream", bytes.NewReader(enc.Frame()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte(`"rejects"`)) {
		t.Errorf("JSON envelope missing rejects: %s", body)
	}
}

// TestStreamManyConnections drives several concurrent streams at one
// daemon to shake out reader/writer races (meaningful under -race).
func TestStreamManyConnections(t *testing.T) {
	mgr := padd.NewManager()
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(padd.NewServer(mgr))
	defer srv.Close()

	const conns = 8
	const frames = 20
	const samples = 2
	ids := make([]string, conns)
	for i := range ids {
		ids[i] = fmt.Sprintf("mc-%d", i)
		if _, err := mgr.Create(padd.SessionConfig{
			ID: ids[i], Scheme: "Conv", Racks: 1, ServersPerRack: 2, QueueDepth: 64,
		}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, conns)
	for i := 0; i < conns; i++ {
		go func(id string) {
			sc, err := padd.DialStream(srv.URL)
			if err != nil {
				done <- err
				return
			}
			defer sc.Close()
			var enc wire.Encoder
			flat := []float64{0.4, 0.6, 0.5, 0.5}
			var a wire.Ack
			for f := 0; f < frames; f++ {
				enc.Reset()
				if err := enc.AppendFlat(id, samples, 2, flat); err != nil {
					done <- err
					return
				}
				if _, err := sc.Send(enc.Frame()); err != nil {
					done <- err
					return
				}
				for {
					if err := sc.ReadAck(&a); err != nil {
						done <- err
						return
					}
					if a.Status == wire.AckOK {
						break
					}
					if a.Status != wire.AckBackpressure {
						done <- fmt.Errorf("%s: ack %+v", id, a)
						return
					}
					if _, err := sc.Send(enc.Frame()); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(ids[i])
	}
	for i := 0; i < conns; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		sess, err := mgr.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		st := sess.Status()
		if st.Accepted != frames*samples {
			t.Errorf("%s: accepted %d, want %d", id, st.Accepted, frames*samples)
		}
		if st.Ticks != st.Accepted+st.Coasts-st.Discarded || st.Discarded != 0 {
			t.Errorf("%s: invariant broke: %+v", id, st)
		}
	}
}
