package padd

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// numLevels sizes the fleet level distribution: level 0 (schemes
// without a security policy) plus the Figure-9 levels L1..L3.
const numLevels = 4

// marginBounds are the fleet margin-distribution bucket upper bounds in
// watts: how many sessions currently sit at or below each breaker
// margin. The low buckets are the alarm zone — a PDU-scale session
// normally idles with kilowatts of headroom.
var marginBounds = [numMarginBounds]float64{0, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000}

const numMarginBounds = 9

// marginBucket maps a breaker margin to its distribution bucket.
func marginBucket(w float64) int {
	for i, b := range marginBounds {
		if w <= b {
			return i
		}
	}
	return numMarginBounds
}

// detectionBounds are the detection/shed latency histogram bucket upper
// bounds in seconds of simulated time. With the default 5s metering
// interval a single-interval detection lands at 5–10s; the tail covers
// slow-burn excursions that accumulate across many intervals.
var detectionBounds = [numDetBounds]float64{1, 2.5, 5, 7.5, 10, 15, 30, 60, 120, 300}

const numDetBounds = 10

// detHist is a lock-free fixed-bucket histogram of sim-time latencies,
// written by shard executors concurrently. The sum is kept in integer
// nanoseconds so concurrent observes never lose precision to a float
// CAS loop; scrapes may tear across one observe, which Prometheus
// histograms tolerate by design.
type detHist struct {
	counts   [numDetBounds + 1]atomic.Uint64 // +Inf bucket last
	sumNanos atomic.Int64
	total    atomic.Uint64
}

func (h *detHist) observe(d time.Duration) {
	h.sumNanos.Add(int64(d))
	h.total.Add(1)
	s := d.Seconds()
	for i, b := range detectionBounds {
		if s <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[numDetBounds].Add(1)
}

// detectionStats is the manager-wide detection-latency accounting,
// shared by every shard. An "onset" is the tick the CUSUM statistic
// first leaves zero — the earliest online-observable sign of an
// anomaly; detection latency runs from that onset to the CUSUM flag,
// shed latency from the onset to the first tick shedding is engaged
// while the excursion is open. Both are simulated (tick) time, so they
// measure the defense, not the host's scheduling.
type detectionStats struct {
	onsets atomic.Int64
	detect detHist
	shed   detHist
}

// shardRollup is one shard's lock-cheap fleet aggregate: independent
// atomics the executing workers move as their sessions change state, so
// a fleet-wide scrape is O(shards), not O(sessions). Level and margin
// are occupancy counters (each resident session sits in exactly one
// bucket of each); samples is the shard's accepted-sample counter, the
// numerator of its ingest rate.
type shardRollup struct {
	levels      [numLevels]atomic.Int64
	margin      [numMarginBounds + 1]atomic.Int64
	underAttack atomic.Int64
	samples     atomic.Int64
}

// join registers a fresh session in the rollup at its initial position.
func (r *shardRollup) join(level, marginBucket int) {
	r.levels[level].Add(1)
	r.margin[marginBucket].Add(1)
}

// sessionSeries holds one session's observability rings: the per-tick
// engine signals a dashboard needs to see a trajectory for. Each ring
// is an obs.Series with the standard tiered geometry; the executing
// worker is the only writer, snapshot readers come and go freely.
type sessionSeries struct {
	soc    *obs.Series
	level  *obs.Series
	shed   *obs.Series
	margin *obs.Series
	queue  *obs.Series
}

func newSessionSeries(tick time.Duration) *sessionSeries {
	tiers := obs.DefaultTiers(tick)
	return &sessionSeries{
		soc:    obs.NewSeries(tiers...),
		level:  obs.NewSeries(tiers...),
		shed:   obs.NewSeries(tiers...),
		margin: obs.NewSeries(tiers...),
		queue:  obs.NewSeries(tiers...),
	}
}

// SeriesMetrics lists the metric names GET /v1/sessions/{id}/series
// accepts, in the order padtop cycles through them.
var SeriesMetrics = []string{"soc", "level", "shed_watts", "margin_watts", "queue_depth"}

// byName resolves a series endpoint metric name to its ring.
func (ss *sessionSeries) byName(metric string) *obs.Series {
	switch metric {
	case "soc":
		return ss.soc
	case "level":
		return ss.level
	case "shed_watts":
		return ss.shed
	case "margin_watts":
		return ss.margin
	case "queue_depth":
		return ss.queue
	}
	return nil
}

// SeriesResolutions maps the series endpoint's res= values to
// downsampling tiers, matching obs.DefaultTiers' geometry.
var SeriesResolutions = []string{"raw", "10s", "1m"}

// seriesTier resolves a res= value to its tier index, or -1.
func seriesTier(res string) int {
	for i, r := range SeriesResolutions {
		if r == res {
			return i
		}
	}
	return -1
}

// HistogramStatus is a latency histogram in the fleet rollup JSON:
// per-bucket (non-cumulative) counts, the final count being the
// overflow bucket past the last bound.
type HistogramStatus struct {
	BoundsSeconds []float64 `json:"bounds_seconds"`
	Counts        []int64   `json:"counts"`
	SumSeconds    float64   `json:"sum_seconds"`
	Count         int64     `json:"count"`
}

// ShardStatus is one shard's slice of the fleet rollup.
type ShardStatus struct {
	Shard           int   `json:"shard"`
	Sessions        int   `json:"sessions"`
	AcceptedSamples int64 `json:"accepted_samples"`
}

// FleetStatus is the GET /v1/fleet rollup: the whole fleet's state in
// O(shards) counters, scraped without touching a single session lock.
// Field order is fixed by this struct — the JSON is golden-tested.
type FleetStatus struct {
	Sessions            int     `json:"sessions"`
	SessionsUnderAttack int64   `json:"sessions_under_attack"`
	LevelSessions       []int64 `json:"level_sessions"` // index = security level 0..3

	MarginBoundsWatts []float64 `json:"margin_bounds_watts"`
	MarginSessions    []int64   `json:"margin_sessions"` // per bound, last is overflow

	DetectionOnsets  int64           `json:"detection_onsets"`
	DetectionLatency HistogramStatus `json:"detection_latency_seconds"`
	ShedLatency      HistogramStatus `json:"shed_latency_seconds"`

	IngestFramesJSON   int64 `json:"ingest_frames_json"`
	IngestFramesBinary int64 `json:"ingest_frames_binary"`
	StreamConnections  int   `json:"stream_connections"`

	Shards []ShardStatus `json:"shards"`
}

// histStatus converts a detHist snapshot into its JSON view.
func histStatus(counts []uint64, sumNanos int64, total uint64) HistogramStatus {
	h := HistogramStatus{
		BoundsSeconds: detectionBounds[:],
		Counts:        make([]int64, len(counts)),
		SumSeconds:    float64(sumNanos) / 1e9,
		Count:         int64(total),
	}
	for i, c := range counts {
		h.Counts[i] = int64(c)
	}
	return h
}

// Fleet snapshots the fleet rollup. Reads only shard-level atomics and
// the per-shard session counts — never a session's snapshot mutex — so
// it cannot stall the ingest hot path.
func (m *Manager) Fleet() FleetStatus {
	fs := FleetStatus{
		LevelSessions:     make([]int64, numLevels),
		MarginBoundsWatts: marginBounds[:],
		MarginSessions:    make([]int64, numMarginBounds+1),

		DetectionOnsets: m.det.onsets.Load(),

		IngestFramesJSON:   m.framesJSON.Load(),
		IngestFramesBinary: m.framesBinary.Load(),
		StreamConnections:  m.StreamConnections(),
	}
	counts := m.ShardSessions()
	fs.Shards = make([]ShardStatus, len(m.shards))
	for i, sh := range m.shards {
		fs.Sessions += counts[i]
		fs.Shards[i] = ShardStatus{
			Shard:           i,
			Sessions:        counts[i],
			AcceptedSamples: sh.rollup.samples.Load(),
		}
		fs.SessionsUnderAttack += sh.rollup.underAttack.Load()
		for l := 0; l < numLevels; l++ {
			fs.LevelSessions[l] += sh.rollup.levels[l].Load()
		}
		for b := 0; b <= numMarginBounds; b++ {
			fs.MarginSessions[b] += sh.rollup.margin[b].Load()
		}
	}
	var dc, sc [numDetBounds + 1]uint64
	for i := range dc {
		dc[i] = m.det.detect.counts[i].Load()
		sc[i] = m.det.shed.counts[i].Load()
	}
	fs.DetectionLatency = histStatus(dc[:], m.det.detect.sumNanos.Load(), m.det.detect.total.Load())
	fs.ShedLatency = histStatus(sc[:], m.det.shed.sumNanos.Load(), m.det.shed.total.Load())
	return fs
}
