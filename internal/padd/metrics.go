package padd

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// latencyBounds are the tick-latency histogram bucket upper bounds in
// seconds. A 22×10 cluster steps in single-digit microseconds, so the
// buckets start fine and stretch to cover a loaded box.
var latencyBounds = [numLatencyBounds]float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 1,
}

const numLatencyBounds = 15

// latencyHist is a fixed-bucket histogram of tick latencies. It is
// written by the session goroutine under the session's snapshot lock
// and copied out whole for scraping.
type latencyHist struct {
	counts [numLatencyBounds + 1]uint64 // +Inf bucket last
	sum    float64
	total  uint64
}

func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	h.sum += s
	h.total++
	for i, b := range latencyBounds {
		if s <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(latencyBounds)]++
}

// WriteMetrics renders the Prometheus text exposition for every live
// session. Hand-rolled: the container has no client library, and the
// format is lines of `name{labels} value`.
func (m *Manager) WriteMetrics(w io.Writer) {
	sessions := m.List()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID() < sessions[j].ID() })

	fmt.Fprintf(w, "# HELP padd_up Whether the daemon is serving.\n# TYPE padd_up gauge\npadd_up 1\n")
	fmt.Fprintf(w, "# HELP padd_sessions Number of live sessions.\n# TYPE padd_sessions gauge\npadd_sessions %d\n", len(sessions))

	gauge := func(name, help string, value func(*sessionMetrics) (float64, bool)) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, s := range sessions {
			sm := s.metrics()
			if v, ok := value(&sm); ok {
				fmt.Fprintf(w, "%s{session=%q} %g\n", name, s.ID(), v)
			}
		}
	}
	counter := func(name, help string, value func(*sessionMetrics) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, s := range sessions {
			sm := s.metrics()
			fmt.Fprintf(w, "%s{session=%q} %g\n", name, s.ID(), value(&sm))
		}
	}
	all := func(f func(*sessionMetrics) float64) func(*sessionMetrics) (float64, bool) {
		return func(sm *sessionMetrics) (float64, bool) { return f(sm), true }
	}

	gauge("padd_session_soc", "Mean rack battery state of charge in [0,1].",
		all(func(sm *sessionMetrics) float64 { return sm.MeanSOC }))
	gauge("padd_session_min_soc", "Lowest rack battery state of charge in [0,1].",
		all(func(sm *sessionMetrics) float64 { return sm.MinSOC }))
	gauge("padd_session_micro_soc", "Mean μDEB state of charge in [0,1]; absent without μDEB hardware.",
		func(sm *sessionMetrics) (float64, bool) { return sm.MeanMicroSOC, sm.MeanMicroSOC >= 0 })
	gauge("padd_session_level", "PAD security level (1=Normal, 2=MinorIncident, 3=Emergency; 0 when the scheme has none).",
		all(func(sm *sessionMetrics) float64 { return float64(sm.Level) }))
	gauge("padd_session_shed_servers", "Servers held in deep sleep on the last tick.",
		all(func(sm *sessionMetrics) float64 { return float64(sm.ShedServers) }))
	gauge("padd_session_shed_watts", "Demand power displaced by shedding on the last tick.",
		all(func(sm *sessionMetrics) float64 { return float64(sm.ShedWatts) }))
	gauge("padd_session_grid_watts", "Cluster feed draw on the last tick.",
		all(func(sm *sessionMetrics) float64 { return float64(sm.TotalGrid) }))
	gauge("padd_session_breaker_margin_watts", "Smallest rated-minus-draw margin across untripped feeds.",
		all(func(sm *sessionMetrics) float64 { return float64(sm.BreakerMargin) }))
	gauge("padd_session_queue_depth", "Telemetry batches waiting in the ingest queue.",
		all(func(sm *sessionMetrics) float64 { return float64(sm.QueueDepth) }))
	gauge("padd_session_tripped", "1 once any breaker has tripped.",
		all(func(sm *sessionMetrics) float64 {
			if sm.Tripped {
				return 1
			}
			return 0
		}))
	counter("padd_session_ticks_total", "Control ticks advanced.",
		func(sm *sessionMetrics) float64 { return float64(sm.Ticks) })
	counter("padd_session_accepted_samples_total", "Telemetry samples accepted into the queue.",
		func(sm *sessionMetrics) float64 { return float64(sm.Accepted) })
	counter("padd_session_rejected_batches_total", "Telemetry batches rejected with 429 backpressure.",
		func(sm *sessionMetrics) float64 { return float64(sm.Rejected) })
	counter("padd_session_coast_ticks_total", "Wall-clock ticks advanced on stale demand (late telemetry).",
		func(sm *sessionMetrics) float64 { return float64(sm.Coasts) })
	counter("padd_session_discarded_samples_total", "Samples discarded after the session finished.",
		func(sm *sessionMetrics) float64 { return float64(sm.Discarded) })
	counter("padd_session_anomalies_total", "Metering intervals the CUSUM detector flagged.",
		func(sm *sessionMetrics) float64 { return float64(sm.Anomalies) })

	fmt.Fprintf(w, "# HELP padd_tick_latency_seconds Wall time per control tick.\n# TYPE padd_tick_latency_seconds histogram\n")
	for _, s := range sessions {
		sm := s.metrics()
		cum := uint64(0)
		for i, b := range latencyBounds {
			cum += sm.Hist.counts[i]
			fmt.Fprintf(w, "padd_tick_latency_seconds_bucket{session=%q,le=%q} %d\n", s.ID(), formatBound(b), cum)
		}
		cum += sm.Hist.counts[len(latencyBounds)]
		fmt.Fprintf(w, "padd_tick_latency_seconds_bucket{session=%q,le=\"+Inf\"} %d\n", s.ID(), cum)
		fmt.Fprintf(w, "padd_tick_latency_seconds_sum{session=%q} %g\n", s.ID(), sm.Hist.sum)
		fmt.Fprintf(w, "padd_tick_latency_seconds_count{session=%q} %d\n", s.ID(), sm.Hist.total)
	}
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
