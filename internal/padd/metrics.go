package padd

import (
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/padd/wire"
)

// latencyBounds are the tick-latency histogram bucket upper bounds in
// seconds. A 22×10 cluster steps in single-digit microseconds, so the
// buckets start fine and stretch to cover a loaded box.
var latencyBounds = [numLatencyBounds]float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 1,
}

const numLatencyBounds = 15

// latencyHist is a fixed-bucket histogram of tick latencies. It is
// written by the session goroutine under the session's snapshot lock
// and copied out whole for scraping.
type latencyHist struct {
	counts [numLatencyBounds + 1]uint64 // +Inf bucket last
	sum    float64
	total  uint64
}

func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	h.sum += s
	h.total++
	for i, b := range latencyBounds {
		if s <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(latencyBounds)]++
}

// batchBounds are the ingest batch-size histogram bucket upper bounds
// (samples per accepted batch). Powers of two from a single sample up
// to the largest burst a frame record can reasonably carry.
var batchBounds = [numBatchBounds]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

const numBatchBounds = 11

// batchHist is a lock-free fixed-bucket histogram of ingest batch
// sizes, written by every ingest handler concurrently. Buckets are
// independent atomics — a scrape may be torn across a single observe,
// which Prometheus histograms tolerate by design.
type batchHist struct {
	counts [numBatchBounds + 1]atomic.Uint64 // +Inf bucket last
	sum    atomic.Uint64
	total  atomic.Uint64
}

func (h *batchHist) observe(samples int) {
	h.sum.Add(uint64(samples))
	h.total.Add(1)
	for i, b := range batchBounds {
		if float64(samples) <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[numBatchBounds].Add(1)
}

// noteIngest records one accepted ingest batch in the given format
// ("json" or "binary"). Frame-level accounting (frames_total) is done
// once per POST by noteFrame.
func (m *Manager) noteIngest(samples int) { m.batchSizes.observe(samples) }

// noteFrame counts one ingest POST by format.
func (m *Manager) noteFrame(binary bool) {
	if binary {
		m.framesBinary.Add(1)
	} else {
		m.framesJSON.Add(1)
	}
}

// numAckStatuses sizes the per-result stream frame counters
// (wire.AckOK through wire.AckMalformed).
const numAckStatuses = wire.AckMalformed + 1

// gcPauseBounds are the padd_go_gc_pauses histogram bucket upper bounds
// in seconds; Go stop-the-world pauses sit well under a millisecond on
// a healthy box, so the tail buckets are the alarm zone.
var gcPauseBounds = [numGCBounds]float64{10e-6, 50e-6, 100e-6, 500e-6, 1e-3, 5e-3, 10e-3, 50e-3, 100e-3}

const numGCBounds = 9

// gcHist is the GC-pause histogram, guarded by Manager.gcMu (pauses are
// harvested from runtime.MemStats at scrape time, never on a hot path).
type gcHist struct {
	counts [numGCBounds + 1]uint64 // +Inf bucket last
	sum    float64
	total  uint64
}

func (h *gcHist) observe(seconds float64) {
	h.sum += seconds
	h.total++
	for i, b := range gcPauseBounds {
		if seconds <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[numGCBounds]++
}

// noteStreamFrame counts one stream data frame by its ack status.
func (m *Manager) noteStreamFrame(status byte) {
	if int(status) < len(m.streamFrames) {
		m.streamFrames[status].Add(1)
	}
}

// fleetMetrics is the manager-level scrape snapshot.
type fleetMetrics struct {
	ShardSessions  []int
	FramesJSON     int64
	FramesBinary   int64
	BatchCounts    [numBatchBounds + 1]uint64
	BatchSum       float64
	BatchTotal     uint64
	StreamConns    int
	StreamInflight int64
	StreamFrames   [numAckStatuses]int64

	// Fleet rollups, summed over the per-shard atomics.
	LevelSessions [numLevels]int64
	UnderAttack   int64
	MarginCounts  [numMarginBounds + 1]int64
	ShardSamples  []int64

	// Detection-latency accounting (sim time, seconds).
	Onsets       int64
	DetectCounts [numDetBounds + 1]uint64
	DetectSum    float64
	DetectTotal  uint64
	ShedCounts   [numDetBounds + 1]uint64
	ShedSum      float64
	ShedTotal    uint64

	// Go runtime families. Threaded through this snapshot (rather than
	// read inside the writer) so the golden test can pin the exposition
	// with synthetic values.
	Goroutines    int
	HeapBytes     uint64
	GCPauseCounts [numGCBounds + 1]uint64
	GCPauseSum    float64
	GCPauseTotal  uint64
}

func (m *Manager) fleetMetrics() fleetMetrics {
	fm := fleetMetrics{
		ShardSessions:  m.ShardSessions(),
		FramesJSON:     m.framesJSON.Load(),
		FramesBinary:   m.framesBinary.Load(),
		StreamConns:    m.StreamConnections(),
		StreamInflight: m.streamInflight.Load(),
	}
	for i := range fm.BatchCounts {
		fm.BatchCounts[i] = m.batchSizes.counts[i].Load()
	}
	fm.BatchSum = float64(m.batchSizes.sum.Load())
	fm.BatchTotal = m.batchSizes.total.Load()
	for i := range fm.StreamFrames {
		fm.StreamFrames[i] = m.streamFrames[i].Load()
	}

	fm.ShardSamples = make([]int64, len(m.shards))
	for i, sh := range m.shards {
		fm.ShardSamples[i] = sh.rollup.samples.Load()
		fm.UnderAttack += sh.rollup.underAttack.Load()
		for l := 0; l < numLevels; l++ {
			fm.LevelSessions[l] += sh.rollup.levels[l].Load()
		}
		for b := 0; b <= numMarginBounds; b++ {
			fm.MarginCounts[b] += sh.rollup.margin[b].Load()
		}
	}
	fm.Onsets = m.det.onsets.Load()
	for i := range fm.DetectCounts {
		fm.DetectCounts[i] = m.det.detect.counts[i].Load()
		fm.ShedCounts[i] = m.det.shed.counts[i].Load()
	}
	fm.DetectSum = float64(m.det.detect.sumNanos.Load()) / 1e9
	fm.DetectTotal = m.det.detect.total.Load()
	fm.ShedSum = float64(m.det.shed.sumNanos.Load()) / 1e9
	fm.ShedTotal = m.det.shed.total.Load()

	fm.Goroutines = runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fm.HeapBytes = ms.HeapAlloc
	m.gcMu.Lock()
	if ms.NumGC-m.lastNumGC > uint32(len(ms.PauseNs)) {
		// More cycles than the runtime's pause ring retains since the
		// last scrape; the older pauses are gone.
		m.lastNumGC = ms.NumGC - uint32(len(ms.PauseNs))
	}
	for n := m.lastNumGC; n < ms.NumGC; n++ {
		m.gcPauses.observe(float64(ms.PauseNs[n%uint32(len(ms.PauseNs))]) / 1e9)
	}
	m.lastNumGC = ms.NumGC
	fm.GCPauseCounts = m.gcPauses.counts
	fm.GCPauseSum = m.gcPauses.sum
	fm.GCPauseTotal = m.gcPauses.total
	m.gcMu.Unlock()
	return fm
}

// metricsRow is one session's scrape snapshot, paired with its ID.
type metricsRow struct {
	ID string
	M  sessionMetrics
}

// WriteMetrics renders the Prometheus text exposition for every live
// session. Hand-rolled: the container has no client library, and the
// format is lines of `name{labels} value`.
func (m *Manager) WriteMetrics(w io.Writer) {
	sessions := m.List()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID() < sessions[j].ID() })
	rows := make([]metricsRow, len(sessions))
	for i, s := range sessions {
		rows[i] = metricsRow{ID: s.ID(), M: s.metrics()}
	}
	writeSessionMetrics(w, m.fleetMetrics(), rows)
}

// writeSessionMetrics renders the exposition for the given snapshot rows
// (sorted by ID), built on the shared obs.Registry so padd and the other
// instrumented subsystems speak one format. Split from WriteMetrics so
// the byte format is testable against deterministic synthetic rows; the
// padd golden test pins it against the pre-registry output.
func writeSessionMetrics(w io.Writer, fm fleetMetrics, rows []metricsRow) {
	reg := obs.NewRegistry()
	reg.Gauge("padd_up", "Whether the daemon is serving.", "").Set("", 1)
	reg.Gauge("padd_sessions", "Number of live sessions.", "").Set("", float64(len(rows)))

	shardSessions := reg.Gauge("padd_shard_sessions", "Resident sessions per manager shard.", "shard")
	for i, n := range fm.ShardSessions {
		shardSessions.Set(strconv.Itoa(i), float64(n))
	}
	frames := reg.Counter("padd_ingest_frames_total", "Telemetry ingest requests by wire format.", "format")
	frames.Set("json", float64(fm.FramesJSON))
	frames.Set("binary", float64(fm.FramesBinary))
	reg.Histogram("padd_ingest_batch_size", "Samples per accepted ingest batch.", "", batchBounds[:]).
		SetHistogram("", fm.BatchCounts[:], fm.BatchSum, fm.BatchTotal)
	reg.Gauge("padd_stream_connections", "Live persistent ingest stream connections.", "").
		Set("", float64(fm.StreamConns))
	streamFrames := reg.Counter("padd_stream_frames_total", "Stream data frames by ack result.", "result")
	for status := 0; status < numAckStatuses; status++ {
		streamFrames.Set(wire.AckStatusName(byte(status)), float64(fm.StreamFrames[status]))
	}
	reg.Gauge("padd_stream_inflight_window", "Stream frames ingested but not yet acked (in-flight window occupancy).", "").
		Set("", float64(fm.StreamInflight))

	levelSessions := reg.Gauge("padd_fleet_level_sessions", "Resident sessions at each security level (0 = scheme without a policy).", "level")
	for l := 0; l < numLevels; l++ {
		levelSessions.Set(strconv.Itoa(l), float64(fm.LevelSessions[l]))
	}
	reg.Gauge("padd_fleet_sessions_under_attack", "Sessions with an open CUSUM excursion.", "").
		Set("", float64(fm.UnderAttack))
	marginDist := reg.Gauge("padd_fleet_margin_watts", "Sessions at or below each breaker-margin bound (cumulative occupancy).", "le")
	cumMargin := int64(0)
	for i, b := range marginBounds {
		cumMargin += fm.MarginCounts[i]
		marginDist.Set(strconv.FormatFloat(b, 'g', -1, 64), float64(cumMargin))
	}
	cumMargin += fm.MarginCounts[numMarginBounds]
	marginDist.Set("+Inf", float64(cumMargin))
	reg.Counter("padd_detection_onsets_total", "CUSUM excursions opened (statistic left zero).", "").
		Set("", float64(fm.Onsets))
	reg.Histogram("padd_detection_latency_seconds", "Sim time from excursion onset to the CUSUM flag.", "", detectionBounds[:]).
		SetHistogram("", fm.DetectCounts[:], fm.DetectSum, fm.DetectTotal)
	reg.Histogram("padd_shed_latency_seconds", "Sim time from excursion onset to the first shedding tick.", "", detectionBounds[:]).
		SetHistogram("", fm.ShedCounts[:], fm.ShedSum, fm.ShedTotal)
	shardSamples := reg.Counter("padd_shard_ingest_samples_total", "Telemetry samples accepted per manager shard.", "shard")
	for i, n := range fm.ShardSamples {
		shardSamples.Set(strconv.Itoa(i), float64(n))
	}
	reg.Gauge("padd_go_goroutines", "Goroutines in the daemon process.", "").
		Set("", float64(fm.Goroutines))
	reg.Gauge("padd_go_heap_bytes", "Live heap bytes (runtime.MemStats.HeapAlloc).", "").
		Set("", float64(fm.HeapBytes))
	reg.Histogram("padd_go_gc_pauses", "Stop-the-world GC pause durations in seconds.", "", gcPauseBounds[:]).
		SetHistogram("", fm.GCPauseCounts[:], fm.GCPauseSum, fm.GCPauseTotal)

	gauge := func(name, help string) *obs.Family { return reg.Gauge(name, help, "session") }
	counter := func(name, help string) *obs.Family { return reg.Counter(name, help, "session") }

	soc := gauge("padd_session_soc", "Mean rack battery state of charge in [0,1].")
	minSOC := gauge("padd_session_min_soc", "Lowest rack battery state of charge in [0,1].")
	microSOC := gauge("padd_session_micro_soc", "Mean μDEB state of charge in [0,1]; absent without μDEB hardware.")
	level := gauge("padd_session_level", "PAD security level (1=Normal, 2=MinorIncident, 3=Emergency; 0 when the scheme has none).")
	shedServers := gauge("padd_session_shed_servers", "Servers held in deep sleep on the last tick.")
	shedWatts := gauge("padd_session_shed_watts", "Demand power displaced by shedding on the last tick.")
	gridWatts := gauge("padd_session_grid_watts", "Cluster feed draw on the last tick.")
	margin := gauge("padd_session_breaker_margin_watts", "Smallest rated-minus-draw margin across untripped feeds.")
	queueDepth := gauge("padd_session_queue_depth", "Telemetry batches waiting in the ingest queue.")
	tripped := gauge("padd_session_tripped", "1 once any breaker has tripped.")
	ticks := counter("padd_session_ticks_total", "Control ticks advanced.")
	accepted := counter("padd_session_accepted_samples_total", "Telemetry samples accepted into the queue.")
	rejected := counter("padd_session_rejected_batches_total", "Telemetry batches rejected with 429 backpressure.")
	coasts := counter("padd_session_coast_ticks_total", "Wall-clock ticks advanced on stale demand (late telemetry).")
	discarded := counter("padd_session_discarded_samples_total", "Samples discarded after the session finished.")
	anomalies := counter("padd_session_anomalies_total", "Metering intervals the CUSUM detector flagged.")
	latency := reg.Histogram("padd_tick_latency_seconds", "Wall time per control tick.", "session", latencyBounds[:])

	for i := range rows {
		id, sm := rows[i].ID, &rows[i].M
		soc.Set(id, sm.MeanSOC)
		minSOC.Set(id, sm.MinSOC)
		if sm.MeanMicroSOC >= 0 {
			microSOC.Set(id, sm.MeanMicroSOC)
		}
		level.Set(id, float64(sm.Level))
		shedServers.Set(id, float64(sm.ShedServers))
		shedWatts.Set(id, float64(sm.ShedWatts))
		gridWatts.Set(id, float64(sm.TotalGrid))
		margin.Set(id, float64(sm.BreakerMargin))
		queueDepth.Set(id, float64(sm.QueueDepth))
		if sm.Tripped {
			tripped.Set(id, 1)
		} else {
			tripped.Set(id, 0)
		}
		ticks.Set(id, float64(sm.Ticks))
		accepted.Set(id, float64(sm.Accepted))
		rejected.Set(id, float64(sm.Rejected))
		coasts.Set(id, float64(sm.Coasts))
		discarded.Set(id, float64(sm.Discarded))
		anomalies.Set(id, float64(sm.Anomalies))
		latency.SetHistogram(id, sm.Hist.counts[:], sm.Hist.sum, sm.Hist.total)
	}
	reg.Write(w) //nolint:errcheck // bytes.Buffer / http writers; matches the historical best-effort scrape
}
