package padd

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRows is a deterministic scrape: two sessions, one with μDEB
// hardware and one without (pinning the absent-gauge path), with
// hand-set histogram contents so no wall clock leaks into the bytes.
func goldenRows() []metricsRow {
	a := sessionMetrics{
		Ticks:         1200,
		Now:           2 * time.Minute,
		Level:         core.Level2,
		MeanSOC:       0.8125,
		MinSOC:        0.25,
		MeanMicroSOC:  0.5,
		TotalGrid:     41250.5,
		ShedWatts:     512,
		BreakerMargin: 1234.75,
		ShedServers:   3,
		Tripped:       false,
		Coasts:        7,
		Discarded:     2,
		Anomalies:     1,
		Accepted:      4800,
		Rejected:      5,
		QueueDepth:    2,
	}
	a.Hist.counts = [numLatencyBounds + 1]uint64{3, 10, 40, 200, 800, 100, 40, 5, 1, 0, 0, 0, 0, 0, 0, 1}
	a.Hist.sum = 0.32125
	a.Hist.total = 1200

	b := sessionMetrics{
		Ticks:         50,
		Level:         0,
		MeanSOC:       1,
		MinSOC:        1,
		MeanMicroSOC:  -1, // no μDEB hardware: padd_session_micro_soc absent
		TotalGrid:     1000,
		BreakerMargin: 9000,
		Tripped:       true,
		Accepted:      50,
	}
	b.Hist.counts = [numLatencyBounds + 1]uint64{50}
	b.Hist.sum = 0.0003
	b.Hist.total = 50

	return []metricsRow{{ID: "alpha", M: a}, {ID: "beta", M: b}}
}

// goldenFleet is the matching deterministic manager-level snapshot:
// two shards, both POST ingest formats exercised, a hand-set batch-size
// histogram, and a live stream with every ack result represented.
func goldenFleet() fleetMetrics {
	fm := fleetMetrics{
		ShardSessions:  []int{1, 1},
		FramesJSON:     40,
		FramesBinary:   8,
		StreamConns:    2,
		StreamInflight: 3,
		StreamFrames:   [numAckStatuses]int64{120, 4, 7, 1, 1},
	}
	fm.BatchCounts = [numBatchBounds + 1]uint64{5, 3, 10, 20, 8, 1, 0, 0, 0, 0, 1, 0}
	fm.BatchSum = 4850
	fm.BatchTotal = 48

	fm.LevelSessions = [numLevels]int64{0, 1, 1, 0}
	fm.UnderAttack = 1
	fm.MarginCounts = [numMarginBounds + 1]int64{0, 0, 1, 1, 0, 0, 0, 0, 0, 0}
	fm.ShardSamples = []int64{4800, 50}
	fm.Onsets = 3
	fm.DetectCounts = [numDetBounds + 1]uint64{0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0}
	fm.DetectSum = 12.5
	fm.DetectTotal = 2
	fm.ShedCounts = [numDetBounds + 1]uint64{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}
	fm.ShedSum = 6.2
	fm.ShedTotal = 1
	fm.Goroutines = 17
	fm.HeapBytes = 4 << 20
	fm.GCPauseCounts = [numGCBounds + 1]uint64{2, 5, 1, 0, 0, 0, 0, 0, 0, 0}
	fm.GCPauseSum = 0.00042
	fm.GCPauseTotal = 8
	return fm
}

// TestMetricsGolden pins the Prometheus text exposition byte-for-byte.
// The format is an interface monitoring dashboards scrape; any change to
// names, ordering, label layout or number formatting must be deliberate
// (regenerate with -update) and called out.
func TestMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	writeSessionMetrics(&buf, goldenFleet(), goldenRows())

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("metrics exposition drifted from golden (regenerate with -update if deliberate):\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// TestMetricsEmpty covers the no-session scrape: every family still
// declares itself so dashboards see the schema before the first session.
func TestMetricsEmpty(t *testing.T) {
	var buf bytes.Buffer
	writeSessionMetrics(&buf, fleetMetrics{}, nil)
	out := buf.String()
	for _, want := range []string{
		"padd_up 1\n", "padd_sessions 0\n",
		"# TYPE padd_shard_sessions gauge\n",
		"padd_ingest_frames_total{format=\"binary\"} 0\n",
		"padd_ingest_frames_total{format=\"json\"} 0\n",
		"# TYPE padd_ingest_batch_size histogram\n",
		"padd_stream_connections 0\n",
		"padd_stream_frames_total{result=\"ok\"} 0\n",
		"padd_stream_frames_total{result=\"backpressure\"} 0\n",
		"padd_stream_inflight_window 0\n",
		"padd_ingest_batch_size_count 0\n",
		"padd_fleet_level_sessions{level=\"0\"} 0\n",
		"padd_fleet_level_sessions{level=\"3\"} 0\n",
		"padd_fleet_sessions_under_attack 0\n",
		"padd_fleet_margin_watts{le=\"+Inf\"} 0\n",
		"padd_detection_onsets_total 0\n",
		"# TYPE padd_detection_latency_seconds histogram\n",
		"# TYPE padd_shed_latency_seconds histogram\n",
		"# TYPE padd_shard_ingest_samples_total counter\n",
		"padd_go_goroutines 0\n",
		"padd_go_heap_bytes 0\n",
		"# TYPE padd_go_gc_pauses histogram\n",
		"# TYPE padd_session_soc gauge\n",
		"# TYPE padd_session_ticks_total counter\n",
		"# TYPE padd_tick_latency_seconds histogram\n",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("empty exposition missing %q:\n%s", want, out)
		}
	}
}
