package padd

import (
	"sync"
	"time"
)

// Event types recorded in a session's ring-buffered log.
const (
	EventCreated  = "created"  // session started
	EventLevel    = "level"    // security-level transition
	EventShed     = "shed"     // load shedding engaged, changed, or released
	EventTrip     = "trip"     // a breaker tripped
	EventCoast    = "coast"    // wall-clock tick with no telemetry: coasting
	EventAnomaly  = "anomaly"  // metering CUSUM flagged a power anomaly
	EventFinished = "finished" // horizon reached or StopOnTrip fired
)

// Event is one entry in a session's action log.
type Event struct {
	// Seq increases by one per event for the session's lifetime, so a
	// poller can detect entries lost to ring overwrite.
	Seq uint64 `json:"seq"`
	// Tick and Offset locate the event on the session's simulated
	// timeline.
	Tick   int      `json:"tick"`
	Offset Duration `json:"offset"`
	// Wall is the wall-clock time the event was recorded.
	Wall time.Time `json:"wall"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Detail is a human-readable description ("L1-Normal -> L2-MinorIncident").
	Detail string `json:"detail"`
}

// eventRing is a fixed-capacity event log: the newest entries win,
// overwriting the oldest. Safe for one writer and many readers.
type eventRing struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // sequence number of the next event
}

func newEventRing(capacity int) *eventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &eventRing{buf: make([]Event, 0, capacity)}
}

// add appends an event, assigning its sequence number.
func (r *eventRing) add(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[int(e.Seq)%cap(r.buf)] = e
}

// list returns the retained events in chronological order, optionally
// only those with Seq >= since.
func (r *eventRing) list(since uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	start := uint64(0)
	if r.next > uint64(cap(r.buf)) {
		start = r.next - uint64(cap(r.buf))
	}
	if since > start {
		start = since
	}
	for seq := start; seq < r.next; seq++ {
		out = append(out, r.buf[int(seq)%cap(r.buf)])
	}
	return out
}
