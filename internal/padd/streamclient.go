package padd

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/padd/wire"
)

// StreamClient drives one persistent ingest stream: Send writes wire
// frames wrapped in sequence-numbered envelopes, ReadAck collects the
// daemon's binary acks. Sends are buffered; ReadAck flushes before
// blocking so a stop-and-wait caller cannot deadlock on its own buffer.
// The zero sequence number is never used, so callers can treat 0 as
// "unsent". Not safe for concurrent use; one goroutine owns a client.
type StreamClient struct {
	conn io.ReadWriteCloser
	bw   *bufio.Writer
	ar   *wire.AckReader
	seq  uint64
	env  []byte // reusable envelope scratch
}

// NewStreamClient wraps an established stream connection (the upgrade
// handshake, if any, must already be complete).
func NewStreamClient(rw io.ReadWriteCloser) *StreamClient {
	return &StreamClient{
		conn: rw,
		bw:   bufio.NewWriterSize(rw, 64<<10),
		ar:   wire.NewAckReader(rw),
	}
}

// newStreamClientBuffered is NewStreamClient for a connection whose
// read side already has a buffered reader (bytes may have been read
// ahead during the handshake).
func newStreamClientBuffered(rw io.ReadWriteCloser, br *bufio.Reader) *StreamClient {
	return &StreamClient{
		conn: rw,
		bw:   bufio.NewWriterSize(rw, 64<<10),
		ar:   wire.NewAckReader(br),
	}
}

// DialStream connects to a padd daemon's base URL (http://host:port)
// and upgrades POST /v1/stream into a persistent ingest stream.
func DialStream(base string) (*StreamClient, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("padd: stream dial: %w", err)
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("padd: stream dial: scheme %q not supported", u.Scheme)
	}
	host := u.Host
	if !strings.Contains(host, ":") {
		host += ":80"
	}
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, fmt.Errorf("padd: stream dial: %w", err)
	}
	req := "POST /v1/stream HTTP/1.1\r\nHost: " + u.Host +
		"\r\nUpgrade: " + StreamProtocol +
		"\r\nConnection: Upgrade\r\nContent-Length: 0\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		conn.Close()
		return nil, fmt.Errorf("padd: stream upgrade: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("padd: stream upgrade: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		resp.Body.Close()
		conn.Close()
		return nil, fmt.Errorf("padd: stream upgrade: HTTP %d: %s",
			resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return newStreamClientBuffered(conn, br), nil
}

// Send buffers one wire frame as the next data frame and returns its
// sequence number (the matching ack echoes it). The frame is not
// guaranteed on the wire until Flush or ReadAck.
func (c *StreamClient) Send(frame []byte) (uint64, error) {
	c.seq++
	c.env = wire.AppendStream(c.env[:0], c.seq, frame)
	if _, err := c.bw.Write(c.env); err != nil {
		return c.seq, err
	}
	return c.seq, nil
}

// Flush pushes buffered frames onto the wire.
func (c *StreamClient) Flush() error { return c.bw.Flush() }

// ReadAck flushes, then reads the next ack into a. Acks arrive strictly
// in send order. Reject IDs alias the client's read buffer and are
// valid until the next ReadAck.
func (c *StreamClient) ReadAck(a *wire.Ack) error {
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.ar.Next(a)
}

// Close hangs up. Unacked frames may or may not have been ingested; a
// reconnecting client must treat them as lost and resend (at-least-once
// delivery — acked frames are never lost, resent unacked frames may
// duplicate).
func (c *StreamClient) Close() error { return c.conn.Close() }
