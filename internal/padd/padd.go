// Package padd is the online PAD defense daemon: it hosts many
// independent PDU control sessions, each running the paper's defense
// (vDEB allocation, μDEB shaving, the Figure-9 three-level security
// policy) against streamed per-server power telemetry instead of a
// pre-built trace.
//
// Architecture:
//
//   - A Manager owns the sessions. Each Session is one PDU-scale
//     control loop: a sim.Stepper (the exact per-tick machine the
//     offline engine runs) driven by a single goroutine that drains a
//     bounded telemetry queue. The hot path reuses the engine's
//     allocation-free scratch machinery; cross-goroutine reads go
//     through a mutex-guarded snapshot refreshed once per tick.
//   - Telemetry arrives over HTTP (POST /v1/sessions/{id}/telemetry) as
//     batches of per-server utilization samples, one sample per tick.
//     The queue is bounded: when it is full the server answers 429
//     immediately rather than buffering unboundedly — backpressure is
//     the client's signal to slow down, and a control loop that falls
//     behind real time must drop input, not latency.
//   - Sessions in wall-clock mode tick on real time: when telemetry is
//     late the session coasts on the last known demand, so batteries,
//     breakers and the security policy keep advancing.
//   - Observability: GET /metrics exposes Prometheus-style per-session
//     gauges (SOC, security level, shed watts, breaker margin, queue
//     depth), tick- and detection-latency histograms, fleet occupancy
//     families and Go runtime stats; GET /v1/sessions/{id}/events
//     returns the ring-buffered log of level transitions,
//     shed/trip/coast/anomaly actions. Each session additionally
//     records its key signals into bounded ring time series with
//     tiered downsampling (GET /v1/sessions/{id}/series, zero
//     allocations per tick, opt out with DisableSeries), and GET
//     /v1/fleet serves O(shards) rollups — sessions per security level
//     and breaker-margin band, under-attack count, detection-latency
//     histograms — that cmd/padtop renders as a terminal dashboard.
//   - Replay: the bridge in replay.go pipes a generated trace through
//     the real ingest path and compares the resulting actions and
//     levels against the offline sim.Run — the guarantee that online
//     and offline agree (cmd/padd -replay, TestReplayMatchesOffline).
package padd

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("100ms", "1h30m") so session configs stay readable in curl examples.
type Duration struct{ time.Duration }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON accepts a Go duration string, or a bare number meaning
// seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dur, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("padd: bad duration %q: %w", x, err)
		}
		d.Duration = dur
	case float64:
		d.Duration = time.Duration(x * float64(time.Second))
	default:
		return fmt.Errorf("padd: duration must be a string like \"100ms\" or seconds, got %T", v)
	}
	return nil
}

// SessionConfig describes one PDU session. The zero value of every
// field selects the paper's seed configuration, so `{}` is a valid
// session.
type SessionConfig struct {
	// ID names the session; it must match [A-Za-z0-9_.-]{1,64}. Empty
	// lets the manager assign s1, s2, ...
	ID string `json:"id,omitempty"`
	// Scheme is the power-management scheme (Conv, PS, PSPC, uDEB,
	// vDEB, PAD). Empty selects PAD.
	Scheme string `json:"scheme,omitempty"`
	// Racks and ServersPerRack shape the cluster. 0 selects 22×10.
	Racks          int `json:"racks,omitempty"`
	ServersPerRack int `json:"servers_per_rack,omitempty"`
	// Tick is the control interval one telemetry sample advances. 0
	// selects 100ms.
	Tick Duration `json:"tick,omitempty"`
	// Horizon bounds the session's simulated lifetime. 0 selects 24h.
	Horizon Duration `json:"horizon,omitempty"`
	// Oversubscription is PPDU/(n·Pr); 0 selects 0.75.
	Oversubscription float64 `json:"oversubscription,omitempty"`
	// Overshoot is the tolerated overload fraction; 0 selects 0.08.
	Overshoot float64 `json:"overshoot,omitempty"`
	// MicroFraction sizes the μDEB banks (uDEB/PAD schemes) as a
	// fraction of the rack battery energy. 0 selects 0.01.
	MicroFraction float64 `json:"micro_fraction,omitempty"`
	// QueueDepth bounds the ingest queue in telemetry batches; a full
	// queue answers 429. 0 selects 64.
	QueueDepth int `json:"queue_depth,omitempty"`
	// EventLog is the event ring capacity. 0 selects 512.
	EventLog int `json:"event_log,omitempty"`
	// MeterInterval is the power-metering integration interval feeding
	// the CUSUM anomaly detector. 0 selects 5s; negative disables
	// metering.
	MeterInterval Duration `json:"meter_interval,omitempty"`
	// WallClock ticks the session on real time: when telemetry is late
	// the session coasts on the last known demand instead of stalling.
	WallClock bool `json:"wall_clock,omitempty"`
	// Paused creates the session without processing: telemetry queues
	// up to QueueDepth (then 429) until POST .../resume. Useful for
	// priming a queue deterministically.
	Paused bool `json:"paused,omitempty"`
	// DisableSeries turns off the per-session observability rings
	// behind GET /v1/sessions/{id}/series (SOC, level, shed watts,
	// breaker margin, queue depth at raw/10s/1m resolutions). Recording
	// is on by default and allocation-free on the publish path; the
	// gate exists for fleets dense enough that ~50KB of rings per
	// session matters more than per-session trajectories.
	DisableSeries bool `json:"disable_series,omitempty"`
	// Record keeps the engine's full time-series recording (replay and
	// debugging; costs memory proportional to Horizon/RecordStep).
	Record bool `json:"record,omitempty"`
	// RecordStep is the recording resolution; 0 selects the tick.
	RecordStep Duration `json:"record_step,omitempty"`
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Scheme == "" {
		c.Scheme = "PAD"
	}
	if c.Racks == 0 {
		c.Racks = 22
	}
	if c.ServersPerRack == 0 {
		c.ServersPerRack = 10
	}
	if c.Tick.Duration == 0 {
		c.Tick.Duration = 100 * time.Millisecond
	}
	if c.Horizon.Duration == 0 {
		c.Horizon.Duration = 24 * time.Hour
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.EventLog == 0 {
		c.EventLog = 512
	}
	if c.MeterInterval.Duration == 0 {
		c.MeterInterval.Duration = 5 * time.Second
	}
	if c.MicroFraction == 0 {
		c.MicroFraction = 0.01
	}
	return c
}

// Validate reports a configuration error, if any, beyond what
// sim.Config.Validate covers.
func (c SessionConfig) Validate() error {
	if c.ID != "" && !validID(c.ID) {
		return fmt.Errorf("padd: session id %q must match [A-Za-z0-9_.-]{1,64}", c.ID)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("padd: queue depth must be non-negative, got %d", c.QueueDepth)
	}
	if c.EventLog < 0 {
		return fmt.Errorf("padd: event log capacity must be non-negative, got %d", c.EventLog)
	}
	return nil
}

func validID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
		default:
			return false
		}
	}
	return true
}
