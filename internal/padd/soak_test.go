package padd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/padd"
	"repro/internal/padd/wire"
)

// soakClient wraps the test server with typed helpers.
type soakClient struct {
	t    *testing.T
	base string
}

func (c *soakClient) post(path string, v any) (int, []byte) {
	c.t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func (c *soakClient) get(path string) (int, []byte) {
	c.t.Helper()
	resp, err := http.Get(c.base + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func (c *soakClient) status(id string) padd.SessionStatus {
	c.t.Helper()
	code, body := c.get("/v1/sessions/" + id)
	if code != http.StatusOK {
		c.t.Fatalf("status %s: HTTP %d: %s", id, code, body)
	}
	var st padd.SessionStatus
	if err := json.Unmarshal(body, &st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

func batchOf(servers, samples int, u float64) padd.TelemetryRequest {
	var req padd.TelemetryRequest
	for i := 0; i < samples; i++ {
		s := make([]float64, servers)
		for j := range s {
			s[j] = u
		}
		req.Samples = append(req.Samples, padd.TelemetrySample{U: s})
	}
	return req
}

// TestSoakConcurrentSessions drives 32 sessions at once through the
// HTTP API under deliberately tiny ingest queues, then shuts the
// manager down and checks the lossless-ingest invariant on every
// session: each sample acknowledged with 202 became exactly one engine
// tick (no wall clock, so no coasts; generous horizon, so no discards).
func TestSoakConcurrentSessions(t *testing.T) {
	mgr := padd.NewManager()
	srv := httptest.NewServer(padd.NewServer(mgr))
	defer srv.Close()
	c := &soakClient{t: t, base: srv.URL}

	const (
		nSessions = 32
		racks     = 3
		spr       = 4
		servers   = racks * spr
		batches   = 25
		batchLen  = 8
		total     = batches * batchLen
	)
	schemesCycle := []string{"Conv", "PS", "PSPC", "uDEB", "vDEB", "PAD"}

	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("soak-%02d", i)
		cfg := padd.SessionConfig{
			ID:             ids[i],
			Scheme:         schemesCycle[i%len(schemesCycle)],
			Racks:          racks,
			ServersPerRack: spr,
			QueueDepth:     4, // tiny on purpose: force 429s under load
		}
		if code, body := c.post("/v1/sessions", cfg); code != http.StatusCreated {
			t.Fatalf("create %s: HTTP %d: %s", ids[i], code, body)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	retries := 0
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			u := 0.2 + 0.6*float64(i)/float64(nSessions)
			for b := 0; b < batches; b++ {
				req := batchOf(servers, batchLen, u)
				for {
					code, body := c.post("/v1/sessions/"+id+"/telemetry", req)
					if code == http.StatusAccepted {
						break
					}
					if code != http.StatusTooManyRequests {
						t.Errorf("%s: HTTP %d: %s", id, code, body)
						return
					}
					mu.Lock()
					retries++
					mu.Unlock()
					time.Sleep(time.Millisecond)
				}
			}
		}(i, id)
	}
	wg.Wait()
	t.Logf("soak: %d sessions × %d samples, %d backpressure retries", nSessions, total, retries)

	// Everything acknowledged must be processed: drain on shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	for _, id := range ids {
		st := c.status(id)
		if st.Accepted != total {
			t.Errorf("%s: accepted %d samples, want %d", id, st.Accepted, total)
		}
		if st.Ticks != st.Accepted+st.Coasts-st.Discarded {
			t.Errorf("%s: %d ticks from %d accepted samples (%d coasts, %d discarded)",
				id, st.Ticks, st.Accepted, st.Coasts, st.Discarded)
		}
		if st.Coasts != 0 {
			t.Errorf("%s: %d coasts without wall clock", id, st.Coasts)
		}
		if st.Discarded != 0 {
			t.Errorf("%s: %d samples discarded under a 24h horizon", id, st.Discarded)
		}
		if st.QueueDepth != 0 {
			t.Errorf("%s: %d batches left in queue after drain", id, st.QueueDepth)
		}
		if st.Level == 0 && st.Scheme == "PAD" {
			t.Errorf("%s: PAD reported no security level", id)
		}
	}

	// Draining flips health and refuses new work.
	if code, _ := c.get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown: HTTP %d, want 503", code)
	}
	if code, _ := c.post("/v1/sessions", padd.SessionConfig{}); code != http.StatusServiceUnavailable {
		t.Errorf("create after shutdown: HTTP %d, want 503", code)
	}
}

// TestSoakFleet10k is the fleet soak: 10,000 resident sessions on one
// manager, fed through ALL THREE ingest paths at once — a third of the
// fleet gets per-session JSON POSTs, a third batched binary frames
// carrying 64 sessions per POST, and a third persistent streams whose
// connections are forcibly dropped mid-stream with acks unread and then
// reconnected (resending the unacked frames, at-least-once) — then a
// bounded concurrent Shutdown drains every shard. The lossless-ingest
// invariant must hold on all 10k sessions; stream sessions may carry
// duplicate samples from the resends but never fewer than were acked,
// and nothing anywhere is discarded. Run under -race this is also the
// concurrency proof for the sharded actor model: ingest, stream
// readers/ack writers, worker slices and shutdown all overlap.
func TestSoakFleet10k(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak skipped in -short")
	}
	const (
		nSessions = 10_000
		racks     = 1
		spr       = 2
		servers   = racks * spr
		samples   = 4 // per session
		perFrame  = 64
	)
	mgr := padd.NewManagerWith(padd.Options{MaxSessions: nSessions})
	srv := httptest.NewServer(padd.NewServer(mgr))
	defer srv.Close()
	c := &soakClient{t: t, base: srv.URL}

	schemesCycle := []string{"Conv", "PS", "PSPC", "uDEB", "vDEB", "PAD"}
	ids := make([]string, nSessions)
	// Create directly through the manager — the soak exercises ingest
	// and drain at fleet count; 10k HTTP creates would just slow -race.
	for i := range ids {
		ids[i] = fmt.Sprintf("fleet-%05d", i)
		_, err := mgr.Create(padd.SessionConfig{
			ID:             ids[i],
			Scheme:         schemesCycle[i%len(schemesCycle)],
			Racks:          racks,
			ServersPerRack: spr,
			// A tenth of the fleet keeps series recording on (the soak's
			// proof that recording never perturbs the ingest invariants);
			// the rest disable it so 10k sessions' rings don't blow the
			// -race heap.
			DisableSeries: i%10 != 0,
		})
		if err != nil {
			t.Fatalf("create %s: %v", ids[i], err)
		}
	}

	u := make([]float64, servers)
	for j := range u {
		u[j] = 0.5
	}
	flat := make([]float64, samples*servers)
	for j := range flat {
		flat[j] = 0.5
	}

	// A third of the fleet over JSON, sharded across posting goroutines.
	var wg sync.WaitGroup
	jsonN := nSessions / 3
	binHi := 2 * nSessions / 3
	const posters = 8
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			req := batchOf(servers, samples, 0.5)
			for i := p; i < jsonN; i += posters {
				for {
					code, body := c.post("/v1/sessions/"+ids[i]+"/telemetry", req)
					if code == http.StatusAccepted {
						break
					}
					if code != http.StatusTooManyRequests {
						t.Errorf("%s: HTTP %d: %s", ids[i], code, body)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(p)
	}
	// The middle third over binary frames, 64 sessions per POST.
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var enc wire.Encoder
			for lo := jsonN + p*perFrame; lo < binHi; lo += posters * perFrame {
				hi := lo + perFrame
				if hi > binHi {
					hi = binHi
				}
				pending := ids[lo:hi]
				for len(pending) > 0 {
					enc.Reset()
					for _, id := range pending {
						if err := enc.AppendFlat(id, samples, servers, flat); err != nil {
							t.Error(err)
							return
						}
					}
					resp, err := http.Post(c.base+"/v1/ingest", "application/octet-stream",
						bytes.NewReader(enc.Frame()))
					if err != nil {
						t.Error(err)
						return
					}
					var ir padd.IngestResponse
					err = json.NewDecoder(resp.Body).Decode(&ir)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusTooManyRequests {
						t.Errorf("ingest frame [%d,%d): HTTP %d, rejects %v", lo, hi, resp.StatusCode, ir.Rejects)
						return
					}
					// Retry exactly the rejected records: a record is either
					// queued (accepted) or rejected with its id echoed back,
					// so resending rejects can't double-ingest.
					next := pending[:0:0]
					for _, rej := range ir.Rejects {
						next = append(next, rej.ID)
					}
					pending = next
					if len(pending) > 0 {
						time.Sleep(time.Millisecond)
					}
				}
			}
		}(p)
	}
	// streamFrames pushes one frame of samples for the given sessions
	// down a stream stop-and-wait, retrying exactly the queue-full
	// rejects, mirroring the POST posters' 429 loops.
	streamFrames := func(sc *padd.StreamClient, pending []string) error {
		var enc wire.Encoder
		var a wire.Ack
		for len(pending) > 0 {
			enc.Reset()
			for _, id := range pending {
				if err := enc.AppendFlat(id, samples, servers, flat); err != nil {
					return err
				}
			}
			if _, err := sc.Send(enc.Frame()); err != nil {
				return err
			}
			if err := sc.ReadAck(&a); err != nil {
				return err
			}
			switch a.Status {
			case wire.AckOK:
				return nil
			case wire.AckPartial, wire.AckBackpressure:
				next := pending[:0:0]
				for _, rej := range a.Rejects {
					if rej.Reason != wire.RejectQueueFull {
						return fmt.Errorf("stream reject %s: reason %d", rej.ID, rej.Reason)
					}
					next = append(next, string(rej.ID))
				}
				pending = next
				if len(pending) > 0 {
					time.Sleep(time.Millisecond)
				}
			default:
				return fmt.Errorf("stream ack %s", wire.AckStatusName(a.Status))
			}
		}
		return nil
	}

	// The last third over persistent streams with forced mid-stream
	// disconnects: even chunks are acked normally; odd chunks are sent
	// with acks deliberately unread, then the connection is cut and a
	// reconnect resends them. Resent frames may duplicate (the server
	// may have ingested them before the cut) — the assertions below
	// allow that — but nothing acked may be lost.
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sc, err := padd.DialStream(c.base)
			if err != nil {
				t.Error(err)
				return
			}
			var enc wire.Encoder
			var unacked [][2]int
			ci := 0
			for lo := binHi + p*perFrame; lo < nSessions; lo += posters * perFrame {
				hi := lo + perFrame
				if hi > nSessions {
					hi = nSessions
				}
				if ci%2 == 0 {
					if err := streamFrames(sc, ids[lo:hi]); err != nil {
						t.Error(err)
						sc.Close()
						return
					}
				} else {
					enc.Reset()
					for _, id := range ids[lo:hi] {
						if err := enc.AppendFlat(id, samples, servers, flat); err != nil {
							t.Error(err)
							sc.Close()
							return
						}
					}
					if _, err := sc.Send(enc.Frame()); err != nil {
						t.Error(err)
						sc.Close()
						return
					}
					unacked = append(unacked, [2]int{lo, hi})
				}
				ci++
			}
			sc.Flush() //nolint:errcheck // the cut below is the point
			sc.Close() // forced disconnect: unacked frames in flight
			sc2, err := padd.DialStream(c.base)
			if err != nil {
				t.Error(err)
				return
			}
			defer sc2.Close()
			for _, ch := range unacked {
				if err := streamFrames(sc2, ids[ch[0]:ch[1]]); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	streamIDs := make(map[string]bool, nSessions-binHi)
	for _, id := range ids[binHi:] {
		streamIDs[id] = true
	}
	for _, s := range mgr.List() {
		st := s.Status()
		if streamIDs[st.ID] {
			// At-least-once across the forced disconnect: every acked
			// sample landed, resends may have duplicated one frame.
			if st.Accepted < samples || st.Accepted > 2*samples {
				t.Errorf("%s: accepted %d samples across reconnect, want %d..%d",
					st.ID, st.Accepted, samples, 2*samples)
			}
		} else if st.Accepted != samples {
			t.Errorf("%s: accepted %d samples, want %d", st.ID, st.Accepted, samples)
		}
		// The lossless-drain invariant must hold identically for the
		// recording tenth and the series-disabled rest: observability
		// rides publish and may never change what counts as a tick.
		if st.Ticks != st.Accepted+st.Coasts-st.Discarded {
			t.Errorf("%s: %d ticks from %d accepted (%d coasts, %d discarded)",
				st.ID, st.Ticks, st.Accepted, st.Coasts, st.Discarded)
		}
		if st.Discarded != 0 {
			t.Errorf("%s: %d samples discarded", st.ID, st.Discarded)
		}
		if st.QueueDepth != 0 {
			t.Errorf("%s: %d batches left after drain", st.ID, st.QueueDepth)
		}
	}

	// The fleet rollup must account for every resident session exactly
	// once in each occupancy distribution, and the per-shard sample
	// counters must sum to at least one frame's worth per session
	// (stream resends may add more).
	fs := mgr.Fleet()
	if fs.Sessions != nSessions {
		t.Errorf("fleet sessions = %d, want %d", fs.Sessions, nSessions)
	}
	var levels, margins, shardSamples, shardSessions int64
	for _, n := range fs.LevelSessions {
		levels += n
	}
	for _, n := range fs.MarginSessions {
		margins += n
	}
	for _, sh := range fs.Shards {
		shardSamples += sh.AcceptedSamples
		shardSessions += int64(sh.Sessions)
	}
	if levels != nSessions || margins != nSessions || shardSessions != nSessions {
		t.Errorf("rollup occupancy: levels=%d margins=%d shardSessions=%d, want %d each",
			levels, margins, shardSessions, nSessions)
	}
	if shardSamples < nSessions*samples {
		t.Errorf("shard samples = %d, want ≥ %d", shardSamples, nSessions*samples)
	}

	// The scrape must carry the fleet families with both formats counted.
	code, body := c.get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"padd_shard_sessions{shard=\"0\"}",
		"padd_ingest_frames_total{format=\"json\"}",
		"padd_ingest_frames_total{format=\"binary\"}",
		"padd_ingest_batch_size_count",
		"padd_stream_connections",
		"padd_stream_frames_total{result=\"ok\"}",
		"padd_fleet_level_sessions{level=\"0\"}",
		"padd_fleet_sessions_under_attack",
		"padd_fleet_margin_watts{le=\"+Inf\"}",
		"padd_shard_ingest_samples_total{shard=\"0\"}",
		"padd_go_goroutines",
		"padd_go_heap_bytes",
		"padd_go_gc_pauses_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestMaxSessions pins the -max-sessions contract: creates past the cap
// get 503 with Retry-After, and deleting a session frees its slot.
func TestMaxSessions(t *testing.T) {
	mgr := padd.NewManagerWith(padd.Options{Shards: 2, MaxSessions: 2})
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(padd.NewServer(mgr))
	defer srv.Close()
	c := &soakClient{t: t, base: srv.URL}

	for i := 0; i < 2; i++ {
		cfg := padd.SessionConfig{ID: fmt.Sprintf("cap-%d", i), Scheme: "PAD", Racks: 1, ServersPerRack: 2}
		if code, body := c.post("/v1/sessions", cfg); code != http.StatusCreated {
			t.Fatalf("create %d: HTTP %d: %s", i, code, body)
		}
	}
	resp, err := http.Post(c.base+"/v1/sessions", "application/json",
		strings.NewReader(`{"id":"cap-2","scheme":"PAD","racks":1,"servers_per_rack":2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create past cap: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 past cap without Retry-After header")
	}

	delReq, _ := http.NewRequest(http.MethodDelete, c.base+"/v1/sessions/cap-0", nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, delResp.Body)
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d", delResp.StatusCode)
	}
	cfg := padd.SessionConfig{ID: "cap-2", Scheme: "PAD", Racks: 1, ServersPerRack: 2}
	if code, body := c.post("/v1/sessions", cfg); code != http.StatusCreated {
		t.Fatalf("create after delete: HTTP %d: %s", code, body)
	}
}

// TestBinaryIngestErrors pins the batched endpoint's error envelope:
// malformed frames are 400s, unknown sessions reject per record while
// the rest of the frame lands, and a frame rejected entirely for
// backpressure is a 429.
func TestBinaryIngestErrors(t *testing.T) {
	mgr := padd.NewManager()
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(padd.NewServer(mgr))
	defer srv.Close()
	c := &soakClient{t: t, base: srv.URL}

	cfg := padd.SessionConfig{ID: "bin", Scheme: "PAD", Racks: 1, ServersPerRack: 2, QueueDepth: 1, Paused: true}
	if code, body := c.post("/v1/sessions", cfg); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", code, body)
	}

	postFrame := func(frame []byte) (int, padd.IngestResponse) {
		t.Helper()
		resp, err := http.Post(c.base+"/v1/ingest", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ir padd.IngestResponse
		json.NewDecoder(resp.Body).Decode(&ir)
		return resp.StatusCode, ir
	}

	if code, _ := postFrame([]byte("not a frame")); code != http.StatusBadRequest {
		t.Errorf("garbage frame: HTTP %d, want 400", code)
	}

	var enc wire.Encoder
	enc.AppendFlat("bin", 1, 2, []float64{0.5, 0.5})
	enc.AppendFlat("ghost", 1, 2, []float64{0.5, 0.5})
	code, ir := postFrame(enc.Frame())
	if code != http.StatusAccepted || ir.Accepted != 1 || len(ir.Rejects) != 1 || ir.Rejects[0].ID != "ghost" {
		t.Errorf("mixed frame: HTTP %d, resp %+v", code, ir)
	}

	// The queue (depth 1, paused) is now full: an all-backpressure frame
	// must map to 429.
	enc.Reset()
	enc.AppendFlat("bin", 1, 2, []float64{0.5, 0.5})
	if code, ir = postFrame(enc.Frame()); code != http.StatusTooManyRequests {
		t.Errorf("full-queue frame: HTTP %d (resp %+v), want 429", code, ir)
	}

	// A record whose shape doesn't match the session is a per-record
	// reject with a 400 envelope when nothing else lands.
	enc.Reset()
	enc.AppendFlat("bin", 1, 5, []float64{0.5, 0.5, 0.5, 0.5, 0.5})
	if code, ir = postFrame(enc.Frame()); code != http.StatusBadRequest || len(ir.Rejects) != 1 {
		t.Errorf("wrong-shape frame: HTTP %d, resp %+v, want 400 with one reject", code, ir)
	}
}

// TestBackpressure429 pins the backpressure contract deterministically:
// a paused session's queue fills to exactly QueueDepth batches, the
// next POST gets 429 with Retry-After, and resuming drains the queue
// without losing a sample.
func TestBackpressure429(t *testing.T) {
	mgr := padd.NewManager()
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(padd.NewServer(mgr))
	defer srv.Close()
	c := &soakClient{t: t, base: srv.URL}

	cfg := padd.SessionConfig{
		ID: "bp", Scheme: "PAD", Racks: 2, ServersPerRack: 3,
		QueueDepth: 2, Paused: true,
	}
	if code, body := c.post("/v1/sessions", cfg); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", code, body)
	}

	req := batchOf(6, 5, 0.5)
	for i := 0; i < 2; i++ {
		if code, body := c.post("/v1/sessions/bp/telemetry", req); code != http.StatusAccepted {
			t.Fatalf("fill %d: HTTP %d: %s", i, code, body)
		}
	}
	resp, err := http.Post(c.base+"/v1/sessions/bp/telemetry", "application/json",
		strings.NewReader(`{"samples":[{"u":[0.5,0.5,0.5,0.5,0.5,0.5]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if st := c.status("bp"); st.Rejected != 1 || st.Ticks != 0 {
		t.Errorf("paused session: rejected=%d ticks=%d, want 1 and 0", st.Rejected, st.Ticks)
	}

	if code, body := c.post("/v1/sessions/bp/resume", nil); code != http.StatusOK {
		t.Fatalf("resume: HTTP %d: %s", code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := c.status("bp"); st.Ticks == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue not drained after resume: %+v", c.status("bp"))
		}
		time.Sleep(time.Millisecond)
	}

	// Deleting returns the run summary and forgets the session.
	if code, body := c.get("/v1/sessions/bp/events"); code != http.StatusOK ||
		!bytes.Contains(body, []byte(`"created"`)) {
		t.Errorf("events: HTTP %d: %s", code, body)
	}
	delReq, _ := http.NewRequest(http.MethodDelete, c.base+"/v1/sessions/bp", nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, delResp.Body)
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d", delResp.StatusCode)
	}
	if code, _ := c.get("/v1/sessions/bp"); code != http.StatusNotFound {
		t.Errorf("status after delete: HTTP %d, want 404", code)
	}
}

// TestMetricsExposition checks the Prometheus text format carries every
// promised per-session signal.
func TestMetricsExposition(t *testing.T) {
	mgr := padd.NewManager()
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(padd.NewServer(mgr))
	defer srv.Close()
	c := &soakClient{t: t, base: srv.URL}

	cfg := padd.SessionConfig{ID: "m1", Scheme: "PAD", Racks: 2, ServersPerRack: 3}
	if code, body := c.post("/v1/sessions", cfg); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", code, body)
	}
	if code, body := c.post("/v1/sessions/m1/telemetry", batchOf(6, 20, 0.6)); code != http.StatusAccepted {
		t.Fatalf("telemetry: HTTP %d: %s", code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.status("m1").Ticks < 20 {
		if time.Now().After(deadline) {
			t.Fatal("session did not process the batch")
		}
		time.Sleep(time.Millisecond)
	}

	code, body := c.get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`padd_sessions 1`,
		`padd_session_soc{session="m1"}`,
		`padd_session_min_soc{session="m1"}`,
		`padd_session_micro_soc{session="m1"}`,
		`padd_session_level{session="m1"} 1`,
		`padd_session_shed_servers{session="m1"}`,
		`padd_session_shed_watts{session="m1"}`,
		`padd_session_grid_watts{session="m1"}`,
		`padd_session_breaker_margin_watts{session="m1"}`,
		`padd_session_queue_depth{session="m1"} 0`,
		`padd_session_ticks_total{session="m1"} 20`,
		`padd_session_accepted_samples_total{session="m1"} 20`,
		`padd_tick_latency_seconds_bucket{session="m1",le="+Inf"} 20`,
		`padd_tick_latency_seconds_count{session="m1"} 20`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
