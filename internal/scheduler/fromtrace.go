package scheduler

import (
	"time"

	"repro/internal/trace"
)

// FromTrace converts a workload trace into scheduler jobs. The trace row
// format carries no job grouping, so each task becomes a single-task job
// (the paper's Google trace groups tasks into jobs; when such grouping is
// available, construct Jobs directly instead).
func FromTrace(tr *trace.Trace) []Job {
	jobs := make([]Job, 0, len(tr.Tasks))
	for i, t := range tr.Tasks {
		jobs = append(jobs, Job{
			ID:      i,
			Arrival: t.Start,
			Tasks:   []TaskReq{{Duration: t.End - t.Start, CPURate: t.CPURate}},
		})
	}
	return jobs
}

// OutageImpairments builds impairments marking every server of a rack
// dark over a window — the service-level footprint of a rack feed trip.
func OutageImpairments(rack, serversPerRack int, from, to time.Duration) []Impairment {
	out := make([]Impairment, 0, serversPerRack)
	for s := 0; s < serversPerRack; s++ {
		out = append(out, Impairment{
			Server: rack*serversPerRack + s,
			From:   from,
			To:     to,
		})
	}
	return out
}

// CappingImpairments builds impairments slowing every server of a rack to
// the given factor over a window — the footprint of sustained DVFS
// capping.
func CappingImpairments(rack, serversPerRack int, from, to time.Duration, factor float64) []Impairment {
	out := make([]Impairment, 0, serversPerRack)
	for s := 0; s < serversPerRack; s++ {
		out = append(out, Impairment{
			Server:      rack*serversPerRack + s,
			From:        from,
			To:          to,
			SpeedFactor: factor,
		})
	}
	return out
}
