package scheduler

import (
	"math"
	"testing"
	"time"
)

func job(id int, arrival time.Duration, tasks ...TaskReq) Job {
	return Job{ID: id, Arrival: arrival, Tasks: tasks}
}

func TestRunValidation(t *testing.T) {
	if _, _, err := Run(Config{Servers: 0, Horizon: time.Hour}, nil, nil); err == nil {
		t.Error("zero servers should fail")
	}
	if _, _, err := Run(Config{Servers: 1}, nil, nil); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, _, err := Run(Config{Servers: 1, Horizon: time.Hour},
		[]Job{{ID: 1}}, nil); err == nil {
		t.Error("task-less job should fail")
	}
	if _, _, err := Run(Config{Servers: 1, Horizon: time.Hour},
		[]Job{job(1, 0, TaskReq{Duration: time.Minute, CPURate: 2})}, nil); err == nil {
		t.Error("over-unity CPU rate should fail")
	}
	if _, _, err := Run(Config{Servers: 1, Horizon: time.Hour}, nil,
		[]Impairment{{Server: 5, From: 0, To: time.Minute}}); err == nil {
		t.Error("impairment on unknown server should fail")
	}
}

func TestSimpleCompletion(t *testing.T) {
	jobs := []Job{job(1, time.Minute, TaskReq{Duration: 10 * time.Minute, CPURate: 0.5})}
	recs, m, err := Run(Config{Servers: 2, Horizon: time.Hour}, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 1 || m.Dropped != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if !recs[0].Completed {
		t.Fatal("job not completed")
	}
	want := 11 * time.Minute
	if d := recs[0].Finish - want; d > time.Second || d < -time.Second {
		t.Fatalf("finish = %v, want ~%v", recs[0].Finish, want)
	}
	if sd := recs[0].Slowdown(); math.Abs(sd-1) > 0.01 {
		t.Fatalf("slowdown = %v, want ~1", sd)
	}
}

func TestMultiTaskJobCompletesWithLastTask(t *testing.T) {
	jobs := []Job{job(1, 0,
		TaskReq{Duration: 5 * time.Minute, CPURate: 0.4},
		TaskReq{Duration: 20 * time.Minute, CPURate: 0.4},
	)}
	recs, _, err := Run(Config{Servers: 2, Horizon: time.Hour}, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[0].Completed {
		t.Fatal("job not completed")
	}
	if d := recs[0].Finish - 20*time.Minute; d > time.Second || d < -time.Second {
		t.Fatalf("finish = %v, want ~20m", recs[0].Finish)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	// One server, two jobs at 0.8 CPU each: the second queues behind the
	// first.
	jobs := []Job{
		job(1, 0, TaskReq{Duration: 10 * time.Minute, CPURate: 0.8}),
		job(2, 0, TaskReq{Duration: 10 * time.Minute, CPURate: 0.8}),
	}
	recs, m, err := Run(Config{Servers: 1, Horizon: time.Hour}, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 2 {
		t.Fatalf("completed = %d", m.Completed)
	}
	var first, second JobRecord
	for _, r := range recs {
		if r.Job.ID == 1 {
			first = r
		} else {
			second = r
		}
	}
	if d := first.Finish - 10*time.Minute; d > time.Second || d < -time.Second {
		t.Fatalf("first finish = %v", first.Finish)
	}
	if d := second.Finish - 20*time.Minute; d > time.Second || d < -time.Second {
		t.Fatalf("queued job finish = %v, want ~20m", second.Finish)
	}
	if second.Slowdown() < 1.9 {
		t.Fatalf("queued slowdown = %v, want ~2", second.Slowdown())
	}
}

func TestLeastLoadedPlacement(t *testing.T) {
	// Two servers; three 0.5-rate tasks spread 2+1, never 3 on one server.
	jobs := []Job{
		job(1, 0, TaskReq{Duration: time.Hour, CPURate: 0.5}),
		job(2, 0, TaskReq{Duration: time.Hour, CPURate: 0.5}),
		job(3, 0, TaskReq{Duration: time.Hour, CPURate: 0.5}),
	}
	_, m, err := Run(Config{Servers: 2, Horizon: 2 * time.Hour}, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 3 {
		t.Fatalf("completed = %d", m.Completed)
	}
}

func TestSlowdownUnderCapping(t *testing.T) {
	// The server runs at 0.8 speed for the whole job: 25% longer.
	jobs := []Job{job(1, 0, TaskReq{Duration: 8 * time.Minute, CPURate: 0.5})}
	imp := []Impairment{{Server: 0, From: 0, To: time.Hour, SpeedFactor: 0.8}}
	recs, _, err := Run(Config{Servers: 1, Horizon: time.Hour}, jobs, imp)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * time.Minute
	if d := recs[0].Finish - want; d > 2*time.Second || d < -2*time.Second {
		t.Fatalf("capped finish = %v, want ~%v", recs[0].Finish, want)
	}
}

func TestOutageRestartsWork(t *testing.T) {
	// The job starts at 0, the server goes dark from 5m to 10m: the task
	// restarts and completes at 10m + 8m.
	jobs := []Job{job(1, 0, TaskReq{Duration: 8 * time.Minute, CPURate: 0.5})}
	imp := []Impairment{{Server: 0, From: 5 * time.Minute, To: 10 * time.Minute, SpeedFactor: 0}}
	recs, m, err := Run(Config{Servers: 1, Horizon: time.Hour}, jobs, imp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", m.Restarts)
	}
	want := 18 * time.Minute
	if d := recs[0].Finish - want; d > 2*time.Second || d < -2*time.Second {
		t.Fatalf("post-outage finish = %v, want ~%v", recs[0].Finish, want)
	}
}

func TestOutageFailsOverToLiveServer(t *testing.T) {
	// Two servers; server 0 dies at 2m. The restarted task lands on
	// server 1 and completes without waiting for the outage to end.
	jobs := []Job{job(1, 0, TaskReq{Duration: 8 * time.Minute, CPURate: 0.5})}
	imp := []Impairment{{Server: 0, From: 2 * time.Minute, To: time.Hour, SpeedFactor: 0}}
	recs, _, err := Run(Config{Servers: 2, Horizon: 2 * time.Hour}, jobs, imp)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[0].Completed {
		t.Fatal("job should fail over and complete")
	}
	// Either it started on server 1 (finish 8m) or restarted there
	// (finish ≤ 10m); both beat waiting out the outage.
	if recs[0].Finish > 11*time.Minute {
		t.Fatalf("failover took too long: %v", recs[0].Finish)
	}
}

func TestUnfinishedWorkDropsAtHorizon(t *testing.T) {
	jobs := []Job{job(1, 0, TaskReq{Duration: 2 * time.Hour, CPURate: 0.5})}
	recs, m, err := Run(Config{Servers: 1, Horizon: time.Hour}, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 1 || recs[0].Completed {
		t.Fatalf("long job should drop at horizon: %+v", m)
	}
}

func TestMetricsPercentile(t *testing.T) {
	// 10 quick jobs and 1 badly queued one: p95 exceeds the mean.
	var jobs []Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, job(i, time.Duration(i)*20*time.Minute,
			TaskReq{Duration: 10 * time.Minute, CPURate: 0.9}))
	}
	// This one arrives alongside job 0 and must queue behind it.
	jobs = append(jobs, job(99, time.Minute, TaskReq{Duration: 10 * time.Minute, CPURate: 0.9}))
	_, m, err := Run(Config{Servers: 1, Horizon: 6 * time.Hour}, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 11 {
		t.Fatalf("completed = %d", m.Completed)
	}
	if m.P95Slowdown < m.MeanSlowdown {
		t.Fatalf("p95 (%v) below mean (%v)", m.P95Slowdown, m.MeanSlowdown)
	}
}

func TestDeterministicRuns(t *testing.T) {
	jobs := []Job{
		job(1, 0, TaskReq{Duration: 5 * time.Minute, CPURate: 0.5}),
		job(2, time.Minute, TaskReq{Duration: 7 * time.Minute, CPURate: 0.7}),
	}
	imp := []Impairment{{Server: 0, From: 3 * time.Minute, To: 6 * time.Minute, SpeedFactor: 0.5}}
	_, m1, err := Run(Config{Servers: 2, Horizon: time.Hour}, jobs, imp)
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := Run(Config{Servers: 2, Horizon: time.Hour}, jobs, imp)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatalf("runs differ: %+v vs %+v", m1, m2)
	}
}
