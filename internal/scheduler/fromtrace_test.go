package scheduler

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func TestFromTrace(t *testing.T) {
	tr := &trace.Trace{Machines: 2, Tasks: []trace.Task{
		{Start: time.Minute, End: 11 * time.Minute, Machine: 0, CPURate: 0.4},
		{Start: 2 * time.Minute, End: 4 * time.Minute, Machine: 1, CPURate: 0.2},
	}}
	jobs := FromTrace(tr)
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if jobs[0].Arrival != time.Minute || jobs[0].Tasks[0].Duration != 10*time.Minute {
		t.Fatalf("job 0 wrong: %+v", jobs[0])
	}
	if jobs[1].Tasks[0].CPURate != 0.2 {
		t.Fatalf("job 1 wrong: %+v", jobs[1])
	}
	// The converted jobs run end to end.
	_, m, err := Run(Config{Servers: 2, Horizon: time.Hour}, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 2 {
		t.Fatalf("completed = %d", m.Completed)
	}
}

func TestOutageImpairments(t *testing.T) {
	imp := OutageImpairments(2, 10, time.Minute, 3*time.Minute)
	if len(imp) != 10 {
		t.Fatalf("impairments = %d", len(imp))
	}
	if imp[0].Server != 20 || imp[9].Server != 29 {
		t.Fatalf("server range wrong: %d..%d", imp[0].Server, imp[9].Server)
	}
	for _, im := range imp {
		if im.SpeedFactor != 0 {
			t.Fatal("outage should be full-dark")
		}
	}
}

func TestCappingImpairments(t *testing.T) {
	imp := CappingImpairments(0, 5, 0, time.Minute, 0.8)
	if len(imp) != 5 {
		t.Fatalf("impairments = %d", len(imp))
	}
	for _, im := range imp {
		if im.SpeedFactor != 0.8 {
			t.Fatal("factor wrong")
		}
	}
}

func TestJobLevelImpactOfAnOutage(t *testing.T) {
	// The service-level story behind Figure 16: the same workload run
	// with and without a rack outage window — the outage costs restarts
	// and slowdown.
	tr, err := trace.Generate(trace.SynthConfig{
		Machines: 20, Horizon: 4 * time.Hour, Seed: 9,
		MeanTaskDuration: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := FromTrace(tr)
	cfg := Config{Servers: 20, Horizon: 5 * time.Hour}

	_, clean, err := Run(cfg, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	imp := OutageImpairments(0, 10, time.Hour, 90*time.Minute)
	_, hurt, err := Run(cfg, jobs, imp)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Restarts != 0 {
		t.Fatalf("clean run restarted %d tasks", clean.Restarts)
	}
	if hurt.Restarts == 0 {
		t.Fatal("outage should restart in-flight work")
	}
	if hurt.MeanSlowdown < clean.MeanSlowdown {
		t.Fatalf("outage should not improve slowdown: %v vs %v",
			hurt.MeanSlowdown, clean.MeanSlowdown)
	}
}
