// Package scheduler is the job-level service model of the paper's
// simulation framework (Figure 11-B: Google trace → job scheduler →
// server cluster): work arrives as jobs of one or more tasks, tasks are
// dispatched onto servers with finite CPU capacity, and the power layer's
// misbehavior — outages that kill in-flight work, DVFS capping that slows
// it — shows up as job slowdown and loss. It turns the power-level
// results of the simulator into the service-level numbers an operator
// actually answers for.
package scheduler

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
)

// TaskReq is one task of a job: a nominal run time at a CPU demand.
type TaskReq struct {
	// Duration is the task's run time on an unimpaired server.
	Duration time.Duration
	// CPURate is the CPU share the task occupies while running, in (0, 1].
	CPURate float64
}

// Job is a unit of arriving work.
type Job struct {
	// ID identifies the job in records.
	ID int
	// Arrival is the job's arrival offset.
	Arrival time.Duration
	// Tasks are the job's tasks; the job completes when all complete.
	Tasks []TaskReq
}

// Impairment marks a window during which a server misbehaves.
type Impairment struct {
	// Server is the impaired server.
	Server int
	// From/To bound the window.
	From, To time.Duration
	// SpeedFactor scales task progress during the window: 0 is an outage
	// (the server is dark and running tasks are killed and re-queued),
	// values in (0, 1) model DVFS capping.
	SpeedFactor float64
}

// Config parameterizes a run.
type Config struct {
	// Servers is the cluster size.
	Servers int
	// Horizon bounds the simulation; unfinished work counts as dropped.
	Horizon time.Duration
}

// JobRecord is the outcome of one job.
type JobRecord struct {
	Job       Job
	Completed bool
	// Finish is the completion offset (valid when Completed).
	Finish time.Duration
	// Restarts counts task restarts caused by outages.
	Restarts int
}

// Slowdown is the job's (finish − arrival) / ideal time, where ideal is
// the longest task's nominal duration. 1.0 is a perfect run.
func (r JobRecord) Slowdown() float64 {
	if !r.Completed {
		return 0
	}
	var ideal time.Duration
	for _, t := range r.Job.Tasks {
		if t.Duration > ideal {
			ideal = t.Duration
		}
	}
	if ideal == 0 {
		return 1
	}
	return float64(r.Finish-r.Job.Arrival) / float64(ideal)
}

// Metrics summarize a run.
type Metrics struct {
	Completed, Dropped int
	// MeanSlowdown and P95Slowdown are over completed jobs.
	MeanSlowdown, P95Slowdown float64
	// Restarts counts outage-induced task restarts.
	Restarts int
}

// task is the runtime state of one task.
type task struct {
	job       *jobState
	req       TaskReq
	remaining time.Duration // nominal work left
	server    int           // -1 when queued
}

// jobState tracks a job's outstanding tasks.
type jobState struct {
	job    Job
	record JobRecord
	open   int
}

// eventKind orders simultaneous events deterministically.
type eventKind int

const (
	evImpairment eventKind = iota // boundaries first: rates change
	evArrival
)

type event struct {
	at   time.Duration
	kind eventKind
	seq  int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run simulates jobs over the cluster with the given impairments and
// returns per-job records plus summary metrics. Scheduling is
// least-loaded-first with FIFO queueing; an outage kills the affected
// running tasks, which restart from scratch once a server has room.
func Run(cfg Config, jobs []Job, impairments []Impairment) ([]JobRecord, Metrics, error) {
	if cfg.Servers <= 0 {
		return nil, Metrics{}, fmt.Errorf("scheduler: need servers, got %d", cfg.Servers)
	}
	if cfg.Horizon <= 0 {
		return nil, Metrics{}, fmt.Errorf("scheduler: need a positive horizon")
	}
	for i, j := range jobs {
		if len(j.Tasks) == 0 {
			return nil, Metrics{}, fmt.Errorf("scheduler: job %d has no tasks", i)
		}
		for _, t := range j.Tasks {
			if t.Duration <= 0 || t.CPURate <= 0 || t.CPURate > 1 {
				return nil, Metrics{}, fmt.Errorf("scheduler: job %d has invalid task %+v", i, t)
			}
		}
	}
	for _, im := range impairments {
		if im.Server < 0 || im.Server >= cfg.Servers || im.To <= im.From ||
			im.SpeedFactor < 0 || im.SpeedFactor > 1 {
			return nil, Metrics{}, fmt.Errorf("scheduler: invalid impairment %+v", im)
		}
	}

	s := &simState{
		cfg:         cfg,
		used:        make([]float64, cfg.Servers),
		speed:       make([]float64, cfg.Servers),
		running:     make(map[int]map[*task]bool, cfg.Servers),
		impairments: impairments,
	}
	for i := range s.speed {
		s.speed[i] = 1
		s.running[i] = map[*task]bool{}
	}

	// Sort jobs by arrival; build states.
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(a, b int) bool {
		return ordered[a].Arrival < ordered[b].Arrival
	})
	states := make([]*jobState, len(ordered))
	for i, j := range ordered {
		states[i] = &jobState{job: j, record: JobRecord{Job: j}, open: len(j.Tasks)}
	}

	// Event queue: arrivals and impairment boundaries are known up front;
	// completions are discovered as time advances.
	var h eventHeap
	seq := 0
	push := func(at time.Duration, kind eventKind) {
		if at <= cfg.Horizon {
			heap.Push(&h, event{at: at, kind: kind, seq: seq})
			seq++
		}
	}
	for _, js := range states {
		push(js.job.Arrival, evArrival)
	}
	for _, im := range impairments {
		push(im.From, evImpairment)
		push(im.To, evImpairment)
	}
	nextArrival := 0

	now := time.Duration(0)
	for {
		// The next completion may precede the next queued event.
		nc, ncOK := s.nextCompletion(now)
		var next time.Duration
		var fromHeap bool
		if len(h) > 0 {
			next = h[0].at
			fromHeap = true
		}
		if ncOK && (!fromHeap || nc < next) {
			next = nc
			fromHeap = false
		} else if !fromHeap {
			break
		}
		if next > cfg.Horizon {
			break
		}
		s.advance(now, next)
		now = next

		if fromHeap {
			ev := heap.Pop(&h).(event)
			switch ev.kind {
			case evArrival:
				for nextArrival < len(states) && states[nextArrival].job.Arrival <= now {
					js := states[nextArrival]
					for _, req := range js.job.Tasks {
						s.enqueue(&task{job: js, req: req, remaining: req.Duration, server: -1})
					}
					nextArrival++
				}
			case evImpairment:
				s.applyImpairments(now)
			}
		}
		s.reapCompletions(now)
		s.drainQueue()
	}
	s.advance(now, cfg.Horizon)
	s.reapCompletions(cfg.Horizon)

	records := make([]JobRecord, len(states))
	var m Metrics
	var slowdowns []float64
	for i, js := range states {
		records[i] = js.record
		if js.record.Completed {
			m.Completed++
			slowdowns = append(slowdowns, js.record.Slowdown())
		} else {
			m.Dropped++
		}
		m.Restarts += js.record.Restarts
	}
	if len(slowdowns) > 0 {
		m.MeanSlowdown = stats.Mean(slowdowns)
		m.P95Slowdown = stats.Percentile(slowdowns, 95)
	}
	return records, m, nil
}
