package scheduler

import "time"

// simState holds the cluster's runtime state during a Run.
type simState struct {
	cfg         Config
	used        []float64 // per-server CPU in use
	speed       []float64 // per-server speed factor (0 = dark)
	running     map[int]map[*task]bool
	queue       []*task
	impairments []Impairment
}

// enqueue appends a task to the FIFO queue.
func (s *simState) enqueue(t *task) {
	t.server = -1
	s.queue = append(s.queue, t)
}

// drainQueue places queued tasks least-loaded-first while they fit.
func (s *simState) drainQueue() {
	remaining := s.queue[:0]
	for _, t := range s.queue {
		srv := s.pick(t.req.CPURate)
		if srv < 0 {
			remaining = append(remaining, t)
			continue
		}
		t.server = srv
		s.used[srv] += t.req.CPURate
		s.running[srv][t] = true
	}
	s.queue = remaining
}

// pick returns the least-loaded live server with room for rate, or -1.
func (s *simState) pick(rate float64) int {
	best, bestUsed := -1, 2.0
	for srv := range s.used {
		if s.speed[srv] <= 0 {
			continue // dark server accepts nothing
		}
		if s.used[srv]+rate <= 1+1e-9 && s.used[srv] < bestUsed {
			best, bestUsed = srv, s.used[srv]
		}
	}
	return best
}

// advance progresses running tasks from `from` to `to` at current speeds.
func (s *simState) advance(from, to time.Duration) {
	if to <= from {
		return
	}
	dt := to - from
	for srv, tasks := range s.running {
		sp := s.speed[srv]
		if sp <= 0 {
			continue
		}
		work := time.Duration(float64(dt) * sp)
		for t := range tasks {
			t.remaining -= work
		}
	}
}

// nextCompletion returns the earliest projected task completion after now.
func (s *simState) nextCompletion(now time.Duration) (time.Duration, bool) {
	best := time.Duration(0)
	found := false
	for srv, tasks := range s.running {
		sp := s.speed[srv]
		if sp <= 0 {
			continue
		}
		for t := range tasks {
			rem := t.remaining
			if rem < 0 {
				rem = 0
			}
			at := now + time.Duration(float64(rem)/sp)
			if !found || at < best {
				best, found = at, true
			}
		}
	}
	return best, found
}

// reapCompletions finishes tasks whose work is done.
func (s *simState) reapCompletions(now time.Duration) {
	for srv, tasks := range s.running {
		for t := range tasks {
			if t.remaining <= time.Microsecond {
				delete(tasks, t)
				s.used[srv] -= t.req.CPURate
				if s.used[srv] < 0 {
					s.used[srv] = 0
				}
				t.job.open--
				if t.job.open == 0 {
					t.job.record.Completed = true
					t.job.record.Finish = now
				}
			}
		}
	}
}

// applyImpairments recomputes per-server speeds at time now and kills the
// running tasks of servers that just went dark (outage restart-from-
// scratch: a power loss destroys in-memory work).
func (s *simState) applyImpairments(now time.Duration) {
	for srv := range s.speed {
		sp := 1.0
		for _, im := range s.impairments {
			if im.Server == srv && now >= im.From && now < im.To {
				if im.SpeedFactor < sp {
					sp = im.SpeedFactor
				}
			}
		}
		if sp <= 0 && s.speed[srv] > 0 {
			// Outage begins: kill and re-queue everything running here.
			for t := range s.running[srv] {
				delete(s.running[srv], t)
				s.used[srv] -= t.req.CPURate
				t.remaining = t.req.Duration
				t.job.record.Restarts++
				s.enqueue(t)
			}
			s.used[srv] = 0
		}
		s.speed[srv] = sp
	}
}
