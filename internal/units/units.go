// Package units defines physical quantity types used throughout the
// simulator: power, energy, charge, voltage and current.
//
// All quantities are float64 wrappers. Wrapping them in named types makes
// unit errors (adding Watts to WattHours, say) a compile-time problem
// instead of a silent simulation bug, at zero runtime cost.
package units

import (
	"fmt"
	"time"
)

// Watts is electrical power.
type Watts float64

// Common power scales.
const (
	Watt     Watts = 1
	Kilowatt Watts = 1e3
	Megawatt Watts = 1e6
)

// Joules is energy.
type Joules float64

// WattHours is energy in watt-hours (1 Wh = 3600 J).
type WattHours float64

// Volts is electrical potential.
type Volts float64

// Amps is electrical current.
type Amps float64

// AmpHours is electrical charge in amp-hours.
type AmpHours float64

// JoulesPerWattHour converts between the two energy units.
const JoulesPerWattHour = 3600.0

// Joules converts watt-hours to joules.
func (wh WattHours) Joules() Joules { return Joules(float64(wh) * JoulesPerWattHour) }

// WattHours converts joules to watt-hours.
func (j Joules) WattHours() WattHours { return WattHours(float64(j) / JoulesPerWattHour) }

// Energy returns the energy delivered by power p over duration d.
func (p Watts) Energy(d time.Duration) Joules {
	return Joules(float64(p) * d.Seconds())
}

// Over returns the constant power that delivers energy j over duration d.
// It returns 0 for non-positive durations.
func (j Joules) Over(d time.Duration) Watts {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return Watts(float64(j) / s)
}

// Current returns the current drawn at voltage v by power p.
// It returns 0 for non-positive voltages.
func (p Watts) Current(v Volts) Amps {
	if v <= 0 {
		return 0
	}
	return Amps(float64(p) / float64(v))
}

// Power returns the power delivered by current i at voltage v.
func (i Amps) Power(v Volts) Watts { return Watts(float64(i) * float64(v)) }

// Charge returns the charge moved by current i over duration d.
func (i Amps) Charge(d time.Duration) AmpHours {
	return AmpHours(float64(i) * d.Hours())
}

// String implements fmt.Stringer with an auto-scaled unit.
func (p Watts) String() string {
	switch {
	case p >= Megawatt || p <= -Megawatt:
		return fmt.Sprintf("%.3gMW", float64(p)/1e6)
	case p >= Kilowatt || p <= -Kilowatt:
		return fmt.Sprintf("%.4gkW", float64(p)/1e3)
	default:
		return fmt.Sprintf("%.4gW", float64(p))
	}
}

// String implements fmt.Stringer.
func (j Joules) String() string {
	switch {
	case j >= 1e6 || j <= -1e6:
		return fmt.Sprintf("%.4gMJ", float64(j)/1e6)
	case j >= 1e3 || j <= -1e3:
		return fmt.Sprintf("%.4gkJ", float64(j)/1e3)
	default:
		return fmt.Sprintf("%.4gJ", float64(j))
	}
}

// String implements fmt.Stringer.
func (wh WattHours) String() string {
	switch {
	case wh >= 1e3 || wh <= -1e3:
		return fmt.Sprintf("%.4gkWh", float64(wh)/1e3)
	default:
		return fmt.Sprintf("%.4gWh", float64(wh))
	}
}

// Clamp returns p limited to the closed interval [lo, hi].
func (p Watts) Clamp(lo, hi Watts) Watts {
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

// Max returns the larger of a and b.
func Max(a, b Watts) Watts {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b Watts) Watts {
	if a < b {
		return a
	}
	return b
}
