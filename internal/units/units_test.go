package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestEnergyConversionRoundTrip(t *testing.T) {
	f := func(wh float64) bool {
		if math.IsNaN(wh) || math.IsInf(wh, 0) {
			return true
		}
		got := float64(WattHours(wh).Joules().WattHours())
		return almostEqual(got, wh, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWattHoursToJoules(t *testing.T) {
	if got := WattHours(1).Joules(); got != 3600 {
		t.Fatalf("1 Wh = %v J, want 3600", got)
	}
	if got := Joules(7200).WattHours(); got != 2 {
		t.Fatalf("7200 J = %v Wh, want 2", got)
	}
}

func TestPowerEnergy(t *testing.T) {
	got := Watts(100).Energy(30 * time.Second)
	if got != 3000 {
		t.Fatalf("100W for 30s = %v J, want 3000", got)
	}
}

func TestEnergyOverDuration(t *testing.T) {
	if got := Joules(3000).Over(30 * time.Second); got != 100 {
		t.Fatalf("3000J over 30s = %v, want 100W", got)
	}
	if got := Joules(3000).Over(0); got != 0 {
		t.Fatalf("zero duration should yield 0 W, got %v", got)
	}
	if got := Joules(3000).Over(-time.Second); got != 0 {
		t.Fatalf("negative duration should yield 0 W, got %v", got)
	}
}

func TestEnergyPowerRoundTrip(t *testing.T) {
	f := func(p float64, ms uint16) bool {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return true
		}
		d := time.Duration(int64(ms)+1) * time.Millisecond
		back := float64(Watts(p).Energy(d).Over(d))
		return almostEqual(back, p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurrentAndPower(t *testing.T) {
	i := Watts(480).Current(48)
	if i != 10 {
		t.Fatalf("480W at 48V = %vA, want 10", i)
	}
	if p := i.Power(48); p != 480 {
		t.Fatalf("round trip power = %v, want 480W", p)
	}
	if got := Watts(480).Current(0); got != 0 {
		t.Fatalf("zero volts should yield 0 A, got %v", got)
	}
	if got := Watts(480).Current(-12); got != 0 {
		t.Fatalf("negative volts should yield 0 A, got %v", got)
	}
}

func TestCharge(t *testing.T) {
	got := Amps(2).Charge(30 * time.Minute)
	if got != 1 {
		t.Fatalf("2A for 30min = %vAh, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ p, lo, hi, want Watts }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{10, 0, 10, 10},
		{0, 0, 10, 0},
	}
	for _, c := range cases {
		if got := c.p.Clamp(c.lo, c.hi); got != c.want {
			t.Errorf("(%v).Clamp(%v,%v) = %v, want %v", c.p, c.lo, c.hi, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Max(3, 7) != 7 || Max(7, 3) != 7 {
		t.Error("Max wrong")
	}
	if Min(3, 7) != 3 || Min(7, 3) != 3 {
		t.Error("Min wrong")
	}
}

func TestPowerString(t *testing.T) {
	cases := []struct {
		p    Watts
		want string
	}{
		{500, "500W"},
		{5210, "5.21kW"},
		{2.5e6, "2.5MW"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("(%v W).String() = %q, want %q", float64(c.p), got, c.want)
		}
	}
}

func TestEnergyStrings(t *testing.T) {
	if s := Joules(1500).String(); !strings.HasSuffix(s, "kJ") {
		t.Errorf("1500 J should render in kJ, got %q", s)
	}
	if s := Joules(2.5e6).String(); !strings.HasSuffix(s, "MJ") {
		t.Errorf("2.5e6 J should render in MJ, got %q", s)
	}
	if s := WattHours(72).String(); s != "72Wh" {
		t.Errorf("72 Wh renders as %q", s)
	}
	if s := WattHours(7200).String(); s != "7.2kWh" {
		t.Errorf("7200 Wh renders as %q", s)
	}
}

func TestClampPropertyWithinBounds(t *testing.T) {
	f := func(p, a, b float64) bool {
		if math.IsNaN(p) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := Watts(a), Watts(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Watts(p).Clamp(lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
