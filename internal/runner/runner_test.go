package runner_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virus"
)

// sleepJobs builds jobs whose completion order is the reverse of their
// job order: early jobs sleep longest, so any pool that reported results
// in completion order would scramble them.
func sleepJobs(n int) []runner.Job[int] {
	jobs := make([]runner.Job[int], n)
	for i := range jobs {
		jobs[i] = runner.Job[int]{
			Key: fmt.Sprintf("job/%d", i),
			Run: func() (int, error) {
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	return jobs
}

func TestMapPreservesJobOrder(t *testing.T) {
	jobs := sleepJobs(12)
	results := runner.Map(runner.Pool{Workers: 6}, jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has Index %d", i, r.Index)
		}
		if want := fmt.Sprintf("job/%d", i); r.Key != want {
			t.Errorf("result %d has Key %q, want %q", i, r.Key, want)
		}
		if r.Err != nil {
			t.Errorf("result %d failed: %v", i, r.Err)
		}
		if r.Value != i*i {
			t.Errorf("result %d = %d, want %d", i, r.Value, i*i)
		}
		if r.Elapsed <= 0 {
			t.Errorf("result %d has non-positive Elapsed %v", i, r.Elapsed)
		}
	}
}

func TestMapCapturesPanics(t *testing.T) {
	jobs := []runner.Job[string]{
		{Key: "ok/0", Run: func() (string, error) { return "a", nil }},
		{Key: "boom", Run: func() (string, error) { panic("kaboom") }},
		{Key: "ok/1", Run: func() (string, error) { return "b", nil }},
	}
	for _, workers := range []int{1, 3} {
		results := runner.Map(runner.Pool{Workers: workers}, jobs)
		if results[0].Err != nil || results[0].Value != "a" {
			t.Fatalf("workers=%d: healthy job 0 broken: %+v", workers, results[0])
		}
		if results[2].Err != nil || results[2].Value != "b" {
			t.Fatalf("workers=%d: healthy job 2 broken: %+v", workers, results[2])
		}
		var pe *runner.PanicError
		if !errors.As(results[1].Err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, results[1].Err)
		}
		if pe.Key != "boom" || pe.Value != "kaboom" {
			t.Errorf("workers=%d: PanicError = %q/%v", workers, pe.Key, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError has empty stack", workers)
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Errorf("workers=%d: Error() = %q, want the key in it", workers, pe.Error())
		}
		if results[1].Value != "" {
			t.Errorf("workers=%d: panicked job has non-zero value %q", workers, results[1].Value)
		}
	}
}

func TestCollectReturnsFirstErrorByJobOrder(t *testing.T) {
	errA := errors.New("a failed")
	errB := errors.New("b failed")
	var ran atomic.Int32
	jobs := []runner.Job[int]{
		{Key: "fine", Run: func() (int, error) { ran.Add(1); return 1, nil }},
		// The later-indexed failure sleeps less, so with >1 workers it
		// finishes first; Collect must still report the earlier job's
		// error.
		{Key: "slow-fail", Run: func() (int, error) {
			ran.Add(1)
			time.Sleep(20 * time.Millisecond)
			return 0, errA
		}},
		{Key: "fast-fail", Run: func() (int, error) { ran.Add(1); return 0, errB }},
		{Key: "tail", Run: func() (int, error) { ran.Add(1); return 4, nil }},
	}
	_, err := runner.Collect(runner.Pool{Workers: 4}, jobs)
	if !errors.Is(err, errA) {
		t.Fatalf("want first error by job order (%v), got %v", errA, err)
	}
	if !strings.Contains(err.Error(), "slow-fail") {
		t.Errorf("error %q does not name the failing job", err)
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("only %d of 4 jobs ran; all jobs must run even when one fails", got)
	}
}

func TestCollectValues(t *testing.T) {
	values, err := runner.Collect(runner.Pool{Workers: 3}, sleepJobs(7))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 4, 9, 16, 25, 36}
	if !reflect.DeepEqual(values, want) {
		t.Fatalf("Collect = %v, want %v", values, want)
	}
}

// TestWorkerCountInvariance runs the same deterministic jobs under
// different pool sizes and demands identical outputs: the worker count
// must never leak into results.
func TestWorkerCountInvariance(t *testing.T) {
	mkJobs := func() []runner.Job[float64] {
		jobs := make([]runner.Job[float64], 16)
		for i := range jobs {
			key := fmt.Sprintf("sweep/run=%d", i)
			jobs[i] = runner.Job[float64]{
				Key: key,
				Run: func() (float64, error) {
					rng := stats.NewRNG(runner.DeriveSeed(42, key))
					sum := 0.0
					for k := 0; k < 1000; k++ {
						sum += rng.Float64()
					}
					return sum, nil
				},
			}
		}
		return jobs
	}
	base, err := runner.Collect(runner.Pool{Workers: 1}, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		got, err := runner.Collect(runner.Pool{Workers: workers}, mkJobs())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d produced different values than workers=1", workers)
		}
	}
}

func TestProgressReporting(t *testing.T) {
	const n = 9
	var mu []runner.Progress
	pool := runner.Pool{
		Workers:    4,
		OnProgress: func(p runner.Progress) { mu = append(mu, p) }, // serialized by the pool
	}
	runner.Map(pool, sleepJobs(n))
	if len(mu) != n {
		t.Fatalf("got %d progress updates, want %d", len(mu), n)
	}
	seen := map[string]bool{}
	for i, p := range mu {
		if p.Done != i+1 {
			t.Errorf("update %d has Done=%d, want %d", i, p.Done, i+1)
		}
		if p.Total != n {
			t.Errorf("update %d has Total=%d, want %d", i, p.Total, n)
		}
		if p.Elapsed <= 0 {
			t.Errorf("update %d has non-positive Elapsed", i)
		}
		if seen[p.Key] {
			t.Errorf("key %q reported twice", p.Key)
		}
		seen[p.Key] = true
	}
	if last := mu[n-1]; last.ETA != 0 {
		t.Errorf("final update has ETA=%v, want 0", last.ETA)
	}
	if first := mu[0]; first.ETA <= 0 {
		t.Errorf("first update has ETA=%v, want > 0", first.ETA)
	}
}

func TestEmptyAndSingleJob(t *testing.T) {
	if got := runner.Map(runner.Pool{}, []runner.Job[int]{}); len(got) != 0 {
		t.Fatalf("empty job slice returned %d results", len(got))
	}
	values, err := runner.Collect(runner.Pool{Workers: 8}, []runner.Job[int]{
		{Key: "solo", Run: func() (int, error) { return 7, nil }},
	})
	if err != nil || len(values) != 1 || values[0] != 7 {
		t.Fatalf("single job: values=%v err=%v", values, err)
	}
}

func TestDeriveSeed(t *testing.T) {
	if runner.DeriveSeed(1, "a") != runner.DeriveSeed(1, "a") {
		t.Error("DeriveSeed is not deterministic")
	}
	seen := map[uint64]string{}
	for _, key := range []string{"", "a", "b", "ab", "fig15/PAD/Dense/CPU", "fig15/PAD/Dense/IO"} {
		s := runner.DeriveSeed(99, key)
		if prev, dup := seen[s]; dup {
			t.Errorf("keys %q and %q collide on seed %d", prev, key, s)
		}
		seen[s] = key
	}
	if runner.DeriveSeed(1, "x") == runner.DeriveSeed(2, "x") {
		t.Error("base seed does not influence the derived seed")
	}
}

// flatBackground builds per-server utilization series pinned at u.
func flatBackground(servers int, u float64) []*stats.Series {
	out := make([]*stats.Series, servers)
	for i := range out {
		s := stats.NewSeries(time.Hour)
		s.Append(u)
		s.Append(u)
		out[i] = s
	}
	return out
}

// TestSimRunsAreIsolated drives real simulations through the pool at
// eight workers. Under -race this is the per-run isolation check for the
// whole engine: concurrent runs share only the read-only background
// series, and every run's Result must echo its own key and match the
// sequential rerun of the same config.
func TestSimRunsAreIsolated(t *testing.T) {
	const racks, spr = 2, 4
	bg := flatBackground(racks*spr, 0.4)
	mkJobs := func() []runner.Job[*sim.Result] {
		var jobs []runner.Job[*sim.Result]
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("race/run=%d", i)
			jobs = append(jobs, runner.Job[*sim.Result]{
				Key: key,
				Run: func() (*sim.Result, error) {
					cfg := sim.Config{
						Key:            key,
						Racks:          racks,
						ServersPerRack: spr,
						Tick:           100 * time.Millisecond,
						Duration:       5 * time.Second,
						Background:     bg,
						Attack: &sim.AttackSpec{
							Servers: []int{0, 1},
							Attack: virus.MustNew(virus.Config{
								Profile:         virus.CPUIntensive,
								PrepDuration:    time.Second,
								MaxPhaseI:       time.Second,
								SpikeWidth:      time.Second,
								SpikesPerMinute: 30,
								Seed:            runner.DeriveSeed(7, key),
							}),
						},
					}
					return sim.Run(cfg, schemes.NewPS(schemes.Options{}))
				},
			})
		}
		return jobs
	}
	parallel, err := runner.Collect(runner.Pool{Workers: 8}, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := runner.Collect(runner.Pool{Workers: 1}, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range parallel {
		key := fmt.Sprintf("race/run=%d", i)
		if parallel[i].Key != key {
			t.Errorf("run %d: Result.Key = %q, want %q", i, parallel[i].Key, key)
		}
		if !reflect.DeepEqual(parallel[i], sequential[i]) {
			t.Errorf("run %d: parallel result differs from sequential rerun", i)
		}
	}
}

// TestPoolMetrics checks the sweep instrumentation: completed/failed
// counters, a drained queue-depth gauge and one latency observation per
// job, aggregated across worker counts and across sweeps sharing the
// Metrics value. Run under -race in CI this doubles as the concurrency
// check on the registry.
func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := runner.NewMetrics(reg)
	jobs := make([]runner.Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = runner.Job[int]{Key: fmt.Sprintf("j%d", i), Run: func() (int, error) {
			if i%4 == 3 {
				return 0, errors.New("boom")
			}
			return i, nil
		}}
	}
	for _, workers := range []int{1, 4} {
		runner.Map(runner.Pool{Workers: workers, Metrics: m}, jobs)
	}
	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"runner_jobs_completed_total 12\n",
		"runner_jobs_failed_total 4\n",
		"runner_queue_depth 0\n",
		"runner_job_seconds_count 16\n",
	} {
		if !strings.Contains(buf.String(), line) {
			t.Fatalf("missing %q in exposition:\n%s", line, buf.String())
		}
	}
}
