// Package runner fans independent simulation runs across a bounded pool
// of goroutines. The paper's evaluation is a large sweep — six schemes ×
// many seeds × many attack configurations — and every run is independent
// of every other, so the sweep is embarrassingly parallel. The runner
// turns a slice of keyed jobs into a slice of results in job order, which
// makes the output of a sweep a pure function of its inputs: the same
// jobs produce byte-identical tables and CSVs at any worker count.
//
// Concurrency contract: the runner owns the goroutines; each Job.Run
// executes on exactly one of them and must not share mutable state (in
// particular *stats.RNG instances, battery.Store devices or virus.Attack
// controllers) with any other job. Per-run randomness is derived with
// DeriveSeed(base, key), never by sharing a stream across runs. Results
// are written to per-job slots, so no synchronization is needed beyond
// the pool's own.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Job is one independent unit of work in a sweep.
type Job[T any] struct {
	// Key names the run, e.g. "fig15/PAD/Dense/CPU". Keys identify runs
	// in progress reports and failures, and — via DeriveSeed — pin the
	// run's randomness, so any single run of a sweep can be reproduced
	// from its key alone.
	Key string
	// Run executes the unit and returns its value. It must be
	// self-contained: everything mutable it touches is created inside it
	// (or reached through it exclusively); anything shared with other
	// jobs is read-only.
	Run func() (T, error)
}

// Result is the outcome of one job.
type Result[T any] struct {
	// Key echoes the job's key.
	Key string
	// Index is the job's position in the input slice.
	Index int
	// Value is what Run returned; the zero value when Err is non-nil.
	Value T
	// Err is the run's failure. A panicking run is reported here as a
	// *PanicError, not allowed to crash the sweep.
	Err error
	// Elapsed is the run's wall-clock duration.
	Elapsed time.Duration
}

// PanicError reports a job whose Run panicked. The sweep continues; the
// panic surfaces as this error on the job's Result.
type PanicError struct {
	// Key is the panicking job's key.
	Key string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %q panicked: %v", e.Key, e.Value)
}

// Progress is a sweep status update, delivered after each job finishes.
type Progress struct {
	// Done and Total count finished and scheduled jobs.
	Done, Total int
	// Key is the job that just finished.
	Key string
	// Elapsed is the wall-clock time since the sweep started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time from the mean
	// per-completion pace so far (zero until the first job finishes).
	ETA time.Duration
}

// jobLatencyBounds bucket per-job wall time: sweeps mix sub-second unit
// runs with multi-minute survival simulations.
var jobLatencyBounds = []float64{
	0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Metrics instruments a pool's sweeps through an obs.Registry. One
// Metrics value may be shared by every pool in a process; the counters
// then aggregate across sweeps.
type Metrics struct {
	completed, failed, queued, latency *obs.Family
}

// NewMetrics declares the runner metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		completed: reg.Counter("runner_jobs_completed_total", "Sweep jobs finished successfully.", ""),
		failed:    reg.Counter("runner_jobs_failed_total", "Sweep jobs that returned an error or panicked.", ""),
		queued:    reg.Gauge("runner_queue_depth", "Sweep jobs accepted but not yet finished.", ""),
		latency:   reg.Histogram("runner_job_seconds", "Wall-clock run time per sweep job.", "", jobLatencyBounds),
	}
}

func (m *Metrics) enqueue(n int) {
	if m != nil {
		m.queued.Add("", float64(n))
	}
}

func (m *Metrics) record(err error, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.queued.Add("", -1)
	if err != nil {
		m.failed.Add("", 1)
	} else {
		m.completed.Add("", 1)
	}
	m.latency.Observe("", elapsed.Seconds())
}

// Pool bounds how a sweep executes.
type Pool struct {
	// Workers is the number of concurrent goroutines. 0 (or negative)
	// selects runtime.GOMAXPROCS(0); 1 runs every job inline on the
	// caller's goroutine — the legacy sequential path, bit-compatible
	// with the pre-runner loops.
	Workers int
	// OnProgress, when non-nil, receives one update per finished job.
	// Calls are serialized; the callback must not invoke the pool
	// reentrantly.
	OnProgress func(Progress)
	// Metrics, when non-nil, counts jobs and observes per-job latency as
	// the sweep executes (registry access is internally synchronized).
	Metrics *Metrics
}

func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map executes the jobs under the pool's concurrency bound and returns
// one Result per job, in job order regardless of completion order. It
// never fails as a whole: per-run errors and panics are reported on the
// corresponding Result.
func Map[T any](pool Pool, jobs []Job[T]) []Result[T] {
	results := make([]Result[T], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	pool.Metrics.enqueue(len(jobs))
	start := time.Now()
	var mu sync.Mutex // guards done and serializes OnProgress
	done := 0
	finish := func(i int) {
		pool.Metrics.record(results[i].Err, results[i].Elapsed)
		if pool.OnProgress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		elapsed := time.Since(start)
		var eta time.Duration
		if rem := len(jobs) - done; rem > 0 {
			eta = time.Duration(float64(elapsed) / float64(done) * float64(rem))
		}
		pool.OnProgress(Progress{
			Done: done, Total: len(jobs), Key: jobs[i].Key,
			Elapsed: elapsed, ETA: eta,
		})
	}

	n := pool.workers()
	if n == 1 {
		for i := range jobs {
			results[i] = runOne(jobs[i], i)
			finish(i)
		}
		return results
	}
	if n > len(jobs) {
		n = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(jobs[i], i)
				finish(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne executes a single job with panic capture.
func runOne[T any](job Job[T], index int) (res Result[T]) {
	res.Key = job.Key
	res.Index = index
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			var zero T
			res.Value = zero
			res.Err = &PanicError{Key: job.Key, Value: r, Stack: debug.Stack()}
		}
	}()
	res.Value, res.Err = job.Run()
	return res
}

// Collect executes the jobs and returns just their values in job order,
// or the first (by job order) error. All jobs run to completion even
// when one fails, so a sweep's side effects do not depend on scheduling.
func Collect[T any](pool Pool, jobs []Job[T]) ([]T, error) {
	results := Map(pool, jobs)
	out := make([]T, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("%s: %w", r.Key, r.Err)
		}
		out[i] = r.Value
	}
	return out, nil
}

// DeriveSeed derives the deterministic RNG seed for one run of a sweep
// from the sweep's base seed and the run's key. See stats.DeriveSeed.
func DeriveSeed(base uint64, key string) uint64 {
	return stats.DeriveSeed(base, key)
}
