package cost

import (
	"testing"
	"time"

	"repro/internal/units"
)

// paperDeployment is the evaluated cluster: 22 racks × 10 DL585s at 75%
// oversubscription with a 1%-of-cabinet μDEB (~0.8 Wh) per rack.
func paperDeployment() Deployment {
	return Deployment{
		Racks:                 22,
		ServersPerRack:        10,
		ServerPeak:            521,
		MicroDEBPerRack:       units.WattHours(0.8).Joules(),
		OversubscriptionRatio: 0.75,
	}
}

func TestDeploymentValidation(t *testing.T) {
	bad := []Deployment{
		{},
		{Racks: 22, ServersPerRack: 10, ServerPeak: 0, OversubscriptionRatio: 0.75},
		{Racks: 22, ServersPerRack: 10, ServerPeak: 521, OversubscriptionRatio: 1.5},
	}
	for i, d := range bad {
		if _, err := d.Analyze(); err == nil {
			t.Errorf("deployment %d should fail", i)
		}
	}
}

func TestDeploymentNumbers(t *testing.T) {
	a, err := paperDeployment().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// μDEB hardware: 0.8 Wh × $20/Wh × 22 racks = $352.
	if a.PADHardwareUSD < 300 || a.PADHardwareUSD > 400 {
		t.Fatalf("PAD hardware = $%v, want ~$352", a.PADHardwareUSD)
	}
	// Oversubscription avoids 25% of 114.6 kW at $15/W ≈ $430k.
	if a.OversubscriptionSavingsUSD < 3e5 || a.OversubscriptionSavingsUSD > 6e5 {
		t.Fatalf("savings = $%v, want ~$430k", a.OversubscriptionSavingsUSD)
	}
	// The paper's core economics: PAD hardware is a rounding error next
	// to the savings it makes safe to keep.
	if a.HardwareShareOfSavings > 0.01 {
		t.Fatalf("hardware share = %v, want < 1%%", a.HardwareShareOfSavings)
	}
	// One cluster-wide outage minute costs ~$1k (66 m² × $15); the μDEB
	// pays for itself within the first minute of avoided outage.
	if a.OutageCostPerMinuteUSD < 500 || a.OutageCostPerMinuteUSD > 2000 {
		t.Fatalf("outage $/min = %v", a.OutageCostPerMinuteUSD)
	}
	if a.BreakEvenOutage > time.Minute {
		t.Fatalf("break-even = %v, want under a minute", a.BreakEvenOutage)
	}
}

func TestDeploymentScalesWithMicroSize(t *testing.T) {
	small := paperDeployment()
	big := paperDeployment()
	big.MicroDEBPerRack *= 10
	as, err := small.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	ab, err := big.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	ratio := ab.PADHardwareUSD / as.PADHardwareUSD
	if ratio < 9.99 || ratio > 10.01 {
		t.Fatalf("hardware cost should scale linearly, got %v", ratio)
	}
	if ab.OversubscriptionSavingsUSD != as.OversubscriptionSavingsUSD {
		t.Fatal("savings should not depend on μDEB size")
	}
}

func TestDeploymentCustomModels(t *testing.T) {
	d := paperDeployment()
	d.Capex = &CapexModel{SuperCapPerWh: 40}
	d.Outage = &OutageModel{MedianPerSqmMinute: 30}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := paperDeployment().Analyze()
	if a.PADHardwareUSD <= base.PADHardwareUSD {
		t.Fatal("doubled $/Wh should raise hardware cost")
	}
	if a.OutageCostPerMinuteUSD <= base.OutageCostPerMinuteUSD {
		t.Fatal("doubled outage rate should raise $/min")
	}
}
