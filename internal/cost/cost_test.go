package cost

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestOutageCDFShape(t *testing.T) {
	m := OutageModel{}
	cdf := m.SampleCDF(20000, 42)
	// Median near the configured 15 $/sqm/min.
	med := cdf.Quantile(0.5)
	if med < 12 || med > 18 {
		t.Fatalf("median = %v, want ~15", med)
	}
	// Heavy tail: the 95th percentile is several times the median.
	p95 := cdf.Quantile(0.95)
	if p95 < 2*med {
		t.Fatalf("tail too light: p95=%v median=%v", p95, med)
	}
	// Figure 1's anchor: a large share of centers exceed $10/sqm/min.
	if frac := 1 - cdf.P(10); frac < 0.4 {
		t.Fatalf("only %v exceed $10/sqm/min, want >= 0.4", frac)
	}
}

func TestOutageCDFDeterministic(t *testing.T) {
	a := OutageModel{}.SampleCDF(100, 7).Quantile(0.5)
	b := OutageModel{}.SampleCDF(100, 7).Quantile(0.5)
	if a != b {
		t.Fatal("CDF sampling not deterministic")
	}
}

func TestOutageCost(t *testing.T) {
	m := OutageModel{MedianPerSqmMinute: 10}
	if got := m.OutageCost(2, 100); got != 2000 {
		t.Fatalf("OutageCost = %v, want 2000", got)
	}
	if got := m.OutageCost(-1, 100); got != 0 {
		t.Fatal("negative minutes should cost 0")
	}
}

func TestCapexCosts(t *testing.T) {
	m := CapexModel{}
	wh100 := units.WattHours(100).Joules()
	if got := m.BatteryCost(wh100); got != 25 {
		t.Fatalf("BatteryCost = %v, want 25", got)
	}
	if got := m.MicroDEBCost(wh100); got != 2000 {
		t.Fatalf("MicroDEBCost = %v, want 2000", got)
	}
	if got := m.InfrastructureCost(1000); got != 15000 {
		t.Fatalf("InfrastructureCost = %v, want 15000", got)
	}
}

func TestCostRatio(t *testing.T) {
	m := CapexModel{}
	// Super-caps are 80x the $/Wh of lead-acid at defaults: a bank 1% the
	// energy of the pool costs 80% as much per Wh ratio × 0.01.
	micro := units.WattHours(1).Joules()
	vdeb := units.WattHours(100).Joules()
	got, err := m.CostRatio(micro, vdeb)
	if err != nil {
		t.Fatal(err)
	}
	want := 20.0 / (0.25 * 100)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CostRatio = %v, want %v", got, want)
	}
	if _, err := m.CostRatio(micro, 0); err == nil {
		t.Fatal("zero vDEB capacity should fail")
	}
}

func TestMicroCostLinearInCapacity(t *testing.T) {
	m := CapexModel{}
	c1 := m.MicroDEBCost(units.WattHours(1).Joules())
	c5 := m.MicroDEBCost(units.WattHours(5).Joules())
	if math.Abs(c5-5*c1) > 1e-9 {
		t.Fatalf("cost not linear: %v vs 5x%v", c5, c1)
	}
}
