// Package cost implements the economic models behind the paper's
// motivation (Figure 1's outage-cost CDF, the $10–25/W infrastructure
// cost) and its Figure 17 cost-efficiency analysis of μDEB capacity.
package cost

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/units"
)

// OutageModel captures the Ponemon-style outage cost statistics the paper
// cites: a heavy-tailed per-square-meter-per-minute cost whose 2013 mean
// corresponds to about $7,900/minute for a typical data center.
type OutageModel struct {
	// MedianPerSqmMinute is the median cost in USD per square meter per
	// minute. 0 selects 15 (40% of surveyed centers exceed ~$10).
	MedianPerSqmMinute float64
	// Sigma is the log-normal shape. 0 selects 0.9.
	Sigma float64
}

func (m OutageModel) median() float64 {
	if m.MedianPerSqmMinute == 0 {
		return 15
	}
	return m.MedianPerSqmMinute
}

func (m OutageModel) sigma() float64 {
	if m.Sigma == 0 {
		return 0.9
	}
	return m.Sigma
}

// SampleCDF draws n outage costs and returns their empirical CDF — the
// reproduction of Figure 1's curve shape.
func (m OutageModel) SampleCDF(n int, seed uint64) *stats.CDF {
	rng := stats.NewRNG(seed)
	mu := math.Log(m.median())
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = rng.LogNormal(mu, m.sigma())
	}
	return stats.NewCDF(samples)
}

// OutageCost estimates the loss of an outage lasting minutes over a
// facility of the given floor area, at the median cost rate.
func (m OutageModel) OutageCost(minutes, sqMeters float64) float64 {
	if minutes < 0 || sqMeters < 0 {
		return 0
	}
	return m.median() * minutes * sqMeters
}

// CapexModel prices the storage hardware of a PAD deployment.
type CapexModel struct {
	// LeadAcidPerWh is the battery cost in $/Wh. 0 selects 0.25
	// ($250/kWh, stationary lead-acid).
	LeadAcidPerWh float64
	// SuperCapPerWh is the super-capacitor cost in $/Wh. 0 selects 20
	// (the paper cites 10–30 $/Wh).
	SuperCapPerWh float64
	// InfraPerWatt is the power-infrastructure cost in $/W. 0 selects
	// 15 (the paper cites $10–25/W).
	InfraPerWatt float64
}

func (m CapexModel) leadAcid() float64 {
	if m.LeadAcidPerWh == 0 {
		return 0.25
	}
	return m.LeadAcidPerWh
}

func (m CapexModel) superCap() float64 {
	if m.SuperCapPerWh == 0 {
		return 20
	}
	return m.SuperCapPerWh
}

func (m CapexModel) infra() float64 {
	if m.InfraPerWatt == 0 {
		return 15
	}
	return m.InfraPerWatt
}

// BatteryCost prices a lead-acid bank of the given capacity.
func (m CapexModel) BatteryCost(capacity units.Joules) float64 {
	return float64(capacity.WattHours()) * m.leadAcid()
}

// MicroDEBCost prices a super-capacitor bank of the given capacity; the
// paper's Figure 17 notes the cost "roughly follows a linear model".
func (m CapexModel) MicroDEBCost(capacity units.Joules) float64 {
	return float64(capacity.WattHours()) * m.superCap()
}

// InfrastructureCost prices provisioned power capacity.
func (m CapexModel) InfrastructureCost(capacity units.Watts) float64 {
	return float64(capacity) * m.infra()
}

// CostRatio returns the μDEB/vDEB hardware cost ratio for the given
// capacities — Figure 17's left axis.
func (m CapexModel) CostRatio(micro, vdeb units.Joules) (float64, error) {
	if vdeb <= 0 {
		return 0, fmt.Errorf("cost: vDEB capacity must be positive, got %v", vdeb)
	}
	return m.MicroDEBCost(micro) / m.BatteryCost(vdeb), nil
}
