package cost

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// Deployment prices a PAD rollout for one cluster and weighs it against
// outage exposure — the paper's §6-D argument that PAD's hardware
// addition (the μDEB banks; the vDEB pool reuses batteries the data
// center already owns) is negligible next to the cost of a single
// successful power attack.
type Deployment struct {
	// Racks and rack sizing.
	Racks          int
	ServersPerRack int
	// ServerPeak is the per-server nameplate power.
	ServerPeak units.Watts
	// MicroDEBPerRack is the μDEB bank energy installed per rack.
	MicroDEBPerRack units.Joules
	// OversubscriptionRatio is PPDU/(n·Pr): capacity the facility did NOT
	// have to build.
	OversubscriptionRatio float64
	// FloorPerRack is the white-space footprint per rack, for outage
	// pricing. 0 selects 3 m².
	FloorPerRack float64

	// Capex and Outage override the default cost models when non-nil.
	Capex  *CapexModel
	Outage *OutageModel
}

func (d Deployment) validate() error {
	if d.Racks <= 0 || d.ServersPerRack <= 0 {
		return fmt.Errorf("cost: invalid cluster %dx%d", d.Racks, d.ServersPerRack)
	}
	if d.ServerPeak <= 0 {
		return fmt.Errorf("cost: server peak must be positive, got %v", d.ServerPeak)
	}
	if d.OversubscriptionRatio <= 0 || d.OversubscriptionRatio > 1 {
		return fmt.Errorf("cost: oversubscription ratio %v out of (0,1]", d.OversubscriptionRatio)
	}
	return nil
}

func (d Deployment) capex() CapexModel {
	if d.Capex != nil {
		return *d.Capex
	}
	return CapexModel{}
}

func (d Deployment) outage() OutageModel {
	if d.Outage != nil {
		return *d.Outage
	}
	return OutageModel{}
}

func (d Deployment) floorPerRack() float64 {
	if d.FloorPerRack == 0 {
		return 3
	}
	return d.FloorPerRack
}

// Analysis is the priced deployment.
type Analysis struct {
	// PADHardwareUSD is the μDEB addition (the only new hardware).
	PADHardwareUSD float64
	// OversubscriptionSavingsUSD is the infrastructure capex avoided by
	// provisioning below total nameplate.
	OversubscriptionSavingsUSD float64
	// OutageCostPerMinuteUSD prices one minute of whole-cluster outage.
	OutageCostPerMinuteUSD float64
	// BreakEvenOutage is the outage duration whose avoided cost pays for
	// the PAD hardware.
	BreakEvenOutage time.Duration
	// HardwareShareOfSavings is PAD hardware cost over oversubscription
	// savings — the paper's "slightest cost overhead" ratio.
	HardwareShareOfSavings float64
}

// Analyze prices the deployment.
func (d Deployment) Analyze() (*Analysis, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	capex := d.capex()
	outage := d.outage()

	a := &Analysis{}
	a.PADHardwareUSD = capex.MicroDEBCost(d.MicroDEBPerRack) * float64(d.Racks)

	nameplate := float64(d.ServerPeak) * float64(d.ServersPerRack) * float64(d.Racks)
	avoided := nameplate * (1 - d.OversubscriptionRatio)
	a.OversubscriptionSavingsUSD = capex.InfrastructureCost(units.Watts(avoided))

	floor := d.floorPerRack() * float64(d.Racks)
	a.OutageCostPerMinuteUSD = outage.OutageCost(1, floor)
	if a.OutageCostPerMinuteUSD > 0 {
		minutes := a.PADHardwareUSD / a.OutageCostPerMinuteUSD
		a.BreakEvenOutage = time.Duration(minutes * float64(time.Minute))
	}
	if a.OversubscriptionSavingsUSD > 0 {
		a.HardwareShareOfSavings = a.PADHardwareUSD / a.OversubscriptionSavingsUSD
	}
	return a, nil
}
