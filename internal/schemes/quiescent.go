package schemes

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// This file implements sim.QuiescentPlanner for all six schemes — the
// planner-contract extension behind the engine's event-driven fast path.
// The certification style differs by how much state a scheme carries:
//
//   - Conv, PS and UDEB plan purely from the frozen view (their only
//     state, the charge-policy hysteresis, is idempotent at a fixed SOC
//     and planCharge short-circuits before touching it when there is no
//     headroom), so they are unconditionally quiescent.
//   - PSPC and PAD additionally require their capping governor settled:
//     the EWMA at its bitwise fixed point and the actuation delay ring
//     full of frames identical to the recomputed desired vector — in that
//     state a submit pops what it pushes and the queue is rotation-
//     invariant, so skipped submits are output-equivalent forever.
//   - VDEB and PAD recompute the whole Algorithm-1 refresh against the
//     frozen view and compare bit for bit (recompute-and-compare through
//     the shared computeInto body), then let SkipPlan replay the 1 s
//     refresh clock — including its KindVDEBAlloc trace records — across
//     the elided span.
//
// PAD further demands its security policy hold its level below Level 3
// and shedding stay disengaged, since both would mutate per-tick state
// the span kernel does not model.

// Compile-time checks: every scheme supports the fast path.
var (
	_ sim.QuiescentPlanner = (*Conv)(nil)
	_ sim.QuiescentPlanner = (*PS)(nil)
	_ sim.QuiescentPlanner = (*PSPC)(nil)
	_ sim.QuiescentPlanner = (*VDEB)(nil)
	_ sim.QuiescentPlanner = (*UDEB)(nil)
	_ sim.QuiescentPlanner = (*PAD)(nil)
)

// settled reports whether observe(view) would leave every smoothed
// estimate bitwise unchanged: s + α·(demand − s) == s for each rack.
// With the per-tick α cached, a settled observe is a pure no-op.
func (g *capGovernor) settled(view sim.ClusterView) bool {
	if g.smoothed == nil || len(g.smoothed) != len(view.Racks) {
		return false
	}
	alpha := g.alphaFor(view.Tick)
	for i, v := range view.Racks {
		s := g.smoothed[i]
		if s+alpha*(float64(v.Demand)-s) != s {
			return false
		}
	}
	return true
}

// settledTotal sums the smoothed demands exactly as observe + the
// smoothedTotal helper would: per-element conversion to watts, then the
// running sum, so the bits match the per-tick computation.
func (g *capGovernor) settledTotal() units.Watts {
	var t units.Watts
	for _, s := range g.smoothed {
		t += units.Watts(s)
	}
	return t
}

// ringSettled reports whether the actuation delay line is in steady state
// carrying exactly the given desired frequencies: the line holds depth
// frames (so a submit pops a head the same tick it pushes the tail) and
// every queued frame equals desired bitwise. In that state submit
// returns desired's values and leaves the queue content unchanged up to
// head rotation — and a ring whose slots are all identical is rotation-
// invariant, so eliding n submits cannot change any later output.
func (g *capGovernor) ringSettled(desired []float64, tick time.Duration) bool {
	depth := 0
	if tick > 0 {
		depth = int(g.delay() / tick)
	}
	if g.ringLen != depth || len(g.ring) < depth+1 {
		return false
	}
	for i := 0; i < g.ringLen; i++ {
		frame := g.ring[(g.ringHead+i)%len(g.ring)]
		if frame == nil || len(frame) != len(desired) {
			return false
		}
		for j, d := range desired {
			if frame[j] != d {
				return false
			}
		}
	}
	return true
}

// quiescent reports whether an Algorithm-1 refresh against this view
// would reproduce the planner's live caps and soft limits bit for bit —
// in which case the refreshes inside a skipped span are pure clock-and-
// trace events that skipPlan can synthesize. The trial refresh runs the
// same computeInto body as the real one and writes only check scratch.
func (p *vdebPlanner) quiescent(view sim.ClusterView) bool {
	n := len(view.Racks)
	if !p.started || len(p.allocCap) != n {
		return false
	}
	pShave, allocSum := p.computeInto(view, &p.checkCap, &p.checkBudgets)
	for i := 0; i < n; i++ {
		if p.checkCap[i] != p.allocCap[i] || p.checkBudgets[i] != p.budgets[i] {
			return false
		}
	}
	p.qShave, p.qAlloc = pShave, allocSum
	return true
}

// skipPlan replays the refresh clock across n elided ticks starting at
// view.Time: every tick whose offset is refreshEvery past the last
// refresh stamps the clock and emits the KindVDEBAlloc record the live
// refresh would have, with the values quiescent proved frozen.
func (p *vdebPlanner) skipPlan(view sim.ClusterView, n int) {
	for k := 0; k < n; k++ {
		t := view.Time + time.Duration(k)*view.Tick
		if t-p.lastRefresh >= p.refreshEvery {
			p.lastRefresh = t
			if view.Trace != nil && view.Tick > 0 {
				view.Trace.Emit(obs.Event{
					Tick: int64(t / view.Tick),
					Rack: -1,
					Kind: obs.KindVDEBAlloc,
					A:    float64(p.qShave),
					B:    float64(p.qAlloc),
				})
			}
		}
	}
}

// Quiescent implements sim.QuiescentPlanner. Conv plans purely from the
// view; its charge-policy hysteresis is idempotent at a frozen SOC.
func (s *Conv) Quiescent(sim.ClusterView) bool { return true }

// NextEvent implements sim.QuiescentPlanner: Conv has no clocks.
func (s *Conv) NextEvent(sim.ClusterView) int { return math.MaxInt }

// SkipPlan implements sim.QuiescentPlanner: nothing to advance.
func (s *Conv) SkipPlan(sim.ClusterView, int) {}

// Quiescent implements sim.QuiescentPlanner. PS plans purely from the
// view; see Conv.
func (s *PS) Quiescent(sim.ClusterView) bool { return true }

// NextEvent implements sim.QuiescentPlanner: PS has no clocks.
func (s *PS) NextEvent(sim.ClusterView) int { return math.MaxInt }

// SkipPlan implements sim.QuiescentPlanner: nothing to advance.
func (s *PS) SkipPlan(sim.ClusterView, int) {}

// Quiescent implements sim.QuiescentPlanner. UDEB plans purely from the
// view (the μDEB banks themselves are engine hardware the engine's own
// quiescence predicate covers); see Conv.
func (s *UDEB) Quiescent(sim.ClusterView) bool { return true }

// NextEvent implements sim.QuiescentPlanner: UDEB has no clocks.
func (s *UDEB) NextEvent(sim.ClusterView) int { return math.MaxInt }

// SkipPlan implements sim.QuiescentPlanner: nothing to advance.
func (s *UDEB) SkipPlan(sim.ClusterView, int) {}

// Quiescent implements sim.QuiescentPlanner: the monitor EWMA must be at
// its fixed point, the recomputed cap requests must equal the vector the
// last plan produced, and the actuation ring must be full of that same
// vector.
func (s *PSPC) Quiescent(view sim.ClusterView) bool {
	n := len(view.Racks)
	if len(s.desired) < n || !s.gov.settled(view) {
		return false
	}
	for i, v := range view.Racks {
		d := 0.0
		if units.Watts(s.gov.smoothed[i])-v.Budget > v.BatteryMax {
			d = s.opts.CapFreq
		}
		if d != s.desired[i] {
			return false
		}
	}
	return s.gov.ringSettled(s.desired[:n], view.Tick)
}

// NextEvent implements sim.QuiescentPlanner: a settled governor has no
// pending transitions, so PSPC imposes no horizon of its own.
func (s *PSPC) NextEvent(sim.ClusterView) int { return math.MaxInt }

// SkipPlan implements sim.QuiescentPlanner: a settled governor needs no
// clock advance (the EWMA weight depends on the tick, not on wall time).
func (s *PSPC) SkipPlan(sim.ClusterView, int) {}

// Quiescent implements sim.QuiescentPlanner via the shared planner's
// recompute-and-compare check.
func (s *VDEB) Quiescent(view sim.ClusterView) bool {
	return s.planner.quiescent(view)
}

// NextEvent implements sim.QuiescentPlanner. The refresh clock is not a
// horizon: a refresh that reproduces the current state bitwise (which
// Quiescent just proved) may fire inside a span, replayed by SkipPlan.
func (s *VDEB) NextEvent(sim.ClusterView) int { return math.MaxInt }

// SkipPlan implements sim.QuiescentPlanner.
func (s *VDEB) SkipPlan(view sim.ClusterView, n int) {
	s.planner.skipPlan(view, n)
}

// Quiescent implements sim.QuiescentPlanner: the full-stack check — the
// monitor EWMA settled, the security policy holding below Level 3, the
// vDEB refresh reproducing itself, shedding disengaged, the desired cap
// vector recomputing to what the actuation ring carries.
func (s *PAD) Quiescent(view sim.ClusterView) bool {
	n := len(view.Racks)
	if s.policy == nil || len(s.desired) < n || !s.gov.settled(view) {
		return false
	}
	smTotal := s.gov.settledTotal()
	inputs := s.policyInputs(view, smTotal)
	if !s.policy.Holds(inputs) {
		return false
	}
	if s.policy.Level() >= core.Level3 {
		// Level 3 sheds every tick; the span kernel does not model that.
		return false
	}
	if !s.planner.quiescent(view) {
		return false
	}
	// Shedding must stay disengaged: no visible peak the pool cannot
	// cover (same expressions, same comparison as PlanInto).
	var poolCover units.Watts
	for _, v := range view.Racks {
		poolCover += units.Min(v.BatteryMax, s.opts.PIdeal)
	}
	uncovered := smTotal - view.PDUBudget - poolCover
	if inputs.VisiblePeak && uncovered > 0 {
		return false
	}
	// Desired caps recompute to the frames the ring carries. Level < 3
	// was established above, so the cap floor is the normal one.
	floor := s.opts.CapFreq
	for i, v := range view.Racks {
		budget := s.planner.budgets[i]
		if budget == 0 {
			budget = v.Budget
		}
		covered := budget + units.Min(v.BatteryMax, s.opts.PIdeal)
		d := 0.0
		if sm := units.Watts(s.gov.smoothed[i]); sm > covered {
			d = capFreqFor(s.opts.Server, s.opts.ServersPerRack, sm, covered, floor)
		}
		if d != s.desired[i] {
			return false
		}
	}
	return s.gov.ringSettled(s.desired[:n], view.Tick)
}

// NextEvent implements sim.QuiescentPlanner; see VDEB.NextEvent — the
// refresh clock replays inside the span, and a holding policy has no
// pending transition.
func (s *PAD) NextEvent(sim.ClusterView) int { return math.MaxInt }

// SkipPlan implements sim.QuiescentPlanner.
func (s *PAD) SkipPlan(view sim.ClusterView, n int) {
	s.planner.skipPlan(view, n)
}
