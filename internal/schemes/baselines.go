package schemes

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Conv is the conventional baseline: batteries are an outage reserve and
// are never discharged for peak shaving; demand above budget hits the
// overload protection directly.
type Conv struct {
	chargers
}

// NewConv builds the conventional baseline.
func NewConv(opts Options) *Conv {
	return &Conv{chargers{opts: opts.withDefaults()}}
}

// Name implements sim.Scheme.
func (s *Conv) Name() string { return "Conv" }

// Plan implements sim.Scheme.
func (s *Conv) Plan(view sim.ClusterView) []sim.Action {
	return s.PlanInto(view, make([]sim.Action, len(view.Racks)))
}

// PlanInto implements sim.ScratchPlanner.
func (s *Conv) PlanInto(view sim.ClusterView, acts []sim.Action) []sim.Action {
	for i := range view.Racks {
		acts[i].Charge = s.planCharge(i, view.Racks)
	}
	return acts
}

// PS is the state-of-the-art peak-shaving baseline: each rack discharges
// its own battery to cover demand above its budget.
type PS struct {
	chargers
}

// NewPS builds the peak-shaving baseline.
func NewPS(opts Options) *PS {
	return &PS{chargers{opts: opts.withDefaults()}}
}

// Name implements sim.Scheme.
func (s *PS) Name() string { return "PS" }

// Plan implements sim.Scheme.
func (s *PS) Plan(view sim.ClusterView) []sim.Action {
	return s.PlanInto(view, make([]sim.Action, len(view.Racks)))
}

// PlanInto implements sim.ScratchPlanner.
func (s *PS) PlanInto(view sim.ClusterView, acts []sim.Action) []sim.Action {
	for i, v := range view.Racks {
		if need := v.Demand - v.Budget; need > 0 {
			acts[i].Discharge = units.Min(need, v.BatteryMax)
		} else {
			acts[i].Charge = s.planCharge(i, view.Racks)
		}
	}
	return acts
}

// PSPC combines PS with software power capping: when the local battery
// cannot cover the excess, processor frequency drops by a fixed 20%.
// Capping is driven by utilization monitoring, so it sees demand only
// through the capGovernor's smoother and acts after its latency — the
// blind spot hidden spikes exploit. Battery shaving stays hardware-fast.
type PSPC struct {
	chargers
	gov     capGovernor
	desired []float64 // reusable per-rack cap request scratch
}

// NewPSPC builds the PS-plus-power-capping baseline.
func NewPSPC(opts Options) *PSPC {
	return &PSPC{chargers: chargers{opts: opts.withDefaults()}}
}

// Name implements sim.Scheme.
func (s *PSPC) Name() string { return "PSPC" }

// SetMonitoringTau overrides the capping monitor's smoothing constant
// (ablation knob; the default models minutes-coarse utilization
// monitoring).
func (s *PSPC) SetMonitoringTau(tau time.Duration) { s.gov.Tau = tau }

// Plan implements sim.Scheme.
func (s *PSPC) Plan(view sim.ClusterView) []sim.Action {
	return s.PlanInto(view, make([]sim.Action, len(view.Racks)))
}

// PlanInto implements sim.ScratchPlanner.
func (s *PSPC) PlanInto(view sim.ClusterView, acts []sim.Action) []sim.Action {
	smoothed := s.gov.observe(view)
	if cap(s.desired) < len(view.Racks) {
		s.desired = make([]float64, len(view.Racks))
	}
	desired := s.desired[:len(view.Racks)]
	for i := range desired {
		desired[i] = 0
	}
	for i, v := range view.Racks {
		// Hardware shaving reacts to instantaneous excess.
		if need := v.Demand - v.Budget; need > 0 {
			acts[i].Discharge = units.Min(need, v.BatteryMax)
		} else {
			acts[i].Charge = s.planCharge(i, view.Racks)
		}
		// Software capping reacts to monitored excess the battery cannot
		// cover.
		if smoothed[i]-v.Budget > v.BatteryMax {
			desired[i] = s.opts.CapFreq
		}
	}
	applied := s.gov.submit(desired, view.Tick)
	for i := range acts {
		acts[i].Freq = applied[i]
	}
	return acts
}
