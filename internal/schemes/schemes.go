// Package schemes implements the six power-management schemes the paper
// evaluates (Table III):
//
//	Conv  — conventional: batteries held in reserve for outages only.
//	PS    — per-rack peak shaving with the local battery.
//	PSPC  — PS plus fixed DVFS power capping when the battery falls short.
//	VDEB  — PS plus the vDEB load-sharing pool (Algorithm 1).
//	UDEB  — PS plus the μDEB super-capacitor spike shaver.
//	PAD   — the full defense: vDEB + μDEB + hierarchical policy + shedding.
//
// All schemes satisfy sim.Scheme. Charging behaviour (online vs offline,
// the Figure 5 contrast) is an orthogonal knob in Options.
//
// Concurrency: a scheme instance carries per-run controller state
// (governors, pool controllers, μDEB banks) and is not safe for
// concurrent use. Construct a fresh scheme for every sim.Run; under the
// parallel sweep runner that means inside the job closure, never shared
// across jobs.
package schemes

import (
	"math"

	"repro/internal/battery"
	"repro/internal/powersim"
	"repro/internal/sim"
	"repro/internal/units"
)

// Options tune behaviour shared across schemes.
type Options struct {
	// Server is the power model used for DVFS cap computations. Zero
	// selects powersim.DL585G5.
	Server powersim.ServerModel
	// ServersPerRack is needed to translate shed power into server
	// counts. 0 selects 10.
	ServersPerRack int
	// Offline switches battery charging from online (opportunistic) to
	// offline (threshold-triggered), the Figure 5 contrast.
	Offline bool
	// OfflineThreshold is the SOC that triggers an offline recharge
	// cycle. 0 selects 0.30.
	OfflineThreshold float64
	// CapFreq is the fixed DVFS cap PSPC applies under shortfall. 0
	// selects 0.8 (the paper's 20% frequency decrease).
	CapFreq float64
	// PIdeal is the per-rack safe discharge bound Algorithm 1 enforces.
	// 0 selects half the rack nameplate implied by Server and
	// ServersPerRack.
	PIdeal units.Watts
	// ShedRatio is PAD's maximum shed fraction. 0 selects 0.03.
	ShedRatio float64
	// SleepPower is the per-server sleep draw used to size shedding
	// savings. 0 selects 20 W.
	SleepPower units.Watts
	// Strict selects PAD's strict initial policy level for the
	// [vDEB>0, μDEB==0] states.
	Strict bool
}

func (o Options) withDefaults() Options {
	if o.Server == (powersim.ServerModel{}) {
		o.Server = powersim.DL585G5
	}
	if o.ServersPerRack == 0 {
		o.ServersPerRack = 10
	}
	if o.OfflineThreshold == 0 {
		o.OfflineThreshold = 0.30
	}
	if o.CapFreq == 0 {
		o.CapFreq = 0.8
	}
	if o.PIdeal == 0 {
		o.PIdeal = o.Server.Peak * units.Watts(o.ServersPerRack) / 2
	}
	if o.ShedRatio == 0 {
		o.ShedRatio = 0.03
	}
	if o.SleepPower == 0 {
		o.SleepPower = 20
	}
	return o
}

// chargers lazily builds one charge policy per rack.
type chargers struct {
	opts     Options
	policies []battery.ChargePolicy
}

func (c *chargers) policy(i, n int) battery.ChargePolicy {
	if c.policies == nil {
		c.policies = make([]battery.ChargePolicy, n)
		for j := range c.policies {
			if c.opts.Offline {
				c.policies[j] = &battery.OfflineCharger{Threshold: c.opts.OfflineThreshold}
			} else {
				c.policies[j] = battery.OnlineCharger{}
			}
		}
	}
	return c.policies[i]
}

// planCharge computes the charge request for rack i given its view.
func (c *chargers) planCharge(i int, views []sim.RackView) units.Watts {
	v := views[i]
	headroom := v.Budget - v.Demand
	if headroom <= 0 {
		return 0
	}
	want := c.policy(i, len(views)).Plan(v.BatterySOC, headroom)
	return units.Min(want, v.BatteryMaxCharge)
}

// capFreqFor returns the DVFS frequency that brings a rack's draw from
// demand down to target, using the aggregate server model: dynamic power
// scales roughly as freq^exponent when servers saturate. The result is
// clamped to [floor, 1]; realistic capping policies bound how deep they
// will throttle production servers (PAD uses the same 20% bound as PSPC,
// per the paper's performance-guarantee claim).
func capFreqFor(model powersim.ServerModel, awakeServers int, demand, target units.Watts, floor float64) float64 {
	if floor <= 0 || floor > 1 {
		floor = 0.5
	}
	if target >= demand || demand <= 0 {
		return 1
	}
	idle := model.Idle * units.Watts(awakeServers)
	dyn := float64(demand - idle)
	dynT := float64(target - idle)
	if dyn <= 0 {
		return 1 // all idle: capping cannot help
	}
	if dynT <= 0 {
		return floor
	}
	exp := model.DVFSExponent
	if exp == 0 {
		exp = 2.4
	}
	f := math.Pow(dynT/dyn, 1/exp)
	if f < floor {
		return floor
	}
	if f > 1 {
		return 1
	}
	return f
}
