package schemes

import (
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// PAD is the full Power Attack Defense: the vDEB pool hides vulnerable
// racks from visible peaks, the μDEB banks catch hidden spikes in
// hardware, and the three-level security policy escalates to precise
// power capping (Level 2 fallback) and minimal load shedding (Level 3)
// only when the energy backups are exhausted.
type PAD struct {
	chargers
	planner *vdebPlanner
	gov     capGovernor
	shedder *core.Shedder
	policy  *core.Policy

	// Per-tick scratch, reused across PlanInto calls.
	desired []float64
	socs    []float64
}

// NewPAD builds the full defense.
func NewPAD(opts Options) *PAD {
	opts = opts.withDefaults()
	saving := opts.Server.Power(0.5, 1) - opts.SleepPower
	shedder, err := core.NewShedder(opts.ShedRatio, saving)
	if err != nil {
		panic(err) // defaults guarantee valid arguments
	}
	return &PAD{
		chargers: chargers{opts: opts},
		planner:  newVDEBPlanner(opts),
		shedder:  shedder,
	}
}

// Name implements sim.Scheme.
func (s *PAD) Name() string { return "PAD" }

// SetMonitoringTau overrides the capping monitor's smoothing constant
// (ablation knob).
func (s *PAD) SetMonitoringTau(tau time.Duration) { s.gov.Tau = tau }

// Level implements sim.LevelReporter.
func (s *PAD) Level() core.Level {
	if s.policy == nil {
		return core.Level1
	}
	return s.policy.Level()
}

// Plan implements sim.Scheme.
func (s *PAD) Plan(view sim.ClusterView) []sim.Action {
	return s.PlanInto(view, make([]sim.Action, len(view.Racks)))
}

// PlanInto implements sim.ScratchPlanner.
func (s *PAD) PlanInto(view sim.ClusterView, scratch []sim.Action) []sim.Action {
	smoothed := s.gov.observe(view)
	inputs := s.policyInputs(view, smoothedTotal(smoothed))
	if s.policy == nil {
		// The first tick selects the Figure-9 initial state; stepping the
		// fresh policy with the same inputs would double-apply them (a
		// strict L2 start would fall straight to L3).
		s.policy = core.NewPolicy(s.opts.Strict, inputs)
	} else {
		s.policy.Step(inputs)
	}
	level := s.policy.Level()

	// The vDEB pool runs at every level; with the pool drained its
	// allocations collapse to zero on their own.
	acts := s.planner.planInto(view, &s.chargers, scratch)

	// Keep the μDEB banks topped up from headroom at all levels.
	for i, v := range view.Racks {
		if v.MicroSOC >= 0 && v.MicroSOC < 1 && acts[i].Discharge == 0 {
			if headroom := acts[i].Budget - v.Demand; headroom > 0 {
				acts[i].MicroCharge = headroom
			}
		}
	}

	// Precise software capping as the fallback for sustained excess the
	// pool cannot shave: it engages only when a rack's monitored demand
	// exceeds its (possibly raised) budget plus what its battery can
	// actually deliver, so capping stays rare while backups are healthy.
	// The governor imposes monitoring smoothing and actuation latency, so
	// hidden spikes still slip through to the μDEB — capping protects
	// against sustained overload only.
	// In Level 3 the cap floor drops one step below normal operation
	// (25% instead of 20%): the paper's emergency state accepts a little
	// more performance loss to prevent an outage, which costs far more.
	floor := s.opts.CapFreq
	if level >= core.Level3 {
		floor -= 0.05
	}
	if cap(s.desired) < len(view.Racks) {
		s.desired = make([]float64, len(view.Racks))
	}
	desired := s.desired[:len(view.Racks)]
	for i := range desired {
		desired[i] = 0
	}
	for i, v := range view.Racks {
		budget := acts[i].Budget
		if budget == 0 {
			budget = v.Budget
		}
		covered := budget + units.Min(v.BatteryMax, s.opts.PIdeal)
		if smoothed[i] > covered {
			desired[i] = capFreqFor(s.opts.Server, s.opts.ServersPerRack,
				smoothed[i], covered, floor)
		}
	}
	applied := s.gov.submit(desired, view.Tick)
	for i := range acts {
		acts[i].Freq = applied[i]
	}

	// Load shedding, the last resort: engage in Level 3, and also during
	// cluster-wide visible peaks that the battery pool can no longer
	// cover — the paper's "extreme cases when cluster-wide power peaks
	// appear". The shed target erases the uncovered shortfall plus a
	// small recharge reserve so the exhausted backups can recover.
	var poolCover units.Watts
	for _, v := range view.Racks {
		poolCover += units.Min(v.BatteryMax, s.opts.PIdeal)
	}
	shortfall := smoothedTotal(smoothed) - view.PDUBudget
	uncovered := shortfall - poolCover
	if level >= core.Level3 || (inputs.VisiblePeak && uncovered > 0) {
		if cap(s.socs) < len(view.Racks) {
			s.socs = make([]float64, len(view.Racks))
		}
		socs := s.socs[:len(view.Racks)]
		for i, v := range view.Racks {
			socs[i] = v.BatterySOC
		}
		target := uncovered + view.PDUBudget/50
		if level >= core.Level3 && shortfall+view.PDUBudget/50 > target {
			target = shortfall + view.PDUBudget/50
		}
		if target > 0 {
			counts, _ := s.shedder.Plan(target, socs, s.opts.ServersPerRack,
				s.opts.ServersPerRack*len(view.Racks))
			for i := range acts {
				acts[i].ShedServers = counts[i]
			}
		}
	}
	return acts
}

// policyInputs derives the Figure-9 signals from the cluster view. The
// vDEB level is a deliverability measure — how much of the per-rack safe
// discharge power (PIdeal) each battery could actually sustain — rather
// than raw state of charge: a lead-acid bank whose available well has
// collapsed is "empty" for defense purposes long before its nominal SOC
// reads zero, and that is what a battery-management system senses through
// terminal voltage.
func (s *PAD) policyInputs(view sim.ClusterView, monitoredTotal units.Watts) core.PolicyInputs {
	var vdeb float64
	var micro float64
	microCount := 0
	for _, v := range view.Racks {
		avail := 1.0
		if s.opts.PIdeal > 0 {
			avail = float64(v.BatteryMax) / float64(s.opts.PIdeal)
			if avail > 1 {
				avail = 1
			}
		}
		vdeb += avail
		if v.MicroSOC >= 0 {
			micro += v.MicroSOC
			microCount++
		}
	}
	if len(view.Racks) > 0 {
		vdeb /= float64(len(view.Racks))
	}
	if microCount > 0 {
		micro /= float64(microCount)
	} else {
		micro = 1 // no μDEB installed: treat as never the binding signal
	}
	return core.PolicyInputs{
		VDEBSOC:     vdeb,
		MicroSOC:    micro,
		VisiblePeak: monitoredTotal > view.PDUBudget,
	}
}
