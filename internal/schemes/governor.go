package schemes

import (
	"math"
	"time"

	"repro/internal/fixedstep"
	"repro/internal/sim"
	"repro/internal/units"
)

// capGovernor models the software power-capping loop the paper faults for
// missing hidden spikes: it observes demand only through an EWMA smoother
// (utilization-based monitoring cannot see sub-second structure) and its
// frequency decisions take effect after an actuation delay (the paper
// cites 100–300 ms for full-system capping). Battery and μDEB responses
// are hardware-speed and bypass this governor entirely.
type capGovernor struct {
	// Tau is the monitoring smoothing constant. 0 selects 60 s:
	// utilization-based power monitoring integrates over coarse windows
	// (the paper cites minutes), which is precisely why sudden load jumps
	// and hidden spikes beat software capping.
	Tau time.Duration
	// Delay is the actuation latency. 0 selects 300 ms.
	Delay time.Duration

	smoothed []float64     // per-rack smoothed demand, watts
	obsOut   []units.Watts // reusable observe result, valid until next observe
	// The actuation delay line is a ring of depth+1 reusable slots: a
	// submit copies desired into the tail slot and returns the head slot
	// (or the shared zero slice while the line fills). Returned slices
	// are owned by the governor and valid until the slot cycles back
	// around, i.e. at least until the next submit.
	ring     [][]float64
	ringHead int
	ringLen  int
	zeros    []float64

	// Cached per-tick EWMA weight (fixed-timestep kernel layer): alpha
	// depends only on the constant tick and the smoothing constant, so it
	// is derived once per run instead of one math.Exp per observe. Tau is
	// settable between runs (SetMonitoringTau), so the slot re-keys on it.
	alphaKey fixedstep.Key
	alphaTau time.Duration
	alpha    float64
}

// alphaFor returns 1-exp(-tick/tau), recomputing only when the tick or
// the smoothing constant changed.
func (g *capGovernor) alphaFor(tick time.Duration) float64 {
	if tau := g.tau(); !g.alphaKey.Hit(tick) || g.alphaTau != tau {
		g.alphaTau = tau
		g.alpha = 1 - math.Exp(-tick.Seconds()/tau.Seconds())
	}
	return g.alpha
}

func (g *capGovernor) tau() time.Duration {
	if g.Tau == 0 {
		return 60 * time.Second
	}
	return g.Tau
}

func (g *capGovernor) delay() time.Duration {
	if g.Delay == 0 {
		return 300 * time.Millisecond
	}
	return g.Delay
}

// observe updates the smoothed demand estimates and returns them. The
// returned slice is owned by the governor and valid until the next
// observe call.
func (g *capGovernor) observe(view sim.ClusterView) []units.Watts {
	n := len(view.Racks)
	if g.smoothed == nil {
		g.smoothed = make([]float64, n)
		for i, v := range view.Racks {
			g.smoothed[i] = float64(v.Demand) // seed from first sight
		}
		g.obsOut = make([]units.Watts, n)
	}
	alpha := g.alphaFor(view.Tick)
	out := g.obsOut[:n]
	for i, v := range view.Racks {
		g.smoothed[i] += alpha * (float64(v.Demand) - g.smoothed[i])
		out[i] = units.Watts(g.smoothed[i])
	}
	return out
}

// submit enqueues this tick's desired frequencies and returns the
// frequencies that actually take effect now (decisions from Delay ago;
// 0 entries mean uncapped). The returned slice is owned by the governor
// and valid until the next submit call.
func (g *capGovernor) submit(desired []float64, tick time.Duration) []float64 {
	depth := 0
	if tick > 0 {
		depth = int(g.delay() / tick)
	}
	if len(g.ring) < depth+1 {
		// First call (or a tick change mid-run, which never happens inside
		// one simulation): grow the ring, preserving queue order.
		grown := make([][]float64, depth+1)
		for i := 0; i < g.ringLen; i++ {
			grown[i] = g.ring[(g.ringHead+i)%len(g.ring)]
		}
		g.ring = grown
		g.ringHead = 0
	}
	tail := (g.ringHead + g.ringLen) % len(g.ring)
	if g.ring[tail] == nil {
		g.ring[tail] = make([]float64, len(desired))
	}
	copy(g.ring[tail], desired)
	g.ringLen++
	if g.ringLen <= depth {
		if g.zeros == nil {
			g.zeros = make([]float64, len(desired))
		}
		return g.zeros // nothing actuated yet
	}
	head := g.ring[g.ringHead]
	g.ringHead = (g.ringHead + 1) % len(g.ring)
	g.ringLen--
	return head
}

// smoothedTotal sums the smoothed per-rack demands.
func smoothedTotal(sm []units.Watts) units.Watts {
	var t units.Watts
	for _, v := range sm {
		t += v
	}
	return t
}
