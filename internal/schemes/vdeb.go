package schemes

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// vdebPlanner holds the shared vDEB pooling logic used by the VDEB scheme
// and by PAD: a 1-second software refresh of Algorithm-1 discharge caps
// and iPDU soft-limit reassignments, applied tick by tick in between.
type vdebPlanner struct {
	opts Options
	ctrl *core.VDEBController

	// BudgetStretch caps how far a rack's soft limit may be raised above
	// its default, modeling the physical wiring limit of the rack feed.
	budgetStretch float64
	refreshEvery  time.Duration

	lastRefresh time.Duration
	started     bool
	allocCap    []units.Watts
	budgets     []units.Watts

	// Refresh scratch, reused across the 1-second recomputations.
	socs     []float64
	alloc    []units.Watts
	expected []units.Watts

	// Quiescence scratch: the recompute-and-compare check writes a trial
	// refresh here (never into the live allocCap/budgets), and the values
	// a settled refresh would trace are frozen for skipPlan to synthesize
	// the span's KindVDEBAlloc records from.
	checkCap     []units.Watts
	checkBudgets []units.Watts
	qShave       units.Watts
	qAlloc       units.Watts
}

func newVDEBPlanner(opts Options) *vdebPlanner {
	ctrl, err := core.NewVDEBController(opts.PIdeal)
	if err != nil {
		panic(err) // opts.withDefaults guarantees a positive PIdeal
	}
	return &vdebPlanner{
		opts:          opts,
		ctrl:          ctrl,
		budgetStretch: 1.2,
		refreshEvery:  time.Second,
	}
}

// refresh recomputes discharge caps and soft limits from the current view.
func (p *vdebPlanner) refresh(view sim.ClusterView) {
	pShave, allocSum := p.computeInto(view, &p.allocCap, &p.budgets)
	// Each Algorithm-1 refresh is a planning decision worth a trace
	// record: the pool-wide shave demand against the discharge capacity
	// the pool could actually commit (runs at the 1 s refresh cadence,
	// not per tick, and Emit is nil-safe when tracing is off).
	if view.Trace != nil && view.Tick > 0 {
		view.Trace.Emit(obs.Event{
			Tick: int64(view.Time / view.Tick),
			Rack: -1,
			Kind: obs.KindVDEBAlloc,
			A:    float64(pShave),
			B:    float64(allocSum),
		})
	}
}

// computeInto is one Algorithm-1 refresh computation against view,
// writing the per-rack discharge caps into *capOut and soft limits into
// *budgetOut (sized to the rack count as needed). refresh applies it to
// the live planner arrays; the quiescence check applies the very same
// code to trial arrays and compares — sharing the body is what makes the
// recompute-and-compare certification impossible to desynchronize. It
// returns the pool shave demand and committed discharge capacity the
// refresh trace record reports.
func (p *vdebPlanner) computeInto(view sim.ClusterView, capOut, budgetOut *[]units.Watts) (pShave, allocSum units.Watts) {
	n := len(view.Racks)
	if len(p.socs) != n {
		p.socs = make([]float64, n)
		p.alloc = make([]units.Watts, n)
		p.expected = make([]units.Watts, n)
	}
	if len(*capOut) != n {
		*capOut = make([]units.Watts, n)
	}
	if len(*budgetOut) != n {
		*budgetOut = make([]units.Watts, n)
	}
	caps, budgets := *capOut, *budgetOut
	socs := p.socs
	for i, v := range view.Racks {
		socs[i] = v.BatterySOC
	}
	pShave = view.TotalDemand - view.PDUBudget
	if pShave < 0 {
		pShave = 0
	}
	alloc := p.ctrl.AllocateInto(p.alloc, socs, pShave)
	expected := p.expected
	var expectedSum units.Watts
	for i, v := range view.Racks {
		cap_ := units.Min(alloc[i], v.BatteryMax)
		cap_ = units.Min(cap_, v.Demand)
		caps[i] = cap_
		allocSum += cap_
		expected[i] = v.Demand - cap_
		// When capping or shedding already holds the rack's actual draw
		// below its raw demand (the iPDU outlet meter reports LastDraw),
		// budget for the real draw — otherwise every soft limit would be
		// sized for demand nobody is allowed to realize, starving the
		// slack pool.
		if v.LastDraw > 0 && v.LastDraw < expected[i] {
			expected[i] = v.LastDraw
		}
		expectedSum += expected[i]
	}
	slack := view.PDUBudget - expectedSum
	perRackBonus := units.Watts(0)
	if slack > 0 {
		perRackBonus = slack / units.Watts(n)
	}
	var budgetSum units.Watts
	for i, v := range view.Racks {
		b := expected[i] + perRackBonus
		// The wiring of a rack feed bounds how far capacity sharing can
		// raise its limit.
		maxB := units.Watts(float64(v.Budget) * p.budgetStretch)
		if b > maxB {
			b = maxB
		}
		budgets[i] = b
		budgetSum += b
	}
	// Eq. 2: assignments must fit under the PDU budget. When the pool can
	// no longer cover the shave demand (slack < 0) the proportional
	// scale-down here keeps each rack's soft limit consistent with what
	// the capping/shedding fallbacks will be asked to reach, instead of
	// letting the engine clamp limits below the draws we planned.
	if budgetSum > view.PDUBudget {
		scale := float64(view.PDUBudget) / float64(budgetSum)
		for i := range budgets {
			budgets[i] = units.Watts(float64(budgets[i]) * scale)
		}
	}
	return pShave, allocSum
}

// planInto produces the per-rack pooling actions for this tick in acts,
// which must hold len(view.Racks) zeroed entries.
func (p *vdebPlanner) planInto(view sim.ClusterView, ch *chargers, acts []sim.Action) []sim.Action {
	if !p.started || view.Time-p.lastRefresh >= p.refreshEvery {
		p.refresh(view)
		p.lastRefresh = view.Time
		p.started = true
	}
	for i, v := range view.Racks {
		acts[i].Budget = p.budgets[i]
		excess := v.Demand - p.budgets[i]
		if excess > 0 {
			// Hardware shaving within the software-assigned duty cap; the
			// rack's own battery may exceed its Algorithm-1 share to catch
			// a spike, but never its safe bound.
			duty := units.Max(p.allocCap[i], units.Min(excess, p.ctrl.PIdeal))
			acts[i].Discharge = units.Min(units.Min(excess, duty), v.BatteryMax)
		} else if ch != nil {
			headroom := p.budgets[i] - v.Demand
			want := ch.policy(i, len(view.Racks)).Plan(v.BatterySOC, headroom)
			acts[i].Charge = units.Min(want, v.BatteryMaxCharge)
		}
	}
	return acts
}

// VDEB is the vDEB-only design: peak shaving plus the Algorithm-1 load
// sharing pool that eliminates vulnerable racks.
type VDEB struct {
	chargers
	planner *vdebPlanner
}

// NewVDEB builds the vDEB-only scheme.
func NewVDEB(opts Options) *VDEB {
	opts = opts.withDefaults()
	return &VDEB{
		chargers: chargers{opts: opts},
		planner:  newVDEBPlanner(opts),
	}
}

// Name implements sim.Scheme.
func (s *VDEB) Name() string { return "vDEB" }

// Plan implements sim.Scheme.
func (s *VDEB) Plan(view sim.ClusterView) []sim.Action {
	return s.PlanInto(view, make([]sim.Action, len(view.Racks)))
}

// PlanInto implements sim.ScratchPlanner.
func (s *VDEB) PlanInto(view sim.ClusterView, acts []sim.Action) []sim.Action {
	return s.planner.planInto(view, &s.chargers, acts)
}

// UDEB is the μDEB-only design: per-rack peak shaving (as PS) with the
// super-capacitor spike shaver installed; the scheme keeps the banks
// topped up from headroom. The banks themselves act in hardware inside
// the engine.
type UDEB struct {
	chargers
}

// NewUDEB builds the μDEB-only scheme.
func NewUDEB(opts Options) *UDEB {
	return &UDEB{chargers{opts: opts.withDefaults()}}
}

// Name implements sim.Scheme.
func (s *UDEB) Name() string { return "uDEB" }

// Plan implements sim.Scheme.
func (s *UDEB) Plan(view sim.ClusterView) []sim.Action {
	return s.PlanInto(view, make([]sim.Action, len(view.Racks)))
}

// PlanInto implements sim.ScratchPlanner.
func (s *UDEB) PlanInto(view sim.ClusterView, acts []sim.Action) []sim.Action {
	for i, v := range view.Racks {
		if need := v.Demand - v.Budget; need > 0 {
			acts[i].Discharge = units.Min(need, v.BatteryMax)
		} else {
			acts[i].Charge = s.planCharge(i, view.Racks)
			if v.MicroSOC >= 0 && v.MicroSOC < 1 {
				acts[i].MicroCharge = v.Budget - v.Demand
			}
		}
	}
	return acts
}
