package schemes

import (
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/virus"
)

// TestPADLifecycle runs a full attack through the engine and checks the
// recorded security-level trajectory: Normal while the pool covers the
// drain, Minor Incident once it collapses, Emergency when the μDEB is
// gone too — the Figure 9 narrative end to end.
func TestPADLifecycle(t *testing.T) {
	const racks, spr = 4, 10
	horizon := 20 * time.Minute
	bg := noisyBackground(racks, spr, 0.72, 99)
	cfg := sim.Config{
		Racks:              racks,
		ServersPerRack:     spr,
		Tick:               200 * time.Millisecond,
		Duration:           horizon,
		OvershootTolerance: 0.04,
		Background:         bg,
		// Small cabinets so the pool collapses inside the window.
		BatteryFactory: func(nameplate units.Watts) battery.Store {
			cap_ := battery.SizeForAutonomy(nameplate, battery.RackCabinetAutonomy, 0, 0) / 4
			b := battery.MustKiBaM(battery.KiBaMConfig{
				Capacity:     cap_,
				MaxDischarge: nameplate * 2,
				MaxCharge:    units.Watts(float64(cap_) / 900),
			})
			return battery.NewLVD(b, 0.05, 0.20)
		},
		MicroDEBFactory: func(nameplate, budget units.Watts) *core.MicroDEB {
			bank := battery.NewMicroDEB(units.WattHours(0.3).Joules(), nameplate)
			u, err := core.NewMicroDEB(bank, budget)
			if err != nil {
				t.Fatal(err)
			}
			return u
		},
		Attack: &sim.AttackSpec{
			Servers: []int{0, 1, 2, 3},
			Attack: virus.MustNew(virus.Config{
				Profile:         virus.CPUIntensive,
				PrepDuration:    5 * time.Second,
				MaxPhaseI:       2 * time.Minute,
				SpikeWidth:      4 * time.Second,
				SpikesPerMinute: 6,
			}),
		},
		Record:       true,
		RecordStep:   5 * time.Second,
		DisableTrips: true,
	}
	res, err := sim.Run(cfg, NewPAD(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[core.Level]bool{}
	prevMax := core.Level1
	firstL2, firstL3 := -1, -1
	for i, lvl := range res.Recording.Levels {
		seen[lvl] = true
		if lvl == core.Level2 && firstL2 < 0 {
			firstL2 = i
		}
		if lvl == core.Level3 && firstL3 < 0 {
			firstL3 = i
		}
		if lvl > prevMax {
			prevMax = lvl
		}
	}
	if !seen[core.Level1] {
		t.Error("run never passed through L1")
	}
	if !seen[core.Level2] {
		t.Error("pool collapse never reached L2")
	}
	if !seen[core.Level3] {
		t.Error("μDEB exhaustion never reached L3")
	}
	if firstL2 >= 0 && firstL3 >= 0 && firstL3 < firstL2 {
		t.Errorf("L3 (%d) before L2 (%d): escalation out of order", firstL3, firstL2)
	}
	// Escalation eventually sheds.
	if res.MeanShedRatio <= 0 {
		t.Error("L3 never shed any servers")
	}
	if res.EnergyFromMicro <= 0 {
		t.Error("the μDEB never shaved anything")
	}
}

// TestVDEBSaturatedPoolEvenDuty checks Algorithm 1's saturated branch
// through the scheme: with shave demand beyond n×PIdeal every rack is
// asked for exactly PIdeal.
func TestVDEBSaturatedPoolEvenDuty(t *testing.T) {
	s := NewVDEB(Options{PIdeal: 200})
	view := sim.ClusterView{
		Tick:        100 * time.Millisecond,
		PDUBudget:   6000,
		TotalDemand: 9000, // shave 3000 >> 2×200
		Racks: []sim.RackView{
			{Demand: 4500, Budget: 3000, BatterySOC: 0.9, BatteryMax: 5000, BatteryMaxCharge: 100},
			{Demand: 4500, Budget: 3000, BatterySOC: 0.2, BatteryMax: 5000, BatteryMaxCharge: 100},
		},
	}
	acts := s.Plan(view)
	for i, a := range acts {
		if a.Discharge != 200 {
			t.Errorf("rack %d discharge = %v, want the even 200", i, a.Discharge)
		}
	}
}

// TestUDEBRequestsMicroCharge checks the μDEB-only scheme keeps its banks
// topped up from headroom.
func TestUDEBRequestsMicroCharge(t *testing.T) {
	s := NewUDEB(Options{})
	view := sim.ClusterView{
		Tick:        100 * time.Millisecond,
		PDUBudget:   8000,
		TotalDemand: 4000,
		Racks: []sim.RackView{
			{Demand: 2000, Budget: 4000, BatterySOC: 1, BatteryMax: 2000,
				BatteryMaxCharge: 100, MicroSOC: 0.5},
			{Demand: 2000, Budget: 4000, BatterySOC: 1, BatteryMax: 2000,
				BatteryMaxCharge: 100, MicroSOC: 1.0},
		},
	}
	acts := s.Plan(view)
	if acts[0].MicroCharge <= 0 {
		t.Error("drained μDEB should request recharge")
	}
	if acts[1].MicroCharge != 0 {
		t.Error("full μDEB should not request recharge")
	}
}

// TestPADStrictOptionStartsAtL2 exercises Figure 9's organization choice
// for the [vDEB>0, μDEB==0] initial state.
func TestPADStrictOptionStartsAtL2(t *testing.T) {
	mk := func(strict bool) core.Level {
		s := NewPAD(Options{Strict: strict})
		view := sim.ClusterView{
			Tick:        100 * time.Millisecond,
			PDUBudget:   8000,
			TotalDemand: 4000,
			Racks: []sim.RackView{
				// Healthy battery, drained μDEB.
				{Demand: 4000, Budget: 4000, BatterySOC: 1, BatteryMax: 5000,
					BatteryMaxCharge: 100, MicroSOC: 0.01},
			},
		}
		s.Plan(view)
		return s.Level()
	}
	if got := mk(false); got != core.Level1 {
		t.Errorf("lax initial level = %v, want L1", got)
	}
	if got := mk(true); got != core.Level2 {
		t.Errorf("strict initial level = %v, want L2", got)
	}
}
