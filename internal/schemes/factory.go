package schemes

import (
	"fmt"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// SchemeNames lists the six evaluated schemes in the paper's Table III
// order — the names ByName accepts.
var SchemeNames = []string{"Conv", "PS", "PSPC", "uDEB", "vDEB", "PAD"}

// ByName constructs a fresh instance of the named scheme. Scheme
// instances carry per-run controller state, so every sim.Run (and every
// online padd session) needs its own.
func ByName(name string, opts Options) (sim.Scheme, error) {
	switch name {
	case "Conv":
		return NewConv(opts), nil
	case "PS":
		return NewPS(opts), nil
	case "PSPC":
		return NewPSPC(opts), nil
	case "uDEB":
		return NewUDEB(opts), nil
	case "vDEB":
		return NewVDEB(opts), nil
	case "PAD":
		return NewPAD(opts), nil
	default:
		return nil, fmt.Errorf("schemes: unknown scheme %q (want one of %v)", name, SchemeNames)
	}
}

// NeedsMicroDEB reports whether the named scheme deploys μDEB hardware
// on every rack (uDEB and the full PAD defense).
func NeedsMicroDEB(name string) bool { return name == "uDEB" || name == "PAD" }

// MicroDEBFactory returns a sim.Config.MicroDEBFactory deploying on each
// rack a μDEB bank holding the given fraction of the rack battery's
// energy — the sizing the paper's evaluation and cmd/padsim use.
func MicroDEBFactory(fraction float64) func(nameplate, budget units.Watts) *core.MicroDEB {
	return func(nameplate, budget units.Watts) *core.MicroDEB {
		cap_ := battery.SizeForAutonomy(nameplate, battery.RackCabinetAutonomy, 0, 0)
		bank := battery.NewMicroDEB(units.Joules(float64(cap_)*fraction), nameplate)
		u, err := core.NewMicroDEB(bank, budget)
		if err != nil {
			panic(err) // nameplate-derived sizes are always valid
		}
		return u
	}
}
