package schemes

import (
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/virus"
)

// noisyBackground builds per-server utilization series around mean u with
// small deterministic wander, at 10 s resolution.
func noisyBackground(racks, spr int, u float64, seed uint64) []*stats.Series {
	rng := stats.NewRNG(seed)
	out := make([]*stats.Series, racks*spr)
	for i := range out {
		r := rng.Split(uint64(i))
		s := stats.NewSeries(10 * time.Second)
		level := u
		for k := 0; k < 400; k++ { // ~66 minutes
			level += r.Norm(0, 0.03)
			if level < u-0.15 {
				level = u - 0.15
			}
			if level > u+0.15 {
				level = u + 0.15
			}
			s.Append(level)
		}
		out[i] = s
	}
	return out
}

// attackConfig builds a standard dense CPU attack on rack 0.
func attackConfig(racks, spr int, seed uint64) *sim.AttackSpec {
	servers := make([]int, 4)
	for i := range servers {
		servers[i] = i // four servers of rack 0
	}
	return &sim.AttackSpec{
		Servers: servers,
		Attack: virus.MustNew(virus.Config{
			Profile:         virus.CPUIntensive,
			SpikeWidth:      4 * time.Second,
			SpikesPerMinute: 6,
			PrepDuration:    5 * time.Second,
			MaxPhaseI:       4 * time.Minute,
			Seed:            seed,
		}),
	}
}

// runScheme executes a survival run for the scheme under a dense attack.
func runScheme(t *testing.T, s sim.Scheme, micro bool, duration time.Duration) *sim.Result {
	t.Helper()
	cfg := sim.Config{
		Racks:          6,
		ServersPerRack: 10,
		Tick:           200 * time.Millisecond,
		Duration:       duration,
		Background:     noisyBackground(6, 10, 0.55, 99),
		Attack:         attackConfig(6, 10, 7),
		StopOnTrip:     true,
	}
	if micro {
		cfg.MicroDEBFactory = func(nameplate, budget units.Watts) *core.MicroDEB {
			bank := battery.NewMicroDEB(units.WattHours(2).Joules(), nameplate)
			u, err := core.NewMicroDEB(bank, budget)
			if err != nil {
				t.Fatal(err)
			}
			return u
		}
	}
	res, err := sim.Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSchemeNames(t *testing.T) {
	opts := Options{}
	names := map[string]sim.Scheme{
		"Conv": NewConv(opts), "PS": NewPS(opts), "PSPC": NewPSPC(opts),
		"vDEB": NewVDEB(opts), "uDEB": NewUDEB(opts), "PAD": NewPAD(opts),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestActionShapes(t *testing.T) {
	view := sim.ClusterView{
		Tick:      100 * time.Millisecond,
		PDUBudget: 10000,
		Racks: []sim.RackView{
			{Demand: 3000, Budget: 2500, BatterySOC: 0.9, BatteryMax: 2000, BatteryMaxCharge: 300, MicroSOC: 0.8},
			{Demand: 2000, Budget: 2500, BatterySOC: 0.4, BatteryMax: 2000, BatteryMaxCharge: 300, MicroSOC: 0.8},
		},
	}
	view.TotalDemand = 5000
	for _, s := range []sim.Scheme{
		NewConv(Options{}), NewPS(Options{}), NewPSPC(Options{}),
		NewVDEB(Options{}), NewUDEB(Options{}), NewPAD(Options{}),
	} {
		acts := s.Plan(view)
		if len(acts) != 2 {
			t.Fatalf("%s: %d actions for 2 racks", s.Name(), len(acts))
		}
		for i, a := range acts {
			if a.Discharge < 0 || a.Charge < 0 || a.ShedServers < 0 {
				t.Errorf("%s rack %d: negative action %+v", s.Name(), i, a)
			}
		}
	}
}

func TestConvNeverDischarges(t *testing.T) {
	view := sim.ClusterView{
		Tick:        100 * time.Millisecond,
		PDUBudget:   4000,
		TotalDemand: 6000,
		Racks: []sim.RackView{
			{Demand: 6000, Budget: 4000, BatterySOC: 1, BatteryMax: 5000},
		},
	}
	acts := NewConv(Options{}).Plan(view)
	if acts[0].Discharge != 0 {
		t.Fatalf("Conv discharged %v", acts[0].Discharge)
	}
}

func TestPSDischargesExcessOnly(t *testing.T) {
	s := NewPS(Options{})
	view := sim.ClusterView{
		Tick:      100 * time.Millisecond,
		PDUBudget: 8000,
		Racks: []sim.RackView{
			{Demand: 3000, Budget: 2500, BatterySOC: 1, BatteryMax: 5000, BatteryMaxCharge: 100},
			{Demand: 2000, Budget: 2500, BatterySOC: 0.5, BatteryMax: 5000, BatteryMaxCharge: 100},
		},
		TotalDemand: 5000,
	}
	acts := s.Plan(view)
	if acts[0].Discharge != 500 {
		t.Fatalf("rack 0 discharge = %v, want 500", acts[0].Discharge)
	}
	if acts[1].Discharge != 0 {
		t.Fatalf("rack 1 discharge = %v, want 0", acts[1].Discharge)
	}
	if acts[1].Charge <= 0 {
		t.Fatal("rack 1 should charge from headroom")
	}
	// Battery-limited rack cannot discharge more than available.
	view.Racks[0].BatteryMax = 200
	acts = NewPS(Options{}).Plan(view)
	if acts[0].Discharge != 200 {
		t.Fatalf("battery-limited discharge = %v, want 200", acts[0].Discharge)
	}
}

func TestPSPCCapsAfterLatency(t *testing.T) {
	s := NewPSPC(Options{})
	view := sim.ClusterView{
		Tick:        100 * time.Millisecond,
		PDUBudget:   4000,
		TotalDemand: 6000,
		Racks: []sim.RackView{
			{Demand: 6000, Budget: 4000, BatterySOC: 0, BatteryMax: 0},
		},
	}
	// First ticks: smoothing has seeded at 6000 (over budget, battery
	// empty) but actuation is delayed.
	acts := s.Plan(view)
	if acts[0].Freq != 0 {
		t.Fatalf("cap applied with no latency: freq %v", acts[0].Freq)
	}
	var freq float64
	for i := 0; i < 10; i++ {
		view.Time += view.Tick
		freq = s.Plan(view)[0].Freq
	}
	if freq != 0.8 {
		t.Fatalf("cap after latency = %v, want 0.8", freq)
	}
}

func TestPSPCDoesNotCapWhenBatteryCovers(t *testing.T) {
	s := NewPSPC(Options{})
	view := sim.ClusterView{
		Tick:        100 * time.Millisecond,
		PDUBudget:   4000,
		TotalDemand: 5000,
		Racks: []sim.RackView{
			{Demand: 5000, Budget: 4000, BatterySOC: 1, BatteryMax: 3000, BatteryMaxCharge: 100},
		},
	}
	var freq float64
	for i := 0; i < 10; i++ {
		view.Time += view.Tick
		freq = s.Plan(view)[0].Freq
	}
	if freq != 0 {
		t.Fatalf("capped despite healthy battery: freq %v", freq)
	}
}

func TestVDEBShiftsDutyToHealthyRacks(t *testing.T) {
	s := NewVDEB(Options{})
	view := sim.ClusterView{
		Tick:        100 * time.Millisecond,
		PDUBudget:   7000,
		TotalDemand: 8000,
		Racks: []sim.RackView{
			{Demand: 4000, Budget: 3500, BatterySOC: 0.05, BatteryMax: 2000, BatteryMaxCharge: 100},
			{Demand: 4000, Budget: 3500, BatterySOC: 0.95, BatteryMax: 2000, BatteryMaxCharge: 100},
		},
	}
	acts := s.Plan(view)
	if acts[1].Discharge <= acts[0].Discharge {
		t.Fatalf("healthy rack should carry the duty: %v vs %v",
			acts[1].Discharge, acts[0].Discharge)
	}
	// The vulnerable rack's soft limit is raised above its default.
	if acts[0].Budget <= view.Racks[0].Budget {
		t.Fatalf("vulnerable rack budget not raised: %v", acts[0].Budget)
	}
}

func TestVDEBBudgetStretchBounded(t *testing.T) {
	s := NewVDEB(Options{})
	view := sim.ClusterView{
		Tick:        100 * time.Millisecond,
		PDUBudget:   50000, // huge slack
		TotalDemand: 4000,
		Racks: []sim.RackView{
			{Demand: 4000, Budget: 3500, BatterySOC: 1, BatteryMax: 2000, BatteryMaxCharge: 100},
		},
	}
	acts := s.Plan(view)
	if acts[0].Budget > units.Watts(3500*1.2)+1 {
		t.Fatalf("budget %v exceeds the 1.2x wiring stretch", acts[0].Budget)
	}
}

func TestPADReportsLevels(t *testing.T) {
	// ShedRatio raised because 3% of this 20-server test cluster rounds
	// to zero servers.
	s := NewPAD(Options{ShedRatio: 0.25})
	if s.Level() != core.Level1 {
		t.Fatal("pre-run level should default to L1")
	}
	view := sim.ClusterView{
		Tick:        100 * time.Millisecond,
		PDUBudget:   8000,
		TotalDemand: 6000,
		Racks: []sim.RackView{
			{Demand: 3000, Budget: 4000, BatterySOC: 1, BatteryMax: 2000, BatteryMaxCharge: 100, MicroSOC: 1},
			{Demand: 3000, Budget: 4000, BatterySOC: 1, BatteryMax: 2000, BatteryMaxCharge: 100, MicroSOC: 1},
		},
	}
	s.Plan(view)
	if s.Level() != core.Level1 {
		t.Fatalf("healthy cluster level = %v", s.Level())
	}
	// Drain everything: escalates through L2 to L3 and sheds.
	for i := range view.Racks {
		view.Racks[i].BatterySOC = 0.01
		view.Racks[i].BatteryMax = 0
	}
	s.Plan(view)
	if s.Level() != core.Level2 {
		t.Fatalf("drained pool level = %v, want L2", s.Level())
	}
	for i := range view.Racks {
		view.Racks[i].MicroSOC = 0.01
	}
	view.TotalDemand = 9000
	view.Racks[0].Demand = 4500
	view.Racks[1].Demand = 4500
	var acts []sim.Action
	// The monitoring smoother has a 60 s time constant: give it a few
	// minutes of simulated time to see the new demand level.
	for i := 0; i < 1800; i++ {
		view.Time += view.Tick
		acts = s.Plan(view)
	}
	if s.Level() != core.Level3 {
		t.Fatalf("exhausted backups level = %v, want L3", s.Level())
	}
	shed := 0
	for _, a := range acts {
		shed += a.ShedServers
	}
	if shed == 0 {
		t.Fatal("L3 with shortfall should shed servers")
	}
}

func TestSurvivalOrderingUnderAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("survival ordering is a long test")
	}
	const horizon = 40 * time.Minute
	conv := runScheme(t, NewConv(Options{}), false, horizon)
	ps := runScheme(t, NewPS(Options{}), false, horizon)
	pad := runScheme(t, NewPAD(Options{}), true, horizon)

	if !conv.Tripped {
		t.Fatalf("Conv should trip under a dense attack (survived %v)", conv.SurvivalTime)
	}
	if ps.SurvivalTime <= conv.SurvivalTime {
		t.Errorf("PS (%v) should outlive Conv (%v)", ps.SurvivalTime, conv.SurvivalTime)
	}
	if pad.SurvivalTime <= ps.SurvivalTime {
		t.Errorf("PAD (%v) should outlive PS (%v)", pad.SurvivalTime, ps.SurvivalTime)
	}
}

func TestCapFreqFor(t *testing.T) {
	m := Options{}.withDefaults().Server
	if got := capFreqFor(m, 10, 4000, 5000, 0.5); got != 1 {
		t.Errorf("under target should not cap, got %v", got)
	}
	got := capFreqFor(m, 10, 5210, 4500, 0.5)
	if got >= 1 || got < 0.5 {
		t.Errorf("cap out of range: %v", got)
	}
	// Deeper cuts need lower frequency.
	if capFreqFor(m, 10, 5210, 4000, 0.5) >= got {
		t.Error("deeper target should cap harder")
	}
	// Impossible targets floor at the configured bound.
	if capFreqFor(m, 10, 5210, 100, 0.5) != 0.5 {
		t.Error("impossible target should floor at 0.5")
	}
	if capFreqFor(m, 10, 5210, 100, 0.8) != 0.8 {
		t.Error("impossible target should floor at 0.8")
	}
	// A degenerate floor falls back to the 0.5 default.
	if capFreqFor(m, 10, 5210, 100, 0) != 0.5 {
		t.Error("zero floor should default to 0.5")
	}
}

func TestOfflineChargingOption(t *testing.T) {
	s := NewPS(Options{Offline: true})
	view := sim.ClusterView{
		Tick:      100 * time.Millisecond,
		PDUBudget: 8000,
		Racks: []sim.RackView{
			// SOC 0.8: above the offline threshold, must not charge.
			{Demand: 2000, Budget: 2500, BatterySOC: 0.8, BatteryMax: 100, BatteryMaxCharge: 100},
		},
		TotalDemand: 2000,
	}
	acts := s.Plan(view)
	if acts[0].Charge != 0 {
		t.Fatalf("offline charger charged at SOC 0.8: %v", acts[0].Charge)
	}
	// Dip below threshold: charging starts.
	view.Racks[0].BatterySOC = 0.2
	acts = s.Plan(view)
	if acts[0].Charge <= 0 {
		t.Fatal("offline charger should start below threshold")
	}
	// Online charger tops up whenever there is headroom.
	on := NewPS(Options{})
	view.Racks[0].BatterySOC = 0.8
	acts = on.Plan(view)
	if acts[0].Charge <= 0 {
		t.Fatal("online charger should charge at SOC 0.8")
	}
}
