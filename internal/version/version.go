// Package version derives a human-readable build identifier from the
// module build info stamped by the go toolchain, for the -version flag
// every binary in this repo exposes.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// String returns "<module version> (<vcs revision>[-dirty], <go
// version>)". Pieces missing from the build info (e.g. a non-VCS build
// or a devel module version) degrade gracefully.
func String() string {
	mod := "(devel)"
	rev := ""
	dirty := ""
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Version != "" {
			mod = info.Main.Version
		}
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
	}
	if rev == "" {
		return fmt.Sprintf("%s (%s)", mod, runtime.Version())
	}
	return fmt.Sprintf("%s (%s%s, %s)", mod, rev, dirty, runtime.Version())
}
