// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into a command: CPU profiling runs from Start to Stop, and the
// heap profile is captured at Stop after a final GC. Commands must call
// Stop on every exit path — including error paths that end in os.Exit,
// which skips deferred calls — or the CPU profile is silently truncated.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by AddFlags.
type Flags struct {
	// CPUProfile is the CPU profile path, empty for none.
	CPUProfile string
	// MemProfile is the heap profile path, empty for none.
	MemProfile string

	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to `file` on exit")
	return f
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag parsing, before the measured work.
func (f *Flags) Start() error {
	if f.CPUProfile == "" {
		return nil
	}
	file, err := os.Create(f.CPUProfile)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop flushes the CPU profile and writes the heap profile. It is
// idempotent, so it can run both deferred and on an error exit path.
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		err := f.cpuFile.Close()
		f.cpuFile = nil
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
	}
	if f.MemProfile != "" {
		path := f.MemProfile
		f.MemProfile = ""
		file, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer file.Close()
		runtime.GC() // report live objects, not transient garbage
		if err := pprof.WriteHeapProfile(file); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
	}
	return nil
}
