package report

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests pin the exact bytes of every rendering path. The
// figure CSVs are the repo's deliverable, and the determinism suite
// compares them byte-for-byte across worker counts, so the renderers'
// output format is load-bearing. Regenerate after an intentional format
// change with:
//
//	go test ./internal/report -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenTable exercises alignment (mixed cell widths), float formatting
// (%.3g) and CSV quoting (comma, quote and newline in cells).
func goldenTable() *Table {
	tbl := NewTable("Golden — survival summary", "Scheme", "Survival(s)", "Throughput", "Note")
	tbl.AddRow("Conv", 12.25, 0.98765, "tripped")
	tbl.AddRow("PS", 1234.5, 1.0, "no trip, ran out of horizon")
	tbl.AddRow("PAD", 0.001, float32(0.25), `says "ok", then
continues`)
	return tbl
}

// goldenHeatmap covers the full shade ramp plus out-of-range clamping.
func goldenHeatmap() *Heatmap {
	return &Heatmap{
		Title: "Golden — SOC map",
		Values: [][]float64{
			{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1},
			{-0.5, 1.5, 0.55, 0.45, 0.0001, 0.9999, 0.25, 0.75, 0.33, 0.66, 0.5},
		},
		Lo: 0, Hi: 1,
	}
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

func render(t *testing.T, f func(io.Writer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenTableRender(t *testing.T) {
	checkGolden(t, "table_render", render(t, goldenTable().Render))
}

func TestGoldenTableCSV(t *testing.T) {
	checkGolden(t, "table_csv", render(t, goldenTable().WriteCSV))
}

func TestGoldenHeatmapRender(t *testing.T) {
	checkGolden(t, "heatmap_render", render(t, goldenHeatmap().Render))
}

func TestGoldenHeatmapCSV(t *testing.T) {
	checkGolden(t, "heatmap_csv", render(t, goldenHeatmap().WriteCSV))
}
