package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "Scheme", "Survival")
	tbl.AddRow("Conv", 140.0)
	tbl.AddRow("PAD", 1500.0)
	out := tbl.String()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Scheme") || !strings.Contains(out, "Survival") {
		t.Error("headers missing")
	}
	if !strings.Contains(out, "Conv") || !strings.Contains(out, "1.5e+03") {
		t.Errorf("rows missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("", "A", "LongHeader")
	tbl.AddRow("xxxxxxxx", 1)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and data rows should be the same width.
	if len(lines[0]) != len(lines[2]) {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.AddRow("x,y", `say "hi"`)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# T\n") {
		t.Error("comment title missing")
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Error("comma cell not quoted")
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Error("quote cell not escaped")
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:  "SOC",
		Values: [][]float64{{0, 0.5, 1}, {1, 1, 1}},
		Lo:     0, Hi: 1,
	}
	out := h.String()
	if !strings.Contains(out, "SOC") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d", len(lines))
	}
	// Full-charge row renders with the densest shade.
	if !strings.Contains(lines[2], "@@@") {
		t.Errorf("full row should be dense: %q", lines[2])
	}
	// Mixed row starts light and ends dark.
	if !strings.Contains(lines[1], " ") || !strings.Contains(lines[1], "@") {
		t.Errorf("gradient row wrong: %q", lines[1])
	}
}

func TestHeatmapClamping(t *testing.T) {
	h := &Heatmap{Values: [][]float64{{-5, 10}}, Lo: 0, Hi: 1}
	out := h.String()
	if !strings.Contains(out, " ") || !strings.Contains(out, "@") {
		t.Errorf("out-of-range values should clamp: %q", out)
	}
}

func TestHeatmapDegenerateRange(t *testing.T) {
	h := &Heatmap{Values: [][]float64{{0.5}}, Lo: 1, Hi: 1}
	// Must not panic or divide by zero.
	_ = h.String()
}

func TestHeatmapCSV(t *testing.T) {
	h := &Heatmap{Title: "M", Values: [][]float64{{0.25, 0.75}}}
	var b strings.Builder
	if err := h.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.2500,0.7500") {
		t.Errorf("csv wrong: %q", b.String())
	}
}
