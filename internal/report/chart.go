package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// LineChart renders one or more numeric series as an ASCII plot — enough
// to eyeball the shape of a reproduced figure straight from a terminal.
type LineChart struct {
	Title  string
	Height int // rows of plot area; 0 selects 12
	Width  int // columns of plot area; 0 selects 72
	// Series are drawn in order; each gets a distinct glyph.
	Series []ChartSeries
	// YMin/YMax fix the axis range; both zero auto-scales.
	YMin, YMax float64
}

// ChartSeries is one named line.
type ChartSeries struct {
	Name   string
	Values []float64
}

var chartGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

func (c *LineChart) dims() (h, w int) {
	h, w = c.Height, c.Width
	if h == 0 {
		h = 12
	}
	if w == 0 {
		w = 72
	}
	return h, w
}

// Render writes the chart to wr.
func (c *LineChart) Render(wr io.Writer) error {
	h, w := c.dims()
	lo, hi := c.YMin, c.YMax
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, s := range c.Series {
			for _, v := range s.Values {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0, 1
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	maxLen := 0
	for _, s := range c.Series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	for si, s := range c.Series {
		glyph := chartGlyphs[si%len(chartGlyphs)]
		for i, v := range s.Values {
			col := 0
			if maxLen > 1 {
				col = i * (w - 1) / (maxLen - 1)
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(h-1)))
			if row < 0 {
				row = 0
			}
			if row >= h {
				row = h - 1
			}
			grid[row][col] = glyph
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", hi, string(grid[0]))
	for r := 1; r < h-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", lo, string(grid[h-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", w))
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", chartGlyphs[si%len(chartGlyphs)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%12s%s\n", "", strings.Join(legend, "   "))
	}
	_, err := io.WriteString(wr, b.String())
	return err
}

// String renders the chart to a string.
func (c *LineChart) String() string {
	var b strings.Builder
	_ = c.Render(&b)
	return b.String()
}

// BarChart renders labeled values as horizontal bars (the survival-time
// figure in text form).
type BarChart struct {
	Title string
	Width int // bar area columns; 0 selects 50
	Bars  []Bar
}

// Bar is one labeled value.
type Bar struct {
	Label string
	Value float64
}

// Render writes the chart to wr.
func (c *BarChart) Render(wr io.Writer) error {
	width := c.Width
	if width == 0 {
		width = 50
	}
	maxVal := 0.0
	maxLabel := 0
	for _, b := range c.Bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		n := int(math.Round(b.Value / maxVal * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s │%s %.4g\n", maxLabel, b.Label,
			strings.Repeat("█", n), b.Value)
	}
	_, err := io.WriteString(wr, sb.String())
	return err
}

// String renders the chart to a string.
func (c *BarChart) String() string {
	var b strings.Builder
	_ = c.Render(&b)
	return b.String()
}
