// Package report renders experiment results as aligned ASCII tables, CSV
// series and ASCII heat maps — the forms cmd/experiments emits for every
// figure and table in the paper.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case float32:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes the table as CSV (title as a comment line).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		b.WriteString(c)
	}
	b.WriteByte('\n')
}

// Heatmap renders a matrix (rows × columns of values in [lo, hi]) as an
// ASCII shade map, the textual analogue of the paper's Figure 13/14 DEB
// utilization maps.
type Heatmap struct {
	Title  string
	Values [][]float64 // [row][col]
	Lo, Hi float64
}

// shades from empty to full.
var shades = []byte(" .:-=+*#%@")

// Render writes the heat map to w, one text row per matrix row.
func (h *Heatmap) Render(w io.Writer) error {
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	span := h.Hi - h.Lo
	if span <= 0 {
		span = 1
	}
	for i, row := range h.Values {
		fmt.Fprintf(&b, "%3d |", i)
		for _, v := range row {
			idx := int((v - h.Lo) / span * float64(len(shades)))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the heat map to a string.
func (h *Heatmap) String() string {
	var b strings.Builder
	_ = h.Render(&b)
	return b.String()
}

// WriteCSV writes the raw matrix as CSV.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "# %s\n", h.Title)
	}
	for _, row := range h.Values {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.4f", v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
