package report

import (
	"strings"
	"testing"
)

func TestLineChartRenders(t *testing.T) {
	c := &LineChart{
		Title: "demo",
		Series: []ChartSeries{
			{Name: "rise", Values: []float64{0, 1, 2, 3, 4}},
			{Name: "fall", Values: []float64{4, 3, 2, 1, 0}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* rise") || !strings.Contains(out, "o fall") {
		t.Errorf("legend missing:\n%s", out)
	}
	// Both glyphs appear in the plot body.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("glyphs missing")
	}
	// Axis labels carry the auto-scaled range.
	if !strings.Contains(out, "4") || !strings.Contains(out, "0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 12 rows + axis + legend = 15
	if len(lines) != 15 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestLineChartShape(t *testing.T) {
	// A rising series puts its first point on the bottom row and its last
	// on the top row.
	c := &LineChart{Height: 5, Width: 10,
		Series: []ChartSeries{{Name: "s", Values: []float64{0, 1, 2, 3}}}}
	out := c.String()
	lines := strings.Split(out, "\n")
	top, bottom := lines[0], lines[4]
	if !strings.HasSuffix(strings.TrimRight(top, " "), "*") {
		t.Errorf("max should land at the right of the top row: %q", top)
	}
	if !strings.Contains(bottom, "┤*") {
		t.Errorf("min should land at the left of the bottom row: %q", bottom)
	}
}

func TestLineChartDegenerate(t *testing.T) {
	// Empty series, flat series and fixed ranges must not panic and must
	// produce output.
	cases := []*LineChart{
		{},
		{Series: []ChartSeries{{Name: "flat", Values: []float64{5, 5, 5}}}},
		{YMin: 0, YMax: 10, Series: []ChartSeries{{Name: "clip", Values: []float64{-5, 15}}}},
		{Series: []ChartSeries{{Name: "one", Values: []float64{3}}}},
	}
	for i, c := range cases {
		if out := c.String(); out == "" {
			t.Errorf("case %d produced no output", i)
		}
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{
		Title: "survival",
		Width: 20,
		Bars: []Bar{
			{Label: "Conv", Value: 100},
			{Label: "PAD", Value: 400},
		},
	}
	out := c.String()
	if !strings.Contains(out, "survival") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d", len(lines))
	}
	convBar := strings.Count(lines[1], "█")
	padBar := strings.Count(lines[2], "█")
	if padBar != 20 {
		t.Errorf("max bar should fill the width, got %d", padBar)
	}
	if convBar != 5 {
		t.Errorf("Conv bar = %d, want 5 (100/400 of 20)", convBar)
	}
	if !strings.Contains(lines[1], "100") || !strings.Contains(lines[2], "400") {
		t.Error("values missing")
	}
}

func TestBarChartDegenerate(t *testing.T) {
	if out := (&BarChart{}).String(); out != "" {
		t.Errorf("empty chart should render nothing, got %q", out)
	}
	out := (&BarChart{Bars: []Bar{{Label: "zero", Value: 0}, {Label: "neg", Value: -5}}}).String()
	if out == "" {
		t.Error("degenerate bars should still render rows")
	}
}
