package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the smallest and largest elements of xs.
// It returns (0, 0) for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDF is an empirical cumulative distribution function built from samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. The input is copied.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// P returns the empirical probability P(X <= x).
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	n := sort.SearchFloat64s(c.sorted, x)
	// SearchFloat64s returns the first index >= x; advance over equal values
	// so P is right-continuous (counts X <= x, not X < x).
	for n < len(c.sorted) && c.sorted[n] == x {
		n++
	}
	return float64(n) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the samples.
func (c *CDF) Quantile(q float64) float64 {
	return Percentile(c.sorted, q*100)
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// Points returns (x, P(X<=x)) pairs suitable for plotting, sampled at every
// distinct value.
func (c *CDF) Points() (xs, ps []float64) {
	for i, x := range c.sorted {
		if i > 0 && x == c.sorted[i-1] {
			xs[len(xs)-1] = x
			ps[len(ps)-1] = float64(i+1) / float64(len(c.sorted))
			continue
		}
		xs = append(xs, x)
		ps = append(ps, float64(i+1)/float64(len(c.sorted)))
	}
	return xs, ps
}

// Histogram counts samples into uniform bins over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with n uniform bins spanning [lo, hi].
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one sample. Out-of-range samples clamp into the edge bins.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total reports the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
