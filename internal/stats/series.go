package stats

import (
	"math"
	"time"
)

// Series is a uniformly sampled time series: a start offset, a fixed step,
// and one value per step. It is the exchange format between the simulator
// recorders and the experiment harness.
type Series struct {
	Step   time.Duration
	Values []float64
}

// NewSeries creates an empty series with the given sampling step.
func NewSeries(step time.Duration) *Series {
	if step <= 0 {
		panic("stats: series step must be positive")
	}
	return &Series{Step: step}
}

// NewSeriesWithCap creates an empty series with room for n samples, so a
// recorder that knows its sample count up front appends without
// reallocating.
func NewSeriesWithCap(step time.Duration, n int) *Series {
	s := NewSeries(step)
	if n > 0 {
		s.Values = make([]float64, 0, n)
	}
	return s
}

// Append records the next sample.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Duration reports the time span covered by the samples.
func (s *Series) Duration() time.Duration {
	return time.Duration(len(s.Values)) * s.Step
}

// At returns the sample covering offset t (zero beyond the end).
func (s *Series) At(t time.Duration) float64 {
	i := int(t / s.Step)
	if i < 0 || i >= len(s.Values) {
		return 0
	}
	return s.Values[i]
}

// Interp returns the value at offset t using linear interpolation between
// neighbouring samples; values clamp at the ends.
func (s *Series) Interp(t time.Duration) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	pos := float64(t) / float64(s.Step)
	if pos <= 0 {
		return s.Values[0]
	}
	if pos >= float64(len(s.Values)-1) {
		return s.Values[len(s.Values)-1]
	}
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	return s.Values[lo]*(1-frac) + s.Values[lo+1]*frac
}

// InterpFrozenTicks returns how long the interpolated value stays
// bitwise-frozen: the largest n such that Interp(from + k·tick) is
// bit-identical to Interp(from) for every k in 1..n. math.MaxInt means
// frozen forever (an empty series, or from at or past the final sample,
// where Interp clamps — offsets only grow during a run).
//
// Only two shapes are provably frozen in float64 bits: the end clamps,
// and a leading run of exactly-zero samples (v·(1−frac) + v·frac equals
// v in general only for v = +0). Flat non-zero segments are NOT
// reported frozen — their lerp can differ from the sample value by an
// ULP — so the result is conservative: 0 simply means the caller must
// sample per tick.
func (s *Series) InterpFrozenTicks(from, tick time.Duration) int {
	if len(s.Values) == 0 {
		return math.MaxInt
	}
	if tick <= 0 {
		return 0
	}
	// Past-end clamp, tested with the very comparison Interp performs so
	// the two can never disagree at the boundary.
	last := len(s.Values) - 1
	if float64(from)/float64(s.Step) >= float64(last) {
		return math.MaxInt
	}
	if math.Float64bits(s.Interp(from)) != 0 {
		return 0
	}
	// Leading zero run: both lerp endpoints are +0 while the position
	// stays at or below the last zero sample, so the result is +0 bits.
	j := 0
	for j < len(s.Values) && math.Float64bits(s.Values[j]) == 0 {
		j++
	}
	if j == len(s.Values) {
		return math.MaxInt // all-zero series
	}
	// Largest k with from + k·tick inside the zero run, by integer
	// duration math; then back off while Interp's float positioning
	// disagrees (rounding at the run boundary). Frozenness is monotone in
	// k here, so verifying the endpoint covers the interior.
	maxT := time.Duration(j-1) * s.Step
	if maxT <= from {
		return 0 // a zero value mid-trace, not in the leading run
	}
	k := int((maxT - from) / tick)
	for k > 0 && math.Float64bits(s.Interp(from+time.Duration(k)*tick)) != 0 {
		k--
	}
	return k
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	_, hi := MinMax(s.Values)
	return hi
}

// Mean returns the mean sample value.
func (s *Series) Mean() float64 { return Mean(s.Values) }

// Downsample returns a new series with step multiplied by factor where each
// output sample is the mean of factor consecutive input samples. A final
// partial window is averaged over the samples it has.
func (s *Series) Downsample(factor int) *Series {
	if factor <= 0 {
		panic("stats: downsample factor must be positive")
	}
	out := NewSeries(s.Step * time.Duration(factor))
	for i := 0; i < len(s.Values); i += factor {
		end := i + factor
		if end > len(s.Values) {
			end = len(s.Values)
		}
		out.Append(Mean(s.Values[i:end]))
	}
	return out
}

// MovingAverage returns a new series of the same step where each sample is
// the mean of the trailing window of the given number of samples
// (including the current one).
func (s *Series) MovingAverage(window int) *Series {
	if window <= 0 {
		panic("stats: moving average window must be positive")
	}
	out := NewSeries(s.Step)
	sum := 0.0
	for i, v := range s.Values {
		sum += v
		if i >= window {
			sum -= s.Values[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out.Append(sum / float64(n))
	}
	return out
}

// Scale returns a new series with every value multiplied by k.
func (s *Series) Scale(k float64) *Series {
	out := NewSeries(s.Step)
	out.Values = make([]float64, len(s.Values))
	for i, v := range s.Values {
		out.Values[i] = v * k
	}
	return out
}

// AddSeries returns the pointwise sum of a and b, which must share a step.
// The result has the length of the longer input; the shorter is treated as
// zero beyond its end.
func AddSeries(a, b *Series) *Series {
	if a.Step != b.Step {
		panic("stats: cannot add series with different steps")
	}
	n := len(a.Values)
	if len(b.Values) > n {
		n = len(b.Values)
	}
	out := NewSeries(a.Step)
	out.Values = make([]float64, n)
	for i := 0; i < n; i++ {
		var av, bv float64
		if i < len(a.Values) {
			av = a.Values[i]
		}
		if i < len(b.Values) {
			bv = b.Values[i]
		}
		out.Values[i] = av + bv
	}
	return out
}
