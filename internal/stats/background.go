package stats

import "time"

// NoisyUtilization builds one utilization series per server: an AR(1)
// wander around mean, clamped to [0.05, 0.98], each server seeded from
// its own deterministic RNG split. This is the quick synthetic
// background cmd/padsim and the padd replay bridge share — the Google
// trace replay in internal/trace is the heavyweight alternative.
func NoisyUtilization(servers int, mean float64, horizon, step time.Duration, seed uint64) []*Series {
	rng := NewRNG(seed)
	n := int(horizon/step) + 2
	out := make([]*Series, servers)
	for i := range out {
		r := rng.Split(uint64(i))
		s := NewSeries(step)
		wander := 0.0
		for k := 0; k < n; k++ {
			wander = 0.9*wander + r.Norm(0, 0.02)
			u := mean + wander
			if u < 0.05 {
				u = 0.05
			}
			if u > 0.98 {
				u = 0.98
			}
			s.Append(u)
		}
		out[i] = s
	}
	return out
}
