package stats

import (
	"math"
	"testing"
	"time"
)

func newTestSeries(step time.Duration, vals ...float64) *Series {
	s := NewSeries(step)
	for _, v := range vals {
		s.Append(v)
	}
	return s
}

func TestSeriesBasics(t *testing.T) {
	s := newTestSeries(time.Second, 1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Duration() != 3*time.Second {
		t.Fatalf("Duration = %v", s.Duration())
	}
	if s.At(1500*time.Millisecond) != 2 {
		t.Fatalf("At(1.5s) = %v, want 2", s.At(1500*time.Millisecond))
	}
	if s.At(10*time.Second) != 0 {
		t.Fatalf("At beyond end should be 0")
	}
	if s.At(-time.Second) != 0 {
		t.Fatalf("At before start should be 0")
	}
	if s.Max() != 3 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.Mean() != 2 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

func TestSeriesStepValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSeries(0) should panic")
		}
	}()
	NewSeries(0)
}

func TestSeriesInterp(t *testing.T) {
	s := newTestSeries(time.Second, 0, 10)
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0},
		{250 * time.Millisecond, 2.5},
		{500 * time.Millisecond, 5},
		{time.Second, 10},
		{5 * time.Second, 10}, // clamps at end
		{-time.Second, 0},     // clamps at start
	}
	for _, c := range cases {
		if got := s.Interp(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Interp(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if (&Series{Step: time.Second}).Interp(0) != 0 {
		t.Error("Interp on empty series should be 0")
	}
}

func TestDownsample(t *testing.T) {
	s := newTestSeries(time.Second, 1, 3, 5, 7, 9)
	d := s.Downsample(2)
	if d.Step != 2*time.Second {
		t.Fatalf("step = %v", d.Step)
	}
	want := []float64{2, 6, 9} // last window is partial
	if len(d.Values) != len(want) {
		t.Fatalf("len = %d, want %d", len(d.Values), len(want))
	}
	for i, w := range want {
		if d.Values[i] != w {
			t.Errorf("value[%d] = %v, want %v", i, d.Values[i], w)
		}
	}
}

func TestDownsamplePreservesMean(t *testing.T) {
	s := NewSeries(time.Second)
	r := NewRNG(99)
	for i := 0; i < 1000; i++ { // multiple of factor so no partial window
		s.Append(r.Float64())
	}
	d := s.Downsample(10)
	if math.Abs(d.Mean()-s.Mean()) > 1e-12 {
		t.Fatalf("downsample changed mean: %v vs %v", d.Mean(), s.Mean())
	}
}

func TestMovingAverage(t *testing.T) {
	s := newTestSeries(time.Second, 2, 4, 6, 8)
	m := s.MovingAverage(2)
	want := []float64{2, 3, 5, 7}
	for i, w := range want {
		if m.Values[i] != w {
			t.Errorf("MA[%d] = %v, want %v", i, m.Values[i], w)
		}
	}
}

func TestScale(t *testing.T) {
	s := newTestSeries(time.Second, 1, 2)
	k := s.Scale(3)
	if k.Values[0] != 3 || k.Values[1] != 6 {
		t.Fatalf("Scale wrong: %v", k.Values)
	}
	if s.Values[0] != 1 {
		t.Fatal("Scale mutated the receiver")
	}
}

func TestAddSeries(t *testing.T) {
	a := newTestSeries(time.Second, 1, 2, 3)
	b := newTestSeries(time.Second, 10, 20)
	sum := AddSeries(a, b)
	want := []float64{11, 22, 3}
	for i, w := range want {
		if sum.Values[i] != w {
			t.Errorf("sum[%d] = %v, want %v", i, sum.Values[i], w)
		}
	}
}

func TestAddSeriesStepMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddSeries with mismatched steps should panic")
		}
	}()
	AddSeries(NewSeries(time.Second), NewSeries(2*time.Second))
}

func TestMovingAveragePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MovingAverage(0) should panic")
		}
	}()
	NewSeries(time.Second).MovingAverage(0)
}

func TestDownsamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Downsample(0) should panic")
		}
	}()
	NewSeries(time.Second).Downsample(0)
}
