package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v, %v)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatalf("MinMax(nil) = (%v, %v)", lo, hi)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // deliberately unsorted
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("Median = %v, want 5", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		c := NewCDF(xs)
		prev := -1.0
		for _, x := range xs {
			p := c.P(x)
			if p < 0 || p > 1 {
				return false
			}
			_ = prev
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFKnownValues(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.P(tc.x); got != tc.want {
			t.Errorf("P(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("Quantile(0.5) = %v, want 30", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("Quantile(0) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Fatalf("Quantile(1) = %v, want 50", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	xs, ps := c.Points()
	if len(xs) != 3 || len(ps) != 3 {
		t.Fatalf("Points lengths = %d, %d; want 3, 3", len(xs), len(ps))
	}
	if xs[1] != 2 || ps[1] != 0.75 {
		t.Fatalf("Points[1] = (%v, %v); want (2, 0.75)", xs[1], ps[1])
	}
	if ps[2] != 1 {
		t.Fatalf("final probability = %v; want 1", ps[2])
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -1, 0, 1.9 land in bin 0; 10 and 42 clamp into bin 4 alongside 9.9.
	if h.Counts[0] != 3 {
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 3 {
		t.Errorf("bin 4 = %d, want 3", h.Counts[4])
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.Fraction(0); got != 3.0/8 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins": func() { NewHistogram(0, 1, 0) },
		"hi<=lo":    func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(p8) / 255 * 100
		v := Percentile(xs, p)
		lo, hi := MinMax(xs)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
