package stats

import (
	"math"
	"time"
)

// InterpPoint is the precomputed coefficient set Interp derives from an
// offset: the fractional sample position plus the floor index and blend
// fraction. Computing it once per tick and reusing it across every
// series that shares a sampling step removes the per-series division
// from the simulator's hot loop while producing bit-identical floats —
// InterpAt evaluates exactly the expression Interp would.
type InterpPoint struct {
	// Pos is the fractional sample position t/step.
	Pos float64
	// Lo is floor(Pos), the lower neighbouring sample index.
	Lo int
	// Frac is Pos − Lo, the blend weight of the upper neighbour.
	Frac float64
}

// InterpPointAt computes the interpolation coefficients Interp would use
// for offset t on any series sampled at the given step.
func InterpPointAt(step, t time.Duration) InterpPoint {
	pos := float64(t) / float64(step)
	lo := int(math.Floor(pos))
	return InterpPoint{Pos: pos, Lo: lo, Frac: pos - float64(lo)}
}

// InterpAt returns the value at the precomputed point, bit-identical to
// Interp(t) for the t the point was computed from — provided the point
// was computed with this series' step. Values clamp at the ends exactly
// as Interp clamps.
func (s *Series) InterpAt(p InterpPoint) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	if p.Pos <= 0 {
		return s.Values[0]
	}
	if p.Pos >= float64(len(s.Values)-1) {
		return s.Values[len(s.Values)-1]
	}
	return s.Values[p.Lo]*(1-p.Frac) + s.Values[p.Lo+1]*p.Frac
}
