// Package stats provides the deterministic random number generator and the
// small numerical toolkit (descriptive statistics, CDFs, histograms,
// time-series helpers) used by the simulator and the experiment harness.
//
// Everything random in the repository flows from stats.RNG seeded
// explicitly, so every experiment is reproducible bit-for-bit.
//
// Concurrency: an RNG is a mutable stream and is not safe for concurrent
// use. Parallel sweeps never share a stream across runs; each run derives
// its own seed with DeriveSeed(base, key) (or Split) and owns the
// resulting RNG exclusively.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// SplitMix64. It is small, fast, and has no global state; each component
// of the simulator owns its own stream, derived from the experiment seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// DeriveSeed maps a base seed and a run key to an independent seed:
// the key is absorbed with an FNV-1a pass and the result is finalized
// with a SplitMix64 round, so nearby keys ("fig15/PAD/Dense/CPU" vs
// "fig15/PAD/Dense/Mem") yield unrelated streams. Sweeps that execute
// runs concurrently derive each run's seed this way instead of sharing
// one RNG, which keeps every run reproducible in isolation regardless
// of scheduling order.
func DeriveSeed(base uint64, key string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	z := base + 0x9e3779b97f4a7c15*h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child stream from the current state and a
// stream label. Identical (seed, label) pairs always yield identical
// streams regardless of draw order elsewhere.
func (r *RNG) Split(label uint64) *RNG {
	// Mix the label through one SplitMix64 round so nearby labels give
	// unrelated streams.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has parameters mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given rate
// (events per unit). The mean is 1/rate.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 30.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(r.Norm(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
