package stats

import (
	"math"
	"testing"
	"time"
)

// TestInterpAtMatchesInterpExactly is the fast-path sampler's contract:
// for any series and any offset, InterpAt over a point computed with the
// series' step must return the same float64, bit for bit, as Interp —
// including at and beyond the clamped ends. The simulator relies on this
// for byte-identical sweep output.
func TestInterpAtMatchesInterpExactly(t *testing.T) {
	rng := NewRNG(99)
	steps := []time.Duration{
		time.Millisecond, 100 * time.Millisecond, time.Second,
		10 * time.Second, 5 * time.Minute, time.Hour,
		7 * time.Second, 333 * time.Millisecond, // non-round steps
	}
	for _, step := range steps {
		for _, n := range []int{0, 1, 2, 3, 64} {
			s := NewSeries(step)
			for k := 0; k < n; k++ {
				s.Append(rng.Float64())
			}
			span := time.Duration(n+2) * step
			// Deterministic offsets covering the start clamp, exact sample
			// boundaries, interior points and the end clamp.
			offsets := []time.Duration{
				0, step / 3, step, step + step/2,
				span / 2, span - step, span, span + step,
			}
			// Plus irregular offsets that do not divide the step.
			for k := 0; k < 200; k++ {
				offsets = append(offsets, time.Duration(rng.Range(0, float64(span))))
			}
			for _, off := range offsets {
				want := s.Interp(off)
				got := s.InterpAt(InterpPointAt(step, off))
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("step %v, len %d, t=%v: Interp=%x InterpAt=%x",
						step, n, off, math.Float64bits(want), math.Float64bits(got))
				}
			}
		}
	}
}

// TestInterpPointSharedAcrossSeries is how the engine uses the sampler:
// one point per (step, tick), shared by every series with that step —
// each must see exactly its own Interp value.
func TestInterpPointSharedAcrossSeries(t *testing.T) {
	rng := NewRNG(7)
	const step = 10 * time.Second
	series := make([]*Series, 32)
	for i := range series {
		s := NewSeries(step)
		for k := 0; k < 50; k++ {
			s.Append(rng.Float64())
		}
		series[i] = s
	}
	for tick := time.Duration(0); tick < 60*step; tick += 100 * time.Millisecond {
		p := InterpPointAt(step, tick)
		for i, s := range series {
			if want, got := s.Interp(tick), s.InterpAt(p); math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("series %d at %v: Interp=%v InterpAt=%v", i, tick, want, got)
			}
		}
	}
}

func TestNewSeriesWithCap(t *testing.T) {
	s := NewSeriesWithCap(time.Second, 100)
	if s.Len() != 0 {
		t.Fatalf("fresh series has %d samples", s.Len())
	}
	if cap(s.Values) != 100 {
		t.Fatalf("capacity = %d, want 100", cap(s.Values))
	}
	s.Append(1)
	if s.At(0) != 1 {
		t.Fatal("append broken")
	}
}
