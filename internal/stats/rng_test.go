package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	// Streams from different labels should not coincide.
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split streams with different labels coincide")
	}
	// Split must be a pure function of (state, label).
	r2 := NewRNG(7)
	d1 := r2.Split(1)
	c1b := NewRNG(7).Split(1)
	if d1.Uint64() != c1b.Uint64() {
		t.Fatal("split is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(6)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm(10, 3)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", m)
	}
	if s := StdDev(xs); math.Abs(s-3) > 0.05 {
		t.Errorf("normal stddev = %v, want ~3", s)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(8)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) should panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(9)
	for _, mean := range []float64{0.5, 3, 12, 50} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			k := r.Poisson(mean)
			if k < 0 {
				t.Fatalf("Poisson returned negative %d", k)
			}
			sum += k
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.1*mean+0.1 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestRange(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Range(5,9) = %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(12)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", p)
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(42, "fig15/PAD") != DeriveSeed(42, "fig15/PAD") {
		t.Fatal("DeriveSeed is not a pure function of (base, key)")
	}
}

func TestDeriveSeedSeparatesKeysAndBases(t *testing.T) {
	keys := []string{"", "a", "b", "ab", "ba", "fig8a/PAD/nodes=4/os=0.75", "fig8a/PAD/nodes=5/os=0.75"}
	seen := map[uint64]string{}
	for _, k := range keys {
		s := DeriveSeed(1, k)
		if prev, dup := seen[s]; dup {
			t.Errorf("keys %q and %q derive the same seed", prev, k)
		}
		seen[s] = k
	}
	for _, k := range keys {
		if DeriveSeed(1, k) == DeriveSeed(2, k) {
			t.Errorf("key %q derives the same seed under bases 1 and 2", k)
		}
	}
}

func TestDeriveSeedStreamsIndependent(t *testing.T) {
	// Seeds for sibling runs must give uncorrelated streams, not merely
	// distinct first draws.
	a := NewRNG(DeriveSeed(7, "sweep/run=0"))
	b := NewRNG(DeriveSeed(7, "sweep/run=1"))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling run streams coincide on %d of 1000 draws", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
