package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a minimal Prometheus-style metrics registry: counters,
// gauges and fixed-bucket histograms, rendered in the text exposition
// format. Hand-rolled because the build carries no client library; the
// output is byte-compatible with what the padd daemon historically
// emitted, which a golden test in internal/padd pins.
//
// Families render in registration order; series within a family render
// sorted by label value. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*Family
	byName   map[string]*Family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Family)}
}

type familyKind uint8

const (
	gaugeKind familyKind = iota
	counterKind
	histogramKind
)

func (k familyKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case histogramKind:
		return "histogram"
	default:
		return "gauge"
	}
}

// Family is one named metric with zero or more label-distinguished
// series. A family declared with an empty label name holds a single
// unlabeled series, addressed with the empty label value.
type Family struct {
	reg    *Registry
	name   string
	help   string
	label  string
	kind   familyKind
	bounds []float64 // histogram bucket upper bounds, ascending

	series map[string]*series
}

type series struct {
	value  float64
	counts []uint64 // histogram per-bucket counts; index len(bounds) is +Inf
	sum    float64
	total  uint64
}

func (r *Registry) family(name, help, label string, kind familyKind, bounds []float64) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, kind, f.kind))
		}
		return f
	}
	f := &Family{
		reg: r, name: name, help: help, label: label, kind: kind,
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*series),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Gauge declares (or returns the existing) gauge family.
func (r *Registry) Gauge(name, help, label string) *Family {
	return r.family(name, help, label, gaugeKind, nil)
}

// Counter declares (or returns the existing) counter family.
func (r *Registry) Counter(name, help, label string) *Family {
	return r.family(name, help, label, counterKind, nil)
}

// Histogram declares (or returns the existing) histogram family with the
// given ascending bucket upper bounds (an implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help, label string, bounds []float64) *Family {
	return r.family(name, help, label, histogramKind, bounds)
}

func (f *Family) at(label string) *series {
	s, ok := f.series[label]
	if !ok {
		s = &series{}
		if f.kind == histogramKind {
			s.counts = make([]uint64, len(f.bounds)+1)
		}
		f.series[label] = s
	}
	return s
}

// Set assigns the series value (gauges; also usable to install counter
// snapshots scraped from elsewhere).
func (f *Family) Set(label string, v float64) {
	f.reg.mu.Lock()
	f.at(label).value = v
	f.reg.mu.Unlock()
}

// Add increments the series value (counters, and gauges tracking depth).
func (f *Family) Add(label string, v float64) {
	f.reg.mu.Lock()
	f.at(label).value += v
	f.reg.mu.Unlock()
}

// Value reads the series value back (tests and progress reporting).
func (f *Family) Value(label string) float64 {
	f.reg.mu.Lock()
	defer f.reg.mu.Unlock()
	return f.at(label).value
}

// Observe records one histogram observation.
func (f *Family) Observe(label string, v float64) {
	f.reg.mu.Lock()
	defer f.reg.mu.Unlock()
	s := f.at(label)
	s.sum += v
	s.total++
	for i, b := range f.bounds {
		if v <= b {
			s.counts[i]++
			return
		}
	}
	s.counts[len(f.bounds)]++
}

// SetHistogram installs a histogram snapshot maintained elsewhere:
// per-bucket (non-cumulative) counts — the final entry being the +Inf
// bucket — plus the sum and total. counts must have len(bounds)+1
// entries.
func (f *Family) SetHistogram(label string, counts []uint64, sum float64, total uint64) {
	f.reg.mu.Lock()
	defer f.reg.mu.Unlock()
	s := f.at(label)
	copy(s.counts, counts)
	s.sum = sum
	s.total = total
}

// Write renders the full text exposition.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *Family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
		return err
	}
	labels := make([]string, 0, len(f.series))
	for l := range f.series {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		s := f.series[l]
		if f.kind == histogramKind {
			if err := f.writeHistogram(w, l, s); err != nil {
				return err
			}
			continue
		}
		var err error
		if f.label == "" {
			_, err = fmt.Fprintf(w, "%s %g\n", f.name, s.value)
		} else {
			_, err = fmt.Fprintf(w, "%s{%s=%q} %g\n", f.name, f.label, l, s.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (f *Family) writeHistogram(w io.Writer, label string, s *series) error {
	// Bucket lines carry the family label first, then le — the exact
	// layout the padd exposition always used.
	bucketPre := f.name + "_bucket{"
	labels := "" // suffix for the _sum/_count lines
	if f.label != "" {
		lv := fmt.Sprintf("%s=%q", f.label, label)
		bucketPre += lv + ","
		labels = "{" + lv + "}"
	}
	cum := uint64(0)
	for i, b := range f.bounds {
		cum += s.counts[i]
		if _, err := fmt.Fprintf(w, "%sle=%q} %d\n", bucketPre, fmt.Sprintf("%g", b), cum); err != nil {
			return err
		}
	}
	cum += s.counts[len(f.bounds)]
	if _, err := fmt.Fprintf(w, "%sle=\"+Inf\"} %d\n", bucketPre, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, labels, s.sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, s.total)
	return err
}
