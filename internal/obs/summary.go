package obs

import "time"

// PhaseDetection reports how the defense reacted to one attack phase: the
// phase's start offset and how long until the first security-level
// escalation inside that phase — the scheme's time-to-detection.
type PhaseDetection struct {
	// Phase is the virus.Phase value entered (0 Preparation, 1 Phase-I,
	// 2 Phase-II).
	Phase int
	// Start is the phase's simulation offset.
	Start time.Duration
	// Detection is the delay from Start to the first level escalation
	// within the phase, or -1 when the phase ended (or the run ended)
	// undetected.
	Detection time.Duration
}

// Summary distills one run's trace into the quantities the paper's
// defense narrative turns on: where the scheme spent its time on the
// Figure-9 ladder, how fast it reacted to each attack phase, how close
// breakers came to tripping, and what the defense cost in shed load.
type Summary struct {
	// Meta echoes the trace header.
	Meta Meta
	// Events and Dropped echo the stream accounting (a non-zero Dropped
	// means the summary describes a truncated prefix of the run).
	Events  int
	Dropped uint64

	// Dwell is the time spent at each security level, indexed by level;
	// index 0 accumulates time before the first level assignment (the
	// whole run for schemes that report no level).
	Dwell [4]time.Duration

	// Phases lists the attack's phase transitions with per-phase
	// time-to-detection, in order.
	Phases []PhaseDetection

	// MinMargin is the run-minimum breaker margin in watts on the feed
	// MinMarginRack (-1 = the cluster PDU); MinMarginSet reports whether
	// any margin event was seen.
	MinMargin     float64
	MinMarginRack int32
	MinMarginSet  bool

	// ShedEngagements counts transitions from a zero to a non-zero shed
	// set; MaxShedServers is the largest set held asleep at once;
	// ShedServerTime integrates the shed set over time (server·time).
	ShedEngagements int
	MaxShedServers  int
	ShedServerTime  time.Duration

	// Overloads and Trips count rack-feed overload rising edges and
	// breaker trips; MicroShaves/MicroJoules total the μDEB spike
	// absorption events; VDEBRefreshes counts Algorithm-1 refreshes and
	// MaxShaveDemand their largest pool-wide shave demand in watts.
	Overloads, Trips int
	MicroShaves      int
	MicroJoules      float64
	VDEBRefreshes    int
	MaxShaveDemand   float64
}

// Summarize folds a trace stream into a Summary. Events must be in
// emission order (as read back by ReadJSONL or Tracer.Events).
func Summarize(meta Meta, events []Event, foot Footer) Summary {
	s := Summary{Meta: meta, Events: foot.Events, Dropped: foot.Dropped}
	if foot.Events == 0 {
		s.Events = len(events)
	}

	end := meta.Ticks
	if end == 0 && len(events) > 0 {
		end = events[len(events)-1].Tick + 1
	}

	var (
		level      int
		levelSince int64
		shed       float64
		shedSince  int64
		phaseOpen  = -1 // index into s.Phases awaiting detection
		phaseStart int64
	)
	for _, e := range events {
		switch e.Kind {
		case KindLevel:
			if phaseOpen >= 0 && e.B > e.A {
				s.Phases[phaseOpen].Detection = meta.Time(e.Tick - phaseStart)
				phaseOpen = -1
			}
			if l := int(e.B); l >= 0 && l < len(s.Dwell) {
				s.Dwell[level] += meta.Time(e.Tick - levelSince)
				level, levelSince = l, e.Tick
			}
		case KindAttackPhase:
			s.Phases = append(s.Phases, PhaseDetection{
				Phase: int(e.B), Start: meta.Time(e.Tick), Detection: -1,
			})
			phaseOpen = len(s.Phases) - 1
			phaseStart = e.Tick
		case KindShed:
			s.ShedServerTime += time.Duration(shed * float64(meta.Time(e.Tick-shedSince)))
			if e.A > 0 && shed == 0 {
				s.ShedEngagements++
			}
			if int(e.A) > s.MaxShedServers {
				s.MaxShedServers = int(e.A)
			}
			shed, shedSince = e.A, e.Tick
		case KindMarginLow:
			s.MinMargin, s.MinMarginRack, s.MinMarginSet = e.A, e.Rack, true
		case KindOverload:
			s.Overloads++
		case KindTrip:
			s.Trips++
		case KindMicroShave:
			s.MicroShaves++
			s.MicroJoules += e.A
		case KindVDEBAlloc:
			s.VDEBRefreshes++
			if e.A > s.MaxShaveDemand {
				s.MaxShaveDemand = e.A
			}
		}
	}
	if end > 0 {
		s.Dwell[level] += meta.Time(end - levelSince)
		s.ShedServerTime += time.Duration(shed * float64(meta.Time(end-shedSince)))
	}
	return s
}
