package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Sink consumes flushed trace events. Write may be called several times
// per run (once per Tracer.Flush); Close is called exactly once with the
// run's total dropped-event count and must flush any buffering.
type Sink interface {
	Write(meta Meta, events []Event) error
	Close(dropped uint64) error
}

// Footer is the JSONL stream trailer: how many events the stream carries
// and how many the ring dropped on overflow.
type Footer struct {
	// Events counts the event records written to the stream.
	Events int `json:"events"`
	// Dropped counts events discarded on ring overflow (the stream is a
	// truncated prefix of the run when this is non-zero).
	Dropped uint64 `json:"dropped"`
}

// jsonlEvent is the wire form of one Event.
type jsonlEvent struct {
	Tick int64   `json:"tick"`
	MS   float64 `json:"ms"` // simulation offset in milliseconds
	Rack int32   `json:"rack"`
	Kind string  `json:"kind"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
}

// JSONLSink writes a trace as JSON Lines: one meta header object, one
// object per event, one summary footer. The format is the native input
// of cmd/padtrace and trivially greppable/jq-able.
type JSONLSink struct {
	w         *bufio.Writer
	wroteMeta bool
	events    int
}

// NewJSONLSink wraps w. The caller owns closing the underlying writer
// after the sink's Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Write implements Sink.
func (s *JSONLSink) Write(meta Meta, events []Event) error {
	enc := json.NewEncoder(s.w)
	if !s.wroteMeta {
		s.wroteMeta = true
		if err := enc.Encode(struct {
			Meta Meta `json:"meta"`
		}{meta}); err != nil {
			return err
		}
	}
	for _, e := range events {
		s.events++
		if err := enc.Encode(jsonlEvent{
			Tick: e.Tick,
			MS:   float64(meta.Time(e.Tick)) / float64(time.Millisecond),
			Rack: e.Rack,
			Kind: e.Kind.String(),
			A:    e.A,
			B:    e.B,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink, writing the summary footer.
func (s *JSONLSink) Close(dropped uint64) error {
	if err := json.NewEncoder(s.w).Encode(struct {
		Summary Footer `json:"summary"`
	}{Footer{Events: s.events, Dropped: dropped}}); err != nil {
		return err
	}
	return s.w.Flush()
}

// jsonlLine is the union of the three JSONL record shapes, for reading.
type jsonlLine struct {
	Meta    *Meta   `json:"meta"`
	Summary *Footer `json:"summary"`

	Tick *int64  `json:"tick"`
	Rack int32   `json:"rack"`
	Kind string  `json:"kind"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
}

// ReadJSONL parses a JSONL trace stream back into meta, events and
// footer. A missing footer (crashed run) yields a zero Footer with
// Events set to the parsed count.
func ReadJSONL(r io.Reader) (Meta, []Event, Footer, error) {
	var (
		meta    Meta
		events  []Event
		foot    Footer
		sawFoot bool
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line jsonlLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return meta, events, foot, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		switch {
		case line.Meta != nil:
			meta = *line.Meta
		case line.Summary != nil:
			foot = *line.Summary
			sawFoot = true
		case line.Tick != nil:
			k := kindByName(line.Kind)
			if k == 0 {
				return meta, events, foot, fmt.Errorf("obs: trace line %d: unknown kind %q", lineNo, line.Kind)
			}
			events = append(events, Event{
				Tick: *line.Tick, Rack: line.Rack, Kind: k, A: line.A, B: line.B,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return meta, events, foot, err
	}
	if !sawFoot {
		foot.Events = len(events)
	}
	return meta, events, foot, nil
}

// ChromeSink writes the trace in Chrome trace-event format (the JSON
// array flavor), loadable in Perfetto and chrome://tracing: each event
// becomes an instant event at its simulation offset, with cluster-scope
// events on track 0 and rack i on track i+1.
type ChromeSink struct {
	w     *bufio.Writer
	wrote bool
}

// NewChromeSink wraps w. The caller owns closing the underlying writer
// after the sink's Close.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: bufio.NewWriter(w)}
}

// Write implements Sink.
func (s *ChromeSink) Write(meta Meta, events []Event) error {
	if !s.wrote {
		if _, err := fmt.Fprintf(s.w,
			"[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":%q}}",
			"padsim "+meta.Scheme); err != nil {
			return err
		}
		s.wrote = true
	}
	for _, e := range events {
		tid := int32(0)
		scope := "g"
		if e.Rack >= 0 {
			tid = e.Rack + 1
			scope = "t"
		}
		ts := float64(meta.Time(e.Tick)) / float64(time.Microsecond)
		if _, err := fmt.Fprintf(s.w,
			",\n{\"name\":%q,\"ph\":\"i\",\"ts\":%g,\"pid\":0,\"tid\":%d,\"s\":%q,\"args\":{\"a\":%g,\"b\":%g}}",
			e.Kind.String(), ts, tid, scope, e.A, e.B); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink, terminating the JSON array.
func (s *ChromeSink) Close(dropped uint64) error {
	lead := ",\n"
	if !s.wrote {
		if _, err := s.w.WriteString("["); err != nil {
			return err
		}
		lead = ""
	}
	if _, err := fmt.Fprintf(s.w,
		"%s{\"name\":\"trace_summary\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"dropped\":%d}}]\n", lead, dropped); err != nil {
		return err
	}
	return s.w.Flush()
}
