package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegistryExposition pins the text format on a mix of instrument
// shapes: unlabeled gauge, labeled counter, labeled and unlabeled
// histograms. The padd golden test pins the same bytes end to end; this
// covers the shapes padd does not use.
func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up", "Service is serving.", "").Set("", 1)
	jobs := reg.Counter("jobs_total", "Jobs processed.", "queue")
	jobs.Add("fast", 2)
	jobs.Add("fast", 1)
	jobs.Add("slow", 5)
	lat := reg.Histogram("latency_seconds", "Job latency.", "", []float64{0.1, 1})
	lat.Observe("", 0.05)
	lat.Observe("", 0.5)
	lat.Observe("", 3)

	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP up Service is serving.",
		"# TYPE up gauge",
		"up 1",
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		`jobs_total{queue="fast"} 3`,
		`jobs_total{queue="slow"} 5`,
		"# HELP latency_seconds Job latency.",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 3.55",
		"latency_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryReRegister checks idempotent declaration (same family back)
// and that a kind clash panics rather than corrupting the exposition.
func TestRegistryReRegister(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("n", "h", "")
	if b := reg.Counter("n", "h", ""); b != a {
		t.Fatal("re-registration returned a different family")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	reg.Gauge("n", "h", "")
}

// TestRegistrySetHistogram checks snapshot installation used by padd:
// non-cumulative counts render cumulatively.
func TestRegistrySetHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "help.", "s", []float64{1, 2})
	h.SetHistogram("x", []uint64{1, 2, 3}, 12.5, 6)
	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`h_bucket{s="x",le="1"} 1`,
		`h_bucket{s="x",le="2"} 3`,
		`h_bucket{s="x",le="+Inf"} 6`,
		`h_sum{s="x"} 12.5`,
		`h_count{s="x"} 6`,
	} {
		if !strings.Contains(buf.String(), line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, buf.String())
		}
	}
}
