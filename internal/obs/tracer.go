package obs

// Tracer is a preallocated ring buffer of trace events. The engine emits
// into it from the tick loop; everything slow — encoding, I/O — happens
// in Flush/Close, which the run driver calls outside the tick loop.
//
// Overflow policy: when the ring is full, Emit drops the new event and
// increments the dropped counter instead of blocking or overwriting —
// the retained prefix stays contiguous and in emission order, so a
// truncated trace is still a valid (if shorter) timeline, and the drop
// count is reported in the stream footer.
//
// Concurrency: a Tracer is confined to the goroutine stepping the run it
// is attached to, exactly like the sim.Stepper that feeds it. The engine
// guarantees events reach Emit in serial rack/tick order even under
// Config.Workers parallelism (kernel-phase observations ride the
// per-rack SoA outputs and are folded by the serial reduce).
//
// A nil *Tracer is valid and disabled: every method is nil-safe, so call
// sites need no flag checks beyond what the engine already does.
type Tracer struct {
	buf     []Event
	n       int
	dropped uint64
	meta    Meta
	sinks   []Sink
}

// DefaultCapacity is the ring capacity NewTracer uses when given a
// non-positive one: large enough for the transition-style events the
// engine emits over a multi-hour run, small enough to stay cache-friendly
// (64k events × 32 bytes = 2 MiB).
const DefaultCapacity = 1 << 16

// NewTracer builds a tracer with the given ring capacity and flush
// sinks. Sinks may be nil or empty; Events still accumulate for
// programmatic access.
func NewTracer(capacity int, sinks ...Sink) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, capacity), sinks: sinks}
}

// SetMeta records the run description written as the stream header. The
// engine calls this when the tracer is attached.
func (t *Tracer) SetMeta(m Meta) {
	if t == nil {
		return
	}
	t.meta = m
}

// Meta returns the run description.
func (t *Tracer) Meta() Meta {
	if t == nil {
		return Meta{}
	}
	return t.meta
}

// Emit appends one event, or counts it as dropped when the ring is
// full. Nil-safe and allocation-free.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if t.n == len(t.buf) {
		t.dropped++
		return
	}
	t.buf[t.n] = e
	t.n++
}

// Len reports how many events the ring holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped reports how many events were discarded on ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns a copy of the buffered events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, t.n)
	copy(out, t.buf[:t.n])
	return out
}

// Flush delivers the buffered events to every sink and clears the ring
// (the dropped counter persists, so the Close footer reports the run
// total). Call it between runs or after the tick loop — never inside it.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	for _, s := range t.sinks {
		if err := s.Write(t.meta, t.buf[:t.n]); err != nil {
			return err
		}
	}
	t.n = 0
	return nil
}

// Close flushes whatever remains and closes every sink, handing each the
// run's drop count for its footer. The tracer may be reused afterwards
// only for programmatic access (Events), not for sink flushing.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if err := t.Flush(); err != nil {
		return err
	}
	var first error
	for _, s := range t.sinks {
		if err := s.Close(t.dropped); err != nil && first == nil {
			first = err
		}
	}
	t.sinks = nil
	return first
}
