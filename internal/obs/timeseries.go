package obs

import (
	"sync"
	"time"
)

// Series is a fixed-capacity ring-buffer time series with tiered
// downsampling: every appended sample lands in each tier, where
// consecutive samples merge into fixed-width buckets (min/max/last,
// plus the merged-sample count). Coarser tiers cover longer horizons in
// the same memory, so a dashboard can ask for "the last two minutes at
// raw resolution" and "the last two hours at one-minute resolution"
// from the same object.
//
// The write path is allocation-free in steady state (the ring storage
// is grown once, on first append) and takes one short mutex hold per
// Append, so a single writer and any number of concurrent Snapshot
// readers are safe; readers never block the writer for longer than one
// bucket copy. Samples are indexed, not timestamped: the caller maps
// sample index to time (padd appends exactly one sample per engine
// tick, so bucket start time = bucket index × step × tick).
type Series struct {
	mu    sync.Mutex
	n     uint64 // samples appended
	tiers []seriesTier
}

// TierSpec sizes one downsampling tier: Step base samples merge into
// one bucket, and the newest Cap buckets are retained.
type TierSpec struct {
	Step int
	Cap  int
}

// Bucket is one downsampled bucket: the min/max/last of the samples
// merged into it. Index is the bucket ordinal (first sample index /
// step); Count is how many samples merged (Count < Step means the
// bucket is still filling, or the series started mid-bucket).
type Bucket struct {
	Index uint64  `json:"index"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Last  float64 `json:"last"`
	Count uint32  `json:"count"`
}

// seriesTier is one ring of buckets. Bucket indexes are contiguous
// (samples arrive one at a time, so a new bucket's index is always the
// previous one's plus one), which lets the ring store only the values:
// the Index of the bucket at ring position i is lastIndex-(count-1)+i
// counted from the oldest retained bucket.
type seriesTier struct {
	step      int
	buf       []bucketCell
	head      int    // ring position of the oldest retained bucket
	count     int    // retained buckets
	lastIndex uint64 // bucket index of the newest bucket (valid when count > 0)
}

// bucketCell is the in-ring representation; Index is derived on
// snapshot rather than stored, keeping a cell at 28 bytes so fleet-wide
// per-session rings stay cheap.
type bucketCell struct {
	min, max, last float64
	count          uint32
}

// NewSeries builds a series with the given tiers. Tiers with Step or
// Cap < 1 are clamped to 1. Ring storage is allocated lazily on the
// first Append, so constructing many series for sessions that never
// record costs only the headers.
func NewSeries(tiers ...TierSpec) *Series {
	s := &Series{tiers: make([]seriesTier, len(tiers))}
	for i, t := range tiers {
		if t.Step < 1 {
			t.Step = 1
		}
		if t.Cap < 1 {
			t.Cap = 1
		}
		s.tiers[i] = seriesTier{step: t.Step}
		s.tiers[i].buf = nil // allocated on first Append
		s.tiers[i].head = -t.Cap // stash Cap until allocation (head unused while buf is nil)
	}
	return s
}

// Len returns the number of samples appended so far.
func (s *Series) Len() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Tiers returns the tier geometry (step in base samples, capacity in
// buckets), coarsest last.
func (s *Series) Tiers() []TierSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TierSpec, len(s.tiers))
	for i := range s.tiers {
		cap := len(s.tiers[i].buf)
		if cap == 0 {
			cap = -s.tiers[i].head
		}
		out[i] = TierSpec{Step: s.tiers[i].step, Cap: cap}
	}
	return out
}

// Append records one sample into every tier. Allocation-free after the
// first call; safe with concurrent Snapshot readers.
func (s *Series) Append(v float64) {
	s.mu.Lock()
	idx := s.n
	s.n++
	for i := range s.tiers {
		t := &s.tiers[i]
		if t.buf == nil {
			t.buf = make([]bucketCell, -t.head)
			t.head = 0
		}
		bi := idx / uint64(t.step)
		if t.count > 0 && bi == t.lastIndex {
			// Merge into the filling bucket.
			c := &t.buf[(t.head+t.count-1)%len(t.buf)]
			if v < c.min {
				c.min = v
			}
			if v > c.max {
				c.max = v
			}
			c.last = v
			c.count++
			continue
		}
		// Open a new bucket, evicting the oldest when the ring is full.
		pos := (t.head + t.count) % len(t.buf)
		if t.count == len(t.buf) {
			pos = t.head
			t.head = (t.head + 1) % len(t.buf)
		} else {
			t.count++
		}
		t.buf[pos] = bucketCell{min: v, max: v, last: v, count: 1}
		t.lastIndex = bi
	}
	s.mu.Unlock()
}

// Snapshot copies tier's retained buckets, oldest first, appending to
// dst (pass nil to allocate). Buckets with Index*Step < since (a sample
// index) are skipped, so pollers can fetch incrementally. An
// out-of-range tier yields no buckets.
func (s *Series) Snapshot(tier int, since uint64, dst []Bucket) []Bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tier < 0 || tier >= len(s.tiers) {
		return dst
	}
	t := &s.tiers[tier]
	for i := 0; i < t.count; i++ {
		idx := t.lastIndex - uint64(t.count-1-i)
		if idx*uint64(t.step) < since {
			continue
		}
		c := &t.buf[(t.head+i)%len(t.buf)]
		dst = append(dst, Bucket{
			Index: idx,
			Min:   c.min,
			Max:   c.max,
			Last:  c.last,
			Count: c.count,
		})
	}
	return dst
}

// DefaultTiers builds the standard three-tier geometry for a stream
// sampled every tick: roughly 1s raw buckets for the last couple of
// minutes, 10s buckets for the last quarter hour, and 1m buckets for
// the last two hours. Ticks coarser than a tier's resolution clamp that
// tier to one sample per bucket.
func DefaultTiers(tick time.Duration) []TierSpec {
	step := func(res time.Duration) int {
		if tick <= 0 {
			return 1
		}
		n := int(res / tick)
		if n < 1 {
			n = 1
		}
		return n
	}
	return []TierSpec{
		{Step: step(time.Second), Cap: 120},
		{Step: step(10 * time.Second), Cap: 90},
		{Step: step(time.Minute), Cap: 120},
	}
}
