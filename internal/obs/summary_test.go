package obs_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/policytest"
	"repro/internal/obs"
)

// TestSummarizePolicyTimeline drives the real Figure-9 policy through the
// canonical policytest timeline, emits level events exactly the way the
// engine does (initial assignment with old level 0, then transitions),
// and checks the summarized dwell times against the timeline's expected
// levels counted by hand from the same table.
func TestSummarizePolicyTimeline(t *testing.T) {
	steps := policytest.Timeline()
	tick := 100 * time.Millisecond
	meta := obs.Meta{Scheme: "PAD", Tick: tick, Racks: 22, ServersPerRack: 10, Ticks: int64(len(steps))}

	tr := obs.NewTracer(0)
	pol := core.NewPolicy(false, steps[0].In)
	last := core.Level(0)
	var events []obs.Event
	for i, s := range steps {
		lvl := pol.Step(s.In)
		if lvl != s.Want {
			t.Fatalf("step %d (%s): policy level %v, want %v", i, s.Name, lvl, s.Want)
		}
		if lvl != last {
			e := obs.Event{Tick: int64(i), Rack: -1, Kind: obs.KindLevel, A: float64(last), B: float64(lvl)}
			tr.Emit(e)
			events = append(events, e)
			last = lvl
		}
	}

	// Expected dwell: one tick per timeline step, attributed to the level
	// the step ends at (the engine emits the transition on the tick it
	// happens, so the tick belongs to the new level).
	var want [4]time.Duration
	for _, s := range steps {
		want[int(s.Want)] += tick
	}

	sum := obs.Summarize(meta, tr.Events(), obs.Footer{Events: len(events)})
	if sum.Dwell != want {
		t.Fatalf("dwell = %v, want %v", sum.Dwell, want)
	}
	if sum.Dwell[0] != 0 {
		t.Fatal("timeline starts at L1 on tick 0; no time should be attributed to level 0")
	}
	total := sum.Dwell[1] + sum.Dwell[2] + sum.Dwell[3]
	if total != time.Duration(len(steps))*tick {
		t.Fatalf("dwell total %v does not cover the run (%d ticks)", total, len(steps))
	}
}

// TestSummarizeSyntheticRun checks every other summary quantity on a
// hand-built stream: per-phase time-to-detection, the shed integral and
// engagement count, the run-minimum margin, and the event tallies.
func TestSummarizeSyntheticRun(t *testing.T) {
	tick := 100 * time.Millisecond
	meta := obs.Meta{Scheme: "PAD", Tick: tick, Racks: 4, ServersPerRack: 10, Ticks: 50}
	events := []obs.Event{
		{Tick: 0, Rack: -1, Kind: obs.KindLevel, A: 0, B: 1},
		{Tick: 3, Rack: 2, Kind: obs.KindMarginLow, A: 500, B: 2200},
		{Tick: 10, Rack: -1, Kind: obs.KindAttackPhase, A: 0, B: 1},
		{Tick: 10, Rack: -1, Kind: obs.KindVDEBAlloc, A: 1000, B: 900},
		{Tick: 14, Rack: -1, Kind: obs.KindLevel, A: 1, B: 2},
		{Tick: 20, Rack: -1, Kind: obs.KindAttackPhase, A: 1, B: 2},
		{Tick: 20, Rack: -1, Kind: obs.KindVDEBAlloc, A: 1500, B: 1000},
		{Tick: 21, Rack: 1, Kind: obs.KindMicroShave, A: 12, B: 1900},
		{Tick: 22, Rack: -1, Kind: obs.KindShed, A: 5, B: 800},
		{Tick: 23, Rack: 1, Kind: obs.KindMicroShave, A: 8, B: 1850},
		{Tick: 24, Rack: -1, Kind: obs.KindMarginLow, A: 120, B: 18000},
		{Tick: 24, Rack: 3, Kind: obs.KindOverload, A: 2100, B: 2052},
		{Tick: 25, Rack: -1, Kind: obs.KindLevel, A: 2, B: 3},
		{Tick: 30, Rack: -1, Kind: obs.KindShed, A: 0, B: 0},
		{Tick: 40, Rack: 3, Kind: obs.KindTrip, A: 2300, B: 2052},
	}
	s := obs.Summarize(meta, events, obs.Footer{Events: len(events), Dropped: 2})

	if s.Dropped != 2 || s.Events != len(events) {
		t.Fatalf("accounting: %+v", s)
	}
	wantDwell := [4]time.Duration{0, 14 * tick, 11 * tick, 25 * tick}
	if s.Dwell != wantDwell {
		t.Fatalf("dwell = %v, want %v", s.Dwell, wantDwell)
	}
	wantPhases := []obs.PhaseDetection{
		{Phase: 1, Start: 10 * tick, Detection: 4 * tick},
		{Phase: 2, Start: 20 * tick, Detection: 5 * tick},
	}
	if len(s.Phases) != 2 || s.Phases[0] != wantPhases[0] || s.Phases[1] != wantPhases[1] {
		t.Fatalf("phases = %+v, want %+v", s.Phases, wantPhases)
	}
	if s.ShedEngagements != 1 || s.MaxShedServers != 5 {
		t.Fatalf("shed: %+v", s)
	}
	if want := time.Duration(5 * float64(8*tick)); s.ShedServerTime != want {
		t.Fatalf("shed integral = %v, want %v", s.ShedServerTime, want)
	}
	if !s.MinMarginSet || s.MinMargin != 120 || s.MinMarginRack != -1 {
		t.Fatalf("margin: %+v", s)
	}
	if s.Overloads != 1 || s.Trips != 1 || s.MicroShaves != 2 || s.MicroJoules != 20 ||
		s.VDEBRefreshes != 2 || s.MaxShaveDemand != 1500 {
		t.Fatalf("tallies: %+v", s)
	}
}

// TestSummarizeUndetectedPhase pins the -1 sentinel: a phase with no
// level escalation before the next phase (or the run end) is undetected.
func TestSummarizeUndetectedPhase(t *testing.T) {
	meta := obs.Meta{Scheme: "Conv", Tick: time.Second, Ticks: 100}
	events := []obs.Event{
		{Tick: 5, Rack: -1, Kind: obs.KindAttackPhase, A: 0, B: 1},
		{Tick: 50, Rack: -1, Kind: obs.KindAttackPhase, A: 1, B: 2},
	}
	s := obs.Summarize(meta, events, obs.Footer{Events: 2})
	if len(s.Phases) != 2 || s.Phases[0].Detection != -1 || s.Phases[1].Detection != -1 {
		t.Fatalf("phases = %+v, want both undetected", s.Phases)
	}
	// A scheme with no level reports its whole run as level 0.
	if s.Dwell[0] != 100*time.Second {
		t.Fatalf("dwell[0] = %v, want full run", s.Dwell[0])
	}
}
