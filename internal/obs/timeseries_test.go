package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestSeriesRawBuckets checks the base bookkeeping: one-sample buckets,
// indexes and min/max/last on a single raw tier.
func TestSeriesRawBuckets(t *testing.T) {
	s := NewSeries(TierSpec{Step: 1, Cap: 8})
	for i := 0; i < 5; i++ {
		s.Append(float64(i))
	}
	got := s.Snapshot(0, 0, nil)
	if len(got) != 5 {
		t.Fatalf("got %d buckets, want 5", len(got))
	}
	for i, b := range got {
		v := float64(i)
		if b.Index != uint64(i) || b.Min != v || b.Max != v || b.Last != v || b.Count != 1 {
			t.Fatalf("bucket %d = %+v, want index %d value %g count 1", i, b, i, v)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
}

// TestSeriesDownsampling checks bucket merging on a coarser tier:
// min/max/last and the partial (still-filling) final bucket.
func TestSeriesDownsampling(t *testing.T) {
	s := NewSeries(TierSpec{Step: 4, Cap: 8})
	vals := []float64{2, 7, 1, 5 /* bucket 0 */, 9, 3 /* partial bucket 1 */}
	for _, v := range vals {
		s.Append(v)
	}
	got := s.Snapshot(0, 0, nil)
	if len(got) != 2 {
		t.Fatalf("got %d buckets, want 2", len(got))
	}
	want0 := Bucket{Index: 0, Min: 1, Max: 7, Last: 5, Count: 4}
	if got[0] != want0 {
		t.Fatalf("full bucket = %+v, want %+v", got[0], want0)
	}
	want1 := Bucket{Index: 1, Min: 3, Max: 9, Last: 3, Count: 2}
	if got[1] != want1 {
		t.Fatalf("partial bucket = %+v, want %+v", got[1], want1)
	}
}

// TestSeriesWraparound fills a small ring far past capacity and checks
// the retained window is exactly the newest Cap buckets with contiguous
// indexes.
func TestSeriesWraparound(t *testing.T) {
	s := NewSeries(TierSpec{Step: 2, Cap: 3})
	const samples = 26 // 13 buckets through a 3-bucket ring
	for i := 0; i < samples; i++ {
		s.Append(float64(i))
	}
	got := s.Snapshot(0, 0, nil)
	if len(got) != 3 {
		t.Fatalf("got %d buckets, want 3", len(got))
	}
	for i, b := range got {
		wantIdx := uint64(10 + i) // newest bucket is 12, window is 10..12
		if b.Index != wantIdx {
			t.Fatalf("bucket %d index = %d, want %d", i, b.Index, wantIdx)
		}
		lo := float64(b.Index * 2)
		want := Bucket{Index: wantIdx, Min: lo, Max: lo + 1, Last: lo + 1, Count: 2}
		if b != want {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want)
		}
	}
}

// TestSeriesTierPromotion checks that one Append lands in every tier:
// the same samples appear raw, 4x downsampled and 8x downsampled, and
// each tier covers its own (longer) horizon.
func TestSeriesTierPromotion(t *testing.T) {
	s := NewSeries(
		TierSpec{Step: 1, Cap: 4},
		TierSpec{Step: 4, Cap: 4},
		TierSpec{Step: 8, Cap: 4},
	)
	const samples = 32
	for i := 0; i < samples; i++ {
		s.Append(float64(i))
	}
	raw := s.Snapshot(0, 0, nil)
	if len(raw) != 4 || raw[0].Index != 28 || raw[3].Last != 31 {
		t.Fatalf("raw tier window wrong: %+v", raw)
	}
	mid := s.Snapshot(1, 0, nil)
	if len(mid) != 4 {
		t.Fatalf("mid tier has %d buckets, want 4", len(mid))
	}
	// Mid bucket j covers samples [4j, 4j+3]; the retained window is
	// buckets 4..7 (samples 16..31).
	for j, b := range mid {
		idx := uint64(4 + j)
		lo := float64(idx * 4)
		want := Bucket{Index: idx, Min: lo, Max: lo + 3, Last: lo + 3, Count: 4}
		if b != want {
			t.Fatalf("mid bucket %d = %+v, want %+v", j, b, want)
		}
	}
	top := s.Snapshot(2, 0, nil)
	if len(top) != 4 {
		t.Fatalf("top tier has %d buckets, want 4", len(top))
	}
	for j, b := range top {
		idx := uint64(j)
		lo := float64(idx * 8)
		want := Bucket{Index: idx, Min: lo, Max: lo + 7, Last: lo + 7, Count: 8}
		if b != want {
			t.Fatalf("top bucket %d = %+v, want %+v", j, b, want)
		}
	}
}

// TestSeriesEmptyAndSince covers the empty snapshot, the out-of-range
// tier, and the since filter used for incremental polling.
func TestSeriesEmptyAndSince(t *testing.T) {
	s := NewSeries(TierSpec{Step: 2, Cap: 8})
	if got := s.Snapshot(0, 0, nil); len(got) != 0 {
		t.Fatalf("empty series snapshot = %+v, want none", got)
	}
	for i := 0; i < 10; i++ {
		s.Append(float64(i))
	}
	if got := s.Snapshot(1, 0, nil); len(got) != 0 {
		t.Fatalf("out-of-range tier snapshot = %+v, want none", got)
	}
	if got := s.Snapshot(-1, 0, nil); len(got) != 0 {
		t.Fatalf("negative tier snapshot = %+v, want none", got)
	}
	// since=6 skips buckets starting before sample 6: buckets 0..2 go,
	// buckets 3 and 4 stay.
	got := s.Snapshot(0, 6, nil)
	if len(got) != 2 || got[0].Index != 3 || got[1].Index != 4 {
		t.Fatalf("since snapshot = %+v, want buckets 3 and 4", got)
	}
	// Appending to dst accumulates rather than clobbering.
	got = s.Snapshot(0, 8, got)
	if len(got) != 3 || got[2].Index != 4 {
		t.Fatalf("append-to-dst snapshot = %+v, want 3 buckets ending at 4", got)
	}
}

// TestSeriesClamps checks the constructor clamps degenerate geometry
// rather than panicking later.
func TestSeriesClamps(t *testing.T) {
	s := NewSeries(TierSpec{Step: 0, Cap: 0})
	s.Append(3)
	s.Append(4)
	got := s.Snapshot(0, 0, nil)
	if len(got) != 1 || got[0].Index != 1 || got[0].Last != 4 {
		t.Fatalf("clamped series snapshot = %+v, want single bucket 1 last 4", got)
	}
	tiers := s.Tiers()
	if len(tiers) != 1 || tiers[0].Step != 1 || tiers[0].Cap != 1 {
		t.Fatalf("clamped tiers = %+v, want step 1 cap 1", tiers)
	}
}

// TestSeriesTiersBeforeAppend checks geometry introspection works
// before the lazy ring allocation.
func TestSeriesTiersBeforeAppend(t *testing.T) {
	s := NewSeries(TierSpec{Step: 10, Cap: 120}, TierSpec{Step: 600, Cap: 90})
	tiers := s.Tiers()
	if len(tiers) != 2 || tiers[0] != (TierSpec{Step: 10, Cap: 120}) || tiers[1] != (TierSpec{Step: 600, Cap: 90}) {
		t.Fatalf("pre-append tiers = %+v", tiers)
	}
	s.Append(1)
	tiers = s.Tiers()
	if tiers[0] != (TierSpec{Step: 10, Cap: 120}) || tiers[1] != (TierSpec{Step: 600, Cap: 90}) {
		t.Fatalf("post-append tiers = %+v", tiers)
	}
}

// TestSeriesConcurrentSnapshot hammers one writer against many
// snapshot readers under -race, checking every observed snapshot is
// internally consistent: contiguous indexes, counts within step, and
// min <= last <= max.
func TestSeriesConcurrentSnapshot(t *testing.T) {
	s := NewSeries(TierSpec{Step: 1, Cap: 64}, TierSpec{Step: 8, Cap: 32})
	const samples = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(tier int) {
			defer wg.Done()
			var buf []Bucket
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = s.Snapshot(tier%2, 0, buf[:0])
				for i, b := range buf {
					if i > 0 && b.Index != buf[i-1].Index+1 {
						t.Errorf("tier %d: indexes not contiguous: %d after %d", tier%2, b.Index, buf[i-1].Index)
						return
					}
					if b.Min > b.Last || b.Last > b.Max || b.Count == 0 {
						t.Errorf("tier %d: inconsistent bucket %+v", tier%2, b)
						return
					}
				}
			}
		}(r)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < samples; i++ {
		s.Append(rng.Float64())
	}
	close(stop)
	wg.Wait()
	if s.Len() != samples {
		t.Fatalf("Len = %d, want %d", s.Len(), samples)
	}
}

// TestDefaultTiers checks the tick-to-tier mapping, including coarse
// ticks clamping a tier to one sample per bucket.
func TestDefaultTiers(t *testing.T) {
	got := DefaultTiers(100 * time.Millisecond)
	want := []TierSpec{{Step: 10, Cap: 120}, {Step: 100, Cap: 90}, {Step: 600, Cap: 120}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultTiers(100ms)[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	got = DefaultTiers(5 * time.Second)
	want = []TierSpec{{Step: 1, Cap: 120}, {Step: 2, Cap: 90}, {Step: 12, Cap: 120}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultTiers(5s)[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// BenchmarkSeriesAppend prices the per-tick write path; it must be
// allocation-free in steady state.
func BenchmarkSeriesAppend(b *testing.B) {
	s := NewSeries(DefaultTiers(100 * time.Millisecond)...)
	s.Append(0.5) // warm the lazy ring allocation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(float64(i&1023) / 1024)
	}
}
