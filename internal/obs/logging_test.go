package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"strings"
	"testing"
)

func TestLogFlagsJSON(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	lf := AddLogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "warn", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	l, err := lf.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("shown", "k", 1)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 log line, got %d:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, lines[0])
	}
	if rec["msg"] != "shown" || rec["level"] != "WARN" || rec["k"] != float64(1) {
		t.Fatalf("record: %v", rec)
	}
}

func TestLogFlagsText(t *testing.T) {
	lf := &LogFlags{Level: "debug", Format: "text"}
	var buf bytes.Buffer
	l, err := lf.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("dbg", "x", "y")
	if !strings.Contains(buf.String(), "level=DEBUG") || !strings.Contains(buf.String(), "x=y") {
		t.Fatalf("text output: %s", buf.String())
	}
}

func TestLogFlagsErrors(t *testing.T) {
	for _, lf := range []*LogFlags{
		{Level: "chatty", Format: "text"},
		{Level: "info", Format: "xml"},
	} {
		if _, err := lf.Logger(&bytes.Buffer{}); err == nil {
			t.Fatalf("%+v: no error", lf)
		}
	}
}
