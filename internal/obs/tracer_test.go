package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testMeta() Meta {
	return Meta{Scheme: "PAD", Tick: 100 * time.Millisecond, Racks: 4, ServersPerRack: 10}
}

// TestNilTracer pins the disabled path: every method on a nil tracer is
// a safe no-op, which is what lets the engine emit unconditionally.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindLevel})
	tr.SetMeta(testMeta())
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be empty")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRingOverflow pins the overflow policy: a full ring drops new
// events (counting them) without blocking and without disturbing the
// order or content of the retained prefix.
func TestRingOverflow(t *testing.T) {
	const capacity, extra = 8, 5
	tr := NewTracer(capacity)
	want := make([]Event, 0, capacity)
	for i := 0; i < capacity+extra; i++ {
		e := Event{Tick: int64(i), Rack: int32(i % 3), Kind: KindShed, A: float64(i)}
		tr.Emit(e)
		if i < capacity {
			want = append(want, e)
		}
	}
	if got := tr.Dropped(); got != extra {
		t.Fatalf("dropped = %d, want %d", got, extra)
	}
	if got := tr.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("retained events reordered or corrupted:\ngot  %v\nwant %v", got, want)
	}
	if tr.Len() != capacity {
		t.Fatalf("len = %d, want %d", tr.Len(), capacity)
	}
}

// TestFlushClearsRing verifies Flush hands events to sinks and frees the
// ring for more, while the dropped counter survives for the footer.
func TestFlushClearsRing(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(2, NewJSONLSink(&buf))
	tr.SetMeta(testMeta())
	tr.Emit(Event{Tick: 0, Rack: -1, Kind: KindLevel, B: 1})
	tr.Emit(Event{Tick: 1, Rack: 0, Kind: KindShed, A: 3})
	tr.Emit(Event{Tick: 2, Rack: 1, Kind: KindShed}) // dropped
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("ring not cleared by flush: %d", tr.Len())
	}
	tr.Emit(Event{Tick: 3, Rack: -1, Kind: KindTrip, A: 9})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	meta, events, foot, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != testMeta() {
		t.Fatalf("meta round-trip: got %+v", meta)
	}
	wantEvents := []Event{
		{Tick: 0, Rack: -1, Kind: KindLevel, B: 1},
		{Tick: 1, Rack: 0, Kind: KindShed, A: 3},
		{Tick: 3, Rack: -1, Kind: KindTrip, A: 9},
	}
	if !reflect.DeepEqual(events, wantEvents) {
		t.Fatalf("events:\ngot  %v\nwant %v", events, wantEvents)
	}
	if foot.Events != 3 || foot.Dropped != 1 {
		t.Fatalf("footer = %+v, want 3 events, 1 dropped", foot)
	}
}

// TestJSONLRoundTrip checks Emit → JSONL → ReadJSONL is the identity on
// a spread of kinds and payloads.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(0, NewJSONLSink(&buf))
	tr.SetMeta(testMeta())
	want := []Event{
		{Tick: 0, Rack: -1, Kind: KindLevel, A: 0, B: 1},
		{Tick: 17, Rack: 2, Kind: KindMicroShave, A: 12.5, B: 1400},
		{Tick: 18, Rack: -1, Kind: KindVDEBAlloc, A: 800, B: 640.25},
		{Tick: 40, Rack: 3, Kind: KindOverload, A: 2011, B: 1980},
		{Tick: 41, Rack: 3, Kind: KindHeat, A: 5.5, B: 10},
		{Tick: 60, Rack: -1, Kind: KindAttackPhase, A: 1, B: 2},
		{Tick: 77, Rack: 1, Kind: KindMarginLow, A: 42, B: 2138},
		{Tick: 90, Rack: 0, Kind: KindTrip, A: 2300, B: 2138},
	}
	for _, e := range want {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, _, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\ngot  %v\nwant %v", got, want)
	}
}

// TestChromeSinkValidJSON checks the Chrome trace-event output is one
// valid JSON array, with and without events.
func TestChromeSinkValidJSON(t *testing.T) {
	for _, n := range []int{0, 3} {
		var buf bytes.Buffer
		tr := NewTracer(0, NewChromeSink(&buf))
		tr.SetMeta(testMeta())
		for i := 0; i < n; i++ {
			tr.Emit(Event{Tick: int64(i * 10), Rack: int32(i - 1), Kind: KindShed, A: float64(i)})
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		var arr []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
			t.Fatalf("n=%d: invalid chrome trace JSON: %v\n%s", n, err, buf.String())
		}
		if n > 0 {
			// process_name metadata + n events + summary.
			if len(arr) != n+2 {
				t.Fatalf("n=%d: %d records, want %d", n, len(arr), n+2)
			}
			if !strings.Contains(buf.String(), "\"ph\":\"i\"") {
				t.Fatalf("no instant events in %s", buf.String())
			}
		}
	}
}

// TestKindNames pins the wire names and their inversion.
func TestKindNames(t *testing.T) {
	for k := KindLevel; k <= KindAttackPhase; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := kindByName(k.String()); got != k {
			t.Fatalf("kindByName(%q) = %d, want %d", k.String(), got, k)
		}
	}
	if kindByName("nope") != 0 {
		t.Fatal("unknown names must map to 0")
	}
}
