// Package obs is the engine's observability layer: structured per-tick
// event tracing, a Prometheus-style metrics registry, structured-logging
// flag plumbing, and offline trace analysis.
//
// Everything in this package obeys two contracts the simulator imposes:
//
//   - Zero overhead when disabled. A nil *Tracer is a valid tracer whose
//     Emit is a nil-check and a return; the engine's hot loop never
//     allocates or formats anything on behalf of tracing.
//   - Determinism. Events carry simulation time only (tick indices) —
//     never wall clock — so a traced run's event stream is a pure
//     function of the run's inputs, bit-identical across worker counts
//     and across machines. All rendering (JSON, Chrome trace) happens at
//     flush time, outside the tick loop.
//
// A corollary the engine's quiescent fast path (sim.Config.SkipQuiescent)
// relies on: quiescent ticks emit no events. Every emission above is
// edge-triggered — a level transition, a trip, a rising overload or heat
// edge, a new minimum, a refresh decision, a shed-set change, a phase
// change — and a quiescent tick by definition has no edges, so a span of
// elided ticks contributes nothing to the stream except what the
// scheme's own clocked decisions (the vDEB 1 s refresh) would have
// emitted, which the scheme synthesizes when the span is skipped. Traced
// runs therefore produce identical event streams with skipping on or
// off; internal/sim's TestTraceSkipIdentical pins that.
package obs

import "time"

// Kind classifies a trace event. Kinds are stable small integers so the
// on-ring representation stays fixed-size; String gives the wire name
// used by the sinks.
type Kind uint8

// Event kinds. The A/B payload meaning is per kind, documented here.
const (
	// KindLevel is a security-level transition: A = old level, B = new
	// level (0 old level means the run's initial level assignment).
	KindLevel Kind = iota + 1
	// KindTrip is a breaker trip: Rack is the feed (-1 for the cluster
	// PDU), A = draw at trip, B = the breaker's rated power.
	KindTrip
	// KindOverload is a rising edge of rack draw above the tolerated
	// overload limit (the paper's effective-attack count): A = draw,
	// B = the tolerated limit.
	KindOverload
	// KindHeat is a breaker thermal accumulator crossing half its trip
	// threshold on the way up — the early warning that spike trains are
	// accumulating toward a trip: A = heat, B = trip threshold.
	KindHeat
	// KindMarginLow is a new run-minimum breaker margin: Rack is the
	// binding feed (-1 for the PDU), A = margin in watts, B = the feed's
	// rated power.
	KindMarginLow
	// KindVDEBAlloc is one Algorithm-1 refresh of the vDEB pool:
	// A = pool-wide shave demand in watts, B = total discharge capacity
	// actually allocated.
	KindVDEBAlloc
	// KindMicroShave is a μDEB absorbing a hidden spike on one rack:
	// A = energy shaved this tick in joules, B = the rack's grid draw
	// after shaving.
	KindMicroShave
	// KindShed is a change in the cluster shed set: A = servers held
	// asleep, B = demand watts displaced. A 0/0 event releases shedding.
	KindShed
	// KindAttackPhase is the attack controller changing phase:
	// A = old phase, B = new phase (virus.Phase values).
	KindAttackPhase
)

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindLevel:
		return "level"
	case KindTrip:
		return "trip"
	case KindOverload:
		return "overload"
	case KindHeat:
		return "heat"
	case KindMarginLow:
		return "margin_low"
	case KindVDEBAlloc:
		return "vdeb_alloc"
	case KindMicroShave:
		return "micro_shave"
	case KindShed:
		return "shed"
	case KindAttackPhase:
		return "attack_phase"
	default:
		return "unknown"
	}
}

// kindByName inverts String for the JSONL reader.
func kindByName(s string) Kind {
	for k := KindLevel; k <= KindAttackPhase; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// Event is one fixed-size trace record. Tick is the 0-based index of
// the simulation tick the event happened on; the event's simulation
// offset is Tick × Meta.Tick. Rack is the rack index, or -1 for
// cluster-scope events. A and B are the kind-specific payloads.
type Event struct {
	Tick int64
	Rack int32
	Kind Kind
	A, B float64
}

// Meta describes the run a trace belongs to. The engine fills it when a
// tracer is attached; sinks write it as the stream header so analysis
// tools can convert ticks to time and label schemes.
type Meta struct {
	// Scheme is the power-management scheme under control.
	Scheme string `json:"scheme"`
	// Tick is the simulation step.
	Tick time.Duration `json:"tick_ns"`
	// Racks and ServersPerRack shape the traced cluster.
	Racks          int `json:"racks"`
	ServersPerRack int `json:"servers_per_rack"`
	// Ticks is how many ticks the run actually advanced, finalized by the
	// run driver when the run ends (0 when the driver never finalized —
	// analysis falls back to the last event's tick).
	Ticks int64 `json:"ticks,omitempty"`
}

// Time converts a tick index to its simulation offset.
func (m Meta) Time(tick int64) time.Duration {
	return time.Duration(tick) * m.Tick
}
