package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogFlags holds the structured-logging flag values every binary in this
// repo shares: -log-level selects verbosity and -log-format the
// rendering. Register with AddLogFlags before flag.Parse, then build the
// logger with Logger after.
type LogFlags struct {
	Level  string
	Format string
}

// AddLogFlags registers -log-level and -log-format on fs and returns the
// value holder.
func AddLogFlags(fs *flag.FlagSet) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Level, "log-level", "info", "log verbosity: debug, info, warn or error")
	fs.StringVar(&lf.Format, "log-format", "text", "log output format: text or json")
	return lf
}

// Logger builds the slog.Logger the parsed flags describe, writing to w
// (conventionally os.Stderr, keeping stdout for program output), and
// installs it as the process-wide slog default.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	if err := level.UnmarshalText([]byte(lf.Level)); err != nil {
		return nil, fmt.Errorf("obs: bad -log-level %q (want debug, info, warn or error)", lf.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(lf.Format) {
	case "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: bad -log-format %q (want text or json)", lf.Format)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}
