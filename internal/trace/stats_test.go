package trace

import (
	"math"
	"testing"
	"time"
)

func TestSummarizeKnownTrace(t *testing.T) {
	tr := &Trace{Machines: 2, Tasks: []Task{
		{Start: 0, End: 10 * time.Second, Machine: 0, CPURate: 0.4},
		{Start: 0, End: 10 * time.Second, Machine: 1, CPURate: 0.8},
		{Start: 10 * time.Second, End: 20 * time.Second, Machine: 0, CPURate: 0.2},
	}}
	s, err := Summarize(tr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machines != 2 || s.Tasks != 3 {
		t.Fatalf("population wrong: %+v", s)
	}
	if s.Horizon != 20*time.Second {
		t.Fatalf("horizon = %v", s.Horizon)
	}
	if s.MeanTaskDuration != 10*time.Second {
		t.Fatalf("mean duration = %v", s.MeanTaskDuration)
	}
	wantRate := (0.4 + 0.8 + 0.2) / 3
	if math.Abs(s.MeanCPURate-wantRate) > 1e-12 {
		t.Fatalf("mean rate = %v, want %v", s.MeanCPURate, wantRate)
	}
	// Bin 0: machines at 0.4 and 0.8 (mean 0.6); bin 1: 0.2 and 0 (mean 0.1).
	if math.Abs(s.MeanUtilization-0.35) > 1e-12 {
		t.Fatalf("mean utilization = %v, want 0.35", s.MeanUtilization)
	}
	if math.Abs(s.PeakUtilization-0.6) > 1e-12 {
		t.Fatalf("peak utilization = %v, want 0.6", s.PeakUtilization)
	}
	if s.MachineImbalance <= 0 {
		t.Fatal("imbalance should be positive for uneven machines")
	}
}

func TestSummarizeValidation(t *testing.T) {
	tr := &Trace{Machines: 1}
	if _, err := Summarize(tr, 0); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := Summarize(&Trace{}, time.Second); err == nil {
		t.Error("invalid trace should fail")
	}
	// Empty-but-valid trace summarizes to zeros.
	s, err := Summarize(tr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks != 0 || s.MeanUtilization != 0 {
		t.Fatalf("empty summary wrong: %+v", s)
	}
}

func TestSummarizeSyntheticMatchesConfig(t *testing.T) {
	tr, err := Generate(SynthConfig{Machines: 50, Horizon: 24 * time.Hour, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(tr, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The generator targets 0.45 mean utilization and 20-minute tasks.
	if s.MeanUtilization < 0.25 || s.MeanUtilization > 0.65 {
		t.Fatalf("synthetic mean utilization = %v", s.MeanUtilization)
	}
	if s.MeanTaskDuration < 5*time.Minute || s.MeanTaskDuration > time.Hour {
		t.Fatalf("synthetic mean duration = %v", s.MeanTaskDuration)
	}
	if s.UtilizationStdDev <= 0 {
		t.Fatal("diurnal pattern should give temporal variation")
	}
	if s.P95TaskDuration <= s.MeanTaskDuration {
		t.Fatal("heavy-tailed durations: p95 should exceed the mean")
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Machines: 1, Tasks: []Task{
		{Start: 0, End: 10 * time.Second, CPURate: 0.1},                // clipped at front
		{Start: 5 * time.Second, End: 15 * time.Second, CPURate: 0.2},  // inside
		{Start: 18 * time.Second, End: 30 * time.Second, CPURate: 0.3}, // clipped at back
		{Start: 40 * time.Second, End: 50 * time.Second, CPURate: 0.4}, // outside
	}}
	out, err := Slice(tr, 5*time.Second, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(out.Tasks))
	}
	// Re-based: first task now [0, 5).
	if out.Tasks[0].Start != 0 || out.Tasks[0].End != 5*time.Second {
		t.Fatalf("clip/rebase wrong: %+v", out.Tasks[0])
	}
	if out.Tasks[2].End != 15*time.Second {
		t.Fatalf("back clip wrong: %+v", out.Tasks[2])
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("sliced trace invalid: %v", err)
	}
	if _, err := Slice(tr, 10*time.Second, 5*time.Second); err == nil {
		t.Error("inverted window should fail")
	}
	if _, err := Slice(tr, -time.Second, 5*time.Second); err == nil {
		t.Error("negative start should fail")
	}
}

func TestFilterMachines(t *testing.T) {
	tr := &Trace{Machines: 30, Tasks: []Task{
		{Start: 0, End: time.Second, Machine: 5, CPURate: 0.1},
		{Start: 0, End: time.Second, Machine: 10, CPURate: 0.2},
		{Start: 0, End: time.Second, Machine: 19, CPURate: 0.3},
		{Start: 0, End: time.Second, Machine: 20, CPURate: 0.4},
	}}
	out, err := FilterMachines(tr, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Machines != 10 {
		t.Fatalf("machines = %d", out.Machines)
	}
	if len(out.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(out.Tasks))
	}
	if out.Tasks[0].Machine != 0 || out.Tasks[1].Machine != 9 {
		t.Fatalf("renumbering wrong: %+v", out.Tasks)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("filtered trace invalid: %v", err)
	}
	if _, err := FilterMachines(tr, 20, 10); err == nil {
		t.Error("inverted window should fail")
	}
	if _, err := FilterMachines(tr, 0, 99); err == nil {
		t.Error("out-of-range window should fail")
	}
}
