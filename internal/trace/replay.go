package trace

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// MachineSeries computes per-machine CPU utilization time series at the
// given sampling step: for each step, the sum of CPU rates of tasks active
// at the step midpoint, clamped to 1 (a machine cannot run above full).
// The returned slice has one series per machine.
func MachineSeries(tr *Trace, step time.Duration) ([]*stats.Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("trace: replay step must be positive, got %v", step)
	}
	horizon := tr.Horizon()
	n := int(horizon / step)
	if time.Duration(n)*step < horizon {
		n++
	}
	out := make([]*stats.Series, tr.Machines)
	for m := range out {
		out[m] = stats.NewSeries(step)
		out[m].Values = make([]float64, n)
	}
	// Accumulate each task into the bins it overlaps, weighted by overlap
	// fraction so short tasks in long bins contribute proportionally.
	for _, t := range tr.Tasks {
		if t.Machine < 0 || t.Machine >= tr.Machines {
			return nil, fmt.Errorf("trace: task machine %d out of range", t.Machine)
		}
		first := int(t.Start / step)
		last := int((t.End - 1) / step)
		if last >= n {
			last = n - 1
		}
		vals := out[t.Machine].Values
		for b := first; b <= last; b++ {
			binStart := time.Duration(b) * step
			binEnd := binStart + step
			ovStart, ovEnd := t.Start, t.End
			if binStart > ovStart {
				ovStart = binStart
			}
			if binEnd < ovEnd {
				ovEnd = binEnd
			}
			if ovEnd <= ovStart {
				continue
			}
			frac := float64(ovEnd-ovStart) / float64(step)
			vals[b] += t.CPURate * frac
		}
	}
	for _, s := range out {
		for i, v := range s.Values {
			if v > 1 {
				s.Values[i] = 1
			}
		}
	}
	return out, nil
}

// ClusterSeries returns the cluster-mean utilization series at the given
// step.
func ClusterSeries(tr *Trace, step time.Duration) (*stats.Series, error) {
	per, err := MachineSeries(tr, step)
	if err != nil {
		return nil, err
	}
	out := stats.NewSeries(step)
	if len(per) == 0 {
		return out, nil
	}
	n := per[0].Len()
	out.Values = make([]float64, n)
	for _, s := range per {
		for i, v := range s.Values {
			out.Values[i] += v
		}
	}
	for i := range out.Values {
		out.Values[i] /= float64(len(per))
	}
	return out, nil
}

// RackAssignment maps machines onto racks of the given size, in machine-ID
// order: machine m lives in rack m/serversPerRack. Machines beyond
// racks×serversPerRack are dropped (the paper evaluates 22 racks × 10
// servers from a 220-machine trace).
type RackAssignment struct {
	Racks          int
	ServersPerRack int
}

// RackSeries aggregates machine utilization into per-rack mean utilization
// series under the assignment.
func RackSeries(tr *Trace, step time.Duration, asg RackAssignment) ([]*stats.Series, error) {
	if asg.Racks <= 0 || asg.ServersPerRack <= 0 {
		return nil, fmt.Errorf("trace: invalid rack assignment %+v", asg)
	}
	per, err := MachineSeries(tr, step)
	if err != nil {
		return nil, err
	}
	out := make([]*stats.Series, asg.Racks)
	n := 0
	if len(per) > 0 {
		n = per[0].Len()
	}
	for r := range out {
		out[r] = stats.NewSeries(step)
		out[r].Values = make([]float64, n)
	}
	for m, s := range per {
		r := m / asg.ServersPerRack
		if r >= asg.Racks {
			break
		}
		for i, v := range s.Values {
			out[r].Values[i] += v
		}
	}
	for r := range out {
		for i := range out[r].Values {
			out[r].Values[i] /= float64(asg.ServersPerRack)
		}
	}
	return out, nil
}
