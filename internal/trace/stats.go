package trace

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// Summary describes a trace's statistical features — the quantities one
// checks when substituting a synthetic trace for the real Google trace.
type Summary struct {
	// Machines and Tasks are population counts.
	Machines, Tasks int
	// Horizon is the trace span.
	Horizon time.Duration
	// MeanTaskDuration and P95TaskDuration describe the run-time
	// distribution.
	MeanTaskDuration, P95TaskDuration time.Duration
	// MeanCPURate is the mean per-task CPU demand.
	MeanCPURate float64
	// MeanUtilization and PeakUtilization are the cluster-mean CPU
	// utilization statistics at the sampling step.
	MeanUtilization, PeakUtilization float64
	// UtilizationStdDev is the temporal standard deviation of the
	// cluster-mean utilization (burstiness plus diurnal swing).
	UtilizationStdDev float64
	// MachineImbalance is the mean cross-machine utilization standard
	// deviation.
	MachineImbalance float64
}

// Summarize computes a trace summary at the given sampling step.
func Summarize(tr *Trace, step time.Duration) (*Summary, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if step <= 0 {
		return nil, fmt.Errorf("trace: summary step must be positive, got %v", step)
	}
	s := &Summary{
		Machines: tr.Machines,
		Tasks:    len(tr.Tasks),
		Horizon:  tr.Horizon(),
	}
	if len(tr.Tasks) > 0 {
		durs := make([]float64, len(tr.Tasks))
		rates := make([]float64, len(tr.Tasks))
		for i, task := range tr.Tasks {
			durs[i] = task.Duration().Seconds()
			rates[i] = task.CPURate
		}
		s.MeanTaskDuration = time.Duration(stats.Mean(durs) * float64(time.Second))
		s.P95TaskDuration = time.Duration(stats.Percentile(durs, 95) * float64(time.Second))
		s.MeanCPURate = stats.Mean(rates)
	}
	per, err := MachineSeries(tr, step)
	if err != nil {
		return nil, err
	}
	if len(per) == 0 || per[0].Len() == 0 {
		return s, nil
	}
	n := per[0].Len()
	clusterMean := make([]float64, n)
	imbalance := make([]float64, n)
	machineVals := make([]float64, len(per))
	for k := 0; k < n; k++ {
		for m := range per {
			machineVals[m] = per[m].Values[k]
		}
		clusterMean[k] = stats.Mean(machineVals)
		imbalance[k] = stats.StdDev(machineVals)
	}
	s.MeanUtilization = stats.Mean(clusterMean)
	_, s.PeakUtilization = stats.MinMax(clusterMean)
	s.UtilizationStdDev = stats.StdDev(clusterMean)
	s.MachineImbalance = stats.Mean(imbalance)
	return s, nil
}

// Slice returns the sub-trace covering [from, to): tasks overlapping the
// window, clipped to it and re-based so the slice starts at zero.
func Slice(tr *Trace, from, to time.Duration) (*Trace, error) {
	if to <= from || from < 0 {
		return nil, fmt.Errorf("trace: invalid slice window [%v, %v)", from, to)
	}
	out := &Trace{Machines: tr.Machines}
	for _, task := range tr.Tasks {
		if task.End <= from || task.Start >= to {
			continue
		}
		t := task
		if t.Start < from {
			t.Start = from
		}
		if t.End > to {
			t.End = to
		}
		t.Start -= from
		t.End -= from
		out.Tasks = append(out.Tasks, t)
	}
	return out, nil
}

// FilterMachines returns the sub-trace of tasks on machines [lo, hi),
// re-numbered to [0, hi-lo) — e.g. one rack's worth of a cluster trace.
func FilterMachines(tr *Trace, lo, hi int) (*Trace, error) {
	if lo < 0 || hi <= lo || hi > tr.Machines {
		return nil, fmt.Errorf("trace: invalid machine window [%d, %d) of %d",
			lo, hi, tr.Machines)
	}
	out := &Trace{Machines: hi - lo}
	for _, task := range tr.Tasks {
		if task.Machine < lo || task.Machine >= hi {
			continue
		}
		t := task
		t.Machine -= lo
		out.Tasks = append(out.Tasks, t)
	}
	return out, nil
}
