// Package trace handles cluster workload traces in the format of the 2010
// Google compute-cluster trace the paper evaluates with: one row per task,
// carrying start time, end time, machine ID and CPU rate. The package
// provides a parser/writer for that row format, a deterministic synthetic
// generator with the statistical features the experiments need (diurnal
// and weekly utilization patterns, Poisson job arrivals, heavy-tailed task
// durations), and replay helpers that turn a trace into per-machine
// utilization time series.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Task is one row of the trace: a task running on one machine over
// [Start, End) consuming CPURate of that machine's CPU.
type Task struct {
	// Start is the task's start offset from the trace origin.
	Start time.Duration
	// End is the task's end offset; End > Start.
	End time.Duration
	// Machine is the hosting machine ID, in [0, Machines).
	Machine int
	// CPURate is the task's CPU demand as a fraction of one machine.
	CPURate float64
}

// Duration returns the task's run time.
func (t Task) Duration() time.Duration { return t.End - t.Start }

// Validate reports a malformed task.
func (t Task) Validate() error {
	if t.End <= t.Start {
		return fmt.Errorf("trace: task ends (%v) at or before start (%v)", t.End, t.Start)
	}
	if t.Start < 0 {
		return fmt.Errorf("trace: negative start %v", t.Start)
	}
	if t.Machine < 0 {
		return fmt.Errorf("trace: negative machine ID %d", t.Machine)
	}
	if t.CPURate < 0 || t.CPURate > 1 {
		return fmt.Errorf("trace: CPU rate %v out of [0,1]", t.CPURate)
	}
	return nil
}

// Trace is a workload trace: a set of tasks over a machine population.
type Trace struct {
	// Machines is the number of machines in the cluster.
	Machines int
	// Tasks are the trace rows, in no particular order.
	Tasks []Task
}

// Validate checks every task and the machine population.
func (tr *Trace) Validate() error {
	if tr.Machines <= 0 {
		return fmt.Errorf("trace: needs at least one machine, got %d", tr.Machines)
	}
	for i, t := range tr.Tasks {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("trace: task %d: %w", i, err)
		}
		if t.Machine >= tr.Machines {
			return fmt.Errorf("trace: task %d on machine %d but population is %d",
				i, t.Machine, tr.Machines)
		}
	}
	return nil
}

// Horizon returns the latest task end offset.
func (tr *Trace) Horizon() time.Duration {
	var h time.Duration
	for _, t := range tr.Tasks {
		if t.End > h {
			h = t.End
		}
	}
	return h
}

// SortByStart orders tasks by start offset (stable), the order replay
// consumes them in.
func (tr *Trace) SortByStart() {
	sort.SliceStable(tr.Tasks, func(i, j int) bool {
		return tr.Tasks[i].Start < tr.Tasks[j].Start
	})
}
