package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTaskValidate(t *testing.T) {
	good := Task{Start: 0, End: time.Minute, Machine: 3, CPURate: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good task failed: %v", err)
	}
	bad := []Task{
		{Start: time.Minute, End: time.Minute, Machine: 0, CPURate: 0.5},
		{Start: 2 * time.Minute, End: time.Minute, Machine: 0, CPURate: 0.5},
		{Start: -time.Second, End: time.Minute, Machine: 0, CPURate: 0.5},
		{Start: 0, End: time.Minute, Machine: -1, CPURate: 0.5},
		{Start: 0, End: time.Minute, Machine: 0, CPURate: 1.5},
		{Start: 0, End: time.Minute, Machine: 0, CPURate: -0.1},
	}
	for i, task := range bad {
		if err := task.Validate(); err == nil {
			t.Errorf("bad task %d validated", i)
		}
	}
}

func TestTraceValidate(t *testing.T) {
	tr := &Trace{Machines: 2, Tasks: []Task{
		{Start: 0, End: time.Minute, Machine: 0, CPURate: 0.5},
		{Start: 0, End: time.Minute, Machine: 5, CPURate: 0.5},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("task on machine 5 of 2 should fail")
	}
	if err := (&Trace{Machines: 0}).Validate(); err == nil {
		t.Error("zero machines should fail")
	}
}

func TestHorizonAndSort(t *testing.T) {
	tr := &Trace{Machines: 1, Tasks: []Task{
		{Start: 10 * time.Second, End: 30 * time.Second, CPURate: 0.1},
		{Start: 0, End: 50 * time.Second, CPURate: 0.1},
	}}
	if got := tr.Horizon(); got != 50*time.Second {
		t.Fatalf("Horizon = %v", got)
	}
	tr.SortByStart()
	if tr.Tasks[0].Start != 0 {
		t.Fatal("SortByStart did not order tasks")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	orig := &Trace{Machines: 5, Tasks: []Task{
		{Start: 0, End: 300 * time.Second, Machine: 0, CPURate: 0.25},
		{Start: 1500 * time.Millisecond, End: 10 * time.Second, Machine: 4, CPURate: 0.8},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Machines != 5 {
		t.Fatalf("machines = %d, want 5 (from header)", back.Machines)
	}
	if len(back.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(back.Tasks))
	}
	if back.Tasks[1].Machine != 4 || back.Tasks[1].CPURate != 0.8 {
		t.Fatalf("task round trip wrong: %+v", back.Tasks[1])
	}
	if back.Tasks[1].Start != 1500*time.Millisecond {
		t.Fatalf("start round trip wrong: %v", back.Tasks[1].Start)
	}
}

func TestReadInfersMachines(t *testing.T) {
	in := "0,60,7,0.5\n10,30,2,0.25\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Machines != 8 {
		t.Fatalf("machines = %d, want 8 inferred", tr.Machines)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n0,60,0,0.5\n# trailing comment\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(tr.Tasks))
	}
}

func TestReadHandlesSpacesAndCRLF(t *testing.T) {
	in := "0, 60, 0, 0.5\r\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tasks[0].CPURate != 0.5 {
		t.Fatalf("parsed %+v", tr.Tasks[0])
	}
}

func TestReadRejectsMalformedRows(t *testing.T) {
	bad := []string{
		"0,60,0\n",       // missing field
		"x,60,0,0.5\n",   // bad start
		"0,y,0,0.5\n",    // bad end
		"0,60,z,0.5\n",   // bad machine
		"0,60,0,w\n",     // bad rate
		"0,60,0,0.5,9\n", // extra field
		"60,0,0,0.5\n",   // end before start
		"0,60,0,1.5\n",   // rate out of range
	}
	for _, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadNoFinalNewline(t *testing.T) {
	tr, err := Read(strings.NewReader("0,60,0,0.5"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(tr.Tasks))
	}
}

func TestReadEmptyInput(t *testing.T) {
	tr, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 0 || tr.Machines != 1 {
		t.Fatalf("empty trace: %+v", tr)
	}
}
