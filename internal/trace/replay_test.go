package trace

import (
	"math"
	"testing"
	"time"
)

func TestMachineSeriesBasic(t *testing.T) {
	tr := &Trace{Machines: 2, Tasks: []Task{
		{Start: 0, End: 10 * time.Second, Machine: 0, CPURate: 0.3},
		{Start: 5 * time.Second, End: 15 * time.Second, Machine: 0, CPURate: 0.4},
		{Start: 0, End: 20 * time.Second, Machine: 1, CPURate: 0.6},
	}}
	per, err := MachineSeries(tr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("series count = %d", len(per))
	}
	// Machine 0: bins [0,5)=0.3, [5,10)=0.7, [10,15)=0.4, [15,20)=0.
	want0 := []float64{0.3, 0.7, 0.4, 0}
	for i, w := range want0 {
		if got := per[0].Values[i]; math.Abs(got-w) > 1e-12 {
			t.Errorf("machine 0 bin %d = %v, want %v", i, got, w)
		}
	}
	// Machine 1 is flat 0.6 through all four bins.
	for i := 0; i < 4; i++ {
		if got := per[1].Values[i]; math.Abs(got-0.6) > 1e-12 {
			t.Errorf("machine 1 bin %d = %v", i, got)
		}
	}
}

func TestMachineSeriesPartialOverlap(t *testing.T) {
	tr := &Trace{Machines: 1, Tasks: []Task{
		// 2 s of a 10 s bin at rate 1.0 → bin average 0.2.
		{Start: 4 * time.Second, End: 6 * time.Second, Machine: 0, CPURate: 1.0},
	}}
	per, err := MachineSeries(tr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := per[0].Values[0]; math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("partial overlap bin = %v, want 0.2", got)
	}
}

func TestMachineSeriesClampsAtFull(t *testing.T) {
	tr := &Trace{Machines: 1, Tasks: []Task{
		{Start: 0, End: 10 * time.Second, Machine: 0, CPURate: 0.8},
		{Start: 0, End: 10 * time.Second, Machine: 0, CPURate: 0.8},
	}}
	per, err := MachineSeries(tr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := per[0].Values[0]; got != 1 {
		t.Fatalf("oversubscribed machine = %v, want clamped 1", got)
	}
}

func TestMachineSeriesRejectsBadStep(t *testing.T) {
	if _, err := MachineSeries(&Trace{Machines: 1}, 0); err == nil {
		t.Fatal("zero step should fail")
	}
}

func TestClusterSeries(t *testing.T) {
	tr := &Trace{Machines: 2, Tasks: []Task{
		{Start: 0, End: 10 * time.Second, Machine: 0, CPURate: 0.4},
		{Start: 0, End: 10 * time.Second, Machine: 1, CPURate: 0.8},
	}}
	cl, err := ClusterSeries(tr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.Values[0]; math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("cluster mean = %v, want 0.6", got)
	}
}

func TestRackSeries(t *testing.T) {
	tr := &Trace{Machines: 4, Tasks: []Task{
		{Start: 0, End: 10 * time.Second, Machine: 0, CPURate: 0.2},
		{Start: 0, End: 10 * time.Second, Machine: 1, CPURate: 0.4},
		{Start: 0, End: 10 * time.Second, Machine: 2, CPURate: 1.0},
		{Start: 0, End: 10 * time.Second, Machine: 3, CPURate: 0.6},
	}}
	racks, err := RackSeries(tr, 10*time.Second, RackAssignment{Racks: 2, ServersPerRack: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(racks) != 2 {
		t.Fatalf("rack count = %d", len(racks))
	}
	if got := racks[0].Values[0]; math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("rack 0 = %v, want 0.3", got)
	}
	if got := racks[1].Values[0]; math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("rack 1 = %v, want 0.8", got)
	}
}

func TestRackSeriesDropsExtraMachines(t *testing.T) {
	tr := &Trace{Machines: 5, Tasks: []Task{
		{Start: 0, End: 10 * time.Second, Machine: 4, CPURate: 1.0},
		{Start: 0, End: 10 * time.Second, Machine: 0, CPURate: 0.5},
	}}
	racks, err := RackSeries(tr, 10*time.Second, RackAssignment{Racks: 2, ServersPerRack: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Machine 4 would be rack 2, which doesn't exist: dropped silently.
	if got := racks[0].Values[0]; math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("rack 0 = %v, want 0.25", got)
	}
}

func TestRackSeriesValidation(t *testing.T) {
	if _, err := RackSeries(&Trace{Machines: 1}, time.Second, RackAssignment{}); err == nil {
		t.Fatal("empty assignment should fail")
	}
}

func TestMachineSeriesOutOfRangeMachine(t *testing.T) {
	tr := &Trace{Machines: 1, Tasks: []Task{
		{Start: 0, End: time.Second, Machine: 3, CPURate: 0.5},
	}}
	if _, err := MachineSeries(tr, time.Second); err == nil {
		t.Fatal("out-of-range machine should fail")
	}
}
