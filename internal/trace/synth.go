package trace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
)

// SynthConfig parameterizes the synthetic Google-style trace generator.
// Defaults reproduce the population the paper evaluates: 220 machines
// observed for a month at 5-minute resolution.
type SynthConfig struct {
	// Machines is the cluster size. 0 selects 220.
	Machines int
	// Horizon is the trace length. 0 selects 30 days.
	Horizon time.Duration
	// Seed drives all randomness; traces are deterministic per seed.
	Seed uint64
	// MeanUtilization is the target cluster-mean CPU utilization in
	// (0, 1). 0 selects 0.45, typical of the Google trace.
	MeanUtilization float64
	// DiurnalSwing is the peak-to-mean utilization swing of the daily
	// pattern, in [0, 1). 0 selects 0.35.
	DiurnalSwing float64
	// WeekendDip is the fractional utilization reduction on days 6 and 7
	// of each week. 0 selects 0.15.
	WeekendDip float64
	// MeanTaskDuration is the mean task run time. 0 selects 20 minutes
	// (durations are log-normal and heavy-tailed around this mean).
	MeanTaskDuration time.Duration
	// TasksPerJob is the mean number of tasks per arriving job. 0
	// selects 4.
	TasksPerJob float64
	// SurgePeriod, if non-zero, injects a cluster-wide utilization surge
	// of SurgeBoost every SurgePeriod lasting SurgeWidth — the periodic
	// data-center-wide load surge of Figure 14.
	SurgePeriod time.Duration
	// SurgeWidth is the surge duration; 0 with a period selects 1 hour.
	SurgeWidth time.Duration
	// SurgeBoost is the extra utilization added during surges, in [0, 1].
	// 0 with a period selects 0.35.
	SurgeBoost float64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Machines == 0 {
		c.Machines = 220
	}
	if c.Horizon == 0 {
		c.Horizon = 30 * 24 * time.Hour
	}
	if c.MeanUtilization == 0 {
		c.MeanUtilization = 0.45
	}
	if c.DiurnalSwing == 0 {
		c.DiurnalSwing = 0.35
	}
	if c.WeekendDip == 0 {
		c.WeekendDip = 0.15
	}
	if c.MeanTaskDuration == 0 {
		c.MeanTaskDuration = 20 * time.Minute
	}
	if c.TasksPerJob == 0 {
		c.TasksPerJob = 4
	}
	if c.SurgePeriod > 0 {
		if c.SurgeWidth == 0 {
			c.SurgeWidth = time.Hour
		}
		if c.SurgeBoost == 0 {
			c.SurgeBoost = 0.35
		}
	}
	return c
}

// Validate reports a configuration error, if any.
func (c SynthConfig) Validate() error {
	c = c.withDefaults()
	if c.Machines < 0 {
		return fmt.Errorf("trace: negative machine count %d", c.Machines)
	}
	if c.Horizon < 0 {
		return fmt.Errorf("trace: negative horizon %v", c.Horizon)
	}
	if c.MeanUtilization <= 0 || c.MeanUtilization >= 1 {
		return fmt.Errorf("trace: mean utilization %v out of (0,1)", c.MeanUtilization)
	}
	if c.DiurnalSwing < 0 || c.DiurnalSwing >= 1 {
		return fmt.Errorf("trace: diurnal swing %v out of [0,1)", c.DiurnalSwing)
	}
	if c.WeekendDip < 0 || c.WeekendDip >= 1 {
		return fmt.Errorf("trace: weekend dip %v out of [0,1)", c.WeekendDip)
	}
	if c.SurgeBoost < 0 || c.SurgeBoost > 1 {
		return fmt.Errorf("trace: surge boost %v out of [0,1]", c.SurgeBoost)
	}
	return nil
}

// utilizationEnvelope returns the target cluster utilization at offset t:
// the diurnal/weekly/surge pattern the arrival process tracks.
func (c SynthConfig) utilizationEnvelope(t time.Duration) float64 {
	day := t.Hours() / 24
	// Diurnal: peak mid-day, trough at night.
	phase := 2 * math.Pi * (day - math.Floor(day))
	u := c.MeanUtilization * (1 + c.DiurnalSwing*math.Sin(phase-math.Pi/2))
	// Weekly: days 6, 7 dip.
	dayOfWeek := int(math.Floor(day)) % 7
	if dayOfWeek >= 5 {
		u *= 1 - c.WeekendDip
	}
	// Optional periodic surge.
	if c.SurgePeriod > 0 {
		into := t % c.SurgePeriod
		if into < c.SurgeWidth {
			u += c.SurgeBoost
		}
	}
	if u < 0.02 {
		u = 0.02
	}
	if u > 0.98 {
		u = 0.98
	}
	return u
}

// Generate produces a synthetic trace from cfg.
//
// The construction works backwards from utilization: job arrivals form a
// non-homogeneous Poisson process whose rate keeps the expected number of
// concurrently running tasks equal to envelope×machines×meanTasksPerMachine,
// so the replayed per-machine utilization tracks the envelope with natural
// Poisson burstiness on top.
func Generate(cfg SynthConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	arrivalRNG := rng.Split(1)
	taskRNG := rng.Split(2)
	placeRNG := rng.Split(3)

	tr := &Trace{Machines: cfg.Machines}

	// Mean CPU rate per task: drawn uniform in [0.05, 0.35], mean 0.2.
	const meanRate = 0.2
	// Little's law: concurrency = arrivalRate × duration. Target
	// concurrency (in tasks) at envelope u is u×machines/meanRate.
	meanDur := cfg.MeanTaskDuration.Seconds()
	// Log-normal duration with sigma 1.0: mean = exp(mu + sigma²/2).
	const durSigma = 1.0
	durMu := math.Log(meanDur) - durSigma*durSigma/2

	// Step through time in arrival slots (one minute) drawing a Poisson
	// number of jobs per slot.
	const slot = time.Minute
	for t := time.Duration(0); t < cfg.Horizon; t += slot {
		u := cfg.utilizationEnvelope(t)
		targetTasks := u * float64(cfg.Machines) / meanRate
		jobsPerSec := targetTasks / (meanDur * cfg.TasksPerJob)
		n := arrivalRNG.Poisson(jobsPerSec * slot.Seconds())
		for j := 0; j < n; j++ {
			start := t + time.Duration(arrivalRNG.Float64()*float64(slot))
			nTasks := 1 + taskRNG.Poisson(cfg.TasksPerJob-1)
			for k := 0; k < nTasks; k++ {
				dur := time.Duration(taskRNG.LogNormal(durMu, durSigma) * float64(time.Second))
				if dur < time.Second {
					dur = time.Second
				}
				end := start + dur
				if end > cfg.Horizon {
					end = cfg.Horizon
				}
				if end <= start {
					continue
				}
				tr.Tasks = append(tr.Tasks, Task{
					Start:   start,
					End:     end,
					Machine: placeRNG.Intn(cfg.Machines),
					CPURate: taskRNG.Range(0.05, 0.35),
				})
			}
		}
	}
	tr.SortByStart()
	return tr, nil
}
