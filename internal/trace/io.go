package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The on-disk row format mirrors the Google trace rows the paper consumes:
//
//	start_seconds,end_seconds,machine_id,cpu_rate
//
// Lines starting with '#' are comments. Times are fractional seconds from
// the trace origin.

// Read parses a trace from r. The machine population is inferred as
// max(machine_id)+1 unless a "# machines: N" header comment declares it.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	tr := &Trace{}
	declaredMachines := 0
	line := 0
	for {
		line++
		raw, err := br.ReadString('\n')
		if raw == "" && err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		s := trimEOL(raw)
		if s == "" {
			if err == io.EOF {
				break
			}
			continue
		}
		if s[0] == '#' {
			var n int
			if _, scanErr := fmt.Sscanf(s, "# machines: %d", &n); scanErr == nil {
				declaredMachines = n
			}
			if err == io.EOF {
				break
			}
			continue
		}
		task, parseErr := parseRow(s)
		if parseErr != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, parseErr)
		}
		tr.Tasks = append(tr.Tasks, task)
		if task.Machine+1 > tr.Machines {
			tr.Machines = task.Machine + 1
		}
		if err == io.EOF {
			break
		}
	}
	if declaredMachines > tr.Machines {
		tr.Machines = declaredMachines
	}
	if tr.Machines == 0 {
		tr.Machines = 1
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func trimEOL(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

func parseRow(s string) (Task, error) {
	fields := strings.Split(s, ",")
	if len(fields) != 4 {
		return Task{}, fmt.Errorf("want 4 fields, got %d", len(fields))
	}
	for i, f := range fields {
		fields[i] = strings.TrimSpace(f)
	}
	start, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Task{}, fmt.Errorf("bad start: %w", err)
	}
	end, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return Task{}, fmt.Errorf("bad end: %w", err)
	}
	machine, err := strconv.Atoi(fields[2])
	if err != nil {
		return Task{}, fmt.Errorf("bad machine: %w", err)
	}
	rate, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return Task{}, fmt.Errorf("bad cpu rate: %w", err)
	}
	return Task{
		Start:   time.Duration(start * float64(time.Second)),
		End:     time.Duration(end * float64(time.Second)),
		Machine: machine,
		CPURate: rate,
	}, nil
}

// Write emits tr to w in the row format, preceded by a machines header.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# machines: %d\n", tr.Machines); err != nil {
		return err
	}
	for _, t := range tr.Tasks {
		_, err := fmt.Fprintf(bw, "%.3f,%.3f,%d,%.6f\n",
			t.Start.Seconds(), t.End.Seconds(), t.Machine, t.CPURate)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
