package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzRead hardens the trace parser: arbitrary input must either parse
// into a valid trace or return an error — never panic, never yield a
// trace that fails its own validation. Parsed traces must survive a
// write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("# machines: 4\n0,60,0,0.5\n")
	f.Add("0,60,7,0.5\n10,30,2,0.25")
	f.Add("x,60,0,0.5\n")
	f.Add("# comment only\n")
	f.Add("")
	f.Add("0, 60, 0, 0.5\r\n")
	f.Add("0,60,0,0.5,9\n")
	f.Add("-1,60,0,0.5\n")
	f.Add("1e300,1e301,0,0.5\n")
	f.Add(strings.Repeat("0,1,0,0.1\n", 50))
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read returned an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write failed on parsed trace: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Tasks) != len(tr.Tasks) {
			t.Fatalf("round trip changed task count: %d -> %d",
				len(tr.Tasks), len(back.Tasks))
		}
	})
}

// FuzzMachineSeries hardens replay against arbitrary (valid) tasks.
func FuzzMachineSeries(f *testing.F) {
	f.Add(uint16(3), uint16(90), uint8(1), uint8(128))
	f.Add(uint16(0), uint16(1), uint8(0), uint8(255))
	f.Fuzz(func(t *testing.T, startS, durS uint16, machine, rate uint8) {
		tr := &Trace{Machines: int(machine) + 1}
		tr.Tasks = append(tr.Tasks, Task{
			Start:   time.Duration(startS) * time.Second,
			End:     time.Duration(int(startS)+int(durS)+1) * time.Second,
			Machine: int(machine),
			CPURate: float64(rate) / 255,
		})
		per, err := MachineSeries(tr, 10*time.Second)
		if err != nil {
			t.Fatalf("MachineSeries failed on valid trace: %v", err)
		}
		for m, s := range per {
			for i, v := range s.Values {
				if v < 0 || v > 1 {
					t.Fatalf("machine %d bin %d out of range: %v", m, i, v)
				}
			}
		}
	})
}
