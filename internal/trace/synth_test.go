package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

// shortCfg is a small config that keeps generation fast in tests.
func shortCfg(seed uint64) SynthConfig {
	return SynthConfig{
		Machines: 40,
		Horizon:  12 * time.Hour,
		Seed:     seed,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(shortCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(shortCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(shortCfg(1))
	b, _ := Generate(shortCfg(2))
	if len(a.Tasks) == len(b.Tasks) {
		same := true
		for i := range a.Tasks {
			if a.Tasks[i] != b.Tasks[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(shortCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Tasks) == 0 {
		t.Fatal("generated trace is empty")
	}
	if tr.Horizon() > 12*time.Hour {
		t.Fatalf("tasks exceed horizon: %v", tr.Horizon())
	}
}

func TestGenerateHitsMeanUtilization(t *testing.T) {
	cfg := SynthConfig{Machines: 60, Horizon: 48 * time.Hour, Seed: 11, MeanUtilization: 0.45}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := ClusterSeries(tr, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	mean := cluster.Mean()
	// The clamp at 1.0 and warm-up bias the mean down a bit; accept ±35%.
	if mean < 0.45*0.65 || mean > 0.45*1.35 {
		t.Fatalf("cluster mean utilization = %v, want near 0.45", mean)
	}
}

func TestGenerateDiurnalPattern(t *testing.T) {
	cfg := SynthConfig{Machines: 60, Horizon: 72 * time.Hour, Seed: 13}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := ClusterSeries(tr, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Compare midday vs midnight windows (skip day 0 for warm-up).
	var day, night []float64
	for i, v := range cluster.Values {
		hour := float64(i) * 0.5
		if hour < 24 {
			continue
		}
		hod := math.Mod(hour, 24)
		switch {
		case hod >= 11 && hod < 13:
			day = append(day, v)
		case hod >= 23 || hod < 1:
			night = append(night, v)
		}
	}
	if stats.Mean(day) <= stats.Mean(night) {
		t.Fatalf("no diurnal pattern: midday %v vs midnight %v",
			stats.Mean(day), stats.Mean(night))
	}
}

func TestGenerateSurges(t *testing.T) {
	cfg := SynthConfig{
		Machines: 40, Horizon: 8 * time.Hour, Seed: 17,
		SurgePeriod: 2 * time.Hour, SurgeWidth: 30 * time.Minute, SurgeBoost: 0.4,
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := ClusterSeries(tr, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var inSurge, outSurge []float64
	for i, v := range cluster.Values {
		at := time.Duration(i) * 10 * time.Minute
		into := at % (2 * time.Hour)
		// Allow half the mean task duration of spill-over after the window.
		if into < 30*time.Minute {
			inSurge = append(inSurge, v)
		} else if into > time.Hour {
			outSurge = append(outSurge, v)
		}
	}
	if stats.Mean(inSurge) <= stats.Mean(outSurge)+0.05 {
		t.Fatalf("surge not visible: %v in vs %v out",
			stats.Mean(inSurge), stats.Mean(outSurge))
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	bad := []SynthConfig{
		{Machines: -1},
		{MeanUtilization: 1.2},
		{DiurnalSwing: 1.0},
		{WeekendDip: -0.1},
		{SurgePeriod: time.Hour, SurgeBoost: 2},
		{Horizon: -time.Hour},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestEnvelopeBounds(t *testing.T) {
	cfg := SynthConfig{}.withDefaults()
	for h := 0; h < 24*14; h++ {
		u := cfg.utilizationEnvelope(time.Duration(h) * time.Hour)
		if u < 0.02 || u > 0.98 {
			t.Fatalf("envelope out of bounds at hour %d: %v", h, u)
		}
	}
}

func TestEnvelopeWeekendDip(t *testing.T) {
	cfg := SynthConfig{}.withDefaults()
	// Same hour of day, weekday (day 2) vs weekend (day 6).
	wk := cfg.utilizationEnvelope(2*24*time.Hour + 12*time.Hour)
	we := cfg.utilizationEnvelope(6*24*time.Hour + 12*time.Hour)
	if we >= wk {
		t.Fatalf("weekend (%v) should dip below weekday (%v)", we, wk)
	}
}
