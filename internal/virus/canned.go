package virus

import (
	"time"

	"repro/internal/stats"
)

// Canned attack scenarios matching the two collected traces the paper's
// methodology feeds into its simulator (Figure 12): a dense, extensive
// spike train and a sparse, light-weight one.

// Scenario bundles a named attack configuration.
type Scenario struct {
	Name string
	// SpikeWidth and SpikesPerMinute shape Phase II.
	SpikeWidth      time.Duration
	SpikesPerMinute float64
	// RestFraction is the between-spike utilization.
	RestFraction float64
}

// The two evaluated scenarios.
var (
	// DenseAttack: wide spikes fired often — aggressive and extensive.
	DenseAttack = Scenario{
		Name:            "Dense",
		SpikeWidth:      4 * time.Second,
		SpikesPerMinute: 6,
		RestFraction:    0.35,
	}
	// SparseAttack: narrow, infrequent spikes — light-weight and stealthy.
	SparseAttack = Scenario{
		Name:            "Sparse",
		SpikeWidth:      time.Second,
		SpikesPerMinute: 1,
		RestFraction:    0.25,
	}
)

// Scenarios lists the canned scenarios in presentation order.
func Scenarios() []Scenario { return []Scenario{DenseAttack, SparseAttack} }

// Configure builds an attack Config for the scenario with the given virus
// profile and seed.
func (s Scenario) Configure(p Profile, seed uint64) Config {
	return Config{
		Profile:         p,
		SpikeWidth:      s.SpikeWidth,
		SpikesPerMinute: s.SpikesPerMinute,
		RestFraction:    s.RestFraction,
		Seed:            seed,
	}
}

// UtilizationTrace renders the scenario open-loop (no capping feedback)
// into a utilization series, the shape Figure 12 plots. The attack is
// forced into Phase II from the start so the trace shows the spike train.
func (s Scenario) UtilizationTrace(p Profile, duration, step time.Duration, seed uint64) *stats.Series {
	cfg := s.Configure(p, seed)
	cfg.PrepDuration = step // skip prep after one tick
	cfg.MaxPhaseI = step    // skip drain after one tick
	a := MustNew(cfg)
	out := stats.NewSeries(step)
	for t := time.Duration(0); t < duration; t += step {
		out.Append(a.Step(step, Observation{}))
	}
	return out
}
