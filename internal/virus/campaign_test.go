package virus

import (
	"testing"
	"time"
)

func TestCampaignConfigs(t *testing.T) {
	c := CampaignConfig{
		Base: Config{
			Profile:      CPUIntensive,
			PrepDuration: 4 * time.Second,
			Seed:         9,
		},
		Groups:      3,
		PhaseOffset: 5 * time.Second,
	}
	cfgs, err := c.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("got %d configs, want 3", len(cfgs))
	}
	for g, cfg := range cfgs {
		want := 4*time.Second + time.Duration(g)*5*time.Second
		if cfg.PrepDuration != want {
			t.Errorf("group %d prep %v, want %v", g, cfg.PrepDuration, want)
		}
		// Defaults must be applied before staggering so a zero base prep
		// staggers from the documented 30 s, not from zero.
		if cfg.SpikesPerMinute != 4 {
			t.Errorf("group %d spikes/min %v, want default 4", g, cfg.SpikesPerMinute)
		}
		for h := 0; h < g; h++ {
			if cfg.Seed == cfgs[h].Seed {
				t.Errorf("groups %d and %d share seed %d", g, h, cfg.Seed)
			}
		}
	}
	// Reproducible: the same campaign derives the same configs.
	again, err := c.Configs()
	if err != nil {
		t.Fatal(err)
	}
	for g := range cfgs {
		if cfgs[g] != again[g] {
			t.Errorf("group %d config not reproducible", g)
		}
	}
}

func TestCampaignDefaultPrepStagger(t *testing.T) {
	c := CampaignConfig{
		Base:        Config{Profile: CPUIntensive},
		Groups:      2,
		PhaseOffset: time.Second,
	}
	cfgs, err := c.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].PrepDuration != 30*time.Second || cfgs[1].PrepDuration != 31*time.Second {
		t.Fatalf("prep durations %v, %v; want 30s, 31s", cfgs[0].PrepDuration, cfgs[1].PrepDuration)
	}
}

func TestCampaignValidate(t *testing.T) {
	base := Config{Profile: CPUIntensive}
	cases := []struct {
		name string
		cfg  CampaignConfig
	}{
		{"zero groups", CampaignConfig{Base: base, Groups: 0}},
		{"negative offset", CampaignConfig{Base: base, Groups: 2, PhaseOffset: -time.Second}},
		{"huge groups", CampaignConfig{Base: base, Groups: 5000}},
		{"bad base", CampaignConfig{Base: Config{Profile: Profile{Name: "x", PeakFraction: -1}}, Groups: 1}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: not rejected", tc.name)
		}
		if _, err := tc.cfg.Configs(); err == nil {
			t.Errorf("%s: Configs did not reject", tc.name)
		}
		if _, err := tc.cfg.Build(); err == nil {
			t.Errorf("%s: Build did not reject", tc.name)
		}
	}
	ok := CampaignConfig{Base: base, Groups: 4, PhaseOffset: 2 * time.Second}
	ctrls, err := ok.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrls) != 4 {
		t.Fatalf("built %d controllers, want 4", len(ctrls))
	}
}
