package virus

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fixedstep"
	"repro/internal/stats"
)

// Phase identifies where a two-phase attack currently is.
type Phase int

// Attack phases, in order.
const (
	// Preparation: the attacker holds still, blending into background.
	Preparation Phase = iota
	// PhaseI runs the non-offending visible peak that drains batteries.
	PhaseI
	// PhaseII fires offending hidden spikes at the drained rack.
	PhaseII
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Preparation:
		return "Preparation"
	case PhaseI:
		return "Phase-I"
	case PhaseII:
		return "Phase-II"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Observation is what an attacker can sense from inside its VMs: whether
// performance capping (DVFS) is being applied, the side channel that
// reveals the victim rack's batteries have run out.
type Observation struct {
	// Capped reports that the attacker's VM observed throttling this tick.
	Capped bool
}

// Config parameterizes a two-phase attack.
type Config struct {
	// Profile selects the virus class.
	Profile Profile
	// SpikeWidth is the Phase-II spike duration. 0 selects 1 s.
	SpikeWidth time.Duration
	// SpikesPerMinute is the Phase-II spike frequency. 0 selects 4.
	SpikesPerMinute float64
	// RestFraction is the utilization held between spikes so the average
	// stays unremarkable. 0 selects 0.30.
	RestFraction float64
	// PrepDuration is how long the attacker idles before Phase I. 0
	// selects 30 s.
	PrepDuration time.Duration
	// CapTicksToConfirm is how many consecutive capped observations
	// convince the attacker the battery is out. 0 selects 3.
	CapTicksToConfirm int
	// MaxPhaseI bounds the drain phase for victims that never signal
	// capping (a Conv data center sheds no performance). 0 selects 15
	// minutes.
	MaxPhaseI time.Duration
	// PhaseJitter randomizes the gap between consecutive spikes by up to
	// ±PhaseJitter of the nominal period (mean rate preserved), breaking
	// the strict periodicity a correlation detector could key on. 0 keeps
	// the deterministic schedule.
	PhaseJitter float64
	// AmplitudeScale models a stealth-optimizing multi-host attacker:
	// each Phase-II spike rises only RestFraction + scale×(peak−rest), so
	// with scale 1/hosts the rack-level spike energy matches a single
	// full-height host while each host's anomaly shrinks. 0 means 1.
	AmplitudeScale float64
	// Seed drives the spike-height jitter stream.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.SpikeWidth == 0 {
		c.SpikeWidth = time.Second
	}
	if c.SpikesPerMinute == 0 {
		c.SpikesPerMinute = 4
	}
	if c.RestFraction == 0 {
		c.RestFraction = 0.30
	}
	if c.PrepDuration == 0 {
		c.PrepDuration = 30 * time.Second
	}
	if c.CapTicksToConfirm == 0 {
		c.CapTicksToConfirm = 3
	}
	if c.MaxPhaseI == 0 {
		c.MaxPhaseI = 15 * time.Minute
	}
	if c.AmplitudeScale == 0 {
		c.AmplitudeScale = 1
	}
	return c
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.SpikeWidth <= 0 {
		return fmt.Errorf("virus: spike width must be positive, got %v", c.SpikeWidth)
	}
	// Accept-range (negated) comparisons so NaN fields are rejected.
	if !(c.SpikesPerMinute > 0 && c.SpikesPerMinute <= 60) {
		return fmt.Errorf("virus: spikes per minute %v out of (0,60]", c.SpikesPerMinute)
	}
	if !(c.RestFraction >= 0 && c.RestFraction <= 1) {
		return fmt.Errorf("virus: rest fraction %v out of [0,1]", c.RestFraction)
	}
	period := time.Duration(float64(time.Minute) / c.SpikesPerMinute)
	if c.SpikeWidth >= period {
		return fmt.Errorf("virus: spike width %v leaves no rest at %v/min",
			c.SpikeWidth, c.SpikesPerMinute)
	}
	if !(c.AmplitudeScale >= 0 && c.AmplitudeScale <= 1) {
		return fmt.Errorf("virus: amplitude scale %v out of (0,1]", c.AmplitudeScale)
	}
	if !(c.PhaseJitter >= 0 && c.PhaseJitter < 1) {
		return fmt.Errorf("virus: phase jitter %v out of [0,1)", c.PhaseJitter)
	}
	return nil
}

// Attack is the closed-loop two-phase attack controller. Drive it with
// Step once per simulation tick; it returns the utilization demand for
// each compromised server.
type Attack struct {
	cfg Config
	rng *stats.RNG

	phase       Phase
	elapsed     time.Duration
	phaseStart  time.Duration
	cappedTicks int

	// first-order ramp state: the utilization the servers actually reach.
	reached float64
	// per-spike jittered target height.
	spikeTarget float64
	lastSpikeID int

	// learning log
	learnedDrain time.Duration
	sawCap       bool

	// spikeTimes records the offset at which each Phase-II spike started.
	spikeTimes []time.Duration

	// jittered-schedule state (PhaseJitter > 0): offsets within Phase II.
	spiking     bool
	nextSpikeAt time.Duration
	spikeEndAt  time.Duration

	// Cached per-dt ramp weight (fixed-timestep kernel layer): the
	// controller is stepped with the simulation's constant tick and the
	// profile's ramp constant is immutable, so 1-exp(-dt/tau) is derived
	// once instead of one math.Exp per Step.
	alphaKey fixedstep.Key
	alpha    float64
}

// New creates a two-phase attack controller.
func New(cfg Config) (*Attack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Attack{
		cfg:         cfg,
		rng:         stats.NewRNG(cfg.Seed).Split(0xa77ac),
		lastSpikeID: -1,
	}, nil
}

// MustNew is New that panics on configuration error.
func MustNew(cfg Config) *Attack {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Phase reports the attack's current phase.
func (a *Attack) Phase() Phase { return a.phase }

// LearnedDrainTime reports how long Phase I took before the attacker saw
// sustained capping — the attacker's estimate of the victim's battery
// autonomy. Zero until Phase II begins.
func (a *Attack) LearnedDrainTime() time.Duration { return a.learnedDrain }

// Step advances the attack by dt given the latest observation and returns
// the utilization demand for each compromised server.
func (a *Attack) Step(dt time.Duration, obs Observation) float64 {
	defer func() { a.elapsed += dt }()

	switch a.phase {
	case Preparation:
		if a.elapsed >= a.cfg.PrepDuration {
			a.phase = PhaseI
			a.phaseStart = a.elapsed
		}
		return a.ramp(0.05, dt)

	case PhaseI:
		if obs.Capped {
			a.cappedTicks++
			a.sawCap = true
		} else {
			a.cappedTicks = 0
		}
		inPhase := a.elapsed - a.phaseStart
		if a.cappedTicks >= a.cfg.CapTicksToConfirm || inPhase >= a.cfg.MaxPhaseI {
			a.learnedDrain = inPhase
			a.phase = PhaseII
			a.phaseStart = a.elapsed
		}
		return a.ramp(a.cfg.Profile.SustainFraction, dt)

	case PhaseII:
		inPhase := a.elapsed - a.phaseStart
		period := time.Duration(float64(time.Minute) / a.cfg.SpikesPerMinute)
		if a.cfg.PhaseJitter > 0 {
			return a.stepJitteredSpikes(inPhase, period, dt)
		}
		spikeID := int(inPhase / period)
		inSpike := inPhase%period < a.cfg.SpikeWidth
		if inSpike {
			if spikeID != a.lastSpikeID {
				a.lastSpikeID = spikeID
				a.spikeTimes = append(a.spikeTimes, a.elapsed)
				a.rollSpikeTarget()
			}
			return a.ramp(a.spikeTarget, dt)
		}
		return a.ramp(a.cfg.RestFraction, dt)
	}
	return a.ramp(0, dt)
}

// rollSpikeTarget draws the next spike's jittered peak height.
func (a *Attack) rollSpikeTarget() {
	j := a.cfg.Profile.Jitter
	peak := a.cfg.Profile.PeakFraction * (1 + j*(a.rng.Float64()-0.5)*2)
	if peak > 1 {
		peak = 1
	}
	rest := a.cfg.RestFraction
	a.spikeTarget = rest + a.cfg.AmplitudeScale*(peak-rest)
}

// stepJitteredSpikes drives the PhaseJitter > 0 spike schedule: each gap
// between spikes is the nominal gap stretched by a uniform factor in
// [1−jitter, 1+jitter], so the long-run rate matches SpikesPerMinute but
// the timing carries no fixed period.
func (a *Attack) stepJitteredSpikes(inPhase time.Duration, period time.Duration, dt time.Duration) float64 {
	if a.spiking && inPhase >= a.spikeEndAt {
		a.spiking = false
		gap := period - a.cfg.SpikeWidth
		factor := 1 + a.cfg.PhaseJitter*(2*a.rng.Float64()-1)
		a.nextSpikeAt = a.spikeEndAt + time.Duration(float64(gap)*factor)
	}
	if !a.spiking && inPhase >= a.nextSpikeAt {
		a.spiking = true
		a.spikeEndAt = inPhase + a.cfg.SpikeWidth
		a.lastSpikeID++
		a.spikeTimes = append(a.spikeTimes, a.elapsed)
		a.rollSpikeTarget()
	}
	if a.spiking {
		return a.ramp(a.spikeTarget, dt)
	}
	return a.ramp(a.cfg.RestFraction, dt)
}

// Quiescent reports whether one Step(dt, Observation{Capped: capped})
// would change nothing but the elapsed clock and return the identical
// utilization: the ramp sits at its floating-point fixed point for the
// current phase's target, the observation drives no counter, and the
// step stays strictly inside the current phase segment (no transition,
// no spike start or end, no RNG draw). While Quiescent holds, a run of
// such steps collapses to Skip.
func (a *Attack) Quiescent(capped bool, dt time.Duration) bool {
	if a.NextEvent(capped, dt) < 1 {
		return false
	}
	switch a.phase {
	case Preparation:
		return a.rampSettled(0.05, dt)
	case PhaseI:
		if capped || a.cappedTicks != 0 {
			// A capped tick advances the confirmation counter; an uncapped
			// tick after capped ones resets it. Either is a state change.
			return false
		}
		return a.rampSettled(a.cfg.Profile.SustainFraction, dt)
	case PhaseII:
		inPhase := a.elapsed - a.phaseStart
		period := time.Duration(float64(time.Minute) / a.cfg.SpikesPerMinute)
		if a.cfg.PhaseJitter > 0 {
			if a.spiking {
				return a.rampSettled(a.spikeTarget, dt)
			}
			return a.rampSettled(a.cfg.RestFraction, dt)
		}
		if inPhase%period < a.cfg.SpikeWidth {
			// Mid-spike: quiescent only once this spike's start tick (which
			// rolls the jitter RNG) has already executed.
			return int(inPhase/period) == a.lastSpikeID && a.rampSettled(a.spikeTarget, dt)
		}
		return a.rampSettled(a.cfg.RestFraction, dt)
	}
	return false
}

// NextEvent returns how many consecutive Steps of dt from the current
// state stay strictly inside the current phase segment — the attack's
// event horizon in ticks. The Step at that horizon (a phase transition,
// spike boundary, or RNG draw) must run live; callers skip fewer ticks
// than the horizon.
func (a *Attack) NextEvent(capped bool, dt time.Duration) int {
	if dt <= 0 {
		return 0
	}
	inPhase := a.elapsed - a.phaseStart
	switch a.phase {
	case Preparation:
		return ticksUntil(a.cfg.PrepDuration-a.elapsed, dt)
	case PhaseI:
		if capped {
			// Each capped tick moves the confirmation counter; no horizon.
			return 0
		}
		return ticksUntil(a.cfg.MaxPhaseI-inPhase, dt)
	case PhaseII:
		period := time.Duration(float64(time.Minute) / a.cfg.SpikesPerMinute)
		if a.cfg.PhaseJitter > 0 {
			if a.spiking {
				return ticksUntil(a.spikeEndAt-inPhase, dt)
			}
			return ticksUntil(a.nextSpikeAt-inPhase, dt)
		}
		if off := inPhase % period; off < a.cfg.SpikeWidth {
			return ticksUntil(a.cfg.SpikeWidth-off, dt)
		}
		return ticksUntil(period-inPhase%period, dt)
	}
	return 0
}

// Skip advances the attack clock by n ticks of dt without stepping: the
// exact residue of n quiescent Steps, whose only effect is the deferred
// elapsed accumulation.
func (a *Attack) Skip(n int, dt time.Duration) {
	a.elapsed += time.Duration(n) * dt
}

// ticksUntil converts a remaining duration to a whole-tick horizon: the
// number of dt steps that start strictly before the boundary.
func ticksUntil(remaining, dt time.Duration) int {
	if remaining <= 0 {
		return 0
	}
	return int((remaining + dt - 1) / dt)
}

// rampSettled reports whether ramp(target, dt) would return a.reached
// unchanged — the first-order filter has converged to its floating-point
// fixed point for this target.
func (a *Attack) rampSettled(target float64, dt time.Duration) bool {
	tau := a.cfg.Profile.RampTime.Seconds()
	if tau <= 0 {
		return a.reached == target
	}
	if !a.alphaKey.Hit(dt) {
		a.alpha = 1 - math.Exp(-dt.Seconds()/tau)
	}
	return a.reached+(target-a.reached)*a.alpha == a.reached
}

// SpikesLaunched reports how many Phase-II spikes have started.
func (a *Attack) SpikesLaunched() int { return a.lastSpikeID + 1 }

// SpikeTimes returns the simulation offsets at which Phase-II spikes
// started, in launch order.
func (a *Attack) SpikeTimes() []time.Duration {
	return append([]time.Duration(nil), a.spikeTimes...)
}

// ramp moves the reached utilization toward target with the profile's
// first-order time constant and returns the new value.
func (a *Attack) ramp(target float64, dt time.Duration) float64 {
	tau := a.cfg.Profile.RampTime.Seconds()
	if tau <= 0 {
		a.reached = target
		return a.reached
	}
	if !a.alphaKey.Hit(dt) {
		a.alpha = 1 - math.Exp(-dt.Seconds()/tau)
	}
	a.reached += (target - a.reached) * a.alpha
	return a.reached
}
